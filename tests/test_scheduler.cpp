// TaskPool end-to-end: correct task counts, both queue kinds, stats
// plausibility, reuse across runs, detector choices, victim policies.
#include <gtest/gtest.h>

#include <atomic>

#include "core/scheduler.hpp"

namespace sws::core {
namespace {

pgas::RuntimeConfig rcfg(int npes, std::uint64_t seed = 42) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 2 << 20;
  c.seed = seed;
  return c;
}

PoolConfig pcfg(QueueKind kind) {
  PoolConfig c;
  c.kind = kind;
  c.queue.capacity = 4096;
  c.queue.slot_bytes = 32;
  return c;
}

/// Register a fan-out task: spawns `fanout` children until depth 0.
struct FanOut {
  TaskFnId fn = 0;
  std::uint32_t fanout;

  FanOut(TaskRegistry& reg, std::uint32_t fanout_, net::Nanos task_ns)
      : fanout(fanout_) {
    fn = reg.register_fn("fan", [this, task_ns](Worker& w,
                                                std::span<const std::byte> b) {
      std::uint32_t depth;
      std::memcpy(&depth, b.data(), 4);
      w.compute(task_ns);
      if (depth == 0) return;
      for (std::uint32_t i = 0; i < fanout; ++i)
        w.spawn(Task::of(fn, depth - 1));
    });
  }

  std::uint64_t expected(std::uint32_t depth) const {
    std::uint64_t total = 0, layer = 1;
    for (std::uint32_t d = 0; d <= depth; ++d) {
      total += layer;
      layer *= fanout;
    }
    return total;
  }
};

class SchedulerBoth : public ::testing::TestWithParam<QueueKind> {};

TEST_P(SchedulerBoth, ExecutesEveryTaskExactlyOnce) {
  pgas::Runtime rt(rcfg(8));
  TaskRegistry reg;
  FanOut fan(reg, 4, 10'000);
  TaskPool pool(rt, reg, pcfg(GetParam()));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{5}));
    });
  });
  const PoolRunReport r = pool.report();
  EXPECT_EQ(r.total.tasks_executed, fan.expected(5));
  EXPECT_EQ(r.total.tasks_spawned, fan.expected(5));
  EXPECT_GT(r.total.steals_ok, 0u) << "8 PEs must have stolen something";
}

TEST_P(SchedulerBoth, SinglePeRunsWithoutStealing) {
  pgas::Runtime rt(rcfg(1));
  TaskRegistry reg;
  FanOut fan(reg, 3, 1000);
  TaskPool pool(rt, reg, pcfg(GetParam()));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      w.spawn(Task::of(fan.fn, std::uint32_t{4}));
    });
  });
  const PoolRunReport r = pool.report();
  EXPECT_EQ(r.total.tasks_executed, fan.expected(4));
  EXPECT_EQ(r.total.steals_ok, 0u);
  EXPECT_EQ(r.total.steal_attempts, 0u);
}

TEST_P(SchedulerBoth, EmptySeedTerminates) {
  pgas::Runtime rt(rcfg(4));
  TaskRegistry reg;
  TaskPool pool(rt, reg, pcfg(GetParam()));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [](Worker&) {});
  });
  EXPECT_EQ(pool.report().total.tasks_executed, 0u);
}

TEST_P(SchedulerBoth, SeedsFromEveryPe) {
  pgas::Runtime rt(rcfg(4));
  TaskRegistry reg;
  FanOut fan(reg, 2, 2000);
  TaskPool pool(rt, reg, pcfg(GetParam()));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      w.spawn(Task::of(fan.fn, std::uint32_t{3}));  // every PE seeds one
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, 4 * fan.expected(3));
}

TEST_P(SchedulerBoth, PoolIsReusableAcrossRuns) {
  pgas::Runtime rt(rcfg(4));
  TaskRegistry reg;
  FanOut fan(reg, 3, 1000);
  TaskPool pool(rt, reg, pcfg(GetParam()));
  for (int run = 0; run < 3; ++run) {
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](Worker& w) {
        if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{4}));
      });
    });
    EXPECT_EQ(pool.report().total.tasks_executed, fan.expected(4))
        << "run " << run;
  }
}

TEST_P(SchedulerBoth, DeterministicUnderVirtualTime) {
  TaskRegistry reg1, reg2;
  FanOut fan1(reg1, 4, 5000), fan2(reg2, 4, 5000);
  std::uint64_t steals[2], runtimes[2];
  for (int trial = 0; trial < 2; ++trial) {
    pgas::Runtime rt(rcfg(6, /*seed=*/7));
    TaskRegistry& reg = trial ? reg2 : reg1;
    FanOut& fan = trial ? fan2 : fan1;
    TaskPool pool(rt, reg, pcfg(GetParam()));
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](Worker& w) {
        if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{5}));
      });
    });
    steals[trial] = pool.report().total.steals_ok;
    runtimes[trial] = pool.report().total.run_time_ns;
  }
  EXPECT_EQ(steals[0], steals[1]) << "virtual-time runs must be identical";
  EXPECT_EQ(runtimes[0], runtimes[1]);
}

TEST_P(SchedulerBoth, TokenDetectorAgreesWithCounter) {
  for (const TerminationKind kind :
       {TerminationKind::kCounter, TerminationKind::kToken}) {
    pgas::Runtime rt(rcfg(4));
    TaskRegistry reg;
    FanOut fan(reg, 3, 3000);
    PoolConfig pc = pcfg(GetParam());
    pc.termination = kind;
    TaskPool pool(rt, reg, pc);
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](Worker& w) {
        if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{4}));
      });
    });
    EXPECT_EQ(pool.report().total.tasks_executed, fan.expected(4));
  }
}

TEST_P(SchedulerBoth, RoundRobinVictimsAlsoWork) {
  pgas::Runtime rt(rcfg(4));
  TaskRegistry reg;
  FanOut fan(reg, 4, 2000);
  PoolConfig pc = pcfg(GetParam());
  pc.victim.policy = VictimPolicy::kRoundRobin;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{4}));
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, fan.expected(4));
}

TEST_P(SchedulerBoth, StatsAreInternallyConsistent) {
  pgas::Runtime rt(rcfg(8));
  TaskRegistry reg;
  FanOut fan(reg, 4, 8000);
  TaskPool pool(rt, reg, pcfg(GetParam()));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{5}));
    });
  });
  const PoolRunReport r = pool.report();
  EXPECT_LE(r.total.steals_ok, r.total.steal_attempts);
  EXPECT_LE(r.total.tasks_stolen, r.total.tasks_executed);
  EXPECT_GT(r.total.run_time_ns, 0u);
  // Per-PE executed totals sum to the whole.
  EXPECT_EQ(static_cast<std::uint64_t>(r.per_pe_executed.sum()),
            r.total.tasks_executed);
  // Every PE's run time is at most the pool run time.
  for (int pe = 0; pe < 8; ++pe)
    EXPECT_LE(pool.worker_stats(pe).run_time_ns, r.total.run_time_ns);
}

TEST_P(SchedulerBoth, TinyQueueFallsBackToInlineExecution) {
  // Capacity far below the spawn burst: push_local fails and the worker
  // executes inline; no task may be lost.
  pgas::Runtime rt(rcfg(2));
  TaskRegistry reg;
  FanOut fan(reg, 8, 500);
  PoolConfig pc = pcfg(GetParam());
  pc.queue.capacity = 16;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{3}));
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, fan.expected(3));
}

TEST_P(SchedulerBoth, RealTimeModeCompletes) {
  pgas::RuntimeConfig rc = rcfg(4);
  rc.mode = pgas::TimeMode::kReal;
  pgas::Runtime rt(rc);
  TaskRegistry reg;
  FanOut fan(reg, 3, 5000);
  TaskPool pool(rt, reg, pcfg(GetParam()));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{4}));
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, fan.expected(4));
}

TEST_P(SchedulerBoth, ExtremeBackoffTuningStaysClamped) {
  // Regression: the jittered pause was scaled in double but cast back to
  // Nanos *before* clamping, so a backoff_mult big enough to overflow the
  // cast — or a jitter above 1.0 driving the scale factor negative —
  // produced garbage pauses (negative, or ~2^63 ns) that stalled the
  // search loop for virtual centuries. The clamp now happens in double
  // space: even absurd tuning keeps every pause inside
  // [backoff_min_ns, backoff_max_ns].
  pgas::Runtime rt(rcfg(4));
  TaskRegistry reg;
  FanOut fan(reg, 3, 500);
  PoolConfig pc = pcfg(GetParam());
  pc.steal.backoff_min_ns = 100;
  pc.steal.backoff_max_ns = 2000;
  pc.steal.backoff_mult = 1e18;  // one failed round overflows unclamped
  pc.steal.jitter = 8.0;         // scale factor spans [-7, 9]
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{6}));
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, fan.expected(6));
  // 1093 tasks x 500 ns over 4 PEs with searches paced at <= 2 us each:
  // anything near a virtual second means a pause escaped the band.
  EXPECT_LT(rt.last_run_duration(), net::Nanos{1'000'000'000});
}

INSTANTIATE_TEST_SUITE_P(BothQueues, SchedulerBoth,
                         ::testing::Values(QueueKind::kSdc, QueueKind::kSws),
                         [](const auto& info) {
                           return info.param == QueueKind::kSdc ? "SDC" : "SWS";
                         });

TEST(Scheduler, SwsAndSdcExecuteIdenticalTaskCounts) {
  std::uint64_t counts[2];
  for (int k = 0; k < 2; ++k) {
    pgas::Runtime rt(rcfg(6));
    TaskRegistry reg;
    FanOut fan(reg, 4, 5000);
    TaskPool pool(rt, reg,
                  pcfg(k == 0 ? QueueKind::kSdc : QueueKind::kSws));
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](Worker& w) {
        if (w.pe() == 0) w.spawn(Task::of(fan.fn, std::uint32_t{5}));
      });
    });
    counts[k] = pool.report().total.tasks_executed;
  }
  EXPECT_EQ(counts[0], counts[1]);
}

}  // namespace
}  // namespace sws::core
