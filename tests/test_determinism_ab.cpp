// Determinism A/B harness for the sequencer overhaul: the optimized
// strategy (ready heap + run-to-horizon batching + pooled pending
// effects) must produce byte-identical executions — run to run, and
// against the legacy linear-scan reference strategy kept behind
// RuntimeConfig::sequencer_reference. A fig2-style UTS workload with
// nbi-heavy stealing exercises every hot path the overhaul touched.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "sws.hpp"

namespace sws {
namespace {

struct PeSnapshot {
  net::FabricStats fabric;
  net::Nanos clock = 0;

  bool operator==(const PeSnapshot& o) const {
    return fabric.ops == o.fabric.ops && fabric.remote_ops == o.fabric.remote_ops &&
           fabric.local_ops == o.fabric.local_ops &&
           fabric.bytes_put == o.fabric.bytes_put &&
           fabric.bytes_got == o.fabric.bytes_got &&
           fabric.blocking_ns == o.fabric.blocking_ns &&
           fabric.occupancy_wait_ns == o.fabric.occupancy_wait_ns &&
           clock == o.clock;
  }
};

struct RunTrace {
  std::vector<PeSnapshot> per_pe;
  std::uint64_t tasks = 0;
  std::uint64_t steals_ok = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t bulk_claims = 0;  ///< multi-block claims (SWS bulk mode)
  net::Nanos duration = 0;
  std::string trace_json;       ///< only when tracing was enabled
  std::string timeseries_json;  ///< only when windowed sampling was enabled
};

void expect_identical(const RunTrace& a, const RunTrace& b,
                      const char* what) {
  EXPECT_EQ(a.tasks, b.tasks) << what;
  EXPECT_EQ(a.steals_ok, b.steals_ok) << what;
  EXPECT_EQ(a.steal_attempts, b.steal_attempts) << what;
  EXPECT_EQ(a.duration, b.duration) << what;
  ASSERT_EQ(a.per_pe.size(), b.per_pe.size()) << what;
  for (std::size_t pe = 0; pe < a.per_pe.size(); ++pe)
    EXPECT_TRUE(a.per_pe[pe] == b.per_pe[pe])
        << what << ": PE " << pe << " diverged (ops/bytes/blocking_ns/clock)";
}

RunTrace run_uts(core::QueueKind kind, int npes, bool reference,
                 bool trace = false, net::NetworkParams net = {},
                 std::uint32_t bulk = 1, int engine_threads = 1,
                 net::Nanos sample_ns = 0) {
  pgas::RuntimeConfig rc;
  rc.npes = npes;
  rc.heap_bytes = 4 << 20;
  rc.seed = 42;
  rc.sequencer_reference = reference;
  rc.net = net;
  rc.engine_threads = engine_threads;
  pgas::Runtime rt(rc);

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = 10;
  p.node_compute_ns = 150;

  core::TaskRegistry reg;
  workloads::UtsBenchmark uts(reg, p);
  core::PoolConfig pc;
  pc.kind = kind;
  pc.queue.capacity = 8192;
  pc.queue.slot_bytes = 64;
  pc.steal.bulk_claim_max = bulk;
  if (trace) {
    pc.trace.enable = true;
    pc.trace.events = std::size_t{1} << 18;
  }
  if (sample_ns > 0) pc.trace.sample_interval_ns = sample_ns;
  core::TaskPool pool(rt, reg, pc);
  rt.fabric().reset_stats();
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });

  RunTrace t;
  for (int pe = 0; pe < npes; ++pe)
    t.per_pe.push_back(PeSnapshot{rt.fabric().stats(pe), rt.time().now(pe)});
  t.tasks = pool.report().total.tasks_executed;
  t.steals_ok = pool.report().total.steals_ok;
  t.steal_attempts = pool.report().total.steal_attempts;
  for (int pe = 0; pe < npes; ++pe)
    t.bulk_claims += pool.queue().op_stats(pe).bulk_claims;
  t.duration = rt.last_run_duration();
  if (trace) {
    std::ostringstream os;
    pool.dump_trace_json(os);
    t.trace_json = os.str();
  }
  if (sample_ns > 0) {
    std::ostringstream os;
    pool.dump_timeseries_json(os);
    t.timeseries_json = os.str();
  }
  return t;
}

class DeterminismAb : public ::testing::TestWithParam<core::QueueKind> {};

TEST_P(DeterminismAb, OptimizedRunsAreRepeatable) {
  const RunTrace a = run_uts(GetParam(), 8, /*reference=*/false);
  const RunTrace b = run_uts(GetParam(), 8, /*reference=*/false);
  ASSERT_GT(a.steals_ok, 10u) << "workload too small to exercise stealing";
  expect_identical(a, b, "optimized run-to-run");
}

TEST_P(DeterminismAb, OptimizedMatchesReferenceStrategy) {
  const RunTrace opt = run_uts(GetParam(), 8, /*reference=*/false);
  const RunTrace ref = run_uts(GetParam(), 8, /*reference=*/true);
  expect_identical(opt, ref, "optimized vs linear-scan reference");
}

TEST(DeterminismBulk, BulkClaimRunsAreRepeatable) {
  // SWS bulk claims (one fetch-add claiming several steal-half blocks) add
  // thief-side adaptive state and owner-side pressure tracking; none of it
  // may introduce nondeterminism. Two identical bulk runs must match on
  // every per-PE fabric counter and clock.
  const RunTrace a = run_uts(core::QueueKind::kSws, 8, /*reference=*/false,
                             /*trace=*/false, {}, /*bulk=*/4);
  const RunTrace b = run_uts(core::QueueKind::kSws, 8, /*reference=*/false,
                             /*trace=*/false, {}, /*bulk=*/4);
  EXPECT_GT(a.bulk_claims, 0u)
      << "workload never exercised a multi-block claim";
  EXPECT_EQ(a.bulk_claims, b.bulk_claims);
  expect_identical(a, b, "bulk=4 run-to-run");
}

TEST(DeterminismBulk, BulkClaimMatchesReferenceStrategy) {
  const RunTrace opt = run_uts(core::QueueKind::kSws, 8, /*reference=*/false,
                               /*trace=*/false, {}, /*bulk=*/4);
  const RunTrace ref = run_uts(core::QueueKind::kSws, 8, /*reference=*/true,
                               /*trace=*/false, {}, /*bulk=*/4);
  expect_identical(opt, ref, "bulk=4 optimized vs reference");
}

TEST(DeterminismBulk, BulkClaimOffNeverBulks) {
  // The default (bulk_claim_max = 1) is the legacy protocol; the golden
  // fingerprints above pin its schedule bit-for-bit. Belt and braces: it
  // must also never record a multi-block claim.
  const RunTrace t = run_uts(core::QueueKind::kSws, 8, /*reference=*/false);
  EXPECT_EQ(t.bulk_claims, 0u);
}

// --- parallel engine (ParallelTimeModel) ----------------------------------
//
// The sharded windowed sequencer must be invisible in every observable:
// per-PE fabric counters, clocks, durations, steal/task totals. The serial
// reference strategy is the oracle for all of it.

TEST_P(DeterminismAb, ParallelEngineMatchesReference) {
  const RunTrace ref = run_uts(GetParam(), 8, /*reference=*/true);
  for (const int threads : {1, 2, 4}) {
    const RunTrace t = run_uts(GetParam(), 8, /*reference=*/false,
                               /*trace=*/false, {}, /*bulk=*/1, threads);
    expect_identical(t, ref,
                     (std::string("engine_threads=") + std::to_string(threads) +
                      " vs reference")
                         .c_str());
  }
}

TEST_P(DeterminismAb, ParallelEngineIsRepeatable) {
  const RunTrace a = run_uts(GetParam(), 8, /*reference=*/false,
                             /*trace=*/false, {}, /*bulk=*/1, /*threads=*/4);
  const RunTrace b = run_uts(GetParam(), 8, /*reference=*/false,
                             /*trace=*/false, {}, /*bulk=*/1, /*threads=*/4);
  ASSERT_GT(a.steals_ok, 10u) << "workload too small to exercise stealing";
  expect_identical(a, b, "4-thread engine run-to-run");
}

TEST(DeterminismParallel, BulkClaimsUnderParallelEngineMatchReference) {
  // Bulk claims + windows together: the widened AMO protocol must stay on
  // the serial schedule when the engine runs concurrent windows.
  const RunTrace ref = run_uts(core::QueueKind::kSws, 8, /*reference=*/true,
                               /*trace=*/false, {}, /*bulk=*/4);
  const RunTrace par = run_uts(core::QueueKind::kSws, 8, /*reference=*/false,
                               /*trace=*/false, {}, /*bulk=*/4, /*threads=*/4);
  EXPECT_GT(par.bulk_claims, 0u);
  expect_identical(par, ref, "bulk=4 under 4-thread engine vs reference");
}

TEST_P(DeterminismAb, TracingIsObservationOnly) {
  // Span tracing + the fabric-op observer read clocks but never advance
  // them: a traced run must be byte-identical to an untraced one.
  const RunTrace off = run_uts(GetParam(), 8, /*reference=*/false);
  const RunTrace on = run_uts(GetParam(), 8, /*reference=*/false,
                              /*trace=*/true);
  EXPECT_FALSE(on.trace_json.empty());
  expect_identical(off, on, "trace-off vs trace-on");
}

TEST_P(DeterminismAb, TracedRunsDumpByteIdenticalJson) {
  const RunTrace a = run_uts(GetParam(), 8, /*reference=*/false,
                             /*trace=*/true);
  const RunTrace b = run_uts(GetParam(), 8, /*reference=*/false,
                             /*trace=*/true);
  expect_identical(a, b, "traced run-to-run");
  // The dump includes every event in merged (time, pe, seq) order, so
  // any nondeterminism in spans/ops/ordering shows up as a byte diff.
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST_P(DeterminismAb, WindowedSamplingIsObservationOnly) {
  // The time-series sampler drains windows at virtual-time boundaries but
  // reads counters and phase clocks without touching them: a sampled run
  // must be byte-identical to an unsampled one on every observable.
  const RunTrace off = run_uts(GetParam(), 8, /*reference=*/false);
  const RunTrace on = run_uts(GetParam(), 8, /*reference=*/false,
                              /*trace=*/false, {}, /*bulk=*/1, /*threads=*/1,
                              /*sample_ns=*/10'000);
  EXPECT_FALSE(on.timeseries_json.empty());
  expect_identical(off, on, "sampling-off vs sampling-on");
}

TEST_P(DeterminismAb, SampledRunsDumpByteIdenticalJson) {
  const RunTrace a = run_uts(GetParam(), 8, /*reference=*/false,
                             /*trace=*/false, {}, /*bulk=*/1, /*threads=*/1,
                             /*sample_ns=*/10'000);
  const RunTrace b = run_uts(GetParam(), 8, /*reference=*/false,
                             /*trace=*/false, {}, /*bulk=*/1, /*threads=*/1,
                             /*sample_ns=*/10'000);
  expect_identical(a, b, "sampled run-to-run");
  EXPECT_EQ(a.timeseries_json, b.timeseries_json);
}

TEST_P(DeterminismAb, SamplingAndTracingComposeObservationOnly) {
  // Both observers on at once (the bench_common --trace-out --timeseries-out
  // path) must still land on the unobserved schedule.
  const RunTrace off = run_uts(GetParam(), 8, /*reference=*/false);
  const RunTrace on = run_uts(GetParam(), 8, /*reference=*/false,
                              /*trace=*/true, {}, /*bulk=*/1, /*threads=*/1,
                              /*sample_ns=*/10'000);
  EXPECT_FALSE(on.trace_json.empty());
  EXPECT_FALSE(on.timeseries_json.empty());
  expect_identical(off, on, "unobserved vs trace+sampling");
}

// Cross-version pins: fingerprints captured from the pre-topology build
// (commit 536af5a lineage). The topology redesign promised that flat and
// legacy two-level runs stay byte-identical — any drift in these numbers
// means the schedule changed, not just an accounting detail.
struct GoldenRun {
  const char* what;
  core::QueueKind kind;
  int pes_per_node;  ///< 0 = flat
  net::Nanos duration;
  std::uint64_t blocking, ops, clocks, tasks, steals_ok;
};

// Recaptured when the steal-retry backoff clamp was fixed: the jittered
// pause is now clamped into [backoff_min_ns, backoff_max_ns] before the
// cast, so jitter below min (or above max) no longer escapes the band —
// a legitimate schedule change. Task count (4186) is unchanged: the same
// work ran, only pause timing moved.
constexpr GoldenRun kGolden[] = {
    {"flat SWS", core::QueueKind::kSws, 0,  //
     291924, 513575, 746, 2334444, 4186, 43},
    {"flat SDC", core::QueueKind::kSdc, 0,  //
     341782, 883641, 934, 2733380, 4186, 32},
    {"two-level SWS", core::QueueKind::kSws, 4,  //
     272740, 374966, 850, 2180002, 4186, 60},
    {"two-level SDC", core::QueueKind::kSdc, 4,  //
     336390, 707661, 1231, 2686339, 4186, 48},
};

TEST(DeterminismGolden, SchedulesMatchPreTopologyFingerprints) {
  for (const GoldenRun& g : kGolden) {
    const net::NetworkParams net =
        g.pes_per_node > 0 ? net::NetworkParams::two_level(g.pes_per_node)
                           : net::NetworkParams{};
    const RunTrace t = run_uts(g.kind, 8, /*reference=*/false,
                               /*trace=*/false, net);
    std::uint64_t blocking = 0, ops = 0, clocks = 0;
    for (const PeSnapshot& s : t.per_pe) {
      blocking += s.fabric.blocking_ns;
      ops += s.fabric.total_ops();
      clocks += static_cast<std::uint64_t>(s.clock);
    }
    EXPECT_EQ(t.duration, g.duration) << g.what;
    EXPECT_EQ(blocking, g.blocking) << g.what;
    EXPECT_EQ(ops, g.ops) << g.what;
    EXPECT_EQ(clocks, g.clocks) << g.what;
    EXPECT_EQ(t.tasks, g.tasks) << g.what;
    EXPECT_EQ(t.steals_ok, g.steals_ok) << g.what;
  }
}

TEST(DeterminismGolden, ParallelEngineMatchesFingerprints) {
  // The strongest gate: the 4-thread windowed engine must land on the
  // *pinned* schedules — not merely agree with a same-binary reference.
  for (const GoldenRun& g : kGolden) {
    const net::NetworkParams net =
        g.pes_per_node > 0 ? net::NetworkParams::two_level(g.pes_per_node)
                           : net::NetworkParams{};
    const RunTrace t = run_uts(g.kind, 8, /*reference=*/false,
                               /*trace=*/false, net, /*bulk=*/1,
                               /*threads=*/4);
    std::uint64_t blocking = 0, ops = 0, clocks = 0;
    for (const PeSnapshot& s : t.per_pe) {
      blocking += s.fabric.blocking_ns;
      ops += s.fabric.total_ops();
      clocks += static_cast<std::uint64_t>(s.clock);
    }
    EXPECT_EQ(t.duration, g.duration) << g.what << " (4-thread engine)";
    EXPECT_EQ(blocking, g.blocking) << g.what << " (4-thread engine)";
    EXPECT_EQ(ops, g.ops) << g.what << " (4-thread engine)";
    EXPECT_EQ(clocks, g.clocks) << g.what << " (4-thread engine)";
    EXPECT_EQ(t.tasks, g.tasks) << g.what << " (4-thread engine)";
    EXPECT_EQ(t.steals_ok, g.steals_ok) << g.what << " (4-thread engine)";
  }
}

// --- ReadyHeap shard partition fuzz ---------------------------------------
//
// The parallel driver computes the global frontier as the lex (vtime, pe)
// minimum over per-shard heap tops. Fuzz that scan against a single-heap
// oracle under a random mix of monotone advances, cross-shard clamps
// (decrease-key), parks (insert) and releases (remove).

TEST(ReadyHeapShard, PartitionedFrontierMatchesSingleHeapOracle) {
  using net::Nanos;
  using net::ReadyHeap;
  for (const int nshards : {1, 2, 3, 5, 8}) {
    const int npes = 24;
    std::uint64_t state = 0x9E3779B97F4A7C15ull ^
                          (static_cast<std::uint64_t>(nshards) << 32);
    const auto rnd = [&state]() {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return state >> 11;
    };
    ReadyHeap oracle;
    oracle.rebuild(npes);
    std::vector<ReadyHeap> shards(static_cast<std::size_t>(nshards));
    for (auto& h : shards) h.clear(npes);
    std::vector<int> shard_of(npes);
    for (int pe = 0; pe < npes; ++pe) {
      shard_of[static_cast<std::size_t>(pe)] = pe % nshards;
      shards[static_cast<std::size_t>(pe % nshards)].insert(pe, 0);
    }
    std::vector<Nanos> vt(npes, 0);
    std::vector<bool> present(npes, true);

    const auto frontier = [&](Nanos& fc, int& fp) {
      fc = ReadyHeap::kNoVtime;
      fp = -1;
      for (const ReadyHeap& h : shards) {
        const int p = h.top();
        if (p < 0) continue;
        const Nanos c = h.top_vtime();
        if (c < fc || (c == fc && p < fp)) {
          fc = c;
          fp = p;
        }
      }
    };

    for (int step = 0; step < 20000; ++step) {
      const int pe = static_cast<int>(rnd() % npes);
      ReadyHeap& sh = shards[static_cast<std::size_t>(shard_of[pe])];
      switch (rnd() % 4) {
        case 0:
        case 1: {  // monotone advance
          if (!present[pe]) break;
          vt[pe] += static_cast<Nanos>(rnd() % 500);
          oracle.update(pe, vt[pe]);
          sh.update(pe, vt[pe]);
          break;
        }
        case 2: {  // release / park cycle
          if (present[pe]) {
            present[pe] = false;
            oracle.remove(pe);
            sh.remove(pe);
          } else {
            present[pe] = true;
            vt[pe] += static_cast<Nanos>(rnd() % 300);
            oracle.insert(pe, vt[pe]);
            sh.insert(pe, vt[pe]);
          }
          break;
        }
        case 3: {  // cross-shard clamp: decrease-key
          if (!present[pe]) break;
          const Nanos cut = std::min<Nanos>(vt[pe], rnd() % 200);
          vt[pe] -= cut;
          oracle.update(pe, vt[pe]);
          sh.update(pe, vt[pe]);
          break;
        }
      }
      Nanos fc;
      int fp;
      frontier(fc, fp);
      ASSERT_EQ(fp, oracle.top()) << "nshards=" << nshards << " step=" << step;
      ASSERT_EQ(fc, oracle.top_vtime())
          << "nshards=" << nshards << " step=" << step;
      ASSERT_EQ(sh.contains(pe), present[pe]);
    }

    // Drain: the partitioned heaps must yield the oracle's exact order.
    while (oracle.top() >= 0) {
      Nanos fc;
      int fp;
      frontier(fc, fp);
      ASSERT_EQ(fp, oracle.top());
      ASSERT_EQ(fc, oracle.top_vtime());
      shards[static_cast<std::size_t>(shard_of[fp])].remove(fp);
      oracle.remove(oracle.top());
    }
    for (const ReadyHeap& h : shards) EXPECT_TRUE(h.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(BothQueues, DeterminismAb,
                         ::testing::Values(core::QueueKind::kSws,
                                           core::QueueKind::kSdc),
                         [](const auto& info) {
                           return info.param == core::QueueKind::kSws ? "SWS"
                                                                      : "SDC";
                         });

}  // namespace
}  // namespace sws
