// Crash-stop recovery, end to end (docs/resilience.md).
//
// Four regression shapes that hang without the recovery machinery — a
// thief dying mid-steal, a victim dying under its thieves, an SDC lock
// holder dying, and a PE dying with spawn_on traffic in its inbox — plus
// the acceptance runs: UTS and BPC at 16 PEs surviving 1–3 planned
// crashes on both protocols with run-twice-identical recovery schedules.
//
// The watchdog: every run also plans a crash for EVERY PE at a virtual
// instant far beyond any legitimate completion. A PE that finishes
// disarms its own watchdog at pool teardown, so passing runs never see
// it; a recovery deadlock instead kills the whole job at the watchdog
// instant, the run returns, and the duration assertion fails loudly —
// a hang becomes a readable test failure, in virtual time.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "net/fault.hpp"
#include "sws.hpp"

namespace sws {
namespace {

/// Far beyond any passing run in this file (longest ≈ 4 ms virtual).
constexpr net::Nanos kWatchdogNs = 50'000'000;

/// CI's chaos-soak sweeps the base RNG seed (victim selection order, and
/// through it which steals are in flight when each crash fires) without
/// recompiling: SWS_CRASH_SEED=n overrides the default. Every assertion
/// in this file is seed-independent — determinism checks compare two runs
/// of the same seed, and task-count bounds hold for any schedule.
std::uint64_t base_seed() {
  const char* s = std::getenv("SWS_CRASH_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 42;
}

pgas::RuntimeConfig crash_rcfg(int npes,
                               const std::vector<net::CrashEvent>& crashes,
                               std::uint64_t seed = 0) {
  if (seed == 0) seed = base_seed();
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 4 << 20;
  c.seed = seed;
  for (const net::CrashEvent& e : crashes) c.net.faults.crashes.push_back(e);
  for (int pe = 0; pe < npes; ++pe)
    c.net.faults.crashes.push_back({pe, kWatchdogNs});
  return c;
}

core::PoolConfig pcfg(core::QueueKind kind) {
  core::PoolConfig c;
  c.kind = kind;
  c.queue.capacity = 8192;
  c.queue.slot_bytes = 64;
  return c;
}

/// The ~27k-node tree from Integration.TaskConservationAtScale, slowed to
/// 500 ns per node so a 16-PE run lasts >= 800 µs and every planned crash
/// in this file lands mid-run, well after the startup barriers.
workloads::UtsParams crash_uts_params() {
  workloads::UtsParams p;
  p.b0 = 6;
  p.gen_mx = 9;
  p.root_seed = 3;
  p.node_compute_ns = 500;
  return p;
}

/// Comparable per-PE fingerprint: identical across two identical runs iff
/// the recovery schedule (who detected, fenced, re-executed, rerouted
/// what) replayed exactly.
struct PeSig {
  std::uint64_t executed = 0;
  std::uint64_t spawned = 0;
  std::uint64_t stolen = 0;
  std::uint64_t steals_ok = 0;
  std::uint64_t attempts = 0;
  std::uint64_t reexecuted = 0;
  std::uint64_t rerouted = 0;
  std::uint64_t deaths = 0;

  bool operator==(const PeSig&) const = default;
};

struct CrashRun {
  core::PoolRunReport report;
  std::vector<PeSig> per_pe;
  net::Nanos duration = 0;
  int ndead = 0;
};

CrashRun run_uts_crash(core::QueueKind kind, int npes,
                       const std::vector<net::CrashEvent>& crashes) {
  pgas::Runtime rt(crash_rcfg(npes, crashes));
  core::TaskRegistry reg;
  workloads::UtsBenchmark uts(reg, crash_uts_params());
  core::TaskPool pool(rt, reg, pcfg(kind));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });
  CrashRun r;
  r.report = pool.report();
  for (int pe = 0; pe < npes; ++pe) {
    const core::WorkerStats& s = pool.worker_stats(pe);
    r.per_pe.push_back({s.tasks_executed, s.tasks_spawned, s.tasks_stolen,
                        s.steals_ok, s.steal_attempts, s.tasks_reexecuted,
                        s.tasks_rerouted, s.deaths_witnessed});
  }
  r.duration = rt.last_run_duration();
  r.ndead = rt.fabric().num_dead();
  return r;
}

/// The watchdog check every crash test runs: the job finished on its own
/// (no PE was still stuck when the watchdog instant arrived) and exactly
/// the planned deaths happened.
void expect_clean_finish(const CrashRun& r, int expected_dead) {
  EXPECT_LT(r.duration, kWatchdogNs)
      << "run only ended because the watchdog killed it — recovery hung";
  EXPECT_EQ(r.ndead, expected_dead);
}

// ------------------------------------------------- regression: hang shapes

// A thief dies mid-run with claims open against the owner. Without lease
// fencing the owner waits on the dead thief's completion words forever.
TEST(CrashRecovery, ThiefCrashMidStealSws) {
  const CrashRun r =
      run_uts_crash(core::QueueKind::kSws, 4, {{3, 400'000}});
  expect_clean_finish(r, 1);
  EXPECT_GT(r.report.total.tasks_executed, 0u);
  EXPECT_GE(r.report.total.deaths_witnessed, 1u);
}

// The victim (and seed owner, and initial termination coordinator) dies
// under its thieves: steal handshakes against it return poison, and the
// coordinator role must fail over to the next live PE.
TEST(CrashRecovery, VictimCrashMidRunSws) {
  const CrashRun r =
      run_uts_crash(core::QueueKind::kSws, 4, {{0, 400'000}});
  expect_clean_finish(r, 1);
  EXPECT_GT(r.report.total.tasks_executed, 0u);
  EXPECT_GE(r.report.total.deaths_witnessed, 1u);
}

// SDC: a PE that dies can take the per-queue lock with it. Three crash
// instants sample different protocol stages; each must break the dead
// holder's lease rather than spin on the lock forever.
TEST(CrashRecovery, LockHolderCrashSdc) {
  for (const net::Nanos at : {200'000, 350'000, 500'000}) {
    const CrashRun r = run_uts_crash(core::QueueKind::kSdc, 4, {{2, at}});
    expect_clean_finish(r, 1);
    EXPECT_GT(r.report.total.tasks_executed, 0u) << "crash at " << at;
    EXPECT_GE(r.report.total.deaths_witnessed, 1u) << "crash at " << at;
  }
}

// A PE dies with spawn_on traffic aimed at it: ring chains push through
// every PE continuously, so the dead PE's inbox has undrained tasks and
// senders mid-push against it. Senders must reroute or re-home those
// tasks; without that, chains stall and termination never fires.
TEST(CrashRecovery, InboxCrashWithPendingTasks) {
  constexpr int kNpes = 8;
  pgas::Runtime rt(crash_rcfg(kNpes, {{3, 300'000}}));
  core::TaskRegistry reg;
  core::TaskFnId fn = 0;
  fn = reg.register_fn(
      "ring-hop", [&fn](core::Worker& w, std::span<const std::byte> b) {
        std::uint32_t hops;
        std::memcpy(&hops, b.data(), 4);
        w.compute(5000);
        if (hops == 0) return;
        w.spawn_on((w.pe() + 1) % w.npes(), core::Task::of(fn, hops - 1));
      });
  core::TaskPool pool(rt, reg, pcfg(core::QueueKind::kSws));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) {
      for (std::uint32_t c = 0; c < 4; ++c)
        w.spawn(core::Task::of(fn, std::uint32_t{64}));
    });
  });
  EXPECT_LT(rt.last_run_duration(), kWatchdogNs)
      << "run only ended because the watchdog killed it — recovery hung";
  EXPECT_EQ(rt.fabric().num_dead(), 1);
  const core::PoolRunReport r = pool.report();
  EXPECT_GT(r.total.tasks_executed, 0u);
  EXPECT_GE(r.total.deaths_witnessed, 1u);
}

// --------------------------------------------- acceptance: 16-PE survival

// Both protocols, 1 and 3 planned crashes, 16 PEs: survivors finish, the
// re-execution bound holds (every task runs at most twice, so the total
// can never exceed 2x the tree), and the whole run — including the
// recovery schedule — replays byte-identically from the same seed + plan.
TEST(CrashRecovery, UtsSurvivorsDeterministic) {
  const auto truth = workloads::uts_sequential_count(crash_uts_params());
  const std::vector<std::vector<net::CrashEvent>> plans = {
      {{5, 250'000}},
      {{3, 200'000}, {7, 280'000}, {11, 360'000}},
  };
  for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
    for (const auto& plan : plans) {
      const CrashRun a = run_uts_crash(kind, 16, plan);
      const CrashRun b = run_uts_crash(kind, 16, plan);
      expect_clean_finish(a, static_cast<int>(plan.size()));
      EXPECT_GT(a.report.total.tasks_executed, 0u);
      EXPECT_LE(a.report.total.tasks_executed, 2 * truth.nodes)
          << "at-least-once multiplicity bound breached";
      EXPECT_GE(a.report.total.deaths_witnessed, 1u);
      // Determinism: same seed + same fault plan => identical survivor
      // work, identical recovery actions, identical virtual duration.
      EXPECT_EQ(a.duration, b.duration);
      EXPECT_EQ(a.ndead, b.ndead);
      ASSERT_EQ(a.per_pe.size(), b.per_pe.size());
      for (std::size_t pe = 0; pe < a.per_pe.size(); ++pe)
        EXPECT_TRUE(a.per_pe[pe] == b.per_pe[pe])
            << "pe " << pe << " diverged between identical runs";
    }
  }
}

TEST(CrashRecovery, BpcSurvivorsDeterministic) {
  workloads::BpcParams bp;
  bp.consumers_per_producer = 16;
  bp.depth = 20;
  bp.consumer_ns = 100'000;
  bp.producer_ns = 10'000;
  for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
    std::vector<CrashRun> runs;
    for (int rep = 0; rep < 2; ++rep) {
      pgas::Runtime rt(crash_rcfg(16, {{2, 300'000}}));
      core::TaskRegistry reg;
      workloads::BpcBenchmark bpc(reg, bp);
      core::TaskPool pool(rt, reg, pcfg(kind));
      rt.run([&](pgas::PeContext& ctx) {
        pool.run_pe(ctx, [&](core::Worker& w) { bpc.seed(w); });
      });
      CrashRun r;
      r.report = pool.report();
      for (int pe = 0; pe < 16; ++pe) {
        const core::WorkerStats& s = pool.worker_stats(pe);
        r.per_pe.push_back({s.tasks_executed, s.tasks_spawned,
                            s.tasks_stolen, s.steals_ok, s.steal_attempts,
                            s.tasks_reexecuted, s.tasks_rerouted,
                            s.deaths_witnessed});
      }
      r.duration = rt.last_run_duration();
      r.ndead = rt.fabric().num_dead();
      runs.push_back(std::move(r));
    }
    expect_clean_finish(runs[0], 1);
    EXPECT_GT(runs[0].report.total.tasks_executed, 0u);
    EXPECT_LE(runs[0].report.total.tasks_executed, 2 * bp.expected_tasks());
    EXPECT_EQ(runs[0].duration, runs[1].duration);
    for (std::size_t pe = 0; pe < runs[0].per_pe.size(); ++pe)
      EXPECT_TRUE(runs[0].per_pe[pe] == runs[1].per_pe[pe])
          << "pe " << pe << " diverged between identical runs";
  }
}

// A plan whose crashes all postdate completion (the watchdog alone): the
// crash-mode machinery is fully armed — resilient termination, claim
// intents, sender ledgers — yet nothing fires, and the run must still
// visit every node exactly once. Recovery must not distort a run it
// never acts on.
TEST(CrashRecovery, ArmedButUnfiredPlanStaysExact) {
  const auto truth = workloads::uts_sequential_count(crash_uts_params());
  for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
    const CrashRun r = run_uts_crash(kind, 8, {});
    expect_clean_finish(r, 0);
    EXPECT_EQ(r.report.total.tasks_executed, truth.nodes);
    EXPECT_EQ(r.report.total.tasks_reexecuted, 0u);
    EXPECT_EQ(r.report.total.deaths_witnessed, 0u);
  }
}

// Node-granularity failure through the topology preset: a 2x4 job loses
// one full node (all four of its PEs) at once — the shape the CI smoke
// runs.
TEST(CrashRecovery, NodeFailurePlanKillsWholeNode) {
  const net::Topology topo(net::TopologySpec::two_level(4), 8);
  net::NetworkParams netp = net::NetworkParams::two_level(4);
  netp.faults = net::node_failure_plan(topo, /*node=*/1, /*at_ns=*/300'000);
  for (int pe = 0; pe < 8; ++pe)
    netp.faults.crashes.push_back({pe, kWatchdogNs});
  pgas::RuntimeConfig c;
  c.npes = 8;
  c.heap_bytes = 4 << 20;
  c.seed = base_seed();
  c.net = netp;
  core::TaskRegistry reg;
  pgas::Runtime rt(c);
  workloads::UtsBenchmark uts(reg, crash_uts_params());
  core::TaskPool pool(rt, reg, pcfg(core::QueueKind::kSws));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });
  EXPECT_LT(rt.last_run_duration(), kWatchdogNs);
  EXPECT_EQ(rt.fabric().num_dead(), 4);
  EXPECT_GT(pool.report().total.tasks_executed, 0u);
}

}  // namespace
}  // namespace sws
