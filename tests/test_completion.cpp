// Completion arrays and epochs: the Table-1 state machine and the
// longest-finished-prefix reclaim rule.
#include <gtest/gtest.h>

#include "core/completion.hpp"

namespace sws::core {
namespace {

pgas::RuntimeConfig rcfg(int npes) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 1 << 20;
  return c;
}

TEST(Completion, SlotsStartUnclaimed) {
  pgas::Runtime rt(rcfg(1));
  CompletionSpace cs(rt.heap());
  rt.run([&](pgas::PeContext& ctx) {
    for (std::uint32_t e = 0; e < kNumEpochs; ++e)
      for (std::uint32_t i = 0; i < CompletionSpace::kSlotsPerEpoch; ++i)
        EXPECT_EQ(cs.read(ctx, e, i), 0u);
  });
}

TEST(Completion, NotifyDeliversAfterQuiet) {
  pgas::Runtime rt(rcfg(2));
  CompletionSpace cs(rt.heap());
  rt.run([&](pgas::PeContext& ctx) {
    if (ctx.pe() == 1) {
      cs.notify_finished(ctx, /*victim=*/0, /*epoch=*/0, /*idx=*/3,
                         /*ntasks=*/19);
      ctx.quiet();
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      EXPECT_EQ(cs.read(ctx, 0, 3), 19u);
      EXPECT_EQ(cs.read(ctx, 0, 2), 0u);
      EXPECT_EQ(cs.read(ctx, 1, 3), 0u) << "other epoch untouched";
    }
    ctx.barrier();
  });
}

TEST(Completion, NotificationIsAsynchronous) {
  // The owner must NOT see the completion at issue time — it arrives when
  // virtual time passes the delivery deadline. This is the asynchrony
  // completion epochs exist to tolerate.
  pgas::Runtime rt(rcfg(2));
  CompletionSpace cs(rt.heap());
  rt.run([&](pgas::PeContext& ctx) {
    if (ctx.pe() == 1) {
      cs.notify_finished(ctx, 0, 0, 0, 5);
      EXPECT_EQ(ctx.fabric().pending(1), 1) << "effect still in flight";
      ctx.quiet();
      EXPECT_EQ(ctx.fabric().pending(1), 0);
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      EXPECT_EQ(cs.read(ctx, 0, 0), 5u);
    }
    ctx.barrier();
  });
}

TEST(Completion, FinishedPrefixStopsAtFirstPending) {
  pgas::Runtime rt(rcfg(2));
  CompletionSpace cs(rt.heap());
  rt.run([&](pgas::PeContext& ctx) {
    if (ctx.pe() == 1) {
      // Blocks 0, 1, 3 finished; block 2 still claimed.
      cs.notify_finished(ctx, 0, 0, 0, 75);
      cs.notify_finished(ctx, 0, 0, 1, 37);
      cs.notify_finished(ctx, 0, 0, 3, 9);
      ctx.quiet();
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      EXPECT_EQ(cs.finished_prefix(ctx, 0, 9), 2u);
      EXPECT_EQ(cs.finished_count(ctx, 0, 9), 3u);
    }
    ctx.barrier();
  });
}

TEST(Completion, ClearEpochResetsOnlyThatEpoch) {
  pgas::Runtime rt(rcfg(2));
  CompletionSpace cs(rt.heap());
  rt.run([&](pgas::PeContext& ctx) {
    if (ctx.pe() == 1) {
      cs.notify_finished(ctx, 0, 0, 0, 1);
      cs.notify_finished(ctx, 0, 1, 0, 2);
      ctx.quiet();
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      cs.clear_epoch(ctx, 0);
      EXPECT_EQ(cs.read(ctx, 0, 0), 0u);
      EXPECT_EQ(cs.read(ctx, 1, 0), 2u);
    }
    ctx.barrier();
  });
}

TEST(Completion, AllotmentRecordClaimedEnd) {
  // 150-task allotment with 3 claimed blocks {75,37,19}: reclaim target is
  // base + 131.
  const AllotmentRecord rec{0, 1000, 150, 3};
  EXPECT_EQ(rec.claimed_end_abs(), 1000u + 75 + 37 + 19);
  const AllotmentRecord all{0, 0, 150, steal_block_count(150)};
  EXPECT_EQ(all.claimed_end_abs(), 150u);
  const AllotmentRecord none{1, 77, 150, 0};
  EXPECT_EQ(none.claimed_end_abs(), 77u);
}

}  // namespace
}  // namespace sws::core
