// Task descriptors, serialization, and the function registry.
#include <gtest/gtest.h>

#include "core/task.hpp"
#include "core/task_registry.hpp"

namespace sws::core {
namespace {

struct Args3 {
  std::uint32_t a, b, c;
};

TEST(Task, OfPodRoundTrips) {
  const Task t = Task::of(7, Args3{1, 2, 3});
  EXPECT_EQ(t.fn(), 7u);
  EXPECT_EQ(t.payload_len(), sizeof(Args3));
  const Args3 back = t.payload_as<Args3>();
  EXPECT_EQ(back.a, 1u);
  EXPECT_EQ(back.b, 2u);
  EXPECT_EQ(back.c, 3u);
}

TEST(Task, EmptyPayload) {
  const Task t(3, nullptr, 0);
  EXPECT_EQ(t.payload_len(), 0u);
  EXPECT_EQ(t.serialized_bytes(), kTaskHeaderBytes);
}

TEST(Task, SerializeDeserializeRoundTrips) {
  const Task t = Task::of(42, Args3{9, 8, 7});
  std::byte slot[64];
  t.serialize(slot, sizeof(slot));
  const Task back = Task::deserialize(slot, sizeof(slot));
  EXPECT_EQ(back.fn(), 42u);
  EXPECT_EQ(back.payload_as<Args3>().c, 7u);
}

TEST(Task, SerializeIntoMinimalSlot) {
  const Task t = Task::of(1, std::uint32_t{5});
  std::byte slot[kTaskHeaderBytes + 4];
  t.serialize(slot, sizeof(slot));
  EXPECT_EQ(Task::deserialize(slot, sizeof(slot)).payload_as<std::uint32_t>(),
            5u);
}

TEST(Task, OversizedPayloadRejected) {
  std::byte big[kMaxTaskPayload + 1];
  EXPECT_THROW(Task(0, big, sizeof(big)), std::invalid_argument);
}

TEST(Task, SerializeTooSmallSlotAborts) {
  const Task t = Task::of(0, Args3{1, 2, 3});
  std::byte slot[8];
  EXPECT_DEATH(t.serialize(slot, sizeof(slot)), "fit");
}

TEST(Task, DeserializeCorruptSlotAborts) {
  std::byte slot[16];
  const std::uint32_t fn = 0, len = 9999;  // len > slot
  std::memcpy(slot, &fn, 4);
  std::memcpy(slot + 4, &len, 4);
  EXPECT_DEATH(Task::deserialize(slot, sizeof(slot)), "corrupt");
}

TEST(Registry, RegisterAndLookup) {
  TaskRegistry reg;
  const TaskFnId id = reg.register_fn(
      "t", [](Worker&, std::span<const std::byte>) {});
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.id_of("t"), id);
  EXPECT_TRUE(static_cast<bool>(reg.fn(id)));
}

TEST(Registry, IdsAreSequential) {
  TaskRegistry reg;
  const auto a = reg.register_fn("a", [](Worker&, std::span<const std::byte>) {});
  const auto b = reg.register_fn("b", [](Worker&, std::span<const std::byte>) {});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
}

TEST(Registry, DuplicateNameThrows) {
  TaskRegistry reg;
  reg.register_fn("x", [](Worker&, std::span<const std::byte>) {});
  EXPECT_THROW(reg.register_fn("x", [](Worker&, std::span<const std::byte>) {}),
               std::invalid_argument);
}

TEST(Registry, UnknownNameThrows) {
  TaskRegistry reg;
  EXPECT_THROW(reg.id_of("missing"), std::invalid_argument);
}

TEST(Registry, NullFunctionRejected) {
  TaskRegistry reg;
  EXPECT_THROW(reg.register_fn("n", TaskFn{}), std::invalid_argument);
}

}  // namespace
}  // namespace sws::core
