// The virtual-time sequencer: the determinism and ordering guarantees the
// whole reproduction rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "net/parallel_time_model.hpp"
#include "net/ready_heap.hpp"
#include "net/time_model.hpp"

namespace sws::net {
namespace {

/// Run `body(pe)` on npes threads under the model, with begin/end framing.
void run_pes(TimeModel& tm, int npes,
             const std::function<void(int)>& body) {
  tm.reset(npes);
  std::vector<std::thread> ts;
  for (int pe = 0; pe < npes; ++pe)
    ts.emplace_back([&, pe] {
      tm.pe_begin(pe);
      body(pe);
      tm.pe_end(pe);
    });
  for (auto& t : ts) t.join();
}

TEST(VirtualTime, ClocksAdvanceExactly) {
  VirtualTimeModel tm(2);
  run_pes(tm, 2, [&](int pe) {
    tm.advance(pe, pe == 0 ? 100 : 250);
    tm.advance(pe, 50);
  });
  EXPECT_EQ(tm.now(0), 150u);
  EXPECT_EQ(tm.now(1), 300u);
}

TEST(VirtualTime, ExecutionOrderFollowsMinClock) {
  // Each PE appends its id after each advance; the interleaving must be
  // exactly the (vtime, pe) order regardless of thread scheduling.
  VirtualTimeModel tm(3);
  std::vector<int> order;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int> this_order;
    run_pes(tm, 3, [&](int pe) {
      for (int i = 0; i < 3; ++i) {
        tm.advance(pe, static_cast<Nanos>(100 * (pe + 1)));
        this_order.push_back(pe);  // safe: only the baton holder runs
      }
    });
    if (trial == 0)
      order = this_order;
    else
      EXPECT_EQ(this_order, order) << "nondeterministic interleaving";
  }
  // PE0 advances 100/200/300; PE1 200/400/600; PE2 300/600/900.
  // Events sorted by (completion time, pe): 100·0, 200·0, 200·1, 300·0,
  // 300·2, 400·1, 600·1, 600·2, 900·2.
  const std::vector<int> expect = {0, 0, 1, 0, 2, 1, 1, 2, 2};
  EXPECT_EQ(order, expect);
}

TEST(VirtualTime, ZeroAdvanceKeepsBatonOnTies) {
  VirtualTimeModel tm(2);
  std::vector<int> order;
  run_pes(tm, 2, [&](int pe) {
    tm.advance(pe, 10);
    order.push_back(pe);
  });
  // Both reach t=10; tie-break by id: PE0 runs first from t=0.
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(VirtualTime, ArbiterReordersTiedPes) {
  // The schedule explorer's hook: when several PEs are tied at the time
  // floor, the arbiter (not the lowest-id default) picks who runs.
  VirtualTimeModel tm(3);
  std::vector<std::vector<int>> ready_sets;
  tm.set_ready_arbiter([&](int caller, const std::vector<int>& ready,
                           Nanos /*now*/) {
    EXPECT_GE(caller, 0);
    EXPECT_LT(caller, 3);
    EXPECT_TRUE(std::is_sorted(ready.begin(), ready.end()))
        << "tied PEs must be presented in ascending id order";
    EXPECT_GE(ready.size(), 2u);
    ready_sets.push_back(ready);
    return ready.back();  // deliberately invert the default tie-break
  });
  std::vector<int> order;
  run_pes(tm, 3, [&](int pe) {
    tm.advance(pe, 10);
    order.push_back(pe);
  });
  // All three tie at t=10; highest-id-first is the arbiter's doing.
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
  EXPECT_FALSE(ready_sets.empty());

  // Clearing the arbiter restores the deterministic lowest-id default.
  tm.set_ready_arbiter(nullptr);
  order.clear();
  run_pes(tm, 3, [&](int pe) {
    tm.advance(pe, 10);
    order.push_back(pe);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(VirtualTime, DeliveryHookFiresAtTimeFloor) {
  VirtualTimeModel tm(2);
  std::vector<Nanos> hook_times;
  tm.set_delivery_hook([&](Nanos now) {
    hook_times.push_back(now);
    return net::kNoPendingDeadline;
  });
  run_pes(tm, 2, [&](int pe) { tm.advance(pe, pe == 0 ? 100 : 70); });
  ASSERT_FALSE(hook_times.empty());
  // Hook times never decrease: deliveries respect global time order.
  for (std::size_t i = 1; i < hook_times.size(); ++i)
    EXPECT_GE(hook_times[i], hook_times[i - 1]);
}

TEST(VirtualTime, ManyPesTerminate) {
  VirtualTimeModel tm(64);
  std::atomic<int> done{0};
  run_pes(tm, 64, [&](int pe) {
    for (int i = 0; i < 10; ++i) tm.advance(pe, 17 + pe);
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(VirtualTime, ResetClearsClocks) {
  VirtualTimeModel tm(2);
  run_pes(tm, 2, [&](int pe) { tm.advance(pe, 500); });
  tm.reset(2);
  EXPECT_EQ(tm.now(0), 0u);
  EXPECT_EQ(tm.now(1), 0u);
}

TEST(VirtualTime, IsVirtual) {
  VirtualTimeModel tm(1);
  EXPECT_TRUE(tm.is_virtual());
  EXPECT_EQ(tm.npes(), 1);
}

TEST(VirtualTime, HorizonBatchingSkipsHookUntilReportedDeadline) {
  // A single PE has no competing clock, so its batching horizon is
  // whatever deadline the delivery hook reports: advances strictly below
  // it must not re-enter the sequencer, and the first advance reaching it
  // must fire the hook again.
  VirtualTimeModel tm(1);
  std::vector<Nanos> hook_times;
  tm.set_delivery_hook([&](Nanos now) {
    hook_times.push_back(now);
    return now < 100 ? Nanos{100} : kNoPendingDeadline;
  });
  run_pes(tm, 1, [&](int pe) {
    tm.advance(pe, 10);  // slow path (initial horizon 0): hook at 10
    tm.advance(pe, 30);  // 40  < 100: batched
    tm.advance(pe, 30);  // 70  < 100: batched
    tm.advance(pe, 30);  // 100 >= 100: hook at 100
  });
  // pe_end leaves no runnable PE, so no further hook fires.
  EXPECT_EQ(hook_times, (std::vector<Nanos>{10, 100}));
}

TEST(VirtualTime, ClampHorizonForcesDeliverySweep) {
  // What Fabric::enqueue_nbi does after queueing an op: shrink the
  // issuing PE's horizon to the delivery deadline so batching cannot run
  // past it.
  VirtualTimeModel tm(1);
  std::vector<Nanos> hook_times;
  tm.set_delivery_hook([&](Nanos now) {
    hook_times.push_back(now);
    return kNoPendingDeadline;  // hook reports nothing pending...
  });
  run_pes(tm, 1, [&](int pe) {
    tm.advance(pe, 10);          // hook at 10, horizon now unbounded
    tm.clamp_horizon(pe, 50);    // ...but an op was just scheduled for 50
    tm.advance(pe, 30);          // 40 < 50: batched
    tm.advance(pe, 30);          // 70 >= 50: hook at 70
  });
  EXPECT_EQ(hook_times, (std::vector<Nanos>{10, 70}));
}

TEST(VirtualTime, ReferenceModeMatchesOptimizedSchedule) {
  // The legacy linear-scan strategy and the heap + horizon-batching one
  // must produce the same interleaving and the same final clocks.
  const auto workload = [](VirtualTimeModel& tm, std::vector<int>& order) {
    run_pes(tm, 3, [&](int pe) {
      for (int i = 0; i < 3; ++i) {
        tm.advance(pe, static_cast<Nanos>(100 * (pe + 1)));
        order.push_back(pe);
      }
    });
  };
  VirtualTimeModel opt(3), ref(3);
  ref.set_reference_mode(true);
  EXPECT_TRUE(ref.reference_mode());
  std::vector<int> opt_order, ref_order;
  workload(opt, opt_order);
  workload(ref, ref_order);
  EXPECT_EQ(opt_order, ref_order);
  for (int pe = 0; pe < 3; ++pe) EXPECT_EQ(opt.now(pe), ref.now(pe));
}

TEST(VirtualTime, ReferenceModeFiresHookEveryEvent) {
  // Reference mode disables batching: every advance is a sequencer event
  // and fires the delivery hook, like the pre-heap implementation.
  VirtualTimeModel tm(1);
  tm.set_reference_mode(true);
  std::vector<Nanos> hook_times;
  tm.set_delivery_hook([&](Nanos now) {
    hook_times.push_back(now);
    return kNoPendingDeadline;
  });
  run_pes(tm, 1, [&](int pe) {
    for (int i = 1; i <= 4; ++i) tm.advance(pe, 10);
  });
  EXPECT_EQ(hook_times, (std::vector<Nanos>{10, 20, 30, 40}));
}

TEST(VirtualTime, NowIsReadableFromOtherPes) {
  // now() is lock-free; the baton holder may read any parked PE's clock.
  VirtualTimeModel tm(2);
  run_pes(tm, 2, [&](int pe) {
    tm.advance(pe, pe == 0 ? 10 : 100);
    // When PE1's first advance returns (t=100), PE0 has already published
    // its second advance (10 + 100) and parked waiting for the baton.
    if (pe == 1) {
      EXPECT_EQ(tm.now(0), 110u);
    }
    tm.advance(pe, 100);
  });
  EXPECT_EQ(tm.now(0), 110u);
  EXPECT_EQ(tm.now(1), 200u);
}

TEST(ReadyHeap, TopFollowsUpdatesAndRemovals) {
  ReadyHeap h;
  h.rebuild(4);
  EXPECT_EQ(h.top(), 0);  // all zero: lowest id wins
  EXPECT_EQ(h.second_vtime(), 0u);
  h.update(0, 50);  // increase-key
  EXPECT_EQ(h.top(), 1);
  h.update(1, 30);
  h.update(2, 20);
  h.update(3, 40);
  EXPECT_EQ(h.top(), 2);
  EXPECT_EQ(h.top_vtime(), 20u);
  EXPECT_EQ(h.second_vtime(), 30u);
  h.update(3, 10);  // decrease-key
  EXPECT_EQ(h.top(), 3);
  EXPECT_EQ(h.second_vtime(), 20u);
  h.remove(3);
  EXPECT_EQ(h.top(), 2);
  EXPECT_FALSE(h.contains(3));
  EXPECT_EQ(h.vtime_of(0), 50u);
  h.remove(2);
  h.remove(1);
  EXPECT_EQ(h.top(), 0);
  EXPECT_EQ(h.second_vtime(), ReadyHeap::kNoVtime);
  h.remove(0);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.top(), -1);
  EXPECT_EQ(h.top_vtime(), ReadyHeap::kNoVtime);
}

TEST(ReadyHeap, MatchesNaiveScanUnderRandomOps) {
  // Reference check against the linear scan the heap replaced: after
  // every random update/remove, top() and second_vtime() must agree.
  std::mt19937_64 rng(12345);
  const int n = 17;
  ReadyHeap h;
  h.rebuild(n);
  std::vector<Nanos> naive(n, 0);
  std::vector<bool> alive(n, true);
  const auto naive_top = [&] {
    int best = -1;
    for (int i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      if (best < 0 || naive[i] < naive[best]) best = i;
    }
    return best;
  };
  const auto naive_second = [&] {
    const int t = naive_top();
    Nanos s = ReadyHeap::kNoVtime;
    for (int i = 0; i < n; ++i)
      if (alive[i] && i != t && naive[i] < s) s = naive[i];
    return s;
  };
  for (int step = 0; step < 2000; ++step) {
    const int pe = static_cast<int>(rng() % n);
    if (!alive[pe]) continue;
    if (rng() % 16 == 0 && h.size() > 1) {
      h.remove(pe);
      alive[pe] = false;
    } else {
      // Mostly increase-key (the advance() pattern), sometimes decrease.
      const Nanos v = rng() % 8 == 0 ? naive[pe] / 2 : naive[pe] + rng() % 100;
      h.update(pe, v);
      naive[pe] = v;
    }
    ASSERT_EQ(h.top(), naive_top()) << "step " << step;
    ASSERT_EQ(h.second_vtime(), naive_second()) << "step " << step;
  }
}

// --- ParallelTimeModel: the sharded windowed sequencer, bare ------------
//
// End-to-end byte-identity is enforced by tests/test_determinism_ab.cpp;
// these exercise the model directly: gated actions (with declared
// conflict footprints) must serialize in exact (vtime, pe) order at any
// shard count, and the solo license must elide redundant global parks.

TEST(ParallelTime, GatedActionsMatchSerialOrder) {
  // Mixed private/gated event stream. Each PE logs (pe, clock) at every
  // gate entry — the global serialization point — and the sequence must
  // be identical between the serial sequencer (global_begin is a no-op:
  // one PE runs at a time) and the windowed engine at several shard
  // counts, which exercises windows, per-target caps, deferrals, and
  // license skips on the same schedule.
  const int npes = 6;
  auto program = [npes](TimeModel& tm, std::vector<std::pair<int, Nanos>>& log,
                        std::mutex& mu) {
    run_pes(tm, npes, [&](int pe) {
      for (int i = 0; i < 60; ++i) {
        tm.advance(pe, 100 + 7 * ((pe * 31 + i) % 5));
        if (i % 3 == pe % 3) {
          const int target = (pe + 1 + i) % npes;
          if (target == pe) continue;
          tm.global_begin(pe, target);
          {
            // The append runs right after gate entry, where the PE is
            // the sole (or licensed solo) runner, so appends are already
            // serialized in virtual order; the mutex only keeps the
            // data-race checker happy.
            std::lock_guard<std::mutex> lk(mu);
            log.emplace_back(pe, tm.now(pe));
          }
          tm.advance(pe, 1500);  // mid-charge park: past the lookahead
          tm.global_end(pe);
        }
      }
    });
  };

  std::vector<std::pair<int, Nanos>> serial_log;
  std::vector<Nanos> serial_clocks;
  {
    VirtualTimeModel tm(npes);
    std::mutex mu;
    program(tm, serial_log, mu);
    for (int pe = 0; pe < npes; ++pe) serial_clocks.push_back(tm.now(pe));
  }
  ASSERT_FALSE(serial_log.empty());

  for (const int shards : {1, 2, 4}) {
    ParallelTimeModel tm(npes, shards, /*lookahead=*/1400);
    std::vector<std::pair<int, Nanos>> log;
    std::mutex mu;
    program(tm, log, mu);
    EXPECT_EQ(log, serial_log) << "shards=" << shards;
    for (int pe = 0; pe < npes; ++pe)
      EXPECT_EQ(tm.now(pe), serial_clocks[static_cast<std::size_t>(pe)])
          << "shards=" << shards << " pe=" << pe;
    const auto es = tm.engine_stats();
    // Every park is matched by exactly one release.
    EXPECT_EQ(es.parks,
              es.window_pes + es.solo_private + es.solo_global);
  }
}

TEST(ParallelTime, SoloLicenseElidesGlobalParks) {
  // One PE left alone in the system keeps the solo license across gated
  // actions: after the first park, every further global_begin/global_sync
  // below its (unbounded) horizon must skip the park entirely.
  ParallelTimeModel tm(2, 2, /*lookahead=*/1400);
  run_pes(tm, 2, [&](int pe) {
    if (pe != 0) return;  // PE 1 exits immediately; PE 0 runs gated ops
    for (int i = 0; i < 20; ++i) {
      tm.global_begin(0, 1);
      tm.advance(0, 1500);
      tm.global_end(0);
      tm.global_sync(0);
    }
  });
  const auto es = tm.engine_stats();
  EXPECT_GE(es.license_skips, 30u);  // 40 gated actions, minus warm-up
  EXPECT_LE(es.solo_global, 10u);
}

TEST(RealTime, AdvanceTakesAtLeastDt) {
  RealTimeModel tm(1);
  tm.reset(1);
  const Nanos t0 = tm.now(0);
  tm.advance(0, 2'000'000);  // 2 ms -> sleep path
  const Nanos t1 = tm.now(0);
  EXPECT_GE(t1 - t0, 2'000'000u);
  EXPECT_FALSE(tm.is_virtual());
}

TEST(RealTime, ShortAdvanceSpins) {
  RealTimeModel tm(1);
  tm.reset(1);
  const Nanos t0 = tm.now(0);
  tm.advance(0, 10'000);  // 10 µs -> spin path
  EXPECT_GE(tm.now(0) - t0, 10'000u);
}

TEST(RealTime, NowIsMonotonic) {
  RealTimeModel tm(1);
  tm.reset(1);
  Nanos prev = tm.now(0);
  for (int i = 0; i < 100; ++i) {
    const Nanos t = tm.now(0);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace sws::net
