// Tracer ring semantics and scheduler integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/scheduler.hpp"
#include "core/trace.hpp"

namespace sws::core {
namespace {

TEST(Tracer, DisabledByDefault) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.record(0, 1, TraceKind::kTaskExec);  // must be a harmless no-op
}

TEST(Tracer, RecordsAndListsEvents) {
  Tracer t(2, 16);
  ASSERT_TRUE(t.enabled());
  t.record(0, 100, TraceKind::kTaskExec, 7);
  t.record(0, 200, TraceKind::kStealOk, 1, 5);
  t.record(1, 150, TraceKind::kRelease);
  const auto pe0 = t.events(0);
  ASSERT_EQ(pe0.size(), 2u);
  EXPECT_EQ(pe0[0].time, 100u);
  EXPECT_EQ(pe0[1].kind, TraceKind::kStealOk);
  EXPECT_EQ(pe0[1].b, 5u);
  EXPECT_EQ(t.events(1).size(), 1u);
}

TEST(Tracer, MergedIsTimeOrdered) {
  Tracer t(3, 8);
  t.record(2, 300, TraceKind::kTaskExec);
  t.record(0, 100, TraceKind::kTaskExec);
  t.record(1, 200, TraceKind::kTaskExec);
  t.record(0, 200, TraceKind::kRelease);  // tie with pe1: pe0 first
  const auto all = t.merged();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].time, 100u);
  EXPECT_EQ(all[1].pe, 0);
  EXPECT_EQ(all[2].pe, 1);
  EXPECT_EQ(all[3].time, 300u);
}

TEST(Tracer, MergedTieBreaksByPeThenSequence) {
  // Regression: events sharing a timestamp must merge in (pe, ring
  // sequence) order regardless of cross-PE insertion interleaving, or
  // dumps of identical runs differ byte-wise.
  Tracer t(2, 8);
  t.record(1, 100, TraceKind::kTaskExec, 10);
  t.record(0, 100, TraceKind::kTaskExec, 1);
  t.record(1, 100, TraceKind::kRelease, 11);
  t.record(0, 100, TraceKind::kRelease, 2);
  const auto all = t.merged();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].pe, 0);
  EXPECT_EQ(all[0].a, 1u);
  EXPECT_EQ(all[1].pe, 0);
  EXPECT_EQ(all[1].a, 2u);
  EXPECT_EQ(all[2].pe, 1);
  EXPECT_EQ(all[2].a, 10u);
  EXPECT_EQ(all[3].pe, 1);
  EXPECT_EQ(all[3].a, 11u);
}

TEST(Tracer, MergedEqualTimeOrderSurvivesRingWrap) {
  // Same-time events after the ring wraps: the per-PE sequence keeps
  // counting across overwrites, so the retained suffix still merges in
  // recording order.
  Tracer t(1, 4);
  for (std::uint64_t i = 0; i < 11; ++i)
    t.record(0, 500, TraceKind::kTaskExec, i);
  const auto all = t.merged();
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].a, 7 + i);
    if (i > 0) {
      EXPECT_LT(all[i - 1].seq, all[i].seq);
    }
  }
  EXPECT_TRUE(t.truncated());
}

TEST(Tracer, RingOverwritesOldest) {
  Tracer t(1, 4);
  for (std::uint64_t i = 0; i < 10; ++i)
    t.record(0, i, TraceKind::kTaskExec, i);
  const auto evs = t.events(0);
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].a, 6u) << "oldest retained event";
  EXPECT_EQ(evs[3].a, 9u);
}

TEST(Tracer, CountByKind) {
  Tracer t(2, 16);
  t.record(0, 1, TraceKind::kStealOk);
  t.record(1, 2, TraceKind::kStealOk);
  t.record(1, 3, TraceKind::kStealEmpty);
  EXPECT_EQ(t.count(TraceKind::kStealOk), 2u);
  EXPECT_EQ(t.count(TraceKind::kStealEmpty), 1u);
  EXPECT_EQ(t.count(TraceKind::kAcquire), 0u);
}

TEST(Tracer, ClearEmptiesRings) {
  Tracer t(1, 8);
  t.record(0, 1, TraceKind::kTaskExec);
  t.clear();
  EXPECT_TRUE(t.events(0).empty());
}

TEST(Tracer, DumpIsHumanReadable) {
  Tracer t(1, 8);
  t.record(0, 42, TraceKind::kStealOk, 3, 19);
  std::ostringstream os;
  t.dump(os);
  EXPECT_NE(os.str().find("42ns pe0 steal_ok a=3 b=19"), std::string::npos);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  Tracer t(2, 8);
  t.record(0, 1000, TraceKind::kTaskExec, 3);
  t.record(1, 2500, TraceKind::kStealOk, 0, 7);
  std::ostringstream os;
  t.dump_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"task_exec\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos) << "ns -> us scaling";
  // Balanced braces and exactly one comma between the two events.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Tracer, ChromeJsonEmptyTracerIsEmptyArray) {
  Tracer t(1, 4);
  std::ostringstream os;
  t.dump_chrome_json(os);
  EXPECT_EQ(os.str(), "[\n]\n");
}

TEST(Tracer, SpanPhasesAreCountable) {
  Tracer t(1, 16);
  t.begin(0, 100, TraceKind::kStealSpan, 42, 1);
  t.complete(0, 110, 20, TraceKind::kFabricOp, 42,
             static_cast<std::uint64_t>(net::OpKind::kGet), 0);
  t.end(0, 200, TraceKind::kStealSpan, 42, 1, 2 << 8);
  t.counter(0, 250, TraceKind::kQueueDepth, 5);
  EXPECT_EQ(t.count(TraceKind::kStealSpan), 2u);
  EXPECT_EQ(t.count(TraceKind::kStealSpan, TracePhase::kBegin), 1u);
  EXPECT_EQ(t.count(TraceKind::kStealSpan, TracePhase::kEnd), 1u);
  EXPECT_EQ(t.count(TraceKind::kFabricOp, TracePhase::kComplete), 1u);
  EXPECT_EQ(t.count(TraceKind::kQueueDepth, TracePhase::kCounter), 1u);
  EXPECT_FALSE(t.truncated());
}

TEST(Tracer, ChromeJsonEmitsSpanPhasesAndMeta) {
  Tracer t(1, 16);
  t.begin(0, 1000, TraceKind::kStealSpan, 7, 1);
  t.complete(0, 1100, 500, TraceKind::kFabricOp, 7,
             static_cast<std::uint64_t>(net::OpKind::kAmoFetchAdd),
             1 | (8u << 16));
  t.counter(0, 1200, TraceKind::kQueueDepth, 5);
  t.end(0, 2000, TraceKind::kStealSpan, 7, 1, 3 << 8);
  std::ostringstream os;
  TraceMeta meta;
  meta.protocol = "sws";
  meta.npes = 1;
  meta.slot_bytes = 64;
  t.dump_chrome_json(os, meta);
  const std::string json = os.str();
  EXPECT_NE(json.find("sws_run_meta"), std::string::npos);
  EXPECT_NE(json.find("\"protocol\":\"sws\""), std::string::npos);
  EXPECT_NE(json.find("\"truncated\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"amo_fetch_add\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":8"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TracerPool, SchedulerEmitsCoherentTrace) {
  pgas::RuntimeConfig rc;
  rc.npes = 4;
  rc.heap_bytes = 2 << 20;
  pgas::Runtime rt(rc);
  TaskRegistry reg;
  TaskFnId fn = 0;
  fn = reg.register_fn("fan", [&](Worker& w, std::span<const std::byte> b) {
    std::uint32_t d;
    std::memcpy(&d, b.data(), 4);
    w.compute(5000);
    if (d > 0)
      for (int i = 0; i < 4; ++i) w.spawn(Task::of(fn, d - 1));
  });
  PoolConfig pc;
  pc.queue.slot_bytes = 32;
  pc.trace.enable = true;
  pc.trace.events = 65536;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn(Task::of(fn, std::uint32_t{4}));
    });
  });

  const Tracer& t = pool.tracer();
  const PoolRunReport r = pool.report();
  // Trace counts must agree with the pool statistics.
  EXPECT_EQ(t.count(TraceKind::kTaskExec), r.total.tasks_executed);
  EXPECT_EQ(t.count(TraceKind::kSpawn), r.total.tasks_spawned);
  EXPECT_EQ(t.count(TraceKind::kStealOk), r.total.steals_ok);
  EXPECT_EQ(t.count(TraceKind::kTerminated), 4u);
  // Every PE's events are time-monotone.
  for (int pe = 0; pe < 4; ++pe) {
    const auto evs = pool.tracer().events(pe);
    for (std::size_t i = 1; i < evs.size(); ++i)
      ASSERT_GE(evs[i].time, evs[i - 1].time);
  }
}

TEST(TracerPool, TraceOffRecordsNothing) {
  pgas::RuntimeConfig rc;
  rc.npes = 2;
  rc.heap_bytes = 1 << 20;
  pgas::Runtime rt(rc);
  TaskRegistry reg;
  TaskFnId fn = reg.register_fn("noop", [](Worker& w,
                                           std::span<const std::byte>) {
    w.compute(10);
  });
  PoolConfig pc;
  pc.queue.slot_bytes = 32;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn(Task(fn, nullptr, 0));
    });
  });
  EXPECT_FALSE(pool.tracer().enabled());
}

}  // namespace
}  // namespace sws::core
