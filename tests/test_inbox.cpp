// Remote-spawn inbox: MPSC ordering, capacity bounds, ring reuse, and the
// Worker::spawn_on integration.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "core/inbox.hpp"
#include "core/scheduler.hpp"

namespace sws::core {
namespace {

pgas::RuntimeConfig rcfg(int npes) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 2 << 20;
  return c;
}

Task mk(std::uint32_t id) { return Task::of(0, id); }
std::uint32_t id_of(const Task& t) { return t.payload_as<std::uint32_t>(); }

TEST(Inbox, SingleSenderDeliversInOrder) {
  pgas::Runtime rt(rcfg(2));
  TaskInbox inbox(rt, 64, 32);
  rt.run([&](pgas::PeContext& ctx) {
    inbox.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      for (std::uint32_t i = 0; i < 10; ++i)
        ASSERT_TRUE(inbox.remote_push(ctx, 0, mk(i)));
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::vector<std::uint32_t> got;
      EXPECT_EQ(inbox.drain(ctx, [&](const Task& t) { got.push_back(id_of(t)); }),
                10u);
      ASSERT_EQ(got.size(), 10u);
      for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
      EXPECT_TRUE(inbox.looks_empty(ctx));
    }
    ctx.barrier();
  });
}

TEST(Inbox, RefusesWhenFull) {
  pgas::Runtime rt(rcfg(2));
  TaskInbox inbox(rt, 8, 32);
  rt.run([&](pgas::PeContext& ctx) {
    inbox.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      for (std::uint32_t i = 0; i < 8; ++i)
        ASSERT_TRUE(inbox.remote_push(ctx, 0, mk(i)));
      EXPECT_FALSE(inbox.remote_push(ctx, 0, mk(99)));
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::uint32_t n = 0;
      inbox.drain(ctx, [&](const Task&) { ++n; });
      EXPECT_EQ(n, 8u);
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      // Space reclaimed after the drain: pushes succeed again.
      EXPECT_TRUE(inbox.remote_push(ctx, 0, mk(100)));
    }
    ctx.barrier();
  });
}

TEST(Inbox, RingReusesSlotsAcrossManyWraps) {
  pgas::Runtime rt(rcfg(2));
  TaskInbox inbox(rt, 4, 32);
  rt.run([&](pgas::PeContext& ctx) {
    inbox.reset_pe(ctx);
    ctx.barrier();
    for (std::uint32_t round = 0; round < 20; ++round) {
      if (ctx.pe() == 1) {
        for (std::uint32_t i = 0; i < 4; ++i)
          ASSERT_TRUE(inbox.remote_push(ctx, 0, mk(round * 4 + i)));
      }
      ctx.barrier();
      if (ctx.pe() == 0) {
        std::vector<std::uint32_t> got;
        inbox.drain(ctx, [&](const Task& t) { got.push_back(id_of(t)); });
        ASSERT_EQ(got.size(), 4u);
        EXPECT_EQ(got[0], round * 4);
        EXPECT_EQ(got[3], round * 4 + 3);
      }
      ctx.barrier();
    }
  });
}

TEST(Inbox, MultipleSendersAllDeliver) {
  pgas::Runtime rt(rcfg(5));
  TaskInbox inbox(rt, 256, 32);
  rt.run([&](pgas::PeContext& ctx) {
    inbox.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() != 0) {
      for (std::uint32_t i = 0; i < 16; ++i)
        ASSERT_TRUE(inbox.remote_push(
            ctx, 0, mk(static_cast<std::uint32_t>(ctx.pe()) * 100 + i)));
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::set<std::uint32_t> got;
      inbox.drain(ctx, [&](const Task& t) {
        EXPECT_TRUE(got.insert(id_of(t)).second) << "duplicate delivery";
      });
      EXPECT_EQ(got.size(), 4u * 16);
    }
    ctx.barrier();
  });
}

TEST(Inbox, BatchPushDeliversInOrderWithOnePutAndOneTag) {
  // remote_push_many vectorizes the slot writes: one reservation CAS, one
  // put covering the whole contiguous run, and a single closing AMO that
  // publishes the first slot's tag — the owner's strict in-order drain
  // keeps the rest invisible until then.
  pgas::Runtime rt(rcfg(2));
  TaskInbox inbox(rt, 64, 32);
  rt.run([&](pgas::PeContext& ctx) {
    inbox.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> batch;
      for (std::uint32_t i = 0; i < 10; ++i) batch.push_back(mk(i));
      const net::FabricStats before = ctx.fabric().stats(1);
      EXPECT_EQ(inbox.remote_push_many(ctx, 0, batch), 10u);
      const net::FabricStats after = ctx.fabric().stats(1);
      EXPECT_EQ(after.ops[static_cast<int>(net::OpKind::kPut)] -
                    before.ops[static_cast<int>(net::OpKind::kPut)],
                1u)
          << "a non-wrapping batch must ship as one put";
      EXPECT_EQ(after.ops[static_cast<int>(net::OpKind::kAmoSet)] -
                    before.ops[static_cast<int>(net::OpKind::kAmoSet)],
                1u)
          << "one completion tag publishes the whole batch";
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::vector<std::uint32_t> got;
      EXPECT_EQ(
          inbox.drain(ctx, [&](const Task& t) { got.push_back(id_of(t)); }),
          10u);
      ASSERT_EQ(got.size(), 10u);
      for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
      EXPECT_TRUE(inbox.looks_empty(ctx));
    }
    ctx.barrier();
  });
}

TEST(Inbox, BatchPushWrapsRingInTwoPuts) {
  pgas::Runtime rt(rcfg(2));
  TaskInbox inbox(rt, 8, 32);
  rt.run([&](pgas::PeContext& ctx) {
    inbox.reset_pe(ctx);
    ctx.barrier();
    // Advance the ring cursor to 5 so a 6-task batch straddles the wrap.
    if (ctx.pe() == 1) {
      for (std::uint32_t i = 0; i < 5; ++i)
        ASSERT_TRUE(inbox.remote_push(ctx, 0, mk(100 + i)));
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::uint32_t n = 0;
      inbox.drain(ctx, [&](const Task&) { ++n; });
      ASSERT_EQ(n, 5u);
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> batch;
      for (std::uint32_t i = 0; i < 6; ++i) batch.push_back(mk(i));
      const net::FabricStats before = ctx.fabric().stats(1);
      EXPECT_EQ(inbox.remote_push_many(ctx, 0, batch), 6u);
      const net::FabricStats after = ctx.fabric().stats(1);
      EXPECT_EQ(after.ops[static_cast<int>(net::OpKind::kPut)] -
                    before.ops[static_cast<int>(net::OpKind::kPut)],
                2u)
          << "a wrapping batch is two contiguous-segment puts";
      EXPECT_EQ(after.ops[static_cast<int>(net::OpKind::kAmoSet)] -
                    before.ops[static_cast<int>(net::OpKind::kAmoSet)],
                1u);
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::vector<std::uint32_t> got;
      inbox.drain(ctx, [&](const Task& t) { got.push_back(id_of(t)); });
      ASSERT_EQ(got.size(), 6u);
      for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(got[i], i);
    }
    ctx.barrier();
  });
}

TEST(Inbox, BatchPushTakesPartialRunWhenShortOnRoom) {
  pgas::Runtime rt(rcfg(2));
  TaskInbox inbox(rt, 8, 32);
  rt.run([&](pgas::PeContext& ctx) {
    inbox.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      for (std::uint32_t i = 0; i < 5; ++i)
        ASSERT_TRUE(inbox.remote_push(ctx, 0, mk(i)));
      std::vector<Task> batch;
      for (std::uint32_t i = 5; i < 11; ++i) batch.push_back(mk(i));
      // Only 3 slots left: the batch is clipped, never split or dropped.
      EXPECT_EQ(inbox.remote_push_many(ctx, 0, batch), 3u);
      // Completely full: a further batch refuses outright.
      EXPECT_EQ(inbox.remote_push_many(ctx, 0, batch), 0u);
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::vector<std::uint32_t> got;
      inbox.drain(ctx, [&](const Task& t) { got.push_back(id_of(t)); });
      ASSERT_EQ(got.size(), 8u);
      for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(got[i], i);
    }
    ctx.barrier();
  });
}

// ------------------------------------------------------ pool integration

struct RemoteChain {
  TaskFnId fn = 0;
  explicit RemoteChain(TaskRegistry& reg) {
    fn = reg.register_fn("chain", [this](Worker& w,
                                         std::span<const std::byte> b) {
      std::uint32_t hops;
      std::memcpy(&hops, b.data(), 4);
      w.compute(1000);
      if (hops == 0) return;
      // Ping the task around the ring explicitly.
      w.spawn_on((w.pe() + 1) % w.npes(), Task::of(fn, hops - 1));
    });
  }
};

TEST(InboxPool, SpawnOnMovesTasksAcrossPes) {
  pgas::Runtime rt(rcfg(4));
  TaskRegistry reg;
  RemoteChain chain(reg);
  PoolConfig pc;
  pc.queue.slot_bytes = 32;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn(Task::of(chain.fn, std::uint32_t{12}));
    });
  });
  const PoolRunReport r = pool.report();
  EXPECT_EQ(r.total.tasks_executed, 13u);
  // The chain visits PEs round-robin: 0,1,2,3,0,... — every PE executed.
  for (int pe = 0; pe < 4; ++pe)
    EXPECT_GE(pool.worker_stats(pe).tasks_executed, 3u) << "pe " << pe;
}

TEST(InboxPool, SpawnOnManyDeliversABurstPerTarget) {
  // Worker::spawn_on_many pushes a whole burst through one batched inbox
  // put instead of a push per task; every task must still run exactly
  // once, wherever it lands.
  pgas::Runtime rt(rcfg(4));
  TaskRegistry reg;
  std::atomic<std::uint32_t> ran{0};
  TaskFnId fn =
      reg.register_fn("tick", [&](Worker& w, std::span<const std::byte>) {
        w.compute(500);
        ran.fetch_add(1, std::memory_order_relaxed);
      });
  PoolConfig pc;
  pc.queue.slot_bytes = 32;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() != 0) return;
      std::vector<Task> burst;
      for (int i = 0; i < 24; ++i)
        burst.push_back(Task::of(fn, std::uint32_t{0}));
      for (int pe = 1; pe < w.npes(); ++pe) w.spawn_on_many(pe, burst);
    });
  });
  EXPECT_EQ(ran.load(), 72u);
  EXPECT_EQ(pool.report().total.tasks_executed, 72u);
  for (int pe = 1; pe < 4; ++pe)
    EXPECT_GE(pool.worker_stats(pe).tasks_executed, 1u) << "pe " << pe;
}

TEST(InboxPool, SpawnOnSelfBehavesLikeSpawn) {
  pgas::Runtime rt(rcfg(2));
  TaskRegistry reg;
  TaskFnId fn = reg.register_fn("noop", [](Worker& w,
                                           std::span<const std::byte>) {
    w.compute(100);
  });
  PoolConfig pc;
  pc.queue.slot_bytes = 32;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0)
        for (int i = 0; i < 5; ++i) w.spawn_on(0, Task(fn, nullptr, 0));
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, 5u);
}

TEST(InboxPool, RemoteSpawnDisabledFallsBackToLocal) {
  pgas::Runtime rt(rcfg(2));
  TaskRegistry reg;
  TaskFnId fn = reg.register_fn("noop", [](Worker& w,
                                           std::span<const std::byte>) {
    w.compute(100);
  });
  PoolConfig pc;
  pc.queue.slot_bytes = 32;
  pc.remote_spawn = false;
  TaskPool pool(rt, reg, pc);
  EXPECT_EQ(pool.inbox(), nullptr);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0) w.spawn_on(1, Task(fn, nullptr, 0));
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, 1u);
  EXPECT_EQ(pool.worker_stats(0).tasks_executed, 1u) << "ran locally";
}

TEST(InboxPool, OverflowedInboxFallsBackToLocalExecution) {
  // PE 1 sits at the post-seed barrier while PE 0 scatters 32 tasks into
  // its capacity-4 inbox: the pushes past the first 4 must exhaust their
  // retries and run locally, with no task lost or run twice.
  pgas::Runtime rt(rcfg(2));
  TaskRegistry reg;
  TaskFnId fn = reg.register_fn("noop", [](Worker& w,
                                           std::span<const std::byte>) {
    w.compute(100);
  });
  PoolConfig pc;
  pc.queue.slot_bytes = 32;
  pc.inbox_capacity = 4;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0)
        for (int i = 0; i < 32; ++i) w.spawn_on(1, Task(fn, nullptr, 0));
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, 32u);
  EXPECT_GE(pool.worker_stats(0).tasks_executed, 28u)
      << "overflowed spawns must execute on the sender";
  EXPECT_LE(pool.worker_stats(1).tasks_executed, 4u);
}

TEST(InboxPool, OverflowFallbackConservesTasksOnRealBackend) {
  // Same overflow pressure with preemptive threads: the receiver may or
  // may not drain mid-storm, but conservation must hold either way.
  pgas::RuntimeConfig rc = rcfg(2);
  rc.mode = pgas::TimeMode::kReal;
  pgas::Runtime rt(rc);
  TaskRegistry reg;
  TaskFnId fn = reg.register_fn("noop", [](Worker& w,
                                           std::span<const std::byte>) {
    w.compute(100);
  });
  PoolConfig pc;
  pc.queue.slot_bytes = 32;
  pc.inbox_capacity = 4;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0)
        for (int i = 0; i < 64; ++i) w.spawn_on(1, Task(fn, nullptr, 0));
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, 64u);
}

TEST(InboxPool, ScatterFromRootBalancesWithoutStealing) {
  // spawn_on as an explicit initial-distribution mechanism: root scatters
  // one long task per PE; everyone works without a single steal.
  pgas::Runtime rt(rcfg(4));
  TaskRegistry reg;
  TaskFnId fn = reg.register_fn("work", [](Worker& w,
                                           std::span<const std::byte>) {
    w.compute(1'000'000);
  });
  PoolConfig pc;
  pc.queue.slot_bytes = 32;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() == 0)
        for (int pe = 0; pe < w.npes(); ++pe)
          w.spawn_on(pe, Task(fn, nullptr, 0));
    });
  });
  for (int pe = 0; pe < 4; ++pe)
    EXPECT_EQ(pool.worker_stats(pe).tasks_executed, 1u) << "pe " << pe;
}

}  // namespace
}  // namespace sws::core
