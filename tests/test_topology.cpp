#include <gtest/gtest.h>

#include <stdexcept>

#include "net/network_model.hpp"
#include "net/topology.hpp"

namespace sws::net {
namespace {

// ------------------------------------------------------------ spec parsing

TEST(TopologySpec, ParseFlat) {
  EXPECT_TRUE(TopologySpec::parse("flat").is_flat());
  EXPECT_TRUE(TopologySpec::parse("").is_flat());
  EXPECT_EQ(TopologySpec::parse("flat").ntiers(), 1);
  EXPECT_EQ(TopologySpec::flat().to_string(), "flat");
}

TEST(TopologySpec, ParseIsOutermostFirst) {
  // "2x4x48" = 2 racks x 4 nodes x 48 cores; levels store innermost-first.
  const TopologySpec s = TopologySpec::parse("2x4x48");
  ASSERT_EQ(s.levels.size(), 3u);
  EXPECT_EQ(s.levels[0], 48);
  EXPECT_EQ(s.levels[1], 4);
  EXPECT_EQ(s.levels[2], 2);
  EXPECT_EQ(s.ntiers(), 3);
  EXPECT_EQ(s.capacity(), 384);
  EXPECT_EQ(s.to_string(), "2x4x48");
}

TEST(TopologySpec, ParseUnboundedOuter) {
  const TopologySpec s = TopologySpec::parse("*x48");
  EXPECT_EQ(s.ntiers(), 2);
  EXPECT_EQ(s.capacity(), 0) << "unbounded spec has no capacity bound";
  EXPECT_EQ(s.to_string(), "*x48");
  EXPECT_EQ(s, TopologySpec::two_level(48));
}

TEST(TopologySpec, ParseRejectsMalformedInput) {
  EXPECT_THROW(TopologySpec::parse("4x"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("x4"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("4x-2"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("4x0"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("abc"), std::invalid_argument);
  EXPECT_THROW(TopologySpec::parse("4x*x2"), std::invalid_argument)
      << "'*' only valid outermost";
  EXPECT_THROW(TopologySpec::parse("2x2x2x2x2x2x2"), std::invalid_argument)
      << "more than kMaxTiers levels";
}

TEST(TopologySpec, RoundTripsThroughToString) {
  for (const char* spec : {"flat", "44x48", "2x4x48", "*x8", "16"})
    EXPECT_EQ(TopologySpec::parse(spec).to_string(), spec);
}

// ------------------------------------------------------------ distance math

TEST(Topology, FlatDistanceIsBinary) {
  const Topology topo(8);
  EXPECT_EQ(topo.ntiers(), 1);
  for (int a = 0; a < 8; ++a)
    for (int b = 0; b < 8; ++b)
      EXPECT_EQ(topo.distance(a, b), a == b ? 0 : 1);
}

TEST(Topology, TwoLevelDistance) {
  const Topology topo(TopologySpec::two_level(4), 12);
  EXPECT_EQ(topo.distance(0, 0), 0);
  EXPECT_EQ(topo.distance(0, 3), 1);
  EXPECT_EQ(topo.distance(0, 4), 2);
  EXPECT_EQ(topo.distance(5, 7), 1);
  EXPECT_EQ(topo.distance(7, 8), 2);
  EXPECT_EQ(topo.distance(8, 11), 1);
}

TEST(Topology, ThreeTierDistanceAndSymmetry) {
  // 2 racks x 2 nodes x 4 cores.
  const Topology topo(TopologySpec::parse("2x2x4"), 16);
  EXPECT_EQ(topo.distance(0, 1), 1);   // same node
  EXPECT_EQ(topo.distance(0, 5), 2);   // same rack, other node
  EXPECT_EQ(topo.distance(0, 9), 3);   // other rack
  EXPECT_EQ(topo.distance(12, 15), 1);
  for (int a : {0, 3, 7, 9, 15})
    for (int b : {1, 4, 8, 14})
      EXPECT_EQ(topo.distance(a, b), topo.distance(b, a));
}

TEST(Topology, GroupsAndMembers) {
  const Topology topo(TopologySpec::parse("2x2x4"), 16);
  EXPECT_EQ(topo.group_size(1), 4);
  EXPECT_EQ(topo.group_size(2), 8);
  EXPECT_EQ(topo.group_count(1), 4);
  EXPECT_EQ(topo.group_count(2), 2);
  EXPECT_EQ(topo.group_of(6, 1), 1);
  EXPECT_EQ(topo.group_of(6, 2), 0);
  EXPECT_EQ(topo.group_of(13, 2), 1);
  EXPECT_EQ(topo.group_members(1, 1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(topo.group_members(2, 1),
            (std::vector<int>{8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST(Topology, PeerEnumerationIsExactAndOrdered) {
  const Topology topo(TopologySpec::parse("2x2x4"), 16);
  EXPECT_EQ(topo.peer_count(5, 1), 3);
  EXPECT_EQ(topo.peer_count(5, 2), 4);
  EXPECT_EQ(topo.peer_count(5, 3), 8);
  EXPECT_EQ(topo.peers(5, 1), (std::vector<int>{4, 6, 7}));
  EXPECT_EQ(topo.peers(5, 2), (std::vector<int>{0, 1, 2, 3}));
  for (Tier t = 1; t <= 3; ++t) {
    const auto all = topo.peers(5, t);
    for (int k = 0; k < topo.peer_count(5, t); ++k) {
      EXPECT_EQ(topo.peer(5, t, k), all[static_cast<std::size_t>(k)]);
      EXPECT_EQ(topo.distance(5, all[static_cast<std::size_t>(k)]), t);
    }
  }
}

TEST(Topology, RaggedTailGroupsAreShort) {
  // 10 PEs in nodes of 4: last node = {8, 9}.
  const Topology topo(TopologySpec::two_level(4), 10);
  EXPECT_EQ(topo.group_count(1), 3);
  EXPECT_EQ(topo.group_members(1, 2), (std::vector<int>{8, 9}));
  EXPECT_EQ(topo.peer_count(9, 1), 1);
  EXPECT_EQ(topo.peer(9, 1, 0), 8);
  EXPECT_EQ(topo.peer_count(9, 2), 8);
}

TEST(Topology, RejectsMorePesThanCapacity) {
  EXPECT_THROW(Topology(TopologySpec::parse("2x4"), 9),
               std::invalid_argument);
  EXPECT_NO_THROW(Topology(TopologySpec::parse("2x4"), 8));
  EXPECT_NO_THROW(Topology(TopologySpec::parse("*x4"), 100));
}

// ----------------------------------------------------- network-param glue

TEST(NetworkParams, ValidateRejectsConflictingSpecs) {
  NetworkParams p = NetworkParams::two_level(4);
  EXPECT_NO_THROW(p.validate(8));
  p.links.pop_back();  // link table no longer matches the tier count
  EXPECT_THROW(p.validate(8), std::invalid_argument);

  NetworkParams q;
  q.topology = TopologySpec::parse("2x4");
  EXPECT_THROW(q.validate(8), std::invalid_argument)
      << "flat link table with a two-tier topology must fail";
  q.links = {LinkParams{}, LinkParams{}};
  EXPECT_NO_THROW(q.validate(8));
  EXPECT_THROW(q.validate(9), std::invalid_argument)
      << "more PEs than the spec holds";
}

TEST(NetworkModel, CostIsMonotoneAcrossTiers) {
  NetworkParams p = NetworkParams::tiered(TopologySpec::parse("2x4x8"));
  p.validate(64);
  const NetworkModel m(p, 64);
  for (const OpKind k : {OpKind::kAmoFetchAdd, OpKind::kGet, OpKind::kPut}) {
    // Remote cost rises strictly with distance. Tier 0 (local) is priced
    // by local_overhead, a different mechanism — on deep geometric specs
    // the innermost remote tier can legitimately undercut it, so local is
    // only compared against the outermost (true inter-node) tier.
    Nanos prev = m.cost(k, 64, 1);
    for (Tier t = 2; t <= m.ntiers(); ++t) {
      const Nanos c = m.cost(k, 64, t);
      EXPECT_GT(c, prev) << op_kind_name(k) << " tier " << t;
      prev = c;
    }
    EXPECT_LT(m.cost(k, 64, 0), m.cost(k, 64, m.ntiers()));
  }
  EXPECT_LT(m.delivery_delay(64, 1), m.delivery_delay(64, 2));
  EXPECT_LT(m.delivery_delay(64, 2), m.delivery_delay(64, 3));
}

TEST(NetworkModel, TwoLevelMatchesLegacyIntraScaling) {
  // two_level derives intra links as 0.15x latency / 40 B/ns — the exact
  // constants the pre-topology two-level model used.
  const NetworkParams p = NetworkParams::two_level(4);
  EXPECT_EQ(p.link(1).amo_latency, 225u);
  EXPECT_EQ(p.link(1).get_latency, 225u);
  EXPECT_EQ(p.link(1).put_latency, 210u);
  EXPECT_EQ(p.link(1).nbi_delay, 270u);
  EXPECT_DOUBLE_EQ(p.link(1).bandwidth, 40.0);
  EXPECT_EQ(p.link(2).amo_latency, 1500u);
  EXPECT_EQ(p.link(2).target_occupancy, 250u);

  const NetworkModel m(p, 12);
  EXPECT_EQ(m.tier(0, 0), 0);
  EXPECT_EQ(m.tier(0, 3), 1);
  EXPECT_EQ(m.tier(0, 4), 2);
  EXPECT_EQ(m.cost(OpKind::kAmoFetchAdd, 8, 1), 225u);
  EXPECT_EQ(m.cost(OpKind::kAmoFetchAdd, 8, 2), 1500u);
}

TEST(NetworkModel, TieredOfTwoLevelSpecEqualsTwoLevel) {
  const NetworkParams a = NetworkParams::two_level(8);
  const NetworkParams b = NetworkParams::tiered(TopologySpec::two_level(8));
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].amo_latency, b.links[i].amo_latency);
    EXPECT_EQ(a.links[i].get_latency, b.links[i].get_latency);
    EXPECT_EQ(a.links[i].put_latency, b.links[i].put_latency);
    EXPECT_EQ(a.links[i].nbi_delay, b.links[i].nbi_delay);
    EXPECT_DOUBLE_EQ(a.links[i].bandwidth, b.links[i].bandwidth);
  }
}

TEST(NetworkModel, FlatDefaultKeepsLegacyCosts) {
  const NetworkModel m;  // flat defaults, EDR-class numbers
  EXPECT_EQ(m.ntiers(), 1);
  EXPECT_EQ(m.cost(OpKind::kAmoFetchAdd, 8, 1), 1500u);
  EXPECT_EQ(m.cost(OpKind::kPut, 0, 1), 1400u);
  EXPECT_EQ(m.cost(OpKind::kGet, 125, 1), 1500u + 10u);
  EXPECT_EQ(m.cost(OpKind::kNbiAmoAdd, 8, 1), 80u);
  EXPECT_EQ(m.cost(OpKind::kGet, 0, 0), 60u);
  EXPECT_EQ(m.delivery_delay(0, 1), 1800u);
}

TEST(NetworkModel, ScaledScalesEveryTier) {
  const NetworkParams p = NetworkParams::two_level(4).scaled(2.0);
  EXPECT_EQ(p.link(1).amo_latency, 450u);
  EXPECT_EQ(p.link(2).amo_latency, 3000u);
  EXPECT_EQ(p.link(1).nbi_delay, 540u);
  EXPECT_EQ(p.link(2).nbi_delay, 3600u);
  EXPECT_EQ(p.local_overhead, 60u) << "local overhead is not a link";
}

}  // namespace
}  // namespace sws::net
