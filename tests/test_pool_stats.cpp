// WorkerStats/PoolRunReport aggregation math, plus a pool sweep over the
// task slot sizes the paper benchmarks (24 B … 192 B).
#include <gtest/gtest.h>

#include "core/pool_stats.hpp"
#include "core/scheduler.hpp"

namespace sws::core {
namespace {

TEST(WorkerStats, MergeSumsCountsAndMaxesRuntime) {
  WorkerStats a, b;
  a.tasks_executed = 10;
  a.steal_time_ns = 100;
  a.run_time_ns = 500;
  b.tasks_executed = 5;
  b.steal_time_ns = 50;
  b.run_time_ns = 900;
  a.merge(b);
  EXPECT_EQ(a.tasks_executed, 15u);
  EXPECT_EQ(a.steal_time_ns, 150u);
  EXPECT_EQ(a.run_time_ns, 900u) << "run time is the max, not the sum";
}

TEST(PoolRunReport, AggregatesPerPeDistributions) {
  std::vector<WorkerStats> per_pe(4);
  for (int pe = 0; pe < 4; ++pe) {
    per_pe[static_cast<std::size_t>(pe)].tasks_executed =
        static_cast<std::uint64_t>(10 * (pe + 1));
    per_pe[static_cast<std::size_t>(pe)].steal_time_ns =
        static_cast<std::uint64_t>(1'000'000 * pe);
    per_pe[static_cast<std::size_t>(pe)].run_time_ns = 42;
  }
  const PoolRunReport r = aggregate_reports(per_pe);
  EXPECT_EQ(r.npes, 4);
  EXPECT_EQ(r.total.tasks_executed, 100u);
  EXPECT_DOUBLE_EQ(r.per_pe_executed.mean(), 25.0);
  EXPECT_DOUBLE_EQ(r.per_pe_executed.min(), 10.0);
  EXPECT_DOUBLE_EQ(r.per_pe_executed.max(), 40.0);
  EXPECT_DOUBLE_EQ(r.per_pe_steal_ms.max(), 3.0);
}

TEST(PoolRunReport, ToStringMentionsKeyNumbers) {
  std::vector<WorkerStats> per_pe(2);
  per_pe[0].tasks_executed = 7;
  per_pe[1].tasks_executed = 3;
  const std::string s = aggregate_reports(per_pe).to_string();
  EXPECT_NE(s.find("npes=2"), std::string::npos);
  EXPECT_NE(s.find("tasks=10"), std::string::npos);
}

// ------------------------------------------------- slot-size pool sweep

class SlotSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SlotSizeSweep, PoolRunsAtEveryPaperTaskSize) {
  const std::uint32_t slot = GetParam();
  pgas::RuntimeConfig rc;
  rc.npes = 4;
  rc.heap_bytes = 8 << 20;
  pgas::Runtime rt(rc);
  TaskRegistry reg;
  TaskFnId fn = 0;
  // Payload fills the slot to its task-size capacity.
  const std::uint32_t payload = slot - kTaskHeaderBytes;
  fn = reg.register_fn("fan", [&, payload](Worker& w,
                                           std::span<const std::byte> b) {
    ASSERT_EQ(b.size(), payload);
    std::uint32_t depth;
    std::memcpy(&depth, b.data(), 4);
    w.compute(2000);
    if (depth == 0) return;
    std::vector<std::byte> buf(payload, std::byte{0});
    const std::uint32_t child = depth - 1;
    std::memcpy(buf.data(), &child, 4);
    for (int i = 0; i < 3; ++i)
      w.spawn(Task(fn, buf.data(), payload));
  });
  PoolConfig pc;
  pc.queue.slot_bytes = slot;
  pc.queue.capacity = 4096;
  TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](Worker& w) {
      if (w.pe() != 0) return;
      std::vector<std::byte> buf(payload, std::byte{0});
      const std::uint32_t depth = 4;
      std::memcpy(buf.data(), &depth, 4);
      w.spawn(Task(fn, buf.data(), payload));
    });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, 121u);  // 3^0+...+3^4
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, SlotSizeSweep,
                         ::testing::Values(24u, 32u, 48u, 64u, 192u, 256u),
                         [](const auto& info) {
                           return "bytes" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sws::core
