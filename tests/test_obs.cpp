// Observability layer: metrics registry semantics, trace-analysis span
// reconstruction, and the end-to-end protocol op-shape claims (Fig 2) on
// live 2-PE UTS traces.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace_analysis.hpp"
#include "sws.hpp"

namespace sws::obs {
namespace {

// ----------------------------------------------------------- registry unit

TEST(MetricsRegistry, CounterAddsPerPeAndTotals) {
  MetricsRegistry reg(3);
  const MetricId c = reg.counter("test.count", "help text");
  reg.add(c, 0, 5);
  reg.add(c, 2, 7);
  reg.add(c, 2);
  EXPECT_EQ(reg.value(c, 0), 5u);
  EXPECT_EQ(reg.value(c, 1), 0u);
  EXPECT_EQ(reg.value(c, 2), 8u);
  EXPECT_EQ(reg.total(c), 13u);
}

TEST(MetricsRegistry, GaugeTotalsByMax) {
  MetricsRegistry reg(2);
  const MetricId g = reg.gauge("test.gauge");
  reg.set(g, 0, 100);
  reg.set(g, 1, 40);
  reg.set(g, 0, 60);  // overwrite, not accumulate
  EXPECT_EQ(reg.value(g, 0), 60u);
  EXPECT_EQ(reg.total(g), 60u);
}

TEST(MetricsRegistry, HistogramObserves) {
  MetricsRegistry reg(2);
  const MetricId h = reg.histogram("test.hist");
  reg.observe(h, 0, 10);
  reg.observe(h, 1, 1000);
  reg.observe(h, 1, 1001);
  EXPECT_EQ(reg.total(h), 3u);
  const MetricsSnapshot snap = reg.snapshot();
  const auto* e = snap.find("test.hist");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hist.count(), 3u);  // merged across PEs
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg(1);
  const MetricId a = reg.counter("same.name");
  const MetricId b = reg.counter("same.name", "different help is fine");
  EXPECT_EQ(a.idx, b.idx);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.find("same.name").idx, a.idx);
  EXPECT_FALSE(reg.find("no.such.metric").valid());
}

TEST(MetricsRegistry, InvalidIdIsIgnored) {
  MetricsRegistry reg(1);
  MetricId bad;
  reg.add(bad, 0, 1);  // must not crash
  reg.set(bad, 0, 1);
  reg.observe(bad, 0, 1);
  EXPECT_EQ(reg.total(bad), 0u);
}

TEST(MetricsRegistry, RegistrationAfterValuesExistExtendsSlabs) {
  MetricsRegistry reg(2);
  const MetricId a = reg.counter("first");
  reg.add(a, 1, 3);
  const MetricId h = reg.histogram("late.hist");
  const MetricId b = reg.counter("late.counter");
  reg.observe(h, 0, 9);
  reg.add(b, 0, 2);
  EXPECT_EQ(reg.value(a, 1), 3u);
  EXPECT_EQ(reg.total(h), 1u);
  EXPECT_EQ(reg.total(b), 2u);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg(2);
  const MetricId c = reg.counter("keep.me");
  reg.add(c, 0, 9);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.total(c), 0u);
  reg.add(c, 1, 4);
  EXPECT_EQ(reg.total(c), 4u);
}

TEST(MetricsRegistry, ResetResizesPeCount) {
  MetricsRegistry reg(1);
  const MetricId c = reg.counter("c");
  reg.add(c, 0, 1);
  reg.reset(4);
  EXPECT_EQ(reg.npes(), 4);
  EXPECT_EQ(reg.total(c), 0u);
  reg.add(c, 3, 2);
  EXPECT_EQ(reg.total(c), 2u);
}

// -------------------------------------------------------- snapshot algebra

TEST(MetricsSnapshot, MergeSumsCountersMaxesGauges) {
  MetricsRegistry reg(2);
  const MetricId c = reg.counter("runs.counter");
  const MetricId g = reg.gauge("runs.gauge");
  const MetricId h = reg.histogram("runs.hist");
  reg.add(c, 0, 10);
  reg.set(g, 0, 5);
  reg.observe(h, 0, 100);
  MetricsSnapshot first = reg.snapshot();

  reg.reset_values();
  reg.add(c, 0, 7);
  reg.add(c, 1, 1);
  reg.set(g, 0, 3);
  reg.observe(h, 1, 200);
  MetricsSnapshot second = reg.snapshot();

  first.merge(second);
  EXPECT_EQ(first.find("runs.counter")->total(), 18u);
  EXPECT_EQ(first.find("runs.counter")->per_pe[0], 17u);
  EXPECT_EQ(first.find("runs.gauge")->total(), 5u) << "gauges merge by max";
  EXPECT_EQ(first.find("runs.hist")->hist.count(), 2u);
}

TEST(MetricsSnapshot, MergeAppendsUnknownEntries) {
  MetricsRegistry a(1), b(1);
  a.add(a.counter("only.in.a"), 0, 1);
  b.add(b.counter("only.in.b"), 0, 2);
  MetricsSnapshot sa = a.snapshot();
  sa.merge(b.snapshot());
  ASSERT_NE(sa.find("only.in.a"), nullptr);
  ASSERT_NE(sa.find("only.in.b"), nullptr);
  EXPECT_EQ(sa.find("only.in.b")->total(), 2u);
}

TEST(MetricsSnapshot, ExportersProduceOutput) {
  MetricsRegistry reg(2);
  reg.add(reg.counter("exp.counter", "a \"quoted\" help"), 1, 3);
  reg.observe(reg.histogram("exp.hist"), 0, 42);
  std::ostringstream text, json;
  reg.write_text(text);
  reg.write_json(json);
  EXPECT_NE(text.str().find("exp.counter"), std::string::npos);
  EXPECT_NE(text.str().find("p50="), std::string::npos);
  EXPECT_NE(json.str().find("\"schema\":\"sws-metrics\""), std::string::npos);
  EXPECT_NE(json.str().find("\\\"quoted\\\""), std::string::npos)
      << "JSON strings must escape quotes";
  EXPECT_NE(json.str().find("\"per_pe\":[0,3]"), std::string::npos);
  EXPECT_NE(json.str().find("\"buckets\":[[5,1]]"), std::string::npos);
}

TEST(MetricsSnapshot, SetHistReplacesWholesale) {
  MetricsRegistry reg(1);
  const MetricId h = reg.histogram("pub.hist");
  LogHistogram src;
  src.add(8);
  src.add(8);
  reg.set_hist(h, 0, src);
  reg.set_hist(h, 0, src);  // publish twice: idempotent, no doubling
  EXPECT_EQ(reg.total(h), 2u);
}

// ------------------------------------------------- trace-analysis parsing

TEST(TraceAnalysis, ReconstructsSpansFromTracerDump) {
  core::Tracer t(2, 64);
  t.begin(1, 1000, core::TraceKind::kStealSpan, 77, 0);
  t.complete(1, 1010, 300, core::TraceKind::kFabricOp, 77,
             static_cast<std::uint64_t>(net::OpKind::kAmoFetchAdd),
             0 | (8u << 16));
  t.complete(1, 1400, 500, core::TraceKind::kFabricOp, 77,
             static_cast<std::uint64_t>(net::OpKind::kGet),
             0 | (96u << 16));
  t.complete(1, 1950, 40, core::TraceKind::kFabricOp, 77,
             static_cast<std::uint64_t>(net::OpKind::kNbiAmoAdd),
             0 | (8u << 16));
  t.end(1, 2000, core::TraceKind::kStealSpan, 77, 0, 0 | (2u << 8));
  std::ostringstream os;
  core::TraceMeta meta;
  meta.protocol = "sws";
  meta.npes = 2;
  meta.slot_bytes = 48;
  t.dump_chrome_json(os, meta);

  std::istringstream is(os.str());
  const RunTrace rt = parse_chrome_trace(is);
  EXPECT_EQ(rt.protocol, "sws");
  EXPECT_EQ(rt.npes, 2);
  EXPECT_FALSE(rt.truncated);
  ASSERT_EQ(rt.spans.size(), 1u);
  const Span& s = rt.spans[0];
  EXPECT_EQ(s.kind, "steal");
  EXPECT_EQ(s.pe, 1);
  EXPECT_EQ(s.victim(), 0);
  EXPECT_EQ(s.outcome(), 0);
  EXPECT_EQ(s.ntasks(), 2u);
  EXPECT_EQ(s.duration_ns(), 1000u);
  ASSERT_EQ(s.ops.size(), 3u);
  EXPECT_EQ(s.ops[0].op, "amo_fetch_add");
  EXPECT_EQ(s.ops[1].op, "get");
  EXPECT_EQ(s.ops[1].bytes, 96u);
  EXPECT_TRUE(s.ops[0].blocking());
  EXPECT_FALSE(s.ops[2].blocking());

  const AnalyzeReport r = analyze(rt);
  EXPECT_EQ(r.steals_ok, 1u);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  ASSERT_EQ(r.signatures.size(), 1u);
  EXPECT_EQ(r.signatures.begin()->first, "amo_fetch_add:1 get:1 nbi_amo_add:1");
}

TEST(TraceAnalysis, FlagsOrphansInUntruncatedTrace) {
  core::Tracer t(1, 64);
  t.begin(0, 100, core::TraceKind::kStealSpan, 5, 0);
  // No end: the span id stays open.
  std::ostringstream os;
  core::TraceMeta meta;
  meta.protocol = "sws";
  meta.npes = 1;
  t.dump_chrome_json(os, meta);
  std::istringstream is(os.str());
  const RunTrace rt = parse_chrome_trace(is);
  EXPECT_EQ(rt.orphan_begins, 1u);
  const AnalyzeReport r = analyze(rt);
  ASSERT_FALSE(r.violations.empty());
}

TEST(TraceAnalysis, RejectsMalformedJson) {
  std::istringstream is("{\"not\": \"an array\"}");
  EXPECT_THROW(parse_chrome_trace(is), std::runtime_error);
  std::istringstream truncated("[{\"name\":\"x\"");
  EXPECT_THROW(parse_chrome_trace(truncated), std::runtime_error);
}

TEST(TraceAnalysis, MissingTopoMetaFailsLoudly) {
  // A protocol-bearing trace from an older writer (no topo key): tier
  // attribution would silently default to flat, so the analyzer must
  // refuse instead of guessing.
  std::istringstream is(
      "[\n{\"name\":\"sws_run_meta\",\"ph\":\"i\",\"s\":\"g\",\"ts\":0,"
      "\"pid\":0,\"tid\":0,\"args\":{\"protocol\":\"sws\",\"npes\":2,"
      "\"slot_bytes\":48,\"truncated\":0}}\n]\n");
  const AnalyzeReport r = analyze(parse_chrome_trace(is));
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations.front().find("topo"), std::string::npos)
      << r.violations.front();
}

// ----------------------------------------- live end-to-end (Fig 2 claims)

struct UtsRun {
  AnalyzeReport report;
  core::PoolRunReport pool_report;
  MetricsSnapshot metrics;
};

UtsRun run_uts_traced(core::QueueKind kind) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 2;
  rcfg.metrics = true;
  pgas::Runtime rt(rcfg);

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = 9;
  p.node_compute_ns = 2000;
  core::TaskRegistry registry;
  workloads::UtsBenchmark uts(registry, p);

  core::PoolConfig pcfg;
  pcfg.kind = kind;
  pcfg.queue.slot_bytes = 48;
  pcfg.trace.enable = true;
  pcfg.trace.events = std::size_t{1} << 18;
  core::TaskPool pool(rt, registry, pcfg);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });

  std::ostringstream os;
  pool.dump_trace_json(os);
  std::istringstream is(os.str());

  UtsRun out;
  out.report = analyze(parse_chrome_trace(is));
  out.pool_report = pool.report();
  pool.publish_metrics(rt.metrics());
  out.metrics = rt.metrics().snapshot();
  return out;
}

TEST(TraceAnalysisLive, SwsStealIsOneFetchAddOneGet) {
  const UtsRun run = run_uts_traced(core::QueueKind::kSws);
  const AnalyzeReport& r = run.report;
  ASSERT_FALSE(r.truncated) << "grow the trace ring";
  ASSERT_GT(r.steals_ok, 0u);
  EXPECT_EQ(r.steals_ok, run.pool_report.total.steals_ok);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  // The paper's SWS claim, verified op by op: every successful steal is
  // one remote fetch-add (fused discovery+claim) + one task-copy get +
  // one non-blocking completion add. 3 ops, 2 blocking.
  ASSERT_EQ(r.signatures.size(), 1u);
  EXPECT_EQ(r.signatures.begin()->first, "amo_fetch_add:1 get:1 nbi_amo_add:1");
  EXPECT_DOUBLE_EQ(r.ops_per_success, 3.0);
  EXPECT_DOUBLE_EQ(r.blocking_per_success, 2.0);
}

TEST(TraceAnalysisLive, SdcStealIsSixOpSequence) {
  const UtsRun run = run_uts_traced(core::QueueKind::kSdc);
  const AnalyzeReport& r = run.report;
  ASSERT_FALSE(r.truncated);
  ASSERT_GT(r.steals_ok, 0u);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  // The SDC baseline: lock cswap + metadata get + tail-claim put +
  // unlock set + task-copy get + nbi completion set. 6 ops, 5 blocking.
  ASSERT_EQ(r.signatures.size(), 1u);
  EXPECT_EQ(r.signatures.begin()->first,
            "amo_cswap:1 amo_set:1 get:2 nbi_amo_set:1 put:1");
  EXPECT_DOUBLE_EQ(r.ops_per_success, 6.0);
  EXPECT_DOUBLE_EQ(r.blocking_per_success, 5.0);
}

TEST(TraceAnalysisLive, CrashModeShapesAdmittedAndSummarized) {
  // A crash-mode run: PE 2 dies mid-run. The analyzer must (a) admit the
  // crash-mode SDC steal shape — the extra claim-intent put inside the
  // critical section is protocol, not a violation — and (b) surface the
  // recovery events in its summary counters.
  for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
    pgas::RuntimeConfig rcfg;
    rcfg.npes = 4;
    rcfg.net.faults.crashes.push_back({2, 300'000});
    pgas::Runtime rt(rcfg);

    workloads::UtsParams p;
    p.b0 = 4;
    p.gen_mx = 9;
    p.node_compute_ns = 2000;
    core::TaskRegistry registry;
    workloads::UtsBenchmark uts(registry, p);

    core::PoolConfig pcfg;
    pcfg.kind = kind;
    pcfg.queue.slot_bytes = 48;
    pcfg.trace.enable = true;
    pcfg.trace.events = std::size_t{1} << 18;
    core::TaskPool pool(rt, registry, pcfg);
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });

    std::ostringstream os;
    pool.dump_trace_json(os);
    std::istringstream is(os.str());
    const RunTrace rtr = parse_chrome_trace(is);
    EXPECT_TRUE(rtr.crash_mode);
    const AnalyzeReport r = analyze(rtr);
    ASSERT_FALSE(r.truncated) << "grow the trace ring";
    EXPECT_TRUE(r.violations.empty()) << r.violations.front();
    EXPECT_GE(r.deaths_detected, 1u)
        << (kind == core::QueueKind::kSdc ? "SDC" : "SWS");
  }
}

TEST(TraceAnalysisLive, MetricsCoverEveryLayer) {
  const UtsRun run = run_uts_traced(core::QueueKind::kSws);
  const MetricsSnapshot& m = run.metrics;
  // Fabric layer (published by Runtime::run via config().metrics).
  const auto* fetch_adds = m.find("fabric.ops.amo_fetch_add");
  ASSERT_NE(fetch_adds, nullptr);
  EXPECT_GE(fetch_adds->total(), run.pool_report.total.steals_ok);
  // Runtime layer.
  ASSERT_NE(m.find("runtime.last_run_duration_ns"), nullptr);
  EXPECT_GT(m.find("runtime.last_run_duration_ns")->total(), 0u);
  EXPECT_EQ(m.find("runtime.runs")->total(), 1u);
  // Pool + queue layers (published by TaskPool::publish_metrics).
  ASSERT_NE(m.find("pool.tasks_executed"), nullptr);
  EXPECT_EQ(m.find("pool.tasks_executed")->total(),
            run.pool_report.total.tasks_executed);
  EXPECT_EQ(m.find("pool.steals_ok")->total(),
            run.pool_report.total.steals_ok);
  ASSERT_NE(m.find("pool.steal_latency_ns"), nullptr);
  EXPECT_EQ(m.find("pool.steal_latency_ns")->hist.count(),
            run.pool_report.total.steals_ok);
  ASSERT_NE(m.find("queue.releases"), nullptr);
  EXPECT_GT(m.find("queue.releases")->total(), 0u);
}

}  // namespace
}  // namespace sws::obs
