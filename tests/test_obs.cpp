// Observability layer: metrics registry semantics, snapshot diff
// windowing, time-series sampling, trace-analysis span reconstruction
// (incl. critical path + convoy pressure), and the end-to-end protocol
// op-shape and time-accounting claims on live 2-PE UTS/BPC traces.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_analysis.hpp"
#include "sws.hpp"

namespace sws::obs {
namespace {

// ----------------------------------------------------------- registry unit

TEST(MetricsRegistry, CounterAddsPerPeAndTotals) {
  MetricsRegistry reg(3);
  const MetricId c = reg.counter("test.count", "help text");
  reg.add(c, 0, 5);
  reg.add(c, 2, 7);
  reg.add(c, 2);
  EXPECT_EQ(reg.value(c, 0), 5u);
  EXPECT_EQ(reg.value(c, 1), 0u);
  EXPECT_EQ(reg.value(c, 2), 8u);
  EXPECT_EQ(reg.total(c), 13u);
}

TEST(MetricsRegistry, GaugeTotalsByMax) {
  MetricsRegistry reg(2);
  const MetricId g = reg.gauge("test.gauge");
  reg.set(g, 0, 100);
  reg.set(g, 1, 40);
  reg.set(g, 0, 60);  // overwrite, not accumulate
  EXPECT_EQ(reg.value(g, 0), 60u);
  EXPECT_EQ(reg.total(g), 60u);
}

TEST(MetricsRegistry, HistogramObserves) {
  MetricsRegistry reg(2);
  const MetricId h = reg.histogram("test.hist");
  reg.observe(h, 0, 10);
  reg.observe(h, 1, 1000);
  reg.observe(h, 1, 1001);
  EXPECT_EQ(reg.total(h), 3u);
  const MetricsSnapshot snap = reg.snapshot();
  const auto* e = snap.find("test.hist");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hist.count(), 3u);  // merged across PEs
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg(1);
  const MetricId a = reg.counter("same.name");
  const MetricId b = reg.counter("same.name", "different help is fine");
  EXPECT_EQ(a.idx, b.idx);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.find("same.name").idx, a.idx);
  EXPECT_FALSE(reg.find("no.such.metric").valid());
}

TEST(MetricsRegistry, InvalidIdIsIgnored) {
  MetricsRegistry reg(1);
  MetricId bad;
  reg.add(bad, 0, 1);  // must not crash
  reg.set(bad, 0, 1);
  reg.observe(bad, 0, 1);
  EXPECT_EQ(reg.total(bad), 0u);
}

TEST(MetricsRegistry, RegistrationAfterValuesExistExtendsSlabs) {
  MetricsRegistry reg(2);
  const MetricId a = reg.counter("first");
  reg.add(a, 1, 3);
  const MetricId h = reg.histogram("late.hist");
  const MetricId b = reg.counter("late.counter");
  reg.observe(h, 0, 9);
  reg.add(b, 0, 2);
  EXPECT_EQ(reg.value(a, 1), 3u);
  EXPECT_EQ(reg.total(h), 1u);
  EXPECT_EQ(reg.total(b), 2u);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg(2);
  const MetricId c = reg.counter("keep.me");
  reg.add(c, 0, 9);
  reg.reset_values();
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.total(c), 0u);
  reg.add(c, 1, 4);
  EXPECT_EQ(reg.total(c), 4u);
}

TEST(MetricsRegistry, ResetResizesPeCount) {
  MetricsRegistry reg(1);
  const MetricId c = reg.counter("c");
  reg.add(c, 0, 1);
  reg.reset(4);
  EXPECT_EQ(reg.npes(), 4);
  EXPECT_EQ(reg.total(c), 0u);
  reg.add(c, 3, 2);
  EXPECT_EQ(reg.total(c), 2u);
}

// -------------------------------------------------------- snapshot algebra

TEST(MetricsSnapshot, MergeSumsCountersMaxesGauges) {
  MetricsRegistry reg(2);
  const MetricId c = reg.counter("runs.counter");
  const MetricId g = reg.gauge("runs.gauge");
  const MetricId h = reg.histogram("runs.hist");
  reg.add(c, 0, 10);
  reg.set(g, 0, 5);
  reg.observe(h, 0, 100);
  MetricsSnapshot first = reg.snapshot();

  reg.reset_values();
  reg.add(c, 0, 7);
  reg.add(c, 1, 1);
  reg.set(g, 0, 3);
  reg.observe(h, 1, 200);
  MetricsSnapshot second = reg.snapshot();

  first.merge(second);
  EXPECT_EQ(first.find("runs.counter")->total(), 18u);
  EXPECT_EQ(first.find("runs.counter")->per_pe[0], 17u);
  EXPECT_EQ(first.find("runs.gauge")->total(), 5u) << "gauges merge by max";
  EXPECT_EQ(first.find("runs.hist")->hist.count(), 2u);
}

TEST(MetricsSnapshot, MergeAppendsUnknownEntries) {
  MetricsRegistry a(1), b(1);
  a.add(a.counter("only.in.a"), 0, 1);
  b.add(b.counter("only.in.b"), 0, 2);
  MetricsSnapshot sa = a.snapshot();
  sa.merge(b.snapshot());
  ASSERT_NE(sa.find("only.in.a"), nullptr);
  ASSERT_NE(sa.find("only.in.b"), nullptr);
  EXPECT_EQ(sa.find("only.in.b")->total(), 2u);
}

TEST(MetricsSnapshot, ExportersProduceOutput) {
  MetricsRegistry reg(2);
  reg.add(reg.counter("exp.counter", "a \"quoted\" help"), 1, 3);
  reg.observe(reg.histogram("exp.hist"), 0, 42);
  std::ostringstream text, json;
  reg.write_text(text);
  reg.write_json(json);
  EXPECT_NE(text.str().find("exp.counter"), std::string::npos);
  EXPECT_NE(text.str().find("p50="), std::string::npos);
  EXPECT_NE(json.str().find("\"schema\":\"sws-metrics\""), std::string::npos);
  EXPECT_NE(json.str().find("\\\"quoted\\\""), std::string::npos)
      << "JSON strings must escape quotes";
  EXPECT_NE(json.str().find("\"per_pe\":[0,3]"), std::string::npos);
  EXPECT_NE(json.str().find("\"buckets\":[[5,1]]"), std::string::npos);
}

TEST(MetricsSnapshot, SetHistReplacesWholesale) {
  MetricsRegistry reg(1);
  const MetricId h = reg.histogram("pub.hist");
  LogHistogram src;
  src.add(8);
  src.add(8);
  reg.set_hist(h, 0, src);
  reg.set_hist(h, 0, src);  // publish twice: idempotent, no doubling
  EXPECT_EQ(reg.total(h), 2u);
}

// --------------------------------------------- windowed diff edge cases

TEST(LogHistogram, SubtractIsPerBucketAndSaturating) {
  // 1023 and 1024 land in adjacent log2 buckets; a windowed delta must
  // subtract per bucket, never across the boundary.
  LogHistogram later, earlier;
  later.add(1023);
  later.add(1024);
  later.add(1024);
  earlier.add(1024);
  later.subtract(earlier);
  EXPECT_EQ(later.count(), 2u);
  EXPECT_EQ(later.bucket(9), 1u) << "[512,1024) untouched";
  EXPECT_EQ(later.bucket(10), 1u) << "[1024,2048) lost exactly one";

  // Unrelated baseline with more samples than we have: saturate at zero.
  LogHistogram big;
  big.add(1023);
  big.add(1023);
  later.subtract(big);
  EXPECT_EQ(later.bucket(9), 0u);
  EXPECT_EQ(later.count(), 1u) << "total recomputed from surviving buckets";
}

TEST(MetricsSnapshot, DiffAgainstEmptyBaselineIsIdentity) {
  MetricsRegistry reg(2);
  reg.add(reg.counter("win.counter"), 0, 12);
  reg.set(reg.gauge("win.gauge"), 1, 7);
  MetricsSnapshot later = reg.snapshot();
  later.diff(MetricsSnapshot{});  // no entries at all: implicit zero
  EXPECT_EQ(later.find("win.counter")->total(), 12u);
  EXPECT_EQ(later.find("win.gauge")->total(), 7u);
}

TEST(MetricsSnapshot, DiffSubtractsCountersSaturating) {
  MetricsRegistry reg(2);
  const MetricId c = reg.counter("win.counter");
  reg.add(c, 0, 5);
  reg.add(c, 1, 9);
  MetricsSnapshot earlier = reg.snapshot();
  reg.add(c, 0, 3);  // pe0 grows to 8; pe1 stays 9
  MetricsSnapshot later = reg.snapshot();
  later.diff(earlier);
  EXPECT_EQ(later.find("win.counter")->per_pe[0], 3u);
  EXPECT_EQ(later.find("win.counter")->per_pe[1], 0u);

  // A *reset* counter (later < earlier, e.g. across reset_values) must
  // saturate at 0, not wrap to ~2^64.
  MetricsSnapshot reset = earlier;
  reg.reset_values();
  reg.add(c, 0, 1);
  MetricsSnapshot after_reset = reg.snapshot();
  after_reset.diff(reset);
  EXPECT_EQ(after_reset.find("win.counter")->total(), 0u);
}

TEST(MetricsSnapshot, DiffGaugeIsLastValueWins) {
  // Gauges report a level: the window's value is whatever the gauge held
  // at the window's end, not a difference of levels.
  MetricsRegistry reg(1);
  const MetricId g = reg.gauge("win.gauge");
  reg.set(g, 0, 100);
  MetricsSnapshot earlier = reg.snapshot();
  reg.set(g, 0, 40);  // level *dropped* across the window
  MetricsSnapshot later = reg.snapshot();
  later.diff(earlier);
  EXPECT_EQ(later.find("win.gauge")->total(), 40u)
      << "gauge diff must keep the later level, not subtract";
}

TEST(MetricsSnapshot, DiffDisjointEntriesKeptVerbatim) {
  MetricsRegistry a(1), b(1);
  a.add(a.counter("only.later"), 0, 4);
  b.add(b.counter("only.earlier"), 0, 9);
  MetricsSnapshot later = a.snapshot();
  later.diff(b.snapshot());
  EXPECT_EQ(later.find("only.later")->total(), 4u);
  EXPECT_EQ(later.find("only.earlier"), nullptr)
      << "entries only in the earlier snapshot are ignored";
}

TEST(MetricsSnapshot, DiffHistogramSubtractsBucketwise) {
  MetricsRegistry reg(1);
  const MetricId h = reg.histogram("win.hist");
  reg.observe(h, 0, 1023);
  MetricsSnapshot earlier = reg.snapshot();
  reg.observe(h, 0, 1024);  // boundary neighbour of the baseline sample
  MetricsSnapshot later = reg.snapshot();
  later.diff(earlier);
  EXPECT_EQ(later.find("win.hist")->hist.count(), 1u);
  EXPECT_EQ(later.find("win.hist")->hist.bucket(10), 1u);
  EXPECT_EQ(later.find("win.hist")->hist.bucket(9), 0u);
}

// --------------------------------------------------- time-series sampling

TEST(TimeSeries, DeltaAndLevelExport) {
  std::uint64_t counter = 0;
  std::uint64_t level = 0;
  TimeSeries ts(10);
  ts.add_series("c", TimeSeries::Mode::kDelta, [&] { return counter; });
  ts.add_series("l", TimeSeries::Mode::kLevel, [&] { return level; });
  ts.add_meta("protocol", "\"sws\"");
  ts.add_meta("npes", "2");
  counter = 5;
  level = 3;
  ts.sample(10);
  counter = 4;  // re-attribution can shrink a cumulative source
  level = 9;
  ts.sample(20);
  std::ostringstream os;
  ts.write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"schema\":\"sws-timeseries\""), std::string::npos);
  EXPECT_NE(j.find("\"t\":[10,20]"), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"c\",\"mode\":\"delta\",\"v\":[5,-1]"),
            std::string::npos)
      << "delta mode exports signed per-window differences: " << j;
  EXPECT_NE(j.find("\"name\":\"l\",\"mode\":\"level\",\"v\":[3,9]"),
            std::string::npos)
      << "level mode exports raw samples: " << j;

  // Round-trip through the analyzer's parser.
  std::istringstream is(j);
  const TimeSeriesData parsed = parse_timeseries(is);
  EXPECT_EQ(parsed.interval_ns, 10u);
  EXPECT_EQ(parsed.protocol, "sws");
  EXPECT_EQ(parsed.npes, 2);
  ASSERT_EQ(parsed.t.size(), 2u);
  ASSERT_NE(parsed.find("c"), nullptr);
  EXPECT_TRUE(parsed.find("c")->delta);
  EXPECT_EQ(parsed.find("c")->v[1], -1);
  EXPECT_FALSE(parsed.find("l")->delta);
}

TEST(TimeSeries, SampleIsMonotoneAndIdempotent) {
  std::uint64_t v = 0;
  TimeSeries ts(10);
  ts.add_series("v", TimeSeries::Mode::kDelta, [&] { return v; });
  ts.sample(10);
  ts.sample(10);  // duplicate finalize: ignored
  ts.sample(5);   // stale time: ignored
  EXPECT_EQ(ts.samples(), 1u);
  ts.sample(20);
  EXPECT_EQ(ts.samples(), 2u);
  ts.clear();
  EXPECT_TRUE(ts.empty());
  ts.sample(10);  // reusable after clear (bench repetitions)
  EXPECT_EQ(ts.samples(), 1u);
}

TEST(TimeSeries, TruncatesAtSampleCap) {
  std::uint64_t v = 0;
  TimeSeries ts(10, /*max_samples=*/2);
  ts.add_series("v", TimeSeries::Mode::kDelta, [&] { return v; });
  ts.sample(10);
  ts.sample(20);
  ts.sample(30);  // past the cap: dropped, flagged
  EXPECT_EQ(ts.samples(), 2u);
  EXPECT_TRUE(ts.truncated());
  std::ostringstream os;
  ts.write_json(os);
  EXPECT_NE(os.str().find("\"truncated\":1"), std::string::npos);
}

TEST(TimeSeries, ChromeCounterRowsFollowTracerFormat) {
  std::uint64_t v = 0;
  TimeSeries ts(10);
  ts.add_series("acct.working", TimeSeries::Mode::kDelta, [&] { return v; });
  v = 1500;
  ts.sample(12345);
  std::ostringstream os;
  ts.write_chrome_counters(os);
  // ",\n"-prefixed rows, µs timestamps with exact .001 resolution — the
  // same convention the tracer's own counter rows use.
  EXPECT_EQ(os.str(),
            ",\n{\"name\":\"acct.working\",\"ph\":\"C\",\"ts\":12.345,"
            "\"pid\":0,\"tid\":0,\"args\":{\"value\":1500}}");
}

TEST(TimeSeriesCheck, AccountingInvariantHoldsAndFails) {
  const auto doc = [](const char* elapsed) {
    return std::string(
               "{\"schema\":\"sws-timeseries\",\"interval_ns\":10,"
               "\"samples\":2,\"truncated\":0,\"protocol\":\"sws\","
               "\"npes\":2,\"t\":[10,20],\"series\":["
               "{\"name\":\"acct.working\",\"mode\":\"delta\",\"v\":[10,9]},"
               "{\"name\":\"acct.probing\",\"mode\":\"delta\",\"v\":[5,11]},"
               "{\"name\":\"acct.stealing\",\"mode\":\"delta\",\"v\":[2,10]},"
               "{\"name\":\"acct.parked\",\"mode\":\"delta\",\"v\":[3,10]},"
               "{\"name\":\"acct.blocked_nbi\",\"mode\":\"delta\","
               "\"v\":[0,0]},"
               "{\"name\":\"acct.recovering\",\"mode\":\"delta\",\"v\":[0,0]},"
               "{\"name\":\"acct.idle_terminating\",\"mode\":\"delta\","
               "\"v\":[0,0]},"
               "{\"name\":\"acct.elapsed_ns\",\"mode\":\"delta\",\"v\":[") +
           elapsed + "]}]}";
  };
  {
    std::istringstream is(doc("20,40"));
    EXPECT_TRUE(check_accounting(parse_timeseries(is)).empty());
  }
  {
    std::istringstream is(doc("20,41"));  // one window off by 1 ns
    const auto errs = check_accounting(parse_timeseries(is));
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_NE(errs[0].find("t=20ns"), std::string::npos) << errs[0];
  }
  {
    // No acct.* series at all: nothing to check, vacuously clean.
    std::istringstream is(
        "{\"schema\":\"sws-timeseries\",\"interval_ns\":10,\"samples\":0,"
        "\"truncated\":0,\"t\":[],\"series\":[]}");
    EXPECT_TRUE(check_accounting(parse_timeseries(is)).empty());
  }
}

// ------------------------------------------------- trace-analysis parsing

TEST(TraceAnalysis, ReconstructsSpansFromTracerDump) {
  core::Tracer t(2, 64);
  t.begin(1, 1000, core::TraceKind::kStealSpan, 77, 0);
  t.complete(1, 1010, 300, core::TraceKind::kFabricOp, 77,
             static_cast<std::uint64_t>(net::OpKind::kAmoFetchAdd),
             0 | (8u << 16));
  t.complete(1, 1400, 500, core::TraceKind::kFabricOp, 77,
             static_cast<std::uint64_t>(net::OpKind::kGet),
             0 | (96u << 16));
  t.complete(1, 1950, 40, core::TraceKind::kFabricOp, 77,
             static_cast<std::uint64_t>(net::OpKind::kNbiAmoAdd),
             0 | (8u << 16));
  t.end(1, 2000, core::TraceKind::kStealSpan, 77, 0, 0 | (2u << 8));
  std::ostringstream os;
  core::TraceMeta meta;
  meta.protocol = "sws";
  meta.npes = 2;
  meta.slot_bytes = 48;
  t.dump_chrome_json(os, meta);

  std::istringstream is(os.str());
  const RunTrace rt = parse_chrome_trace(is);
  EXPECT_EQ(rt.protocol, "sws");
  EXPECT_EQ(rt.npes, 2);
  EXPECT_FALSE(rt.truncated);
  ASSERT_EQ(rt.spans.size(), 1u);
  const Span& s = rt.spans[0];
  EXPECT_EQ(s.kind, "steal");
  EXPECT_EQ(s.pe, 1);
  EXPECT_EQ(s.victim(), 0);
  EXPECT_EQ(s.outcome(), 0);
  EXPECT_EQ(s.ntasks(), 2u);
  EXPECT_EQ(s.duration_ns(), 1000u);
  ASSERT_EQ(s.ops.size(), 3u);
  EXPECT_EQ(s.ops[0].op, "amo_fetch_add");
  EXPECT_EQ(s.ops[1].op, "get");
  EXPECT_EQ(s.ops[1].bytes, 96u);
  EXPECT_TRUE(s.ops[0].blocking());
  EXPECT_FALSE(s.ops[2].blocking());

  const AnalyzeReport r = analyze(rt);
  EXPECT_EQ(r.steals_ok, 1u);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  ASSERT_EQ(r.signatures.size(), 1u);
  EXPECT_EQ(r.signatures.begin()->first, "amo_fetch_add:1 get:1 nbi_amo_add:1");
}

TEST(TraceAnalysis, FlagsOrphansInUntruncatedTrace) {
  core::Tracer t(1, 64);
  t.begin(0, 100, core::TraceKind::kStealSpan, 5, 0);
  // No end: the span id stays open.
  std::ostringstream os;
  core::TraceMeta meta;
  meta.protocol = "sws";
  meta.npes = 1;
  t.dump_chrome_json(os, meta);
  std::istringstream is(os.str());
  const RunTrace rt = parse_chrome_trace(is);
  EXPECT_EQ(rt.orphan_begins, 1u);
  const AnalyzeReport r = analyze(rt);
  ASSERT_FALSE(r.violations.empty());
}

TEST(TraceAnalysis, RejectsMalformedJson) {
  std::istringstream is("{\"not\": \"an array\"}");
  EXPECT_THROW(parse_chrome_trace(is), std::runtime_error);
  std::istringstream truncated("[{\"name\":\"x\"");
  EXPECT_THROW(parse_chrome_trace(truncated), std::runtime_error);
}

TEST(TraceAnalysis, MissingTopoMetaFailsLoudly) {
  // A protocol-bearing trace from an older writer (no topo key): tier
  // attribution would silently default to flat, so the analyzer must
  // refuse instead of guessing.
  std::istringstream is(
      "[\n{\"name\":\"sws_run_meta\",\"ph\":\"i\",\"s\":\"g\",\"ts\":0,"
      "\"pid\":0,\"tid\":0,\"args\":{\"protocol\":\"sws\",\"npes\":2,"
      "\"slot_bytes\":48,\"truncated\":0}}\n]\n");
  const AnalyzeReport r = analyze(parse_chrome_trace(is));
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations.front().find("topo"), std::string::npos)
      << r.violations.front();
}

// ------------------------------------ critical path + convoy (synthetic)

TEST(TraceAnalysis, CriticalPathBlameSumsToPathLength) {
  // PE0 works [0,1000) with one failed steal [100,300); PE1 steals from
  // PE0 over [1000,1400) (one 100 ns fabric op inside) and finishes last.
  // Expected walk: end at PE1, one hop back to PE0, then local to t=0.
  core::Tracer t(2, 64);
  t.begin(0, 100, core::TraceKind::kStealSpan, 5, 1);
  t.end(0, 300, core::TraceKind::kStealSpan, 5, 1, 1);  // outcome empty
  t.begin(1, 1000, core::TraceKind::kStealSpan, 77, 0);
  t.complete(1, 1100, 100, core::TraceKind::kFabricOp, 77,
             static_cast<std::uint64_t>(net::OpKind::kAmoFetchAdd),
             0 | (8u << 16));
  t.end(1, 1400, core::TraceKind::kStealSpan, 77, 0, 0 | (2u << 8));
  std::ostringstream os;
  t.dump_chrome_json(os);
  std::istringstream is(os.str());
  const RunTrace rt = parse_chrome_trace(is);

  const CriticalPath cp = critical_path(rt);
  EXPECT_EQ(cp.end_pe, 1);
  EXPECT_EQ(cp.path_ns, 1400u);
  EXPECT_EQ(cp.steal_hops, 1u);
  EXPECT_EQ(cp.steal_fabric_ns, 100u);
  EXPECT_EQ(cp.steal_proto_ns, 300u) << "hop minus its fabric occupancy";
  EXPECT_EQ(cp.search_ns, 200u) << "PE0's failed steal [100,300)";
  EXPECT_EQ(cp.work_ns, 800u);
  EXPECT_EQ(cp.work_ns + cp.search_ns + cp.steal_fabric_ns +
                cp.steal_proto_ns,
            cp.path_ns)
      << "every path nanosecond blamed exactly once";
  ASSERT_EQ(cp.hop_pes.size(), 2u);
  EXPECT_EQ(cp.hop_pes[0], 1);
  EXPECT_EQ(cp.hop_pes[1], 0);
}

TEST(TraceAnalysis, ConvoyRanksVictimsByPeakWindowPressure) {
  // Three thieves hammer victim 0 inside one window; victim 1 sees one
  // spread-out attempt. Victim 0 must rank first on peak pressure.
  core::Tracer t(4, 64);
  for (int pe = 1; pe <= 3; ++pe) {
    const auto id = static_cast<std::uint64_t>(pe);
    t.begin(pe, 100 + static_cast<net::Nanos>(pe), core::TraceKind::kStealSpan,
            id, 0);
    t.end(pe, 200 + static_cast<net::Nanos>(pe), core::TraceKind::kStealSpan,
          id, 0, pe == 1 ? 0 : 1);
  }
  t.begin(0, 5000, core::TraceKind::kStealSpan, 9, 1);
  t.end(0, 5100, core::TraceKind::kStealSpan, 9, 1, 1);
  std::ostringstream os;
  t.dump_chrome_json(os);
  std::istringstream is(os.str());
  const ConvoyReport cr = convoy_report(parse_chrome_trace(is),
                                        WindowConfig{.window_ns = 1000});
  ASSERT_EQ(cr.victims.size(), 2u);
  EXPECT_EQ(cr.victims[0].pe, 0);
  EXPECT_EQ(cr.victims[0].inbound_attempts, 3u);
  EXPECT_EQ(cr.victims[0].inbound_ok, 1u);
  EXPECT_EQ(cr.victims[0].peak_window_attempts, 3u);
  EXPECT_EQ(cr.victims[0].peak_window_start_ns, 0u);
  EXPECT_EQ(cr.victims[1].pe, 1);
  EXPECT_EQ(cr.victims[1].peak_window_attempts, 1u);
  EXPECT_EQ(cr.victims[1].peak_window_start_ns, 5000u);
}

TEST(TraceAnalysis, CounterRowsAreRetained) {
  core::Tracer t(1, 64);
  t.counter(0, 500, core::TraceKind::kQueueDepth, 7);
  std::ostringstream os;
  t.dump_chrome_json(os);
  std::istringstream is(os.str());
  const RunTrace rt = parse_chrome_trace(is);
  EXPECT_EQ(rt.counters, 1u);
  ASSERT_EQ(rt.counter_samples.size(), 1u);
  EXPECT_EQ(rt.counter_samples[0].name, "queue_depth");
  EXPECT_EQ(rt.counter_samples[0].pe, 0);
  EXPECT_EQ(rt.counter_samples[0].ts_ns, 500u);
  EXPECT_EQ(rt.counter_samples[0].value, 7);
}

// ----------------------------------------- live end-to-end (Fig 2 claims)

struct UtsRun {
  AnalyzeReport report;
  core::PoolRunReport pool_report;
  MetricsSnapshot metrics;
};

UtsRun run_uts_traced(core::QueueKind kind) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 2;
  rcfg.metrics = true;
  pgas::Runtime rt(rcfg);

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = 9;
  p.node_compute_ns = 2000;
  core::TaskRegistry registry;
  workloads::UtsBenchmark uts(registry, p);

  core::PoolConfig pcfg;
  pcfg.kind = kind;
  pcfg.queue.slot_bytes = 48;
  pcfg.trace.enable = true;
  pcfg.trace.events = std::size_t{1} << 18;
  core::TaskPool pool(rt, registry, pcfg);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });

  std::ostringstream os;
  pool.dump_trace_json(os);
  std::istringstream is(os.str());

  UtsRun out;
  out.report = analyze(parse_chrome_trace(is));
  out.pool_report = pool.report();
  pool.publish_metrics(rt.metrics());
  out.metrics = rt.metrics().snapshot();
  return out;
}

TEST(TraceAnalysisLive, SwsStealIsOneFetchAddOneGet) {
  const UtsRun run = run_uts_traced(core::QueueKind::kSws);
  const AnalyzeReport& r = run.report;
  ASSERT_FALSE(r.truncated) << "grow the trace ring";
  ASSERT_GT(r.steals_ok, 0u);
  EXPECT_EQ(r.steals_ok, run.pool_report.total.steals_ok);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  // The paper's SWS claim, verified op by op: every successful steal is
  // one remote fetch-add (fused discovery+claim) + one task-copy get +
  // one non-blocking completion add. 3 ops, 2 blocking.
  ASSERT_EQ(r.signatures.size(), 1u);
  EXPECT_EQ(r.signatures.begin()->first, "amo_fetch_add:1 get:1 nbi_amo_add:1");
  EXPECT_DOUBLE_EQ(r.ops_per_success, 3.0);
  EXPECT_DOUBLE_EQ(r.blocking_per_success, 2.0);
}

TEST(TraceAnalysisLive, SdcStealIsSixOpSequence) {
  const UtsRun run = run_uts_traced(core::QueueKind::kSdc);
  const AnalyzeReport& r = run.report;
  ASSERT_FALSE(r.truncated);
  ASSERT_GT(r.steals_ok, 0u);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front();
  // The SDC baseline: lock cswap + metadata get + tail-claim put +
  // unlock set + task-copy get + nbi completion set. 6 ops, 5 blocking.
  ASSERT_EQ(r.signatures.size(), 1u);
  EXPECT_EQ(r.signatures.begin()->first,
            "amo_cswap:1 amo_set:1 get:2 nbi_amo_set:1 put:1");
  EXPECT_DOUBLE_EQ(r.ops_per_success, 6.0);
  EXPECT_DOUBLE_EQ(r.blocking_per_success, 5.0);
}

TEST(TraceAnalysisLive, CrashModeShapesAdmittedAndSummarized) {
  // A crash-mode run: PE 2 dies mid-run. The analyzer must (a) admit the
  // crash-mode SDC steal shape — the extra claim-intent put inside the
  // critical section is protocol, not a violation — and (b) surface the
  // recovery events in its summary counters.
  for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
    pgas::RuntimeConfig rcfg;
    rcfg.npes = 4;
    rcfg.net.faults.crashes.push_back({2, 300'000});
    pgas::Runtime rt(rcfg);

    workloads::UtsParams p;
    p.b0 = 4;
    p.gen_mx = 9;
    p.node_compute_ns = 2000;
    core::TaskRegistry registry;
    workloads::UtsBenchmark uts(registry, p);

    core::PoolConfig pcfg;
    pcfg.kind = kind;
    pcfg.queue.slot_bytes = 48;
    pcfg.trace.enable = true;
    pcfg.trace.events = std::size_t{1} << 18;
    core::TaskPool pool(rt, registry, pcfg);
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });

    std::ostringstream os;
    pool.dump_trace_json(os);
    std::istringstream is(os.str());
    const RunTrace rtr = parse_chrome_trace(is);
    EXPECT_TRUE(rtr.crash_mode);
    const AnalyzeReport r = analyze(rtr);
    ASSERT_FALSE(r.truncated) << "grow the trace ring";
    EXPECT_TRUE(r.violations.empty()) << r.violations.front();
    EXPECT_GE(r.deaths_detected, 1u)
        << (kind == core::QueueKind::kSdc ? "SDC" : "SWS");
  }
}

TEST(TraceAnalysisLive, MetricsCoverEveryLayer) {
  const UtsRun run = run_uts_traced(core::QueueKind::kSws);
  const MetricsSnapshot& m = run.metrics;
  // Fabric layer (published by Runtime::run via config().metrics).
  const auto* fetch_adds = m.find("fabric.ops.amo_fetch_add");
  ASSERT_NE(fetch_adds, nullptr);
  EXPECT_GE(fetch_adds->total(), run.pool_report.total.steals_ok);
  // Runtime layer.
  ASSERT_NE(m.find("runtime.last_run_duration_ns"), nullptr);
  EXPECT_GT(m.find("runtime.last_run_duration_ns")->total(), 0u);
  EXPECT_EQ(m.find("runtime.runs")->total(), 1u);
  // Pool + queue layers (published by TaskPool::publish_metrics).
  ASSERT_NE(m.find("pool.tasks_executed"), nullptr);
  EXPECT_EQ(m.find("pool.tasks_executed")->total(),
            run.pool_report.total.tasks_executed);
  EXPECT_EQ(m.find("pool.steals_ok")->total(),
            run.pool_report.total.steals_ok);
  ASSERT_NE(m.find("pool.steal_latency_ns"), nullptr);
  EXPECT_EQ(m.find("pool.steal_latency_ns")->hist.count(),
            run.pool_report.total.steals_ok);
  ASSERT_NE(m.find("queue.releases"), nullptr);
  EXPECT_GT(m.find("queue.releases")->total(), 0u);
}

// -------------------------------------- live per-PE time accounting

/// Every PE's run time must be attributed to exactly one taxonomy
/// category: sum(phase_ns) == accounted_ns, exact integer arithmetic.
void expect_accounting_exact(const core::TaskPool& pool, int npes,
                             const char* what) {
  for (int pe = 0; pe < npes; ++pe) {
    const core::WorkerStats& w = pool.worker_stats(pe);
    const net::Nanos sum = std::accumulate(w.phase_ns.begin(),
                                           w.phase_ns.end(), net::Nanos{0});
    EXPECT_EQ(sum, w.accounted_ns) << what << " pe " << pe;
    EXPECT_GT(w.accounted_ns, 0u) << what << " pe " << pe;
  }
}

TEST(TimeAccountingLive, PhaseSumsEqualElapsedOnUtsAndBpc) {
  for (const auto kind : {core::QueueKind::kSws, core::QueueKind::kSdc}) {
    const char* kname = kind == core::QueueKind::kSws ? "sws" : "sdc";
    {
      pgas::RuntimeConfig rcfg;
      rcfg.npes = 4;
      pgas::Runtime rt(rcfg);
      workloads::UtsParams p;
      p.b0 = 4;
      p.gen_mx = 9;
      p.node_compute_ns = 2000;
      core::TaskRegistry registry;
      workloads::UtsBenchmark uts(registry, p);
      core::PoolConfig pcfg;
      pcfg.kind = kind;
      pcfg.queue.slot_bytes = 48;
      core::TaskPool pool(rt, registry, pcfg);
      rt.run([&](pgas::PeContext& ctx) {
        pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
      });
      expect_accounting_exact(pool, rcfg.npes,
                              (std::string("uts/") + kname).c_str());
      // kWorking covers at least the charged task compute.
      core::PoolRunReport r = pool.report();
      EXPECT_GE(r.total.phase_ns[static_cast<std::size_t>(
                    core::PoolPhase::kWorking)],
                r.total.compute_time_ns)
          << kname;
    }
    {
      pgas::RuntimeConfig rcfg;
      rcfg.npes = 4;
      pgas::Runtime rt(rcfg);
      workloads::BpcParams p;
      p.consumers_per_producer = 8;
      p.depth = 6;
      p.consumer_ns = 50'000;
      p.producer_ns = 10'000;
      core::TaskRegistry registry;
      workloads::BpcBenchmark bpc(registry, p);
      core::PoolConfig pcfg;
      pcfg.kind = kind;
      pcfg.queue.slot_bytes = 48;
      core::TaskPool pool(rt, registry, pcfg);
      rt.run([&](pgas::PeContext& ctx) {
        pool.run_pe(ctx, [&](core::Worker& w) { bpc.seed(w); });
      });
      expect_accounting_exact(pool, rcfg.npes,
                              (std::string("bpc/") + kname).c_str());
    }
  }
}

TEST(TimeAccountingLive, SampledWindowsSumExactlyToElapsed) {
  // A sampling run: every window's acct.* deltas must sum to the elapsed
  // delta (the invariant sws-analyze --timeseries re-checks offline), and
  // the cumulative total must equal the per-PE accounted time.
  for (const auto kind : {core::QueueKind::kSws, core::QueueKind::kSdc}) {
    pgas::RuntimeConfig rcfg;
    rcfg.npes = 2;
    pgas::Runtime rt(rcfg);
    workloads::UtsParams p;
    p.b0 = 4;
    p.gen_mx = 9;
    p.node_compute_ns = 2000;
    core::TaskRegistry registry;
    workloads::UtsBenchmark uts(registry, p);
    core::PoolConfig pcfg;
    pcfg.kind = kind;
    pcfg.queue.slot_bytes = 48;
    pcfg.trace.sample_interval_ns = 10'000;  // sampling without tracing
    core::TaskPool pool(rt, registry, pcfg);
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });

    std::ostringstream os;
    pool.dump_timeseries_json(os);
    std::istringstream is(os.str());
    const TimeSeriesData ts = parse_timeseries(is);
    EXPECT_GT(ts.t.size(), 1u) << "expected multiple sampled windows";
    const auto errs = check_accounting(ts);
    EXPECT_TRUE(errs.empty()) << errs.front();

    const TimeSeriesData::Series* elapsed = ts.find("acct.elapsed_ns");
    ASSERT_NE(elapsed, nullptr);
    const std::int64_t total =
        std::accumulate(elapsed->v.begin(), elapsed->v.end(),
                        std::int64_t{0});
    std::int64_t accounted = 0;
    for (int pe = 0; pe < rcfg.npes; ++pe)
      accounted +=
          static_cast<std::int64_t>(pool.worker_stats(pe).accounted_ns);
    EXPECT_EQ(total, accounted)
        << "cumulative sampled elapsed == sum of per-PE accounted time";
  }
}

TEST(TimeAccountingLive, SampledTraceCarriesCounterTracks) {
  // Sampling + tracing: the trace dump gains one Perfetto counter track
  // per sampled series, which the analyzer retains as counter samples.
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 2;
  pgas::Runtime rt(rcfg);
  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = 9;
  p.node_compute_ns = 2000;
  core::TaskRegistry registry;
  workloads::UtsBenchmark uts(registry, p);
  core::PoolConfig pcfg;
  pcfg.queue.slot_bytes = 48;
  pcfg.trace.enable = true;
  pcfg.trace.events = std::size_t{1} << 18;
  pcfg.trace.sample_interval_ns = 10'000;
  core::TaskPool pool(rt, registry, pcfg);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });

  std::ostringstream os;
  pool.dump_trace_json(os);
  std::istringstream is(os.str());
  const RunTrace rt2 = parse_chrome_trace(is);
  std::uint64_t acct_rows = 0;
  std::int64_t elapsed_total = 0;
  for (const CounterSample& cs : rt2.counter_samples) {
    if (cs.name.rfind("acct.", 0) == 0) ++acct_rows;
    if (cs.name == "acct.elapsed_ns") elapsed_total += cs.value;
  }
  EXPECT_GT(acct_rows, 0u) << "sampled series must appear as C rows";
  std::int64_t accounted = 0;
  for (int pe = 0; pe < rcfg.npes; ++pe)
    accounted +=
        static_cast<std::int64_t>(pool.worker_stats(pe).accounted_ns);
  EXPECT_EQ(elapsed_total, accounted);
}

}  // namespace
}  // namespace sws::obs
