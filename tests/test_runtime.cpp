// Runtime SPMD execution, PeContext sugar, and the collectives built on
// one-sided ops.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "pgas/runtime.hpp"

namespace sws::pgas {
namespace {

RuntimeConfig cfg(int npes) {
  RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 1 << 20;
  return c;
}

TEST(Runtime, RunsBodyOnEveryPe) {
  Runtime rt(cfg(8));
  std::atomic<int> count{0};
  std::atomic<int> pe_mask{0};
  rt.run([&](PeContext& ctx) {
    count.fetch_add(1);
    pe_mask.fetch_or(1 << ctx.pe());
    EXPECT_EQ(ctx.npes(), 8);
  });
  EXPECT_EQ(count.load(), 8);
  EXPECT_EQ(pe_mask.load(), 0xff);
}

TEST(Runtime, ComputeAdvancesOnlyThisPesClock) {
  Runtime rt(cfg(2));
  rt.run([&](PeContext& ctx) {
    if (ctx.pe() == 0) ctx.compute(5000);
    ctx.barrier();
  });
  EXPECT_GE(rt.time().now(0), 5000u);
}

TEST(Runtime, LastRunDurationIsMaxPeTime) {
  Runtime rt(cfg(3));
  rt.run([&](PeContext& ctx) {
    ctx.compute(static_cast<net::Nanos>(1000) * (ctx.pe() + 1));
  });
  EXPECT_GE(rt.last_run_duration(), 3000u);
}

TEST(Runtime, OneSidedSugarRoundTrips) {
  Runtime rt(cfg(2));
  const SymPtr p = rt.heap().alloc(64);
  rt.run([&](PeContext& ctx) {
    if (ctx.pe() == 0) {
      const std::uint64_t v = 0xabcdef;
      ctx.put(1, p, 0, &v, 8);
      std::uint64_t back = 0;
      ctx.get(1, p, 0, &back, 8);
      EXPECT_EQ(back, 0xabcdefu);
      EXPECT_EQ(ctx.fetch_add(1, p, 1), 0xabcdefu);
      EXPECT_EQ(ctx.fetch(1, p), 0xabcdf0u);
      EXPECT_EQ(ctx.swap(1, p, 7), 0xabcdf0u);
      EXPECT_EQ(ctx.compare_swap(1, p, 7, 9), 7u);
      ctx.set(1, p, 0);
      EXPECT_EQ(ctx.fetch(1, p), 0u);
    }
  });
}

TEST(Runtime, LocalLoadSeesOwnArena) {
  Runtime rt(cfg(2));
  const SymPtr p = rt.heap().alloc(8);
  rt.run([&](PeContext& ctx) {
    ctx.set(ctx.pe(), p, static_cast<std::uint64_t>(ctx.pe()) + 10);
    EXPECT_EQ(ctx.local_load(p), static_cast<std::uint64_t>(ctx.pe()) + 10);
  });
}

TEST(Runtime, ExceptionInOnePePropagates) {
  Runtime rt(cfg(4));
  EXPECT_THROW(rt.run([&](PeContext& ctx) {
    if (ctx.pe() == 2) throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

TEST(Runtime, RngStreamsDifferAcrossPes) {
  Runtime rt(cfg(2));
  std::uint64_t first[2];
  rt.run([&](PeContext& ctx) { first[ctx.pe()] = ctx.rng().next(); });
  EXPECT_NE(first[0], first[1]);
}

TEST(Runtime, RngIsDeterministicAcrossRuns) {
  Runtime rt(cfg(2));
  std::uint64_t a[2], b[2];
  rt.run([&](PeContext& ctx) { a[ctx.pe()] = ctx.rng().next(); });
  rt.run([&](PeContext& ctx) { b[ctx.pe()] = ctx.rng().next(); });
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
}

// ------------------------------------------------------------ collectives

TEST(Collectives, BarrierSeparatesPhases) {
  // Every PE writes its slot, barriers, then reads all slots: each must
  // see everyone's write — the fundamental barrier guarantee.
  Runtime rt(cfg(8));
  const SymPtr slots = rt.heap().alloc(8 * 8);
  rt.run([&](PeContext& ctx) {
    // All PEs publish to PE 0.
    ctx.set(0, SymPtr{slots.off + static_cast<std::uint64_t>(ctx.pe()) * 8},
            static_cast<std::uint64_t>(ctx.pe()) + 1);
    ctx.barrier();
    std::uint64_t sum = 0;
    for (int i = 0; i < 8; ++i) {
      std::uint64_t v = 0;
      ctx.get(0, slots, static_cast<std::uint64_t>(i) * 8, &v, 8);
      sum += v;
    }
    EXPECT_EQ(sum, 36u);
  });
}

TEST(Collectives, RepeatedBarriersStayInLockstep) {
  Runtime rt(cfg(4));
  const SymPtr counter = rt.heap().alloc(8);
  rt.run([&](PeContext& ctx) {
    for (int round = 0; round < 20; ++round) {
      if (ctx.pe() == 0) ctx.set(0, counter, static_cast<std::uint64_t>(round));
      ctx.barrier();
      std::uint64_t v = 0;
      ctx.get(0, counter, 0, &v, 8);
      ASSERT_EQ(v, static_cast<std::uint64_t>(round));
      ctx.barrier();
    }
  });
}

TEST(Collectives, SumReducesAcrossPes) {
  Runtime rt(cfg(7));
  rt.run([&](PeContext& ctx) {
    const std::uint64_t total =
        ctx.sum_u64(static_cast<std::uint64_t>(ctx.pe()) + 1);
    EXPECT_EQ(total, 28u);  // 1+2+...+7
  });
}

TEST(Collectives, MaxReduction) {
  Runtime rt(cfg(5));
  rt.run([&](PeContext& ctx) {
    const std::uint64_t m =
        ctx.max_u64(static_cast<std::uint64_t>(ctx.pe()) * 10);
    EXPECT_EQ(m, 40u);
  });
}

TEST(Collectives, BroadcastFromNonzeroRoot) {
  Runtime rt(cfg(6));
  rt.run([&](PeContext& ctx) {
    const std::uint64_t v = ctx.bcast_u64(
        ctx.pe() == 3 ? 0xfeedULL : 0, /*root=*/3);
    EXPECT_EQ(v, 0xfeedULL);
  });
}

TEST(Collectives, WorkWithSinglePe) {
  Runtime rt(cfg(1));
  rt.run([&](PeContext& ctx) {
    ctx.barrier();
    EXPECT_EQ(ctx.sum_u64(5), 5u);
    EXPECT_EQ(ctx.bcast_u64(9, 0), 9u);
  });
}

TEST(Collectives, SequentialRunsDontLeakBarrierState) {
  Runtime rt(cfg(4));
  for (int run = 0; run < 3; ++run) {
    rt.run([&](PeContext& ctx) {
      for (int i = 0; i < 5; ++i) ctx.barrier();
      EXPECT_EQ(ctx.sum_u64(1), 4u);
    });
  }
}

TEST(RuntimeReal, RealModeRunsToo) {
  RuntimeConfig c = cfg(4);
  c.mode = TimeMode::kReal;
  Runtime rt(c);
  std::atomic<int> count{0};
  rt.run([&](PeContext& ctx) {
    ctx.barrier();
    count.fetch_add(1);
    EXPECT_EQ(ctx.sum_u64(2), 8u);
  });
  EXPECT_EQ(count.load(), 4);
}

}  // namespace
}  // namespace sws::pgas
