// "Everything on" integration: the full feature surface engaged at once —
// two-level fabric, NIC occupancy, distance-weighted victims, remote spawning,
// tracing, token termination, completion epochs, damping — on both queue
// protocols and both time backends. If feature interactions break
// anything, this is where it shows.
#include <gtest/gtest.h>

#include "sws.hpp"

namespace sws {
namespace {

struct EverythingParams {
  core::QueueKind kind;
  pgas::TimeMode mode;
};

class EverythingOn : public ::testing::TestWithParam<EverythingParams> {};

TEST_P(EverythingOn, FullFeatureRunIsCorrect) {
  const auto [kind, mode] = GetParam();

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = 9;
  p.geo_shape = workloads::UtsParams::GeoShape::kCyclic;
  p.node_compute_ns = mode == pgas::TimeMode::kReal ? 500 : 5000;
  const auto truth = workloads::uts_sequential_count(p);
  ASSERT_GT(truth.nodes, 50u);

  pgas::RuntimeConfig rcfg;
  rcfg.npes = 12;
  rcfg.mode = mode;
  rcfg.heap_bytes = 4 << 20;
  rcfg.net = net::NetworkParams::two_level(4);  // two-level fabric, 3 nodes
  for (net::Tier t = 1; t <= 2; ++t) {
    rcfg.net.link(t).target_occupancy = 250;
    rcfg.net.link(t).nbi_delay = 20'000;  // lazy completions stress the epochs
  }
  pgas::Runtime rt(rcfg);

  core::TaskRegistry reg;
  workloads::UtsBenchmark uts(reg, p);
  // A side-channel task exercising remote spawning during the search.
  core::TaskFnId hop_fn = 0;
  hop_fn = reg.register_fn(
      "hop", [&](core::Worker& w, std::span<const std::byte> b) {
        std::uint32_t hops;
        std::memcpy(&hops, b.data(), 4);
        w.compute(1000);
        if (hops > 0)
          w.spawn_on((w.pe() + 5) % w.npes(), core::Task::of(hop_fn, hops - 1));
      });

  core::PoolConfig pc;
  pc.kind = kind;
  pc.queue.capacity = 8192;
  pc.queue.slot_bytes = 48;
  pc.victim.policy = core::VictimPolicy::kDistanceWeighted;
  pc.termination = core::TerminationKind::kToken;
  pc.trace.enable = true;
  pc.trace.events = 1 << 15;
  pc.sws.damping = true;
  pc.sws.damping_slack = 4;
  core::TaskPool pool(rt, reg, pc);

  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) {
      uts.seed(w);
      if (w.pe() == 1) w.spawn(core::Task::of(hop_fn, std::uint32_t{24}));
    });
  });

  const core::PoolRunReport r = pool.report();
  EXPECT_EQ(r.total.tasks_executed, truth.nodes + 25)
      << "UTS nodes + 25 hop tasks, each exactly once";
  EXPECT_GT(r.total.steals_ok, 0u);
  // Per-tier steal accounting covers every successful steal.
  EXPECT_EQ(r.total.steals_ok_by_tier[0] + r.total.steals_ok_by_tier[1],
            r.total.steals_ok);
  // The trace agrees with the stats even with every feature engaged.
  EXPECT_EQ(pool.tracer().count(core::TraceKind::kTaskExec),
            r.total.tasks_executed);
  EXPECT_EQ(pool.tracer().count(core::TraceKind::kTerminated), 12u);
}

std::string name(const ::testing::TestParamInfo<EverythingParams>& info) {
  std::string s =
      info.param.kind == core::QueueKind::kSdc ? "SDC" : "SWS";
  s += info.param.mode == pgas::TimeMode::kVirtual ? "_virtual" : "_real";
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EverythingOn,
    ::testing::Values(
        EverythingParams{core::QueueKind::kSws, pgas::TimeMode::kVirtual},
        EverythingParams{core::QueueKind::kSdc, pgas::TimeMode::kVirtual},
        EverythingParams{core::QueueKind::kSws, pgas::TimeMode::kReal},
        EverythingParams{core::QueueKind::kSdc, pgas::TimeMode::kReal}),
    name);

}  // namespace
}  // namespace sws
