// Table renderer and Options parser.
#include <gtest/gtest.h>

#include <sstream>

#include "common/options.hpp"
#include "common/table.hpp"

namespace sws {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.set_header({"a", "long_column", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"100", "20000", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("long_column"), std::string::npos);
  EXPECT_NE(out.find("20000"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t("csv");
  t.set_header({"x", "y"});
  t.add_row({"1", "2.5"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "# csv\nx,y\n1,2.5\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("bad");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, HeaderAfterRowsThrows) {
  Table t("bad");
  t.add_row({"1"});
  EXPECT_THROW(t.set_header({"a"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, KeyEqualsValue) {
  const auto o = parse({"--npes=16", "--mode=real"});
  EXPECT_EQ(o.get("npes", std::int64_t{0}), 16);
  EXPECT_EQ(o.get("mode", std::string("virtual")), "real");
}

TEST(Options, KeySpaceValue) {
  const auto o = parse({"--npes", "32"});
  EXPECT_EQ(o.get("npes", std::int64_t{0}), 32);
}

TEST(Options, BareFlagIsTrue) {
  const auto o = parse({"--verbose"});
  EXPECT_TRUE(o.get("verbose", false));
  EXPECT_FALSE(o.get("absent", false));
}

TEST(Options, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x=yes"}).get("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get("x", false));
  EXPECT_FALSE(parse({"--x=0"}).get("x", true));
  EXPECT_THROW(parse({"--x=maybe"}).get("x", false), std::invalid_argument);
}

TEST(Options, MalformedNumberThrows) {
  EXPECT_THROW(parse({"--n=abc"}).get("n", std::int64_t{0}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--f=xyz"}).get("f", 1.0), std::invalid_argument);
}

TEST(Options, PositionalArguments) {
  const auto o = parse({"file1", "--k=v", "file2"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "file1");
  EXPECT_EQ(o.positional()[1], "file2");
}

TEST(Options, UnusedDetectsTypos) {
  const auto o = parse({"--npes=4", "--typo=1"});
  (void)o.get("npes", std::int64_t{0});
  const auto unused = o.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Options, DoubleValues) {
  EXPECT_DOUBLE_EQ(parse({"--f=2.5"}).get("f", 0.0), 2.5);
}

}  // namespace
}  // namespace sws
