#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace sws {
namespace {

TEST(SplitMix64, KnownSequenceFromSeedZero) {
  // Reference values for seed 0 (computed from the canonical algorithm).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    ASSERT_EQ(va, b.next());
    if (va != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro, StreamsAreIndependent) {
  Xoshiro256 s0(42, 0), s1(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (s0.next() == s1.next()) ++equal;
  EXPECT_LE(equal, 1) << "distinct streams should essentially never collide";
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.1)
        << "bucket " << b;
  }
}

TEST(Xoshiro, UniformIsInUnitInterval) {
  Xoshiro256 rng(12);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace sws
