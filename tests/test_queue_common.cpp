// Behaviour shared by both queue implementations (SDC baseline and SWS),
// run against each via TEST_P: local LIFO semantics, release/acquire
// geometry, steal-half volumes, content integrity, and ring reclaim.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/queue.hpp"
#include "core/sdc_queue.hpp"
#include "core/sws_queue.hpp"

namespace sws::core {
namespace {

std::unique_ptr<TaskQueue> make_queue(pgas::Runtime& rt, QueueKind kind,
                                      std::uint32_t capacity = 1024,
                                      std::uint32_t slot_bytes = 32) {
  const QueueConfig qc{capacity, slot_bytes};
  if (kind == QueueKind::kSws) return std::make_unique<SwsQueue>(rt, qc);
  return std::make_unique<SdcQueue>(rt, qc);
}

Task mk(std::uint32_t id) { return Task::of(0, id); }
std::uint32_t id_of(const Task& t) { return t.payload_as<std::uint32_t>(); }

class QueueCommon : public ::testing::TestWithParam<QueueKind> {
 protected:
  pgas::RuntimeConfig rcfg(int npes) {
    pgas::RuntimeConfig c;
    c.npes = npes;
    c.heap_bytes = 1 << 20;
    return c;
  }
};

TEST_P(QueueCommon, PushPopIsLifo) {
  pgas::Runtime rt(rcfg(1));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    for (std::uint32_t i = 0; i < 10; ++i) EXPECT_TRUE(q->push_local(ctx, mk(i)));
    EXPECT_EQ(q->local_count(ctx), 10u);
    Task t;
    for (std::uint32_t i = 10; i-- > 0;) {
      ASSERT_TRUE(q->pop_local(ctx, t));
      EXPECT_EQ(id_of(t), i);
    }
    EXPECT_FALSE(q->pop_local(ctx, t));
    EXPECT_EQ(q->local_count(ctx), 0u);
  });
}

TEST_P(QueueCommon, ReleaseExposesOldestHalf) {
  pgas::Runtime rt(rcfg(1));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    for (std::uint32_t i = 0; i < 10; ++i) (void)q->push_local(ctx, mk(i));
    EXPECT_FALSE(q->shared_available(ctx));
    EXPECT_TRUE(q->try_release(ctx));
    EXPECT_TRUE(q->shared_available(ctx));
    EXPECT_EQ(q->local_count(ctx), 5u);
    // The local half is the newest: pops yield 9..5.
    Task t;
    for (std::uint32_t i = 10; i-- > 5;) {
      ASSERT_TRUE(q->pop_local(ctx, t));
      EXPECT_EQ(id_of(t), i);
    }
  });
}

TEST_P(QueueCommon, ReleaseNeedsTwoLocalTasks) {
  pgas::Runtime rt(rcfg(1));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    EXPECT_FALSE(q->try_release(ctx));
    (void)q->push_local(ctx, mk(0));
    EXPECT_FALSE(q->try_release(ctx));
    (void)q->push_local(ctx, mk(1));
    EXPECT_TRUE(q->try_release(ctx));
  });
}

TEST_P(QueueCommon, AcquirePullsSharedBackWhenLocalEmpty) {
  pgas::Runtime rt(rcfg(1));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    for (std::uint32_t i = 0; i < 8; ++i) (void)q->push_local(ctx, mk(i));
    ASSERT_TRUE(q->try_release(ctx));  // shared: ids 0..3, local: 4..7
    Task t;
    while (q->pop_local(ctx, t)) {}
    ASSERT_TRUE(q->try_acquire(ctx));
    EXPECT_GT(q->local_count(ctx), 0u);
    // Re-acquired tasks are the *newest* end of the shared region.
    ASSERT_TRUE(q->pop_local(ctx, t));
    EXPECT_EQ(id_of(t), 3u);
  });
}

TEST_P(QueueCommon, AcquireFailsWhenLocalNonEmptyOrSharedEmpty) {
  pgas::Runtime rt(rcfg(1));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    EXPECT_FALSE(q->try_acquire(ctx));  // nothing anywhere
    (void)q->push_local(ctx, mk(0));
    EXPECT_FALSE(q->try_acquire(ctx));  // local work remains
  });
}

TEST_P(QueueCommon, StealTakesHalfOfShared) {
  pgas::Runtime rt(rcfg(2));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 40; ++i) (void)q->push_local(ctx, mk(i));
      ASSERT_TRUE(q->try_release(ctx));  // 20 shared (ids 0..19)
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      const StealResult r = q->steal(ctx, 0, loot);
      ASSERT_EQ(r.outcome, StealOutcome::kSuccess);
      EXPECT_EQ(r.ntasks, 10u);
      ASSERT_EQ(loot.size(), 10u);
      for (std::uint32_t i = 0; i < 10; ++i)
        EXPECT_EQ(id_of(loot[i]), i) << "oldest tasks stolen first";
    }
    ctx.barrier();
  });
}

TEST_P(QueueCommon, StealFromEmptyQueueFails) {
  pgas::Runtime rt(rcfg(2));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      const StealResult r = q->steal(ctx, 0, loot);
      EXPECT_EQ(r.outcome, StealOutcome::kEmpty);
      EXPECT_TRUE(loot.empty());
    }
    ctx.barrier();
  });
}

TEST_P(QueueCommon, RepeatedStealsDrainSharedInHalves) {
  pgas::Runtime rt(rcfg(2));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 300; ++i) (void)q->push_local(ctx, mk(i));
      ASSERT_TRUE(q->try_release(ctx));  // 150 shared
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      // The paper's sequence: {75,37,19,9,5,2,1,1,1}.
      const std::uint32_t expect[] = {75, 37, 19, 9, 5, 2, 1, 1, 1};
      std::set<std::uint32_t> seen;
      for (std::uint32_t k = 0; k < 9; ++k) {
        std::vector<Task> loot;
        const StealResult r = q->steal(ctx, 0, loot);
        ASSERT_EQ(r.outcome, StealOutcome::kSuccess) << "steal " << k;
        EXPECT_EQ(r.ntasks, expect[k]) << "steal " << k;
        for (const Task& t : loot) {
          ASSERT_TRUE(seen.insert(id_of(t)).second) << "duplicate task";
        }
      }
      EXPECT_EQ(seen.size(), 150u);
      EXPECT_EQ(*seen.rbegin(), 149u);
      std::vector<Task> loot;
      EXPECT_EQ(q->steal(ctx, 0, loot).outcome, StealOutcome::kEmpty);
    }
    ctx.barrier();
  });
}

TEST_P(QueueCommon, ConcurrentThievesClaimDisjointBlocks) {
  pgas::Runtime rt(rcfg(4));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 300; ++i) (void)q->push_local(ctx, mk(i));
      ASSERT_TRUE(q->try_release(ctx));
    }
    ctx.barrier();
    static std::mutex mu;
    static std::set<std::uint32_t> all_ids;
    static std::multiset<std::uint32_t> sizes;
    if (ctx.pe() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      all_ids.clear();
      sizes.clear();
    }
    ctx.barrier();
    if (ctx.pe() != 0) {
      std::vector<Task> loot;
      StealResult r;
      do {  // SDC thieves may see kRetry under lock contention
        r = q->steal(ctx, 0, loot);
      } while (r.outcome == StealOutcome::kRetry);
      EXPECT_EQ(r.outcome, StealOutcome::kSuccess);
      std::lock_guard<std::mutex> lk(mu);
      if (r.outcome == StealOutcome::kSuccess) sizes.insert(r.ntasks);
      for (const Task& t : loot)
        EXPECT_TRUE(all_ids.insert(id_of(t)).second) << "double-claimed task";
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      // Three thieves claimed the first three halving blocks: 75+37+19.
      EXPECT_EQ(all_ids.size(), 131u);
      EXPECT_EQ(sizes, (std::multiset<std::uint32_t>{19, 37, 75}));
    }
    ctx.barrier();
  });
}

TEST_P(QueueCommon, RingSpaceIsReclaimedAfterSteals) {
  pgas::Runtime rt(rcfg(2));
  auto q = make_queue(rt, GetParam(), /*capacity=*/64);
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    // Cycle far more tasks than the ring holds: push, release, let the
    // thief drain, progress, repeat.
    for (int round = 0; round < 20; ++round) {
      if (ctx.pe() == 0) {
        for (std::uint32_t i = 0; i < 40; ++i) {
          // progress() inside push_local must reclaim stolen space.
          ASSERT_TRUE(q->push_local(ctx, mk(i))) << "round " << round;
        }
        ASSERT_TRUE(q->try_release(ctx));
      }
      ctx.barrier();
      if (ctx.pe() == 1) {
        std::vector<Task> loot;
        while (q->steal(ctx, 0, loot).outcome == StealOutcome::kSuccess) {}
        ctx.quiet();  // force completion notifications to deliver
      }
      ctx.barrier();
      if (ctx.pe() == 0) {
        // Drain the local remainder and reclaim.
        Task t;
        while (q->pop_local(ctx, t)) {}
        q->progress(ctx);
      }
      ctx.barrier();
    }
  });
}

TEST_P(QueueCommon, PushFailsOnlyWhenRingTrulyFull) {
  pgas::Runtime rt(rcfg(1));
  auto q = make_queue(rt, GetParam(), /*capacity=*/16);
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    for (std::uint32_t i = 0; i < 16; ++i)
      EXPECT_TRUE(q->push_local(ctx, mk(i)));
    EXPECT_FALSE(q->push_local(ctx, mk(99)));
    Task t;
    ASSERT_TRUE(q->pop_local(ctx, t));
    EXPECT_TRUE(q->push_local(ctx, mk(100)));
  });
}

TEST_P(QueueCommon, OpStatsTrackSteals) {
  pgas::Runtime rt(rcfg(2));
  auto q = make_queue(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 8; ++i) (void)q->push_local(ctx, mk(i));
      (void)q->try_release(ctx);
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      (void)q->steal(ctx, 0, loot);
      (void)q->steal(ctx, 0, loot);
    }
    ctx.barrier();
  });
  const QueueOpStats& s = q->op_stats(1);
  EXPECT_EQ(s.steals_ok, 2u);
  EXPECT_EQ(s.tasks_stolen, 2u + 1u);  // 4 shared → blocks {2,1,1}
  EXPECT_EQ(q->op_stats(0).releases, 1u);
}

INSTANTIATE_TEST_SUITE_P(BothQueues, QueueCommon,
                         ::testing::Values(QueueKind::kSdc, QueueKind::kSws),
                         [](const auto& info) {
                           return info.param == QueueKind::kSdc ? "SDC" : "SWS";
                         });

}  // namespace
}  // namespace sws::core
