// Schedule-exploration harness tests (src/check/).
//
// The acceptance bar for the harness: exhaustive 2-PE SWS exploration
// covers >= 1000 distinct schedules all green, random sampling replays
// byte-identically from its seed, and the find -> replay -> shrink loop
// provably catches a scenario that is broken on purpose.

#include <gtest/gtest.h>

#include <algorithm>

#include "check/explorer.hpp"

namespace sws::check {
namespace {

TEST(Explorer, ExhaustiveSmokeSwsTwoPe) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kExhaustive;
  opts.max_schedules = 1500;
  Explorer ex(sws_steal_release_scenario(2), opts);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.failed) << rep.summary();
  EXPECT_GE(rep.schedules, 1000u) << rep.summary();
  EXPECT_GT(rep.branch_points, 0u);
}

TEST(Explorer, BulkStealScenarioGreen) {
  // The bulk-claim protocol (multi-block fetch-adds, AIMD claim sizes,
  // pressure releases) under exhaustive 2-PE interleaving: every schedule
  // must keep the queue audit green and surface each task exactly once.
  ExploreOptions opts;
  opts.mode = ExploreMode::kExhaustive;
  opts.max_schedules = 1500;
  Explorer ex(bulk_steal_scenario(2), opts);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.failed) << rep.summary();
  EXPECT_GE(rep.schedules, 500u) << rep.summary();
  EXPECT_GT(rep.branch_points, 0u);
}

TEST(Explorer, SdcScenarioGreen) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kExhaustive;
  opts.max_schedules = 400;
  Explorer ex(sdc_steal_release_scenario(2), opts);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.failed) << rep.summary();
  EXPECT_GT(rep.branch_points, 0u);
}

TEST(Explorer, RandomReplayIsByteIdentical) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.seed = 7;
  Explorer ex(sws_steal_release_scenario(2), opts);
  const RunOutcome a = ex.run_one_seeded(0xdeadbeefULL);
  const RunOutcome b = ex.run_one_seeded(0xdeadbeefULL);
  ASSERT_FALSE(a.taken.empty());
  EXPECT_EQ(a.taken, b.taken);
  EXPECT_EQ(a.width, b.width);
  EXPECT_EQ(a.violation, b.violation);
  // A different seed explores a different order (overwhelmingly likely
  // given dozens of binary choice points).
  const RunOutcome c = ex.run_one_seeded(0xfeedfaceULL);
  EXPECT_NE(a.taken, c.taken);
}

TEST(Explorer, RandomSamplingSwsGreen) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.max_schedules = 300;
  opts.seed = 11;
  Explorer ex(sws_steal_release_scenario(3), opts);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.failed) << rep.summary();
  EXPECT_EQ(rep.schedules, 300u);
}

TEST(Explorer, PruningCollapsesRevisitedStates) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kExhaustive;
  opts.max_schedules = 400;
  opts.prune_visited = true;
  Explorer ex(sws_steal_release_scenario(2), opts);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.failed) << rep.summary();
  EXPECT_GT(rep.pruned, 0u) << rep.summary();
}

TEST(Explorer, CounterTerminationSound) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.max_schedules = 150;
  opts.seed = 3;
  Explorer ex(counter_termination_scenario(2), opts);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.failed) << rep.summary();
}

TEST(Explorer, TokenTerminationSound) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.max_schedules = 150;
  opts.seed = 5;
  Explorer ex(token_termination_scenario(2), opts);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.failed) << rep.summary();
}

TEST(Explorer, FindsReplaysAndShrinksLostUpdate) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kExhaustive;
  opts.max_schedules = 200;
  opts.shrink = true;
  Explorer ex(lost_update_scenario(2), opts);
  const ExploreReport rep = ex.run();
  ASSERT_TRUE(rep.failed) << rep.summary();
  EXPECT_NE(rep.violation.find("lost update"), std::string::npos)
      << rep.violation;

  // The minimal schedule still reproduces on replay and carries a labeled
  // event trace from the final recording pass.
  const RunOutcome replay = ex.run_one_forced(rep.minimal.choices);
  EXPECT_FALSE(replay.violation.empty());
  EXPECT_FALSE(rep.minimal.events.empty());

  // Shrinking never adds non-default choices.
  const auto nondefault = [](const std::vector<std::uint8_t>& v) {
    return static_cast<std::size_t>(
        std::count_if(v.begin(), v.end(),
                      [](std::uint8_t c) { return c != 0; }));
  };
  EXPECT_LE(nondefault(rep.minimal.choices),
            nondefault(rep.failing.choices));
}

// One planned crash exhaustively interleaved against live steal
// handshakes: PE 1 dies at explore-epoch + offset (ops cost 100 ns, so
// different offsets land the death at different handshake stages), the
// owner fences its open claims, and the ledger holds every task to the
// at-least-once multiplicity bound of 2. Any schedule that hangs would
// trip the explorer's bounded schedule budget / test timeout.
TEST(Explorer, CrashStealSwsMultiplicityBound) {
  for (const net::Nanos offset : {50, 250, 450}) {
    ExploreOptions opts;
    opts.mode = ExploreMode::kExhaustive;
    opts.max_schedules = 150;
    Explorer ex(crash_steal_scenario(core::QueueKind::kSws, offset), opts);
    const ExploreReport rep = ex.run();
    EXPECT_FALSE(rep.failed) << "offset=" << offset << "\n" << rep.summary();
    EXPECT_GT(rep.branch_points, 0u) << "offset=" << offset;
  }
}

TEST(Explorer, CrashStealSdcMultiplicityBound) {
  for (const net::Nanos offset : {50, 350, 650}) {
    ExploreOptions opts;
    opts.mode = ExploreMode::kExhaustive;
    opts.max_schedules = 150;
    Explorer ex(crash_steal_scenario(core::QueueKind::kSdc, offset), opts);
    const ExploreReport rep = ex.run();
    EXPECT_FALSE(rep.failed) << "offset=" << offset << "\n" << rep.summary();
    EXPECT_GT(rep.branch_points, 0u) << "offset=" << offset;
  }
}

TEST(Explorer, CrashStealRandomSampling) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.max_schedules = 100;
  opts.seed = 17;
  Explorer ex(crash_steal_scenario(core::QueueKind::kSws, 150), opts);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.failed) << rep.summary();
}

TEST(Explorer, SummaryMentionsViolation) {
  ExploreOptions opts;
  opts.mode = ExploreMode::kRandom;
  opts.max_schedules = 64;
  opts.seed = 1;
  Explorer ex(lost_update_scenario(2), opts);
  const ExploreReport rep = ex.run();
  ASSERT_TRUE(rep.failed);
  EXPECT_NE(rep.failing.seed, 0u);
  EXPECT_NE(rep.summary().find("VIOLATION"), std::string::npos);
}

}  // namespace
}  // namespace sws::check
