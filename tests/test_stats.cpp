#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace sws {
namespace {

TEST(Summary, EmptyIsAllZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MatchesReferenceFormulae) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  Summary s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.range(), 7.0);
  // Sample variance with n-1 denominator: Σ(x−5)² = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, RelativeMetricsArePercentages) {
  Summary s;
  s.add(99);
  s.add(101);
  EXPECT_NEAR(s.rel_range_pct(), 2.0, 1e-12);
  EXPECT_NEAR(s.rel_stddev_pct(), 100.0 * std::sqrt(2.0) / 100.0, 1e-9);
}

TEST(Summary, MergeEqualsSequential) {
  Xoshiro256 rng(3);
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100 - 50;
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(1);
  a.add(2);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Summary b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(LogHistogram, BucketsByPowerOfTwo) {
  LogHistogram h;
  h.add(0);
  h.add(1);  // [1,2) -> bucket 0
  h.add(2);  // bucket 1
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(LogHistogram, QuantileApproximatesOrder) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) h.add(8);     // bucket 3 = [8, 15]
  for (int i = 0; i < 10; ++i) h.add(4096);  // bucket 12 = [4096, 8191]
  // Interior quantiles interpolate within the bucket. q=0.5 hits rank 49
  // of the 90 samples in bucket 3: 8 + 7*(49.5/90) = 11. q=0.99 hits
  // rank 8 of the 10 in bucket 12: 4096 + 4095*(8.5/10) = 7576.
  EXPECT_EQ(h.quantile(0.5), 11u);
  EXPECT_EQ(h.quantile(0.99), 7576u);
}

TEST(LogHistogram, QuantileInteriorInterpolatesWithinBucket) {
  LogHistogram h;
  for (int i = 0; i < 4; ++i) h.add(9);  // bucket 3 = [8, 15]
  // Four samples spread evenly across [8, 15]: rank r maps to
  // 8 + 7*(r+0.5)/4. The old behaviour collapsed all interior quantiles
  // to the bucket's lower bound, under-reporting tails by up to 2x.
  EXPECT_EQ(h.quantile(0.0), 8u);     // rank 0 -> 8.875
  EXPECT_EQ(h.quantile(0.5), 10u);    // rank 1 -> 10.625
  EXPECT_EQ(h.quantile(0.999), 12u);  // rank 2 -> 12.375
}

TEST(LogHistogram, QuantileBucketEdgeBoundaries) {
  // Samples at the extreme representable values of one bucket: every
  // interior quantile must stay inside that bucket's [lower, upper] range.
  LogHistogram h;
  h.add(8);   // lowest value of bucket 3
  h.add(15);  // highest value of bucket 3
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.999}) {
    const std::uint64_t v = h.quantile(q);
    EXPECT_GE(v, 8u) << "q=" << q;
    EXPECT_LE(v, 15u) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), 15u);
}

TEST(LogHistogram, QuantileIsMonotoneAcrossBucketEdge) {
  LogHistogram h;
  for (int i = 0; i < 7; ++i) h.add(7);  // bucket 2 = [4, 7]
  for (int i = 0; i < 5; ++i) h.add(8);  // bucket 3 = [8, 15]
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const std::uint64_t v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // The 7s and 8s straddle a bucket edge: low quantiles stay in [4, 7],
  // high ones land in [8, 15] — interpolation never crosses the edge.
  EXPECT_LE(h.quantile(0.25), 7u);
  EXPECT_GE(h.quantile(0.9), 8u);
}

TEST(LogHistogram, QuantileOneReportsInclusiveUpperBound) {
  LogHistogram h;
  for (int i = 0; i < 4; ++i) h.add(9);  // bucket 3 = [8, 16)
  // Every recorded sample is <= quantile(1.0); the lower bound (8) would
  // understate the max.
  EXPECT_EQ(h.quantile(1.0), 15u);

  LogHistogram zero;
  zero.add(0);  // bucket 0 = [0, 2)
  EXPECT_EQ(zero.quantile(0.5), 0u);
  EXPECT_EQ(zero.quantile(1.0), 1u);
}

TEST(LogHistogram, QuantileOneSaturatesInTopBucket) {
  LogHistogram h;
  h.add(~std::uint64_t{0});  // bucket 63 = [2^63, 2^64-1]
  // One sample interpolates to the bucket midpoint: 2^63 + (2^63-1)*0.5,
  // which rounds to 2^62 in double precision.
  EXPECT_EQ(h.quantile(0.5),
            (std::uint64_t{1} << 63) + (std::uint64_t{1} << 62));
  EXPECT_EQ(h.quantile(1.0), ~std::uint64_t{0});
}

TEST(LogHistogram, QuantileOnEmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a, b;
  a.add(5);
  b.add(5);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket(2), 2u);
}

}  // namespace
}  // namespace sws
