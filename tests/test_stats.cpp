#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace sws {
namespace {

TEST(Summary, EmptyIsAllZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MatchesReferenceFormulae) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  Summary s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.range(), 7.0);
  // Sample variance with n-1 denominator: Σ(x−5)² = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, RelativeMetricsArePercentages) {
  Summary s;
  s.add(99);
  s.add(101);
  EXPECT_NEAR(s.rel_range_pct(), 2.0, 1e-12);
  EXPECT_NEAR(s.rel_stddev_pct(), 100.0 * std::sqrt(2.0) / 100.0, 1e-9);
}

TEST(Summary, MergeEqualsSequential) {
  Xoshiro256 rng(3);
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100 - 50;
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a, empty;
  a.add(1);
  a.add(2);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Summary b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(LogHistogram, BucketsByPowerOfTwo) {
  LogHistogram h;
  h.add(0);
  h.add(1);  // [1,2) -> bucket 0
  h.add(2);  // bucket 1
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(LogHistogram, QuantileApproximatesOrder) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) h.add(8);     // bucket 3
  for (int i = 0; i < 10; ++i) h.add(4096);  // bucket 12
  EXPECT_EQ(h.quantile(0.5), 8u);
  EXPECT_EQ(h.quantile(0.99), 4096u);
}

TEST(LogHistogram, QuantileInteriorReportsBucketLowerBound) {
  LogHistogram h;
  for (int i = 0; i < 4; ++i) h.add(9);  // bucket 3 = [8, 16)
  EXPECT_EQ(h.quantile(0.0), 8u);
  EXPECT_EQ(h.quantile(0.5), 8u);
  EXPECT_EQ(h.quantile(0.999), 8u);
}

TEST(LogHistogram, QuantileOneReportsInclusiveUpperBound) {
  LogHistogram h;
  for (int i = 0; i < 4; ++i) h.add(9);  // bucket 3 = [8, 16)
  // Every recorded sample is <= quantile(1.0); the lower bound (8) would
  // understate the max.
  EXPECT_EQ(h.quantile(1.0), 15u);

  LogHistogram zero;
  zero.add(0);  // bucket 0 = [0, 2)
  EXPECT_EQ(zero.quantile(0.5), 0u);
  EXPECT_EQ(zero.quantile(1.0), 1u);
}

TEST(LogHistogram, QuantileOneSaturatesInTopBucket) {
  LogHistogram h;
  h.add(~std::uint64_t{0});  // bucket 63
  EXPECT_EQ(h.quantile(0.5), std::uint64_t{1} << 63);
  EXPECT_EQ(h.quantile(1.0), ~std::uint64_t{0});
}

TEST(LogHistogram, QuantileOnEmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a, b;
  a.add(5);
  b.add(5);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket(2), 2u);
}

}  // namespace
}  // namespace sws
