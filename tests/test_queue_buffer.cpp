// Circular slot buffer: local read/write, wrap arithmetic, remote wrapped
// gets.
#include <gtest/gtest.h>

#include "core/queue_buffer.hpp"
#include "core/stealval.hpp"

namespace sws::core {
namespace {

pgas::RuntimeConfig rcfg(int npes) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 1 << 20;
  return c;
}

TEST(QueueBuffer, WrapIsModCapacity) {
  pgas::Runtime rt(rcfg(1));
  QueueBuffer qb(rt.heap(), 100, 32);
  EXPECT_EQ(qb.wrap(0), 0u);
  EXPECT_EQ(qb.wrap(99), 99u);
  EXPECT_EQ(qb.wrap(100), 0u);
  EXPECT_EQ(qb.wrap(250), 50u);
}

TEST(QueueBuffer, LocalWriteReadRoundTrips) {
  pgas::Runtime rt(rcfg(1));
  QueueBuffer qb(rt.heap(), 16, 32);
  rt.run([&](pgas::PeContext& ctx) {
    for (std::uint64_t i = 0; i < 40; ++i) {
      qb.write_local(ctx, i, Task::of(7, static_cast<std::uint32_t>(i)));
      const Task t = qb.read_local(ctx, i);
      EXPECT_EQ(t.payload_as<std::uint32_t>(), static_cast<std::uint32_t>(i));
    }
  });
}

TEST(QueueBuffer, RemoteGetContiguous) {
  pgas::Runtime rt(rcfg(2));
  QueueBuffer qb(rt.heap(), 64, 32);
  rt.run([&](pgas::PeContext& ctx) {
    if (ctx.pe() == 1)
      for (std::uint64_t i = 0; i < 10; ++i)
        qb.write_local(ctx, i, Task::of(1, static_cast<std::uint32_t>(100 + i)));
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::vector<Task> out;
      qb.get_remote(ctx, 1, 2, 5, out);
      ASSERT_EQ(out.size(), 5u);
      for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(out[i].payload_as<std::uint32_t>(), 102 + i);
    }
    ctx.barrier();
  });
}

TEST(QueueBuffer, RemoteGetWrapsAroundRing) {
  pgas::Runtime rt(rcfg(2));
  QueueBuffer qb(rt.heap(), 8, 32);
  rt.run([&](pgas::PeContext& ctx) {
    if (ctx.pe() == 1) {
      // Absolute indices 5..11 wrap the 8-slot ring (slots 5,6,7,0,1,2,3).
      for (std::uint64_t i = 5; i < 12; ++i)
        qb.write_local(ctx, i, Task::of(1, static_cast<std::uint32_t>(i)));
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::vector<Task> out;
      const auto before =
          ctx.fabric().stats(0).ops[static_cast<int>(net::OpKind::kGet)];
      qb.get_remote(ctx, 1, qb.wrap(5), 7, out);
      const auto after =
          ctx.fabric().stats(0).ops[static_cast<int>(net::OpKind::kGet)];
      EXPECT_EQ(after - before, 2u) << "a wrapped steal issues two gets";
      ASSERT_EQ(out.size(), 7u);
      for (std::uint32_t i = 0; i < 7; ++i)
        EXPECT_EQ(out[i].payload_as<std::uint32_t>(), 5 + i);
    }
    ctx.barrier();
  });
}

TEST(QueueBuffer, AppendsToExistingVector) {
  pgas::Runtime rt(rcfg(2));
  QueueBuffer qb(rt.heap(), 16, 32);
  rt.run([&](pgas::PeContext& ctx) {
    if (ctx.pe() == 1)
      qb.write_local(ctx, 0, Task::of(1, std::uint32_t{55}));
    ctx.barrier();
    if (ctx.pe() == 0) {
      std::vector<Task> out(3);  // pre-existing content preserved
      qb.get_remote(ctx, 1, 0, 1, out);
      ASSERT_EQ(out.size(), 4u);
      EXPECT_EQ(out[3].payload_as<std::uint32_t>(), 55u);
    }
    ctx.barrier();
  });
}

TEST(QueueBuffer, CapacityOverStealvalLimitRejected) {
  pgas::Runtime rt(rcfg(1));
  EXPECT_THROW(QueueBuffer(rt.heap(), kMaxQueueCapacity + 1, 32),
               std::invalid_argument);
}

TEST(QueueBuffer, TinySlotRejected) {
  pgas::Runtime rt(rcfg(1));
  EXPECT_THROW(QueueBuffer(rt.heap(), 16, 4), std::invalid_argument);
}

}  // namespace
}  // namespace sws::core
