// The OpenSHMEM-style veneer: thread binding, data movement, atomics,
// ordering, collectives — a small SHMEM program per test.
#include <gtest/gtest.h>

#include "pgas/shmem.hpp"

namespace sws::pgas {
namespace {

RuntimeConfig rcfg(int npes) {
  RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 1 << 20;
  return c;
}

TEST(Shmem, PeIdentity) {
  Runtime rt(rcfg(4));
  rt.run([&](PeContext& ctx) {
    shmem::Scope scope(ctx);
    EXPECT_EQ(shmem::my_pe(), ctx.pe());
    EXPECT_EQ(shmem::n_pes(), 4);
  });
}

TEST(Shmem, PutGetRoundTrip) {
  Runtime rt(rcfg(2));
  const SymPtr buf = rt.heap().alloc(64);
  rt.run([&](PeContext& ctx) {
    shmem::Scope scope(ctx);
    if (shmem::my_pe() == 0) {
      const char msg[] = "shmem veneer";
      shmem::putmem(buf, msg, sizeof(msg), 1);
      char back[sizeof(msg)] = {};
      shmem::getmem(back, buf, sizeof(back), 1);
      EXPECT_STREQ(back, msg);
    }
    shmem::barrier_all();
  });
}

TEST(Shmem, ScalarPutGet) {
  Runtime rt(rcfg(2));
  const SymPtr word = rt.heap().alloc(8);
  rt.run([&](PeContext& ctx) {
    shmem::Scope scope(ctx);
    if (shmem::my_pe() == 0) shmem::ulong_p(word, 0xabcd, 1);
    shmem::barrier_all();
    if (shmem::my_pe() == 1) {
      EXPECT_EQ(shmem::ulong_g(word, 1), 0xabcdu);
    }
    shmem::barrier_all();
  });
}

TEST(Shmem, AtomicsMatchFabricSemantics) {
  Runtime rt(rcfg(2));
  const SymPtr word = rt.heap().alloc(8);
  rt.run([&](PeContext& ctx) {
    shmem::Scope scope(ctx);
    if (shmem::my_pe() == 0) {
      EXPECT_EQ(shmem::atomic_fetch_add(word, 5, 1), 0u);
      EXPECT_EQ(shmem::atomic_fetch(word, 1), 5u);
      EXPECT_EQ(shmem::atomic_compare_swap(word, 5, 9, 1), 5u);
      EXPECT_EQ(shmem::atomic_swap(word, 2, 1), 9u);
      shmem::atomic_set(word, 0, 1);
      EXPECT_EQ(shmem::atomic_fetch(word, 1), 0u);
    }
    shmem::barrier_all();
  });
}

TEST(Shmem, NbiOpsCompleteAtQuiet) {
  Runtime rt(rcfg(2));
  const SymPtr word = rt.heap().alloc(8);
  rt.run([&](PeContext& ctx) {
    shmem::Scope scope(ctx);
    if (shmem::my_pe() == 0) {
      for (int i = 0; i < 4; ++i) shmem::atomic_add_nbi(word, 1, 1);
      shmem::quiet();
    }
    shmem::barrier_all();
    if (shmem::my_pe() == 1) {
      EXPECT_EQ(ctx.local_load(word), 4u);
    }
    shmem::barrier_all();
  });
}

TEST(Shmem, CollectivesThroughVeneer) {
  Runtime rt(rcfg(6));
  rt.run([&](PeContext& ctx) {
    shmem::Scope scope(ctx);
    EXPECT_EQ(shmem::sum_reduce(2), 12u);
    EXPECT_EQ(shmem::max_reduce(static_cast<std::uint64_t>(shmem::my_pe())),
              5u);
    EXPECT_EQ(shmem::broadcast(shmem::my_pe() == 2 ? 77u : 0u, 2), 77u);
  });
}

TEST(Shmem, ClassicPingPong) {
  // The canonical SHMEM example: bounce a counter between two PEs.
  Runtime rt(rcfg(2));
  const SymPtr flag = rt.heap().alloc(8);
  rt.run([&](PeContext& ctx) {
    shmem::Scope scope(ctx);
    const int other = 1 - shmem::my_pe();
    for (std::uint64_t round = 1; round <= 10; ++round) {
      if (shmem::my_pe() == static_cast<int>(round % 2)) {
        shmem::atomic_set(flag, round, other);
      } else {
        while (ctx.local_load(flag) < round) ctx.compute(200);
      }
    }
    shmem::barrier_all();
  });
}

TEST(Shmem, NestedScopeRejected) {
  Runtime rt(rcfg(1));
  rt.run([&](PeContext& ctx) {
    shmem::Scope scope(ctx);
    EXPECT_THROW(shmem::Scope inner(ctx), std::invalid_argument);
  });
}

TEST(Shmem, ScopeUnbindsOnExit) {
  Runtime rt(rcfg(1));
  rt.run([&](PeContext& ctx) {
    { shmem::Scope scope(ctx); }
    shmem::Scope again(ctx);  // rebinding after destruction is fine
    EXPECT_EQ(shmem::my_pe(), 0);
  });
}

}  // namespace
}  // namespace sws::pgas
