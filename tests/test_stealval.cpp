// The stealval packing and the steal-half block sequence — including the
// paper's §4 worked example (150 tasks → {75,37,19,9,5,2,1,1,1}).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/stealval.hpp"

namespace sws::core {
namespace {

TEST(StealVal, EncodeDecodeRoundTrip) {
  const StealVal sv{12345, 1, 150, 500};
  EXPECT_EQ(StealVal::decode(sv.encode()), sv);
}

TEST(StealVal, FieldsOccupyDocumentedBits) {
  // asteals in the top 24 bits, then 2 epoch bits, 19+19 owner bits.
  EXPECT_EQ(AStealsField::kShift, 40u);
  EXPECT_EQ(AStealsField::kWidth, 24u);
  EXPECT_EQ(EpochField::kShift, 38u);
  EXPECT_EQ(ITasksField::kShift, 19u);
  EXPECT_EQ(TailField::kShift, 0u);
  EXPECT_EQ(AStealsField::kMask | EpochField::kMask | ITasksField::kMask |
                TailField::kMask,
            ~std::uint64_t{0});
}

TEST(StealVal, PaperExampleFigure3) {
  // Figure 3: asteals=2, valid, itasks=150, tail=500.
  const StealVal sv{2, 0, 150, 500};
  const std::uint64_t w = sv.encode();
  EXPECT_EQ(AStealsField::get(w), 2u);
  EXPECT_EQ(ITasksField::get(w), 150u);
  EXPECT_EQ(TailField::get(w), 500u);
  // "the next steal would consist of 19 tasks" and starts at
  // tail + 75 + 37 = 612.
  const StealBlock blk = steal_block(150, 2);
  EXPECT_EQ(blk.size, 19u);
  EXPECT_EQ(500 + blk.offset, 612u);
}

TEST(StealVal, FetchAddOnEncodedWordOnlyBumpsAsteals) {
  const StealVal sv{0, 1, 150, 500};
  std::uint64_t w = sv.encode();
  w += AStealsField::unit();  // what a thief's AMO does
  const StealVal after = StealVal::decode(w);
  EXPECT_EQ(after.asteals, 1u);
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_EQ(after.itasks, 150u);
  EXPECT_EQ(after.tail, 500u);
}

TEST(StealVal, LockedSentinelDecodesLocked) {
  const StealVal sv = StealVal::decode(locked_sentinel());
  EXPECT_TRUE(sv.locked());
  EXPECT_EQ(sv.itasks, 0u);
  // Sentinel survives thief increments without unlocking itself.
  const StealVal bumped =
      StealVal::decode(locked_sentinel() + 37 * AStealsField::unit());
  EXPECT_TRUE(bumped.locked());
  EXPECT_EQ(bumped.itasks, 0u);
}

TEST(StealVal, EpochBelowNumEpochsIsUnlocked) {
  EXPECT_FALSE((StealVal{0, 0, 1, 0}).locked());
  EXPECT_FALSE((StealVal{0, 1, 1, 0}).locked());
  EXPECT_TRUE((StealVal{0, 2, 1, 0}).locked());
  EXPECT_TRUE((StealVal{0, kLockedEpoch, 1, 0}).locked());
}

TEST(StealSeq, PaperSequenceFor150) {
  const std::uint32_t expect[] = {75, 37, 19, 9, 5, 2, 1, 1, 1};
  ASSERT_EQ(steal_block_count(150), 9u);
  std::uint32_t off = 0;
  for (std::uint32_t i = 0; i < 9; ++i) {
    EXPECT_EQ(steal_block_size(150, i), expect[i]) << "block " << i;
    EXPECT_EQ(steal_block_offset(150, i), off) << "block " << i;
    off += expect[i];
  }
  EXPECT_EQ(off, 150u);
}

TEST(StealSeq, EdgeCases) {
  EXPECT_EQ(steal_block_count(0), 0u);
  EXPECT_EQ(steal_block(0, 0).size, 0u);
  EXPECT_EQ(steal_block_count(1), 1u);
  EXPECT_EQ(steal_block_size(1, 0), 1u);
  EXPECT_EQ(steal_block_count(2), 2u);
  EXPECT_EQ(steal_block_size(2, 0), 1u);
  EXPECT_EQ(steal_block_size(2, 1), 1u);
  EXPECT_EQ(steal_block_size(4, 0), 2u);
}

TEST(StealSeq, PastLastBlockIsEmptyWithFullOffset) {
  const std::uint32_t n = steal_block_count(150);
  const StealBlock past = steal_block(150, n);
  EXPECT_EQ(past.size, 0u);
  EXPECT_EQ(past.offset, 150u);
  EXPECT_EQ(steal_block(150, n + 100).size, 0u);
}

/// Property sweep: for any allotment, the blocks partition it exactly and
/// sizes never grow.
class StealSeqProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StealSeqProperty, BlocksPartitionTheAllotment) {
  const std::uint32_t itasks = GetParam();
  const std::uint32_t n = steal_block_count(itasks);
  std::uint32_t sum = 0;
  std::uint32_t prev = itasks + 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    const StealBlock b = steal_block(itasks, i);
    ASSERT_EQ(b.offset, sum);
    ASSERT_GE(b.size, 1u);
    ASSERT_LE(b.size, prev);
    prev = b.size;
    sum += b.size;
  }
  ASSERT_EQ(sum, itasks);
  // Block count stays within the completion-array bound.
  ASSERT_LE(n, 32u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StealSeqProperty,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u,
                                           16u, 63u, 100u, 150u, 1023u, 1024u,
                                           4097u, 65535u, 262144u,
                                           kMaxITasks));

TEST(StealSeqProperty, RandomRoundTripsThroughEncode) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const StealVal sv{
        static_cast<std::uint32_t>(rng.below(AStealsField::kMax + 1)),
        static_cast<std::uint32_t>(rng.below(4)),
        static_cast<std::uint32_t>(rng.below(ITasksField::kMax + 1)),
        static_cast<std::uint32_t>(rng.below(TailField::kMax + 1))};
    ASSERT_EQ(StealVal::decode(sv.encode()), sv);
  }
}

TEST(StealSeq, BlockCountIsLogarithmic) {
  // count(n) ≈ floor(log2(n)) + O(1): the property that lets a 19-bit
  // itasks field pair with a 32-slot completion array.
  for (std::uint32_t n : {10u, 100u, 1000u, 10000u, 100000u, 524287u}) {
    std::uint32_t log2n = 0;
    while ((1u << (log2n + 1)) <= n) ++log2n;
    EXPECT_GE(steal_block_count(n), log2n);
    EXPECT_LE(steal_block_count(n), log2n + 3);
  }
}

TEST(StealSeqProperty, FuzzBlockDecompositionIsExact) {
  // For any allotment size: every block is non-empty, offsets are strictly
  // increasing, and the blocks partition [0, itasks) exactly — the
  // property that makes the fetched asteals prior a sound claim ticket.
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto itasks =
        static_cast<std::uint32_t>(rng.below(ITasksField::kMax + 1));
    const std::uint32_t n = steal_block_count(itasks);
    std::uint64_t sum = 0;
    std::uint32_t prev_off = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const StealBlock blk = steal_block(itasks, i);
      ASSERT_GE(blk.size, 1u) << "itasks=" << itasks << " idx=" << i;
      ASSERT_EQ(blk.size, steal_block_size(itasks, i));
      ASSERT_EQ(blk.offset, steal_block_offset(itasks, i));
      if (i > 0)
        ASSERT_GT(blk.offset, prev_off) << "offsets must be strictly monotone";
      ASSERT_EQ(blk.offset, sum) << "block must start where the last ended";
      prev_off = blk.offset;
      sum += blk.size;
    }
    ASSERT_EQ(sum, itasks) << "blocks must sum to the allotment";
    ASSERT_EQ(steal_block_offset(itasks, n), itasks)
        << "offset past the last block is the full allotment";
  }
}

TEST(StealSeqProperty, FuzzBulkClaimSpansPartitionTheAllotment) {
  // Bulk claims take blocks [b0, min(b0+want, nblocks)) where b0 is the
  // fetched asteals prior and want is in [1, kMaxBulkClaim]. For any
  // allotment and any claim-size sequence: the claimed task spans are
  // contiguous, disjoint, in order, and together cover [0, itasks)
  // exactly — no task is claimed twice, none is orphaned — and a claim's
  // coalesced get length equals the sum of its per-block completion adds.
  Xoshiro256 rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto itasks =
        static_cast<std::uint32_t>(rng.below(ITasksField::kMax + 1));
    const std::uint32_t n = steal_block_count(itasks);
    std::uint32_t asteals = 0;  // the simulated packed counter
    std::uint64_t covered = 0;  // tasks claimed so far
    while (asteals < n) {
      const auto want =
          static_cast<std::uint32_t>(1 + rng.below(kMaxBulkClaim));
      const std::uint32_t b0 = asteals;  // this claim's fetched prior
      asteals += want;
      const std::uint32_t k = std::min(b0 + want, n) - b0;
      ASSERT_GE(k, 1u);
      ASSERT_LE(k, want);
      const std::uint32_t first = steal_block_offset(itasks, b0);
      const std::uint32_t end = steal_block_offset(itasks, b0 + k);
      ASSERT_EQ(first, covered)
          << "claim must start exactly where the previous one ended";
      std::uint64_t block_sum = 0;
      for (std::uint32_t b = b0; b < b0 + k; ++b)
        block_sum += steal_block_size(itasks, b);
      ASSERT_EQ(end - first, block_sum)
          << "coalesced span must equal the per-block completion sum";
      covered = end;
    }
    ASSERT_EQ(covered, itasks) << "claims must drain the whole allotment";
    // Units fetched past the last block are dead: their span is empty.
    ASSERT_EQ(steal_block_offset(itasks, n), itasks);
  }
}

TEST(StealVal, EncodeDecodeAtFieldExtremes) {
  const StealVal all_max{static_cast<std::uint32_t>(AStealsField::kMax),
                         kLockedEpoch, kMaxITasks,
                         static_cast<std::uint32_t>(TailField::kMax)};
  EXPECT_EQ(StealVal::decode(all_max.encode()), all_max);
  EXPECT_EQ(all_max.encode(), ~std::uint64_t{0});
  const StealVal all_zero{0, 0, 0, 0};
  EXPECT_EQ(all_zero.encode(), 0u);
  EXPECT_EQ(StealVal::decode(0), all_zero);
}

TEST(StealValDeath, EncodeRejectsOversizedFields) {
  // A silently truncated encode would splatter bits into the neighbouring
  // fields; SWS_ASSERT must catch each one.
  const auto enc = [](std::uint32_t a, std::uint32_t e, std::uint32_t i,
                      std::uint32_t t) { return StealVal{a, e, i, t}.encode(); };
  EXPECT_DEATH((void)enc(1u << 24, 0, 0, 0), "overflow");
  EXPECT_DEATH((void)enc(0, 4, 0, 0), "overflow");
  EXPECT_DEATH((void)enc(0, 0, kMaxITasks + 1, 0), "overflow");
  EXPECT_DEATH((void)enc(0, 0, 0, 1u << 19), "overflow");
}

}  // namespace
}  // namespace sws::core
