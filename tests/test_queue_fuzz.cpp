// Randomized conservation fuzzing for both queue protocols.
//
// Owners randomly push/pop/release/acquire/progress; thieves randomly
// steal; every task carries a unique id. The invariant: each pushed id is
// consumed exactly once (by its owner's pop or some thief's loot) — no
// loss, no duplication — across thousands of randomized operations,
// including ring wrap-around and interleaved allotment resets.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "common/rng.hpp"
#include "core/sdc_queue.hpp"
#include "core/sws_queue.hpp"

namespace sws::core {
namespace {

struct FuzzParams {
  QueueKind kind;
  int npes;
  std::uint32_t capacity;
  std::uint64_t seed;
  pgas::TimeMode mode;
  std::uint32_t bulk = 1;  ///< SWS bulk_claim_max (ignored by SDC)
};

class QueueFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(QueueFuzz, NothingLostNothingDuplicated) {
  const FuzzParams fp = GetParam();
  pgas::RuntimeConfig rcfg;
  rcfg.npes = fp.npes;
  rcfg.seed = fp.seed;
  rcfg.mode = fp.mode;
  rcfg.heap_bytes = 2 << 20;
  pgas::Runtime rt(rcfg);

  const QueueConfig qc{fp.capacity, /*slot_bytes=*/32};
  std::unique_ptr<TaskQueue> q;
  if (fp.kind == QueueKind::kSws) {
    SwsConfig scfg;
    scfg.bulk_claim_max = fp.bulk;
    q = std::make_unique<SwsQueue>(rt, qc, scfg);
  } else {
    q = std::make_unique<SdcQueue>(rt, qc);
  }

  std::mutex mu;
  std::set<std::uint64_t> consumed;  // ids seen exactly once
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> eaten{0};
  bool duplicate = false;

  auto consume = [&](std::uint64_t id) {
    std::lock_guard<std::mutex> lk(mu);
    if (!consumed.insert(id).second) duplicate = true;
    eaten.fetch_add(1, std::memory_order_relaxed);
  };

  constexpr int kSteps = 2500;
  rt.run([&](pgas::PeContext& ctx) {
    q->reset_pe(ctx);
    ctx.barrier();
    Xoshiro256 rng(fp.seed ^ 0xf00d, static_cast<std::uint64_t>(ctx.pe()));
    std::uint64_t next_id = static_cast<std::uint64_t>(ctx.pe()) << 32;
    std::vector<Task> loot;
    Task t;
    for (int step = 0; step < kSteps; ++step) {
      switch (rng.below(10)) {
        case 0:
        case 1:
        case 2: {  // push a few
          const std::uint64_t n = 1 + rng.below(6);
          for (std::uint64_t i = 0; i < n; ++i) {
            if (q->push_local(ctx, Task::of(0, next_id))) {
              ++next_id;
              pushed.fetch_add(1, std::memory_order_relaxed);
            }
          }
          break;
        }
        case 3:
        case 4: {  // pop a few
          const std::uint64_t n = 1 + rng.below(4);
          for (std::uint64_t i = 0; i < n && q->pop_local(ctx, t); ++i)
            consume(t.payload_as<std::uint64_t>());
          break;
        }
        case 5:
          (void)q->try_release(ctx);
          break;
        case 6:
          (void)q->try_acquire(ctx);
          break;
        case 7:
          q->progress(ctx);
          break;
        default: {  // steal from a random other PE
          if (ctx.npes() < 2) break;
          int victim =
              static_cast<int>(rng.below(static_cast<std::uint64_t>(ctx.npes() - 1)));
          if (victim >= ctx.pe()) ++victim;
          loot.clear();
          if (q->steal(ctx, victim, loot).outcome == StealOutcome::kSuccess)
            for (const Task& s : loot) consume(s.payload_as<std::uint64_t>());
          break;
        }
      }
    }
    // Drain: consume everything this PE still owns. Another PE may still
    // be stealing from us, so loop with progress until quiescent.
    ctx.barrier();
    ctx.quiet();
    ctx.barrier();
    for (;;) {
      q->progress(ctx);
      bool any = false;
      while (q->pop_local(ctx, t)) {
        consume(t.payload_as<std::uint64_t>());
        any = true;
      }
      if (q->try_acquire(ctx)) any = true;
      if (!any && !q->shared_available(ctx)) break;
    }
    ctx.barrier();
  });

  EXPECT_FALSE(duplicate) << "a task id was consumed twice";
  EXPECT_EQ(pushed.load(), eaten.load())
      << "pushed and consumed totals must match";
  EXPECT_EQ(consumed.size(), pushed.load());
}

std::string fuzz_name(const ::testing::TestParamInfo<FuzzParams>& info) {
  const FuzzParams& p = info.param;
  std::string s = p.kind == QueueKind::kSdc ? "SDC" : "SWS";
  s += "_p" + std::to_string(p.npes) + "_c" + std::to_string(p.capacity) +
       "_s" + std::to_string(p.seed);
  s += p.mode == pgas::TimeMode::kVirtual ? "_virt" : "_real";
  if (p.bulk > 1) s += "_b" + std::to_string(p.bulk);
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueueFuzz,
    ::testing::Values(
        FuzzParams{QueueKind::kSws, 2, 64, 1, pgas::TimeMode::kVirtual},
        FuzzParams{QueueKind::kSws, 4, 128, 2, pgas::TimeMode::kVirtual},
        FuzzParams{QueueKind::kSws, 4, 4096, 3, pgas::TimeMode::kVirtual},
        FuzzParams{QueueKind::kSws, 8, 256, 4, pgas::TimeMode::kVirtual},
        FuzzParams{QueueKind::kSdc, 2, 64, 1, pgas::TimeMode::kVirtual},
        FuzzParams{QueueKind::kSdc, 4, 128, 2, pgas::TimeMode::kVirtual},
        FuzzParams{QueueKind::kSdc, 4, 4096, 3, pgas::TimeMode::kVirtual},
        FuzzParams{QueueKind::kSdc, 8, 256, 4, pgas::TimeMode::kVirtual},
        FuzzParams{QueueKind::kSws, 4, 128, 5, pgas::TimeMode::kReal},
        FuzzParams{QueueKind::kSdc, 4, 128, 5, pgas::TimeMode::kReal},
        // SWS bulk claims: multi-block fetch-adds interleaved with the
        // same random release/acquire/epoch churn must stay conservative.
        FuzzParams{QueueKind::kSws, 2, 64, 6, pgas::TimeMode::kVirtual, 4},
        FuzzParams{QueueKind::kSws, 4, 128, 7, pgas::TimeMode::kVirtual, 4},
        FuzzParams{QueueKind::kSws, 4, 4096, 8, pgas::TimeMode::kVirtual, 8},
        FuzzParams{QueueKind::kSws, 8, 256, 9, pgas::TimeMode::kVirtual, 32},
        FuzzParams{QueueKind::kSws, 4, 128, 10, pgas::TimeMode::kReal, 4}),
    fuzz_name);

}  // namespace
}  // namespace sws::core
