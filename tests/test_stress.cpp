// Stress and failure-injection: hostile fabric parameters (zero latency,
// huge latency, long-delayed completion notifications), replay
// determinism down to the fabric counters, and a large-PE smoke run.
#include <gtest/gtest.h>

#include "sws.hpp"

namespace sws {
namespace {

core::PoolConfig pcfg(core::QueueKind kind) {
  core::PoolConfig c;
  c.kind = kind;
  c.queue.capacity = 8192;
  c.queue.slot_bytes = 48;
  return c;
}

workloads::UtsParams small_tree() {
  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = 9;
  p.node_compute_ns = 150;
  return p;
}

std::uint64_t run_uts(const pgas::RuntimeConfig& rcfg,
                      const core::PoolConfig& pc,
                      const workloads::UtsParams& p) {
  pgas::Runtime rt(rcfg);
  core::TaskRegistry reg;
  workloads::UtsBenchmark uts(reg, p);
  core::TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });
  return pool.report().total.tasks_executed;
}

class HostileFabric : public ::testing::TestWithParam<core::QueueKind> {};

TEST_P(HostileFabric, ZeroLatencyFabric) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 4;
  rcfg.heap_bytes = 4 << 20;
  auto& link = rcfg.net.link(1);
  link.amo_latency = 0;
  link.get_latency = 0;
  link.put_latency = 0;
  link.nbi_delay = 0;
  link.target_occupancy = 0;
  rcfg.net.local_overhead = 0;
  rcfg.net.nbi_issue_overhead = 0;
  const auto truth = workloads::uts_sequential_count(small_tree());
  EXPECT_EQ(run_uts(rcfg, pcfg(GetParam()), small_tree()), truth.nodes);
}

TEST_P(HostileFabric, ExtremeLatencyFabric) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 4;
  rcfg.heap_bytes = 4 << 20;
  rcfg.net = rcfg.net.scaled(50.0);  // ~75 µs AMOs
  const auto truth = workloads::uts_sequential_count(small_tree());
  EXPECT_EQ(run_uts(rcfg, pcfg(GetParam()), small_tree()), truth.nodes);
}

TEST_P(HostileFabric, VeryLateCompletionNotifications) {
  // Completion notifications delayed ~0.5 ms — hundreds of steals can be
  // claimed-but-unfinished at once. Exercises epoch waiting, reclaim
  // prefixes, and the owner's ability to keep operating meanwhile.
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 8;
  rcfg.heap_bytes = 4 << 20;
  rcfg.net.link(1).nbi_delay = 500'000;
  const auto truth = workloads::uts_sequential_count(small_tree());
  EXPECT_EQ(run_uts(rcfg, pcfg(GetParam()), small_tree()), truth.nodes);
}

TEST_P(HostileFabric, LateCompletionsWithEpochsOff) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 8;
  rcfg.heap_bytes = 4 << 20;
  rcfg.net.link(1).nbi_delay = 200'000;
  core::PoolConfig pc = pcfg(GetParam());
  pc.sws.epochs = false;  // ignored by SDC
  const auto truth = workloads::uts_sequential_count(small_tree());
  EXPECT_EQ(run_uts(rcfg, pc, small_tree()), truth.nodes);
}

TEST_P(HostileFabric, TwoLevelFabricWithTieredVictims) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 16;
  rcfg.heap_bytes = 4 << 20;
  rcfg.net = net::NetworkParams::two_level(4);
  core::PoolConfig pc = pcfg(GetParam());
  pc.victim.policy = core::VictimPolicy::kTiered;
  const auto truth = workloads::uts_sequential_count(small_tree());
  EXPECT_EQ(run_uts(rcfg, pc, small_tree()), truth.nodes);
}

TEST_P(HostileFabric, ThreeTierFabricWithDistanceWeightedVictims) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 16;
  rcfg.heap_bytes = 4 << 20;
  rcfg.net = net::NetworkParams::tiered(net::TopologySpec::parse("2x2x4"));
  core::PoolConfig pc = pcfg(GetParam());
  pc.victim.policy = core::VictimPolicy::kDistanceWeighted;
  const auto truth = workloads::uts_sequential_count(small_tree());
  EXPECT_EQ(run_uts(rcfg, pc, small_tree()), truth.nodes);
}

INSTANTIATE_TEST_SUITE_P(BothQueues, HostileFabric,
                         ::testing::Values(core::QueueKind::kSdc,
                                           core::QueueKind::kSws),
                         [](const auto& info) {
                           return info.param == core::QueueKind::kSdc ? "SDC"
                                                                      : "SWS";
                         });

TEST(Replay, IdenticalSeedsGiveIdenticalFabricTraffic) {
  // Determinism stronger than equal task counts: the *entire* fabric
  // op census must match between two runs with the same seed.
  net::FabricStats census[2];
  for (int trial = 0; trial < 2; ++trial) {
    pgas::RuntimeConfig rcfg;
    rcfg.npes = 8;
    rcfg.seed = 1234;
    rcfg.heap_bytes = 4 << 20;
    pgas::Runtime rt(rcfg);
    core::TaskRegistry reg;
    workloads::UtsBenchmark uts(reg, small_tree());
    core::TaskPool pool(rt, reg, pcfg(core::QueueKind::kSws));
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });
    census[trial] = rt.fabric().total_stats();
  }
  for (std::size_t i = 0; i < net::kNumOpKinds; ++i)
    EXPECT_EQ(census[0].ops[i], census[1].ops[i])
        << net::op_kind_name(static_cast<net::OpKind>(i));
  EXPECT_EQ(census[0].bytes_put, census[1].bytes_put);
  EXPECT_EQ(census[0].bytes_got, census[1].bytes_got);
  EXPECT_EQ(census[0].blocking_ns, census[1].blocking_ns);
}

TEST(Scale, OneHundredTwentyEightPes) {
  // Sweep headroom: the full PE count the benches may use, small tree.
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 128;
  rcfg.heap_bytes = 1 << 20;
  core::PoolConfig pc;
  pc.queue.capacity = 2048;
  pc.queue.slot_bytes = 48;
  workloads::UtsParams p = small_tree();
  p.gen_mx = 11;
  const auto truth = workloads::uts_sequential_count(p);
  for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
    pc.kind = kind;
    EXPECT_EQ(run_uts(rcfg, pc, p), truth.nodes)
        << (kind == core::QueueKind::kSdc ? "SDC" : "SWS");
  }
}

TEST(Scale, ManySmallRunsDontLeakState) {
  // 10 back-to-back runs on one Runtime+pool: heap allocations, epochs,
  // inboxes, collectives and detectors must all reset cleanly.
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 8;
  rcfg.heap_bytes = 4 << 20;
  pgas::Runtime rt(rcfg);
  core::TaskRegistry reg;
  workloads::UtsBenchmark uts(reg, small_tree());
  core::TaskPool pool(rt, reg, pcfg(core::QueueKind::kSws));
  const auto truth = workloads::uts_sequential_count(small_tree());
  for (int run = 0; run < 10; ++run) {
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });
    ASSERT_EQ(pool.report().total.tasks_executed, truth.nodes)
        << "run " << run;
  }
}

}  // namespace
}  // namespace sws
