// SWS-specific behaviour: the single-AMO claim, completion epochs, the
// locked sentinel, steal damping, and communication counts (the paper's
// headline).
#include <gtest/gtest.h>

#include <set>

#include "core/sws_queue.hpp"

namespace sws::core {
namespace {

pgas::RuntimeConfig rcfg(int npes) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 1 << 20;
  return c;
}

Task mk(std::uint32_t id) { return Task::of(0, id); }
std::uint32_t id_of(const Task& t) { return t.payload_as<std::uint32_t>(); }

QueueConfig qcfg(std::uint32_t capacity = 1024) {
  return QueueConfig{capacity, /*slot_bytes=*/32};
}

net::FabricStats delta(const net::FabricStats& after,
                       const net::FabricStats& before) {
  net::FabricStats d = after;
  for (std::size_t i = 0; i < net::kNumOpKinds; ++i) d.ops[i] -= before.ops[i];
  d.remote_ops -= before.remote_ops;
  d.local_ops -= before.local_ops;
  return d;
}

TEST(SwsQueue, SuccessfulStealIsExactlyThreeComms) {
  // Fig 2: fetch-add + task get + non-blocking completion — and only the
  // first two block.
  pgas::Runtime rt(rcfg(2));
  SwsQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 100; ++i) (void)q.push_local(ctx, mk(i));
      (void)q.try_release(ctx);
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      const net::FabricStats before = ctx.fabric().stats(1);
      std::vector<Task> loot;
      ASSERT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kSuccess);
      const net::FabricStats d = delta(ctx.fabric().stats(1), before);
      EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kAmoFetchAdd)], 1u);
      EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kGet)], 1u);
      EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kNbiAmoAdd)], 1u);
      EXPECT_EQ(d.remote_ops, 3u) << "steal must be exactly 3 communications";
      EXPECT_EQ(d.blocking_ops(), 2u) << "only 2 of them blocking";
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, FailedStealIsOneComm) {
  // Work discovery on an empty queue costs a single 64-bit AMO — the
  // reason Fig 8f's search time is flat.
  pgas::Runtime rt(rcfg(2));
  SwsQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      const net::FabricStats before = ctx.fabric().stats(1);
      std::vector<Task> loot;
      ASSERT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kEmpty);
      const net::FabricStats d = delta(ctx.fabric().stats(1), before);
      EXPECT_EQ(d.remote_ops, 1u);
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, OwnerStealvalReflectsReleases) {
  pgas::Runtime rt(rcfg(1));
  SwsQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    EXPECT_EQ(q.owner_stealval(ctx).itasks, 0u);
    for (std::uint32_t i = 0; i < 300; ++i) (void)q.push_local(ctx, mk(i));
    ASSERT_TRUE(q.try_release(ctx));
    const StealVal sv = q.owner_stealval(ctx);
    EXPECT_EQ(sv.itasks, 150u);
    EXPECT_EQ(sv.asteals, 0u);
    EXPECT_FALSE(sv.locked());
  });
}

TEST(SwsQueue, EpochRotatesOnEachAllotmentReset) {
  pgas::Runtime rt(rcfg(1));
  SwsQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    std::set<std::uint32_t> epochs;
    Task t;
    for (int round = 0; round < 4; ++round) {
      for (std::uint32_t i = 0; i < 10; ++i) (void)q.push_local(ctx, mk(i));
      ASSERT_TRUE(q.try_release(ctx));
      epochs.insert(q.owner_stealval(ctx).epoch);
      // Drain: acquire halves the shared remainder each time, so iterate
      // until the allotment is empty.
      while (q.shared_available(ctx)) {
        while (q.pop_local(ctx, t)) {}
        ASSERT_TRUE(q.try_acquire(ctx));
        epochs.insert(q.owner_stealval(ctx).epoch);
      }
      while (q.pop_local(ctx, t)) {}
    }
    EXPECT_EQ(epochs.size(), kNumEpochs) << "both live epochs must be used";
  });
}

TEST(SwsQueue, EpochsOffKeepsSingleEpoch) {
  pgas::Runtime rt(rcfg(1));
  SwsConfig c;
  c.epochs = false;
  SwsQueue q(rt, qcfg(), c);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    Task t;
    for (int round = 0; round < 3; ++round) {
      for (std::uint32_t i = 0; i < 10; ++i) (void)q.push_local(ctx, mk(i));
      ASSERT_TRUE(q.try_release(ctx));
      EXPECT_EQ(q.owner_stealval(ctx).epoch, 0u);
      while (q.shared_available(ctx)) {
        while (q.pop_local(ctx, t)) {}
        ASSERT_TRUE(q.try_acquire(ctx));
        EXPECT_EQ(q.owner_stealval(ctx).epoch, 0u);
      }
      while (q.pop_local(ctx, t)) {}
    }
  });
}

TEST(SwsQueue, AcquireWithInFlightStealWaitsOnlyWithEpochsOff) {
  // With epochs on, an acquire while a steal's completion is still in
  // flight must not lose the claim: the claimed block's region is only
  // reclaimed after its notification lands.
  pgas::Runtime rt(rcfg(2));
  SwsQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 40; ++i) (void)q.push_local(ctx, mk(i));
      ASSERT_TRUE(q.try_release(ctx));  // 20 shared
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      ASSERT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kSuccess);
      // Do NOT quiet: the completion stays pending while the owner acts.
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      Task t;
      while (q.pop_local(ctx, t)) {}
      // 10 unclaimed shared remain; acquire must succeed despite the
      // pending completion of the stolen block.
      ASSERT_TRUE(q.try_acquire(ctx));
      std::uint32_t n = 0;
      while (q.pop_local(ctx, t)) ++n;
      EXPECT_EQ(n, 5u);  // acquired half of the 10 unclaimed
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, ThiefHittingLockedQueueRetries) {
  // Park the locked sentinel in the stealval (as retire_allotment does
  // mid-reset) and verify a thief backs off with kRetry without claiming.
  pgas::Runtime rt(rcfg(2));
  SwsQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0)
      ctx.fabric().amo_set(0, 0, q.stealval_ptr().off, locked_sentinel());
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      const StealResult r = q.steal(ctx, 0, loot);
      EXPECT_EQ(r.outcome, StealOutcome::kRetry);
      EXPECT_TRUE(loot.empty());
      EXPECT_EQ(q.op_stats(1).steals_retry, 1u);
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      // Owner re-publishes; the stray sentinel increments are discarded.
      ctx.fabric().amo_set(0, 0, q.stealval_ptr().off,
                           StealVal{0, 0, 0, 0}.encode());
      EXPECT_EQ(q.owner_stealval(ctx).asteals, 0u);
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, DampingMovesExhaustedTargetsToProbeMode) {
  pgas::Runtime rt(rcfg(2));
  SwsConfig c;
  c.damping = true;
  c.damping_slack = 2;
  SwsQueue q(rt, qcfg(), c);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      // Hammer an empty target: after slack failures it flips to
      // empty-mode, where attempts become read-only probes.
      for (int i = 0; i < 10; ++i)
        EXPECT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kEmpty);
      EXPECT_GT(q.op_stats(1).damping_probes, 0u);
      // asteals stopped growing once probing started.
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, DampingProbesStopInflatingAsteals) {
  pgas::Runtime rt(rcfg(2));
  SwsConfig c;
  c.damping = true;
  c.damping_slack = 2;
  SwsQueue q(rt, qcfg(), c);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      for (int i = 0; i < 50; ++i) (void)q.steal(ctx, 0, loot);
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      // Without damping asteals would be 50; with it, growth stops at the
      // slack threshold.
      EXPECT_LE(q.owner_stealval(ctx).asteals, 4u);
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, DampedTargetRecoversWhenWorkAppears) {
  pgas::Runtime rt(rcfg(2));
  SwsConfig c;
  c.damping = true;
  c.damping_slack = 1;
  SwsQueue q(rt, qcfg(), c);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      for (int i = 0; i < 6; ++i) (void)q.steal(ctx, 0, loot);  // → empty-mode
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 20; ++i) (void)q.push_local(ctx, mk(i));
      ASSERT_TRUE(q.try_release(ctx));
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      const StealResult r = q.steal(ctx, 0, loot);
      EXPECT_EQ(r.outcome, StealOutcome::kSuccess)
          << "probe must detect new work and claim it";
      EXPECT_EQ(r.ntasks, 5u);
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, DampingOffAstealsGrowsUnbounded) {
  pgas::Runtime rt(rcfg(2));
  SwsConfig c;
  c.damping = false;
  SwsQueue q(rt, qcfg(), c);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      for (int i = 0; i < 30; ++i) (void)q.steal(ctx, 0, loot);
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      EXPECT_EQ(q.owner_stealval(ctx).asteals, 30u);
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, CapacityBeyondITasksFieldRejected) {
  pgas::Runtime rt(rcfg(1));
  EXPECT_THROW(SwsQueue(rt, QueueConfig{kMaxITasks + 1, 32}),
               std::invalid_argument);
}

TEST(SwsQueue, WrappedStealPreservesContent) {
  // Cycle work through a small ring until a released allotment straddles
  // the wrap point, then verify the wrapped steal copies the right tasks.
  pgas::Runtime rt(rcfg(2));
  SwsQueue q(rt, qcfg(/*capacity=*/32));
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    // One cycle: owner exposes half, the thief drains the allotment fully,
    // the owner consumes its local half and reclaims the ring space.
    auto cycle = [&](std::uint32_t n, bool check_wrap) {
      if (ctx.pe() == 0) {
        for (std::uint32_t i = 0; i < n; ++i)
          ASSERT_TRUE(q.push_local(ctx, mk(i)));
        ASSERT_TRUE(q.try_release(ctx));
      }
      ctx.barrier();
      if (ctx.pe() == 1) {
        std::vector<Task> loot;
        bool first = true;
        for (;;) {
          loot.clear();
          const auto gets_before =
              ctx.fabric().stats(1).ops[static_cast<int>(net::OpKind::kGet)];
          const StealResult r = q.steal(ctx, 0, loot);
          if (r.outcome != StealOutcome::kSuccess) break;
          if (first && check_wrap) {
            EXPECT_EQ(ctx.fabric().stats(1).ops[static_cast<int>(
                          net::OpKind::kGet)] -
                          gets_before,
                      2u)
                << "first block should straddle the ring boundary";
          }
          if (first) {
            // Stolen block is the oldest prefix of the exposed half.
            for (std::uint32_t i = 0; i < r.ntasks; ++i)
              EXPECT_EQ(id_of(loot[i]), i);
          }
          first = false;
        }
        ctx.quiet();
      }
      ctx.barrier();
      if (ctx.pe() == 0) {
        Task t;
        while (q.pop_local(ctx, t)) {}
        q.progress(ctx);
      }
      ctx.barrier();
    };
    // Ring walk: 32 + 24 advance head to absolute 52; the third exposure
    // [28, 40) straddles slot 32 → wrapped first block.
    cycle(32, false);
    cycle(24, false);
    cycle(24, true);
  });
}

TEST(SwsQueue, AStealsWraparoundCannotDoubleClaim) {
  // Regression for the 24-bit asteals wrap: a probe storm that carries the
  // counter past 2^24 makes a late thief's fetched prior alias block 0 of
  // an allotment whose blocks were all claimed long ago — the same tasks
  // get copied twice. The guards (thief soft cap + owner renewal) must
  // keep every task unique and the owner must renew at least once.
  pgas::Runtime rt(rcfg(2));
  SwsQueue q(rt, qcfg(256));
  std::vector<Task> loot;              // thief-side (PE 1 only)
  std::vector<std::uint32_t> drained;  // owner-side (PE 0 only)
  constexpr std::uint32_t kTasks = 150;
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < kTasks; ++i)
        ASSERT_TRUE(q.push_local(ctx, mk(i)));
      ASSERT_TRUE(q.try_release(ctx));  // exposes 75 tasks = 8 blocks
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      // Claim the whole allotment legitimately: 8 blocks, asteals ends at 8.
      for (int i = 0; i < 8; ++i)
        EXPECT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kSuccess);
      // Simulate the probe storm: raw-inject failed-steal increments until
      // the counter sits 4 below the wrap point.
      ctx.fabric().amo_fetch_add(
          1, 0, q.stealval_ptr().off,
          AStealsField::unit() * (((1u << 24) - 4) - 8));
      // Unguarded, attempt 5 of this loop wraps the counter to 0 and the
      // following attempts re-claim blocks 0..7. Guarded, attempt 1 sees
      // the saturated prior, refuses, and flips to probe-first mode.
      for (int i = 0; i < 16; ++i) {
        const StealResult r = q.steal(ctx, 0, loot);
        EXPECT_NE(r.outcome, StealOutcome::kSuccess)
            << "steal past a saturated counter claimed a stale block";
      }
      ctx.quiet();
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      // The saturated counter is the owner's renewal trigger.
      q.progress(ctx);
      EXPECT_GE(q.op_stats(0).renews, 1u)
          << "owner never renewed the saturated allotment";
      Task t;
      for (int guard = 0; guard < 64; ++guard) {
        q.progress(ctx);
        while (q.pop_local(ctx, t)) drained.push_back(id_of(t));
        if (!q.shared_available(ctx)) break;
        (void)q.try_acquire(ctx);
      }
    }
    ctx.barrier();
  });
  // Every id surfaced exactly once, somewhere.
  std::set<std::uint32_t> seen;
  std::size_t total = drained.size();
  for (std::uint32_t id : drained) EXPECT_TRUE(seen.insert(id).second) << id;
  for (const Task& t : loot) {
    ++total;
    EXPECT_TRUE(seen.insert(id_of(t)).second)
        << "task " << id_of(t) << " stolen twice after counter wrap";
  }
  EXPECT_EQ(total, kTasks);
  EXPECT_EQ(seen.size(), kTasks);
}

TEST(SwsQueue, BulkStealClaimsContiguousBlocksInOneComm) {
  // Bulk mode: one fetch-add claims up to `claim_size` contiguous
  // steal-half blocks, copied with a single coalesced get plus one cheap
  // completion add per block. The thief's claim size is AIMD: it starts at
  // 1 and doubles on every success, so against a 75-task allotment
  // (blocks {37,19,9,5,2,1,1,1}) the steal sequence is 1, 2, 4, then 1
  // leftover block — and the loot must be the allotment in order.
  pgas::Runtime rt(rcfg(2));
  SwsConfig scfg;
  scfg.bulk_claim_max = 4;
  SwsQueue q(rt, qcfg(), scfg);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 150; ++i) ASSERT_TRUE(q.push_local(ctx, mk(i)));
      ASSERT_TRUE(q.try_release(ctx));  // exposes 75 tasks = 8 blocks
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      struct Expect {
        std::uint32_t blocks, ntasks, gets;
      };
      // want grows 1 -> 2 -> 4 -> 4 (capped); the last claim finds only
      // block 7 left. No claim wraps the ring, so each is a single get.
      const Expect steps[] = {{1, 37, 1}, {2, 28, 1}, {4, 9, 1}, {1, 1, 1}};
      for (const Expect& e : steps) {
        const net::FabricStats before = ctx.fabric().stats(1);
        const StealResult r = q.steal(ctx, 0, loot);
        ASSERT_EQ(r.outcome, StealOutcome::kSuccess);
        EXPECT_EQ(r.blocks, e.blocks);
        EXPECT_EQ(r.ntasks, e.ntasks);
        const net::FabricStats d = delta(ctx.fabric().stats(1), before);
        EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kAmoFetchAdd)], 1u)
            << "a bulk claim is still one discover+claim AMO";
        EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kGet)], e.gets)
            << "contiguous blocks must coalesce into one get";
        EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kNbiAmoAdd)], e.blocks)
            << "one completion add per claimed block";
        EXPECT_EQ(d.blocking_ops(), 1u + e.gets)
            << "completion adds must stay non-blocking";
      }
      EXPECT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kEmpty);
      // The four claims drained the allotment contiguously, in order.
      ASSERT_EQ(loot.size(), 75u);
      for (std::uint32_t i = 0; i < 75; ++i) EXPECT_EQ(id_of(loot[i]), i);
      EXPECT_EQ(q.op_stats(1).bulk_claims, 2u);     // the 2- and 4-block claims
      EXPECT_EQ(q.op_stats(1).blocks_claimed, 8u);  // 1 + 2 + 4 + 1
      ctx.quiet();
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, BulkClaimEndingPastSoftCapRefuses) {
  // Regression (bulk counterpart of AStealsWraparoundCannotDoubleClaim):
  // the refuse threshold must account for the claim *size*, not just the
  // fetched prior. A 4-block claim whose prior sits 2 below the soft cap
  // would end 2 past it — checking `prior >= cap` alone lets it through
  // to the claim path, eroding the wraparound headroom bound (each thief
  // may overshoot by at most one claim). Pre-fix this returned kEmpty via
  // the exhausted-allotment path; the fix refuses with kRetry and flips
  // the thief to read-only probes.
  pgas::Runtime rt(rcfg(2));
  SwsConfig scfg;
  scfg.bulk_claim_max = 4;
  SwsQueue q(rt, qcfg(256), scfg);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 150; ++i) ASSERT_TRUE(q.push_local(ctx, mk(i)));
      ASSERT_TRUE(q.try_release(ctx));  // exposes 75 tasks = 8 blocks
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      // Two successes grow the adaptive claim size to 4 (asteals: 0 -> 3).
      ASSERT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kSuccess);
      ASSERT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kSuccess);
      // Raw-inject failed-steal increments until the counter sits 2 below
      // the soft cap — within one 4-unit claim of crossing it.
      ctx.fabric().amo_fetch_add(1, 0, q.stealval_ptr().off,
                                 AStealsField::unit() * (kAStealsSoftCap - 2 - 3));
      const std::uint64_t retries_before = q.op_stats(1).steals_retry;
      const net::FabricStats before = ctx.fabric().stats(1);
      const StealResult r = q.steal(ctx, 0, loot);
      EXPECT_EQ(r.outcome, StealOutcome::kRetry)
          << "claim ending past the soft cap must refuse, not claim";
      EXPECT_EQ(r.ntasks, 0u);
      EXPECT_EQ(q.op_stats(1).steals_retry, retries_before + 1);
      const net::FabricStats d = delta(ctx.fabric().stats(1), before);
      EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kGet)], 0u)
          << "a refused claim must not copy tasks";
      // The refused fetch-add is the thief's one allowed overshoot; the
      // counter must sit within kMaxBulkClaim of the cap, far from wrap.
      const StealVal after = StealVal::decode(
          ctx.fabric().amo_fetch(1, 0, q.stealval_ptr().off));
      EXPECT_LE(after.asteals, kAStealsSoftCap + kMaxBulkClaim);
      // Follow-up attempts are read-only probes: they stop feeding the
      // counter entirely while the owner has not renewed.
      const std::uint64_t probes_before = q.op_stats(1).damping_probes;
      EXPECT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kEmpty);
      EXPECT_EQ(q.op_stats(1).damping_probes, probes_before + 1);
      const StealVal after2 = StealVal::decode(
          ctx.fabric().amo_fetch(1, 0, q.stealval_ptr().off));
      EXPECT_EQ(after2.asteals, after.asteals);
      ctx.quiet();
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, RejectsCapacityBeyondStealvalFields) {
  // A ring deeper than the 19-bit itasks/tail fields could publish an
  // allotment the stealval cannot describe; construction must refuse it
  // up front rather than truncate at release time.
  pgas::Runtime rt(rcfg(2));
  EXPECT_THROW(SwsQueue(rt, qcfg(kMaxITasks + 1)), std::invalid_argument);
  SwsQueue ok(rt, qcfg(1024));  // sane capacity still constructs
}

TEST(SwsQueue, RejectsBulkClaimBeyondCompletionDepth) {
  // A claim wider than the completion array (kMaxBulkClaim slots per
  // epoch) could never notify all its blocks; 0 would make every steal a
  // no-op fetch-add. Both are configuration bugs, refused up front.
  pgas::Runtime rt(rcfg(2));
  SwsConfig bad;
  bad.bulk_claim_max = kMaxBulkClaim + 1;
  EXPECT_THROW(SwsQueue(rt, qcfg(), bad), std::invalid_argument);
  bad.bulk_claim_max = 0;
  EXPECT_THROW(SwsQueue(rt, qcfg(), bad), std::invalid_argument);
}

TEST(SwsQueue, StealPressureEnlargesNextRelease) {
  // Owner half of bulk mode: progress() tracks the asteals delta against
  // the live allotment; once it crosses the pressure threshold, the next
  // release exposes 3/4 of the local portion instead of half, feeding a
  // hot allotment to the thieves instead of drip-releasing.
  pgas::Runtime rt(rcfg(2));
  SwsConfig scfg;
  scfg.bulk_claim_max = 4;
  SwsQueue q(rt, qcfg(), scfg);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 160; ++i)
        ASSERT_TRUE(q.push_local(ctx, mk(i)));
      ASSERT_TRUE(q.try_release(ctx));
      EXPECT_EQ(q.owner_stealval(ctx).itasks, 80u);  // ordinary half
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      // Drain the allotment; the AIMD claim sizes (1, 2, 4, 4) plus one
      // empty probe advance asteals well past the pressure threshold.
      std::vector<Task> loot;
      while (q.steal(ctx, 0, loot).outcome == StealOutcome::kSuccess) {}
      EXPECT_EQ(loot.size(), 80u);
      ctx.quiet();
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      for (int i = 0; i < 64 && q.shared_available(ctx); ++i) q.progress(ctx);
      q.progress(ctx);  // samples the steal pressure off the stealval
      ASSERT_TRUE(q.try_release(ctx));
      EXPECT_EQ(q.owner_stealval(ctx).itasks, 60u)
          << "a pressured release must expose 3/4 of the 80 local tasks";
      EXPECT_EQ(q.op_stats(0).pressure_releases, 1u);
    }
    ctx.barrier();
  });
}

TEST(SwsQueue, AuditStaysGreenThroughProtocol) {
  // audit() is the Explorer's invariant hook; it must hold between any two
  // owner-side operations of an ordinary release/steal/acquire exchange.
  pgas::Runtime rt(rcfg(2));
  SwsQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    EXPECT_EQ(q.audit(ctx), "");
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 40; ++i) (void)q.push_local(ctx, mk(i));
      EXPECT_EQ(q.audit(ctx), "");
      ASSERT_TRUE(q.try_release(ctx));
      EXPECT_EQ(q.audit(ctx), "");
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      ASSERT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kSuccess);
      ctx.quiet();
    }
    ctx.barrier();
    if (ctx.pe() == 0) {
      q.progress(ctx);
      EXPECT_EQ(q.audit(ctx), "");
      (void)q.try_acquire(ctx);
      EXPECT_EQ(q.audit(ctx), "");
      Task t;
      while (q.pop_local(ctx, t)) {}
      q.progress(ctx);
      EXPECT_EQ(q.audit(ctx), "");
    }
    ctx.barrier();
  });
}

}  // namespace
}  // namespace sws::core
