// Termination detectors: safety (never fire early) and liveness (always
// fire once quiescent), plus cross-detector agreement.
#include <gtest/gtest.h>

#include "core/termination.hpp"

namespace sws::core {
namespace {

pgas::RuntimeConfig rcfg(int npes) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 1 << 20;
  return c;
}

class TerminationBoth : public ::testing::TestWithParam<TerminationKind> {};

TEST_P(TerminationBoth, EmptySystemTerminatesImmediately) {
  pgas::Runtime rt(rcfg(4));
  auto det = make_detector(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    det->reset_pe(ctx);
    ctx.barrier();
    // Nothing was ever created: detection must fire within bounded polls.
    bool done = false;
    for (int i = 0; i < 200 && !done; ++i) {
      done = det->check(ctx);
      if (!done) ctx.compute(500);
    }
    EXPECT_TRUE(done);
  });
}

TEST_P(TerminationBoth, OutstandingWorkBlocksTermination) {
  pgas::Runtime rt(rcfg(4));
  auto det = make_detector(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    det->reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 0) {
      det->count_created(ctx, 3);
      det->task_boundary(ctx);  // flush the positive delta
    }
    ctx.barrier();
    for (int i = 0; i < 20; ++i) {
      EXPECT_FALSE(det->check(ctx)) << "tasks outstanding on PE 0";
      ctx.compute(500);
    }
    ctx.barrier();
    // Complete the work; everyone must now detect termination.
    if (ctx.pe() == 0) {
      det->count_completed(ctx, 3);
      det->task_boundary(ctx);
    }
    ctx.barrier();
    bool done = false;
    for (int i = 0; i < 500 && !done; ++i) {
      done = det->check(ctx);
      if (!done) ctx.compute(500);
    }
    EXPECT_TRUE(done);
  });
}

TEST_P(TerminationBoth, CrossPeCreationAndCompletionBalances) {
  // PE 0 "creates" tasks that PE 1..3 "execute" (the steal pattern).
  pgas::Runtime rt(rcfg(4));
  auto det = make_detector(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    det->reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 0) {
      det->count_created(ctx, 9);
      det->task_boundary(ctx);
    }
    ctx.barrier();
    if (ctx.pe() != 0) {
      det->count_completed(ctx, 3);
      det->task_boundary(ctx);
    }
    ctx.barrier();
    bool done = false;
    for (int i = 0; i < 500 && !done; ++i) {
      done = det->check(ctx);
      if (!done) ctx.compute(500);
    }
    EXPECT_TRUE(done);
  });
}

TEST_P(TerminationBoth, WorksOnSinglePe) {
  pgas::Runtime rt(rcfg(1));
  auto det = make_detector(rt, GetParam());
  rt.run([&](pgas::PeContext& ctx) {
    det->reset_pe(ctx);
    det->count_created(ctx, 2);
    det->task_boundary(ctx);
    EXPECT_FALSE(det->check(ctx));
    det->count_completed(ctx, 2);
    bool done = false;
    for (int i = 0; i < 50 && !done; ++i) done = det->check(ctx);
    EXPECT_TRUE(done);
  });
}

TEST_P(TerminationBoth, ResetsCleanlyBetweenRuns) {
  pgas::Runtime rt(rcfg(2));
  auto det = make_detector(rt, GetParam());
  for (int run = 0; run < 3; ++run) {
    rt.run([&](pgas::PeContext& ctx) {
      det->reset_pe(ctx);
      ctx.barrier();
      if (ctx.pe() == 0) {
        det->count_created(ctx, 1);
        det->task_boundary(ctx);
      }
      ctx.barrier();
      EXPECT_FALSE(det->check(ctx));
      ctx.barrier();
      if (ctx.pe() == 0) det->count_completed(ctx, 1);
      ctx.barrier();
      bool done = false;
      for (int i = 0; i < 500 && !done; ++i) {
        done = det->check(ctx);
        if (!done) ctx.compute(500);
      }
      EXPECT_TRUE(done);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Detectors, TerminationBoth,
                         ::testing::Values(TerminationKind::kCounter,
                                           TerminationKind::kToken),
                         [](const auto& info) {
                           return info.param == TerminationKind::kCounter
                                      ? "Counter"
                                      : "Token";
                         });

TEST(CounterTermination, NegativeDeltasBatchUntilCheck) {
  // Completions may sit locally (the counter only over-estimates), but a
  // check() must flush them.
  pgas::Runtime rt(rcfg(2));
  CounterTermination det(rt);
  rt.run([&](pgas::PeContext& ctx) {
    det.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 0) {
      det.count_created(ctx, 5);
      det.task_boundary(ctx);
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      det.count_completed(ctx, 5);
      // No boundary flush needed — the delta is negative.
      EXPECT_TRUE(det.check(ctx));
    }
    ctx.barrier();
  });
}

TEST(CounterTermination, PositiveDeltaFlushesAtBoundary) {
  pgas::Runtime rt(rcfg(2));
  CounterTermination det(rt);
  rt.run([&](pgas::PeContext& ctx) {
    det.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 0) {
      det.count_created(ctx, 2);
      det.count_completed(ctx, 1);
      det.task_boundary(ctx);  // net +1 must flush here
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      EXPECT_FALSE(det.check(ctx))
          << "PE 1 must see the outstanding task immediately after PE 0's "
             "boundary";
    }
    ctx.barrier();
  });
}

}  // namespace
}  // namespace sws::core
