#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>

#include "core/victim.hpp"
#include "net/topology.hpp"

namespace sws::core {
namespace {

using net::Topology;
using net::TopologySpec;

std::unique_ptr<VictimSelector> make(VictimPolicy policy, const Topology& topo,
                                     int self, std::uint64_t seed,
                                     VictimConfig cfg = {}) {
  cfg.policy = policy;
  return make_victim_selector(cfg, topo, self, seed);
}

TEST(Victim, RandomNeverPicksSelf) {
  const Topology topo(5);
  for (int self = 0; self < 5; ++self) {
    auto v = make(VictimPolicy::kRandom, topo, self, 1);
    for (int i = 0; i < 2000; ++i) {
      const int pick = v->next();
      ASSERT_NE(pick, self);
      ASSERT_GE(pick, 0);
      ASSERT_LT(pick, 5);
    }
  }
}

TEST(Victim, RandomCoversAllOthersUniformly) {
  const Topology topo(6);
  auto v = make(VictimPolicy::kRandom, topo, 2, 7);
  std::map<int, int> counts;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) ++counts[v->next()];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [pe, n] : counts)
    EXPECT_NEAR(n, kN / 5, kN / 5 * 0.1) << "pe " << pe;
}

TEST(Victim, RandomIsDeterministicPerSeedAndSelf) {
  const Topology topo(8);
  auto a = make(VictimPolicy::kRandom, topo, 1, 3);
  auto b = make(VictimPolicy::kRandom, topo, 1, 3);
  auto c = make(VictimPolicy::kRandom, topo, 2, 3);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const int va = a->next();
    EXPECT_EQ(va, b->next());
    if (va != c->next()) differs = true;
  }
  EXPECT_TRUE(differs) << "different PEs should see different streams";
}

TEST(Victim, RoundRobinCyclesSkippingSelf) {
  const Topology topo(4);
  auto v = make(VictimPolicy::kRoundRobin, topo, 1, 0);
  // Starting after self: 2, 3, 0, 2, 3, 0 ...
  EXPECT_EQ(v->next(), 2);
  EXPECT_EQ(v->next(), 3);
  EXPECT_EQ(v->next(), 0);
  EXPECT_EQ(v->next(), 2);
  EXPECT_EQ(v->next(), 3);
  EXPECT_EQ(v->next(), 0);
}

TEST(Victim, RoundRobinTwoPes) {
  const Topology topo(2);
  auto v = make(VictimPolicy::kRoundRobin, topo, 0, 0);
  EXPECT_EQ(v->next(), 1);
  EXPECT_EQ(v->next(), 1);
}

TEST(Victim, TwoPeRandomAlwaysPicksTheOther) {
  const Topology topo(2);
  auto v = make(VictimPolicy::kRandom, topo, 1, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v->next(), 0);
}

// ------------------------------------------------------------- kTiered

TEST(Victim, TieredStaysOnNearestTierWhileSucceeding) {
  // 16 PEs in nodes of 4; self = 5 lives on node 1 = {4..7}. While
  // steals succeed the selector must never leave the node.
  const Topology topo(TopologySpec::two_level(4), 16);
  auto v = make(VictimPolicy::kTiered, topo, 5, 11);
  for (int i = 0; i < 500; ++i) {
    const int pick = v->next();
    ASSERT_GE(pick, 4);
    ASSERT_LT(pick, 8);
    ASSERT_NE(pick, 5);
    v->report(pick, true);
  }
}

TEST(Victim, TieredEscalatesAfterFailuresAndSnapsBack) {
  const Topology topo(TopologySpec::two_level(4), 16);
  VictimConfig cfg;
  cfg.escalate_after = 2;
  auto v = make(VictimPolicy::kTiered, topo, 5, 11, cfg);
  // Two failures at tier 1 escalate to tier 2 (off-node victims only);
  // two more at the widest tier cycle back to the nearest.
  v->report(v->next(), false);
  v->report(v->next(), false);
  int off_node = v->next();
  ASSERT_TRUE(off_node < 4 || off_node >= 8) << "escalated pick on node";
  v->report(off_node, false);
  off_node = v->next();
  ASSERT_TRUE(off_node < 4 || off_node >= 8) << "escalated pick on node";
  v->report(off_node, false);
  const int wrapped = v->next();
  ASSERT_GE(wrapped, 4);
  ASSERT_LT(wrapped, 8);
  // A success (at any tier) snaps back to the nearest tier.
  v->report(wrapped, true);
  for (int i = 0; i < 100; ++i) {
    const int pick = v->next();
    ASSERT_GE(pick, 4);
    ASSERT_LT(pick, 8);
    v->report(pick, true);
  }
}

TEST(Victim, TieredAloneOnNodeStartsOffNode) {
  // 9 PEs in nodes of 4: PE 8 is alone on node 2, so its nearest
  // populated tier is already tier 2.
  const Topology topo(TopologySpec::two_level(4), 9);
  auto v = make(VictimPolicy::kTiered, topo, 8, 2);
  for (int i = 0; i < 200; ++i) {
    const int pick = v->next();
    ASSERT_GE(pick, 0);
    ASSERT_LT(pick, 8);
  }
}

TEST(Victim, TieredIsDeterministicPerSeed) {
  const Topology topo(TopologySpec::parse("2x2x4"), 16);
  auto a = make(VictimPolicy::kTiered, topo, 3, 9);
  auto b = make(VictimPolicy::kTiered, topo, 3, 9);
  for (int i = 0; i < 300; ++i) {
    const int va = a->next();
    const int vb = b->next();
    ASSERT_EQ(va, vb);
    const bool fail = i % 3 == 0;
    a->report(va, !fail);
    b->report(vb, !fail);
  }
}

// --------------------------------------------------- kDistanceWeighted

TEST(Victim, DistanceWeightedPrefersNearTiers) {
  // 16 PEs in nodes of 4, self = 5, default 4x-per-tier bias. Tier 1 has
  // 3 peers (weight 4 each), tier 2 has 12 (weight 1 each): expected
  // intra-node fraction = 12 / (12 + 12) = 0.5 — far above the 3/15 a
  // uniform pick would give.
  const Topology topo(TopologySpec::two_level(4), 16);
  auto v = make(VictimPolicy::kDistanceWeighted, topo, 5, 11);
  int local = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const int pick = v->next();
    ASSERT_NE(pick, 5);
    ASSERT_GE(pick, 0);
    ASSERT_LT(pick, 16);
    if (pick >= 4 && pick < 8) ++local;
  }
  EXPECT_NEAR(static_cast<double>(local) / kN, 0.5, 0.03);
}

TEST(Victim, DistanceWeightedHonorsExplicitBias) {
  // Explicit 9:1 per-peer bias on a 12-PE two-level fabric, self = 0:
  // tier 1 weight = 3*9 = 27, tier 2 weight = 8*1 = 8; intra fraction
  // 27/35 ≈ 0.771.
  const Topology topo(TopologySpec::two_level(4), 12);
  VictimConfig cfg;
  cfg.tier_bias = {9.0, 1.0};
  auto v = make(VictimPolicy::kDistanceWeighted, topo, 0, 3, cfg);
  int local = 0;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i)
    if (v->next() < 4) ++local;
  EXPECT_NEAR(static_cast<double>(local) / kN, 27.0 / 35.0, 0.02);
}

TEST(Victim, DistanceWeightedCoversEveryPeer) {
  const Topology topo(TopologySpec::two_level(4), 12);
  auto v = make(VictimPolicy::kDistanceWeighted, topo, 0, 3);
  std::set<int> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(v->next());
  EXPECT_EQ(seen.size(), 11u) << "every other PE must be reachable";
}

TEST(Victim, DistanceWeightedThreeTierFrequencies) {
  // "2x2x4": 16 PEs, nodes of 4, racks of 2 nodes. Self = 0. Peers per
  // tier: 3 / 4 / 8; default bias per peer: 16 / 4 / 1. Weights:
  // 48 / 16 / 8 → expected fractions 2/3, 2/9, 1/9.
  const Topology topo(TopologySpec::parse("2x2x4"), 16);
  auto v = make(VictimPolicy::kDistanceWeighted, topo, 0, 21);
  std::array<int, 3> by_tier{};
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    const net::Tier t = topo.distance(0, v->next());
    ASSERT_GE(t, 1);
    ASSERT_LE(t, 3);
    ++by_tier[static_cast<std::size_t>(t - 1)];
  }
  EXPECT_NEAR(by_tier[0] / double(kN), 2.0 / 3.0, 0.02);
  EXPECT_NEAR(by_tier[1] / double(kN), 2.0 / 9.0, 0.02);
  EXPECT_NEAR(by_tier[2] / double(kN), 1.0 / 9.0, 0.02);
}

TEST(Victim, DistanceWeightedIsDeterministicPerSeed) {
  const Topology topo(TopologySpec::parse("2x2x4"), 16);
  auto a = make(VictimPolicy::kDistanceWeighted, topo, 7, 13);
  auto b = make(VictimPolicy::kDistanceWeighted, topo, 7, 13);
  for (int i = 0; i < 500; ++i) ASSERT_EQ(a->next(), b->next());
}

TEST(Victim, DistanceWeightedOnFlatIsUniform) {
  const Topology topo(6);
  auto v = make(VictimPolicy::kDistanceWeighted, topo, 2, 7);
  std::map<int, int> counts;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) ++counts[v->next()];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [pe, n] : counts) EXPECT_NEAR(n, 6000, 900) << pe;
}

TEST(Victim, PolicyNamesRoundTrip) {
  for (const auto p :
       {VictimPolicy::kRandom, VictimPolicy::kRoundRobin,
        VictimPolicy::kTiered, VictimPolicy::kDistanceWeighted})
    EXPECT_EQ(parse_victim_policy(victim_policy_name(p)), p);
  EXPECT_THROW(parse_victim_policy("hierarchical"), std::invalid_argument);
}

}  // namespace
}  // namespace sws::core
