#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/victim.hpp"

namespace sws::core {
namespace {

TEST(Victim, RandomNeverPicksSelf) {
  for (int self = 0; self < 5; ++self) {
    VictimSelector v(VictimPolicy::kRandom, self, 5, 1);
    for (int i = 0; i < 2000; ++i) {
      const int pick = v.next();
      ASSERT_NE(pick, self);
      ASSERT_GE(pick, 0);
      ASSERT_LT(pick, 5);
    }
  }
}

TEST(Victim, RandomCoversAllOthersUniformly) {
  VictimSelector v(VictimPolicy::kRandom, 2, 6, 7);
  std::map<int, int> counts;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) ++counts[v.next()];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [pe, n] : counts)
    EXPECT_NEAR(n, kN / 5, kN / 5 * 0.1) << "pe " << pe;
}

TEST(Victim, RandomIsDeterministicPerSeedAndSelf) {
  VictimSelector a(VictimPolicy::kRandom, 1, 8, 3);
  VictimSelector b(VictimPolicy::kRandom, 1, 8, 3);
  VictimSelector c(VictimPolicy::kRandom, 2, 8, 3);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const int va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs) << "different PEs should see different streams";
}

TEST(Victim, RoundRobinCyclesSkippingSelf) {
  VictimSelector v(VictimPolicy::kRoundRobin, 1, 4, 0);
  // Starting after self: 2, 3, 0, 2, 3, 0 ...
  EXPECT_EQ(v.next(), 2);
  EXPECT_EQ(v.next(), 3);
  EXPECT_EQ(v.next(), 0);
  EXPECT_EQ(v.next(), 2);
  EXPECT_EQ(v.next(), 3);
  EXPECT_EQ(v.next(), 0);
}

TEST(Victim, RoundRobinTwoPes) {
  VictimSelector v(VictimPolicy::kRoundRobin, 0, 2, 0);
  EXPECT_EQ(v.next(), 1);
  EXPECT_EQ(v.next(), 1);
}

TEST(Victim, TwoPeRandomAlwaysPicksTheOther) {
  VictimSelector v(VictimPolicy::kRandom, 1, 2, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v.next(), 0);
}

TEST(Victim, HierarchicalPrefersOwnNode) {
  // 16 PEs, 4 per node, self = 5 (node 1 = PEs 4..7), bias 0.75:
  // roughly 3/4 of picks must land on PEs 4,6,7.
  VictimConfig cfg{VictimPolicy::kHierarchical, 4, 0.75};
  VictimSelector v(cfg, 5, 16, 11);
  int local = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const int pick = v.next();
    ASSERT_NE(pick, 5);
    ASSERT_GE(pick, 0);
    ASSERT_LT(pick, 16);
    if (pick >= 4 && pick < 8) ++local;
  }
  // bias*1 + (1-bias)*(3/15) local expectation = 0.75 + 0.05 = 0.80.
  EXPECT_NEAR(static_cast<double>(local) / kN, 0.80, 0.03);
}

TEST(Victim, HierarchicalCoversRemoteNodesToo) {
  VictimConfig cfg{VictimPolicy::kHierarchical, 4, 0.5};
  VictimSelector v(cfg, 0, 12, 3);
  std::set<int> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(v.next());
  EXPECT_EQ(seen.size(), 11u) << "every other PE must be reachable";
}

TEST(Victim, HierarchicalAloneOnNodeFallsBackGlobal) {
  // Node size 1: no intra-node candidates — behaves like kRandom.
  VictimConfig cfg{VictimPolicy::kHierarchical, 1, 0.9};
  VictimSelector v(cfg, 2, 6, 7);
  std::map<int, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[v.next()];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [pe, n] : counts) EXPECT_NEAR(n, 6000, 900) << pe;
}

TEST(Victim, HierarchicalZeroNodeSizeDegradesToRandom) {
  VictimConfig cfg{VictimPolicy::kHierarchical, 0, 0.75};
  VictimSelector v(cfg, 0, 4, 1);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(v.next());
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Victim, HierarchicalLastNodeMayBeShort) {
  // 10 PEs, node size 4: last node = {8, 9}. Self = 9 must only pick 8
  // as its local candidate.
  VictimConfig cfg{VictimPolicy::kHierarchical, 4, 1.0};
  VictimSelector v(cfg, 9, 10, 2);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(v.next(), 8);
}

}  // namespace
}  // namespace sws::core
