// Fabric semantics: one-sided data movement, AMO results, accounting, and
// delayed delivery of non-blocking ops under the virtual sequencer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "net/fabric.hpp"

namespace sws::net {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  static constexpr int kPes = 2;
  static constexpr std::size_t kArena = 4096;

  FabricTest() : time_(kPes), fabric_(time_, NetworkModel{}, kPes) {
    for (int pe = 0; pe < kPes; ++pe) {
      arenas_.emplace_back(kArena, std::byte{0});
      fabric_.register_arena(pe, arenas_.back().data(), kArena);
    }
  }

  /// Drive `body(pe)` SPMD under the sequencer.
  void run(const std::function<void(int)>& body) {
    time_.reset(kPes);
    std::vector<std::thread> ts;
    for (int pe = 0; pe < kPes; ++pe)
      ts.emplace_back([&, pe] {
        time_.pe_begin(pe);
        body(pe);
        time_.pe_end(pe);
      });
    for (auto& t : ts) t.join();
  }

  std::uint64_t word_at(int pe, std::uint64_t off) {
    std::uint64_t v;
    std::memcpy(&v, arenas_[static_cast<std::size_t>(pe)].data() + off, 8);
    return v;
  }

  VirtualTimeModel time_;
  std::vector<std::vector<std::byte>> arenas_;
  Fabric fabric_;
};

TEST_F(FabricTest, PutGetRoundTrip) {
  run([&](int pe) {
    if (pe != 0) return;
    const char msg[] = "hello fabric";
    fabric_.put(0, 1, 64, msg, sizeof(msg));
    char back[sizeof(msg)] = {};
    fabric_.get(0, 1, 64, back, sizeof(back));
    EXPECT_STREQ(back, msg);
  });
}

TEST_F(FabricTest, AmoFetchAddReturnsPriorValue) {
  run([&](int pe) {
    if (pe != 0) return;
    EXPECT_EQ(fabric_.amo_fetch_add(0, 1, 8, 5), 0u);
    EXPECT_EQ(fabric_.amo_fetch_add(0, 1, 8, 3), 5u);
    EXPECT_EQ(fabric_.amo_fetch(0, 1, 8), 8u);
  });
}

TEST_F(FabricTest, AmoCompareSwapSemantics) {
  run([&](int pe) {
    if (pe != 0) return;
    // Miss: returns current value, no change.
    EXPECT_EQ(fabric_.amo_compare_swap(0, 1, 16, 99, 7), 0u);
    EXPECT_EQ(fabric_.amo_fetch(0, 1, 16), 0u);
    // Hit: returns prior, installs desired.
    EXPECT_EQ(fabric_.amo_compare_swap(0, 1, 16, 0, 7), 0u);
    EXPECT_EQ(fabric_.amo_fetch(0, 1, 16), 7u);
  });
}

TEST_F(FabricTest, AmoSwapAndSet) {
  run([&](int pe) {
    if (pe != 0) return;
    fabric_.amo_set(0, 1, 24, 11);
    EXPECT_EQ(fabric_.amo_swap(0, 1, 24, 22), 11u);
    EXPECT_EQ(fabric_.amo_fetch(0, 1, 24), 22u);
  });
}

TEST_F(FabricTest, WordOpsMoveMultipleWords) {
  run([&](int pe) {
    if (pe != 0) return;
    const std::uint64_t src[3] = {1, 2, 3};
    fabric_.put_words(0, 1, 32, src, 3);
    std::uint64_t dst[3] = {};
    fabric_.get_words(0, 1, 32, dst, 3);
    EXPECT_EQ(dst[0], 1u);
    EXPECT_EQ(dst[1], 2u);
    EXPECT_EQ(dst[2], 3u);
  });
}

TEST_F(FabricTest, BlockingOpsChargeModelCost) {
  const NetworkModel model{};
  run([&](int pe) {
    if (pe != 0) return;
    const Nanos before = time_.now(0);
    std::uint64_t v = 0;
    fabric_.get(0, 1, 0, &v, 8);
    const Nanos dt = time_.now(0) - before;
    EXPECT_EQ(dt, model.cost(OpKind::kGet, 8, true));
  });
}

TEST_F(FabricTest, LocalOpsAreCheaper) {
  run([&](int pe) {
    if (pe != 0) return;
    const Nanos t0 = time_.now(0);
    std::uint64_t v = 0;
    fabric_.get(0, 0, 0, &v, 8);  // local
    const Nanos local = time_.now(0) - t0;
    const Nanos t1 = time_.now(0);
    fabric_.get(0, 1, 0, &v, 8);  // remote
    const Nanos remote = time_.now(0) - t1;
    EXPECT_LT(local, remote / 5);
  });
}

TEST_F(FabricTest, StatsCountOpsAndBytes) {
  fabric_.reset_stats();
  run([&](int pe) {
    if (pe != 0) return;
    std::uint64_t v = 1;
    fabric_.put(0, 1, 0, &v, 8);
    fabric_.get(0, 1, 0, &v, 8);
    fabric_.amo_fetch_add(0, 1, 8, 1);
    fabric_.nbi_amo_add(0, 1, 8, 1);
  });
  const FabricStats& s = fabric_.stats(0);
  EXPECT_EQ(s.ops[static_cast<int>(OpKind::kPut)], 1u);
  EXPECT_EQ(s.ops[static_cast<int>(OpKind::kGet)], 1u);
  EXPECT_EQ(s.ops[static_cast<int>(OpKind::kAmoFetchAdd)], 1u);
  EXPECT_EQ(s.ops[static_cast<int>(OpKind::kNbiAmoAdd)], 1u);
  EXPECT_EQ(s.bytes_put, 8u);
  EXPECT_EQ(s.bytes_got, 8u);
  EXPECT_EQ(s.total_ops(), 4u);
  EXPECT_EQ(s.blocking_ops(), 3u);
  EXPECT_EQ(s.remote_ops, 4u);
  EXPECT_EQ(fabric_.stats(1).total_ops(), 0u);
}

TEST_F(FabricTest, NbiDeliveryIsDelayedUntilTimePasses) {
  run([&](int pe) {
    if (pe != 0) return;
    fabric_.nbi_amo_add(0, 1, 40, 9);
    // Issue overhead charged, but the effect is still in flight.
    EXPECT_EQ(fabric_.pending(0), 1);
    EXPECT_EQ(word_at(1, 40), 0u);
    // Pass the delivery deadline: the hook applies the effect.
    time_.advance(0, NetworkModel{}.delivery_delay(8, 1) + 1);
    EXPECT_EQ(fabric_.pending(0), 0);
    EXPECT_EQ(word_at(1, 40), 9u);
  });
}

TEST_F(FabricTest, QuietBlocksUntilAllPendingDelivered) {
  run([&](int pe) {
    if (pe != 0) return;
    for (int i = 0; i < 5; ++i) fabric_.nbi_amo_add(0, 1, 48, 1);
    fabric_.quiet(0);
    EXPECT_EQ(fabric_.pending(0), 0);
    EXPECT_EQ(word_at(1, 48), 5u);
  });
}

TEST_F(FabricTest, NbiPutDeliversPayloadLate) {
  run([&](int pe) {
    if (pe != 0) return;
    const std::uint64_t v = 0xdeadbeef;
    fabric_.nbi_put(0, 1, 56, &v, 8);
    EXPECT_EQ(word_at(1, 56), 0u);
    fabric_.quiet(0);
    EXPECT_EQ(word_at(1, 56), 0xdeadbeefu);
  });
}

TEST_F(FabricTest, NbiOpsDeliverInIssueOrderAtSameDeadline) {
  run([&](int pe) {
    if (pe != 0) return;
    const std::uint64_t a = 1, b = 2;
    fabric_.nbi_put(0, 1, 72, &a, 8);
    fabric_.nbi_put(0, 1, 72, &b, 8);  // same target word
    fabric_.quiet(0);
    EXPECT_EQ(word_at(1, 72), 2u) << "later issue must win";
  });
}

TEST_F(FabricTest, QuietUnderNbiStormDeliversEverything) {
  // Both PEs storm each other with mixed nbi ops, then quiet: every
  // effect must land, pending must hit zero on both sides.
  run([&](int pe) {
    const int other = 1 - pe;
    const std::uint64_t marker = 0x1000u + static_cast<std::uint64_t>(pe);
    for (int i = 0; i < 500; ++i) {
      fabric_.nbi_amo_add(pe, other, 80, 1);
      if (i % 16 == 0)
        fabric_.nbi_put(pe, other, 96, &marker, 8);
      if (i % 16 == 8)
        fabric_.nbi_amo_set(pe, other, 104, marker);
    }
    fabric_.quiet(pe);
    EXPECT_EQ(fabric_.pending(pe), 0);
  });
  EXPECT_EQ(fabric_.pending_to(0), 0);
  EXPECT_EQ(fabric_.pending_to(1), 0);
  EXPECT_EQ(word_at(0, 80), 500u);
  EXPECT_EQ(word_at(1, 80), 500u);
  EXPECT_EQ(word_at(0, 96), 0x1001u);
  EXPECT_EQ(word_at(1, 96), 0x1000u);
  EXPECT_EQ(word_at(0, 104), 0x1001u);
  EXPECT_EQ(word_at(1, 104), 0x1000u);
}

TEST_F(FabricTest, NewRunClearsOpLabels) {
  // Regression: OpLabels are per-run debug state; a stale label from run
  // N must not leak into the explorer's event trace for run N+1.
  run([&](int pe) {
    if (pe != 0) return;
    fabric_.amo_fetch_add(0, 1, 8, 1);
  });
  EXPECT_EQ(fabric_.last_op(0).kind, OpKind::kAmoFetchAdd);
  EXPECT_EQ(fabric_.last_op(0).target, 1);
  fabric_.new_run();
  EXPECT_EQ(fabric_.last_op(0).kind, OpKind::kCount_) << "label survived new_run";
  EXPECT_EQ(fabric_.last_op(0).target, -1);
}

TEST_F(FabricTest, EffectPoolKeepsAmosAndSmallPutsInline) {
  const EffectPoolStats before = fabric_.effect_pool_stats();
  run([&](int pe) {
    if (pe != 0) return;
    std::byte small[PendingEffect::kInlineBytes] = {};
    fabric_.nbi_amo_add(0, 1, 8, 1);
    fabric_.nbi_amo_set(0, 1, 16, 2);
    fabric_.nbi_put(0, 1, 128, small, sizeof(small));  // == inline limit
    fabric_.quiet(0);
  });
  const EffectPoolStats after = fabric_.effect_pool_stats();
  EXPECT_EQ(after.inline_effects - before.inline_effects, 3u);
  EXPECT_EQ(after.slab_grabs, before.slab_grabs) << "inline op touched a slab";
}

TEST_F(FabricTest, EffectPoolRecyclesSlabsAcrossRounds) {
  // Large put payloads draw from the slab pool; after the first round
  // warms it up, repeat rounds must reuse freed slabs instead of
  // allocating fresh ones (the "no allocation at steady state" claim —
  // the ASan job would also flag any leak here).
  std::byte big[256] = {};
  const auto round = [&] {
    fabric_.new_run();  // fresh NIC horizons; clocks restart at 0 in run()
    run([&](int pe) {
      if (pe != 0) return;
      for (int i = 0; i < 8; ++i) fabric_.nbi_put(0, 1, 512, big, sizeof(big));
      fabric_.quiet(0);
    });
  };
  round();
  const EffectPoolStats warm = fabric_.effect_pool_stats();
  for (int r = 0; r < 3; ++r) round();
  const EffectPoolStats after = fabric_.effect_pool_stats();
  EXPECT_EQ(after.slab_grabs - warm.slab_grabs, 24u);
  EXPECT_EQ(after.slab_allocs, warm.slab_allocs)
      << "steady-state large puts allocated new slabs";
}

TEST(FabricFaults, RetransmitDelayExtendsDeliveryNotHorizon) {
  // drop_rate=1 with max_retransmits=1: every nbi op is lost exactly once
  // and delivers retransmit_ns late. The sequencer's horizon must be
  // clamped to the *extended* deadline — advancing past the base delay
  // must neither apply the effect early nor lose it.
  VirtualTimeModel tm(2);
  NetworkParams params;
  params.faults.drop_rate = 1.0;
  params.faults.max_retransmits = 1;
  params.faults.retransmit_ns = 40'000;
  Fabric fab(tm, NetworkModel(params), 2);
  std::vector<std::vector<std::byte>> arenas;
  for (int pe = 0; pe < 2; ++pe) {
    arenas.emplace_back(256, std::byte{0});
    fab.register_arena(pe, arenas.back().data(), 256);
  }
  const Nanos base = NetworkModel(params).delivery_delay(8, 1);
  tm.reset(2);
  std::vector<std::thread> ts;
  for (int pe = 0; pe < 2; ++pe)
    ts.emplace_back([&, pe] {
      tm.pe_begin(pe);
      if (pe == 0) {
        fab.nbi_amo_add(0, 1, 0, 7);
        tm.advance(0, base + 1);  // past the fault-free deadline
        std::uint64_t v;
        std::memcpy(&v, arenas[1].data(), 8);
        EXPECT_EQ(v, 0u) << "delivered before the retransmit completed";
        EXPECT_EQ(fab.pending(0), 1);
        tm.advance(0, params.faults.retransmit_ns);  // past the real one
        std::memcpy(&v, arenas[1].data(), 8);
        EXPECT_EQ(v, 7u);
        EXPECT_EQ(fab.pending(0), 0);
      }
      tm.pe_end(pe);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(fab.fault_stats().drops, 1u);
}

TEST(FabricFaults, DuplicatedLargePutSharesOneSlab) {
  // dup_rate=1: the duplicate copy shares its original's slab buffer via
  // refcount; both deliveries land and the pool grabs exactly one slab.
  VirtualTimeModel tm(2);
  NetworkParams params;
  params.faults.dup_rate = 1.0;
  Fabric fab(tm, NetworkModel(params), 2);
  std::vector<std::vector<std::byte>> arenas;
  for (int pe = 0; pe < 2; ++pe) {
    arenas.emplace_back(512, std::byte{0});
    fab.register_arena(pe, arenas.back().data(), 512);
  }
  tm.reset(2);
  std::vector<std::thread> ts;
  for (int pe = 0; pe < 2; ++pe)
    ts.emplace_back([&, pe] {
      tm.pe_begin(pe);
      if (pe == 0) {
        std::byte big[128];
        std::fill(std::begin(big), std::end(big), std::byte{0x5a});
        fab.nbi_put(0, 1, 0, big, sizeof(big));
        EXPECT_EQ(fab.pending(0), 2) << "original + duplicate";
        fab.quiet(0);
        EXPECT_EQ(arenas[1][127], std::byte{0x5a});
      }
      tm.pe_end(pe);
    });
  for (auto& t : ts) t.join();
  const EffectPoolStats s = fab.effect_pool_stats();
  EXPECT_EQ(s.slab_grabs, 1u);
  EXPECT_EQ(fab.fault_stats().dups, 1u);
  EXPECT_EQ(fab.pending_to(1), 0);
}

TEST(FabricRealTime, QuietUnderNbiStormDeliversEverything) {
  // Same storm with the delivery thread and true concurrency.
  RealTimeModel tm(2);
  NetworkParams params;
  params.link(1).nbi_delay = 50'000;  // 50 us: a real in-flight window
  Fabric fab(tm, NetworkModel(params), 2);
  std::vector<std::vector<std::byte>> arenas;
  for (int pe = 0; pe < 2; ++pe) {
    arenas.emplace_back(256, std::byte{0});
    fab.register_arena(pe, arenas.back().data(), 256);
  }
  tm.reset(2);
  std::vector<std::thread> ts;
  for (int pe = 0; pe < 2; ++pe)
    ts.emplace_back([&, pe] {
      const int other = 1 - pe;
      for (int i = 0; i < 500; ++i) fab.nbi_amo_add(pe, other, 0, 1);
      fab.quiet(pe);
      EXPECT_EQ(fab.pending(pe), 0);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(fab.pending_to(0), 0);
  EXPECT_EQ(fab.pending_to(1), 0);
  for (int pe = 0; pe < 2; ++pe) {
    std::uint64_t v;
    std::memcpy(&v, arenas[static_cast<std::size_t>(pe)].data(), 8);
    EXPECT_EQ(v, 500u) << "pe " << pe;
  }
}

TEST(FabricRealTime, NbiDeliveredLateByProgressThread) {
  RealTimeModel tm(2);
  NetworkParams params;
  params.link(1).nbi_delay = 2'000'000;  // 2 ms: long enough to observe
  Fabric fab(tm, NetworkModel(params), 2);
  std::vector<std::vector<std::byte>> arenas;
  for (int pe = 0; pe < 2; ++pe) {
    arenas.emplace_back(64, std::byte{0});
    fab.register_arena(pe, arenas.back().data(), 64);
  }
  tm.reset(2);
  fab.nbi_amo_add(0, 1, 0, 9);
  EXPECT_EQ(fab.pending(0), 1) << "effect must still be in flight";
  fab.quiet(0);  // blocks on the progress thread
  EXPECT_EQ(fab.pending(0), 0);
  std::uint64_t v;
  std::memcpy(&v, arenas[1].data(), 8);
  EXPECT_EQ(v, 9u);
}

TEST(FabricRealTime, QuietWithNothingPendingReturnsImmediately) {
  RealTimeModel tm(1);
  Fabric fab(tm, NetworkModel{}, 1);
  std::vector<std::byte> arena(64, std::byte{0});
  fab.register_arena(0, arena.data(), 64);
  tm.reset(1);
  fab.quiet(0);
  SUCCEED();
}

// Death tests run against the real-time backend: no baton to inherit
// across the death-test fork.
TEST(FabricDeath, OutOfBoundsAccessAborts) {
  RealTimeModel tm(1);
  Fabric fab(tm, NetworkModel{}, 1);
  std::vector<std::byte> arena(256, std::byte{0});
  fab.register_arena(0, arena.data(), arena.size());
  std::uint64_t v = 0;
  EXPECT_DEATH(fab.get(0, 0, 252, &v, 8), "bounds");
}

TEST(FabricDeath, MisalignedAmoAborts) {
  RealTimeModel tm(1);
  Fabric fab(tm, NetworkModel{}, 1);
  std::vector<std::byte> arena(256, std::byte{0});
  fab.register_arena(0, arena.data(), arena.size());
  EXPECT_DEATH(fab.amo_fetch(0, 0, 4), "align");
}

TEST(FabricDeath, UnregisteredArenaAborts) {
  RealTimeModel tm(1);
  Fabric fab(tm, NetworkModel{}, 1);
  EXPECT_DEATH(fab.amo_fetch(0, 0, 0), "registered");
}

TEST_F(FabricTest, TargetOccupancySerializesContendedOps) {
  // Two PEs hammer each other... here: PE0 fires two back-to-back remote
  // AMOs at PE1. The second op queues behind the first at PE1's NIC only
  // if issued within the occupancy window — with one initiator the window
  // has passed, so instead verify the accounting path with a synthetic
  // short gap: occupancy wait shows up when ops from different sources
  // collide. Simplest deterministic check: issue an op, rewind nothing,
  // and confirm zero wait for spaced ops, then use two PEs racing.
  run([&](int pe) {
    // Both PEs AMO the same third... only 2 PEs here: each AMOs the other
    // simultaneously at t=0. PE0 runs first (baton), marking PE1's NIC
    // busy until occ; PE1's op targets PE0 — unrelated NIC — no wait.
    std::uint64_t v = fabric_.amo_fetch_add(pe, 1 - pe, 8, 1);
    (void)v;
  });
  // Cross-targets never contend.
  EXPECT_EQ(fabric_.stats(0).occupancy_wait_ns, 0u);
  EXPECT_EQ(fabric_.stats(1).occupancy_wait_ns, 0u);
}

TEST(FabricOccupancy, SameTargetOpsQueue) {
  // Three thieves AMO one victim at virtual t=0: the k-th op waits
  // (k-1) * occupancy behind the earlier ones.
  VirtualTimeModel tm(4);
  NetworkParams params;
  params.link(1).target_occupancy = 300;
  Fabric fab(tm, NetworkModel(params), 4);
  std::vector<std::vector<std::byte>> arenas;
  for (int pe = 0; pe < 4; ++pe) {
    arenas.emplace_back(256, std::byte{0});
    fab.register_arena(pe, arenas.back().data(), 256);
  }
  tm.reset(4);
  std::vector<std::thread> ts;
  for (int pe = 0; pe < 4; ++pe)
    ts.emplace_back([&, pe] {
      tm.pe_begin(pe);
      if (pe != 3) fab.amo_fetch_add(pe, 3, 0, 1);
      tm.pe_end(pe);
    });
  for (auto& t : ts) t.join();
  // Baton order at t=0 is PE0, PE1, PE2: waits are 0, 300, 600.
  EXPECT_EQ(fab.stats(0).occupancy_wait_ns, 0u);
  EXPECT_EQ(fab.stats(1).occupancy_wait_ns, 300u);
  EXPECT_EQ(fab.stats(2).occupancy_wait_ns, 600u);
}

TEST(FabricOccupancy, ZeroOccupancyDisablesQueueing) {
  VirtualTimeModel tm(3);
  NetworkParams params;
  params.link(1).target_occupancy = 0;
  Fabric fab(tm, NetworkModel(params), 3);
  std::vector<std::vector<std::byte>> arenas;
  for (int pe = 0; pe < 3; ++pe) {
    arenas.emplace_back(256, std::byte{0});
    fab.register_arena(pe, arenas.back().data(), 256);
  }
  tm.reset(3);
  std::vector<std::thread> ts;
  for (int pe = 0; pe < 3; ++pe)
    ts.emplace_back([&, pe] {
      tm.pe_begin(pe);
      if (pe != 2) fab.amo_fetch_add(pe, 2, 0, 1);
      tm.pe_end(pe);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(fab.stats(0).occupancy_wait_ns, 0u);
  EXPECT_EQ(fab.stats(1).occupancy_wait_ns, 0u);
}

TEST(NetworkModelTest, CostsScaleWithPayload) {
  NetworkModel m;
  EXPECT_GT(m.cost(OpKind::kGet, 1 << 20, 1), m.cost(OpKind::kGet, 8, 1));
  EXPECT_EQ(m.cost(OpKind::kAmoFetchAdd, 8, 1),
            m.params().link(1).amo_latency);
  // nbi ops only charge the issue overhead.
  EXPECT_LT(m.cost(OpKind::kNbiAmoAdd, 8, 1),
            m.cost(OpKind::kAmoFetchAdd, 8, 1));
}

TEST(NetworkModelTest, TwoLevelFabricTiers) {
  NetworkModel m(NetworkParams::two_level(4), 12);
  EXPECT_EQ(m.tier(0, 0), 0);
  EXPECT_EQ(m.tier(0, 3), 1);
  EXPECT_EQ(m.tier(0, 4), 2);
  EXPECT_EQ(m.tier(5, 7), 1);
  EXPECT_EQ(m.tier(7, 8), 2);
}

TEST(NetworkModelTest, FlatFabricHasNoIntraNode) {
  NetworkModel m{};  // flat topology
  EXPECT_EQ(m.ntiers(), 1);
  EXPECT_EQ(m.tier(0, 1), 1);
  EXPECT_EQ(m.tier(0, 0), 0);
}

TEST(NetworkModelTest, IntraNodeOpsAreCheaper) {
  NetworkModel m(NetworkParams::two_level(8), 16);
  const Nanos inter = m.cost(OpKind::kAmoFetchAdd, 8, 2);
  const Nanos intra = m.cost(OpKind::kAmoFetchAdd, 8, 1);
  const Nanos self = m.cost(OpKind::kAmoFetchAdd, 8, 0);
  EXPECT_LT(intra, inter / 3);
  EXPECT_LT(self, intra);
  // Bulk transfers see the better intra-node bandwidth too.
  EXPECT_LT(m.cost(OpKind::kGet, 1 << 16, 1), m.cost(OpKind::kGet, 1 << 16, 2));
  // And nbi delivery arrives sooner within a node.
  EXPECT_LT(m.delivery_delay(8, 1), m.delivery_delay(8, 2));
}

TEST(FabricLocality, ChargesByNodeDistance) {
  VirtualTimeModel tm(3);
  NetworkParams params = NetworkParams::two_level(2);
  // PEs {0,1} on one node, {2} on another.
  params.link(1).target_occupancy = 0;
  params.link(2).target_occupancy = 0;
  Fabric fab(tm, NetworkModel(params, 3), 3);
  std::vector<std::vector<std::byte>> arenas;
  for (int pe = 0; pe < 3; ++pe) {
    arenas.emplace_back(256, std::byte{0});
    fab.register_arena(pe, arenas.back().data(), 256);
  }
  tm.reset(3);
  Nanos intra_cost = 0, inter_cost = 0;
  std::vector<std::thread> ts;
  for (int pe = 0; pe < 3; ++pe)
    ts.emplace_back([&, pe] {
      tm.pe_begin(pe);
      if (pe == 0) {
        const Nanos t0 = tm.now(0);
        fab.amo_fetch(0, 1, 0);  // intra-node
        intra_cost = tm.now(0) - t0;
        const Nanos t1 = tm.now(0);
        fab.amo_fetch(0, 2, 0);  // inter-node
        inter_cost = tm.now(0) - t1;
      }
      tm.pe_end(pe);
    });
  for (auto& t : ts) t.join();
  EXPECT_LT(intra_cost, inter_cost / 3);
  // Per-tier op counters split the two AMOs by distance.
  EXPECT_EQ(fab.stats(0).tier_ops[0], 1u);
  EXPECT_EQ(fab.stats(0).tier_ops[1], 1u);
}

TEST(NetworkModelTest, ScaledParamsScaleLatencies) {
  NetworkParams p;
  const NetworkParams d = p.scaled(2.0);
  EXPECT_EQ(d.link(1).amo_latency, p.link(1).amo_latency * 2);
  EXPECT_EQ(d.link(1).get_latency, p.link(1).get_latency * 2);
  EXPECT_EQ(d.link(1).nbi_delay, p.link(1).nbi_delay * 2);
  EXPECT_EQ(d.local_overhead, p.local_overhead) << "local costs unscaled";
}

}  // namespace
}  // namespace sws::net
