// Benchmark workloads: BPC task arithmetic and bouncing, UTS determinism
// and parallel-vs-sequential agreement, synthetic seeding.
#include <gtest/gtest.h>

#include <set>

#include "workloads/bpc.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/uts.hpp"

namespace sws::workloads {
namespace {

pgas::RuntimeConfig rcfg(int npes) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 4 << 20;
  return c;
}

core::PoolConfig pcfg(core::QueueKind kind, std::uint32_t slot = 64) {
  core::PoolConfig c;
  c.kind = kind;
  c.queue.capacity = 8192;
  c.queue.slot_bytes = slot;
  return c;
}

// ------------------------------------------------------------------- BPC

TEST(Bpc, ExpectedTaskArithmetic) {
  BpcParams p;
  p.consumers_per_producer = 8192;
  p.depth = 300;
  // The paper's Table 2 count: 300 producers' consumers + producers + root.
  EXPECT_EQ(p.expected_tasks(), 300u * 8192 + 301);
  BpcParams small;
  small.consumers_per_producer = 4;
  small.depth = 3;
  EXPECT_EQ(small.expected_tasks(), 3u * 4 + 4);
}

TEST(Bpc, TotalComputeMatchesTaskMix) {
  BpcParams p;
  p.consumers_per_producer = 2;
  p.depth = 2;
  p.consumer_ns = 100;
  p.producer_ns = 10;
  EXPECT_EQ(p.total_compute_ns(), 4u * 100 + 3u * 10);
}

class BpcBoth : public ::testing::TestWithParam<core::QueueKind> {};

TEST_P(BpcBoth, ExecutesExactlyExpectedTasks) {
  pgas::Runtime rt(rcfg(4));
  core::TaskRegistry reg;
  BpcParams p;
  p.consumers_per_producer = 16;
  p.depth = 10;
  p.consumer_ns = 50'000;
  p.producer_ns = 10'000;
  BpcBenchmark bpc(reg, p);
  core::TaskPool pool(rt, reg, pcfg(GetParam(), 32));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { bpc.seed(w); });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, p.expected_tasks());
}

TEST_P(BpcBoth, ProducersBounceAcrossPes) {
  // The producer sits at the tail, so with idle thieves present the
  // producer chain should migrate: more than one PE must execute work.
  pgas::Runtime rt(rcfg(4));
  core::TaskRegistry reg;
  BpcParams p;
  p.consumers_per_producer = 32;
  p.depth = 8;
  p.consumer_ns = 200'000;
  p.producer_ns = 20'000;
  BpcBenchmark bpc(reg, p);
  core::TaskPool pool(rt, reg, pcfg(GetParam(), 32));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { bpc.seed(w); });
  });
  int pes_with_work = 0;
  for (int pe = 0; pe < 4; ++pe)
    if (pool.worker_stats(pe).tasks_executed > 0) ++pes_with_work;
  EXPECT_GE(pes_with_work, 3) << "work must disperse";
  EXPECT_GT(pool.report().total.steals_ok, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothQueues, BpcBoth,
                         ::testing::Values(core::QueueKind::kSdc,
                                           core::QueueKind::kSws),
                         [](const auto& info) {
                           return info.param == core::QueueKind::kSdc ? "SDC"
                                                                      : "SWS";
                         });

// ------------------------------------------------------------------- UTS

TEST(Uts, SequentialCountIsDeterministic) {
  UtsParams p;
  p.b0 = 4;
  p.gen_mx = 8;
  const UtsTreeInfo a = uts_sequential_count(p);
  const UtsTreeInfo b = uts_sequential_count(p);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_GT(a.nodes, 1u);
  EXPECT_GT(a.leaves, 0u);
  EXPECT_LE(a.max_depth, p.gen_mx);
}

TEST(Uts, DifferentSeedsGiveDifferentTrees) {
  UtsParams a, b;
  a.gen_mx = b.gen_mx = 8;
  a.root_seed = 19;
  b.root_seed = 20;
  EXPECT_NE(uts_sequential_count(a).nodes, uts_sequential_count(b).nodes);
}

TEST(Uts, GeometricDepthCutoffHolds) {
  UtsParams p;
  p.gen_mx = 5;
  const Sha1Digest d = uts_root_digest(p);
  EXPECT_EQ(uts_num_children(d, p.gen_mx, p), 0u);
  EXPECT_EQ(uts_num_children(d, p.gen_mx + 3, p), 0u);
}

TEST(Uts, BinomialRootHasB0Children) {
  UtsParams p;
  p.shape = UtsParams::Shape::kBinomial;
  p.b0 = 7;
  EXPECT_EQ(uts_num_children(uts_root_digest(p), 0, p), 7u);
}

TEST(Uts, BinomialInteriorIsAllOrNothing) {
  UtsParams p;
  p.shape = UtsParams::Shape::kBinomial;
  p.bin_q = 0.3;
  p.bin_m = 5;
  int blocks = 0;
  const Sha1Digest root = uts_root_digest(p);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const std::uint32_t k = uts_num_children(uts_child_digest(root, i), 1, p);
    ASSERT_TRUE(k == 0 || k == 5);
    if (k == 5) ++blocks;
  }
  EXPECT_NEAR(blocks, 600, 120);  // q = 0.3 of 2000
}

TEST(Uts, BinomialTreeTerminates) {
  UtsParams p;
  p.shape = UtsParams::Shape::kBinomial;
  p.b0 = 8;
  p.bin_q = 0.15;
  p.bin_m = 4;  // q·m = 0.6 < 1: finite a.s.
  const UtsTreeInfo info = uts_sequential_count(p);
  EXPECT_GT(info.nodes, 8u);
}

TEST(Uts, GeoShapesProduceDistinctTrees) {
  std::set<std::uint64_t> sizes;
  for (const auto shape :
       {UtsParams::GeoShape::kLinear, UtsParams::GeoShape::kExpDec,
        UtsParams::GeoShape::kCyclic, UtsParams::GeoShape::kFixed}) {
    UtsParams p;
    p.b0 = 3;
    p.gen_mx = 7;
    p.geo_shape = shape;
    const auto info = uts_sequential_count(p);
    EXPECT_GT(info.nodes, 1u);
    sizes.insert(info.nodes);
  }
  EXPECT_EQ(sizes.size(), 4u) << "shape functions must actually differ";
}

TEST(Uts, ExpDecIsSmallerThanLinear) {
  // (1-f)^3 <= (1-f): expected branching never exceeds linear's.
  UtsParams lin, exp;
  lin.b0 = exp.b0 = 4;
  lin.gen_mx = exp.gen_mx = 8;
  exp.geo_shape = UtsParams::GeoShape::kExpDec;
  EXPECT_LT(uts_sequential_count(exp).nodes,
            uts_sequential_count(lin).nodes);
}

TEST(Uts, FixedIsLargerThanLinear) {
  UtsParams lin, fix;
  lin.b0 = fix.b0 = 3;
  lin.gen_mx = fix.gen_mx = 7;
  fix.geo_shape = UtsParams::GeoShape::kFixed;
  EXPECT_GT(uts_sequential_count(fix).nodes,
            uts_sequential_count(lin).nodes);
}

TEST(Uts, ShapedTreeParallelMatchesSequential) {
  UtsParams p;
  p.b0 = 4;
  p.gen_mx = 8;
  p.geo_shape = UtsParams::GeoShape::kCyclic;
  const auto truth = uts_sequential_count(p);
  pgas::Runtime rt(rcfg(4));
  core::TaskRegistry reg;
  UtsBenchmark uts(reg, p);
  core::TaskPool pool(rt, reg, pcfg(core::QueueKind::kSws));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, truth.nodes);
}

class UtsBoth : public ::testing::TestWithParam<core::QueueKind> {};

TEST_P(UtsBoth, ParallelSearchMatchesSequentialCount) {
  UtsParams p;
  p.b0 = 4;
  p.gen_mx = 9;
  p.node_compute_ns = 200;
  const UtsTreeInfo truth = uts_sequential_count(p);
  ASSERT_GT(truth.nodes, 100u) << "tree too small to be interesting";

  pgas::Runtime rt(rcfg(4));
  core::TaskRegistry reg;
  UtsBenchmark uts(reg, p);
  core::TaskPool pool(rt, reg, pcfg(GetParam()));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, truth.nodes)
      << "parallel search must visit every node exactly once";
}

TEST_P(UtsBoth, BinomialParallelMatchesToo) {
  UtsParams p;
  p.shape = UtsParams::Shape::kBinomial;
  p.b0 = 16;
  p.bin_q = 0.2;
  p.bin_m = 4;
  p.root_seed = 7;
  const UtsTreeInfo truth = uts_sequential_count(p);

  pgas::Runtime rt(rcfg(4));
  core::TaskRegistry reg;
  UtsBenchmark uts(reg, p);
  core::TaskPool pool(rt, reg, pcfg(GetParam()));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, truth.nodes);
}

INSTANTIATE_TEST_SUITE_P(BothQueues, UtsBoth,
                         ::testing::Values(core::QueueKind::kSdc,
                                           core::QueueKind::kSws),
                         [](const auto& info) {
                           return info.param == core::QueueKind::kSdc ? "SDC"
                                                                      : "SWS";
                         });

// ------------------------------------------------------------- synthetic

TEST(FixedWork, RootSeedingExecutesAll) {
  pgas::Runtime rt(rcfg(4));
  core::TaskRegistry reg;
  FixedWorkParams p;
  p.tasks = 500;
  p.task_ns = 5000;
  FixedWork fw(reg, p);
  core::TaskPool pool(rt, reg, pcfg(core::QueueKind::kSws, 32));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { fw.seed(w); });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, 500u);
  EXPECT_EQ(fw.total_compute_ns(), 500u * 5000);
}

TEST(FixedWork, BlockDistributionSplitsSeeds) {
  pgas::Runtime rt(rcfg(3));
  core::TaskRegistry reg;
  FixedWorkParams p;
  p.tasks = 10;
  p.seed_on_root_only = false;
  FixedWork fw(reg, p);
  core::TaskPool pool(rt, reg, pcfg(core::QueueKind::kSws, 32));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { fw.seed(w); });
  });
  // 10 = 4 + 3 + 3 spawned across PEs; all executed.
  EXPECT_EQ(pool.report().total.tasks_executed, 10u);
  EXPECT_EQ(pool.worker_stats(0).tasks_spawned, 4u);
  EXPECT_EQ(pool.worker_stats(1).tasks_spawned, 3u);
}

TEST(SparseEndgame, OnlyBusyPesSeed) {
  pgas::Runtime rt(rcfg(4));
  core::TaskRegistry reg;
  SparseEndgameParams p;
  p.busy_pes = 1;
  p.tasks_per_busy = 12;
  p.task_ns = 50'000;
  SparseEndgame se(reg, p);
  core::TaskPool pool(rt, reg, pcfg(core::QueueKind::kSws, 32));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { se.seed(w); });
  });
  EXPECT_EQ(pool.report().total.tasks_executed, 12u);
  EXPECT_EQ(pool.worker_stats(0).tasks_spawned, 12u);
  EXPECT_EQ(pool.worker_stats(3).tasks_spawned, 0u);
}

}  // namespace
}  // namespace sws::workloads
