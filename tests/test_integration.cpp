// Cross-module integration: the paper's headline properties verified
// end-to-end — per-steal communication counts under a full pool run,
// SWS-vs-SDC steal-time advantage, task conservation at scale, and a
// real-time-backend stress run for true preemptive interleavings.
#include <gtest/gtest.h>

#include "sws.hpp"

namespace sws {
namespace {

pgas::RuntimeConfig rcfg(int npes, std::uint64_t seed = 42) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 4 << 20;
  c.seed = seed;
  return c;
}

core::PoolConfig pcfg(core::QueueKind kind) {
  core::PoolConfig c;
  c.kind = kind;
  c.queue.capacity = 8192;
  c.queue.slot_bytes = 64;
  return c;
}

struct RunOutcome {
  core::PoolRunReport report;
  net::FabricStats fabric;
  net::Nanos duration = 0;
};

RunOutcome run_uts(core::QueueKind kind, int npes,
                   const workloads::UtsParams& p) {
  pgas::Runtime rt(rcfg(npes));
  core::TaskRegistry reg;
  workloads::UtsBenchmark uts(reg, p);
  core::TaskPool pool(rt, reg, pcfg(kind));
  rt.fabric().reset_stats();
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });
  return {pool.report(), rt.fabric().total_stats(), rt.last_run_duration()};
}

workloads::UtsParams uts_params() {
  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = 10;
  p.node_compute_ns = 150;
  return p;
}

TEST(Integration, BothQueuesVisitTheSameTree) {
  const auto truth = workloads::uts_sequential_count(uts_params());
  const RunOutcome sdc = run_uts(core::QueueKind::kSdc, 8, uts_params());
  const RunOutcome sws = run_uts(core::QueueKind::kSws, 8, uts_params());
  EXPECT_EQ(sdc.report.total.tasks_executed, truth.nodes);
  EXPECT_EQ(sws.report.total.tasks_executed, truth.nodes);
}

TEST(Integration, SwsStealsUseHalfTheCommunication) {
  // The paper's core claim, measured over a whole benchmark run: average
  // remote blocking ops per successful steal ≈ 5 (SDC) vs 2 (SWS).
  const RunOutcome sdc = run_uts(core::QueueKind::kSdc, 8, uts_params());
  const RunOutcome sws = run_uts(core::QueueKind::kSws, 8, uts_params());
  ASSERT_GT(sdc.report.total.steals_ok, 10u);
  ASSERT_GT(sws.report.total.steals_ok, 10u);

  // Isolate steal traffic is impossible from totals alone (collectives and
  // termination also communicate), so compare the per-steal *time*, which
  // the pool attributes precisely.
  const double sdc_per_steal =
      static_cast<double>(sdc.report.total.steal_time_ns) /
      static_cast<double>(sdc.report.total.steals_ok);
  const double sws_per_steal =
      static_cast<double>(sws.report.total.steal_time_ns) /
      static_cast<double>(sws.report.total.steals_ok);
  EXPECT_LT(sws_per_steal, 0.75 * sdc_per_steal)
      << "SWS steals must be substantially cheaper (paper: ~2x)";
}

TEST(Integration, SwsSearchIsCheaperPerAttempt) {
  // Failed discovery: one 64-bit AMO (SWS) vs lock + metadata fetch (SDC).
  const RunOutcome sdc = run_uts(core::QueueKind::kSdc, 8, uts_params());
  const RunOutcome sws = run_uts(core::QueueKind::kSws, 8, uts_params());
  const auto failed = [](const RunOutcome& r) {
    return static_cast<double>(r.report.total.steal_attempts -
                               r.report.total.steals_ok);
  };
  if (failed(sdc) > 20 && failed(sws) > 20) {
    const double sdc_cost =
        static_cast<double>(sdc.report.total.search_time_ns) / failed(sdc);
    const double sws_cost =
        static_cast<double>(sws.report.total.search_time_ns) / failed(sws);
    EXPECT_LT(sws_cost, sdc_cost);
  }
}

TEST(Integration, TaskConservationAtScale) {
  // 32 PEs, a ~27k-node tree: every node visited exactly once, on both
  // queues, with heavy concurrent stealing.
  workloads::UtsParams p;
  p.b0 = 6;
  p.gen_mx = 9;
  p.root_seed = 3;
  p.node_compute_ns = 100;
  const auto truth = workloads::uts_sequential_count(p);
  for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
    const RunOutcome r = run_uts(kind, 32, p);
    EXPECT_EQ(r.report.total.tasks_executed, truth.nodes);
    EXPECT_GT(r.report.total.steals_ok, 30u);
  }
}

TEST(Integration, VirtualRuntimeAccountsForAllCompute) {
  // Ideal lower bound: total charged compute / P ≤ measured runtime.
  workloads::BpcParams bp;
  bp.consumers_per_producer = 16;
  bp.depth = 8;
  bp.consumer_ns = 100'000;
  bp.producer_ns = 10'000;
  pgas::Runtime rt(rcfg(4));
  core::TaskRegistry reg;
  workloads::BpcBenchmark bpc(reg, bp);
  core::TaskPool pool(rt, reg, pcfg(core::QueueKind::kSws));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { bpc.seed(w); });
  });
  const core::PoolRunReport r = pool.report();
  EXPECT_GE(r.total.run_time_ns, bp.total_compute_ns() / 4);
  EXPECT_EQ(r.total.compute_time_ns, bp.total_compute_ns());
}

TEST(Integration, RealTimeBackendStress) {
  // Preemptive threads + real atomics: run both queues on a busy tree and
  // verify conservation. This is the test that would catch protocol races
  // the deterministic sequencer cannot produce.
  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = 8;
  p.node_compute_ns = 2000;
  const auto truth = workloads::uts_sequential_count(p);
  for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
    pgas::RuntimeConfig rc = rcfg(4);
    rc.mode = pgas::TimeMode::kReal;
    pgas::Runtime rt(rc);
    core::TaskRegistry reg;
    workloads::UtsBenchmark uts(reg, p);
    core::TaskPool pool(rt, reg, pcfg(kind));
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });
    EXPECT_EQ(pool.report().total.tasks_executed, truth.nodes)
        << (kind == core::QueueKind::kSdc ? "SDC" : "SWS");
  }
}

TEST(Integration, EpochsAblationBothComplete) {
  // §4.2: epochs off forces acquire to wait for in-flight steals; both
  // configurations must still be correct.
  const auto truth = workloads::uts_sequential_count(uts_params());
  for (const bool epochs : {true, false}) {
    pgas::Runtime rt(rcfg(8));
    core::TaskRegistry reg;
    workloads::UtsBenchmark uts(reg, uts_params());
    core::PoolConfig pc = pcfg(core::QueueKind::kSws);
    pc.sws.epochs = epochs;
    core::TaskPool pool(rt, reg, pc);
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });
    EXPECT_EQ(pool.report().total.tasks_executed, truth.nodes)
        << "epochs=" << epochs;
  }
}

TEST(Integration, DampingAblationBothComplete) {
  const auto truth = workloads::uts_sequential_count(uts_params());
  for (const bool damping : {true, false}) {
    pgas::Runtime rt(rcfg(8));
    core::TaskRegistry reg;
    workloads::UtsBenchmark uts(reg, uts_params());
    core::PoolConfig pc = pcfg(core::QueueKind::kSws);
    pc.sws.damping = damping;
    core::TaskPool pool(rt, reg, pc);
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });
    EXPECT_EQ(pool.report().total.tasks_executed, truth.nodes)
        << "damping=" << damping;
  }
}

}  // namespace
}  // namespace sws
