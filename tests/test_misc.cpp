// Smaller cross-cutting cases: fabric run-boundary semantics, scheduler
// config knobs, enum name tables, and odds and ends.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "sws.hpp"

namespace sws {
namespace {

TEST(FabricNewRun, DrainsPendingEffectsInsteadOfDroppingThem) {
  net::VirtualTimeModel tm(2);
  net::Fabric fab(tm, net::NetworkModel{}, 2);
  std::vector<std::vector<std::byte>> arenas;
  for (int pe = 0; pe < 2; ++pe) {
    arenas.emplace_back(64, std::byte{0});
    fab.register_arena(pe, arenas.back().data(), 64);
  }
  tm.reset(2);
  std::vector<std::thread> ts;
  for (int pe = 0; pe < 2; ++pe)
    ts.emplace_back([&, pe] {
      tm.pe_begin(pe);
      if (pe == 0) fab.nbi_amo_add(0, 1, 0, 42);  // never quiesced
      tm.pe_end(pe);
    });
  for (auto& t : ts) t.join();
  ASSERT_EQ(fab.pending(0), 1) << "effect still parked at run end";
  fab.new_run();
  EXPECT_EQ(fab.pending(0), 0);
  std::uint64_t v;
  std::memcpy(&v, arenas[1].data(), 8);
  EXPECT_EQ(v, 42u) << "the effect must be applied, not lost";
}

TEST(OpKindNames, AllDistinctAndNamed) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < net::kNumOpKinds; ++i) {
    const std::string n = net::op_kind_name(static_cast<net::OpKind>(i));
    EXPECT_NE(n, "?");
    EXPECT_TRUE(names.insert(n).second) << n;
  }
}

TEST(TraceKindNames, AllDistinctAndNamed) {
  std::set<std::string> names;
  for (int i = 0; i <= static_cast<int>(core::TraceKind::kTerminated); ++i) {
    const std::string n =
        core::trace_kind_name(static_cast<core::TraceKind>(i));
    EXPECT_NE(n, "?");
    EXPECT_TRUE(names.insert(n).second) << n;
  }
}

TEST(SummaryReset, ClearsEverything) {
  Summary s;
  s.add(5);
  s.add(10);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

// -------------------------------------------------- scheduler config knobs

struct Fan {
  core::TaskFnId fn = 0;
  explicit Fan(core::TaskRegistry& reg) {
    fn = reg.register_fn("fan", [this](core::Worker& w,
                                       std::span<const std::byte> b) {
      std::uint32_t d;
      std::memcpy(&d, b.data(), 4);
      w.compute(3000);
      if (d > 0)
        for (int i = 0; i < 4; ++i)
          w.spawn(core::Task::of(fn, d - 1));
    });
  }
};

core::PoolRunReport run_fan(const core::PoolConfig& pc, std::uint32_t depth) {
  pgas::RuntimeConfig rc;
  rc.npes = 4;
  rc.heap_bytes = 2 << 20;
  pgas::Runtime rt(rc);
  core::TaskRegistry reg;
  Fan fan(reg);
  core::TaskPool pool(rt, reg, pc);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) {
      if (w.pe() == 0) w.spawn(core::Task::of(fan.fn, depth));
    });
  });
  return pool.report();
}

TEST(SchedulerKnobs, TermCheckIntervalOneStillCorrect) {
  core::PoolConfig pc;
  pc.queue.slot_bytes = 32;
  pc.steal.term_check_interval = 1;
  EXPECT_EQ(run_fan(pc, 5).total.tasks_executed, 1365u);
}

TEST(SchedulerKnobs, LargeTermCheckIntervalStillTerminates) {
  core::PoolConfig pc;
  pc.queue.slot_bytes = 32;
  pc.steal.term_check_interval = 64;
  EXPECT_EQ(run_fan(pc, 5).total.tasks_executed, 1365u);
}

TEST(SchedulerKnobs, HighReleaseThresholdReducesReleases) {
  core::PoolConfig lo, hi;
  lo.queue.slot_bytes = hi.queue.slot_bytes = 32;
  lo.release_threshold = 2;
  hi.release_threshold = 64;

  std::uint64_t releases[2];
  int i = 0;
  for (const auto* pc : {&lo, &hi}) {
    pgas::RuntimeConfig rc;
    rc.npes = 4;
    rc.heap_bytes = 2 << 20;
    pgas::Runtime rt(rc);
    core::TaskRegistry reg;
    Fan fan(reg);
    core::TaskPool pool(rt, reg, *pc);
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) {
        if (w.pe() == 0) w.spawn(core::Task::of(fan.fn, std::uint32_t{5}));
      });
    });
    EXPECT_EQ(pool.report().total.tasks_executed, 1365u);
    std::uint64_t rel = 0;
    for (int pe = 0; pe < 4; ++pe) rel += pool.queue().op_stats(pe).releases;
    releases[i++] = rel;
  }
  EXPECT_LT(releases[1], releases[0])
      << "a higher threshold must release less often";
}

TEST(SchedulerKnobs, ZeroBackoffStillTerminates) {
  core::PoolConfig pc;
  pc.queue.slot_bytes = 32;
  pc.steal.backoff_min_ns = 0;
  EXPECT_EQ(run_fan(pc, 4).total.tasks_executed, 341u);
}

TEST(RuntimeDuration, TracksLongestPe) {
  pgas::RuntimeConfig rc;
  rc.npes = 3;
  rc.heap_bytes = 1 << 20;
  pgas::Runtime rt(rc);
  rt.run([&](pgas::PeContext& ctx) {
    if (ctx.pe() == 2) ctx.compute(123'456);
  });
  EXPECT_GE(rt.last_run_duration(), 123'456u);
}

TEST(PeContextLocal, SetThenLocalLoadRoundTrips) {
  pgas::RuntimeConfig rc;
  rc.npes = 2;
  rc.heap_bytes = 1 << 20;
  pgas::Runtime rt(rc);
  const pgas::SymPtr p = rt.heap().alloc(8);
  rt.run([&](pgas::PeContext& ctx) {
    ctx.set(ctx.pe(), p, 1000 + static_cast<std::uint64_t>(ctx.pe()));
    EXPECT_EQ(ctx.local_load(p), 1000u + static_cast<std::uint64_t>(ctx.pe()));
  });
}

TEST(SymPtrArithmetic, PlusOffsetsBytes) {
  const pgas::SymPtr p{100};
  EXPECT_EQ(p.plus(28).off, 128u);
  EXPECT_FALSE(p.is_null());
  EXPECT_TRUE(pgas::SymPtr{}.is_null());
  EXPECT_TRUE((pgas::SymPtr{100} == pgas::SymPtr{100}));
}

}  // namespace
}  // namespace sws
