// Chaos suite for the fault-injection subsystem: injector unit semantics,
// fabric-level fault effects, and full-pool runs under a fault-plan
// matrix (drops + duplicates, latency spikes, slow windows) on both queue
// protocols and both time backends. The invariant everywhere: every task
// executes exactly once and termination never misfires, no matter what
// the fabric does to individual messages.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "net/topology.hpp"
#include "obs/trace_analysis.hpp"
#include "sws.hpp"

namespace sws {
namespace {

using net::FaultInjector;
using net::FaultPlan;
using net::Nanos;
using net::OpKind;
using net::Topology;
using net::TopologySpec;

// ---------------------------------------------------------------- plans

FaultPlan drop_dup_plan() {
  FaultPlan f;
  f.drop_rate = 0.10;
  f.dup_rate = 0.10;
  f.retransmit_ns = 20'000;
  f.dup_delay_ns = 5'000;
  return f;
}

FaultPlan slow_pe_plan(Nanos until_ns) {
  FaultPlan f;
  f.slow_windows.push_back({/*pe=*/1, /*from_ns=*/0, until_ns,
                            /*factor=*/8.0});
  return f;
}

FaultPlan combined_plan() {
  FaultPlan f = drop_dup_plan();
  f.spike_rate = 0.10;
  f.spike_factor = 10.0;
  f.jitter = 0.5;
  f.slow_windows.push_back({1, 0, 2'000'000, 4.0});
  return f;
}

// ------------------------------------------------------- injector units

TEST(FaultPlanTest, DefaultPlanIsInert) {
  const FaultPlan f;
  EXPECT_FALSE(f.enabled());
  EXPECT_FALSE(f.spikes_enabled());
  EXPECT_FALSE(f.delivery_faults_enabled());
  EXPECT_FALSE(f.duplicates_possible());
}

TEST(FaultPlanTest, EachKnobEnablesThePlan) {
  FaultPlan f;
  f.spike_rate = 0.1;
  EXPECT_TRUE(f.enabled());
  f = FaultPlan{};
  f.drop_rate = 0.1;
  EXPECT_TRUE(f.enabled());
  f = FaultPlan{};
  f.dup_rate = 0.1;
  EXPECT_TRUE(f.enabled());
  EXPECT_TRUE(f.duplicates_possible());
  f = FaultPlan{};
  f.jitter = 0.1;
  EXPECT_TRUE(f.enabled());
  f = FaultPlan{};
  f.slow_windows.push_back({0, 0, 100, 2.0});
  EXPECT_TRUE(f.enabled());
}

TEST(FaultInjectorTest, CertainSpikeChargesFactorMinusOne) {
  FaultPlan f;
  f.spike_rate = 1.0;
  f.spike_factor = 10.0;
  FaultInjector inj(f, 2);
  const Nanos base = 1000;
  EXPECT_EQ(inj.charge_penalty(0, 1, OpKind::kGet, 0, base), 9 * base);
  EXPECT_EQ(inj.stats(0).spikes, 1u);
  EXPECT_EQ(inj.stats(0).spike_extra_ns, 9000u);
}

TEST(FaultInjectorTest, SpikeMaskAndTargetFilter) {
  FaultPlan f;
  f.spike_rate = 1.0;
  f.spike_op_mask = net::op_bit(OpKind::kGet);
  f.spike_target = 1;
  FaultInjector inj(f, 3);
  EXPECT_GT(inj.charge_penalty(0, 1, OpKind::kGet, 0, 1000), 0);
  EXPECT_EQ(inj.charge_penalty(0, 1, OpKind::kPut, 0, 1000), 0);
  EXPECT_EQ(inj.charge_penalty(0, 2, OpKind::kGet, 0, 1000), 0);
}

TEST(FaultInjectorTest, SlowWindowAppliesOnlyInsideItsInterval) {
  FaultInjector inj(slow_pe_plan(/*until_ns=*/10'000), 2);
  // Wrong PE: no penalty.
  EXPECT_EQ(inj.charge_penalty(0, 1, OpKind::kGet, 500, 1000), 0);
  // Right PE, inside the window: (factor - 1) * base.
  EXPECT_EQ(inj.charge_penalty(1, 0, OpKind::kGet, 500, 1000), 7000);
  // Right PE, after the window closed.
  EXPECT_EQ(inj.charge_penalty(1, 0, OpKind::kGet, 10'000, 1000), 0);
  EXPECT_EQ(inj.stats(1).slow_hits, 1u);
}

TEST(FaultInjectorTest, PartitionPenalizesOnlyCrossingOps) {
  // Node 1 of a 2x2 machine ({2, 3}) is cut off for [0, 100us).
  const Topology topo(TopologySpec::two_level(2), 4);
  const FaultPlan plan = net::partitioned_node_plan(topo, 1, 0, 100'000);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_TRUE(plan.enabled());
  FaultInjector inj(plan, 4);
  const double factor = plan.partitions[0].charge_factor;
  // Crossing the cut, both directions: (charge_factor - 1) * base.
  EXPECT_EQ(inj.charge_penalty(0, 2, OpKind::kGet, 50, 1000),
            static_cast<Nanos>((factor - 1.0) * 1000));
  EXPECT_EQ(inj.charge_penalty(3, 1, OpKind::kGet, 50, 1000),
            static_cast<Nanos>((factor - 1.0) * 1000));
  // Entirely inside / entirely outside the group: untouched.
  EXPECT_EQ(inj.charge_penalty(2, 3, OpKind::kGet, 50, 1000), 0);
  EXPECT_EQ(inj.charge_penalty(0, 1, OpKind::kGet, 50, 1000), 0);
  // After the window closes: untouched.
  EXPECT_EQ(inj.charge_penalty(0, 2, OpKind::kGet, 100'000, 1000), 0);
  // Crossing deliveries land late, deterministically (no random draw).
  const auto d = inj.delivery_verdict(0, 2, OpKind::kNbiAmoAdd, 50, 1'800);
  EXPECT_EQ(d.extra_delay, plan.partitions[0].delivery_extra_ns);
  const auto inside = inj.delivery_verdict(2, 3, OpKind::kNbiAmoAdd, 50, 1'800);
  EXPECT_EQ(inside.extra_delay, 0);
  EXPECT_GE(inj.total_stats().partition_hits, 3u);
}

TEST(FaultInjectorTest, SlowGroupCoversEveryMemberOfTheGroup) {
  // slow_rack on the outermost tier of "2x4": rack 1 = PEs {4..7}.
  const Topology topo(TopologySpec::parse("2x4"), 8);
  const FaultPlan plan = net::slow_rack_plan(topo, 1, 0, 10'000, 8.0);
  EXPECT_EQ(plan.slow_windows.size(), 4u);
  FaultInjector inj(plan, 8);
  for (int pe = 4; pe < 8; ++pe)
    EXPECT_EQ(inj.charge_penalty(pe, 0, OpKind::kGet, 500, 1000), 7000)
        << "pe " << pe;
  for (int pe = 0; pe < 4; ++pe)
    EXPECT_EQ(inj.charge_penalty(pe, 5, OpKind::kGet, 500, 1000), 0)
        << "pe " << pe;
}

TEST(FaultInjectorTest, CertainDropPaysRetransmitDelays) {
  FaultPlan f;
  f.drop_rate = 1.0;  // every transmission lost: pays the full bound
  f.retransmit_ns = 1000;
  f.max_retransmits = 5;
  FaultInjector inj(f, 1);
  const auto d = inj.delivery_verdict(0, 0, OpKind::kNbiAmoAdd, 100, 1'800);
  EXPECT_EQ(d.extra_delay, 5 * 1000);
  EXPECT_FALSE(d.duplicate);
  EXPECT_EQ(inj.stats(0).drops, 5u);
}

TEST(FaultInjectorTest, CertainDupFlagsADuplicate) {
  FaultPlan f;
  f.dup_rate = 1.0;
  f.dup_delay_ns = 777;
  FaultInjector inj(f, 1);
  const auto d = inj.delivery_verdict(0, 0, OpKind::kNbiAmoSet, 100, 1'800);
  EXPECT_TRUE(d.duplicate);
  EXPECT_EQ(d.dup_extra_delay, 777);
  EXPECT_EQ(inj.stats(0).dups, 1u);
}

TEST(FaultInjectorTest, DeliveryMaskExemptsOpKinds) {
  FaultPlan f;
  f.drop_rate = 1.0;
  f.dup_rate = 1.0;
  f.delivery_op_mask = net::op_bit(OpKind::kNbiPut);
  FaultInjector inj(f, 1);
  const auto d = inj.delivery_verdict(0, 0, OpKind::kNbiAmoAdd, 100, 1'800);
  EXPECT_EQ(d.extra_delay, 0);
  EXPECT_FALSE(d.duplicate);
}

TEST(FaultInjectorTest, NewRunReproducesTheDecisionSequence) {
  FaultInjector inj(combined_plan(), 4);
  std::vector<Nanos> first;
  for (int i = 0; i < 64; ++i) {
    const auto d = inj.delivery_verdict(2, 0, OpKind::kNbiAmoAdd, 500, 1'800);
    first.push_back(d.extra_delay + (d.duplicate ? 1 : 0));
  }
  inj.new_run();
  for (int i = 0; i < 64; ++i) {
    const auto d = inj.delivery_verdict(2, 0, OpKind::kNbiAmoAdd, 500, 1'800);
    EXPECT_EQ(first[static_cast<std::size_t>(i)],
              d.extra_delay + (d.duplicate ? 1 : 0))
        << "draw " << i;
  }
}

TEST(FaultInjectorTest, PerPeStreamsAreIndependent) {
  // Interleaving PE 1's draws must not perturb PE 0's sequence.
  FaultInjector a(drop_dup_plan(), 2);
  FaultInjector b(drop_dup_plan(), 2);
  for (int i = 0; i < 32; ++i) {
    const auto da = a.delivery_verdict(0, 1, OpKind::kNbiAmoAdd, 500, 1'800);
    (void)b.delivery_verdict(1, 0, OpKind::kNbiAmoAdd, 500, 1'800);
    const auto db = b.delivery_verdict(0, 1, OpKind::kNbiAmoAdd, 500, 1'800);
    EXPECT_EQ(da.extra_delay, db.extra_delay) << "draw " << i;
    EXPECT_EQ(da.duplicate, db.duplicate) << "draw " << i;
  }
}

TEST(FaultInjectorTest, TotalStatsMergesAllPes) {
  FaultPlan f;
  f.dup_rate = 1.0;
  FaultInjector inj(f, 3);
  (void)inj.delivery_verdict(0, 1, OpKind::kNbiAmoAdd, 100, 1'800);
  (void)inj.delivery_verdict(2, 1, OpKind::kNbiAmoAdd, 100, 1'800);
  EXPECT_EQ(inj.total_stats().dups, 2u);
}

// ------------------------------------------------------- fabric effects

class FaultFabricTest : public ::testing::Test {
 protected:
  static constexpr int kPes = 2;
  static constexpr std::size_t kArena = 4096;

  void build(const FaultPlan& plan) {
    net::NetworkParams params;
    params.faults = plan;
    time_ = std::make_unique<net::VirtualTimeModel>(kPes);
    fabric_ = std::make_unique<net::Fabric>(*time_, net::NetworkModel(params),
                                            kPes);
    arenas_.clear();
    for (int pe = 0; pe < kPes; ++pe) {
      arenas_.emplace_back(kArena, std::byte{0});
      fabric_->register_arena(pe, arenas_.back().data(), kArena);
    }
  }

  void run(const std::function<void(int)>& body) {
    time_->reset(kPes);
    std::vector<std::thread> ts;
    for (int pe = 0; pe < kPes; ++pe)
      ts.emplace_back([&, pe] {
        time_->pe_begin(pe);
        body(pe);
        time_->pe_end(pe);
      });
    for (auto& t : ts) t.join();
  }

  std::uint64_t word_at(int pe, std::uint64_t off) {
    std::uint64_t v;
    std::memcpy(&v, arenas_[static_cast<std::size_t>(pe)].data() + off, 8);
    return v;
  }

  std::unique_ptr<net::VirtualTimeModel> time_;
  std::vector<std::vector<std::byte>> arenas_;
  std::unique_ptr<net::Fabric> fabric_;
};

TEST_F(FaultFabricTest, DisabledPlanInstantiatesNoInjector) {
  build(FaultPlan{});
  EXPECT_FALSE(fabric_->faults_enabled());
  EXPECT_EQ(fabric_->fault_injector(), nullptr);
  EXPECT_EQ(fabric_->fault_stats().drops, 0u);
}

TEST_F(FaultFabricTest, CertainSpikeStretchesBlockingCharge) {
  FaultPlan f;
  f.spike_rate = 1.0;
  f.spike_factor = 10.0;
  f.spike_op_mask = net::op_bit(OpKind::kGet);
  build(f);
  const net::NetworkModel model{};
  run([&](int pe) {
    if (pe != 0) return;
    const Nanos t0 = time_->now(0);
    std::uint64_t v = 0;
    fabric_->get(0, 1, 0, &v, 8);
    EXPECT_EQ(time_->now(0) - t0, 10 * model.cost(OpKind::kGet, 8, 1));
  });
  EXPECT_EQ(fabric_->fault_stats().spikes, 1u);
}

TEST_F(FaultFabricTest, DroppedNbiIsRetransmittedNotLost) {
  FaultPlan f;
  f.drop_rate = 1.0;  // always pays the full retransmit bound
  f.retransmit_ns = 50'000;
  f.max_retransmits = 3;
  build(f);
  const net::NetworkModel model{};
  run([&](int pe) {
    if (pe != 0) return;
    fabric_->nbi_amo_add(0, 1, 40, 9);
    EXPECT_EQ(fabric_->pending(0), 1);
    // The clean deadline passes: still in flight (being retransmitted).
    time_->advance(0, model.delivery_delay(8, 1) + 1);
    EXPECT_EQ(fabric_->pending(0), 1);
    EXPECT_EQ(word_at(1, 40), 0u);
    // quiet() must cover the retransmit tail and deliver exactly once.
    fabric_->quiet(0);
    EXPECT_EQ(fabric_->pending(0), 0);
    EXPECT_EQ(word_at(1, 40), 9u);
  });
  EXPECT_EQ(fabric_->fault_stats().drops, 3u);
}

TEST_F(FaultFabricTest, DuplicatedNbiAddDeliversItsEffectTwice) {
  FaultPlan f;
  f.dup_rate = 1.0;
  build(f);
  run([&](int pe) {
    if (pe != 0) return;
    fabric_->nbi_amo_add(0, 1, 48, 5);
    EXPECT_EQ(fabric_->pending(0), 2) << "both copies count as pending";
    EXPECT_EQ(fabric_->pending_to(1), 2);
    fabric_->quiet(0);
    EXPECT_EQ(fabric_->pending_to(1), 0);
    EXPECT_EQ(word_at(1, 48), 10u) << "a duplicated add lands twice";
  });
  EXPECT_EQ(fabric_->fault_stats().dups, 1u);
}

TEST_F(FaultFabricTest, DuplicatedNbiSetIsIdempotent) {
  FaultPlan f;
  f.dup_rate = 1.0;
  build(f);
  run([&](int pe) {
    if (pe != 0) return;
    fabric_->nbi_amo_set(0, 1, 56, 42);
    EXPECT_EQ(fabric_->pending(0), 2);
    fabric_->quiet(0);
    EXPECT_EQ(word_at(1, 56), 42u) << "set twice is still the value";
  });
}

TEST_F(FaultFabricTest, NewRunReproducesFaultyDeliverySchedule) {
  build(combined_plan());
  std::vector<std::uint64_t> first, second;
  auto storm = [&](std::vector<std::uint64_t>& log) {
    run([&](int pe) {
      if (pe != 0) return;
      for (int i = 0; i < 100; ++i) fabric_->nbi_amo_add(0, 1, 64, 1);
      fabric_->quiet(0);
      log.push_back(static_cast<std::uint64_t>(time_->now(0)));
    });
    log.push_back(word_at(1, 64));
  };
  storm(first);
  EXPECT_GE(first.back(), 100u) << "every add lands at least once";
  fabric_->new_run();
  std::memset(arenas_[1].data(), 0, kArena);
  storm(second);
  EXPECT_EQ(first, second) << "same plan + new_run => same virtual schedule";
}

// ------------------------------------------------- full-pool chaos runs

pgas::RuntimeConfig chaos_rcfg(int npes, const FaultPlan& plan,
                               pgas::TimeMode mode) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 8 << 20;
  c.seed = 42;
  c.mode = mode;
  c.net.faults = plan;
  return c;
}

core::PoolConfig chaos_pcfg(core::QueueKind kind) {
  core::PoolConfig c;
  c.kind = kind;
  c.queue.capacity = 16384;
  c.queue.slot_bytes = 48;
  return c;
}

struct ChaosOutcome {
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  net::FaultStats faults;
  net::Nanos duration = 0;
};

ChaosOutcome run_uts_chaos(core::QueueKind kind, pgas::TimeMode mode,
                           const FaultPlan& plan,
                           const workloads::UtsParams& p) {
  pgas::Runtime rt(chaos_rcfg(mode == pgas::TimeMode::kVirtual ? 8 : 4, plan,
                              mode));
  core::TaskRegistry reg;
  workloads::UtsBenchmark uts(reg, p);
  core::TaskPool pool(rt, reg, chaos_pcfg(kind));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });
  const auto r = pool.report();
  return {r.total.tasks_executed, r.total.steals_ok, rt.fabric().fault_stats(),
          rt.last_run_duration()};
}

ChaosOutcome run_bpc_chaos(core::QueueKind kind, pgas::TimeMode mode,
                           const FaultPlan& plan, const workloads::BpcParams& p) {
  pgas::Runtime rt(chaos_rcfg(mode == pgas::TimeMode::kVirtual ? 8 : 4, plan,
                              mode));
  core::TaskRegistry reg;
  workloads::BpcBenchmark bpc(reg, p);
  core::TaskPool pool(rt, reg, chaos_pcfg(kind));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { bpc.seed(w); });
  });
  const auto r = pool.report();
  return {r.total.tasks_executed, r.total.steals_ok, rt.fabric().fault_stats(),
          rt.last_run_duration()};
}

/// ~1e5-node tree for the acceptance-scale chaos runs (virtual backend).
workloads::UtsParams big_uts() {
  workloads::UtsParams p;
  p.b0 = 5;
  p.gen_mx = 12;  // 95,651 nodes with root_seed 19
  p.node_compute_ns = 110;
  return p;
}

/// Smaller tree for the real-time backend (latencies are real sleeps).
workloads::UtsParams small_uts() {
  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = 9;
  p.node_compute_ns = 500;
  return p;
}

workloads::BpcParams chaos_bpc() {
  workloads::BpcParams p;
  p.consumers_per_producer = 32;
  p.depth = 30;
  p.consumer_ns = 50'000;
  p.producer_ns = 10'000;
  return p;
}

class ChaosMatrix
    : public ::testing::TestWithParam<std::tuple<core::QueueKind, bool>> {
 protected:
  core::QueueKind kind() const { return std::get<0>(GetParam()); }
  pgas::TimeMode mode() const {
    return std::get<1>(GetParam()) ? pgas::TimeMode::kVirtual
                                   : pgas::TimeMode::kReal;
  }
  bool is_virtual() const { return std::get<1>(GetParam()); }
};

TEST_P(ChaosMatrix, UtsSurvivesDropsDuplicatesAndSpikes) {
  // The acceptance bar: >= 10% drop + 10% dup and 10x spikes, zero lost
  // or double-executed tasks.
  FaultPlan plan = drop_dup_plan();
  plan.spike_rate = 0.10;
  plan.spike_factor = 10.0;
  const workloads::UtsParams p = is_virtual() ? big_uts() : small_uts();
  const auto truth = workloads::uts_sequential_count(p);
  const ChaosOutcome r = run_uts_chaos(kind(), mode(), plan, p);
  EXPECT_EQ(r.tasks, truth.nodes)
      << "lost or double-executed tasks under drop+dup+spikes";
  EXPECT_GT(r.steals, 0u);
  EXPECT_GT(r.faults.drops + r.faults.dups + r.faults.spikes, 0u)
      << "the plan must actually have fired";
}

TEST_P(ChaosMatrix, BpcSurvivesDropsDuplicatesAndSpikes) {
  FaultPlan plan = drop_dup_plan();
  plan.spike_rate = 0.10;
  plan.spike_factor = 10.0;
  const workloads::BpcParams p = chaos_bpc();
  const ChaosOutcome r = run_bpc_chaos(kind(), mode(), plan, p);
  EXPECT_EQ(r.tasks, p.expected_tasks());
  EXPECT_GT(r.faults.drops + r.faults.dups + r.faults.spikes, 0u);
}

TEST_P(ChaosMatrix, UtsSurvivesCombinedPlanWithSlowWindows) {
  const workloads::UtsParams p = small_uts();
  const auto truth = workloads::uts_sequential_count(p);
  const ChaosOutcome r = run_uts_chaos(kind(), mode(), combined_plan(), p);
  EXPECT_EQ(r.tasks, truth.nodes);
}

INSTANTIATE_TEST_SUITE_P(
    QueuesAndBackends, ChaosMatrix,
    ::testing::Combine(::testing::Values(core::QueueKind::kSws,
                                         core::QueueKind::kSdc),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == core::QueueKind::kSws
                             ? "Sws"
                             : "Sdc") +
             (std::get<1>(info.param) ? "Virtual" : "Real");
    });

// ----------------------------------------- topology-preset chaos runs

ChaosOutcome run_uts_on_net(core::QueueKind kind, const net::NetworkParams& net,
                            const workloads::UtsParams& p) {
  pgas::RuntimeConfig c;
  c.npes = 8;
  c.heap_bytes = 8 << 20;
  c.seed = 42;
  c.net = net;
  pgas::Runtime rt(c);
  core::TaskRegistry reg;
  workloads::UtsBenchmark uts(reg, p);
  core::TaskPool pool(rt, reg, chaos_pcfg(kind));
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });
  const auto r = pool.report();
  return {r.total.tasks_executed, r.total.steals_ok, rt.fabric().fault_stats(),
          rt.last_run_duration()};
}

TEST(ChaosTopologyPresets, UtsDegradesGracefullyUnderSlowRack) {
  // Node 1 of a two-level 8-PE machine runs 4x slow for its first 2 ms.
  // Graceful degradation = every task still executes exactly once and the
  // preset demonstrably fired; work shifts away, nothing is lost.
  const workloads::UtsParams p = small_uts();
  const auto truth = workloads::uts_sequential_count(p);
  const Topology topo(TopologySpec::two_level(4), 8);
  net::NetworkParams net = net::NetworkParams::two_level(4);
  net.faults = net::slow_rack_plan(topo, 1, 0, 2'000'000);
  for (const auto kind : {core::QueueKind::kSws, core::QueueKind::kSdc}) {
    const ChaosOutcome r = run_uts_on_net(kind, net, p);
    EXPECT_EQ(r.tasks, truth.nodes);
    EXPECT_GT(r.faults.slow_hits, 0u) << "the slow window never fired";
    EXPECT_GT(r.faults.slow_extra_ns, 0u);
  }
}

TEST(ChaosTopologyPresets, UtsDegradesGracefullyUnderPartitionedNode) {
  // Node 1 is cut off from the rest of the machine for [0, 1.5 ms): ops
  // crossing the cut pay 8x and deliveries land 40 us late, yet the run
  // still executes the full tree.
  const workloads::UtsParams p = small_uts();
  const auto truth = workloads::uts_sequential_count(p);
  const Topology topo(TopologySpec::two_level(4), 8);
  net::NetworkParams net = net::NetworkParams::two_level(4);
  net.faults = net::partitioned_node_plan(topo, 1, 0, 1'500'000);
  for (const auto kind : {core::QueueKind::kSws, core::QueueKind::kSdc}) {
    const ChaosOutcome r = run_uts_on_net(kind, net, p);
    EXPECT_EQ(r.tasks, truth.nodes);
    EXPECT_GT(r.faults.partition_hits, 0u) << "the partition never fired";
  }
}

TEST(ChaosTopologyPresets, PresetRunsAreBitReproducible) {
  const workloads::UtsParams p = small_uts();
  const Topology topo(TopologySpec::two_level(4), 8);
  net::NetworkParams net = net::NetworkParams::two_level(4);
  net.faults = net::partitioned_node_plan(topo, 1, 0, 1'500'000);
  const ChaosOutcome a = run_uts_on_net(core::QueueKind::kSws, net, p);
  const ChaosOutcome b = run_uts_on_net(core::QueueKind::kSws, net, p);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.faults.partition_hits, b.faults.partition_hits);
  EXPECT_EQ(a.faults.partition_extra_ns, b.faults.partition_extra_ns);
}

TEST(ChaosDeterminism, FaultyVirtualRunsAreBitReproducible) {
  // Faulty runs must be exactly as deterministic as clean ones: same
  // plan, same seed, same virtual duration and fault counts, twice.
  const workloads::UtsParams p = small_uts();
  for (const auto kind : {core::QueueKind::kSws, core::QueueKind::kSdc}) {
    const ChaosOutcome a =
        run_uts_chaos(kind, pgas::TimeMode::kVirtual, combined_plan(), p);
    const ChaosOutcome b =
        run_uts_chaos(kind, pgas::TimeMode::kVirtual, combined_plan(), p);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.faults.drops, b.faults.drops);
    EXPECT_EQ(a.faults.dups, b.faults.dups);
    EXPECT_EQ(a.faults.spikes, b.faults.spikes);
  }
}

TEST(ChaosDeterminism, FaultsOffMatchesPlainRunExactly) {
  // A default FaultPlan must not change a single virtual nanosecond.
  const workloads::UtsParams p = small_uts();
  for (const auto kind : {core::QueueKind::kSws, core::QueueKind::kSdc}) {
    const ChaosOutcome off =
        run_uts_chaos(kind, pgas::TimeMode::kVirtual, FaultPlan{}, p);
    pgas::RuntimeConfig c;
    c.npes = 8;
    c.heap_bytes = 8 << 20;
    c.seed = 42;
    pgas::Runtime rt(c);  // no faults field touched at all
    core::TaskRegistry reg;
    workloads::UtsBenchmark uts(reg, p);
    core::TaskPool pool(rt, reg, chaos_pcfg(kind));
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });
    EXPECT_EQ(off.duration, rt.last_run_duration());
    EXPECT_EQ(off.tasks, pool.report().total.tasks_executed);
  }
}

TEST(ChaosTracing, SpanLifecycleSurvivesFaultInjection) {
  // Every steal/release/acquire span opened under the combined fault plan
  // (drops + dups + spikes + jitter + a slow PE) must still close exactly
  // once, and every traced fabric op must land inside an open span —
  // retransmits and duplicate deliveries never leak span state.
  const workloads::UtsParams p = small_uts();
  for (const auto kind : {core::QueueKind::kSws, core::QueueKind::kSdc}) {
    pgas::Runtime rt(
        chaos_rcfg(8, combined_plan(), pgas::TimeMode::kVirtual));
    core::TaskRegistry reg;
    workloads::UtsBenchmark uts(reg, p);
    core::PoolConfig pcfg = chaos_pcfg(kind);
    pcfg.trace.enable = true;
    pcfg.trace.events = std::size_t{1} << 18;  // must not wrap: no orphans
    core::TaskPool pool(rt, reg, pcfg);
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });

    const core::Tracer& t = pool.tracer();
    ASSERT_FALSE(t.truncated());
    for (const auto k : {core::TraceKind::kStealSpan,
                         core::TraceKind::kReleaseSpan,
                         core::TraceKind::kAcquireSpan})
      EXPECT_EQ(t.count(k, core::TracePhase::kBegin),
                t.count(k, core::TracePhase::kEnd));

    std::ostringstream os;
    pool.dump_trace_json(os);
    std::istringstream is(os.str());
    const obs::RunTrace trace = obs::parse_chrome_trace(is);
    EXPECT_EQ(trace.orphan_begins, 0u);
    EXPECT_EQ(trace.orphan_ends, 0u);
    EXPECT_EQ(trace.orphan_ops, 0u) << "fabric op outside any span";
    const obs::AnalyzeReport r = obs::analyze(trace);
    EXPECT_TRUE(r.violations.empty()) << r.violations.front();
    EXPECT_EQ(r.steals_ok, pool.report().total.steals_ok);
    EXPECT_GT(r.steals_ok, 0u);
  }
}

TEST(ChaosReRun, PoolSurvivesBackToBackFaultyRuns) {
  // Fabric::new_run() must clear injector state and leak no pending ops
  // between runs; the second run must match the first exactly.
  const workloads::UtsParams p = small_uts();
  const auto truth = workloads::uts_sequential_count(p);
  pgas::Runtime rt(chaos_rcfg(8, drop_dup_plan(), pgas::TimeMode::kVirtual));
  core::TaskRegistry reg;
  workloads::UtsBenchmark uts(reg, p);
  core::TaskPool pool(rt, reg, chaos_pcfg(core::QueueKind::kSws));
  net::Nanos first = 0;
  for (int run = 0; run < 2; ++run) {
    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
    });
    EXPECT_EQ(pool.report().total.tasks_executed, truth.nodes)
        << "run " << run;
    if (run == 0)
      first = rt.last_run_duration();
    else
      EXPECT_EQ(rt.last_run_duration(), first)
          << "new_run must reseed the fault streams";
  }
}

}  // namespace
}  // namespace sws
