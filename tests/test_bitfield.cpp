// Unit + property tests for the bit-packing primitives underlying the
// stealval.
#include <gtest/gtest.h>

#include "common/bitfield.hpp"
#include "common/rng.hpp"

namespace sws {
namespace {

using F0 = Field<0, 19>;
using F19 = Field<19, 19>;
using F38 = Field<38, 2>;
using F40 = Field<40, 24>;
using Full = Field<0, 64>;

TEST(Bitfield, MaxAndMask) {
  EXPECT_EQ(F0::kMax, (1u << 19) - 1);
  EXPECT_EQ(F38::kMax, 3u);
  EXPECT_EQ(F40::kMax, (1u << 24) - 1);
  EXPECT_EQ(Full::kMax, ~std::uint64_t{0});
  EXPECT_EQ(F0::kMask, std::uint64_t{(1u << 19) - 1});
  EXPECT_EQ(F40::kMask, std::uint64_t{(1u << 24) - 1} << 40);
}

TEST(Bitfield, FieldsArePairwiseDisjoint) {
  EXPECT_EQ(F0::kMask & F19::kMask, 0u);
  EXPECT_EQ(F19::kMask & F38::kMask, 0u);
  EXPECT_EQ(F38::kMask & F40::kMask, 0u);
  EXPECT_EQ(F0::kMask | F19::kMask | F38::kMask | F40::kMask,
            ~std::uint64_t{0});
}

TEST(Bitfield, SetThenGetRoundTrips) {
  std::uint64_t w = 0;
  w = F0::set(w, 12345);
  w = F19::set(w, 54321);
  w = F38::set(w, 2);
  w = F40::set(w, 999999);
  EXPECT_EQ(F0::get(w), 12345u);
  EXPECT_EQ(F19::get(w), 54321u);
  EXPECT_EQ(F38::get(w), 2u);
  EXPECT_EQ(F40::get(w), 999999u);
}

TEST(Bitfield, SetTruncatesToWidth) {
  const std::uint64_t w = F38::set(0, 7);  // 7 mod 4 == 3
  EXPECT_EQ(F38::get(w), 3u);
  EXPECT_EQ(w & ~F38::kMask, 0u) << "set must not spill into other fields";
}

TEST(Bitfield, UnitAddsOneToField) {
  std::uint64_t w = F40::set(0, 41);
  w += F40::unit();
  EXPECT_EQ(F40::get(w), 42u);
}

TEST(Bitfield, UnitAddNeverTouchesLowerFieldsUntilOverflow) {
  // The property the SWS steal depends on: fetch-adding the asteals unit
  // preserves every owner field bit-exactly.
  std::uint64_t w = 0;
  w = F0::set(w, 0x7ffff);   // all-ones tail
  w = F19::set(w, 0x7ffff);  // all-ones itasks
  w = F38::set(w, 1);
  const std::uint64_t lower = w & (F0::kMask | F19::kMask | F38::kMask);
  for (int i = 0; i < 1000; ++i) {
    w += F40::unit();
    ASSERT_EQ(w & (F0::kMask | F19::kMask | F38::kMask), lower);
  }
  EXPECT_EQ(F40::get(w), 1000u);
}

TEST(Bitfield, WouldOverflowDetectsFieldBoundary) {
  std::uint64_t w = F40::set(0, F40::kMax - 1);
  EXPECT_FALSE(F40::would_overflow(w, 1));
  EXPECT_TRUE(F40::would_overflow(w, 2));
}

TEST(Bitfield, CheckedSetRejectsOversizedValues) {
  EXPECT_NO_THROW(F38::checked_set(0, 3));
  EXPECT_DEATH(F38::checked_set(0, 4), "overflow");
}

TEST(BitfieldProperty, RandomRoundTrips) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t base = rng.next();
    const std::uint64_t v = rng.next() & F19::kMax;
    const std::uint64_t w = F19::set(base, v);
    ASSERT_EQ(F19::get(w), v);
    // All other bits of base are preserved.
    ASSERT_EQ(w & ~F19::kMask, base & ~F19::kMask);
  }
}

}  // namespace
}  // namespace sws
