// OffsetAllocator (first-fit free list with coalescing) and SymmetricHeap.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "pgas/symmetric_heap.hpp"

namespace sws::pgas {
namespace {

TEST(OffsetAllocator, AllocatesSequentiallyFromEmpty) {
  OffsetAllocator a(1024);
  EXPECT_EQ(a.alloc(100, 1), 0u);
  EXPECT_EQ(a.alloc(100, 1), 100u);
  EXPECT_EQ(a.bytes_free(), 824u);
}

TEST(OffsetAllocator, RespectsAlignment) {
  OffsetAllocator a(1024);
  EXPECT_EQ(a.alloc(10, 1), 0u);
  const std::uint64_t b = a.alloc(8, 64);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_EQ(b, 64u);
}

TEST(OffsetAllocator, AlignmentPaddingStaysAllocatable) {
  OffsetAllocator a(1024);
  (void)a.alloc(10, 1);       // [0,10)
  (void)a.alloc(8, 64);       // [64,72); pad [10,64) stays free
  EXPECT_EQ(a.alloc(54, 1), 10u) << "padding hole should be reused";
}

TEST(OffsetAllocator, ExhaustionReturnsNull) {
  OffsetAllocator a(128);
  EXPECT_NE(a.alloc(128, 1), SymPtr::kNull);
  EXPECT_EQ(a.alloc(1, 1), SymPtr::kNull);
}

TEST(OffsetAllocator, FreeCoalescesWithNext) {
  OffsetAllocator a(300);
  const auto x = a.alloc(100, 1);
  const auto y = a.alloc(100, 1);
  (void)a.alloc(100, 1);
  a.free(y);
  a.free(x);  // coalesces with the following free block
  EXPECT_EQ(a.alloc(200, 1), 0u);
}

TEST(OffsetAllocator, FreeCoalescesWithPrev) {
  OffsetAllocator a(300);
  const auto x = a.alloc(100, 1);
  const auto y = a.alloc(100, 1);
  (void)a.alloc(100, 1);
  a.free(x);
  a.free(y);  // coalesces with the preceding free block
  EXPECT_EQ(a.alloc(200, 1), 0u);
}

TEST(OffsetAllocator, FreeCoalescesBothSides) {
  OffsetAllocator a(300);
  const auto x = a.alloc(100, 1);
  const auto y = a.alloc(100, 1);
  const auto z = a.alloc(100, 1);
  a.free(x);
  a.free(z);
  a.free(y);  // bridges both neighbors
  EXPECT_EQ(a.bytes_free(), 300u);
  EXPECT_EQ(a.alloc(300, 1), 0u);
}

TEST(OffsetAllocator, DoubleFreeThrows) {
  OffsetAllocator a(128);
  const auto x = a.alloc(64, 1);
  a.free(x);
  EXPECT_THROW(a.free(x), std::invalid_argument);
}

TEST(OffsetAllocator, FreeUnknownOffsetThrows) {
  OffsetAllocator a(128);
  EXPECT_THROW(a.free(7), std::invalid_argument);
}

TEST(OffsetAllocator, ZeroByteAllocThrows) {
  OffsetAllocator a(128);
  EXPECT_THROW(a.alloc(0, 1), std::invalid_argument);
}

TEST(OffsetAllocator, NonPowerOfTwoAlignThrows) {
  OffsetAllocator a(128);
  EXPECT_THROW(a.alloc(8, 3), std::invalid_argument);
}

TEST(OffsetAllocatorProperty, RandomAllocFreeNeverOverlapsAndFullyRecovers) {
  Xoshiro256 rng(77);
  OffsetAllocator a(1 << 16);
  struct Block {
    std::uint64_t off, len;
  };
  std::vector<Block> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.below(2) == 0) {
      const std::uint64_t len = 1 + rng.below(512);
      const std::uint64_t align = std::uint64_t{1} << rng.below(7);
      const std::uint64_t off = a.alloc(len, align);
      if (off == SymPtr::kNull) continue;
      ASSERT_EQ(off % align, 0u);
      for (const Block& b : live) {
        ASSERT_TRUE(off + len <= b.off || b.off + b.len <= off)
            << "overlapping allocation";
      }
      live.push_back({off, len});
    } else {
      const auto i = rng.below(live.size());
      a.free(live[i].off);
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (const Block& b : live) a.free(b.off);
  EXPECT_EQ(a.bytes_free(), std::uint64_t{1} << 16);
  EXPECT_EQ(a.live_allocations(), 0u);
  EXPECT_EQ(a.alloc((1 << 16), 1), 0u) << "space must fully coalesce";
}

TEST(SymmetricHeap, SameOffsetOnEveryPe) {
  SymmetricHeap h(4, 4096);
  const SymPtr p = h.alloc(64);
  for (int pe = 0; pe < 4; ++pe) {
    std::byte* addr = h.local(pe, p);
    EXPECT_EQ(addr - h.arena_base(pe), static_cast<std::ptrdiff_t>(p.off));
  }
}

TEST(SymmetricHeap, ArenasAreDistinctPerPe) {
  SymmetricHeap h(2, 4096);
  const SymPtr p = h.alloc(8);
  *reinterpret_cast<std::uint64_t*>(h.local(0, p)) = 111;
  *reinterpret_cast<std::uint64_t*>(h.local(1, p)) = 222;
  EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(h.local(0, p)), 111u);
  EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(h.local(1, p)), 222u);
}

TEST(SymmetricHeap, ZeroClearsOnOnePeOnly) {
  SymmetricHeap h(2, 4096);
  const SymPtr p = h.alloc(8);
  *reinterpret_cast<std::uint64_t*>(h.local(0, p)) = 5;
  *reinterpret_cast<std::uint64_t*>(h.local(1, p)) = 5;
  h.zero(0, p, 8);
  EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(h.local(0, p)), 0u);
  EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(h.local(1, p)), 5u);
}

TEST(SymmetricHeap, ExhaustionThrowsBadAlloc) {
  SymmetricHeap h(1, 256);
  EXPECT_THROW(h.alloc(10'000), std::bad_alloc);
}

TEST(SymmetricHeap, FreeRecyclesSpace) {
  SymmetricHeap h(1, 256);
  const SymPtr p = h.alloc(200);
  h.free(p);
  EXPECT_NO_THROW(h.alloc(200));
}

TEST(SymmetricHeap, ArenaStartsZeroed) {
  SymmetricHeap h(1, 1024);
  const SymPtr p = h.alloc(64);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(static_cast<int>(*(h.local(0, p, static_cast<std::uint64_t>(i)))), 0);
}

}  // namespace
}  // namespace sws::pgas
