// SHA-1 against FIPS 180-1 reference vectors, plus the UTS child
// derivation that the tree generator relies on.
#include <gtest/gtest.h>

#include <string>

#include "sha1/sha1.hpp"

namespace sws {
namespace {

TEST(Sha1, EmptyString) {
  EXPECT_EQ(to_hex(Sha1::hash("", 0)),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(to_hex(Sha1::hash(std::string("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha1::hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk.data(), chunk.size());
  EXPECT_EQ(to_hex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64-byte input exercises the padding-into-new-block path.
  const std::string block(64, 'x');
  EXPECT_EQ(to_hex(Sha1::hash(block)), to_hex(Sha1::hash(block.data(), 64)));
  // 55/56/57 bytes straddle the length-field boundary.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string s(n, 'q');
    Sha1 incremental;
    for (char c : s) incremental.update(&c, 1);
    EXPECT_EQ(to_hex(incremental.finish()), to_hex(Sha1::hash(s)))
        << "length " << n;
  }
}

TEST(Sha1, IncrementalMatchesOneShotAtArbitrarySplits) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to make "
      "this message span multiple SHA-1 blocks for split testing purposes.";
  const auto expect = to_hex(Sha1::hash(msg));
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 h;
    h.update(msg.data(), split);
    h.update(msg.data() + split, msg.size() - split);
    EXPECT_EQ(to_hex(h.finish()), expect) << "split " << split;
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update("abc", 3);
  (void)h.finish();
  h.reset();
  h.update("abc", 3);
  EXPECT_EQ(to_hex(h.finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(UtsDerivation, ChildDigestIsDeterministic) {
  const Sha1Digest parent = Sha1::hash(std::string("root"));
  const Sha1Digest c0a = uts_child_digest(parent, 0);
  const Sha1Digest c0b = uts_child_digest(parent, 0);
  const Sha1Digest c1 = uts_child_digest(parent, 1);
  EXPECT_EQ(c0a, c0b);
  EXPECT_NE(c0a, c1);
}

TEST(UtsDerivation, ChildIndexIsBigEndianInHash) {
  // Children 0 and 256 differ only in one payload byte; digests must differ.
  const Sha1Digest parent = Sha1::hash(std::string("p"));
  EXPECT_NE(uts_child_digest(parent, 0), uts_child_digest(parent, 256));
}

TEST(UtsDerivation, DigestToU32TakesLeadingBytesBigEndian) {
  Sha1Digest d{};
  d[0] = 0x12;
  d[1] = 0x34;
  d[2] = 0x56;
  d[3] = 0x78;
  EXPECT_EQ(digest_to_u32(d), 0x12345678u);
}

TEST(UtsDerivation, ValuesLookUniform) {
  // Crude uniformity check over 4096 children of one parent.
  const Sha1Digest parent = Sha1::hash(std::string("uniformity"));
  int high = 0;
  for (std::uint32_t i = 0; i < 4096; ++i)
    if (digest_to_u32(uts_child_digest(parent, i)) >= 0x80000000u) ++high;
  EXPECT_NEAR(high, 2048, 200);
}

TEST(Sha1, ToHexFormats40LowercaseDigits) {
  const auto hex = to_hex(Sha1::hash(std::string("abc")));
  EXPECT_EQ(hex.size(), 40u);
  for (char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
}

}  // namespace
}  // namespace sws
