// SDC-specific behaviour: the 6-communication lock-based steal protocol
// and early-aborting steals (paper §3).
#include <gtest/gtest.h>

#include "core/sdc_queue.hpp"

namespace sws::core {
namespace {

pgas::RuntimeConfig rcfg(int npes) {
  pgas::RuntimeConfig c;
  c.npes = npes;
  c.heap_bytes = 1 << 20;
  return c;
}

Task mk(std::uint32_t id) { return Task::of(0, id); }

QueueConfig qcfg() { return QueueConfig{1024, /*slot_bytes=*/32}; }

net::FabricStats delta(const net::FabricStats& after,
                       const net::FabricStats& before) {
  net::FabricStats d = after;
  for (std::size_t i = 0; i < net::kNumOpKinds; ++i) d.ops[i] -= before.ops[i];
  d.remote_ops -= before.remote_ops;
  d.local_ops -= before.local_ops;
  return d;
}

TEST(SdcQueue, SuccessfulStealIsExactlySixComms) {
  // Fig 2: lock CAS + metadata get + tail/seq put + unlock + task get +
  // nbi completion; 5 blocking.
  pgas::Runtime rt(rcfg(2));
  SdcQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 100; ++i) (void)q.push_local(ctx, mk(i));
      (void)q.try_release(ctx);
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      const net::FabricStats before = ctx.fabric().stats(1);
      std::vector<Task> loot;
      ASSERT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kSuccess);
      const net::FabricStats d = delta(ctx.fabric().stats(1), before);
      EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kAmoCompareSwap)], 1u);
      EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kGet)], 2u);
      EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kPut)], 1u);
      EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kAmoSet)], 1u);
      EXPECT_EQ(d.ops[static_cast<int>(net::OpKind::kNbiAmoSet)], 1u);
      EXPECT_EQ(d.remote_ops, 6u) << "SDC steal is 6 communications";
      EXPECT_EQ(d.blocking_ops(), 5u) << "5 of them blocking";
    }
    ctx.barrier();
  });
}

TEST(SdcQueue, FailedStealOnEmptyQueueUsesLockPlusProbe) {
  pgas::Runtime rt(rcfg(2));
  SdcQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    ctx.barrier();
    if (ctx.pe() == 1) {
      const net::FabricStats before = ctx.fabric().stats(1);
      std::vector<Task> loot;
      ASSERT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kEmpty);
      const net::FabricStats d = delta(ctx.fabric().stats(1), before);
      // Lock acquired, metadata fetched, nothing found, unlock: 3 comms —
      // versus SWS's single AMO for the same discovery.
      EXPECT_EQ(d.remote_ops, 3u);
    }
    ctx.barrier();
  });
}

TEST(SdcQueue, ThiefAbortsWhileLockHeldAndQueueEmpty) {
  // The "aborting steals" optimization: a thief that cannot take the lock
  // polls the metadata and gives up as soon as the shared portion reads
  // empty, without ever acquiring the lock.
  pgas::Runtime rt(rcfg(2));
  SdcQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      // Owner wedges its own lock (simulating a long critical section).
      ctx.fabric().amo_set(0, 0, q.lock_offset_for_test(), 99);
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      const StealResult r = q.steal(ctx, 0, loot);
      EXPECT_EQ(r.outcome, StealOutcome::kEmpty)
          << "empty queue behind a held lock → abort, not retry";
    }
    ctx.barrier();
    if (ctx.pe() == 0) ctx.fabric().amo_set(0, 0, q.lock_offset_for_test(), 0);
    ctx.barrier();
  });
}

TEST(SdcQueue, ThiefRetriesWhileLockHeldAndWorkVisible) {
  pgas::Runtime rt(rcfg(2));
  SdcQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 10; ++i) (void)q.push_local(ctx, mk(i));
      (void)q.try_release(ctx);
      ctx.fabric().amo_set(0, 0, q.lock_offset_for_test(), 99);  // wedge
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      const StealResult r = q.steal(ctx, 0, loot);
      EXPECT_EQ(r.outcome, StealOutcome::kRetry)
          << "work visible but lock held → bounded retries, then kRetry";
      EXPECT_GT(q.op_stats(1).steals_retry, 0u);
    }
    ctx.barrier();
    if (ctx.pe() == 0) ctx.fabric().amo_set(0, 0, q.lock_offset_for_test(), 0);
    ctx.barrier();
  });
}

TEST(SdcQueue, StealSucceedsAfterLockReleased) {
  pgas::Runtime rt(rcfg(2));
  SdcQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 10; ++i) (void)q.push_local(ctx, mk(i));
      (void)q.try_release(ctx);
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      EXPECT_EQ(q.steal(ctx, 0, loot).outcome, StealOutcome::kSuccess);
      EXPECT_EQ(loot.size(), 2u);  // half of 5 shared, rounded down, min 1
    }
    ctx.barrier();
  });
}

TEST(SdcQueue, AcquireLocksAgainstThieves) {
  // Acquire must hold the queue lock; after it completes, thief and owner
  // views stay consistent (no task lost or duplicated).
  pgas::Runtime rt(rcfg(2));
  SdcQueue q(rt, qcfg());
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 16; ++i) (void)q.push_local(ctx, mk(i));
      (void)q.try_release(ctx);  // 8 shared, 8 local
    }
    ctx.barrier();
    // Thief steals while owner drains local then acquires — interleaved
    // under the deterministic sequencer.
    std::uint64_t thief_tasks = 0;
    if (ctx.pe() == 1) {
      std::vector<Task> loot;
      while (q.steal(ctx, 0, loot).outcome == StealOutcome::kSuccess) {}
      thief_tasks = loot.size();
      ctx.quiet();
    } else {
      Task t;
      std::uint64_t mine = 0;
      while (true) {
        while (q.pop_local(ctx, t)) ++mine;
        if (!q.try_acquire(ctx)) break;
      }
      thief_tasks = mine;
    }
    ctx.barrier();
    const std::uint64_t total = ctx.sum_u64(thief_tasks);
    EXPECT_EQ(total, 16u) << "every task executed exactly once";
    ctx.barrier();
  });
}

}  // namespace
}  // namespace sws::core
