// sws-analyze: offline analyzer for Tracer::dump_chrome_json traces.
//
//   sws-analyze <trace.json>                  full report
//   sws-analyze --diff <a.json> <b.json>      A/B comparison
//   sws-analyze --self-check <trace.json>     protocol op-shape check;
//                                             exit 1 on any violation
//
// Options: --window-ns=N  pathology-scan window (default duration/64)
//
// The self-check is what CI runs on every push: each successful SWS steal
// must be exactly one remote fetch-add + one task-copy get (+ one nbi
// completion add); each successful SDC steal must show the six-op
// lock/fetch/claim/unlock/copy/notify sequence (paper Fig 2).

#include <cstdint>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"

namespace {

int usage() {
  std::cerr << "usage: sws-analyze [--self-check] <trace.json>\n"
            << "       sws-analyze --diff <a.json> <b.json>\n"
            << "       options: --window-ns=N\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Hand-rolled parsing: every flag here is positional-file adjacent,
    // which the generic Options "--key value" rule would misread.
    sws::obs::WindowConfig wc;
    bool diff = false;
    bool self_check = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--diff") {
        diff = true;
      } else if (arg == "--self-check") {
        self_check = true;
      } else if (arg.rfind("--window-ns=", 0) == 0) {
        wc.window_ns = std::stoull(arg.substr(12));
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "sws-analyze: unknown option " << arg << "\n";
        return usage();
      } else {
        files.push_back(arg);
      }
    }

    if (diff) {
      if (files.size() != 2) return usage();
      const auto a = sws::obs::analyze(
          sws::obs::parse_chrome_trace_file(files[0]), wc);
      const auto b = sws::obs::analyze(
          sws::obs::parse_chrome_trace_file(files[1]), wc);
      sws::obs::write_diff(std::cout, a, b);
      return 0;
    }

    if (files.size() != 1) return usage();
    const auto report = sws::obs::analyze(
        sws::obs::parse_chrome_trace_file(files[0]), wc);
    sws::obs::write_report(std::cout, report);

    if (self_check) {
      if (report.protocol.empty()) {
        std::cerr << "self-check: trace carries no sws_run_meta protocol\n";
        return 1;
      }
      if (report.steals_ok == 0) {
        std::cerr << "self-check: no successful steals to validate\n";
        return 1;
      }
      if (!report.violations.empty()) {
        std::cerr << "self-check: " << report.violations.size()
                  << " violation(s)\n";
        return 1;
      }
      std::cout << "self-check: OK (" << report.steals_ok << " successful "
                << report.protocol << " steals validated)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sws-analyze: " << e.what() << "\n";
    return 2;
  }
}
