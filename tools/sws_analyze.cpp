// sws-analyze: offline analyzer for Tracer::dump_chrome_json traces.
//
//   sws-analyze <trace.json>                  full report
//   sws-analyze --report <trace.json>         run summary: report + critical
//                                             path + hot-victim convoys
//   sws-analyze --diff <a.json> <b.json>      A/B comparison
//   sws-analyze --self-check <trace.json>     protocol op-shape check;
//                                             exit 1 on any violation
//
// Options: --window-ns=N          pathology-scan window (default duration/64)
//          --timeseries=FILE      also summarize an sws-timeseries JSON
//                                 document (bench_common --timeseries-out)
//                                 and verify its accounting invariant;
//                                 exit 1 if any window's category deltas
//                                 fail to sum to the elapsed delta
//
// The self-check is what CI runs on every push: each successful SWS steal
// must be exactly one remote fetch-add + one task-copy get (+ one nbi
// completion add); each successful SDC steal must show the six-op
// lock/fetch/claim/unlock/copy/notify sequence (paper Fig 2).

#include <cstdint>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"

namespace {

int usage() {
  std::cerr << "usage: sws-analyze [--self-check|--report] <trace.json>\n"
            << "       sws-analyze --diff <a.json> <b.json>\n"
            << "       options: --window-ns=N --timeseries=FILE\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Hand-rolled parsing: every flag here is positional-file adjacent,
    // which the generic Options "--key value" rule would misread.
    sws::obs::WindowConfig wc;
    bool diff = false;
    bool self_check = false;
    bool report_mode = false;
    std::string timeseries_file;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--diff") {
        diff = true;
      } else if (arg == "--self-check") {
        self_check = true;
      } else if (arg == "--report") {
        report_mode = true;
      } else if (arg.rfind("--window-ns=", 0) == 0) {
        wc.window_ns = std::stoull(arg.substr(12));
      } else if (arg.rfind("--timeseries=", 0) == 0) {
        timeseries_file = arg.substr(13);
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "sws-analyze: unknown option " << arg << "\n";
        return usage();
      } else {
        files.push_back(arg);
      }
    }

    if (diff) {
      if (files.size() != 2) return usage();
      const auto a = sws::obs::analyze(
          sws::obs::parse_chrome_trace_file(files[0]), wc);
      const auto b = sws::obs::analyze(
          sws::obs::parse_chrome_trace_file(files[1]), wc);
      sws::obs::write_diff(std::cout, a, b);
      return 0;
    }

    // --timeseries alone (no trace) is a valid invocation: summarize and
    // self-check the sampled document.
    if (files.empty() && !timeseries_file.empty() && !self_check) {
      const auto ts = sws::obs::parse_timeseries_file(timeseries_file);
      sws::obs::write_timeseries_summary(std::cout, ts);
      const auto errs = sws::obs::check_accounting(ts);
      for (const std::string& e : errs) std::cerr << "  ! " << e << "\n";
      if (!errs.empty()) {
        std::cerr << "accounting self-check: FAILED\n";
        return 1;
      }
      std::cout << "accounting self-check: OK (" << ts.t.size()
                << " windows)\n";
      return 0;
    }

    if (files.size() != 1) return usage();
    const auto rt = sws::obs::parse_chrome_trace_file(files[0]);
    const auto report = sws::obs::analyze(rt, wc);
    sws::obs::write_report(std::cout, report);

    if (report_mode) {
      sws::obs::write_critical_path(std::cout, sws::obs::critical_path(rt));
      sws::obs::write_convoy(std::cout, sws::obs::convoy_report(rt, wc));
    }

    int rc = 0;
    if (!timeseries_file.empty()) {
      const auto ts = sws::obs::parse_timeseries_file(timeseries_file);
      sws::obs::write_timeseries_summary(std::cout, ts);
      const auto errs = sws::obs::check_accounting(ts);
      for (const std::string& e : errs) std::cerr << "  ! " << e << "\n";
      if (!errs.empty()) {
        std::cerr << "accounting self-check: FAILED\n";
        rc = 1;
      } else {
        std::cout << "accounting self-check: OK (" << ts.t.size()
                  << " windows)\n";
      }
    }

    if (self_check) {
      if (report.protocol.empty()) {
        std::cerr << "self-check: trace carries no sws_run_meta protocol\n";
        return 1;
      }
      if (report.steals_ok == 0) {
        std::cerr << "self-check: no successful steals to validate\n";
        return 1;
      }
      if (!report.violations.empty()) {
        std::cerr << "self-check: " << report.violations.size()
                  << " violation(s)\n";
        return 1;
      }
      std::cout << "self-check: OK (" << report.steals_ok << " successful "
                << report.protocol << " steals validated)\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "sws-analyze: " << e.what() << "\n";
    return 2;
  }
}
