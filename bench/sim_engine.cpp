// Simulator-engine microbenchmarks: the throughput of the discrete-event
// sequencer and the fabric's non-blocking-op path. Every paper figure is
// generated through these two hot paths, so they are the "hardware" of
// this reproduction — scripts/bench_report.py turns this binary's output
// into the committed machine-readable baseline (BENCH_*.json).
//
// Scenarios:
//  * seq_selfrun   — PEs staggered far apart in virtual time; each burst
//                    of advance() calls keeps the baton (the common case
//                    in real workloads: compute charges between comms).
//  * seq_lockstep  — every PE advances by the same dt, so every event
//                    hands the baton to the next PE (worst case: pick +
//                    context switch per event).
//  * nbi_amo       — nbi_amo_add enqueue+deliver cycles through the
//                    fabric's pending queue, quiesced every 64 ops.
//  * nbi_put_small — 32 B payloads (inline-able in the effect pool).
//  * nbi_put_large — 256 B payloads (slab path).
//  * engine_mixed  — mixed private/global event stream over the serial
//                    sequencer (engine_threads = 1) and the sharded
//                    windowed engine (engine_threads >= 2): same
//                    schedules, different release machinery.
//
// Output: one JSON object per line on stdout (machine-readable); aligned
// human summary on stderr. `--reference` re-runs the sequencer scenarios
// with the legacy linear-scan strategy (no ready heap, no run-to-horizon
// batching) so the speedup can be measured inside one binary.
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/options.hpp"
#include "net/fabric.hpp"
#include "net/network_model.hpp"
#include "net/parallel_time_model.hpp"
#include "net/time_model.hpp"

using namespace sws;
using net::Nanos;

namespace {

double wall_seconds(const std::function<void()>& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// SPMD over a bare time model: one thread per PE with begin/end framing.
void run_pes(net::TimeModel& tm, int npes,
             const std::function<void(int)>& body) {
  tm.reset(npes);
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(npes));
  for (int pe = 0; pe < npes; ++pe)
    ts.emplace_back([&, pe] {
      tm.pe_begin(pe);
      body(pe);
      tm.pe_end(pe);
    });
  for (auto& t : ts) t.join();
}

struct Measurement {
  std::string bench;
  int pes = 0;
  int engine_threads = 1;
  std::uint64_t events = 0;
  double wall_s = 0;

  double events_per_sec() const { return static_cast<double>(events) / wall_s; }
};

void emit(const Measurement& m, const std::string& mode) {
  std::cout << "{\"bench\":\"" << m.bench << "\",\"mode\":\"" << mode
            << "\",\"pes\":" << m.pes
            << ",\"engine_threads\":" << m.engine_threads
            << ",\"events\":" << m.events << ",\"wall_s\":" << m.wall_s
            << ",\"events_per_sec\":" << m.events_per_sec() << "}\n";
  std::cerr << "  " << m.bench << " P=" << m.pes << " T=" << m.engine_threads
            << " [" << mode << "]: "
            << static_cast<std::uint64_t>(m.events_per_sec())
            << " events/s (" << m.events << " events in " << m.wall_s
            << " s)\n";
}

/// One sequencer scenario: optional stagger so each PE's burst of B
/// advances stays strictly below every other clock (self-continue), or no
/// stagger so every advance is a baton hand-off (lockstep). The wall time
/// of an identical zero-burst run is subtracted to remove thread spawn
/// and teardown cost from the per-event figure.
Measurement seq_scenario(net::VirtualTimeModel& tm, const std::string& name,
                         int npes, std::uint64_t bursts, Nanos step,
                         bool stagger) {
  const auto body = [&](std::uint64_t b) {
    run_pes(tm, npes, [&](int pe) {
      if (stagger)
        tm.advance(pe, static_cast<Nanos>(pe) * (b * step + 1000));
      for (std::uint64_t i = 0; i < b; ++i) tm.advance(pe, step);
    });
  };
  const double setup = wall_seconds([&] { body(0); });
  const double total = wall_seconds([&] { body(bursts); });
  Measurement m;
  m.bench = name;
  m.pes = npes;
  m.events = bursts * static_cast<std::uint64_t>(npes);
  m.wall_s = std::max(total - setup, 1e-9);
  return m;
}

/// One nbi scenario: PE 0 streams `events` non-blocking ops at PE 1,
/// quiescing every 64 so the pending queue cycles through enqueue and
/// delivery at steady state.
Measurement nbi_scenario(net::VirtualTimeModel& tm, const std::string& name,
                         std::uint64_t events, std::size_t payload) {
  net::Fabric fab(tm, net::NetworkModel{}, 2);
  std::vector<std::vector<std::byte>> arenas;
  for (int pe = 0; pe < 2; ++pe) {
    arenas.emplace_back(4096, std::byte{0});
    fab.register_arena(pe, arenas.back().data(), arenas.back().size());
  }
  std::vector<std::byte> src(payload > 0 ? payload : 1, std::byte{0x5a});
  Measurement m;
  m.bench = name;
  m.pes = 2;
  m.events = events;
  m.wall_s = std::max(wall_seconds([&] {
               run_pes(tm, 2, [&](int pe) {
                 if (pe != 0) return;
                 for (std::uint64_t i = 0; i < events; ++i) {
                   if (payload == 0)
                     fab.nbi_amo_add(0, 1, 64, 1);
                   else
                     fab.nbi_put(0, 1, 128, src.data(), payload);
                   if ((i & 63) == 63) fab.quiet(0);
                 }
                 fab.quiet(0);
               });
             }),
             1e-9);
  return m;
}

/// Engine scenario: a mixed private/global event stream over a bare time
/// model. Private advances dominate — the windowed engine grants a whole
/// lookahead window per park, so most of them are a lock-free clock bump —
/// and every `global_every`-th event runs a globally ordered section
/// (global_begin/advance/global_end) that must serialize in (vtime, pe)
/// order on any engine. Clocks are staggered a little so ties don't
/// dominate the frontier scan.
Measurement engine_scenario(net::TimeModel& tm, const std::string& name,
                            int npes, std::uint64_t bursts, Nanos step,
                            std::uint64_t global_every) {
  const auto body = [&](std::uint64_t b) {
    run_pes(tm, npes, [&](int pe) {
      tm.advance(pe, static_cast<Nanos>(pe) * 3 + 1);
      for (std::uint64_t i = 0; i < b; ++i) {
        if ((i + 1) % global_every == 0) {
          tm.global_begin(pe);
          tm.advance(pe, step);
          tm.global_end(pe);
        } else {
          tm.advance(pe, step);
        }
      }
    });
  };
  const double setup = wall_seconds([&] { body(0); });
  const double total = wall_seconds([&] { body(bursts); });
  Measurement m;
  m.bench = name;
  m.pes = npes;
  m.events = bursts * static_cast<std::uint64_t>(npes);
  m.wall_s = std::max(total - setup, 1e-9);
  return m;
}

std::vector<int> parse_pes(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const std::vector<int> pe_counts =
      parse_pes(opt.get("pes", std::string("64,128,256")));
  const auto seq_events = static_cast<std::uint64_t>(
      opt.get("events", std::int64_t{1'000'000}));
  const auto nbi_events = static_cast<std::uint64_t>(
      opt.get("nbi-events", std::int64_t{200'000}));
  const bool reference = opt.get("reference", false);
  const std::string mode = reference ? "reference" : "optimized";

  for (const int npes : pe_counts) {
    net::VirtualTimeModel tm(npes);
    tm.set_reference_mode(reference);
    const std::uint64_t bursts =
        std::max<std::uint64_t>(seq_events / static_cast<std::uint64_t>(npes),
                                1);
    emit(seq_scenario(tm, "seq_selfrun", npes, bursts, 10, true), mode);
    // Lockstep is P times more context switches for the same event count;
    // scale it down so the suite stays quick at 256 PEs.
    const std::uint64_t lock_bursts = std::max<std::uint64_t>(bursts / 8, 1);
    emit(seq_scenario(tm, "seq_lockstep", npes, lock_bursts, 100, false),
         mode);
  }

  {
    net::VirtualTimeModel tm(2);
    tm.set_reference_mode(reference);
    emit(nbi_scenario(tm, "nbi_amo", nbi_events, 0), mode);
    emit(nbi_scenario(tm, "nbi_put_small", nbi_events, 32), mode);
    emit(nbi_scenario(tm, "nbi_put_large", nbi_events / 2, 256), mode);
  }

  // Engine-threads sweep: the serial sequencer at threads = 1 vs the
  // sharded windowed engine. The windowed engine has no linear-scan
  // reference variant, so --reference only reruns the serial baseline.
  const std::vector<int> thread_counts =
      parse_pes(opt.get("engine-threads", std::string("1,2,4")));
  for (const int npes : pe_counts) {
    const std::uint64_t bursts = std::max<std::uint64_t>(
        seq_events / static_cast<std::uint64_t>(npes) / 4, 1);
    for (const int threads : thread_counts) {
      std::unique_ptr<net::TimeModel> tm;
      if (threads <= 1) {
        auto serial = std::make_unique<net::VirtualTimeModel>(npes);
        serial->set_reference_mode(reference);
        tm = std::move(serial);
      } else {
        if (reference) continue;
        tm = std::make_unique<net::ParallelTimeModel>(
            npes, threads, net::NetworkParams{}.min_remote_latency());
      }
      Measurement m = engine_scenario(*tm, "engine_mixed", npes, bursts,
                                      /*step=*/10, /*global_every=*/64);
      m.engine_threads = threads;
      emit(m, mode);
    }
  }
  return 0;
}
