// Ablation: contended-victim behaviour.
//
// The paper's conclusion: SWS "has significantly better properties when a
// target is contended" — SDC thieves serialize on the victim's spinlock
// (and burn round trips retrying), while SWS thieves each claim with one
// fetch-add that the NIC serializes in nanoseconds.
//
// Setup: one victim releases a large allotment; N thieves all steal at
// once. We measure the mean and worst per-thief time to complete one
// steal, and the retry traffic.
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace sws;

namespace {

struct ContentionResult {
  Summary per_thief_us;
  double max_us = 0;
  std::uint64_t retries = 0;
  std::uint64_t comms = 0;
};

ContentionResult run_contended(core::QueueKind kind, int thieves, int reps,
                               std::uint64_t seed) {
  const int npes = thieves + 1;
  pgas::RuntimeConfig rcfg;
  rcfg.npes = npes;
  rcfg.seed = seed;
  rcfg.heap_bytes = 4 << 20;
  pgas::Runtime rt(rcfg);

  const core::QueueConfig qc{/*capacity=*/8192, /*slot_bytes=*/32};
  std::unique_ptr<core::TaskQueue> q;
  if (kind == core::QueueKind::kSws) {
    q = std::make_unique<core::SwsQueue>(rt, qc);
  } else {
    core::SdcConfig c;
    c.max_lock_attempts = 64;  // thieves must eventually get through
    q = std::make_unique<core::SdcQueue>(rt, qc, c);
  }

  ContentionResult out;
  rt.fabric().reset_stats();
  rt.run([&](pgas::PeContext& ctx) {
    for (int rep = 0; rep < reps; ++rep) {
      q->reset_pe(ctx);
      ctx.barrier();
      if (ctx.pe() == 0) {
        for (std::uint32_t i = 0; i < 4096; ++i)
          (void)q->push_local(ctx, core::Task(0, nullptr, 0));
        (void)q->try_release(ctx);  // 2048 shared: everyone can have a block
      }
      ctx.barrier();
      if (ctx.pe() != 0) {
        // One steal attempt per thief; retry only while the victim is
        // locked. A steal-half allotment has ~log2 blocks, so with many
        // thieves the late ones legitimately find it empty — they are
        // excluded from the timing but their traffic still counts.
        std::vector<core::Task> loot;
        const net::Nanos t0 = ctx.now();
        core::StealResult r;
        do {
          r = q->steal(ctx, 0, loot);
        } while (r.outcome == core::StealOutcome::kRetry);
        const net::Nanos dt = ctx.now() - t0;
        if (r.outcome == core::StealOutcome::kSuccess) {
          static std::mutex mu;
          std::lock_guard<std::mutex> lk(mu);
          out.per_thief_us.add(static_cast<double>(dt) / 1e3);
          out.max_us = std::max(out.max_us, static_cast<double>(dt) / 1e3);
        }
        ctx.quiet();
      }
      ctx.barrier();
      if (ctx.pe() == 0) {
        core::Task t;
        while (q->pop_local(ctx, t)) {}
        q->progress(ctx);
      }
      ctx.barrier();
    }
  });
  for (int pe = 1; pe < npes; ++pe) {
    out.retries += q->op_stats(pe).steals_retry;
    out.comms += rt.fabric().stats(pe).remote_ops;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);
  const int reps = std::max(settings.reps, 3);

  Table t("Ablation — contended victim: N thieves, one target");
  t.set_header({"thieves", "SDC mean us", "SDC max us", "SDC retries",
                "SWS mean us", "SWS max us", "SWS retries", "mean ratio"});
  for (const int thieves : {1, 2, 4, 8, 16, 32, 63}) {
    const auto sdc = run_contended(core::QueueKind::kSdc, thieves, reps,
                                   settings.seed);
    const auto sws = run_contended(core::QueueKind::kSws, thieves, reps,
                                   settings.seed);
    t.add_row({Table::num(std::int64_t{thieves}),
               Table::num(sdc.per_thief_us.mean(), 2),
               Table::num(sdc.max_us, 2), Table::num(sdc.retries),
               Table::num(sws.per_thief_us.mean(), 2),
               Table::num(sws.max_us, 2), Table::num(sws.retries),
               Table::num(sdc.per_thief_us.mean() / sws.per_thief_us.mean(),
                          2)});
    std::cerr << "  [contention] thieves=" << thieves << " done\n";
  }
  bench::emit(t, settings);
  std::cout << "paper (conclusion): SWS \"has significantly better "
               "properties when a target is contended\" — no lock convoy, "
               "claims serialize only at NIC occupancy granularity.\n";
  return 0;
}
