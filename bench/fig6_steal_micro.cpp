// Figure 6: steal operation time vs. steal volume, for 24-byte and
// 192-byte tasks, SDC vs SWS.
//
// Method (matches the paper's microbenchmark): the victim releases an
// allotment of 2V tasks; a single thief's first steal-half claims exactly
// V of them. The time from initiating the steal to having the tasks local
// is one sample; each (system, size, volume) point averages `reps`
// samples. Expectation: at small volumes SWS ≈ half of SDC (latency
// dominated); at large volumes the task copy dominates and the curves
// converge.
#include <iostream>

#include "bench_common.hpp"

using namespace sws;

namespace {

double measure_steal_us(core::QueueKind kind, std::uint32_t volume,
                        std::uint32_t slot_bytes, int reps,
                        std::uint64_t seed) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 2;
  rcfg.seed = seed;
  rcfg.heap_bytes = std::size_t{16} << 20;
  pgas::Runtime rt(rcfg);

  const core::QueueConfig qc{std::max<std::uint32_t>(4 * volume, 64),
                             slot_bytes};
  std::unique_ptr<core::TaskQueue> q;
  if (kind == core::QueueKind::kSws) {
    q = std::make_unique<core::SwsQueue>(rt, qc);
  } else {
    q = std::make_unique<core::SdcQueue>(rt, qc);
  }

  Summary per_steal_us;
  rt.run([&](pgas::PeContext& ctx) {
    for (int rep = 0; rep < reps; ++rep) {
      q->reset_pe(ctx);
      ctx.barrier();
      if (ctx.pe() == 0) {
        for (std::uint32_t i = 0; i < 4 * volume; ++i)
          (void)q->push_local(ctx, core::Task(0, nullptr, 0));
        (void)q->try_release(ctx);  // exposes 2V => first steal takes V
      }
      ctx.barrier();
      if (ctx.pe() == 1) {
        std::vector<core::Task> loot;
        const net::Nanos t0 = ctx.now();
        const core::StealResult r = q->steal(ctx, 0, loot);
        const net::Nanos dt = ctx.now() - t0;
        if (r.outcome == core::StealOutcome::kSuccess && r.ntasks == volume)
          per_steal_us.add(static_cast<double>(dt) / 1e3);
        ctx.quiet();
      }
      ctx.barrier();
      if (ctx.pe() == 0) {
        core::Task t;
        while (q->pop_local(ctx, t)) {}
        q->progress(ctx);
      }
      ctx.barrier();
    }
  });
  return per_steal_us.mean();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);
  const int reps = std::max(settings.reps, 3);

  const std::uint32_t volumes[] = {1, 2, 4, 8, 16, 32, 64, 128,
                                   256, 512, 1024};
  const std::uint32_t sizes[] = {24, 192};

  Table t("Fig 6 — steal operation time vs steal volume (us per steal)");
  t.set_header({"volume", "SDC 24B", "SWS 24B", "ratio 24B", "SDC 192B",
                "SWS 192B", "ratio 192B"});
  for (const std::uint32_t v : volumes) {
    double r[2][2];
    for (int s = 0; s < 2; ++s) {
      r[s][0] = measure_steal_us(core::QueueKind::kSdc, v, sizes[s], reps,
                                 settings.seed);
      r[s][1] = measure_steal_us(core::QueueKind::kSws, v, sizes[s], reps,
                                 settings.seed);
    }
    t.add_row({Table::num(std::uint64_t{v}), Table::num(r[0][0], 2),
               Table::num(r[0][1], 2), Table::num(r[0][0] / r[0][1], 2),
               Table::num(r[1][0], 2), Table::num(r[1][1], 2),
               Table::num(r[1][0] / r[1][1], 2)});
    std::cerr << "  [fig6] volume=" << v << " done\n";
  }
  bench::emit(t, settings);
  std::cout << "expectation: ratio ≈ 2 at small volumes (latency-bound), "
               "converging toward 1 as the task copy dominates.\n";
  return 0;
}
