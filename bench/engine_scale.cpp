// Engine-threads scaling: end-to-end UTS (SWS queue) wall-clock across
// host engine-thread counts. The schedules are byte-identical at every
// thread count (tests/test_determinism_ab.cpp), so the only thing this
// measures is the sequencer machinery: the serial baton (1 thread) vs the
// sharded windowed engine (>= 2 threads), which releases whole lookahead
// windows of private events per wakeup instead of one baton handoff per
// event.
//
// Output: one JSON object per (pes, engine_threads) config on stdout,
// aligned human summary on stderr — scripts/bench_report.py folds the
// JSON into BENCH_*.json.
#include <chrono>
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace sws;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);
  if (opt.get("pes", std::string("")).empty()) settings.pe_counts = {256, 1024};

  workloads::UtsParams p;
  p.shape = opt.get("shape", std::string("geo")) == "bin"
                ? workloads::UtsParams::Shape::kBinomial
                : workloads::UtsParams::Shape::kGeometric;
  p.b0 = static_cast<std::uint32_t>(opt.get("b0", std::int64_t{4}));
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{15}));
  p.bin_q = opt.get("bin-q", p.bin_q);
  p.bin_m = static_cast<std::uint32_t>(
      opt.get("bin-m", std::int64_t{p.bin_m}));
  const std::string gs = opt.get("geo-shape", std::string("linear"));
  p.geo_shape = gs == "fixed"    ? workloads::UtsParams::GeoShape::kFixed
                : gs == "expdec" ? workloads::UtsParams::GeoShape::kExpDec
                : gs == "cyclic" ? workloads::UtsParams::GeoShape::kCyclic
                                 : workloads::UtsParams::GeoShape::kLinear;
  p.root_seed =
      static_cast<std::uint32_t>(opt.get("tree-seed", std::int64_t{19}));
  p.node_compute_ns =
      static_cast<net::Nanos>(opt.get("node-ns", std::int64_t{400}));

  const auto tree = workloads::uts_sequential_count(p);
  std::cerr << "UTS tree: " << tree.nodes << " nodes, max depth "
            << tree.max_depth << "\n";

  bench::PoolTweaks tweaks;
  tweaks.queue.slot_bytes = 48;
  tweaks.queue.capacity = 16384;
  tweaks.net = bench::net_from_options(opt);
  // Idle-thief pacing. Every failed probe is a globally ordered AMO that
  // pins the concurrent window shut, so at 1024+ PEs the engine sweep is
  // really measuring probe pressure; a longer backoff ceiling keeps the
  // starved PEs from serializing the busy ones.
  tweaks.steal.backoff_max_ns = static_cast<net::Nanos>(
      opt.get("backoff-max-ns", std::int64_t{tweaks.steal.backoff_max_ns}));
  tweaks.steal.term_check_interval = static_cast<std::uint32_t>(opt.get(
      "term-check", std::int64_t{tweaks.steal.term_check_interval}));

  // Same sweep syntax as --pes: comma-separated thread counts.
  std::vector<int> thread_counts;
  {
    std::stringstream ss(opt.get("threads", std::string("1,2,4")));
    std::string item;
    while (std::getline(ss, item, ',')) thread_counts.push_back(std::stoi(item));
  }

  for (const int npes : settings.pe_counts) {
    double base_wall = 0;
    for (const int threads : thread_counts) {
      settings.engine_threads = threads;
      const auto t0 = std::chrono::steady_clock::now();
      const bench::ConfigResult r = bench::run_config(
          core::QueueKind::kSws, npes, settings, tweaks,
          [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
            auto uts = std::make_shared<workloads::UtsBenchmark>(reg, p);
            return [uts](core::Worker& w) { uts->seed(w); };
          });
      const auto t1 = std::chrono::steady_clock::now();
      const double wall_s = std::chrono::duration<double>(t1 - t0).count();
      if (threads == thread_counts.front()) base_wall = wall_s;
      std::cout << "{\"bench\":\"uts_e2e\",\"pes\":" << npes
                << ",\"engine_threads\":" << threads
                << ",\"wall_s\":" << wall_s
                << ",\"virtual_ms\":" << r.runtime_ms.mean()
                << ",\"tasks\":" << r.tasks << ",\"steals\":" << r.steals
                << "}\n";
      std::cerr << "  uts_e2e P=" << npes << " T=" << threads << ": "
                << wall_s << " s wall (x"
                << (wall_s > 0 ? base_wall / wall_s : 0)
                << " vs T=" << thread_counts.front() << "), virtual "
                << r.runtime_ms.mean() << " ms\n";
    }
  }
  return 0;
}
