// Ablation: two-level fabric + locality-aware victim selection.
//
// The paper's cluster was 44 nodes x 48 cores, but its steal protocol
// treats all victims alike. This ablation models the two-level fabric
// (intra-node ops ~0.15x the latency of inter-node) and compares uniform
// random victims against the hierarchical policy of the SLAW/HotSLAW line
// the paper cites — for both queue protocols.
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace sws;

namespace {

struct ConfigResultShim {
  Summary runtime_ms;
  Summary steal_ms;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);
  const int node = static_cast<int>(opt.get("node-size", std::int64_t{8}));

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{13}));
  p.node_compute_ns = 200;

  const auto factory =
      [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
    auto uts = std::make_shared<workloads::UtsBenchmark>(reg, p);
    return [uts](core::Worker& w) { uts->seed(w); };
  };

  auto run = [&](core::QueueKind kind, int npes, core::VictimPolicy policy) {
    bench::PoolTweaks tweaks;
    tweaks.queue.slot_bytes = 48;
    tweaks.net.pes_per_node = node;
    ConfigResultShim r;
    for (int rep = 0; rep < settings.reps; ++rep) {
      pgas::RuntimeConfig rcfg;
      rcfg.npes = npes;
      rcfg.seed = settings.seed + static_cast<std::uint64_t>(rep) * 1000003;
      rcfg.net = tweaks.net;
      rcfg.heap_bytes = std::size_t{4} << 20;
      pgas::Runtime rt(rcfg);
      core::TaskRegistry registry;
      auto seeder = factory(registry);
      core::PoolConfig pcfg;
      pcfg.kind = kind;
      pcfg.queue = tweaks.queue;
      pcfg.victim = policy;
      core::TaskPool pool(rt, registry, pcfg);
      rt.run([&](pgas::PeContext& ctx) {
        pool.run_pe(ctx, [&](core::Worker& w) { seeder(w); });
      });
      const auto rep_r = pool.report();
      r.runtime_ms.add(static_cast<double>(rep_r.total.run_time_ns) / 1e6);
      r.steal_ms.add(static_cast<double>(rep_r.total.steal_time_ns) / npes /
                     1e6);
    }
    return r;
  };

  Table t("Ablation — hierarchical victim selection on a two-level fabric "
          "(UTS, node size " +
          std::to_string(node) + ")");
  t.set_header({"npes", "system", "random_ms", "hier_ms", "gain_pct",
                "steal random", "steal hier"});
  for (const int npes : settings.pe_counts) {
    if (npes < 2 * node) continue;  // needs at least two nodes
    for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
      const auto flat = run(kind, npes, core::VictimPolicy::kRandom);
      const auto hier = run(kind, npes, core::VictimPolicy::kHierarchical);
      t.add_row(
          {Table::num(std::int64_t{npes}), bench::kind_name(kind),
           Table::num(flat.runtime_ms.mean(), 3),
           Table::num(hier.runtime_ms.mean(), 3),
           Table::num(
               100.0 * (flat.runtime_ms.mean() / hier.runtime_ms.mean() - 1.0),
               2),
           Table::num(flat.steal_ms.mean(), 3),
           Table::num(hier.steal_ms.mean(), 3)});
    }
    std::cerr << "  [hierarchy] P=" << npes << " done\n";
  }
  bench::emit(t, settings);
  std::cout << "locality-aware stealing composes with SWS — the paper's §2.2 "
               "point that its comm optimization is orthogonal to "
               "victim-selection strategies.\n";
  return 0;
}
