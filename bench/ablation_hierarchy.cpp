// Ablation: multi-tier fabric + distance-aware victim selection.
//
// The paper's cluster was 44 nodes x 48 cores, but its steal protocol
// treats all victims alike. This ablation models an N-tier fabric (each
// tier inward ~0.15x the latency of the one outside it) and compares
// victim-selection policies — uniform random, round-robin, tiered
// near-first with escalation (the SLAW/HotSLAW idea the paper cites), and
// distance-weighted sampling — under both queue protocols. Alongside the
// runtime gain it reports the per-tier steal-attempt mix, which is what
// locality-aware selection actually shifts.
//
//   --topo SPEC       N-tier shape, outermost-first (default: two-level
//                     nodes of --node-size)
//   --node-size N     two-level shorthand (default 8)
//   --depth D         UTS tree depth (default 13)
#include <array>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "obs/metrics.hpp"

using namespace sws;

namespace {

struct PolicyResult {
  Summary runtime_ms;
  Summary steal_ms;
  std::array<std::uint64_t, net::kMaxTiers> attempts_by_tier{};
  std::uint64_t attempts = 0;
  std::uint64_t steals_ok = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);
  const int node = static_cast<int>(opt.get("node-size", std::int64_t{8}));
  const std::string spec_str = opt.get("topo", std::string(""));
  const net::TopologySpec spec = spec_str.empty()
                                     ? net::TopologySpec::two_level(node)
                                     : net::TopologySpec::parse(spec_str);
  const int ntiers = spec.ntiers();

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{13}));
  p.node_compute_ns = 200;

  const auto factory =
      [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
    auto uts = std::make_shared<workloads::UtsBenchmark>(reg, p);
    return [uts](core::Worker& w) { uts->seed(w); };
  };

  const bool want_metrics = !settings.metrics_out.empty();
  auto run = [&](core::QueueKind kind, int npes, core::VictimPolicy policy) {
    PolicyResult r;
    obs::MetricsSnapshot merged;
    for (int rep = 0; rep < settings.reps; ++rep) {
      pgas::RuntimeConfig rcfg;
      rcfg.npes = npes;
      rcfg.seed = settings.seed + static_cast<std::uint64_t>(rep) * 1000003;
      rcfg.net = net::NetworkParams::tiered(spec);
      rcfg.heap_bytes = std::size_t{4} << 20;
      rcfg.metrics = want_metrics;
      pgas::Runtime rt(rcfg);
      core::TaskRegistry registry;
      auto seeder = factory(registry);
      core::PoolConfig pcfg;
      pcfg.kind = kind;
      pcfg.queue.slot_bytes = 48;
      pcfg.victim.policy = policy;
      core::TaskPool pool(rt, registry, pcfg);
      rt.run([&](pgas::PeContext& ctx) {
        pool.run_pe(ctx, [&](core::Worker& w) { seeder(w); });
      });
      if (want_metrics) {
        pool.publish_metrics(rt.metrics());
        merged.merge(rt.metrics().snapshot());
      }
      const auto rep_r = pool.report();
      r.runtime_ms.add(static_cast<double>(rep_r.total.run_time_ns) / 1e6);
      r.steal_ms.add(static_cast<double>(rep_r.total.steal_time_ns) / npes /
                     1e6);
      for (int t = 0; t < ntiers; ++t)
        r.attempts_by_tier[static_cast<std::size_t>(t)] +=
            rep_r.total.steal_attempts_by_tier[static_cast<std::size_t>(t)];
      r.attempts += rep_r.total.steal_attempts;
      r.steals_ok += rep_r.total.steals_ok;
    }
    if (want_metrics) {
      // One artifact per (kind, npes, policy): the per-tier counters
      // (pool.steal_attempts_by_tier*, fabric.tier_ops.t*) are the point.
      const std::string path =
          settings.metrics_out + "." + bench::kind_name(kind) + ".p" +
          std::to_string(npes) + "." + core::victim_policy_name(policy) +
          ".json";
      std::ofstream f(path);
      if (f) merged.write_json(f);
    }
    return r;
  };

  constexpr std::array kPolicies = {
      core::VictimPolicy::kRandom, core::VictimPolicy::kRoundRobin,
      core::VictimPolicy::kTiered, core::VictimPolicy::kDistanceWeighted};

  Table t("Ablation — distance-aware victim selection on a \"" +
          spec.to_string() + "\" fabric (UTS)");
  std::vector<std::string> header = {"npes",     "system",  "policy",
                                     "runtime_ms", "vs_random_pct", "steal_ms"};
  for (int tier = 1; tier <= ntiers; ++tier)
    header.push_back("t" + std::to_string(tier) + "_pct");
  t.set_header(header);

  const int inner = spec.levels.empty() ? 1 : spec.levels[0];
  for (const int npes : settings.pe_counts) {
    if (npes < 2 * inner) continue;  // needs at least two innermost groups
    if (spec.capacity() > 0 && npes > spec.capacity()) continue;
    for (const auto kind : {core::QueueKind::kSdc, core::QueueKind::kSws}) {
      double random_ms = 0;
      for (const auto policy : kPolicies) {
        const PolicyResult r = run(kind, npes, policy);
        if (policy == core::VictimPolicy::kRandom) random_ms = r.runtime_ms.mean();
        std::vector<std::string> row = {
            Table::num(std::int64_t{npes}), bench::kind_name(kind),
            core::victim_policy_name(policy),
            Table::num(r.runtime_ms.mean(), 3),
            Table::num(100.0 * (random_ms / r.runtime_ms.mean() - 1.0), 2),
            Table::num(r.steal_ms.mean(), 3)};
        for (int tier = 0; tier < ntiers; ++tier) {
          const double pct =
              r.attempts > 0
                  ? 100.0 *
                        static_cast<double>(r.attempts_by_tier[static_cast<
                            std::size_t>(tier)]) /
                        static_cast<double>(r.attempts)
                  : 0.0;
          row.push_back(Table::num(pct, 1));
        }
        t.add_row(row);
      }
    }
    std::cerr << "  [hierarchy] P=" << npes << " done\n";
  }
  bench::emit(t, settings);
  std::cout << "locality-aware stealing composes with SWS — the paper's §2.2 "
               "point that its comm optimization is orthogonal to "
               "victim-selection strategies. The t<N>_pct columns show the "
               "per-tier steal mix shifting toward near tiers under the "
               "tiered and distance-weighted policies.\n";
  return 0;
}
