// Ablation: protocol robustness under an adverse fabric.
//
// The paper evaluates both steal protocols on a healthy InfiniBand
// cluster; this ablation asks how each degrades when the fabric is not
// healthy. A seeded FaultPlan drops and duplicates non-blocking ops and
// spikes blocking latencies at increasing rates; we report each
// protocol's runtime inflation relative to its own faults-off baseline.
//
// Expectation: SDC's steal path holds the victim's lock across three
// blocking round trips, so a latency spike inside the critical section
// stalls every other thief — its inflation grows faster than SWS's,
// whose single fetch-add claim window is an order of magnitude shorter.
#include <iostream>

#include "bench_common.hpp"

using namespace sws;

namespace {

net::FaultPlan plan_at(double rate) {
  net::FaultPlan f;
  f.drop_rate = rate;
  f.dup_rate = rate;
  f.spike_rate = rate;
  f.spike_factor = 10.0;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);
  const int npes =
      static_cast<int>(opt.get("npes", std::int64_t{16}));

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{12}));
  p.node_compute_ns = 200;

  const auto factory =
      [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
    auto uts = std::make_shared<workloads::UtsBenchmark>(reg, p);
    return [uts](core::Worker& w) { uts->seed(w); };
  };

  const double rates[] = {0.0, 0.02, 0.05, 0.10, 0.20};

  double base_sdc = 0, base_sws = 0;
  Table t("Ablation — fault injection sweep (UTS, P=" + std::to_string(npes) +
          "; drop = dup = spike rate)");
  t.set_header({"fault_rate", "SDC_ms", "SDC_inflation_pct", "SWS_ms",
                "SWS_inflation_pct", "SWS_speedup_pct"});
  for (const double rate : rates) {
    bench::PoolTweaks tweaks;
    tweaks.queue.slot_bytes = 48;
    tweaks.net.faults = plan_at(rate);
    const auto sdc = bench::run_config(core::QueueKind::kSdc, npes, settings,
                                       tweaks, factory);
    const auto sws = bench::run_config(core::QueueKind::kSws, npes, settings,
                                       tweaks, factory);
    if (rate == 0.0) {
      base_sdc = sdc.runtime_ms.mean();
      base_sws = sws.runtime_ms.mean();
    }
    t.add_row(
        {Table::num(rate, 2), Table::num(sdc.runtime_ms.mean(), 3),
         Table::num(100.0 * (sdc.runtime_ms.mean() / base_sdc - 1.0), 1),
         Table::num(sws.runtime_ms.mean(), 3),
         Table::num(100.0 * (sws.runtime_ms.mean() / base_sws - 1.0), 1),
         Table::num(
             100.0 * (sdc.runtime_ms.mean() / sws.runtime_ms.mean() - 1.0),
             1)});
    std::cerr << "  [faults] rate=" << rate << " done\n";
  }
  bench::emit(t, settings);
  std::cout << "inflation is each protocol's slowdown vs its own clean run; "
               "the gap between the two columns is the cost of holding a "
               "lock across a faulty fabric's round trips.\n";

  // ---- crash-stop sweep --------------------------------------------------
  // Kill 0..3 PEs outright mid-run (docs/resilience.md) and report each
  // protocol's completion-time degradation against its own crash-free
  // baseline plus how many fenced tasks had to be re-executed. Dead PEs'
  // private subtrees are truncated by design, so runtimes can also shrink
  // at high kill counts — the interesting signal is that every run
  // completes and how much re-execution the recovery sweep causes.
  const int max_crash = std::min(3, npes - 1);
  double cbase_sdc = 0, cbase_sws = 0;
  Table ct("Ablation — crash-stop sweep (UTS, P=" + std::to_string(npes) +
           "; k PEs killed mid-run)");
  ct.set_header({"crashed_pes", "SDC_ms", "SDC_degradation_pct", "SDC_reexec",
                 "SWS_ms", "SWS_degradation_pct", "SWS_reexec"});
  for (int k = 0; k <= max_crash; ++k) {
    bench::PoolTweaks tweaks;
    tweaks.queue.slot_bytes = 48;
    for (int i = 0; i < k; ++i)
      tweaks.net.faults.crashes.push_back(
          {(i + 1) * npes / (k + 1), 150'000 + i * net::Nanos{120'000}});
    auto s2 = settings;
    if (!s2.metrics_out.empty())
      s2.metrics_out += ".crash" + std::to_string(k);
    if (!s2.trace_out.empty())
      s2.trace_out += ".crash" + std::to_string(k);
    const auto sdc =
        bench::run_config(core::QueueKind::kSdc, npes, s2, tweaks, factory);
    const auto sws =
        bench::run_config(core::QueueKind::kSws, npes, s2, tweaks, factory);
    if (k == 0) {
      cbase_sdc = sdc.runtime_ms.mean();
      cbase_sws = sws.runtime_ms.mean();
    }
    ct.add_row(
        {std::to_string(k), Table::num(sdc.runtime_ms.mean(), 3),
         Table::num(100.0 * (sdc.runtime_ms.mean() / cbase_sdc - 1.0), 1),
         std::to_string(sdc.reexec_tasks), Table::num(sws.runtime_ms.mean(), 3),
         Table::num(100.0 * (sws.runtime_ms.mean() / cbase_sws - 1.0), 1),
         std::to_string(sws.reexec_tasks)});
    std::cerr << "  [faults] crashes=" << k << " done\n";
  }
  bench::emit(ct, settings);
  std::cout << "reexec counts sum over reps; a crash-free run re-executes "
               "nothing, and survivors absorb each dead PE's fenced claims "
               "within one detection lease.\n";
  return 0;
}
