#include "bench_common.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace sws::bench {

namespace {

/// PREFIX.sws.p8.json — one artifact per (kind, npes) configuration, so a
/// sweep doesn't overwrite itself.
std::string config_file(const std::string& prefix, core::QueueKind kind,
                        int npes) {
  return prefix + (kind == core::QueueKind::kSws ? ".sws.p" : ".sdc.p") +
         std::to_string(npes) + ".json";
}

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write " + path);
  return f;
}

}  // namespace

BenchSettings BenchSettings::from_options(const Options& opt) {
  BenchSettings s;
  const std::string pes = opt.get("pes", std::string(""));
  if (!pes.empty()) {
    s.pe_counts.clear();
    std::stringstream ss(pes);
    std::string item;
    while (std::getline(ss, item, ',')) s.pe_counts.push_back(std::stoi(item));
  }
  s.reps = static_cast<int>(opt.get("reps", std::int64_t{s.reps}));
  s.csv = opt.get("csv", false);
  s.seed = static_cast<std::uint64_t>(
      opt.get("seed", static_cast<std::int64_t>(s.seed)));
  s.seq_reference = opt.get("seq-reference", false);
  s.trace_out = opt.get("trace-out", std::string(""));
  s.metrics_out = opt.get("metrics-out", std::string(""));
  s.timeseries_out = opt.get("timeseries-out", std::string(""));
  s.sample_interval_ns = static_cast<net::Nanos>(
      opt.get("sample-interval-ns", std::int64_t{0}));
  if (!s.timeseries_out.empty() && s.sample_interval_ns == 0)
    s.sample_interval_ns = 10'000;  // 10 µs default cadence
  s.engine_threads = static_cast<int>(
      opt.get("engine-threads", std::int64_t{s.engine_threads}));
  return s;
}

const char* kind_name(core::QueueKind k) {
  return k == core::QueueKind::kSdc ? "SDC" : "SWS";
}

net::NetworkParams net_from_options(const Options& opt) {
  const std::string spec = opt.get("topo", std::string(""));
  if (!spec.empty())
    return net::NetworkParams::tiered(net::TopologySpec::parse(spec));
  return net::NetworkParams::two_level(
      static_cast<int>(opt.get("node-size", std::int64_t{0})));
}

void emit(const Table& t, const BenchSettings& settings) {
  if (settings.csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);
}

ConfigResult run_config(core::QueueKind kind, int npes,
                        const BenchSettings& settings,
                        const PoolTweaks& tweaks,
                        const SeederFactory& factory) {
  ConfigResult out;
  const bool want_trace = !settings.trace_out.empty();
  const bool want_metrics = !settings.metrics_out.empty();
  const bool want_timeseries = !settings.timeseries_out.empty();
  obs::MetricsSnapshot merged_metrics;
  for (int rep = 0; rep < settings.reps; ++rep) {
    pgas::RuntimeConfig rcfg;
    rcfg.npes = npes;
    rcfg.seed = settings.seed + static_cast<std::uint64_t>(rep) * 1000003;
    rcfg.net = tweaks.net;
    rcfg.sequencer_reference = settings.seq_reference;
    rcfg.engine_threads = settings.engine_threads;
    rcfg.metrics = want_metrics;
    rcfg.heap_bytes =
        tweaks.heap_bytes != 0
            ? tweaks.heap_bytes
            : static_cast<std::size_t>(tweaks.queue.capacity) *
                      tweaks.queue.slot_bytes +
                  (std::size_t{256} << 10);
    pgas::Runtime rt(rcfg);

    core::TaskRegistry registry;
    auto seeder = factory(registry);

    core::PoolConfig pcfg;
    pcfg.kind = kind;
    pcfg.queue = tweaks.queue;
    pcfg.sws = tweaks.sws;
    pcfg.sdc = tweaks.sdc;
    pcfg.steal = tweaks.steal;
    pcfg.victim = tweaks.victim;
    if (want_trace) {
      pcfg.trace.enable = true;
      // Large rings: a truncated trace still loads in Perfetto but makes
      // sws-analyze's span accounting report orphans.
      pcfg.trace.events = std::size_t{1} << 16;
    }
    if (want_timeseries)
      pcfg.trace.sample_interval_ns = settings.sample_interval_ns;
    core::TaskPool pool(rt, registry, pcfg);

    rt.run([&](pgas::PeContext& ctx) {
      pool.run_pe(ctx, [&](core::Worker& w) { seeder(w); });
    });

    if (want_metrics) {
      pool.publish_metrics(rt.metrics());
      merged_metrics.merge(rt.metrics().snapshot());
    }
    if (want_trace && rep == settings.reps - 1) {
      auto f = open_out(config_file(settings.trace_out, kind, npes));
      pool.dump_trace_json(f);
    }
    if (want_timeseries && rep == settings.reps - 1) {
      auto f = open_out(config_file(settings.timeseries_out, kind, npes));
      pool.dump_timeseries_json(f);
    }

    const core::PoolRunReport r = pool.report();
    const double ms = static_cast<double>(r.total.run_time_ns) / 1e6;
    out.runtime_ms.add(ms);
    out.throughput.add(static_cast<double>(r.total.tasks_executed) /
                       (ms / 1e3));
    out.steal_ms_per_pe.add(static_cast<double>(r.total.steal_time_ns) /
                            npes / 1e6);
    out.search_ms_per_pe.add(static_cast<double>(r.total.search_time_ns) /
                             npes / 1e6);
    out.tasks = r.total.tasks_executed;
    out.steals += r.total.steals_ok;
    out.steal_attempts += r.total.steal_attempts;
    out.tasks_stolen += r.total.tasks_stolen;
    out.bytes_stolen += r.total.bytes_stolen;
    for (int pe = 0; pe < npes; ++pe)
      out.remote_ops += rt.fabric().stats(pe).remote_ops;
    out.reexec_tasks += r.total.tasks_reexecuted;
    out.rerouted_tasks += r.total.tasks_rerouted;
    out.deaths += static_cast<std::uint64_t>(rt.fabric().num_dead());
    out.total_compute_ns = r.total.compute_time_ns;
    out.steal_latency.merge(r.total.steal_latency);
  }
  if (want_metrics) {
    auto f = open_out(config_file(settings.metrics_out, kind, npes));
    merged_metrics.write_json(f);
  }
  return out;
}

void run_six_panels(const std::string& figure, const std::string& workload,
                    const BenchSettings& settings, const PoolTweaks& tweaks,
                    const SeederFactory& factory) {
  struct Row {
    int npes;
    ConfigResult sdc, sws;
  };
  std::vector<Row> rows;
  for (const int npes : settings.pe_counts) {
    Row r;
    r.npes = npes;
    r.sdc = run_config(core::QueueKind::kSdc, npes, settings, tweaks, factory);
    r.sws = run_config(core::QueueKind::kSws, npes, settings, tweaks, factory);
    rows.push_back(std::move(r));
    std::cerr << "  [" << figure << "] P=" << npes << " done\n";
  }

  {  // (a) performance: task throughput
    Table t(figure + "a — " + workload + " throughput (tasks/s)");
    t.set_header({"npes", "SDC", "SWS"});
    for (const Row& r : rows)
      t.add_row({Table::num(std::int64_t{r.npes}),
                 Table::num(r.sdc.throughput.mean(), 0),
                 Table::num(r.sws.throughput.mean(), 0)});
    emit(t, settings);
  }
  {  // (b) relative runtime improvement, SDC/SWS x 100
    Table t(figure + "b — " + workload +
            " relative runtime (SDC/SWS x 100, >100 = SWS faster)");
    t.set_header({"npes", "improvement_pct"});
    for (const Row& r : rows)
      t.add_row({Table::num(std::int64_t{r.npes}),
                 Table::num(100.0 * r.sdc.runtime_ms.mean() /
                                r.sws.runtime_ms.mean(),
                            1)});
    emit(t, settings);
  }
  {  // (c) parallel efficiency vs ideal
    Table t(figure + "c — " + workload + " parallel efficiency (%)");
    t.set_header({"npes", "SDC", "SWS"});
    for (const Row& r : rows)
      t.add_row({Table::num(std::int64_t{r.npes}),
                 Table::num(r.sdc.efficiency_pct(r.npes), 1),
                 Table::num(r.sws.efficiency_pct(r.npes), 1)});
    emit(t, settings);
  }
  {  // (d) run-to-run variation
    Table t(figure + "d — " + workload +
            " variation across runs (% of mean runtime)");
    t.set_header({"npes", "SDC_sd", "SWS_sd", "SDC_range", "SWS_range"});
    for (const Row& r : rows)
      t.add_row({Table::num(std::int64_t{r.npes}),
                 Table::num(r.sdc.runtime_ms.rel_stddev_pct(), 3),
                 Table::num(r.sws.runtime_ms.rel_stddev_pct(), 3),
                 Table::num(r.sdc.runtime_ms.rel_range_pct(), 3),
                 Table::num(r.sws.runtime_ms.rel_range_pct(), 3)});
    emit(t, settings);
  }
  {  // (e) steal time
    Table t(figure + "e — " + workload +
            " steal time (ms per PE; p95 in us per steal)");
    t.set_header({"npes", "SDC", "SWS", "ratio", "SDC_p95us", "SWS_p95us"});
    for (const Row& r : rows) {
      const double ratio = r.sws.steal_ms_per_pe.mean() > 0
                               ? r.sdc.steal_ms_per_pe.mean() /
                                     r.sws.steal_ms_per_pe.mean()
                               : 0.0;
      t.add_row({Table::num(std::int64_t{r.npes}),
                 Table::num(r.sdc.steal_ms_per_pe.mean(), 3),
                 Table::num(r.sws.steal_ms_per_pe.mean(), 3),
                 Table::num(ratio, 2),
                 Table::num(
                     static_cast<double>(r.sdc.steal_latency.quantile(0.95)) /
                         1e3,
                     1),
                 Table::num(
                     static_cast<double>(r.sws.steal_latency.quantile(0.95)) /
                         1e3,
                     1)});
    }
    emit(t, settings);
  }
  {  // (f) search time
    Table t(figure + "f — " + workload + " search time (ms per PE)");
    t.set_header({"npes", "SDC", "SWS"});
    for (const Row& r : rows)
      t.add_row({Table::num(std::int64_t{r.npes}),
                 Table::num(r.sdc.search_ms_per_pe.mean(), 3),
                 Table::num(r.sws.search_ms_per_pe.mean(), 3)});
    emit(t, settings);
  }
}

}  // namespace sws::bench
