// Ablation: completion epochs (paper §4.2).
//
// With epochs disabled, every allotment reset (release/acquire) stalls
// until ALL in-flight steals have signalled completion — the paper's
// initial implementation. With two epochs, resets overlap with steal
// completion. The gap shows up as acquire-poll time and, under churn, as
// whole-program time.
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace sws;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{11}));
  p.node_compute_ns = 110;

  const auto factory =
      [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
    auto uts = std::make_shared<workloads::UtsBenchmark>(reg, p);
    return [uts](core::Worker& w) { uts->seed(w); };
  };

  Table t("Ablation — SWS completion epochs on/off (UTS)");
  t.set_header({"npes", "runtime_on_ms", "runtime_off_ms", "overhead_pct"});
  for (const int npes : settings.pe_counts) {
    bench::PoolTweaks on, off;
    on.queue.slot_bytes = off.queue.slot_bytes = 48;
    on.sws.epochs = true;
    off.sws.epochs = false;
    const auto r_on =
        bench::run_config(core::QueueKind::kSws, npes, settings, on, factory);
    const auto r_off =
        bench::run_config(core::QueueKind::kSws, npes, settings, off, factory);
    t.add_row({Table::num(std::int64_t{npes}),
               Table::num(r_on.runtime_ms.mean(), 3),
               Table::num(r_off.runtime_ms.mean(), 3),
               Table::num(100.0 * (r_off.runtime_ms.mean() /
                                       r_on.runtime_ms.mean() -
                                   1.0),
                          2)});
    std::cerr << "  [epochs] P=" << npes << " done\n";
  }
  bench::emit(t, settings);
  std::cout << "epochs let the owner reset the split point without waiting "
               "for in-flight steals (paper §4.2).\n";
  return 0;
}
