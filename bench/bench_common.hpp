// Shared benchmark harness: builds (runtime, registry, pool) per
// configuration, runs repetitions with distinct seeds, and aggregates the
// quantities the paper's figures plot.
//
// Every bench binary accepts:
//   --pes 2,4,8,16,32,64   PE sweep
//   --reps 5               repetitions per configuration
//   --csv                  emit CSV instead of aligned tables
//   --seed 42              base seed
//   --seq-reference        legacy linear-scan sequencer (perf A/B)
//   --engine-threads N     sharded parallel sequencer threads (1 = serial)
//   --trace-out PREFIX     per config, dump the last repetition's Chrome
//                          trace JSON to PREFIX.<kind>.p<npes>.json
//   --metrics-out PREFIX   per config, write the metrics snapshot merged
//                          across reps to PREFIX.<kind>.p<npes>.json
//   --timeseries-out PREFIX  per config, dump the last repetition's windowed
//                          sws-timeseries JSON to PREFIX.<kind>.p<npes>.json
//   --sample-interval-ns N windowed sampling cadence (default 10000 when
//                          --timeseries-out is given; sampling never
//                          perturbs virtual-time schedules)
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sws.hpp"

namespace sws::bench {

/// Given a registry, register the workload's task functions and return the
/// per-PE seeder. Captured state must stay alive in the closure.
using SeederFactory =
    std::function<std::function<void(core::Worker&)>(core::TaskRegistry&)>;

struct BenchSettings {
  std::vector<int> pe_counts{2, 4, 8, 16, 32, 64};
  int reps = 5;
  bool csv = false;
  std::uint64_t seed = 42;
  /// --seq-reference: run the sequencer in its legacy linear-scan mode
  /// (same schedules; for measuring the heap + horizon-batching speedup).
  bool seq_reference = false;
  /// --trace-out: filename prefix for per-config Chrome trace dumps
  /// ("" = tracing off). Tracing never perturbs virtual-time schedules
  /// (tests/test_determinism_ab.cpp), so traced runs measure real runs.
  std::string trace_out;
  /// --metrics-out: filename prefix for per-config metrics JSON.
  std::string metrics_out;
  /// --timeseries-out: filename prefix for per-config windowed time-series
  /// JSON ("" = sampling off). Like tracing, sampling is observation-only.
  std::string timeseries_out;
  /// --sample-interval-ns: virtual-time sampling cadence; 0 picks the
  /// default (10 µs) when --timeseries-out is set.
  net::Nanos sample_interval_ns = 0;
  /// --engine-threads: host worker threads for the sharded parallel
  /// sequencer (1 = serial engine; schedules are byte-identical either
  /// way, only wall-clock changes).
  int engine_threads = 1;

  static BenchSettings from_options(const Options& opt);
};

/// One configuration's aggregation over repetitions.
struct ConfigResult {
  Summary runtime_ms;        ///< whole-program time (max across PEs)
  Summary throughput;        ///< tasks per second
  Summary steal_ms_per_pe;   ///< mean per-PE successful-steal time
  Summary search_ms_per_pe;  ///< mean per-PE search time
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t tasks_stolen = 0;  ///< tasks moved by successful steals
  std::uint64_t bytes_stolen = 0;  ///< payload bytes those tasks carried
  std::uint64_t remote_ops = 0;    ///< all fabric ops, every PE, all reps
  // Crash-recovery accounting, summed over reps (zero without a crash plan).
  std::uint64_t reexec_tasks = 0;    ///< fenced from dead claims and re-run
  std::uint64_t rerouted_tasks = 0;  ///< inbox pushes re-homed off dead PEs
  std::uint64_t deaths = 0;          ///< planned crashes that fired
  net::Nanos total_compute_ns = 0;  ///< charged compute (for efficiency)
  LogHistogram steal_latency;       ///< per-steal latency across all reps

  double efficiency_pct(int npes) const {
    if (runtime_ms.mean() <= 0) return 0;
    const double ideal_ms =
        static_cast<double>(total_compute_ns) / npes / 1e6;
    return 100.0 * ideal_ms / runtime_ms.mean();
  }
};

struct PoolTweaks {
  core::QueueConfig queue{};
  core::SwsConfig sws{};
  core::SdcConfig sdc{};
  core::StealTuning steal{};
  core::VictimConfig victim{};
  net::NetworkParams net{};
  std::size_t heap_bytes = 0;  ///< 0 = derive from queue geometry
};

/// Topology options shared by every bench binary:
///   --topo SPEC        N-tier shape, outermost-first (e.g. "2x4x48");
///                      links derived geometrically (NetworkParams::tiered)
///   --node-size N      classic two-level shape, nodes of N PEs
/// Both absent (or node-size 0) = the flat single-tier fabric.
net::NetworkParams net_from_options(const Options& opt);

/// Run `reps` independent executions of a workload on `npes` PEs with the
/// given queue kind; aggregate the figures-of-merit.
ConfigResult run_config(core::QueueKind kind, int npes,
                        const BenchSettings& settings,
                        const PoolTweaks& tweaks,
                        const SeederFactory& factory);

/// Emit a table in the format selected by the settings.
void emit(const Table& t, const BenchSettings& settings);

const char* kind_name(core::QueueKind k);

/// The paper's six evaluation panels for one workload (Figs 7a–f / 8a–f).
void run_six_panels(const std::string& figure, const std::string& workload,
                    const BenchSettings& settings, const PoolTweaks& tweaks,
                    const SeederFactory& factory);

}  // namespace sws::bench
