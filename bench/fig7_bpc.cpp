// Figure 7 (a–f): the Bouncing Producer-Consumer benchmark across the PE
// sweep, SDC vs SWS — throughput, relative runtime, parallel efficiency,
// run variation, steal time, and search time.
//
// Scaled from the paper's configuration (depth 500, n=8192, 5 ms/1 ms) to
// the simulated platform; task durations are charged in virtual time so
// the coarse-grained character (compute-dominated) is preserved.
#include <memory>

#include "bench_common.hpp"

using namespace sws;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const auto settings = bench::BenchSettings::from_options(opt);

  workloads::BpcParams p;
  p.consumers_per_producer =
      static_cast<std::uint32_t>(opt.get("n", std::int64_t{256}));
  p.depth = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{40}));
  p.consumer_ns =
      static_cast<net::Nanos>(opt.get("consumer-us", std::int64_t{5000})) *
      1000;
  p.producer_ns =
      static_cast<net::Nanos>(opt.get("producer-us", std::int64_t{1000})) *
      1000;

  bench::PoolTweaks tweaks;
  tweaks.queue.slot_bytes = 32;
  tweaks.queue.capacity = 16384;
  // --node-size 48 reproduces the paper's 48-core-node cluster shape;
  // --topo "44x48" additionally bounds the node count.
  tweaks.net = bench::net_from_options(opt);

  bench::run_six_panels(
      "Fig 7", "BPC", settings, tweaks,
      [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
        auto bpc = std::make_shared<workloads::BpcBenchmark>(reg, p);
        return [bpc](core::Worker& w) { bpc->seed(w); };
      });
  return 0;
}
