// Ablation: network latency sweep.
//
// SWS's advantage is round trips saved per steal, so it should grow with
// network latency and vanish as the fabric gets infinitely fast. This
// sweep scales all remote latencies and tracks the SDC/SWS runtime ratio —
// the design-space view behind the paper's single-fabric evaluation.
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace sws;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);
  const int npes = static_cast<int>(opt.get("npes", std::int64_t{16}));

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{11}));
  p.node_compute_ns = 110;

  const auto factory =
      [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
    auto uts = std::make_shared<workloads::UtsBenchmark>(reg, p);
    return [uts](core::Worker& w) { uts->seed(w); };
  };

  const double scales[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

  Table t("Ablation — fabric latency sweep (UTS, P=" + std::to_string(npes) +
          ")");
  t.set_header({"latency_scale", "rtt_us", "SDC_ms", "SWS_ms",
                "SWS_speedup_pct"});
  for (const double scale : scales) {
    bench::PoolTweaks tweaks;
    tweaks.queue.slot_bytes = 48;
    tweaks.net = net::NetworkParams{}.scaled(scale);
    const auto sdc = bench::run_config(core::QueueKind::kSdc, npes, settings,
                                       tweaks, factory);
    const auto sws = bench::run_config(core::QueueKind::kSws, npes, settings,
                                       tweaks, factory);
    t.add_row({Table::num(scale, 2),
               Table::num(
                   static_cast<double>(tweaks.net.link(1).amo_latency) / 1e3,
                   2),
               Table::num(sdc.runtime_ms.mean(), 3),
               Table::num(sws.runtime_ms.mean(), 3),
               Table::num(100.0 * (sdc.runtime_ms.mean() /
                                       sws.runtime_ms.mean() -
                                   1.0),
                          2)});
    std::cerr << "  [latency] scale=" << scale << " done\n";
  }
  bench::emit(t, settings);
  std::cout << "expectation: SWS's edge grows with per-op latency (it saves "
               "round trips) and shrinks on faster fabrics.\n";
  return 0;
}
