// Explorer throughput: schedules/second for the checking harness itself.
//
// The harness's value scales with how many distinct interleavings it can
// push through per CPU-second, so this bench tracks the cost of one
// explored schedule (thread handoffs + queue work + invariant audits) for
// both modes over the canonical 2-PE SWS steal/release scenario.
//
//   --schedules 2000   schedules per mode
//   --seed 42          base seed for the random mode
//   --csv              emit CSV instead of an aligned table
#include <chrono>
#include <iostream>
#include <string>

#include "check/explorer.hpp"
#include "common/options.hpp"
#include "common/table.hpp"

using namespace sws;

namespace {

struct Row {
  std::string mode;
  std::uint64_t schedules = 0;
  std::uint64_t branch_points = 0;
  double seconds = 0;

  double per_sec() const { return seconds > 0 ? schedules / seconds : 0; }
};

Row run_mode(check::ExploreMode mode, std::uint64_t schedules,
             std::uint64_t seed) {
  check::ExploreOptions opts;
  opts.mode = mode;
  opts.max_schedules = schedules;
  opts.seed = seed;
  check::Explorer ex(check::sws_steal_release_scenario(2), opts);
  const auto t0 = std::chrono::steady_clock::now();
  const check::ExploreReport rep = ex.run();
  const auto t1 = std::chrono::steady_clock::now();
  if (rep.failed) {
    std::cerr << "unexpected violation during bench:\n"
              << rep.summary() << "\n";
    std::exit(1);
  }
  Row r;
  r.mode = mode == check::ExploreMode::kExhaustive ? "exhaustive" : "random";
  r.schedules = rep.schedules;
  r.branch_points = rep.branch_points;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto schedules = static_cast<std::uint64_t>(
      opt.get("schedules", std::int64_t{2000}));
  const auto seed =
      static_cast<std::uint64_t>(opt.get("seed", std::int64_t{42}));
  const bool csv = opt.get("csv", false);

  Table t("explorer throughput (2-PE SWS steal/release)");
  t.set_header({"mode", "schedules", "branch_points", "sched_per_sec"});
  for (const Row& r :
       {run_mode(check::ExploreMode::kExhaustive, schedules, seed),
        run_mode(check::ExploreMode::kRandom, schedules, seed)}) {
    t.add_row({r.mode, Table::num(r.schedules), Table::num(r.branch_points),
               Table::num(r.per_sec(), 0)});
  }
  if (csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);
  return 0;
}
