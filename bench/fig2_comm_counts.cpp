// Figure 2 / Figures 3–4 / Table 1 (textual regeneration): the per-steal
// communication breakdown of both protocols, measured from live runs
// against the fabric's op counters, plus the stealval layouts and the
// shared-task state machine.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

using namespace sws;

namespace {

net::FabricStats delta(const net::FabricStats& a, const net::FabricStats& b) {
  net::FabricStats d = a;
  for (std::size_t i = 0; i < net::kNumOpKinds; ++i) d.ops[i] -= b.ops[i];
  d.remote_ops -= b.remote_ops;
  d.local_ops -= b.local_ops;
  d.blocking_ns -= b.blocking_ns;
  return d;
}

/// Measure one successful steal and one failed (empty-victim) probe.
template <typename Queue>
void measure(const char* name, Queue& q, pgas::Runtime& rt, Table& t) {
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    if (ctx.pe() == 0) {
      for (std::uint32_t i = 0; i < 200; ++i)
        (void)q.push_local(ctx, core::Task::of(0, i));
      (void)q.try_release(ctx);
    }
    ctx.barrier();
    if (ctx.pe() == 1) {
      std::vector<core::Task> loot;
      const net::FabricStats s0 = ctx.fabric().stats(1);
      (void)q.steal(ctx, 0, loot);
      const net::FabricStats ok = delta(ctx.fabric().stats(1), s0);
      const net::FabricStats s1 = ctx.fabric().stats(1);
      (void)q.steal(ctx, 2, loot);  // PE 2 never released: a failed search
      const net::FabricStats empty = delta(ctx.fabric().stats(1), s1);

      static std::mutex mu;
      std::lock_guard<std::mutex> lk(mu);
      t.add_row({name, "successful steal", Table::num(ok.remote_ops),
                 Table::num(ok.blocking_ops()),
                 Table::num(ok.blocking_ns / 1000) + " us"});
      t.add_row({name, "failed search", Table::num(empty.remote_ops),
                 Table::num(empty.blocking_ops()),
                 Table::num(empty.blocking_ns / 1000) + " us"});
    }
    ctx.barrier();
  });
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const auto settings = bench::BenchSettings::from_options(opt);

  pgas::RuntimeConfig rcfg;
  rcfg.npes = 3;
  rcfg.heap_bytes = 1 << 20;
  pgas::Runtime rt(rcfg);

  Table t("Fig 2 — steal communication counts (measured)");
  t.set_header({"system", "operation", "comms", "blocking", "blocked time"});
  const core::QueueConfig qc{/*capacity=*/1024, /*slot_bytes=*/32};
  core::SdcQueue sdc(rt, qc);
  core::SwsConfig swsc;
  swsc.damping = false;  // keep every probe a true AMO for counting
  core::SwsQueue sws(rt, qc, swsc);
  measure("SDC", sdc, rt, t);
  measure("SWS", sws, rt, t);
  bench::emit(t, settings);

  std::cout << "SDC steal sequence : lock CAS -> metadata get -> tail/seq put"
               " -> unlock -> task get -> nbi completion  (paper: 6 comms, 5"
               " blocking)\n"
            << "SWS steal sequence : stealval fetch-add -> task get -> nbi"
               " completion  (paper: 3 comms, 2 blocking)\n\n";

  // Figures 3/4: the stealval layout, rendered from the field definitions.
  Table layout("Figs 3-4 — stealval bit layout (epoch variant)");
  layout.set_header({"field", "bits", "shift", "max", "writer"});
  layout.add_row({"asteals", Table::num(std::uint64_t{core::AStealsField::kWidth}),
                  Table::num(std::uint64_t{core::AStealsField::kShift}),
                  Table::num(core::AStealsField::kMax), "thieves (fetch-add)"});
  layout.add_row({"epoch", Table::num(std::uint64_t{core::EpochField::kWidth}),
                  Table::num(std::uint64_t{core::EpochField::kShift}),
                  Table::num(core::EpochField::kMax), "owner"});
  layout.add_row({"itasks", Table::num(std::uint64_t{core::ITasksField::kWidth}),
                  Table::num(std::uint64_t{core::ITasksField::kShift}),
                  Table::num(core::ITasksField::kMax), "owner"});
  layout.add_row({"tail", Table::num(std::uint64_t{core::TailField::kWidth}),
                  Table::num(std::uint64_t{core::TailField::kShift}),
                  Table::num(core::TailField::kMax), "owner"});
  bench::emit(layout, settings);

  // The paper's worked example.
  const core::StealVal example{2, 0, 150, 500};
  const core::StealBlock blk = core::steal_block(150, 2);
  std::cout << "worked example (paper fig 3): asteals=2 itasks=150 tail=500"
            << "  => encoded 0x" << std::hex << example.encode() << std::dec
            << "\n  next steal: " << blk.size << " tasks at index "
            << 500 + blk.offset << " (paper: 19 tasks at 612)\n\n";

  Table states("Table 1 — shared task states");
  states.set_header({"state", "meaning"});
  states.add_row({"Available (A)", "unclaimed, inside the live allotment"});
  states.add_row({"Claimed (C)", "block claimed via fetch-add; copy running"});
  states.add_row({"Finished (F)", "completion notification received"});
  states.add_row({"Invalid (I)", "outside any live or in-flight region"});
  bench::emit(states, settings);
  return 0;
}
