// Google-benchmark microbenchmarks for the host-side primitives: stealval
// packing, steal-half sequence math, SHA-1 / UTS child derivation, task
// serialization, and local queue operations. These quantify the paper's
// claim that the compact representation "adds minimal processing to queue
// metadata upkeep".
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "core/queue_buffer.hpp"
#include "core/sdc_queue.hpp"
#include "core/stealval.hpp"
#include "core/sws_queue.hpp"
#include "net/fabric.hpp"
#include "net/time_model.hpp"
#include "sha1/sha1.hpp"

namespace {

using namespace sws;

void BM_StealvalEncodeDecode(benchmark::State& state) {
  std::uint64_t x = 12345;
  for (auto _ : state) {
    const core::StealVal sv{static_cast<std::uint32_t>(x & 0xffff), 1,
                            static_cast<std::uint32_t>(x & 0x7ffff),
                            static_cast<std::uint32_t>(x & 0x7ffff)};
    const std::uint64_t w = sv.encode();
    benchmark::DoNotOptimize(core::StealVal::decode(w));
    x = x * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_StealvalEncodeDecode);

void BM_StealBlockMath(benchmark::State& state) {
  const auto itasks = static_cast<std::uint32_t>(state.range(0));
  std::uint32_t idx = 0;
  const std::uint32_t n = core::steal_block_count(itasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::steal_block(itasks, idx));
    idx = (idx + 1) % (n + 1);
  }
}
BENCHMARK(BM_StealBlockMath)->Arg(150)->Arg(8192)->Arg(262144);

void BM_Sha1UtsChild(benchmark::State& state) {
  Sha1Digest d = Sha1::hash("bench", 5);
  std::uint32_t i = 0;
  for (auto _ : state) {
    d = uts_child_digest(d, i++);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Sha1UtsChild);

void BM_TaskSerializeRoundTrip(benchmark::State& state) {
  const auto payload = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::byte> data(payload, std::byte{7});
  const core::Task t(1, data.data(), payload);
  std::byte slot[256];
  for (auto _ : state) {
    t.serialize(slot, sizeof(slot));
    benchmark::DoNotOptimize(core::Task::deserialize(slot, sizeof(slot)));
  }
}
BENCHMARK(BM_TaskSerializeRoundTrip)->Arg(16)->Arg(184);

template <typename QueueT>
void bench_local_ops(benchmark::State& state) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 1;
  rcfg.mode = pgas::TimeMode::kReal;  // no sequencer: pure op cost
  rcfg.heap_bytes = 4 << 20;
  pgas::Runtime rt(rcfg);
  const core::QueueConfig qc{/*capacity=*/8192, /*slot_bytes=*/32};
  QueueT q(rt, qc);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    const core::Task t = core::Task::of(0, std::uint32_t{1});
    core::Task out;
    for (auto _ : state) {
      benchmark::DoNotOptimize(q.push_local(ctx, t));
      benchmark::DoNotOptimize(q.pop_local(ctx, out));
    }
  });
}

void BM_SwsLocalPushPop(benchmark::State& state) {
  bench_local_ops<core::SwsQueue>(state);
}
BENCHMARK(BM_SwsLocalPushPop);

void BM_SdcLocalPushPop(benchmark::State& state) {
  bench_local_ops<core::SdcQueue>(state);
}
BENCHMARK(BM_SdcLocalPushPop);

template <typename QueueT>
void bench_release_acquire(benchmark::State& state) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = 1;
  rcfg.mode = pgas::TimeMode::kReal;
  rcfg.net.local_overhead = 0;  // isolate the metadata bookkeeping
  rcfg.heap_bytes = 4 << 20;
  pgas::Runtime rt(rcfg);
  const core::QueueConfig qc{/*capacity=*/8192, /*slot_bytes=*/32};
  QueueT q(rt, qc);
  rt.run([&](pgas::PeContext& ctx) {
    q.reset_pe(ctx);
    const core::Task t = core::Task::of(0, std::uint32_t{1});
    core::Task out;
    for (auto _ : state) {
      // One full cycle: expose half, pull it back, drain.
      (void)q.push_local(ctx, t);
      (void)q.push_local(ctx, t);
      benchmark::DoNotOptimize(q.try_release(ctx));
      while (q.pop_local(ctx, out)) {}
      benchmark::DoNotOptimize(q.try_acquire(ctx));
      while (q.pop_local(ctx, out)) {}
      q.progress(ctx);
    }
  });
}

void BM_SwsReleaseAcquireCycle(benchmark::State& state) {
  bench_release_acquire<core::SwsQueue>(state);
}
BENCHMARK(BM_SwsReleaseAcquireCycle);

void BM_SdcReleaseAcquireCycle(benchmark::State& state) {
  bench_release_acquire<core::SdcQueue>(state);
}
BENCHMARK(BM_SdcReleaseAcquireCycle);

// --- simulator-engine hot paths (also covered end-to-end by
// --- bench/sim_engine.cpp; these isolate per-event cost) ----------------

/// Sequencer advance cost. range(0)==1: the staggered self-continue case
/// (runs the lock-free run-to-horizon fast path); range(0)==0: lockstep,
/// every advance is a pick + condvar baton switch between two PEs.
void BM_SequencerAdvance(benchmark::State& state) {
  const bool selfrun = state.range(0) == 1;
  net::VirtualTimeModel tm(2);
  std::atomic<bool> stop{false};
  tm.reset(2);
  // PE1 mirrors the measured PE0: parked far ahead for self-continue, or
  // advancing in lockstep so every event switches the baton.
  std::thread peer([&] {
    tm.pe_begin(1);
    if (selfrun) {
      tm.advance(1, net::Nanos{1} << 40);
    } else {
      while (!stop.load(std::memory_order_relaxed)) tm.advance(1, 100);
    }
    tm.pe_end(1);
  });
  tm.pe_begin(0);
  for (auto _ : state) tm.advance(0, 100);
  stop.store(true, std::memory_order_relaxed);
  // Outrun the peer so it observes `stop` and finishes.
  tm.advance(0, net::Nanos{1} << 41);
  tm.pe_end(0);
  peer.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequencerAdvance)->Arg(1)->Arg(0)->ArgNames({"selfrun"});

/// Fabric nbi enqueue + delivery at steady state: amo (inline effect),
/// small put (inline payload), large put (pooled slab payload).
void BM_NbiEnqueueDeliver(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  net::VirtualTimeModel tm(1);
  net::Fabric fab(tm, net::NetworkModel{}, 1);
  std::vector<std::byte> arena(4096, std::byte{0});
  fab.register_arena(0, arena.data(), arena.size());
  std::vector<std::byte> src(payload > 0 ? payload : 1, std::byte{0x5a});
  tm.reset(1);
  tm.pe_begin(0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (payload == 0)
      fab.nbi_amo_add(0, 0, 64, 1);
    else
      fab.nbi_put(0, 0, 128, src.data(), payload);
    if ((++i & 63) == 0) fab.quiet(0);
  }
  fab.quiet(0);
  tm.pe_end(0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NbiEnqueueDeliver)
    ->Arg(0)
    ->Arg(32)
    ->Arg(256)
    ->ArgNames({"payload"});

}  // namespace

BENCHMARK_MAIN();
