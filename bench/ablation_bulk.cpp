// Ablation: SWS bulk claims under steal storms, two regimes.
//
// (1) Single-victim storm: one owner feeds a fixed batch of tasks through
// release after release while every other PE steals as fast as it can —
// the protocol microbenchmark, maximal contention on one stealval.
// (2) Scheduler storm: an imbalanced UTS tree with microsecond tasks on
// the full pool — the end-to-end regime the paper measures, where every
// PE is both victim and thief and steal granularity sets how much work
// one round trip acquires.
//
// Sweeping `bulk_claim_max` in {1, 2, 4, 8} shows what claiming N
// contiguous steal-half blocks with a single fetch-add buys: fewer fabric
// ops per stolen task (one AMO + one coalesced get + N cheap nbi
// completion adds amortize over N blocks) and higher steal throughput, at
// byte-identical protocol behaviour when the knob is 1.
//
//   ./ablation_bulk [--npes 64] [--tasks 6000] [--task-ns 2000]
//                   [--depth 13] [--reps 3] [--csv]
#include <iostream>
#include <memory>
#include <mutex>

#include "bench_common.hpp"

using namespace sws;

namespace {

struct StormResult {
  Summary drain_ms;           ///< virtual time to drain the batch
  std::uint64_t steals = 0;   ///< successful steal operations
  std::uint64_t stolen = 0;   ///< tasks moved by those steals
  std::uint64_t blocks = 0;   ///< steal-half blocks claimed
  std::uint64_t thief_ops = 0;  ///< thief-side remote fabric ops
  std::uint64_t releases = 0;
  std::uint64_t pressure_releases = 0;
  std::uint64_t full_claims = 0;  ///< whole multi-block allotments claimed

  double steals_per_s() const {
    const double s = drain_ms.sum() / 1e3;
    return s > 0 ? static_cast<double>(steals) / s : 0;
  }
  double tasks_per_s() const {
    const double s = drain_ms.sum() / 1e3;
    return s > 0 ? static_cast<double>(stolen) / s : 0;
  }
  double ops_per_task() const {
    return stolen > 0 ? static_cast<double>(thief_ops) /
                            static_cast<double>(stolen)
                      : 0;
  }
  double mean_claim() const {
    return steals > 0
               ? static_cast<double>(blocks) / static_cast<double>(steals)
               : 0;
  }
};

StormResult run_storm(std::uint32_t bulk, int npes, std::uint32_t tasks,
                      net::Nanos task_ns, int reps, std::uint64_t seed) {
  pgas::RuntimeConfig rcfg;
  rcfg.npes = npes;
  rcfg.seed = seed;
  rcfg.heap_bytes = 8 << 20;
  pgas::Runtime rt(rcfg);

  const core::QueueConfig qc{/*capacity=*/8192, /*slot_bytes=*/32};
  core::SwsConfig scfg;
  scfg.bulk_claim_max = bulk;
  auto q = std::make_unique<core::SwsQueue>(rt, qc, scfg);
  // Symmetric drain counter on the owner: thieves fetch-add their haul so
  // everyone observes when the batch is gone. Identical traffic at every
  // bulk setting, so it cancels out of the comparison.
  const pgas::SymPtr counter = rt.heap().alloc(8, 8);

  StormResult out;
  std::mutex mu;
  rt.fabric().reset_stats();
  rt.run([&](pgas::PeContext& ctx) {
    for (int rep = 0; rep < reps; ++rep) {
      q->reset_pe(ctx);
      if (ctx.pe() == 0)
        ctx.fabric().amo_set(0, 0, counter.off, 0);
      ctx.barrier();
      const net::Nanos t0 = ctx.now();
      if (ctx.pe() == 0) {
        // Feed the storm in small refills so allotments stay fine-grained
        // (a handful of steal-half blocks each) — the regime where claim
        // granularity, not allotment size, decides throughput. Keep
        // exposing work whenever the shared portion drains, until the
        // counter proves every task escaped.
        constexpr std::uint32_t kRefill = 64;
        std::uint32_t fed = 0;
        while (ctx.local_load(counter) < tasks) {
          q->progress(ctx);
          if (!q->shared_available(ctx)) {
            while (q->local_count(ctx) < kRefill && fed < tasks) {
              if (!q->push_local(ctx, core::Task(0, nullptr, 0))) break;
              ++fed;
            }
            if (q->local_count(ctx) >= 2) {
              (void)q->try_release(ctx);
            } else if (fed == tasks) {
              // Remainder too small to expose: drain it locally so the
              // storm terminates (release requires >= 2 local tasks).
              core::Task leftover;
              std::uint64_t popped = 0;
              while (q->pop_local(ctx, leftover)) ++popped;
              if (popped > 0)
                ctx.fabric().amo_fetch_add(0, 0, counter.off, popped);
            }
          }
          ctx.compute(400);
        }
        std::lock_guard<std::mutex> lk(mu);
        out.drain_ms.add(static_cast<double>(ctx.now() - t0) / 1e6);
      } else {
        std::vector<core::Task> loot;
        while (true) {
          loot.clear();
          const core::StealResult r = q->steal(ctx, 0, loot);
          if (r.outcome == core::StealOutcome::kSuccess) {
            // Execute the haul before restealing: the steal's fabric cost
            // amortizes over task work, and a thief busy with a bulk claim
            // leaves the next allotment to its peers.
            ctx.compute(task_ns * r.ntasks);
            ctx.fabric().amo_fetch_add(ctx.pe(), 0, counter.off, r.ntasks);
            continue;
          }
          if (ctx.fabric().amo_fetch(ctx.pe(), 0, counter.off) >= tasks)
            break;
          ctx.compute(r.retry_after_ns > 0 ? r.retry_after_ns : 400);
        }
        ctx.quiet();  // settle completion notifications before the barrier
      }
      ctx.barrier();
    }
  });
  for (int pe = 0; pe < npes; ++pe) {
    const core::QueueOpStats& s = q->op_stats(pe);
    out.steals += s.steals_ok;
    out.stolen += s.tasks_stolen;
    out.blocks += s.blocks_claimed;
    out.releases += s.releases;
    out.pressure_releases += s.pressure_releases;
    out.full_claims += s.full_claims;
    if (pe != 0) out.thief_ops += rt.fabric().stats(pe).remote_ops;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);
  const int npes =
      static_cast<int>(opt.get("npes", std::int64_t{64}));
  const auto tasks =
      static_cast<std::uint32_t>(opt.get("tasks", std::int64_t{6000}));
  const auto task_ns =
      static_cast<net::Nanos>(opt.get("task-ns", std::int64_t{2000}));
  const int reps = std::max(settings.reps, 1);

  Table t("Ablation — SWS bulk claims: steal storm, " +
          std::to_string(npes - 1) + " thieves, " + std::to_string(tasks) +
          " tasks/rep");
  t.set_header({"bulk", "drain ms", "steals/s", "tasks/s", "ops/task",
                "bytes/steal", "mean claim", "releases", "pressure rel"});
  double base_tasks_per_s = 0;
  double base_steals_per_s = 0;
  double base_ops_per_task = 0;
  double best_tasks_per_s = 0;
  double best_steals_per_s = 0;
  double best_ops_per_task = 0;
  for (const std::uint32_t bulk : {1u, 2u, 4u, 8u}) {
    const StormResult r =
        run_storm(bulk, npes, tasks, task_ns, reps, settings.seed);
    if (bulk == 1) {
      base_tasks_per_s = r.tasks_per_s();
      base_steals_per_s = r.steals_per_s();
      base_ops_per_task = r.ops_per_task();
    } else {
      best_tasks_per_s = std::max(best_tasks_per_s, r.tasks_per_s());
      best_steals_per_s = std::max(best_steals_per_s, r.steals_per_s());
      best_ops_per_task = best_ops_per_task == 0
                              ? r.ops_per_task()
                              : std::min(best_ops_per_task, r.ops_per_task());
    }
    const double bytes_per_steal =
        r.steals > 0 ? static_cast<double>(r.stolen) * 32.0 /
                           static_cast<double>(r.steals)
                     : 0;
    t.add_row({Table::num(std::int64_t{bulk}),
               Table::num(r.drain_ms.mean(), 2),
               Table::num(r.steals_per_s(), 0),
               Table::num(r.tasks_per_s(), 0),
               Table::num(r.ops_per_task(), 2),
               Table::num(bytes_per_steal, 0),
               Table::num(r.mean_claim(), 2), Table::num(r.releases),
               Table::num(r.pressure_releases)});
    std::cerr << "  [bulk] bulk_claim_max=" << bulk
              << " done (full claims " << r.full_claims << "/" << r.steals
              << " steals)\n";
    // Regression gate for the observed-allotment cap: in this single-victim
    // storm the victim releases small multi-block allotments, so without
    // the cap a warmed-up thief's adaptive claim swallows whole allotments
    // and every other thief serializes behind the owner's renewal cadence.
    // With the cap (claim <= half the last observed allotment), whole-
    // allotment grabs should be a rare cold-start event, not the norm.
    if (bulk >= 4 && r.full_claims * 10 > r.steals) {
      std::cerr << "FAIL: bulk=" << bulk << " storm took " << r.full_claims
                << " whole multi-block allotments across " << r.steals
                << " steals (>10%); the observed-allotment claim cap has "
                   "regressed\n";
      return 1;
    }
  }
  bench::emit(t, settings);
  std::cout << "single-victim storm, best bulk vs N=1: stolen tasks/s x"
            << Table::num(best_tasks_per_s / base_tasks_per_s, 2)
            << " (raw steal ops/s x"
            << Table::num(best_steals_per_s / base_steals_per_s, 2)
            << "), fabric ops per stolen task x"
            << Table::num(best_ops_per_task / base_ops_per_task, 2) << "\n";

  // (2) Scheduler storm: the end-to-end regime. An imbalanced geometric
  // UTS tree with microsecond tasks keeps every PE stealing hard; here a
  // bulk claim's amortization shows up as whole-program throughput.
  workloads::UtsParams p;
  p.shape = workloads::UtsParams::Shape::kGeometric;
  p.b0 = 4;
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{13}));
  p.root_seed =
      static_cast<std::uint32_t>(opt.get("tree-seed", std::int64_t{19}));
  p.node_compute_ns =
      static_cast<net::Nanos>(opt.get("node-ns", std::int64_t{400}));

  bench::PoolTweaks tweaks;
  tweaks.queue.slot_bytes = 48;
  tweaks.queue.capacity = 16384;

  Table t2("Ablation — SWS bulk claims: UTS scheduler storm, " +
           std::to_string(npes) + " PEs, geo depth " +
           std::to_string(p.gen_mx));
  t2.set_header({"bulk", "runtime ms", "tasks/s", "steal ops/s",
                 "stolen tasks/s", "ops/stolen", "bytes/steal",
                 "mean claim"});
  double base2_stolen_per_s = 0, base2_ops_per_stolen = 0;
  double best2_stolen_per_s = 0, best2_ops_per_stolen = 0;
  for (const std::uint32_t bulk : {1u, 2u, 4u, 8u}) {
    tweaks.steal.bulk_claim_max = bulk;
    const bench::ConfigResult r = bench::run_config(
        core::QueueKind::kSws, npes, settings, tweaks,
        [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
          auto uts = std::make_shared<workloads::UtsBenchmark>(reg, p);
          return [uts](core::Worker& w) { uts->seed(w); };
        });
    const double secs = r.runtime_ms.sum() / 1e3;
    const double steal_ops_per_s =
        secs > 0 ? static_cast<double>(r.steals) / secs : 0;
    const double stolen_per_s =
        secs > 0 ? static_cast<double>(r.tasks_stolen) / secs : 0;
    const double ops_per_stolen =
        r.tasks_stolen > 0 ? static_cast<double>(r.remote_ops) /
                                 static_cast<double>(r.tasks_stolen)
                           : 0;
    const double bytes_per_steal =
        r.steals > 0 ? static_cast<double>(r.bytes_stolen) /
                           static_cast<double>(r.steals)
                     : 0;
    const double mean_claim =
        r.steals > 0 ? static_cast<double>(r.tasks_stolen) /
                           static_cast<double>(r.steals)
                     : 0;
    if (bulk == 1) {
      base2_stolen_per_s = stolen_per_s;
      base2_ops_per_stolen = ops_per_stolen;
    } else {
      best2_stolen_per_s = std::max(best2_stolen_per_s, stolen_per_s);
      best2_ops_per_stolen =
          best2_ops_per_stolen == 0
              ? ops_per_stolen
              : std::min(best2_ops_per_stolen, ops_per_stolen);
    }
    t2.add_row({Table::num(std::int64_t{bulk}),
                Table::num(r.runtime_ms.mean(), 2),
                Table::num(r.throughput.mean(), 0),
                Table::num(steal_ops_per_s, 0), Table::num(stolen_per_s, 0),
                Table::num(ops_per_stolen, 2),
                Table::num(bytes_per_steal, 0),
                Table::num(mean_claim, 2)});
    std::cerr << "  [bulk-uts] bulk_claim_max=" << bulk << " done\n";
  }
  bench::emit(t2, settings);
  std::cout << "bulk claims amortize the fused discover+claim AMO across N "
               "contiguous steal-half blocks: one fetch-add, one coalesced "
               "get, N cheap completion adds.\n";
  if (base2_stolen_per_s > 0 && best2_stolen_per_s > 0)
    std::cout << "UTS storm, best bulk vs N=1: steal throughput (tasks "
                 "acquired/s) x"
              << Table::num(best2_stolen_per_s / base2_stolen_per_s, 2)
              << ", fabric ops per stolen task x"
              << Table::num(best2_ops_per_stolen / base2_ops_per_stolen, 2)
              << "\n";
  return 0;
}
