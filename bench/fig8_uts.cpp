// Figure 8 (a–f): the Unbalanced Tree Search benchmark across the PE
// sweep, SDC vs SWS. UTS's huge population of microsecond-scale tasks is
// the regime where steal latency matters most — the paper reports ~9%
// whole-program improvement and 3–4x lower steal times for SWS here.
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace sws;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const auto settings = bench::BenchSettings::from_options(opt);

  workloads::UtsParams p;
  p.shape = opt.get("shape", std::string("geo")) == "bin"
                ? workloads::UtsParams::Shape::kBinomial
                : workloads::UtsParams::Shape::kGeometric;
  p.b0 = static_cast<std::uint32_t>(opt.get("b0", std::int64_t{4}));
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{15}));
  p.root_seed =
      static_cast<std::uint32_t>(opt.get("tree-seed", std::int64_t{19}));
  p.node_compute_ns =
      static_cast<net::Nanos>(opt.get("node-ns", std::int64_t{400}));

  const auto tree = workloads::uts_sequential_count(p);
  std::cerr << "UTS tree: " << tree.nodes << " nodes, max depth "
            << tree.max_depth << "\n";

  bench::PoolTweaks tweaks;
  tweaks.queue.slot_bytes = 48;
  tweaks.queue.capacity = 16384;
  // --node-size 48 reproduces the paper's 48-core-node cluster shape;
  // --topo "44x48" additionally bounds the node count.
  tweaks.net = bench::net_from_options(opt);

  bench::run_six_panels(
      "Fig 8", "UTS", settings, tweaks,
      [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
        auto uts = std::make_shared<workloads::UtsBenchmark>(reg, p);
        return [uts](core::Worker& w) { uts->seed(w); };
      });
  return 0;
}
