// Table 2: benchmark workload characteristics — total tasks, average task
// time, task size — for the scaled configurations this reproduction uses,
// next to the paper's originals.
#include <iostream>

#include "bench_common.hpp"

using namespace sws;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  const auto settings = bench::BenchSettings::from_options(opt);

  // The scaled defaults used by fig7/fig8 (see those binaries).
  workloads::BpcParams bpc;
  bpc.consumers_per_producer = 256;
  bpc.depth = 40;
  workloads::UtsParams uts;
  uts.b0 = 4;
  uts.gen_mx = 15;
  uts.node_compute_ns = 400;
  const auto tree = workloads::uts_sequential_count(uts);

  const double bpc_avg_ms =
      static_cast<double>(bpc.total_compute_ns()) / 1e6 /
      static_cast<double>(bpc.expected_tasks());

  Table t("Table 2 — workload characteristics (this reproduction vs paper)");
  t.set_header({"benchmark", "total tasks", "avg task time", "task size"});
  t.add_row({"BPC (ours)", Table::num(bpc.expected_tasks()),
             Table::num(bpc_avg_ms, 3) + " ms", "32 bytes"});
  t.add_row({"BPC (paper)", "2,457,901", "5 ms", "32 bytes"});
  t.add_row({"UTS (ours)", Table::num(tree.nodes),
             Table::num(static_cast<double>(uts.node_compute_ns) / 1e6, 5) +
                 " ms",
             "48 bytes"});
  t.add_row({"UTS (paper)", "270,751,679,750", "0.00011 ms", "48 bytes"});
  bench::emit(t, settings);

  std::cout << "UTS tree (geometric, b0=" << uts.b0
            << ", gen_mx=" << uts.gen_mx << "): " << tree.nodes
            << " nodes, max depth " << tree.max_depth << ", " << tree.leaves
            << " leaves\n"
            << "Substitution note: workload sizes are scaled to the "
               "simulated platform; shapes (task mix, irregularity) are "
               "preserved — see DESIGN.md §2.\n";
  return 0;
}
