// Ablation: steal damping (paper §4.3).
//
// A sparse endgame — a handful of busy PEs among many idle thieves — makes
// every idle PE hammer empty queues. Damping switches exhausted targets to
// read-only probes, which (a) bounds asteals growth (the 24-bit overflow
// protection) and (b) should cost nothing in runtime (the paper found no
// significant penalty).
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace sws;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto settings = bench::BenchSettings::from_options(opt);

  workloads::SparseEndgameParams p;
  p.busy_pes = 2;
  p.tasks_per_busy =
      static_cast<std::uint64_t>(opt.get("tasks", std::int64_t{96}));
  p.task_ns = 250'000;

  const auto factory =
      [p](core::TaskRegistry& reg) -> std::function<void(core::Worker&)> {
    auto se = std::make_shared<workloads::SparseEndgame>(reg, p);
    return [se](core::Worker& w) { se->seed(w); };
  };

  Table t("Ablation — SWS steal damping on/off (sparse endgame)");
  t.set_header({"npes", "runtime_on_ms", "runtime_off_ms", "penalty_pct",
                "probes_on"});
  for (const int npes : settings.pe_counts) {
    if (npes < 3) continue;  // needs idle thieves
    bench::PoolTweaks on, off;
    on.queue.slot_bytes = off.queue.slot_bytes = 32;
    on.sws.damping = true;
    off.sws.damping = false;
    const auto r_on =
        bench::run_config(core::QueueKind::kSws, npes, settings, on, factory);
    const auto r_off =
        bench::run_config(core::QueueKind::kSws, npes, settings, off, factory);
    t.add_row({Table::num(std::int64_t{npes}),
               Table::num(r_on.runtime_ms.mean(), 3),
               Table::num(r_off.runtime_ms.mean(), 3),
               Table::num(100.0 * (r_on.runtime_ms.mean() /
                                       r_off.runtime_ms.mean() -
                                   1.0),
                          2),
               Table::num(r_on.steal_attempts)});
    std::cerr << "  [damping] P=" << npes << " done\n";
  }
  bench::emit(t, settings);
  std::cout << "paper §4.3: damping bounds asteals overflow with no "
               "significant performance penalty.\n";
  return 0;
}
