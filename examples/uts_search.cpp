// Unbalanced Tree Search driver (paper §5.2.2): counts the nodes of a
// deterministic SHA-1 tree in parallel and validates against a sequential
// traversal.
//
//   ./uts_search [--npes 16] [--queue sws|sdc] [--shape geo|bin]
//                [--b0 4] [--depth 12] [--seed 19] [--verify true]
#include <iostream>

#include "common/options.hpp"
#include "sws.hpp"

int main(int argc, char** argv) {
  using namespace sws;
  Options opt(argc, argv);

  workloads::UtsParams p;
  p.shape = opt.get("shape", std::string("geo")) == "bin"
                ? workloads::UtsParams::Shape::kBinomial
                : workloads::UtsParams::Shape::kGeometric;
  p.b0 = static_cast<std::uint32_t>(opt.get("b0", std::int64_t{4}));
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{12}));
  p.root_seed = static_cast<std::uint32_t>(opt.get("seed", std::int64_t{19}));
  p.node_compute_ns = static_cast<net::Nanos>(
      opt.get("node-ns", std::int64_t{110}));

  pgas::RuntimeConfig rcfg;
  rcfg.npes = static_cast<int>(opt.get("npes", std::int64_t{16}));
  pgas::Runtime rt(rcfg);

  core::TaskRegistry registry;
  workloads::UtsBenchmark uts(registry, p);

  core::PoolConfig pcfg;
  pcfg.kind = opt.get("queue", std::string("sws")) == "sdc"
                  ? core::QueueKind::kSdc
                  : core::QueueKind::kSws;
  pcfg.queue.slot_bytes = 48;  // paper Table 2: 48-byte UTS tasks
  core::TaskPool pool(rt, registry, pcfg);

  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });

  const core::PoolRunReport r = pool.report();
  const double secs = static_cast<double>(r.total.run_time_ns) / 1e9;
  std::cout << "tree nodes     : " << r.total.tasks_executed << "\n"
            << "runtime        : " << secs * 1e3 << " ms (virtual)\n"
            << "throughput     : "
            << static_cast<double>(r.total.tasks_executed) / secs / 1e6
            << " Mnodes/s\n"
            << "steals         : " << r.total.steals_ok << " ("
            << r.total.tasks_stolen << " nodes moved)\n"
            << "steal time     : "
            << static_cast<double>(r.total.steal_time_ns) / 1e6 << " ms\n"
            << "search time    : "
            << static_cast<double>(r.total.search_time_ns) / 1e6 << " ms\n"
            << "load balance   : " << r.per_pe_executed.min() << ".."
            << r.per_pe_executed.max() << " nodes/PE (mean "
            << r.per_pe_executed.mean() << ")\n";

  if (opt.get("verify", true)) {
    const auto truth = workloads::uts_sequential_count(p);
    if (truth.nodes != r.total.tasks_executed) {
      std::cerr << "MISMATCH: sequential traversal found " << truth.nodes
                << " nodes\n";
      return 1;
    }
    std::cout << "verified against sequential traversal (max depth "
              << truth.max_depth << ", " << truth.leaves << " leaves)\n";
  }
  return 0;
}
