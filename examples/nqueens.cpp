// N-Queens by parallel backtracking — the classic irregular search the
// task-pool model is built for. Each task extends a partial placement by
// one row and spawns a child per legal column; solution counts accumulate
// locally and reduce at the end.
//
//   ./nqueens [--n 10] [--npes 8] [--queue sws|sdc] [--cutoff 4]
//
// `cutoff` bounds the spawning depth: below it, tasks finish the search
// sequentially (task granularity control, exactly how real task-parallel
// N-Queens codes are written).
#include <array>
#include <atomic>
#include <cstring>
#include <iostream>

#include "common/options.hpp"
#include "sws.hpp"

namespace {

constexpr int kMaxN = 16;

struct Board {
  std::uint8_t n;
  std::uint8_t row;
  std::uint8_t cols[kMaxN];  // queen column per placed row
};

bool safe(const Board& b, int col) {
  for (int r = 0; r < b.row; ++r) {
    const int c = b.cols[r];
    if (c == col || c - (b.row - r) == col || c + (b.row - r) == col)
      return false;
  }
  return true;
}

std::uint64_t count_sequential(Board& b) {
  if (b.row == b.n) return 1;
  std::uint64_t total = 0;
  for (int col = 0; col < b.n; ++col) {
    if (!safe(b, col)) continue;
    b.cols[b.row++] = static_cast<std::uint8_t>(col);
    total += count_sequential(b);
    --b.row;
  }
  return total;
}

// Known solution counts for validation.
constexpr std::uint64_t kKnown[] = {1,   1,    0,    0,     2,     10,
                                    4,   40,   92,   352,   724,   2680,
                                    14200, 73712, 365596, 2279184, 14772512};

std::atomic<std::uint64_t> g_solutions{0};

}  // namespace

int main(int argc, char** argv) {
  using namespace sws;
  Options opt(argc, argv);
  const int n = static_cast<int>(opt.get("n", std::int64_t{10}));
  const int cutoff = static_cast<int>(opt.get("cutoff", std::int64_t{4}));
  if (n < 1 || n > kMaxN) {
    std::cerr << "--n must be in [1," << kMaxN << "]\n";
    return 2;
  }

  pgas::RuntimeConfig rcfg;
  rcfg.npes = static_cast<int>(opt.get("npes", std::int64_t{8}));
  pgas::Runtime rt(rcfg);

  core::TaskRegistry registry;
  core::TaskFnId fn = 0;
  fn = registry.register_fn(
      "nqueens", [&](core::Worker& w, std::span<const std::byte> bytes) {
        Board b;
        std::memcpy(&b, bytes.data(), sizeof(b));
        w.compute(500);  // charge per-node virtual cost
        if (b.row >= cutoff) {
          // Sequential tail: finish this subtree in place.
          g_solutions.fetch_add(count_sequential(b),
                                std::memory_order_relaxed);
          return;
        }
        if (b.row == b.n) {
          g_solutions.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (int col = 0; col < b.n; ++col) {
          if (!safe(b, col)) continue;
          Board child = b;
          child.cols[child.row++] = static_cast<std::uint8_t>(col);
          w.spawn(core::Task::of(fn, child));
        }
      });

  core::PoolConfig pcfg;
  pcfg.kind = opt.get("queue", std::string("sws")) == "sdc"
                  ? core::QueueKind::kSdc
                  : core::QueueKind::kSws;
  pcfg.queue.slot_bytes = 32;
  core::TaskPool pool(rt, registry, pcfg);

  g_solutions.store(0);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) {
      if (w.pe() != 0) return;
      Board root{};
      root.n = static_cast<std::uint8_t>(n);
      root.row = 0;
      w.spawn(core::Task::of(fn, root));
    });
  });

  const core::PoolRunReport r = pool.report();
  const std::uint64_t solutions = g_solutions.load();
  std::cout << "n=" << n << " solutions=" << solutions
            << " tasks=" << r.total.tasks_executed
            << " steals=" << r.total.steals_ok << " runtime="
            << static_cast<double>(r.total.run_time_ns) / 1e6 << "ms\n";

  if (static_cast<std::size_t>(n) < std::size(kKnown) &&
      solutions != kKnown[n]) {
    std::cerr << "MISMATCH: expected " << kKnown[n] << "\n";
    return 1;
  }
  std::cout << "solution count verified\n";
  return 0;
}
