// Visualize a work-stealing run: traces a small UTS search and renders a
// per-PE ASCII timeline — execution density, steals, releases, acquires —
// plus an optional Chrome trace-event JSON for chrome://tracing.
//
//   ./steal_timeline [--npes 8] [--queue sws|sdc] [--depth 9]
//                    [--topo SPEC|--node-size N] [--victim POLICY]
//                    [--bulk N] [--chrome-json trace.json]
//
// --topo "2x4" models 2 nodes x 4 PEs (outermost-first; see
// docs/topology.md); --victim picks the selection policy (random,
// round_robin, tiered, distance_weighted).
//
// Legend: each column is a slice of virtual time; per PE the glyph shows
// what dominated the slice: '#' executing, 's' stole work, '.' searching,
// 'r' release, 'a' acquire, ' ' idle/terminated.
#include <fstream>
#include <iostream>
#include <vector>

#include "common/options.hpp"
#include "sws.hpp"

int main(int argc, char** argv) {
  using namespace sws;
  Options opt(argc, argv);

  pgas::RuntimeConfig rcfg;
  rcfg.npes = static_cast<int>(opt.get("npes", std::int64_t{8}));
  const std::string topo = opt.get("topo", std::string(""));
  if (!topo.empty())
    rcfg.net = net::NetworkParams::tiered(net::TopologySpec::parse(topo));
  else
    rcfg.net = net::NetworkParams::two_level(
        static_cast<int>(opt.get("node-size", std::int64_t{0})));
  pgas::Runtime rt(rcfg);

  workloads::UtsParams p;
  p.b0 = 4;
  p.gen_mx = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{9}));
  p.node_compute_ns = 2000;

  core::TaskRegistry registry;
  workloads::UtsBenchmark uts(registry, p);

  core::PoolConfig pcfg;
  pcfg.kind = opt.get("queue", std::string("sws")) == "sdc"
                  ? core::QueueKind::kSdc
                  : core::QueueKind::kSws;
  pcfg.queue.slot_bytes = 48;
  pcfg.steal.bulk_claim_max =
      static_cast<std::uint32_t>(opt.get("bulk", std::int64_t{1}));
  pcfg.victim.policy = core::parse_victim_policy(
      opt.get("victim", std::string("random")));
  pcfg.trace.enable = true;
  pcfg.trace.events = 1 << 18;
  core::TaskPool pool(rt, registry, pcfg);

  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { uts.seed(w); });
  });

  const core::PoolRunReport r = pool.report();
  const core::Tracer& tracer = pool.tracer();
  const net::Nanos span = r.total.run_time_ns;
  constexpr int kCols = 100;

  std::cout << "UTS " << r.total.tasks_executed << " nodes on " << rt.npes()
            << " PEs ("
            << (pcfg.kind == core::QueueKind::kSws ? "SWS" : "SDC")
            << "), virtual runtime "
            << static_cast<double>(span) / 1e6 << " ms\n"
            << "timeline (" << kCols << " columns, "
            << static_cast<double>(span) / kCols / 1e3
            << " us per column):  # exec  s steal  r release  a acquire  "
               ". search\n\n";

  for (int pe = 0; pe < rt.npes(); ++pe) {
    std::vector<char> lane(kCols, ' ');
    auto precedence = [](char c) {  // higher wins within a column
      switch (c) {
        case '#': return 5;
        case 's': return 4;
        case 'a': return 3;
        case 'r': return 2;
        case '.': return 1;
        default: return 0;
      }
    };
    for (const core::TraceEvent& e : tracer.events(pe)) {
      const int col = std::min<int>(
          kCols - 1,
          static_cast<int>(static_cast<double>(e.time) / span * kCols));
      char g = 0;
      switch (e.kind) {
        case core::TraceKind::kTaskExec: g = '#'; break;
        case core::TraceKind::kStealOk: g = 's'; break;
        case core::TraceKind::kRelease: g = 'r'; break;
        case core::TraceKind::kAcquire: g = 'a'; break;
        case core::TraceKind::kStealEmpty:
        case core::TraceKind::kStealRetry:
        case core::TraceKind::kTermCheck: g = '.'; break;
        default: break;
      }
      if (g && precedence(g) > precedence(lane[static_cast<std::size_t>(col)]))
        lane[static_cast<std::size_t>(col)] = g;
    }
    std::cout << "pe" << pe << (pe < 10 ? " " : "") << " |";
    for (char c : lane) std::cout << c;
    std::cout << "| " << pool.worker_stats(pe).tasks_executed << " tasks\n";
  }

  std::cout << "\nsteals: " << r.total.steals_ok << "  (p50 "
            << static_cast<double>(r.steal_latency_ns(0.5)) / 1e3 << " us, p95 "
            << static_cast<double>(r.steal_latency_ns(0.95)) / 1e3
            << " us)\n";
  std::cout << "spans: "
            << tracer.count(core::TraceKind::kStealSpan,
                            core::TracePhase::kBegin)
            << " steal, "
            << tracer.count(core::TraceKind::kReleaseSpan,
                            core::TracePhase::kBegin)
            << " release, "
            << tracer.count(core::TraceKind::kAcquireSpan,
                            core::TracePhase::kBegin)
            << " acquire;  " << tracer.count(core::TraceKind::kFabricOp)
            << " fabric ops attributed"
            << (tracer.truncated() ? "  [ring wrapped: grow --trace events]"
                                   : "")
            << "\n";

  const std::string json_path = opt.get("chrome-json", std::string(""));
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    // The pool's dump embeds run metadata (protocol, npes, slot size) —
    // required by sws-analyze, harmless for Perfetto / chrome://tracing.
    pool.dump_trace_json(out);
    std::cout << "chrome trace written to " << json_path
              << " (load in Perfetto or chrome://tracing; analyze with "
               "sws-analyze)\n";
  }
  return 0;
}
