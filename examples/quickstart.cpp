// Quickstart: spawn a recursive fan-out of tasks and let the SWS pool
// balance them across simulated PEs.
//
//   ./quickstart [--npes 8] [--queue sws|sdc] [--fanout 4] [--depth 6]
//                [--task-us 50] [--mode virtual|real]
//
// Each task charges `task-us` of compute and spawns `fanout` children
// until `depth` reaches zero; the pool prints where the work actually ran.
#include <cstring>
#include <iostream>

#include "common/options.hpp"
#include "sws.hpp"

namespace {

struct NodeArgs {
  std::uint32_t depth;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sws;
  Options opt(argc, argv);

  pgas::RuntimeConfig rcfg;
  rcfg.npes = static_cast<int>(opt.get("npes", std::int64_t{8}));
  rcfg.mode = opt.get("mode", std::string("virtual")) == "real"
                  ? pgas::TimeMode::kReal
                  : pgas::TimeMode::kVirtual;
  rcfg.seed = static_cast<std::uint64_t>(opt.get("seed", std::int64_t{42}));

  core::PoolConfig pcfg;
  pcfg.kind = opt.get("queue", std::string("sws")) == "sdc"
                  ? core::QueueKind::kSdc
                  : core::QueueKind::kSws;
  pcfg.queue.capacity = 16384;
  pcfg.queue.slot_bytes = 32;

  const auto fanout = static_cast<std::uint32_t>(opt.get("fanout", std::int64_t{4}));
  const auto depth = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{6}));
  const auto task_ns =
      static_cast<net::Nanos>(opt.get("task-us", std::int64_t{50})) * 1000;

  pgas::Runtime rt(rcfg);
  core::TaskRegistry registry;

  core::TaskFnId node_fn = 0;
  node_fn = registry.register_fn(
      "node", [&](core::Worker& w, std::span<const std::byte> bytes) {
        NodeArgs a;
        std::memcpy(&a, bytes.data(), sizeof(a));
        w.compute(task_ns);
        if (a.depth == 0) return;
        for (std::uint32_t i = 0; i < fanout; ++i)
          w.spawn(core::Task::of(node_fn, NodeArgs{a.depth - 1}));
      });

  core::TaskPool pool(rt, registry, pcfg);
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) {
      if (w.pe() == 0) w.spawn(core::Task::of(node_fn, NodeArgs{depth}));
    });
  });

  const core::PoolRunReport r = pool.report();
  std::uint64_t expected = 0, layer = 1;
  for (std::uint32_t d = 0; d <= depth; ++d) expected += layer, layer *= fanout;

  std::cout << "queue      : "
            << (pcfg.kind == core::QueueKind::kSws ? "SWS" : "SDC") << "\n"
            << "npes       : " << rt.npes() << "\n"
            << "tasks      : " << r.total.tasks_executed << " (expected "
            << expected << ")\n"
            << "steals     : " << r.total.steals_ok << " ("
            << r.total.tasks_stolen << " tasks moved)\n"
            << "runtime    : " << static_cast<double>(r.total.run_time_ns) / 1e6
            << " ms (virtual)\n"
            << "steal time : "
            << static_cast<double>(r.total.steal_time_ns) / 1e6 << " ms\n"
            << "search time: "
            << static_cast<double>(r.total.search_time_ns) / 1e6 << " ms\n"
            << "balance    : mean " << r.per_pe_executed.mean() << " / max "
            << r.per_pe_executed.max() << " tasks per PE\n";

  return r.total.tasks_executed == expected ? 0 : 1;
}
