// Monte-Carlo π: explicit work scatter with spawn_on + a PGAS reduction.
//
// The root spawns one sampling task per PE directly into each PE's inbox
// (Worker::spawn_on — the paper's "spawn tasks onto remote queues"),
// every PE accumulates its hit count in symmetric memory, and the result
// reduces with sum_u64. No stealing required — this example shows the
// pool being used as a plain SPMD task launcher.
//
//   ./pi_montecarlo [--npes 8] [--samples-per-pe 2000000] [--queue sws|sdc]
#include <cstring>
#include <iostream>

#include "common/options.hpp"
#include "sws.hpp"

namespace {

struct ChunkArgs {
  std::uint64_t samples;
  std::uint64_t seed;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sws;
  Options opt(argc, argv);

  const auto samples_per_pe = static_cast<std::uint64_t>(
      opt.get("samples-per-pe", std::int64_t{2'000'000}));

  pgas::RuntimeConfig rcfg;
  rcfg.npes = static_cast<int>(opt.get("npes", std::int64_t{8}));
  pgas::Runtime rt(rcfg);

  // Per-PE hit counter in symmetric memory.
  const pgas::SymPtr hits = rt.heap().alloc(8);

  core::TaskRegistry registry;
  const core::TaskFnId chunk_fn = registry.register_fn(
      "pi.chunk", [&](core::Worker& w, std::span<const std::byte> bytes) {
        ChunkArgs a;
        std::memcpy(&a, bytes.data(), sizeof(a));
        Xoshiro256 rng(a.seed, static_cast<std::uint64_t>(w.pe()));
        std::uint64_t inside = 0;
        for (std::uint64_t i = 0; i < a.samples; ++i) {
          const double x = rng.uniform(), y = rng.uniform();
          if (x * x + y * y < 1.0) ++inside;
        }
        // ~4 ns per sample of virtual compute keeps the DES honest.
        w.compute(a.samples * 4);
        w.ctx().set(w.pe(), hits, inside);
      });

  core::PoolConfig pcfg;
  pcfg.kind = opt.get("queue", std::string("sws")) == "sdc"
                  ? core::QueueKind::kSdc
                  : core::QueueKind::kSws;
  pcfg.queue.slot_bytes = 32;
  core::TaskPool pool(rt, registry, pcfg);

  std::uint64_t total_inside = 0;
  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) {
      if (w.pe() != 0) return;
      for (int pe = 0; pe < w.npes(); ++pe)
        w.spawn_on(pe, core::Task::of(
                           chunk_fn,
                           ChunkArgs{samples_per_pe,
                                     rt.config().seed + 31ull * pe}));
    });
    // Reduce after the pool quiesces.
    const std::uint64_t mine = ctx.local_load(hits);
    const std::uint64_t sum = ctx.sum_u64(mine);
    if (ctx.pe() == 0) total_inside = sum;
  });

  const std::uint64_t total =
      samples_per_pe * static_cast<std::uint64_t>(rt.npes());
  const double pi = 4.0 * static_cast<double>(total_inside) /
                    static_cast<double>(total);
  std::cout << "samples : " << total << " across " << rt.npes() << " PEs\n"
            << "pi      : " << pi << " (error "
            << pi - 3.14159265358979 << ")\n"
            << "runtime : "
            << static_cast<double>(rt.last_run_duration()) / 1e6
            << " ms (virtual)\n";
  return (pi > 3.10 && pi < 3.18) ? 0 : 1;
}
