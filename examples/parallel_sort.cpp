// Parallel PGAS quicksort: recursive partitioning as pool tasks, data in
// the symmetric heap, all access through one-sided communication.
//
// Each PE owns a shard of keys in symmetric memory. A sort task names a
// (shard, lo, hi) range; whoever executes it — owner or thief — fetches
// the range with a one-sided get, partitions (or finishes with std::sort
// below the cutoff), writes it back with a put, and spawns subtasks for
// the two sides. Ranges are disjoint and parents complete before children
// spawn, so the remote reads/writes never overlap.
//
//   ./parallel_sort [--npes 8] [--n 200000] [--queue sws|sdc] [--cutoff 4096]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/options.hpp"
#include "common/rng.hpp"
#include "sws.hpp"

namespace {

struct SortRange {
  std::uint32_t shard;   // PE owning the keys
  std::uint32_t lo, hi;  // index range [lo, hi) within the shard
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sws;
  Options opt(argc, argv);

  const auto total_n =
      static_cast<std::uint32_t>(opt.get("n", std::int64_t{200'000}));
  const auto cutoff = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(opt.get("cutoff", std::int64_t{4096})));

  pgas::RuntimeConfig rcfg;
  rcfg.npes = static_cast<int>(opt.get("npes", std::int64_t{8}));
  const std::uint32_t shard_n =
      total_n / static_cast<std::uint32_t>(rcfg.npes);
  rcfg.heap_bytes =
      static_cast<std::size_t>(shard_n) * 8 + (std::size_t{2} << 20);
  pgas::Runtime rt(rcfg);

  const pgas::SymPtr data =
      rt.heap().alloc(static_cast<std::size_t>(shard_n) * 8, 64);

  core::TaskRegistry registry;
  core::TaskFnId sort_fn = 0;
  sort_fn = registry.register_fn(
      "sort.range", [&](core::Worker& w, std::span<const std::byte> bytes) {
        SortRange r;
        std::memcpy(&r, bytes.data(), sizeof(r));
        const std::uint32_t n = r.hi - r.lo;
        const int shard = static_cast<int>(r.shard);

        // One-sided fetch of the range (owner pays only loopback cost).
        std::vector<std::uint64_t> keys(n);
        w.ctx().get(shard, data, std::uint64_t{r.lo} * 8, keys.data(),
                    static_cast<std::size_t>(n) * 8);
        w.compute(static_cast<net::Nanos>(n) * 2);  // partition work

        if (n <= cutoff) {
          std::sort(keys.begin(), keys.end());
          w.ctx().put(shard, data, std::uint64_t{r.lo} * 8, keys.data(),
                      static_cast<std::size_t>(n) * 8);
          return;
        }

        // Median-of-three pivot, then partition and write back.
        const std::uint64_t a = keys.front(), b = keys[n / 2],
                            c = keys.back();
        const std::uint64_t pivot =
            std::max(std::min(a, b), std::min(std::max(a, b), c));
        auto mid = std::partition(keys.begin(), keys.end(),
                                  [&](std::uint64_t x) { return x < pivot; });
        // Guard against degenerate splits (all keys >= pivot).
        if (mid == keys.begin()) ++mid;
        const auto cut =
            r.lo + static_cast<std::uint32_t>(mid - keys.begin());
        w.ctx().put(shard, data, std::uint64_t{r.lo} * 8, keys.data(),
                    static_cast<std::size_t>(n) * 8);

        w.spawn(core::Task::of(sort_fn, SortRange{r.shard, r.lo, cut}));
        if (cut < r.hi)
          w.spawn(core::Task::of(sort_fn, SortRange{r.shard, cut, r.hi}));
      });

  core::PoolConfig pcfg;
  pcfg.kind = opt.get("queue", std::string("sws")) == "sdc"
                  ? core::QueueKind::kSdc
                  : core::QueueKind::kSws;
  pcfg.queue.slot_bytes = 32;
  pcfg.queue.capacity = 16384;
  core::TaskPool pool(rt, registry, pcfg);

  std::uint64_t shards_sorted = 0;
  rt.run([&](pgas::PeContext& ctx) {
    // Deterministic pseudo-random keys into this PE's own shard.
    Xoshiro256 rng(rt.config().seed, static_cast<std::uint64_t>(ctx.pe()));
    auto* a = reinterpret_cast<std::uint64_t*>(ctx.local(data));
    for (std::uint32_t i = 0; i < shard_n; ++i) a[i] = rng.next();
    ctx.barrier();

    pool.run_pe(ctx, [&](core::Worker& w) {
      // Every PE seeds its own shard's sort; skewed partition trees then
      // balance through stealing.
      w.spawn(core::Task::of(
          sort_fn,
          SortRange{static_cast<std::uint32_t>(w.pe()), 0, shard_n}));
    });

    std::uint64_t sorted = 1;
    for (std::uint32_t i = 1; i < shard_n; ++i)
      if (a[i - 1] > a[i]) sorted = 0;
    const std::uint64_t total = ctx.sum_u64(sorted);
    if (ctx.pe() == 0) shards_sorted = total;
  });

  const core::PoolRunReport r = pool.report();
  std::cout << "keys sorted : "
            << shard_n * static_cast<std::uint32_t>(rt.npes()) << " across "
            << rt.npes() << " shards\n"
            << "tasks       : " << r.total.tasks_executed << "\n"
            << "steals      : " << r.total.steals_ok << " ("
            << r.total.tasks_stolen << " ranges moved)\n"
            << "runtime     : "
            << static_cast<double>(r.total.run_time_ns) / 1e6
            << " ms (virtual)\n";
  if (shards_sorted != static_cast<std::uint64_t>(rt.npes())) {
    std::cerr << "SORT FAILED on "
              << static_cast<std::uint64_t>(rt.npes()) - shards_sorted
              << " shard(s)\n";
    return 1;
  }
  std::cout << "verified: every shard is sorted\n";
  return 0;
}
