// Bouncing Producer-Consumer demo (paper §5.2.1): watch a producer chain
// bounce between PEs while consumers fan out behind it.
//
//   ./bpc_demo [--npes 8] [--queue sws|sdc] [--n 64] [--depth 20]
//              [--consumer-us 5000] [--producer-us 1000]
#include <iostream>

#include "common/options.hpp"
#include "common/table.hpp"
#include "sws.hpp"

int main(int argc, char** argv) {
  using namespace sws;
  Options opt(argc, argv);

  workloads::BpcParams p;
  p.consumers_per_producer =
      static_cast<std::uint32_t>(opt.get("n", std::int64_t{64}));
  p.depth = static_cast<std::uint32_t>(opt.get("depth", std::int64_t{20}));
  p.consumer_ns =
      static_cast<net::Nanos>(opt.get("consumer-us", std::int64_t{5000})) *
      1000;
  p.producer_ns =
      static_cast<net::Nanos>(opt.get("producer-us", std::int64_t{1000})) *
      1000;

  pgas::RuntimeConfig rcfg;
  rcfg.npes = static_cast<int>(opt.get("npes", std::int64_t{8}));
  pgas::Runtime rt(rcfg);

  core::TaskRegistry registry;
  workloads::BpcBenchmark bpc(registry, p);

  core::PoolConfig pcfg;
  pcfg.kind = opt.get("queue", std::string("sws")) == "sdc"
                  ? core::QueueKind::kSdc
                  : core::QueueKind::kSws;
  pcfg.queue.slot_bytes = 32;  // paper Table 2: 32-byte BPC tasks
  core::TaskPool pool(rt, registry, pcfg);

  rt.run([&](pgas::PeContext& ctx) {
    pool.run_pe(ctx, [&](core::Worker& w) { bpc.seed(w); });
  });

  const core::PoolRunReport r = pool.report();
  if (r.total.tasks_executed != p.expected_tasks()) {
    std::cerr << "MISMATCH: executed " << r.total.tasks_executed
              << ", expected " << p.expected_tasks() << "\n";
    return 1;
  }

  const double secs = static_cast<double>(r.total.run_time_ns) / 1e9;
  const double ideal =
      static_cast<double>(p.total_compute_ns()) / rcfg.npes / 1e9;
  std::cout << "tasks executed : " << r.total.tasks_executed << " (verified)\n"
            << "runtime        : " << secs * 1e3 << " ms (virtual), ideal "
            << ideal * 1e3 << " ms\n"
            << "efficiency     : " << 100.0 * ideal / secs << " %\n"
            << "steals         : " << r.total.steals_ok << "\n\n";

  Table t("per-PE work distribution");
  t.set_header({"pe", "tasks", "stolen-in", "steal ms", "search ms"});
  for (int pe = 0; pe < rt.npes(); ++pe) {
    const core::WorkerStats& w = pool.worker_stats(pe);
    t.add_row({Table::num(std::uint64_t(pe)), Table::num(w.tasks_executed),
               Table::num(w.tasks_stolen),
               Table::num(static_cast<double>(w.steal_time_ns) / 1e6, 3),
               Table::num(static_cast<double>(w.search_time_ns) / 1e6, 3)});
  }
  t.print(std::cout);
  return 0;
}
