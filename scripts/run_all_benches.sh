#!/usr/bin/env sh
# Regenerate every paper table/figure and the ablations.
#
#   scripts/run_all_benches.sh [outdir]
#
# Writes one .txt (aligned tables) and one .csv per bench binary into
# `outdir` (default: results/), then renders ASCII charts from the CSVs.
set -eu

outdir="${1:-results}"
mkdir -p "$outdir"
build="${BUILD_DIR:-build}"

for b in "$build"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  case "$name" in
    gbench_queueops)
      echo "== $name =="
      "$b" --benchmark_min_time=0.05 >"$outdir/$name.txt" 2>/dev/null
      ;;
    *)
      echo "== $name =="
      "$b" >"$outdir/$name.txt" 2>/dev/null
      "$b" --csv >"$outdir/$name.csv" 2>/dev/null
      ;;
  esac
done

if command -v python3 >/dev/null 2>&1; then
  python3 "$(dirname "$0")/plot_results.py" "$outdir"/*.csv \
    >"$outdir/charts.txt" || true
  echo "charts: $outdir/charts.txt"
fi
echo "done: $outdir/"
