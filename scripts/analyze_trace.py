#!/usr/bin/env python3
"""Analyze a Tracer::dump_chrome_json trace without the C++ build tree.

Pure-python mirror of tools/sws-analyze (same span model, same checks):

    analyze_trace.py trace.json                full report
    analyze_trace.py --report trace.json       + critical path & hot-victim
                                               convoy summary
    analyze_trace.py --diff a.json b.json      A/B comparison
    analyze_trace.py --self-check trace.json   protocol op-shape check;
                                               exit 1 on any violation
    analyze_trace.py --timeseries ts.json ...  also summarize an
                                               sws-timeseries document and
                                               verify the accounting
                                               invariant (exit 1 on mismatch)

The self-check encodes the paper's Fig 2 claim: a successful SWS steal is
exactly one remote fetch-add + one task-copy get (two if the victim ring
wrapped) + one non-blocking completion add; a successful SDC steal is the
six-op lock / fetch / claim / unlock / copy / notify sequence.
"""

import argparse
import json
import statistics
import sys
from collections import Counter, defaultdict

OUTCOMES = {0: "ok", 1: "empty", 2: "retry"}


def parse_trace(path):
    with open(path) as f:
        events = json.load(f)

    run = {
        "protocol": "",
        "npes": 0,
        "topo": "",
        "crash_mode": False,
        "truncated": False,
        "spans": [],
        "orphan_begins": 0,
        "orphan_ends": 0,
        "orphan_ops": 0,
        "duration_ns": 0,
        "deaths_detected": 0,
        "reroutes": 0,
        "rerouted_tasks": 0,
    }
    open_spans = {}

    def ns(ev, key="ts"):
        return round(float(ev.get(key, 0)) * 1000)

    for ev in events:
        name, ph = ev.get("name", ""), ev.get("ph", "")
        args = ev.get("args", {})
        if name == "sws_run_meta":
            run["protocol"] = args.get("protocol", "")
            run["npes"] = args.get("npes", 0)
            run["topo"] = args.get("topo", "")
            run["crash_mode"] = bool(args.get("crashes", 0))
            run["truncated"] = bool(args.get("truncated", 0))
            continue
        run["duration_ns"] = max(run["duration_ns"], ns(ev))
        if ph == "B":
            sid = args.get("span", 0)
            if sid in open_spans:
                run["orphan_begins"] += 1
            open_spans[sid] = {
                "kind": name,
                "pe": ev.get("tid", -1),
                "begin_ns": ns(ev),
                "victim": args.get("a", 0),
                "ops": [],
            }
        elif ph == "E":
            sid = args.get("span", 0)
            span = open_spans.pop(sid, None)
            if span is None:
                run["orphan_ends"] += 1
                continue
            span["end_ns"] = ns(ev)
            b = int(args.get("b", 0))
            span["b_end"] = b
            span["outcome"], span["ntasks"] = b & 0xFF, b >> 8
            run["spans"].append(span)
        elif ph == "X":
            run["duration_ns"] = max(run["duration_ns"], ns(ev) + ns(ev, "dur"))
            span = open_spans.get(args.get("span", 0))
            if span is None:
                run["orphan_ops"] += 1
                continue
            span["ops"].append({"op": args.get("op", ""),
                                "ts_ns": ns(ev), "dur_ns": ns(ev, "dur")})
        elif ph == "i":
            # Crash-recovery instants (docs/resilience.md).
            if name == "death_detected":
                run["deaths_detected"] += 1
            elif name == "rerouted":
                run["reroutes"] += 1
                run["rerouted_tasks"] += int(args.get("b", 0))

    run["orphan_begins"] += len(open_spans)
    run["spans"].sort(key=lambda s: (s["begin_ns"], s["pe"]))
    return run


def check_success(protocol, span, crash_mode=False):
    """Return a list of Fig 2 shape violations for one successful steal.

    Legitimate contention ops are admitted: SWS may lead with one
    empty-mode probe fetch; SDC pays one extra cswap + one probe get per
    failed lock attempt, plus one claim-intent put when the run has a
    crash-stop FaultPlan armed (docs/resilience.md).
    """
    ops = Counter(o["op"] for o in span["ops"])
    gets = ops["get"]
    bad = []
    if protocol == "sws":
        probes = ops["amo_fetch"]
        nbi_adds = ops["nbi_amo_add"]
        if ops["amo_fetch_add"] != 1:
            bad.append("expected exactly 1 remote fetch-add")
        if probes > 1:
            bad.append("expected at most 1 empty-mode probe fetch")
        if not 1 <= gets <= 2:
            bad.append("expected 1 task-copy get (2 if wrapped)")
        # Bulk claims: one completion add per claimed block, still one
        # fetch-add and one coalesced copy.
        if not 1 <= nbi_adds <= 32:
            bad.append("expected 1 nbi completion add per claimed block "
                       "(1..32)")
        if sum(ops.values()) != 1 + gets + probes + nbi_adds:
            bad.append("unexpected extra ops in SWS steal")
    elif protocol == "sdc":
        want_puts = 2 if crash_mode else 1
        cswaps = ops["amo_cswap"]
        if cswaps < 1:
            bad.append("expected at least 1 lock cswap")
        if ops["put"] != want_puts:
            bad.append("expected claim-intent put + tail-claim put (crash "
                       "mode)" if crash_mode else "expected exactly 1 "
                       "tail-claim put")
        for op, what in (("amo_set", "unlock set"),
                         ("nbi_amo_set", "nbi completion set")):
            if ops[op] != 1:
                bad.append(f"expected exactly 1 {what}")
        if not cswaps + 1 <= gets <= cswaps + 2:
            bad.append("expected 1 probe get per failed lock attempt "
                       "+ metadata get + task-copy get (1 more if wrapped)")
        if sum(ops.values()) != 2 + want_puts + cswaps + gets:
            bad.append("unexpected extra ops in SDC steal")
    return [
        f"{protocol} steal (pe {span['pe']} -> victim {span['victim']}, "
        f"t={span['begin_ns']}ns): {w} [ops: {dict(ops)}]" for w in bad
    ]


def analyze(run, window_ns=0):
    r = {
        "protocol": run["protocol"],
        "npes": run["npes"],
        "truncated": run["truncated"],
        "duration_ns": run["duration_ns"],
        "steals": Counter(),
        "tasks_stolen": 0,
        "signatures": Counter(),
        "latency": defaultdict(list),
        "releases": 0,
        "acquires": 0,
        "recovery_spans": 0,
        "tasks_recovered": 0,
        "deaths_detected": run["deaths_detected"],
        "reroutes": run["reroutes"],
        "rerouted_tasks": run["rerouted_tasks"],
        "violations": [],
        "ops_per_success": 0.0,
        "blocking_per_success": 0.0,
    }
    # A trace that names its protocol but not its topology is an
    # incomplete dump; refuse loudly rather than mis-attribute tiers.
    if run["protocol"] and not run["topo"]:
        r["violations"].append(
            "trace meta lacks topo: re-dump with a current writer "
            "(victim-tier attribution would be silently wrong)")
    window_ns = window_ns or max(run["duration_ns"] // 64, 1000)
    r["window_ns"] = window_ns
    windows = defaultdict(lambda: Counter())
    total_ops = total_blocking = 0

    for s in run["spans"]:
        if s["kind"] == "release_span":
            r["releases"] += 1
            continue
        if s["kind"] == "acquire_span":
            r["acquires"] += 1
            continue
        if s["kind"] == "recovery":
            r["recovery_spans"] += 1
            r["tasks_recovered"] += s.get("b_end", 0)
            continue
        if s["kind"] != "steal":
            continue
        outcome = OUTCOMES.get(s["outcome"], "retry")
        r["steals"][outcome] += 1
        r["latency"][outcome].append(s["end_ns"] - s["begin_ns"])
        w = windows[s["begin_ns"] // window_ns]
        if outcome == "ok":
            w["oks"] += 1
            r["tasks_stolen"] += s["ntasks"]
            sig = " ".join(f"{k}:{v}" for k, v in sorted(
                Counter(o["op"] for o in s["ops"]).items()))
            r["signatures"][sig or "(none)"] += 1
            total_ops += len(s["ops"])
            total_blocking += sum(
                1 for o in s["ops"] if not o["op"].startswith("nbi_"))
            if run["protocol"] and not run["truncated"]:
                r["violations"] += check_success(run["protocol"], s,
                                                run["crash_mode"])
        else:
            w["fails"] += 1
            if outcome == "retry":
                w["retries"] += 1

    oks = r["steals"]["ok"]
    if oks:
        r["ops_per_success"] = total_ops / oks
        r["blocking_per_success"] = total_blocking / oks
    r["storm_windows"] = sum(
        1 for w in windows.values() if w["fails"] >= 16 and w["fails"] >= 4 * w["oks"])
    r["churn_windows"] = sum(
        1 for w in windows.values()
        if w["retries"] >= 8 and 2 * w["retries"] >= sum(w.values()) - w["retries"])
    # Orphaned spans are expected when a PE crashed mid-steal (crash mode).
    if (not run["truncated"] and not run["crash_mode"]
            and (run["orphan_begins"] or run["orphan_ends"])):
        r["violations"].append(
            f"orphaned span begin/end in an untruncated trace "
            f"({run['orphan_begins']} begins, {run['orphan_ends']} ends)")
    return r


def _union_length(intervals):
    """Total length of the union of [lo, hi) intervals."""
    if not intervals:
        return 0
    intervals.sort()
    total, (lo, hi) = 0, intervals[0]
    for nlo, nhi in intervals[1:]:
        if nlo > hi:
            total += hi - lo
            lo, hi = nlo, nhi
        else:
            hi = max(hi, nhi)
    return total + (hi - lo)


def _is_search_kind(span):
    if span["kind"] == "steal":
        return span["outcome"] != 0
    return span["kind"] in ("release_span", "acquire_span", "recovery")


def critical_path(run):
    """Walk the termination chain backwards through successful steals.

    Mirrors obs::critical_path: start at the PE whose last span ends
    latest; at each step the latest successful steal at or before t is the
    dependency that delivered the work, everything after it on this PE is
    local (split into search overhead vs work by span overlap), the steal
    span itself is a hop (split into fabric occupancy vs protocol
    residue), and the chain continues at the victim. The four blame
    buckets sum exactly to path_ns.
    """
    cp = {"end_pe": -1, "path_ns": run["duration_ns"], "steal_hops": 0,
          "work_ns": 0, "search_ns": 0, "steal_fabric_ns": 0,
          "steal_proto_ns": 0, "hop_pes": []}
    if not run["spans"]:
        return cp
    by_pe, ok_steals, last = defaultdict(list), defaultdict(list), None
    for s in run["spans"]:
        by_pe[s["pe"]].append(s)
        if s["kind"] == "steal" and s["outcome"] == 0:
            ok_steals[s["pe"]].append(s)
        if (last is None or s["end_ns"] > last["end_ns"]
                or (s["end_ns"] == last["end_ns"] and s["pe"] < last["pe"])):
            last = s
    for v in ok_steals.values():
        v.sort(key=lambda s: s["end_ns"])
    cp["end_pe"] = last["pe"]
    cp["hop_pes"].append(last["pe"])

    def blame_local(pe, lo, hi):
        if hi <= lo:
            return
        iv = [(max(lo, s["begin_ns"]), min(hi, s["end_ns"]))
              for s in by_pe.get(pe, [])
              if s["begin_ns"] < hi and s["end_ns"] > lo
              and _is_search_kind(s)]
        search = _union_length(iv)
        cp["search_ns"] += search
        cp["work_ns"] += (hi - lo) - search

    cur_pe, t = cp["end_pe"], run["duration_ns"]
    for _ in range(len(run["spans"]) + 1):
        hop = None
        for s in ok_steals.get(cur_pe, []):
            if s["end_ns"] <= t:
                hop = s
            else:
                break
        if hop is None or hop["begin_ns"] >= t:
            blame_local(cur_pe, 0, t)
            break
        blame_local(cur_pe, hop["end_ns"], t)
        iv = [(max(hop["begin_ns"], o["ts_ns"]),
               min(hop["end_ns"], o["ts_ns"] + o["dur_ns"]))
              for o in hop["ops"]
              if o["ts_ns"] + o["dur_ns"] > hop["begin_ns"]
              and o["ts_ns"] < hop["end_ns"]]
        fabric = _union_length(iv)
        cp["steal_fabric_ns"] += fabric
        cp["steal_proto_ns"] += hop["end_ns"] - hop["begin_ns"] - fabric
        cp["steal_hops"] += 1
        t, cur_pe = hop["begin_ns"], hop["victim"]
        cp["hop_pes"].append(cur_pe)
    return cp


def convoy_report(run, window_ns=0):
    """Rank victims by peak windowed inbound steal pressure."""
    window_ns = window_ns or max(run["duration_ns"] // 64, 1000)
    victims = defaultdict(lambda: {"attempts": 0, "ok": 0,
                                   "windows": Counter()})
    for s in run["spans"]:
        if s["kind"] != "steal":
            continue
        v = victims[s["victim"]]
        v["attempts"] += 1
        if s["outcome"] == 0:
            v["ok"] += 1
        v["windows"][s["begin_ns"] // window_ns] += 1
    out = []
    for pe, v in victims.items():
        peak_w, peak_n = 0, 0
        for w, n in sorted(v["windows"].items()):
            if n > peak_n:
                peak_w, peak_n = w, n
        out.append({"pe": pe, "inbound_attempts": v["attempts"],
                    "inbound_ok": v["ok"], "peak_window_attempts": peak_n,
                    "peak_window_start_ns": peak_w * window_ns})
    out.sort(key=lambda v: (-v["peak_window_attempts"],
                            -v["inbound_attempts"], v["pe"]))
    return {"window_ns": window_ns, "victims": out}


def print_critical_path(cp):
    print("critical path (termination chain, walked backwards):")
    print(f"  path_ns={cp['path_ns']} steal_hops={cp['steal_hops']}")

    def pct(v):
        return 100.0 * v / cp["path_ns"] if cp["path_ns"] else 0.0

    for label, key in (("task work + park", "work_ns"),
                       ("steal search", "search_ns"),
                       ("hop steal fabric", "steal_fabric_ns"),
                       ("hop steal protocol", "steal_proto_ns")):
        print(f"  {label:<24}{cp[key]:>12}  ({pct(cp[key]):.1f}%)")
    chain = cp["hop_pes"]
    shown = " ".join(str(p) for p in chain[:16])
    more = f" ... ({len(chain) - 16} more)" if len(chain) > 16 else ""
    print(f"  chain (end pe first): {shown}{more}")


def print_convoy(cr, top=5):
    print(f"hot victims (inbound steal pressure, window={cr['window_ns']}ns):")
    if not cr["victims"]:
        print("  (no steal spans in trace)")
        return
    for v in cr["victims"][:top]:
        print(f"  pe {v['pe']:<6}inbound={v['inbound_attempts']} "
              f"(ok={v['inbound_ok']})  peak={v['peak_window_attempts']} "
              f"attempts @t={v['peak_window_start_ns']}ns")
    if len(cr["victims"]) > top:
        print(f"  ... {len(cr['victims']) - top} more victims")


# The acct.* category names, mirroring core::pool_phase_name.
ACCT_CATEGORIES = ("working", "probing", "stealing", "parked",
                   "blocked_nbi", "recovering", "idle_terminating")


def load_timeseries(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "sws-timeseries":
        raise ValueError(f"{path}: not an sws-timeseries document")
    for s in doc.get("series", []):
        if len(s["v"]) != len(doc["t"]):
            raise ValueError(
                f"{path}: series {s['name']} length disagrees with t")
    return doc


def ts_find(doc, name):
    for s in doc.get("series", []):
        if s["name"] == name:
            return s
    return None


def check_accounting(doc):
    """Per window, the acct.* deltas must sum exactly to elapsed."""
    errors = []
    elapsed = ts_find(doc, "acct.elapsed_ns")
    if elapsed is None:
        return errors
    cats = []
    for c in ACCT_CATEGORIES:
        s = ts_find(doc, f"acct.{c}")
        if s is None:
            return [f"accounting series missing: acct.{c}"]
        cats.append(s)
    for i, t in enumerate(doc["t"]):
        total = sum(s["v"][i] for s in cats)
        if total != elapsed["v"][i]:
            errors.append(f"accounting mismatch at t={t}ns: "
                          f"sum(categories)={total} != "
                          f"elapsed={elapsed['v'][i]} "
                          f"(delta {total - elapsed['v'][i]}ns)")
            if len(errors) >= 16:
                errors.append("... further mismatches suppressed")
                break
    return errors


def timeseries_summary(doc):
    n = len(doc.get("t", []))
    hdr = (f"time series: interval={doc.get('interval_ns', 0)}ns samples={n}")
    if doc.get("protocol"):
        hdr += f" protocol={doc['protocol']}"
    if doc.get("npes"):
        hdr += f" npes={doc['npes']}"
    if doc.get("truncated"):
        hdr += " (TRUNCATED at sample cap)"
    print(hdr)
    if not n:
        return
    elapsed = ts_find(doc, "acct.elapsed_ns")
    if elapsed is not None:
        working = ts_find(doc, "acct.working")
        if working is not None:
            bars = " .:-=+*#%@"
            line = "".join(
                bars[round(9 * min(1.0, max(0.0, w / e)) if e else 0)]
                for w, e in zip(working["v"], elapsed["v"]))
            print("utilization (acct.working / acct.elapsed_ns per window, "
                  "' '=0% '@'=100%):")
            print(f"  [{line}]")
        total_elapsed = sum(elapsed["v"])
        print("phase breakdown (all PEs):")
        for c in ACCT_CATEGORIES:
            s = ts_find(doc, f"acct.{c}")
            if s is None:
                continue
            total = sum(s["v"])
            pct = (f"  ({100.0 * total / total_elapsed:.1f}%)"
                   if total_elapsed else "")
            print(f"  acct.{c:<21}{total:>12}{pct}")
    totals = [(name, sum(s["v"])) for name, s in
              ((k, ts_find(doc, k)) for k in
               ("pool.tasks_executed", "pool.steal_attempts",
                "pool.steals_ok", "fabric.remote_ops")) if s is not None]
    if totals:
        print("activity totals:")
        for name, total in totals:
            print(f"  {name:<26}{total}")


def quantiles(xs):
    if not xs:
        return "n=0"
    xs = sorted(xs)
    q = lambda p: xs[min(len(xs) - 1, int(p * (len(xs) - 1)))]
    return (f"n={len(xs)} p50={q(.5)}ns p95={q(.95)}ns "
            f"p99={q(.99)}ns max={xs[-1]}ns")


def report(r):
    print(f"run: protocol={r['protocol'] or '?'} npes={r['npes']} "
          f"duration={r['duration_ns']}ns"
          + (" (trace TRUNCATED: ring wrapped)" if r["truncated"] else ""))
    s = r["steals"]
    print(f"steals: attempts={sum(s.values())} ok={s['ok']} "
          f"empty={s['empty']} retry={s['retry']} "
          f"tasks_stolen={r['tasks_stolen']} "
          f"releases={r['releases']} acquires={r['acquires']}")
    print(f"comm per successful steal (Fig 2): ops={r['ops_per_success']:.2f} "
          f"blocking={r['blocking_per_success']:.2f}")
    for sig, n in sorted(r["signatures"].items()):
        print(f"    {n}x  {sig}")
    for outcome in ("ok", "empty", "retry"):
        print(f"  latency {outcome:6s} {quantiles(r['latency'][outcome])}")
    print(f"pathologies (window={r['window_ns']}ns): "
          f"storms={r['storm_windows']} churn={r['churn_windows']}")
    if r["deaths_detected"] or r["recovery_spans"] or r["reroutes"]:
        print(f"recovery summary (crash-stop): "
              f"deaths_detected={r['deaths_detected']} "
              f"sweeps={r['recovery_spans']} "
              f"tasks_reexecuted={r['tasks_recovered']} "
              f"reroutes={r['reroutes']} "
              f"tasks_rerouted={r['rerouted_tasks']}")
    for v in r["violations"]:
        print(f"  ! {v}")


def diff(a, b):
    print(f"A/B: A={a['protocol'] or '?'} B={b['protocol'] or '?'}  (B vs A)")

    def line(label, va, vb):
        rel = f"  {(vb - va) / va * 100:+.1f}%" if va else ""
        print(f"  {label:<24}{va:>14.2f}{vb:>14.2f}{rel}")

    line("duration_ns", a["duration_ns"], b["duration_ns"])
    for k in ("ok", "empty", "retry"):
        line(f"steals {k}", a["steals"][k], b["steals"][k])
    line("ops/success", a["ops_per_success"], b["ops_per_success"])
    line("blocking/success", a["blocking_per_success"], b["blocking_per_success"])
    for r, name in ((a, "A"), (b, "B")):
        lat = r["latency"]["ok"]
        if lat:
            print(f"  steal-ok latency {name}: mean={statistics.mean(lat):.0f}ns "
                  f"{quantiles(lat)}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="*", help="trace JSON file(s)")
    ap.add_argument("--diff", action="store_true", help="A/B compare two traces")
    ap.add_argument("--self-check", action="store_true",
                    help="exit 1 on protocol violations")
    ap.add_argument("--report", action="store_true",
                    help="also print critical path + hot-victim convoys")
    ap.add_argument("--timeseries", metavar="FILE", default="",
                    help="summarize an sws-timeseries JSON and verify the "
                         "accounting invariant (exit 1 on mismatch)")
    ap.add_argument("--window-ns", type=int, default=0)
    args = ap.parse_args()

    if args.diff:
        if len(args.traces) != 2:
            ap.error("--diff needs exactly two trace files")
        diff(analyze(parse_trace(args.traces[0]), args.window_ns),
             analyze(parse_trace(args.traces[1]), args.window_ns))
        return 0

    def check_timeseries():
        doc = load_timeseries(args.timeseries)
        timeseries_summary(doc)
        errors = check_accounting(doc)
        for e in errors:
            print(f"  ! {e}", file=sys.stderr)
        if errors:
            print("accounting self-check: FAILED", file=sys.stderr)
            return 1
        print(f"accounting self-check: OK ({len(doc['t'])} windows)")
        return 0

    if not args.traces and args.timeseries:
        return check_timeseries()

    if len(args.traces) != 1:
        ap.error("expected exactly one trace file")
    run = parse_trace(args.traces[0])
    r = analyze(run, args.window_ns)
    report(r)
    if args.report:
        print_critical_path(critical_path(run))
        print_convoy(convoy_report(run, args.window_ns))
    rc = 0
    if args.timeseries:
        rc = check_timeseries()
    if args.self_check:
        if not r["protocol"]:
            print("self-check: trace carries no sws_run_meta protocol",
                  file=sys.stderr)
            return 1
        if not r["steals"]["ok"]:
            print("self-check: no successful steals to validate", file=sys.stderr)
            return 1
        if r["violations"]:
            print(f"self-check: {len(r['violations'])} violation(s)",
                  file=sys.stderr)
            return 1
        print(f"self-check: OK ({r['steals']['ok']} successful "
              f"{r['protocol']} steals validated)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
