#!/usr/bin/env python3
"""Analyze a Tracer::dump_chrome_json trace without the C++ build tree.

Pure-python mirror of tools/sws-analyze (same span model, same checks):

    analyze_trace.py trace.json                full report
    analyze_trace.py --diff a.json b.json      A/B comparison
    analyze_trace.py --self-check trace.json   protocol op-shape check;
                                               exit 1 on any violation

The self-check encodes the paper's Fig 2 claim: a successful SWS steal is
exactly one remote fetch-add + one task-copy get (two if the victim ring
wrapped) + one non-blocking completion add; a successful SDC steal is the
six-op lock / fetch / claim / unlock / copy / notify sequence.
"""

import argparse
import json
import statistics
import sys
from collections import Counter, defaultdict

OUTCOMES = {0: "ok", 1: "empty", 2: "retry"}


def parse_trace(path):
    with open(path) as f:
        events = json.load(f)

    run = {
        "protocol": "",
        "npes": 0,
        "topo": "",
        "crash_mode": False,
        "truncated": False,
        "spans": [],
        "orphan_begins": 0,
        "orphan_ends": 0,
        "orphan_ops": 0,
        "duration_ns": 0,
        "deaths_detected": 0,
        "reroutes": 0,
        "rerouted_tasks": 0,
    }
    open_spans = {}

    def ns(ev, key="ts"):
        return round(float(ev.get(key, 0)) * 1000)

    for ev in events:
        name, ph = ev.get("name", ""), ev.get("ph", "")
        args = ev.get("args", {})
        if name == "sws_run_meta":
            run["protocol"] = args.get("protocol", "")
            run["npes"] = args.get("npes", 0)
            run["topo"] = args.get("topo", "")
            run["crash_mode"] = bool(args.get("crashes", 0))
            run["truncated"] = bool(args.get("truncated", 0))
            continue
        run["duration_ns"] = max(run["duration_ns"], ns(ev))
        if ph == "B":
            sid = args.get("span", 0)
            if sid in open_spans:
                run["orphan_begins"] += 1
            open_spans[sid] = {
                "kind": name,
                "pe": ev.get("tid", -1),
                "begin_ns": ns(ev),
                "victim": args.get("a", 0),
                "ops": [],
            }
        elif ph == "E":
            sid = args.get("span", 0)
            span = open_spans.pop(sid, None)
            if span is None:
                run["orphan_ends"] += 1
                continue
            span["end_ns"] = ns(ev)
            b = int(args.get("b", 0))
            span["b_end"] = b
            span["outcome"], span["ntasks"] = b & 0xFF, b >> 8
            run["spans"].append(span)
        elif ph == "X":
            run["duration_ns"] = max(run["duration_ns"], ns(ev) + ns(ev, "dur"))
            span = open_spans.get(args.get("span", 0))
            if span is None:
                run["orphan_ops"] += 1
                continue
            span["ops"].append(args.get("op", ""))
        elif ph == "i":
            # Crash-recovery instants (docs/resilience.md).
            if name == "death_detected":
                run["deaths_detected"] += 1
            elif name == "rerouted":
                run["reroutes"] += 1
                run["rerouted_tasks"] += int(args.get("b", 0))

    run["orphan_begins"] += len(open_spans)
    run["spans"].sort(key=lambda s: (s["begin_ns"], s["pe"]))
    return run


def check_success(protocol, span, crash_mode=False):
    """Return a list of Fig 2 shape violations for one successful steal.

    Legitimate contention ops are admitted: SWS may lead with one
    empty-mode probe fetch; SDC pays one extra cswap + one probe get per
    failed lock attempt, plus one claim-intent put when the run has a
    crash-stop FaultPlan armed (docs/resilience.md).
    """
    ops = Counter(span["ops"])
    gets = ops["get"]
    bad = []
    if protocol == "sws":
        probes = ops["amo_fetch"]
        nbi_adds = ops["nbi_amo_add"]
        if ops["amo_fetch_add"] != 1:
            bad.append("expected exactly 1 remote fetch-add")
        if probes > 1:
            bad.append("expected at most 1 empty-mode probe fetch")
        if not 1 <= gets <= 2:
            bad.append("expected 1 task-copy get (2 if wrapped)")
        # Bulk claims: one completion add per claimed block, still one
        # fetch-add and one coalesced copy.
        if not 1 <= nbi_adds <= 32:
            bad.append("expected 1 nbi completion add per claimed block "
                       "(1..32)")
        if sum(ops.values()) != 1 + gets + probes + nbi_adds:
            bad.append("unexpected extra ops in SWS steal")
    elif protocol == "sdc":
        want_puts = 2 if crash_mode else 1
        cswaps = ops["amo_cswap"]
        if cswaps < 1:
            bad.append("expected at least 1 lock cswap")
        if ops["put"] != want_puts:
            bad.append("expected claim-intent put + tail-claim put (crash "
                       "mode)" if crash_mode else "expected exactly 1 "
                       "tail-claim put")
        for op, what in (("amo_set", "unlock set"),
                         ("nbi_amo_set", "nbi completion set")):
            if ops[op] != 1:
                bad.append(f"expected exactly 1 {what}")
        if not cswaps + 1 <= gets <= cswaps + 2:
            bad.append("expected 1 probe get per failed lock attempt "
                       "+ metadata get + task-copy get (1 more if wrapped)")
        if sum(ops.values()) != 2 + want_puts + cswaps + gets:
            bad.append("unexpected extra ops in SDC steal")
    return [
        f"{protocol} steal (pe {span['pe']} -> victim {span['victim']}, "
        f"t={span['begin_ns']}ns): {w} [ops: {dict(ops)}]" for w in bad
    ]


def analyze(run, window_ns=0):
    r = {
        "protocol": run["protocol"],
        "npes": run["npes"],
        "truncated": run["truncated"],
        "duration_ns": run["duration_ns"],
        "steals": Counter(),
        "tasks_stolen": 0,
        "signatures": Counter(),
        "latency": defaultdict(list),
        "releases": 0,
        "acquires": 0,
        "recovery_spans": 0,
        "tasks_recovered": 0,
        "deaths_detected": run["deaths_detected"],
        "reroutes": run["reroutes"],
        "rerouted_tasks": run["rerouted_tasks"],
        "violations": [],
        "ops_per_success": 0.0,
        "blocking_per_success": 0.0,
    }
    # A trace that names its protocol but not its topology is an
    # incomplete dump; refuse loudly rather than mis-attribute tiers.
    if run["protocol"] and not run["topo"]:
        r["violations"].append(
            "trace meta lacks topo: re-dump with a current writer "
            "(victim-tier attribution would be silently wrong)")
    window_ns = window_ns or max(run["duration_ns"] // 64, 1000)
    r["window_ns"] = window_ns
    windows = defaultdict(lambda: Counter())
    total_ops = total_blocking = 0

    for s in run["spans"]:
        if s["kind"] == "release_span":
            r["releases"] += 1
            continue
        if s["kind"] == "acquire_span":
            r["acquires"] += 1
            continue
        if s["kind"] == "recovery":
            r["recovery_spans"] += 1
            r["tasks_recovered"] += s.get("b_end", 0)
            continue
        if s["kind"] != "steal":
            continue
        outcome = OUTCOMES.get(s["outcome"], "retry")
        r["steals"][outcome] += 1
        r["latency"][outcome].append(s["end_ns"] - s["begin_ns"])
        w = windows[s["begin_ns"] // window_ns]
        if outcome == "ok":
            w["oks"] += 1
            r["tasks_stolen"] += s["ntasks"]
            sig = " ".join(f"{k}:{v}" for k, v in sorted(Counter(s["ops"]).items()))
            r["signatures"][sig or "(none)"] += 1
            total_ops += len(s["ops"])
            total_blocking += sum(1 for op in s["ops"] if not op.startswith("nbi_"))
            if run["protocol"] and not run["truncated"]:
                r["violations"] += check_success(run["protocol"], s,
                                                run["crash_mode"])
        else:
            w["fails"] += 1
            if outcome == "retry":
                w["retries"] += 1

    oks = r["steals"]["ok"]
    if oks:
        r["ops_per_success"] = total_ops / oks
        r["blocking_per_success"] = total_blocking / oks
    r["storm_windows"] = sum(
        1 for w in windows.values() if w["fails"] >= 16 and w["fails"] >= 4 * w["oks"])
    r["churn_windows"] = sum(
        1 for w in windows.values()
        if w["retries"] >= 8 and 2 * w["retries"] >= sum(w.values()) - w["retries"])
    # Orphaned spans are expected when a PE crashed mid-steal (crash mode).
    if (not run["truncated"] and not run["crash_mode"]
            and (run["orphan_begins"] or run["orphan_ends"])):
        r["violations"].append(
            f"orphaned span begin/end in an untruncated trace "
            f"({run['orphan_begins']} begins, {run['orphan_ends']} ends)")
    return r


def quantiles(xs):
    if not xs:
        return "n=0"
    xs = sorted(xs)
    q = lambda p: xs[min(len(xs) - 1, int(p * (len(xs) - 1)))]
    return (f"n={len(xs)} p50={q(.5)}ns p95={q(.95)}ns "
            f"p99={q(.99)}ns max={xs[-1]}ns")


def report(r):
    print(f"run: protocol={r['protocol'] or '?'} npes={r['npes']} "
          f"duration={r['duration_ns']}ns"
          + (" (trace TRUNCATED: ring wrapped)" if r["truncated"] else ""))
    s = r["steals"]
    print(f"steals: attempts={sum(s.values())} ok={s['ok']} "
          f"empty={s['empty']} retry={s['retry']} "
          f"tasks_stolen={r['tasks_stolen']} "
          f"releases={r['releases']} acquires={r['acquires']}")
    print(f"comm per successful steal (Fig 2): ops={r['ops_per_success']:.2f} "
          f"blocking={r['blocking_per_success']:.2f}")
    for sig, n in sorted(r["signatures"].items()):
        print(f"    {n}x  {sig}")
    for outcome in ("ok", "empty", "retry"):
        print(f"  latency {outcome:6s} {quantiles(r['latency'][outcome])}")
    print(f"pathologies (window={r['window_ns']}ns): "
          f"storms={r['storm_windows']} churn={r['churn_windows']}")
    if r["deaths_detected"] or r["recovery_spans"] or r["reroutes"]:
        print(f"recovery summary (crash-stop): "
              f"deaths_detected={r['deaths_detected']} "
              f"sweeps={r['recovery_spans']} "
              f"tasks_reexecuted={r['tasks_recovered']} "
              f"reroutes={r['reroutes']} "
              f"tasks_rerouted={r['rerouted_tasks']}")
    for v in r["violations"]:
        print(f"  ! {v}")


def diff(a, b):
    print(f"A/B: A={a['protocol'] or '?'} B={b['protocol'] or '?'}  (B vs A)")

    def line(label, va, vb):
        rel = f"  {(vb - va) / va * 100:+.1f}%" if va else ""
        print(f"  {label:<24}{va:>14.2f}{vb:>14.2f}{rel}")

    line("duration_ns", a["duration_ns"], b["duration_ns"])
    for k in ("ok", "empty", "retry"):
        line(f"steals {k}", a["steals"][k], b["steals"][k])
    line("ops/success", a["ops_per_success"], b["ops_per_success"])
    line("blocking/success", a["blocking_per_success"], b["blocking_per_success"])
    for r, name in ((a, "A"), (b, "B")):
        lat = r["latency"]["ok"]
        if lat:
            print(f"  steal-ok latency {name}: mean={statistics.mean(lat):.0f}ns "
                  f"{quantiles(lat)}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", help="trace JSON file(s)")
    ap.add_argument("--diff", action="store_true", help="A/B compare two traces")
    ap.add_argument("--self-check", action="store_true",
                    help="exit 1 on protocol violations")
    ap.add_argument("--window-ns", type=int, default=0)
    args = ap.parse_args()

    if args.diff:
        if len(args.traces) != 2:
            ap.error("--diff needs exactly two trace files")
        diff(analyze(parse_trace(args.traces[0]), args.window_ns),
             analyze(parse_trace(args.traces[1]), args.window_ns))
        return 0

    if len(args.traces) != 1:
        ap.error("expected exactly one trace file")
    r = analyze(parse_trace(args.traces[0]), args.window_ns)
    report(r)
    if args.self_check:
        if not r["protocol"]:
            print("self-check: trace carries no sws_run_meta protocol",
                  file=sys.stderr)
            return 1
        if not r["steals"]["ok"]:
            print("self-check: no successful steals to validate", file=sys.stderr)
            return 1
        if r["violations"]:
            print(f"self-check: {len(r['violations'])} violation(s)",
                  file=sys.stderr)
            return 1
        print(f"self-check: OK ({r['steals']['ok']} successful "
              f"{r['protocol']} steals validated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
