#!/usr/bin/env python3
"""ASCII-plot SWS benchmark results (no third-party dependencies).

Feed it the CSV output of any bench binary:

    build/bench/fig8_uts --csv > fig8.csv
    scripts/plot_results.py fig8.csv

Each CSV block ("# title" line, header row, data rows) becomes one chart:
the first column is the x axis, every numeric column after it a series.
Log-scaled x is chosen automatically when x spans >= 2 decades.
"""

import math
import sys

WIDTH = 64
HEIGHT = 16
MARKS = "ox+*#@%&"


def parse_blocks(lines):
    blocks = []
    title, header, rows = None, None, []
    for raw in lines + ["#"]:
        line = raw.strip()
        if line.startswith("#") or not line:
            if title and header and rows:
                blocks.append((title, header, rows))
            title, header, rows = line.lstrip("# ").strip() or None, None, []
            continue
        cells = [c.strip() for c in line.split(",")]
        if header is None:
            header = cells
        else:
            rows.append(cells)
    return blocks


def to_float(s):
    try:
        return float(s.replace("%", "").replace("us", "").replace("ms", ""))
    except ValueError:
        return None


def plot(title, header, rows):
    # Drop trailing prose/invalid rows (bench binaries print notes after
    # their tables).
    rows = [r for r in rows if to_float(r[0]) is not None]
    if not rows:
        return
    xs = [to_float(r[0]) for r in rows]
    series = []
    for col in range(1, len(header)):
        ys = [to_float(r[col]) if col < len(r) else None for r in rows]
        if all(y is not None for y in ys):
            series.append((header[col], ys))
    if not series:
        return

    logx = min(xs) > 0 and max(xs) / min(xs) >= 100
    fx = (lambda v: math.log10(v)) if logx else (lambda v: v)
    x0, x1 = fx(min(xs)), fx(max(xs))
    ally = [y for _, ys in series for y in ys]
    y0, y1 = min(ally), max(ally)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1

    grid = [[" "] * WIDTH for _ in range(HEIGHT)]
    for si, (_, ys) in enumerate(series):
        for x, y in zip(xs, ys):
            cx = round((fx(x) - x0) / (x1 - x0) * (WIDTH - 1))
            cy = round((y - y0) / (y1 - y0) * (HEIGHT - 1))
            grid[HEIGHT - 1 - cy][cx] = MARKS[si % len(MARKS)]

    print(f"\n== {title} ==")
    for si, (name, _) in enumerate(series):
        print(f"   {MARKS[si % len(MARKS)]} = {name}")
    print(f"  {y1:>10.3g} +" + "-" * WIDTH + "+")
    for row in grid:
        print(" " * 13 + "|" + "".join(row) + "|")
    print(f"  {y0:>10.3g} +" + "-" * WIDTH + "+")
    xl = f"{min(xs):g}"
    xr = f"{max(xs):g}" + (" (log x)" if logx else "")
    pad = WIDTH - len(xl) - len(xr) + 1
    print(" " * 14 + xl + " " * max(pad, 1) + xr)


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    for path in sys.argv[1:]:
        with open(path) as f:
            for title, header, rows in parse_blocks(f.read().splitlines()):
                plot(title, header, rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
