#!/usr/bin/env python3
"""Machine-readable performance baseline for the simulator engine.

Runs bench/sim_engine (the sequencer + nbi-path microbenchmarks) in both
the optimized and the legacy linear-scan reference strategy, optionally
times the end-to-end paper benchmarks (fig8 UTS, fig7 BPC), and writes
one JSON file (BENCH_<pr>.json) that CI and future PRs diff against.

The committed file also carries a frozen "pre_change" section: the same
scenarios measured on the tree *before* the sequencer overhaul (PR 4).
This script never overwrites that section — when the output file already
exists, pre_change is carried over verbatim, so the historical reference
survives regeneration on any machine. See docs/performance.md for the
schema and for how the speedup numbers are derived.

Usage:
  scripts/bench_report.py                    # full suite -> BENCH_4.json
  scripts/bench_report.py --quick            # CI smoke: small, no e2e
  scripts/bench_report.py --compare BENCH_4.json
                                             # print deltas, never fail
"""

import argparse
import json
import os
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# End-to-end configurations: one rep of the paper workloads per PE count.
E2E = {
    "uts": ["bench/fig8_uts", "--reps", "1", "--depth", "15", "--csv"],
    "bpc": ["bench/fig7_bpc", "--reps", "1", "--depth", "20", "--n", "64",
            "--csv"],
}


def run_sim_engine(build_dir, mode, pes, events, nbi_events):
    exe = os.path.join(build_dir, "bench", "sim_engine")
    cmd = [exe, "--pes", ",".join(str(p) for p in pes), "--events",
           str(events), "--nbi-events", str(nbi_events)]
    if mode == "reference":
        cmd.append("--reference")
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    rows = [json.loads(line) for line in out.stdout.splitlines() if line]
    for r in rows:
        assert r.pop("mode") == mode
    return rows


def run_e2e(build_dir, pe_counts, reps=3):
    """Best-of-`reps` wall time per workload/PE count (min filters out
    scheduler noise on a loaded host; the simulator is deterministic, so
    the fastest run is the least-perturbed one)."""
    results = {}
    for name, argv in E2E.items():
        for pes in pe_counts:
            cmd = [os.path.join(build_dir, argv[0])] + argv[1:] + [
                "--pes", str(pes)]
            best = None
            for _ in range(reps):
                t0 = time.monotonic()
                subprocess.run(cmd, check=True, capture_output=True, text=True)
                dt = time.monotonic() - t0
                best = dt if best is None else min(best, dt)
            results[f"{name}_{pes}"] = {"wall_s": round(best, 3)}
            print(f"  e2e {name} P={pes}: {results[f'{name}_{pes}']['wall_s']}"
                  " s", file=sys.stderr)
    return results


def index_rows(rows):
    return {(r["bench"], r["pes"]): r for r in rows}


def speedups(optimized, reference):
    """events/sec ratio per (bench, pes) present in both row sets."""
    opt, ref = index_rows(optimized), index_rows(reference)
    out = {}
    for key in sorted(opt.keys() & ref.keys()):
        out[f"{key[0]}_{key[1]}"] = round(
            opt[key]["events_per_sec"] / ref[key]["events_per_sec"], 2)
    return out


def compare(path, report):
    """Non-gating delta print: committed baseline vs this run."""
    with open(path) as f:
        base = json.load(f)
    base_opt = index_rows(base.get("sim_engine", {}).get("optimized", []))
    for r in report["sim_engine"]["optimized"]:
        key = (r["bench"], r["pes"])
        if key not in base_opt:
            continue
        old = base_opt[key]["events_per_sec"]
        delta = 100.0 * (r["events_per_sec"] - old) / old
        print(f"  {r['bench']} P={r['pes']}: {r['events_per_sec']:.3g} ev/s "
              f"({delta:+.1f}% vs committed)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    ap.add_argument("--out", default=os.path.join(REPO, "BENCH_4.json"))
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: 64 PEs, fewer events, no e2e runs")
    ap.add_argument("--skip-e2e", action="store_true")
    ap.add_argument("--compare", metavar="FILE",
                    help="also print event-rate deltas vs FILE (never fails)")
    ap.add_argument("--pre-change-jsonl",
                    help="seed the pre_change section: sim_engine JSONL "
                         "captured on the pre-overhaul tree")
    ap.add_argument("--pre-change-e2e",
                    help="seed the pre_change section: e2e wall times JSON "
                         "captured on the pre-overhaul tree")
    args = ap.parse_args()

    if args.quick:
        pes, events, nbi = [64], 200_000, 50_000
    else:
        pes, events, nbi = [64, 128, 256], 1_000_000, 200_000

    print(f"sim_engine optimized (pes={pes})", file=sys.stderr)
    optimized = run_sim_engine(args.build_dir, "optimized", pes, events, nbi)
    print("sim_engine reference (legacy linear scan)", file=sys.stderr)
    reference = run_sim_engine(args.build_dir, "reference", pes, events, nbi)

    report = {
        "schema": "sws-bench",
        "pr": 4,
        "quick": args.quick,
        "host": {"nproc": os.cpu_count()},
        "sim_engine": {"optimized": optimized, "reference": reference},
        "speedup_vs_reference": speedups(optimized, reference),
    }
    if not (args.quick or args.skip_e2e):
        print("end-to-end paper benchmarks", file=sys.stderr)
        report["e2e"] = run_e2e(args.build_dir, [64, 128, 256])

    # Carry the frozen pre-overhaul measurements forward (or seed them).
    pre = None
    if os.path.exists(args.out):
        with open(args.out) as f:
            pre = json.load(f).get("pre_change")
    if pre is None and args.pre_change_jsonl:
        with open(args.pre_change_jsonl) as f:
            rows = [json.loads(line) for line in f if line.strip()]
        for r in rows:
            r.pop("mode", None)
        pre = {"note": "measured at the pre-overhaul commit (PR 3 HEAD), "
                       "same host, RelWithDebInfo",
               "sim_engine": rows}
        if args.pre_change_e2e:
            with open(args.pre_change_e2e) as f:
                pre["e2e"] = json.load(f)
    if pre is not None:
        report["pre_change"] = pre
        pre_rows = index_rows(pre.get("sim_engine", []))
        sp = {}
        for r in optimized:
            key = (r["bench"], r["pes"])
            if key in pre_rows:
                sp[f"{key[0]}_{key[1]}"] = round(
                    r["events_per_sec"] / pre_rows[key]["events_per_sec"], 2)
        if sp:
            report["speedup_vs_pre_change"] = sp

    if args.compare:
        print(f"delta vs {args.compare} (informational):", file=sys.stderr)
        try:
            compare(args.compare, report)
        except Exception as e:  # non-gating by design
            print(f"  comparison skipped: {e}", file=sys.stderr)

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
