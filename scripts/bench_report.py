#!/usr/bin/env python3
"""Machine-readable performance baseline for the simulator engine.

Runs bench/sim_engine (the sequencer + nbi-path microbenchmarks, plus the
engine_mixed engine-threads sweep) in both the optimized and the legacy
linear-scan reference strategy, sweeps bench/engine_scale (end-to-end UTS
wall clock, serial baton vs the sharded windowed engine), optionally times
the end-to-end paper benchmarks (fig8 UTS, fig7 BPC), and writes one JSON
file (BENCH_<pr>.json) that CI and future PRs diff against.

The committed file also carries a frozen "pre_change" section: the same
scenarios measured on the tree *before* the sequencer overhaul (PR 4).
This script never overwrites that section — when the output file already
exists, pre_change is carried over verbatim, so the historical reference
survives regeneration on any machine. See docs/performance.md for the
schema and for how the speedup numbers are derived.

Engine-threads rows carry an "engine_threads" field (1 = the serial
sequencer); rows without one are serial-only scenarios. The host's core
count is recorded under host.nproc — on a single-core host the windowed
engine cannot exploit hardware parallelism, so engine speedups there
measure pure synchronization savings (see docs/performance.md).

Usage:
  scripts/bench_report.py                    # full suite -> BENCH_9.json
  scripts/bench_report.py --quick            # CI smoke: small, no e2e
  scripts/bench_report.py --compare newest   # deltas vs newest BENCH_*.json
"""

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# End-to-end configurations: one rep of the paper workloads per PE count.
E2E = {
    "uts": ["bench/fig8_uts", "--reps", "1", "--depth", "15", "--csv"],
    "bpc": ["bench/fig7_bpc", "--reps", "1", "--depth", "20", "--n", "64",
            "--csv"],
}


def run_sim_engine(build_dir, mode, pes, events, nbi_events, threads):
    exe = os.path.join(build_dir, "bench", "sim_engine")
    cmd = [exe, "--pes", ",".join(str(p) for p in pes), "--events",
           str(events), "--nbi-events", str(nbi_events),
           "--engine-threads", ",".join(str(t) for t in threads)]
    if mode == "reference":
        cmd.append("--reference")
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    rows = [json.loads(line) for line in out.stdout.splitlines() if line]
    for r in rows:
        assert r.pop("mode") == mode
    return rows


def run_engine_scale(build_dir, pes, threads):
    """End-to-end UTS wall clock across engine thread counts. One rep per
    config: the schedule is byte-identical at every thread count, so the
    wall delta is pure sequencer machinery."""
    exe = os.path.join(build_dir, "bench", "engine_scale")
    cmd = [exe, "--pes", ",".join(str(p) for p in pes), "--threads",
           ",".join(str(t) for t in threads), "--reps", "1"]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    rows = [json.loads(line) for line in out.stdout.splitlines() if line]
    for r in rows:
        print(f"  uts_e2e P={r['pes']} T={r['engine_threads']}: "
              f"{r['wall_s']:.3g} s wall", file=sys.stderr)
    return rows


def run_e2e(build_dir, pe_counts, reps=3):
    """Best-of-`reps` wall time per workload/PE count (min filters out
    scheduler noise on a loaded host; the simulator is deterministic, so
    the fastest run is the least-perturbed one)."""
    results = {}
    for name, argv in E2E.items():
        for pes in pe_counts:
            cmd = [os.path.join(build_dir, argv[0])] + argv[1:] + [
                "--pes", str(pes)]
            best = None
            for _ in range(reps):
                t0 = time.monotonic()
                subprocess.run(cmd, check=True, capture_output=True, text=True)
                dt = time.monotonic() - t0
                best = dt if best is None else min(best, dt)
            results[f"{name}_{pes}"] = {"wall_s": round(best, 3)}
            print(f"  e2e {name} P={pes}: {results[f'{name}_{pes}']['wall_s']}"
                  " s", file=sys.stderr)
    return results


def index_rows(rows):
    """Key rows on (bench, pes, engine_threads); serial-only scenarios
    (no engine_threads field) index as threads = 1."""
    return {(r["bench"], r["pes"], r.get("engine_threads", 1)): r
            for r in rows}


def speedups(optimized, reference):
    """events/sec ratio per config present in both row sets."""
    opt, ref = index_rows(optimized), index_rows(reference)
    out = {}
    for key in sorted(opt.keys() & ref.keys()):
        out[row_name(key)] = round(
            opt[key]["events_per_sec"] / ref[key]["events_per_sec"], 2)
    return out


def row_name(key):
    bench, pes, threads = key
    return f"{bench}_{pes}" + (f"_t{threads}" if threads != 1 else "")


def engine_speedups(rows, metric, invert):
    """Per (bench, pes): ratio of each threads > 1 row vs the threads = 1
    row. `metric` is the column; `invert` for wall times (lower = faster)."""
    idx = index_rows(rows)
    out = {}
    for (bench, pes, threads), r in sorted(idx.items()):
        if threads == 1:
            continue
        base = idx.get((bench, pes, 1))
        if base is None or not base.get(metric) or not r.get(metric):
            continue
        ratio = (base[metric] / r[metric]) if invert \
            else (r[metric] / base[metric])
        out[f"{bench}_{pes}_t{threads}"] = round(ratio, 2)
    return out


def newest_baseline(exclude):
    """Newest committed BENCH_*.json (by PR number) other than `exclude`."""
    best, best_pr = None, -1
    for path in glob.glob(os.path.join(REPO, "BENCH_*.json")):
        if os.path.abspath(path) == os.path.abspath(exclude):
            continue
        m = re.match(r"BENCH_(\d+)\.json$", os.path.basename(path))
        if m and int(m.group(1)) > best_pr:
            best, best_pr = path, int(m.group(1))
    return best


def band(regression_pct, warn_pct, fail_pct):
    """Tolerance band for one row. `regression_pct` is how much *worse*
    this run is than the baseline (<= 0 means no regression). Deltas
    within the warn threshold are measurement noise on shared CI runners;
    past the fail threshold the row is a real regression."""
    if regression_pct > fail_pct:
        return "FAIL"
    if regression_pct > warn_pct:
        return "WARN"
    return "ok"


def compare(path, report, warn_pct=10.0, fail_pct=25.0):
    """Tolerance-banded delta print: committed baseline vs this run.

    Returns the number of FAIL rows (regressions past `fail_pct`). The
    caller decides whether that gates — CI's `--compare newest` stays
    informational unless --gate-regressions is passed.
    """
    with open(path) as f:
        base = json.load(f)
    fails = 0

    def emit(key, text, regression_pct):
        nonlocal fails
        verdict = band(regression_pct, warn_pct, fail_pct)
        if verdict == "FAIL":
            fails += 1
        tag = "" if verdict == "ok" else f"  [{verdict}]"
        print(f"  {row_name(key)}: {text}{tag}")

    base_opt = index_rows(base.get("sim_engine", {}).get("optimized", []))
    for r in report["sim_engine"]["optimized"]:
        key = (r["bench"], r["pes"], r.get("engine_threads", 1))
        if key not in base_opt:
            continue
        old = base_opt[key]["events_per_sec"]
        delta = 100.0 * (r["events_per_sec"] - old) / old
        # Higher events/sec is better: a regression is a negative delta.
        emit(key, f"{r['events_per_sec']:.3g} ev/s "
                  f"({delta:+.1f}% vs committed)", -delta)
    base_scale = index_rows(base.get("engine_scale", []))
    for r in report.get("engine_scale", []):
        key = (r["bench"], r["pes"], r.get("engine_threads", 1))
        if key not in base_scale:
            continue
        old = base_scale[key]["wall_s"]
        delta = 100.0 * (r["wall_s"] - old) / old
        # Lower wall time is better: a regression is a positive delta.
        emit(key, f"{r['wall_s']:.3g} s wall "
                  f"({delta:+.1f}% vs committed)", delta)
    if fails:
        print(f"  {fails} row(s) regressed past {fail_pct:.0f}%",
              file=sys.stderr)
    return fails


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    ap.add_argument("--out", default=os.path.join(REPO, "BENCH_9.json"))
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: 64 PEs, fewer events, no e2e runs")
    ap.add_argument("--skip-e2e", action="store_true")
    ap.add_argument("--compare", metavar="FILE",
                    help="also print tolerance-banded rate/wall deltas vs "
                         "FILE; 'newest' picks the highest-numbered "
                         "committed BENCH_*.json (informational unless "
                         "--gate-regressions)")
    ap.add_argument("--warn-threshold", type=float, default=10.0,
                    metavar="PCT", help="flag rows regressing past PCT "
                                        "as WARN (default 10)")
    ap.add_argument("--fail-threshold", type=float, default=25.0,
                    metavar="PCT", help="flag rows regressing past PCT "
                                        "as FAIL (default 25)")
    ap.add_argument("--gate-regressions", action="store_true",
                    help="exit 1 when any --compare row lands in the FAIL "
                         "band (opt-in; CI smoke stays informational)")
    ap.add_argument("--pre-change-jsonl",
                    help="seed the pre_change section: sim_engine JSONL "
                         "captured on the pre-overhaul tree")
    ap.add_argument("--pre-change-e2e",
                    help="seed the pre_change section: e2e wall times JSON "
                         "captured on the pre-overhaul tree")
    args = ap.parse_args()

    if args.quick:
        pes, events, nbi = [64], 200_000, 50_000
        scale_pes = [64]
    else:
        pes, events, nbi = [64, 128, 256], 1_000_000, 200_000
        scale_pes = [256, 1024, 2048]
    threads = [1, 2, 4]

    print(f"sim_engine optimized (pes={pes})", file=sys.stderr)
    optimized = run_sim_engine(args.build_dir, "optimized", pes, events, nbi,
                               threads)
    print("sim_engine reference (legacy linear scan)", file=sys.stderr)
    reference = run_sim_engine(args.build_dir, "reference", pes, events, nbi,
                               threads)
    print(f"engine_scale uts_e2e (pes={scale_pes}, threads={threads})",
          file=sys.stderr)
    engine_scale = run_engine_scale(args.build_dir, scale_pes, threads)

    report = {
        "schema": "sws-bench",
        "pr": 9,
        "quick": args.quick,
        "host": {"nproc": os.cpu_count()},
        "sim_engine": {"optimized": optimized, "reference": reference},
        "engine_scale": engine_scale,
        "speedup_vs_reference": speedups(optimized, reference),
        # Windowed engine vs the serial sequencer, same binary: event rate
        # for the engine_mixed microbenchmark, wall clock for e2e UTS.
        "engine_speedup_vs_serial": {
            **engine_speedups(optimized, "events_per_sec", invert=False),
            **engine_speedups(engine_scale, "wall_s", invert=True),
        },
    }
    if not (args.quick or args.skip_e2e):
        print("end-to-end paper benchmarks", file=sys.stderr)
        report["e2e"] = run_e2e(args.build_dir, [64, 128, 256])

    # Carry the frozen pre-overhaul measurements forward (or seed them).
    pre = None
    if os.path.exists(args.out):
        with open(args.out) as f:
            pre = json.load(f).get("pre_change")
    if pre is None and args.pre_change_jsonl:
        with open(args.pre_change_jsonl) as f:
            rows = [json.loads(line) for line in f if line.strip()]
        for r in rows:
            r.pop("mode", None)
        pre = {"note": "measured at the pre-overhaul commit (PR 3 HEAD), "
                       "same host, RelWithDebInfo",
               "sim_engine": rows}
        if args.pre_change_e2e:
            with open(args.pre_change_e2e) as f:
                pre["e2e"] = json.load(f)
    if pre is not None:
        report["pre_change"] = pre
        pre_rows = index_rows(pre.get("sim_engine", []))
        sp = {}
        for r in optimized:
            key = (r["bench"], r["pes"], r.get("engine_threads", 1))
            if key in pre_rows:
                sp[row_name(key)] = round(
                    r["events_per_sec"] / pre_rows[key]["events_per_sec"], 2)
        if sp:
            report["speedup_vs_pre_change"] = sp

    fails = 0
    if args.compare:
        target = args.compare
        if target == "newest":
            target = newest_baseline(exclude=args.out)
        if target:
            mode = "gating" if args.gate_regressions else "informational"
            print(f"delta vs {target} ({mode}, warn>"
                  f"{args.warn_threshold:.0f}% fail>"
                  f"{args.fail_threshold:.0f}%):", file=sys.stderr)
            try:
                fails = compare(target, report, args.warn_threshold,
                                args.fail_threshold)
            except Exception as e:  # malformed baseline never blocks a run
                print(f"  comparison skipped: {e}", file=sys.stderr)
        else:
            print("no committed baseline to compare against", file=sys.stderr)

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if args.gate_regressions and fails:
        sys.exit(1)


if __name__ == "__main__":
    main()
