#include "check/scenario.hpp"

#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "core/recovery.hpp"
#include "net/fabric.hpp"
#include "core/scheduler.hpp"
#include "core/sdc_queue.hpp"
#include "core/sws_queue.hpp"
#include "core/task_registry.hpp"

namespace sws::check {

pgas::RuntimeConfig exploration_runtime_config(int npes,
                                               std::size_t heap_bytes) {
  pgas::RuntimeConfig rc;
  rc.npes = npes;
  rc.heap_bytes = heap_bytes;
  rc.mode = pgas::TimeMode::kVirtual;
  // Zero-cost network: every fabric op charges 0 ns, so PEs stay tied at
  // one instant and the arbiter decides the order of *memory effects*.
  // Only explicit waits (barrier polls, backoff, compute) advance clocks,
  // which is what keeps the schedule tree finite.
  auto& p = rc.net;  // flat topology: a single zero-cost link tier
  auto& l = p.link(1);
  l.amo_latency = 0;
  l.get_latency = 0;
  l.put_latency = 0;
  l.bandwidth = 1e18;
  l.nbi_delay = 0;
  l.target_occupancy = 0;
  p.local_bandwidth = 1e18;
  p.local_overhead = 0;
  p.nbi_issue_overhead = 0;
  return rc;
}

// ------------------------------------------------------------ ScenarioEnv

void ScenarioEnv::reset(ScenarioInstance* inst) {
  inst_ = inst;
  violation_.clear();
  ledger_.reset(inst != nullptr ? inst->num_ids() : 0);
}

void ScenarioEnv::begin_explored(pgas::PeContext& ctx) {
  ctx.barrier();
  const net::Nanos now = ctx.now();
  SWS_ASSERT_MSG(now < kExploreEpochNs,
                 "scenario setup overran the exploration epoch");
  // Land every PE on exactly the same instant: from here on, all are tied
  // and each operation is an arbiter choice point.
  ctx.compute(kExploreEpochNs - now);
}

void ScenarioEnv::end_explored(pgas::PeContext& ctx) {
  ctx.quiet();
  if (on_end_) on_end_(ctx.pe());
  ctx.barrier();
}

void ScenarioEnv::end_explored_nobarrier(pgas::PeContext& ctx) {
  ctx.quiet();
  if (on_end_) on_end_(ctx.pe());
}

void ScenarioEnv::pe_died(int pe) {
  if (on_end_) on_end_(pe);
}

void ScenarioEnv::step(pgas::PeContext& ctx) {
  if (inst_ != nullptr) {
    if (auto* q = inst_->audited_queue()) {
      std::string v = q->audit(ctx);
      if (!v.empty()) fail(std::move(v));
    }
  }
  std::string v = ledger_.first_violation();
  if (!v.empty()) fail(std::move(v));
}

void ScenarioEnv::fail(std::string msg) {
  if (violation_.empty()) violation_ = std::move(msg);
}

void ScenarioEnv::require(bool ok, const char* msg) {
  if (!ok) fail(msg);
}

namespace {

std::uint64_t id_of(const core::Task& t) {
  return t.payload_as<std::uint64_t>();
}

// ---------------------------------------------- queue protocol scenarios

/// Owner (PE 0) releases an allotment and keeps working it (pop, release,
/// progress, acquire) while every other PE steals; afterwards the owner
/// drains what is left and the ledger proves each task surfaced exactly
/// once, somewhere.
class QueueStealRelease final : public ScenarioInstance {
 public:
  static constexpr std::uint64_t kTasks = 12;

  QueueStealRelease(std::unique_ptr<core::TaskQueue> q, int npes)
      : q_(std::move(q)), npes_(npes) {}

  std::uint64_t num_ids() const override { return kTasks; }
  core::TaskQueue* audited_queue() override { return q_.get(); }

  std::uint64_t digest() const override {
    // Progress digest for heuristic DFS pruning: per-PE op counters plus
    // how far each side has gotten. Host memory only (arbiter-safe).
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (int pe = 0; pe < npes_; ++pe) {
      const auto& s = q_->op_stats(pe);
      mix(s.releases);
      mix(s.acquires);
      mix(s.steals_ok);
      mix(s.steals_empty);
      mix(s.steals_retry);
      mix(s.tasks_stolen);
      mix(s.renews);
    }
    return h != 0 ? h : 1;
  }

  void body(ScenarioEnv& env, pgas::PeContext& ctx) override {
    q_->reset_pe(ctx);
    ctx.barrier();

    constexpr int kOwner = 0;
    core::Task t;
    if (ctx.pe() == kOwner) {
      for (std::uint64_t id = 0; id < kTasks; ++id) {
        env.require(q_->push_local(ctx, core::Task::of(0, id)),
                    "setup push failed");
        env.ledger().pushed(id);
      }
      env.require(q_->try_release(ctx), "setup release failed");
    }

    env.begin_explored(ctx);
    if (ctx.pe() == kOwner) {
      // Two full owner cycles: work the local end, re-release, reacquire.
      // Each fabric op inside (retire swap, publish set) is a choice point
      // against the concurrently stealing thieves.
      for (int round = 0; round < 3; ++round) {
        q_->progress(ctx);
        env.step(ctx);
        if (q_->pop_local(ctx, t)) env.ledger().extracted(id_of(t));
        env.step(ctx);
        q_->try_release(ctx);
        env.step(ctx);
        if (q_->pop_local(ctx, t)) env.ledger().extracted(id_of(t));
        env.step(ctx);
        q_->progress(ctx);
        env.step(ctx);
        q_->try_acquire(ctx);
        env.step(ctx);
      }
    } else {
      std::vector<core::Task> loot;
      for (int i = 0; i < 8; ++i) {
        q_->steal(ctx, kOwner, loot);
        env.step(ctx);
      }
      for (const auto& s : loot) env.ledger().extracted(id_of(s));
    }
    env.end_explored(ctx);

    // Deterministic drain: the owner pulls everything still shared back
    // and pops it. Thieves are done, so each acquire round halves the
    // remainder — the guard bound is generous.
    if (ctx.pe() == kOwner) {
      for (int guard = 0; guard < 64; ++guard) {
        q_->progress(ctx);
        while (q_->pop_local(ctx, t)) env.ledger().extracted(id_of(t));
        if (!q_->shared_available(ctx)) break;
        q_->try_acquire(ctx);
      }
      env.step(ctx);
    }
    ctx.barrier();
    if (ctx.pe() == kOwner) {
      std::string v = env.ledger().check_no_loss();
      if (!v.empty()) env.fail(std::move(v));
    }
  }

 private:
  std::unique_ptr<core::TaskQueue> q_;
  int npes_;
};

// ------------------------------------------------- termination scenarios

/// Full pool run: PE 0 seeds a root task that remote-spawns a child onto
/// the next PE, under a real detector wrapped in CheckedTermination. The
/// scenario is green iff no schedule lets the detector fire with the
/// child (or root) still outstanding.
class TermScenario final : public ScenarioInstance {
 public:
  TermScenario(pgas::Runtime& rt, core::TerminationKind kind) {
    fn_child_ = reg_.register_fn(
        "check_child", [](core::Worker& w, std::span<const std::byte>) {
          w.compute(1'000);
        });
    fn_root_ = reg_.register_fn(
        "check_root", [this](core::Worker& w, std::span<const std::byte>) {
          w.spawn_on((w.pe() + 1) % w.npes(),
                     core::Task::of(fn_child_, std::uint64_t{0}));
          w.compute(50'000);
        });
    core::PoolConfig pc;
    pc.kind = core::QueueKind::kSws;
    pc.queue = core::QueueConfig{64, 32};
    pc.termination = kind;
    // Tight, bounded pacing keeps the explored schedule tree shallow.
    pc.steal.backoff_min_ns = 500;
    pc.steal.backoff_max_ns = 2'000;
    pool_ = std::make_unique<core::TaskPool>(rt, reg_, pc);
    auto checked =
        std::make_unique<CheckedTermination>(core::make_detector(rt, kind));
    checked_ = checked.get();
    pool_->set_detector(std::move(checked));
  }

  std::string extra_violation() override { return checked_->violation(); }

  void body(ScenarioEnv& env, pgas::PeContext& ctx) override {
    pool_->run_pe(ctx, [&](core::Worker& w) {
      env.begin_explored(w.ctx());
      if (w.pe() == 0)
        w.spawn(core::Task::of(fn_root_, std::uint64_t{0}));
    });
    env.end_explored(ctx);
  }

 private:
  core::TaskRegistry reg_;
  core::TaskFnId fn_child_ = 0;
  core::TaskFnId fn_root_ = 0;
  std::unique_ptr<core::TaskPool> pool_;
  CheckedTermination* checked_ = nullptr;
};

// --------------------------------------------------- explorer self-test

/// Known-broken on purpose: each PE performs a non-atomic remote
/// read-modify-write increment on a counter at PE 0. Under at least one
/// interleaving two PEs fetch the same value and one increment is lost.
class LostUpdate final : public ScenarioInstance {
 public:
  explicit LostUpdate(pgas::Runtime& rt)
      : word_(rt.heap().alloc(sizeof(std::uint64_t), 8)) {}

  void body(ScenarioEnv& env, pgas::PeContext& ctx) override {
    if (ctx.pe() == 0)
      std::memset(ctx.local(word_), 0, sizeof(std::uint64_t));
    ctx.barrier();

    env.begin_explored(ctx);
    const std::uint64_t v = ctx.fetch(0, word_);  // racy: fetch ...
    ctx.set(0, word_, v + 1);                     // ... then set
    env.end_explored(ctx);

    if (ctx.pe() == 0) {
      env.require(ctx.local_load(word_) ==
                      static_cast<std::uint64_t>(ctx.npes()),
                  "lost update: final counter below the increment count");
    }
  }

 private:
  pgas::SymPtr word_;
};

// ------------------------------------------------------ crash scenarios

/// See crash_steal_scenario() in the header for the full protocol sketch.
/// All synchronization after the crash is crash-safe: no barriers, the
/// owner paces on its own clock, and the dying PE reports its exit to the
/// arbiter from the PeKilled handler.
class CrashSteal final : public ScenarioInstance {
 public:
  static constexpr std::uint64_t kTasks = 8;
  static constexpr int kOwner = 0;
  static constexpr int kDying = 1;

  CrashSteal(std::unique_ptr<core::TaskQueue> q, pgas::Runtime& rt, int npes)
      : q_(std::move(q)), npes_(npes) {
    // Shortened lease so the owner's fence completes well inside the
    // scenario's bounded wait (production default is 2 ms).
    core::RecoveryConfig rc;
    rc.lease_ns = 50'000;
    rc.probe_backoff_ns = 1'000;
    registry_.init(rt, rc);
    q_->attach_recovery(&registry_);
  }

  std::uint64_t num_ids() const override { return kTasks; }
  core::TaskQueue* audited_queue() override { return q_.get(); }

  void body(ScenarioEnv& env, pgas::PeContext& ctx) override {
    q_->reset_pe(ctx);
    registry_.reset_pe(ctx);
    ctx.barrier();

    core::Task t;
    if (ctx.pe() == kOwner) {
      // At-least-once under recovery: a task fenced off a dead claim is
      // re-published and surfaces a second time. Anything beyond 2 is a
      // real duplication bug. Loss stays legal for every id — a claim
      // whose completion record landed right before the thief died is
      // dead custody, truncated by design.
      env.ledger().set_max_multiplicity(2);
      for (std::uint64_t id = 0; id < kTasks; ++id) {
        env.require(q_->push_local(ctx, core::Task::of(0, id)),
                    "setup push failed");
        env.ledger().pushed(id);
        env.ledger().allow_loss(id);
      }
      env.require(q_->try_release(ctx), "setup release failed");
    }

    env.begin_explored(ctx);
    if (ctx.pe() == kDying) {
      // Steal until the planned crash lands (mid-handshake for most
      // offsets — fabric ops cost 100 ns here). The guard only bounds a
      // misconfigured plan; the crash is what normally ends the loop.
      try {
        std::vector<core::Task> loot;
        for (int i = 0; i < 4096; ++i) {
          loot.clear();
          q_->steal(ctx, kOwner, loot);
          for (const auto& s : loot) env.ledger().extracted(id_of(s));
          env.step(ctx);
          ctx.compute(200);
        }
        env.fail("crash scenario: planned crash never fired on the thief");
        env.end_explored_nobarrier(ctx);
      } catch (const net::PeKilled&) {
        env.pe_died(kDying);
      }
      return;
    }

    if (ctx.pe() == kOwner) {
      // Work the local end while the thieves race, then wait out the
      // crash plus one lease and fence the dead thief's open claims.
      for (int i = 0; i < 120; ++i) {
        q_->progress(ctx);
        if (q_->pop_local(ctx, t)) env.ledger().extracted(id_of(t));
        env.step(ctx);
        ctx.compute(1'000);
      }
      registry_.probe_all(ctx);
      env.require(registry_.known_dead(kOwner, kDying),
                  "owner probe missed the planned death");
      q_->fence_dead(ctx);
      std::vector<core::Task> rec;
      q_->take_recovered(ctx, rec);
      for (const auto& r : rec) env.ledger().extracted(id_of(r));
      env.step(ctx);
      // Deterministic drain of everything still queued or shared.
      for (int guard = 0; guard < 64; ++guard) {
        q_->progress(ctx);
        while (q_->pop_local(ctx, t)) env.ledger().extracted(id_of(t));
        if (!q_->shared_available(ctx)) break;
        q_->try_acquire(ctx);
      }
      env.step(ctx);
      env.end_explored_nobarrier(ctx);
      return;
    }

    // Surviving thief: a bounded burst of steals against the same owner,
    // interleaving with the dying PE's handshake and the owner's fence.
    std::vector<core::Task> loot;
    for (int i = 0; i < 10; ++i) {
      loot.clear();
      q_->steal(ctx, kOwner, loot);
      for (const auto& s : loot) env.ledger().extracted(id_of(s));
      env.step(ctx);
      ctx.compute(200);
    }
    env.end_explored_nobarrier(ctx);
  }

 private:
  std::unique_ptr<core::TaskQueue> q_;
  core::DeathRegistry registry_;
  int npes_;
};

}  // namespace

// --------------------------------------------------------------- factory

Scenario sws_steal_release_scenario(int npes) {
  Scenario s;
  s.name = "sws-steal-release";
  s.npes = npes;
  s.make = [npes](pgas::Runtime& rt) -> std::unique_ptr<ScenarioInstance> {
    auto q = std::make_unique<core::SwsQueue>(rt, core::QueueConfig{64, 32});
    return std::make_unique<QueueStealRelease>(std::move(q), npes);
  };
  return s;
}

Scenario bulk_steal_scenario(int npes) {
  Scenario s;
  s.name = "sws-bulk-steal";
  s.npes = npes;
  s.make = [npes](pgas::Runtime& rt) -> std::unique_ptr<ScenarioInstance> {
    // Same protocol exercise, bulk claims on: thieves may take several
    // blocks per fetch-add, so the ledger must still see every task
    // surface exactly once across every interleaving of multi-block
    // claims, owner republishes, and epoch flips.
    core::SwsConfig bulk;
    bulk.bulk_claim_max = 4;
    auto q = std::make_unique<core::SwsQueue>(rt, core::QueueConfig{64, 32},
                                              bulk);
    return std::make_unique<QueueStealRelease>(std::move(q), npes);
  };
  return s;
}

Scenario sdc_steal_release_scenario(int npes) {
  Scenario s;
  s.name = "sdc-steal-release";
  s.npes = npes;
  s.make = [npes](pgas::Runtime& rt) -> std::unique_ptr<ScenarioInstance> {
    auto q = std::make_unique<core::SdcQueue>(rt, core::QueueConfig{64, 32});
    return std::make_unique<QueueStealRelease>(std::move(q), npes);
  };
  return s;
}

Scenario counter_termination_scenario(int npes) {
  Scenario s;
  s.name = "counter-termination";
  s.npes = npes;
  s.make = [](pgas::Runtime& rt) -> std::unique_ptr<ScenarioInstance> {
    return std::make_unique<TermScenario>(rt, core::TerminationKind::kCounter);
  };
  return s;
}

Scenario token_termination_scenario(int npes) {
  Scenario s;
  s.name = "token-termination";
  s.npes = npes;
  s.make = [](pgas::Runtime& rt) -> std::unique_ptr<ScenarioInstance> {
    return std::make_unique<TermScenario>(rt, core::TerminationKind::kToken);
  };
  return s;
}

Scenario lost_update_scenario(int npes) {
  Scenario s;
  s.name = "lost-update";
  s.npes = npes;
  s.make = [](pgas::Runtime& rt) -> std::unique_ptr<ScenarioInstance> {
    return std::make_unique<LostUpdate>(rt);
  };
  return s;
}

Scenario crash_steal_scenario(core::QueueKind kind,
                              net::Nanos crash_offset_ns, int npes) {
  Scenario s;
  s.name = std::string(kind == core::QueueKind::kSws ? "sws" : "sdc") +
           "-crash-steal+" + std::to_string(crash_offset_ns);
  s.npes = npes;
  s.make = [kind, npes](pgas::Runtime& rt)
      -> std::unique_ptr<ScenarioInstance> {
    std::unique_ptr<core::TaskQueue> q;
    if (kind == core::QueueKind::kSws)
      q = std::make_unique<core::SwsQueue>(rt, core::QueueConfig{64, 32});
    else
      q = std::make_unique<core::SdcQueue>(rt, core::QueueConfig{64, 32});
    return std::make_unique<CrashSteal>(std::move(q), rt, npes);
  };
  s.tweak = [crash_offset_ns](pgas::RuntimeConfig& rc) {
    // Nonzero op costs so the crash instant can fall between the ops of
    // one steal handshake — sweeping the offset in ~100 ns steps lands
    // the death at each protocol stage. Ties still abound (the thieves
    // run identical op sequences), so the arbiter keeps real choices.
    auto& l = rc.net.link(1);
    l.amo_latency = 100;
    l.get_latency = 100;
    l.put_latency = 100;
    rc.net.faults.crashes.push_back(
        {CrashSteal::kDying, kExploreEpochNs + crash_offset_ns});
  };
  return s;
}

}  // namespace sws::check
