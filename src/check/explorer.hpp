// Deterministic schedule exploration on the virtual-time sequencer.
//
// The Explorer runs one Scenario many times. Each run it installs a
// ReadyArbiter on the VirtualTimeModel; whenever more than one PE is
// runnable at the minimum virtual time inside the exploration window, the
// arbiter picks which PE's next memory effect happens — one branch point.
// Because scenarios run on a zero-cost network, *every* fabric operation
// of a tied PE is such a point, so the arbiter enumerates exactly the
// protocol-level interleavings.
//
// Modes:
//  * kExhaustive — stateless-re-execution DFS over the schedule tree.
//    Each run records (choice, width) at every branch point; the cursor
//    then advances the deepest incrementable choice and replays. Optional
//    heuristic pruning collapses branch points whose scenario digest was
//    already expanded.
//  * kRandom — seeded sampling. Schedule n draws its choices from
//    SplitMix64(seed_n) with seed_n derived from the base seed, so any
//    sampled schedule replays byte-identically from its seed alone.
//
// A failing schedule is shrunk ddmin-style (zeroing chunks of non-default
// choices, keeping any candidate that still fails) to a minimal
// choice-vector, then replayed once more with event recording to produce
// a human-readable trace of the fatal order.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/scenario.hpp"
#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "net/time_model.hpp"

namespace sws::check {

enum class ExploreMode { kExhaustive, kRandom };

struct ExploreOptions {
  ExploreMode mode = ExploreMode::kExhaustive;
  /// Schedule budget (exhaustive mode may finish earlier: `exhausted`).
  std::uint64_t max_schedules = 4096;
  /// Random mode: base seed; schedule n uses a distinct derived seed.
  std::uint64_t seed = 1;
  /// Branch points per schedule beyond which the arbiter stops branching
  /// (safety valve against runaway scenarios).
  std::uint32_t max_branch_points = 4096;
  /// Shrink the first failing schedule to a minimal choice vector.
  bool shrink = true;
  std::uint32_t max_shrink_runs = 256;
  /// Exhaustive mode: heuristic state-digest pruning. Branch points whose
  /// ScenarioInstance::digest() was already expanded (at the same depth)
  /// are not branched again. Needs a scenario digest; may skip schedules
  /// whose states the digest cannot distinguish — off by default.
  bool prune_visited = false;
};

/// One explored (or replayed) schedule.
struct ScheduleTrace {
  std::vector<std::uint8_t> choices;  ///< index into the ready set, per point
  std::uint64_t seed = 0;             ///< nonzero when from random sampling
  std::vector<std::string> events;    ///< labeled order (when recorded)
};

/// Everything one call to exec() observed.
struct RunOutcome {
  std::vector<std::uint8_t> taken;  ///< choice actually made per point
  std::vector<std::uint8_t> width;  ///< ready-set size per point
  std::string violation;            ///< "" = run was green
  std::vector<std::string> events;  ///< when recording was on
  bool ok() const { return violation.empty(); }
};

struct ExploreReport {
  std::uint64_t schedules = 0;      ///< schedules executed
  std::uint64_t branch_points = 0;  ///< total choice points across them
  std::uint64_t pruned = 0;         ///< branch points collapsed by pruning
  bool exhausted = false;           ///< exhaustive: whole tree covered
  bool failed = false;
  std::string violation;
  ScheduleTrace failing;  ///< first failing schedule, as found
  ScheduleTrace minimal;  ///< after shrink (== failing when shrink off)
  std::string summary() const;
};

class Explorer {
 public:
  /// Builds the runtime (virtual time, zero-cost network) and the scenario
  /// instance once; every explored schedule re-runs the same instance.
  Explorer(const Scenario& scenario, ExploreOptions opts);
  ~Explorer();
  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Explore per the configured mode; shrink + trace on failure.
  ExploreReport run();

  /// Replay a single schedule from an explicit choice vector. Choices past
  /// the vector (or out of range) fall back to 0 / clamp.
  RunOutcome run_one_forced(const std::vector<std::uint8_t>& forced,
                            bool record_events = false);
  /// Replay the schedule random sampling derives from `seed` —
  /// byte-identical to the original draw by construction.
  RunOutcome run_one_seeded(std::uint64_t seed, bool record_events = false);

  const Scenario& scenario() const noexcept { return scen_; }

 private:
  RunOutcome exec(const std::vector<std::uint8_t>* forced,
                  const std::uint64_t* seed, bool record_events);
  int arbitrate(int caller, const std::vector<int>& ready, net::Nanos now);
  ScheduleTrace shrink_failing(const ScheduleTrace& failing);
  std::uint64_t schedule_seed(std::uint64_t n) const;

  /// Mutable per-run arbiter state. Mutated only under the sequencer lock
  /// (the arbiter) except `ended`, which PEs bump from end_explored.
  struct ArbState {
    bool use_rng = false;
    SplitMix64 rng{0};
    const std::vector<std::uint8_t>* forced = nullptr;
    std::size_t idx = 0;
    std::vector<std::uint8_t> taken;
    std::vector<std::uint8_t> width;
    std::atomic<int> ended{0};
    bool record = false;
    std::vector<std::string> events;
    std::uint64_t pruned = 0;
  };

  Scenario scen_;
  ExploreOptions opts_;
  ScenarioEnv env_;
  std::unique_ptr<pgas::Runtime> rt_;
  std::unique_ptr<ScenarioInstance> inst_;
  net::VirtualTimeModel* vt_ = nullptr;
  ArbState arb_;
  std::unordered_set<std::uint64_t> visited_;
  bool prune_now_ = false;  ///< pruning active for the current run()
};

}  // namespace sws::check
