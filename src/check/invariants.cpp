#include "check/invariants.hpp"

namespace sws::check {

// ------------------------------------------------------------ TaskLedger

void TaskLedger::reset(std::uint64_t nids) {
  pushes_.assign(static_cast<std::size_t>(nids), 0);
  extracts_.assign(static_cast<std::size_t>(nids), 0);
  loss_ok_.assign(static_cast<std::size_t>(nids), 0);
  max_mult_ = 1;
  first_violation_.clear();
}

void TaskLedger::allow_loss(std::uint64_t id) {
  if (id < loss_ok_.size()) loss_ok_[static_cast<std::size_t>(id)] = 1;
}

void TaskLedger::flag(std::string msg) {
  if (first_violation_.empty()) first_violation_ = std::move(msg);
}

void TaskLedger::pushed(std::uint64_t id) {
  if (id >= pushes_.size()) {
    flag("ledger: pushed id " + std::to_string(id) + " out of range");
    return;
  }
  if (pushes_[static_cast<std::size_t>(id)]++ >= max_mult_)
    flag("ledger: id " + std::to_string(id) + " pushed " +
         std::to_string(pushes_[static_cast<std::size_t>(id)]) +
         " times (multiplicity bound " + std::to_string(max_mult_) + ")");
}

void TaskLedger::extracted(std::uint64_t id) {
  if (id >= extracts_.size()) {
    flag("ledger: extracted id " + std::to_string(id) + " out of range");
    return;
  }
  if (pushes_[static_cast<std::size_t>(id)] == 0) {
    flag("ledger: phantom task " + std::to_string(id) +
         " extracted but never pushed");
    return;
  }
  if (extracts_[static_cast<std::size_t>(id)]++ >= max_mult_)
    flag("ledger: task duplicated — id " + std::to_string(id) +
         " extracted " +
         std::to_string(extracts_[static_cast<std::size_t>(id)]) +
         " times (multiplicity bound " + std::to_string(max_mult_) + ")");
}

std::string TaskLedger::check_no_loss() const {
  if (!first_violation_.empty()) return first_violation_;
  for (std::size_t id = 0; id < pushes_.size(); ++id) {
    if (pushes_[id] != 0 && extracts_[id] == 0 && loss_ok_[id] == 0)
      return "ledger: task lost — id " + std::to_string(id) +
             " pushed but never extracted";
  }
  return {};
}

// ---------------------------------------------------- CheckedTermination

void CheckedTermination::reset_pe(pgas::PeContext& ctx) {
  if (ctx.pe() == 0) {
    created_.store(0);
    completed_.store(0);
    poisoned_.store(false);
    violation_.clear();
  }
  inner_->reset_pe(ctx);
}

void CheckedTermination::count_created(pgas::PeContext& ctx, std::uint64_t n) {
  created_.fetch_add(n, std::memory_order_relaxed);
  inner_->count_created(ctx, n);
}

void CheckedTermination::count_completed(pgas::PeContext& ctx,
                                         std::uint64_t n) {
  completed_.fetch_add(n, std::memory_order_relaxed);
  inner_->count_completed(ctx, n);
}

void CheckedTermination::task_boundary(pgas::PeContext& ctx) {
  inner_->task_boundary(ctx);
}

bool CheckedTermination::check(pgas::PeContext& ctx) {
  if (poisoned_.load(std::memory_order_relaxed)) return true;
  const bool done = inner_->check(ctx);
  if (done) {
    const std::uint64_t c = created_.load(std::memory_order_relaxed);
    const std::uint64_t x = completed_.load(std::memory_order_relaxed);
    if (c != x) {
      // Poison before recording so every other PE also drains out: a run
      // the harness knows is broken must still finish, or the violation
      // could never be reported.
      violation_ = "termination: detector reported done on PE " +
                   std::to_string(ctx.pe()) + " with " + std::to_string(c) +
                   " created vs " + std::to_string(x) + " completed";
      poisoned_.store(true, std::memory_order_relaxed);
    }
  }
  return done || poisoned_.load(std::memory_order_relaxed);
}

}  // namespace sws::check
