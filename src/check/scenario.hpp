// Scripted protocol scenarios for the schedule explorer.
//
// A Scenario describes a small SPMD protocol exercise — N PEs driving
// steal/release/acquire/progress against a queue, or a full task-pool run
// under a checked termination detector — built so that every interleaving
// the virtual-time arbiter picks is a legal execution and every invariant
// violation is *recorded*, never thrown (throwing on one PE would strand
// the others at barriers and deadlock the run).
//
// The exploration window: scenarios run under a zero-cost network (every
// fabric op charges 0 ns), so once all PEs' clocks tie, every operation
// is an ordering choice the arbiter controls. To make the tie exact,
// each PE pads its clock to kExploreEpochNs after the setup barrier
// (begin_explored); the arbiter only branches at/after that instant and
// stops once every PE has called end_explored.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "check/invariants.hpp"
#include "core/queue.hpp"
#include "pgas/runtime.hpp"

namespace sws::check {

/// The instant the explored window opens. Generous: all setup (resets,
/// barriers, seeding) must finish earlier on the zero-cost network, where
/// only explicit waits (barrier polls, backoff) advance the clock.
inline constexpr net::Nanos kExploreEpochNs = 10'000'000;

/// Runtime configuration for exploration: virtual time and a zero-cost
/// network, so fabric operations advance no time and every one of them
/// becomes an arbiter choice point while PEs are tied.
pgas::RuntimeConfig exploration_runtime_config(int npes,
                                               std::size_t heap_bytes);

class ScenarioEnv;

/// One constructed scenario: owns its protocol objects (queue, pool, …)
/// against a Runtime; body() is the per-PE script. The same instance is
/// re-run for every explored schedule, so body() must reset all protocol
/// state it uses (reset_pe + barrier, as production code does).
class ScenarioInstance {
 public:
  virtual ~ScenarioInstance() = default;

  /// The per-PE script (SPMD, called inside Runtime::run).
  virtual void body(ScenarioEnv& env, pgas::PeContext& ctx) = 0;

  /// Number of distinct task ids the ledger must track (0 = no ledger).
  virtual std::uint64_t num_ids() const { return 0; }

  /// Queue audited at every env.step() (null = no queue audits).
  virtual core::TaskQueue* audited_queue() { return nullptr; }

  /// Violation detected outside env.fail() (e.g. by a checked detector).
  virtual std::string extra_violation() { return {}; }

  /// Optional state digest for heuristic DFS pruning (0 = unsupported).
  /// Called under the sequencer lock: must read host memory only — no
  /// fabric operations, no time-model calls.
  virtual std::uint64_t digest() const { return 0; }
};

/// A named scenario factory the Explorer can instantiate.
struct Scenario {
  std::string name;
  int npes = 2;
  std::size_t heap_bytes = std::size_t{2} << 20;
  std::function<std::unique_ptr<ScenarioInstance>(pgas::Runtime&)> make;
  /// Optional adjustment of the exploration runtime config before the
  /// Runtime is built — crash scenarios arm a FaultPlan and give fabric
  /// ops a small nonzero cost so a planned crash can land *inside* a
  /// multi-op handshake rather than only between handshakes.
  std::function<void(pgas::RuntimeConfig&)> tweak;
};

/// Per-run services handed to scenario scripts: the exploration window
/// markers, the invariant audit point, the task ledger, and violation
/// recording. One env is shared by all PEs of a run (virtual-time
/// serialization makes that safe).
class ScenarioEnv {
 public:
  explicit ScenarioEnv(int npes) : npes_(npes) {}

  /// Reset for a fresh schedule; `inst` provides ledger size and audits.
  void reset(ScenarioInstance* inst);

  /// Collective: barrier, then pad this PE's clock to exactly
  /// kExploreEpochNs so every PE's first scripted op is a choice point.
  void begin_explored(pgas::PeContext& ctx);
  /// Collective: complete outstanding nbi ops, tell the arbiter this PE's
  /// script is done (all done => stop branching), then barrier.
  void end_explored(pgas::PeContext& ctx);
  /// Crash scenarios: as end_explored but without the barrier — survivors
  /// of a planned crash cannot rendezvous with the dead.
  void end_explored_nobarrier(pgas::PeContext& ctx);
  /// Crash scenarios: the planned crash killed `pe`. Counts the PE as
  /// ended for the arbiter; issues no fabric ops (the dead cannot).
  void pe_died(int pe);

  /// Audit point between protocol ops: runs the instance queue's audit for
  /// the calling PE and folds in eager ledger violations.
  void step(pgas::PeContext& ctx);

  /// Record a violation (first one wins; the run continues to completion).
  void fail(std::string msg);
  void require(bool ok, const char* msg);

  TaskLedger& ledger() { return ledger_; }
  std::string violation() const { return violation_; }

  /// Explorer wiring: called with the PE id at each end_explored.
  void set_on_end(std::function<void(int)> fn) { on_end_ = std::move(fn); }

 private:
  int npes_;
  ScenarioInstance* inst_ = nullptr;
  TaskLedger ledger_;
  std::string violation_;
  std::function<void(int)> on_end_;
};

// --- scenario library ----------------------------------------------------

/// Owner pushes/releases/pops/acquires while thieves steal, against the
/// SWS structured-atomic queue. Checks: queue audit invariants at every
/// step, no task lost, no task duplicated.
Scenario sws_steal_release_scenario(int npes = 2);
/// Same exercise with SWS bulk claims enabled (bulk_claim_max = 4):
/// multi-block claims interleaved with owner republish and epoch flips
/// must still surface every task exactly once.
Scenario bulk_steal_scenario(int npes = 2);
/// Same protocol exercise against the SDC baseline queue.
Scenario sdc_steal_release_scenario(int npes = 2);

/// Full TaskPool run (SWS queue) with remote spawns under the counter
/// termination detector wrapped in CheckedTermination: any schedule where
/// check() answers true with tasks outstanding is flagged.
Scenario counter_termination_scenario(int npes = 2);
/// As above with the token (Mattern two-wave) detector.
Scenario token_termination_scenario(int npes = 2);

/// Deliberately racy non-atomic read-modify-write: a known-broken
/// protocol the explorer must be able to catch. Self-test for the
/// find → replay → shrink machinery.
Scenario lost_update_scenario(int npes = 2);

/// Crash-recovery exercise: PE 0 owns a released allotment, PE 1 and PE 2
/// steal from it, and a planned crash kills PE 1 at explore-epoch +
/// `crash_offset_ns` — with 100 ns fabric ops, sweeping the offset lands
/// the death at every stage of the steal handshake. The owner waits out a
/// (shortened) lease, fences the dead thief's claims, and re-publishes
/// them; the ledger asserts the at-least-once multiplicity bound (<= 2)
/// and the queue audit runs at every step. Loss is allowed — a task whose
/// claim completed just before the thief died is dead custody by design.
Scenario crash_steal_scenario(core::QueueKind kind,
                              net::Nanos crash_offset_ns, int npes = 3);

}  // namespace sws::check
