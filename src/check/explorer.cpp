#include "check/explorer.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sws::check {

namespace {

/// Stable 64-bit combine for (digest, depth) pruning keys.
std::uint64_t mix_key(std::uint64_t d, std::uint64_t depth) {
  std::uint64_t z = d ^ (depth * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Explorer::Explorer(const Scenario& scenario, ExploreOptions opts)
    : scen_(scenario), opts_(opts), env_(scenario.npes) {
  SWS_CHECK(scen_.make != nullptr, "scenario has no factory");
  pgas::RuntimeConfig rc =
      exploration_runtime_config(scen_.npes, scen_.heap_bytes);
  if (scen_.tweak) scen_.tweak(rc);
  rt_ = std::make_unique<pgas::Runtime>(rc);
  inst_ = scen_.make(*rt_);
  SWS_CHECK(inst_ != nullptr, "scenario factory returned null");
  vt_ = dynamic_cast<net::VirtualTimeModel*>(&rt_->time());
  SWS_CHECK(vt_ != nullptr, "explorer requires the virtual time backend");
  env_.set_on_end(
      [this](int) { arb_.ended.fetch_add(1, std::memory_order_relaxed); });
  vt_->set_ready_arbiter(
      [this](int caller, const std::vector<int>& ready, net::Nanos now) {
        return arbitrate(caller, ready, now);
      });
}

Explorer::~Explorer() {
  if (vt_ != nullptr) vt_->set_ready_arbiter(nullptr);
}

int Explorer::arbitrate(int caller, const std::vector<int>& ready,
                        net::Nanos now) {
  (void)caller;
  // Outside the window — before the clocks tie at the epoch, or after
  // every PE has ended its script — keep the legacy lowest-id order so
  // setup and teardown stay deterministic and un-branched.
  if (now < kExploreEpochNs) return ready.front();
  if (arb_.ended.load(std::memory_order_relaxed) >= scen_.npes)
    return ready.front();
  if (arb_.idx >= opts_.max_branch_points) return ready.front();

  const auto w = static_cast<std::uint8_t>(
      std::min<std::size_t>(ready.size(), 255));
  std::uint8_t eff_w = w;
  std::uint8_t c = 0;
  if (arb_.use_rng) {
    c = static_cast<std::uint8_t>(arb_.rng.next() % w);
  } else if (arb_.forced != nullptr && arb_.idx < arb_.forced->size()) {
    // Replaying a prefix: the forced choice wins (clamped — a shrunk or
    // hand-edited vector may overshoot a reshaped tree).
    c = std::min<std::uint8_t>((*arb_.forced)[arb_.idx],
                               static_cast<std::uint8_t>(w - 1));
  } else if (prune_now_) {
    // Fresh territory: branch only if this (digest, depth) state has not
    // been expanded before. Never applied to forced prefixes — that would
    // corrupt DFS replay.
    const std::uint64_t d = inst_->digest();
    if (d != 0 && !visited_.insert(mix_key(d, arb_.idx)).second) {
      eff_w = 1;
      ++arb_.pruned;
    }
  }
  arb_.taken.push_back(c);
  arb_.width.push_back(eff_w);
  ++arb_.idx;

  const int pe = ready[static_cast<std::size_t>(c)];
  if (arb_.record) {
    const net::OpLabel& op = rt_->fabric().last_op(pe);
    std::string line = "+" + std::to_string(now - kExploreEpochNs) + "ns pe" +
                       std::to_string(pe) + " ";
    if (op.kind == net::OpKind::kCount_) {
      line += "start";
    } else {
      line += net::op_kind_name(op.kind);
      line += " ->pe" + std::to_string(op.target) + " off=" +
              std::to_string(op.offset);
    }
    arb_.events.push_back(std::move(line));
  }
  return pe;
}

RunOutcome Explorer::exec(const std::vector<std::uint8_t>* forced,
                          const std::uint64_t* seed, bool record_events) {
  arb_.use_rng = seed != nullptr;
  arb_.rng = SplitMix64(seed != nullptr ? *seed : 0);
  arb_.forced = forced;
  arb_.idx = 0;
  arb_.taken.clear();
  arb_.width.clear();
  arb_.ended.store(0, std::memory_order_relaxed);
  arb_.record = record_events;
  arb_.events.clear();
  env_.reset(inst_.get());

  rt_->run([this](pgas::PeContext& ctx) { inst_->body(env_, ctx); });

  RunOutcome out;
  out.taken = arb_.taken;
  out.width = arb_.width;
  out.violation = env_.violation();
  if (out.violation.empty()) out.violation = inst_->extra_violation();
  out.events = std::move(arb_.events);
  return out;
}

RunOutcome Explorer::run_one_forced(const std::vector<std::uint8_t>& forced,
                                    bool record_events) {
  return exec(&forced, nullptr, record_events);
}

RunOutcome Explorer::run_one_seeded(std::uint64_t seed, bool record_events) {
  return exec(nullptr, &seed, record_events);
}

std::uint64_t Explorer::schedule_seed(std::uint64_t n) const {
  return opts_.seed ^ (0x9e3779b97f4a7c15ULL * (n + 1));
}

ScheduleTrace Explorer::shrink_failing(const ScheduleTrace& failing) {
  auto trim = [](std::vector<std::uint8_t>& v) {
    while (!v.empty() && v.back() == 0) v.pop_back();
  };
  std::vector<std::uint8_t> cur = failing.choices;
  trim(cur);

  // ddmin over non-default choices: zero chunks, keep candidates that
  // still fail, halve the chunk when a full sweep makes no progress.
  std::uint32_t runs = 0;
  bool improved = true;
  while (improved && runs < opts_.max_shrink_runs && !cur.empty()) {
    improved = false;
    for (std::size_t chunk = cur.size(); chunk >= 1; chunk /= 2) {
      for (std::size_t start = 0;
           start < cur.size() && runs < opts_.max_shrink_runs;
           start += chunk) {
        std::vector<std::uint8_t> cand = cur;
        bool changed = false;
        const std::size_t end = std::min(cur.size(), start + chunk);
        for (std::size_t i = start; i < end; ++i) {
          if (cand[i] != 0) {
            cand[i] = 0;
            changed = true;
          }
        }
        if (!changed) continue;
        RunOutcome out = exec(&cand, nullptr, false);
        ++runs;
        if (out.violation.empty()) continue;
        // Normalize to the choices that actually ran, so later chunks
        // index the surviving schedule, not a stale one.
        cur = std::move(out.taken);
        trim(cur);
        improved = true;
      }
      if (chunk == 1 || runs >= opts_.max_shrink_runs) break;
    }
  }
  ScheduleTrace t;
  t.choices = std::move(cur);
  t.seed = 0;
  return t;
}

ExploreReport Explorer::run() {
  ExploreReport rep;
  arb_.pruned = 0;
  visited_.clear();
  prune_now_ =
      opts_.prune_visited && opts_.mode == ExploreMode::kExhaustive;

  if (opts_.mode == ExploreMode::kExhaustive) {
    std::vector<std::uint8_t> forced;  // empty = all-default first schedule
    for (std::uint64_t n = 0; n < opts_.max_schedules; ++n) {
      RunOutcome out = exec(&forced, nullptr, false);
      ++rep.schedules;
      rep.branch_points += out.taken.size();
      if (!out.violation.empty()) {
        rep.failed = true;
        rep.violation = out.violation;
        rep.failing.choices = std::move(out.taken);
        break;
      }
      // DFS cursor: bump the deepest incrementable choice; everything
      // after it restarts at the default.
      bool advanced = false;
      for (std::size_t i = out.taken.size(); i-- > 0;) {
        if (static_cast<std::uint32_t>(out.taken[i]) + 1 <
            static_cast<std::uint32_t>(out.width[i])) {
          forced.assign(out.taken.begin(),
                        out.taken.begin() + static_cast<std::ptrdiff_t>(i) + 1);
          forced[i] = static_cast<std::uint8_t>(out.taken[i] + 1);
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        rep.exhausted = true;
        break;
      }
    }
  } else {
    for (std::uint64_t n = 0; n < opts_.max_schedules; ++n) {
      const std::uint64_t s = schedule_seed(n);
      RunOutcome out = exec(nullptr, &s, false);
      ++rep.schedules;
      rep.branch_points += out.taken.size();
      if (!out.violation.empty()) {
        rep.failed = true;
        rep.violation = out.violation;
        rep.failing.choices = std::move(out.taken);
        rep.failing.seed = s;
        break;
      }
    }
  }
  rep.pruned = arb_.pruned;
  prune_now_ = false;  // replay/shrink must see the un-pruned tree

  if (rep.failed) {
    rep.minimal =
        opts_.shrink ? shrink_failing(rep.failing) : rep.failing;
    // Final labeled replay of the minimal schedule. If the clamped shrink
    // result no longer reproduces (the tree reshaped under it), fall back
    // to the original failing schedule.
    RunOutcome fin = exec(&rep.minimal.choices, nullptr, true);
    if (fin.violation.empty()) {
      rep.minimal = rep.failing;
      fin = exec(&rep.minimal.choices, nullptr, true);
    }
    rep.minimal.events = std::move(fin.events);
    if (!fin.violation.empty()) rep.violation = fin.violation;
  }
  return rep;
}

std::string ExploreReport::summary() const {
  std::string s = "schedules=" + std::to_string(schedules) +
                  " branch_points=" + std::to_string(branch_points);
  if (exhausted) s += " (tree exhausted)";
  if (pruned > 0) s += " pruned=" + std::to_string(pruned);
  if (!failed) return s + " — all green";
  s += "\nVIOLATION: " + violation;
  s += "\nminimal schedule (" + std::to_string(minimal.choices.size()) +
       " choices";
  if (failing.seed != 0) s += ", from seed " + std::to_string(failing.seed);
  s += "): [";
  for (std::size_t i = 0; i < minimal.choices.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(minimal.choices[i]);
  }
  s += "]";
  for (const auto& e : minimal.events) s += "\n  " + e;
  return s;
}

}  // namespace sws::check
