// Protocol invariants for the schedule-exploration harness (see
// explorer.hpp): a task ledger proving no task is lost or duplicated, and
// a termination-detector decorator proving no detector says "done" while
// tasks are outstanding.
//
// Everything here is host-side bookkeeping with no fabric traffic, so
// instrumenting a scenario does not perturb the schedule being explored.
// Under the virtual time backend all PE threads are baton-serialized
// (every switch goes through the sequencer mutex), so plain containers
// are safe; the few atomics below exist for the real-time backend and for
// reads from the test harness thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/termination.hpp"

namespace sws::check {

/// Tracks every task by unique id through push (entering a queue) and
/// extraction (pop or steal). Catches the two protocol-fatal outcomes:
///  * duplication — an id extracted twice (e.g. a steal block aliased);
///  * loss — an id pushed but never extracted by the end of the run.
/// Phantom extractions (id never pushed) and out-of-range ids are caught
/// eagerly as well.
class TaskLedger {
 public:
  /// Forget everything and size the ledger for ids [0, nids).
  /// Multiplicity resets to the crash-free default of 1.
  void reset(std::uint64_t nids);

  /// Crash scenarios: permit each id to be pushed/extracted up to `m`
  /// times. Crash recovery re-publishes tasks fenced from dead claims, so
  /// the sound bound is exactly 2 (original + one re-execution); anything
  /// beyond still flags as duplication.
  void set_max_multiplicity(std::uint8_t m) { max_mult_ = m; }
  /// Crash scenarios: id was last in a dead PE's custody — loss is the
  /// *expected* outcome and check_no_loss() must not flag it.
  void allow_loss(std::uint64_t id);

  /// Record task `id` entering a queue.
  void pushed(std::uint64_t id);
  /// Record task `id` leaving a queue (owner pop or thief steal).
  void extracted(std::uint64_t id);

  /// First eager violation seen so far ("" = none).
  std::string first_violation() const { return first_violation_; }

  /// End-of-run check: every pushed id extracted at least once (exactly
  /// once under the default multiplicity) unless its loss was allowed.
  /// Returns "" when the multiset of extractions matches the pushes.
  std::string check_no_loss() const;

 private:
  void flag(std::string msg);

  std::vector<std::uint8_t> pushes_;
  std::vector<std::uint8_t> extracts_;
  std::vector<std::uint8_t> loss_ok_;
  std::uint8_t max_mult_ = 1;
  std::string first_violation_;
};

/// Decorates a real TerminationDetector with an exact ground truth: a pair
/// of host-side counters of tasks created/completed. If the inner detector
/// ever answers "terminated" while created != completed, the window the
/// paper's protocols must never open — premature termination — has been
/// observed; the violation is recorded and the detector is poisoned to
/// answer true everywhere so the pool winds down instead of hanging half
/// its PEs in a run the harness already knows is broken.
class CheckedTermination final : public core::TerminationDetector {
 public:
  explicit CheckedTermination(std::unique_ptr<core::TerminationDetector> inner)
      : inner_(std::move(inner)) {}

  core::TerminationKind kind() const noexcept override {
    return inner_->kind();
  }
  void reset_pe(pgas::PeContext& ctx) override;
  void count_created(pgas::PeContext& ctx, std::uint64_t n) override;
  void count_completed(pgas::PeContext& ctx, std::uint64_t n) override;
  void task_boundary(pgas::PeContext& ctx) override;
  bool check(pgas::PeContext& ctx) override;
  void on_exit(pgas::PeContext& ctx) override { inner_->on_exit(ctx); }

  /// Violation recorded by the last run ("" = termination was sound).
  std::string violation() const { return violation_; }
  std::uint64_t created() const { return created_.load(); }
  std::uint64_t completed() const { return completed_.load(); }

 private:
  std::unique_ptr<core::TerminationDetector> inner_;
  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<bool> poisoned_{false};
  std::string violation_;
};

}  // namespace sws::check
