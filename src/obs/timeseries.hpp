// Windowed time-series telemetry: fixed-interval samples of cumulative
// runtime state, recorded from the virtual sequencer's sampling hook
// (net::SampleHook) so observation never perturbs schedules.
//
// A TimeSeries is a column store: callers register named *sources* —
// closures returning a cumulative uint64 (a counter sum, a clock, an
// accounting bucket) — and every sample() appends one row reading all of
// them at the given boundary time. Two interpretations are supported at
// export time:
//
//  * kDelta — the source is a monotone(ish) accumulation; exports emit the
//    per-window difference v[i] - v[i-1] (signed: a window may re-attribute
//    a small amount between related series, e.g. a steal attempt that
//    straddles a boundary and is re-classified from probing to stealing
//    when it succeeds).
//  * kLevel — the source is a level (a gauge); exports emit it verbatim.
//
// Exports: a compact JSON document (schema "sws-timeseries", consumed by
// scripts/analyze_trace.py and sws-analyze --report) and Chrome-trace
// counter rows ("ph":"C") for injection into a merged trace, one Perfetto
// counter track per series.
//
// Not thread-safe by itself: sample() is designed to run under the
// sequencer's serialization (every PE thread parked), where plain reads of
// per-PE state are race-free.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace sws::obs {

class TimeSeries {
 public:
  enum class Mode : std::uint8_t {
    kDelta,  ///< cumulative source; export per-window differences
    kLevel,  ///< gauge source; export sampled values verbatim
  };

  /// Cumulative-value reader, invoked once per sample. Must be pure
  /// observation: no locking against the PE threads is performed.
  using Source = std::function<std::uint64_t()>;

  /// `interval_ns` is recorded in the export header (the sampler owns the
  /// actual cadence); `max_samples` bounds memory — samples past the cap
  /// are dropped and the export carries a `truncated` flag.
  explicit TimeSeries(std::uint64_t interval_ns,
                      std::size_t max_samples = std::size_t{1} << 16);

  /// Register a series before the first sample. Registration order is the
  /// export order.
  void add_series(std::string name, Mode mode, Source src);

  /// Extra key/value pairs for the JSON header ("protocol", "npes", ...).
  /// `raw_json` is emitted verbatim as the value — pass `"\"sws\""` for a
  /// string, `"64"` for a number.
  void add_meta(std::string key, std::string raw_json);

  /// Append one row at time `t_ns`, reading every source. Rows must be
  /// appended in increasing time order; a sample at or before the last
  /// recorded time is ignored (this makes end-of-run finalization
  /// idempotent). Past `max_samples` the row is dropped and the series is
  /// marked truncated.
  void sample(std::uint64_t t_ns);

  /// Drop all recorded rows (keep series + meta); used between benchmark
  /// repetitions the way Tracer::clear() is.
  void clear();

  bool empty() const noexcept { return times_.empty(); }
  std::size_t samples() const noexcept { return times_.size(); }
  std::size_t series() const noexcept { return series_.size(); }
  bool truncated() const noexcept { return truncated_; }
  std::uint64_t interval_ns() const noexcept { return interval_ns_; }
  std::uint64_t last_time() const noexcept {
    return times_.empty() ? 0 : times_.back();
  }

  /// Sampled cumulative value of series `s` at row `i` (test hook).
  std::uint64_t value(std::size_t s, std::size_t i) const;
  const std::string& series_name(std::size_t s) const;

  /// {"schema":"sws-timeseries","interval_ns":...,"t":[...],
  ///  "series":[{"name":...,"mode":"delta"|"level","v":[...]}]}
  /// Delta-mode values are signed per-window differences; level-mode
  /// values are the raw samples.
  void write_json(std::ostream& os) const;

  /// Chrome-trace counter rows for every (series, sample) pair, each
  /// prefixed with ",\n" so the caller can append them inside an open
  /// trace-event array: {"name":<series>,"ph":"C","ts":<us>,"pid":0,
  /// "tid":0,"args":{"value":<v>}}. Values follow the same delta/level
  /// rule as write_json.
  void write_chrome_counters(std::ostream& os) const;

 private:
  struct Series {
    std::string name;
    Mode mode;
    Source src;
    std::vector<std::uint64_t> vals;  ///< cumulative samples, one per row
  };

  std::uint64_t interval_ns_;
  std::size_t max_samples_;
  bool truncated_ = false;
  std::vector<std::uint64_t> times_;
  std::vector<Series> series_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

}  // namespace sws::obs
