#include "obs/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/assert.hpp"

namespace sws::obs {

const char* metric_kind_name(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// ----------------------------------------------------------------- snapshot

std::uint64_t MetricsSnapshot::Entry::total() const noexcept {
  if (kind == MetricKind::kHistogram) return hist.count();
  std::uint64_t t = 0;
  for (const std::uint64_t v : per_pe)
    t = kind == MetricKind::kGauge ? std::max(t, v) : t + v;
  return t;
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const noexcept {
  for (const Entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

void MetricsSnapshot::merge(const MetricsSnapshot& o) {
  npes = std::max(npes, o.npes);
  for (const Entry& oe : o.entries) {
    Entry* mine = nullptr;
    for (Entry& e : entries)
      if (e.name == oe.name) {
        mine = &e;
        break;
      }
    if (mine == nullptr) {
      entries.push_back(oe);
      continue;
    }
    SWS_CHECK(mine->kind == oe.kind, "metric kind mismatch in merge");
    if (mine->per_pe.size() < oe.per_pe.size())
      mine->per_pe.resize(oe.per_pe.size(), 0);
    for (std::size_t pe = 0; pe < oe.per_pe.size(); ++pe) {
      if (mine->kind == MetricKind::kGauge)
        mine->per_pe[pe] = std::max(mine->per_pe[pe], oe.per_pe[pe]);
      else
        mine->per_pe[pe] += oe.per_pe[pe];
    }
    mine->hist.merge(oe.hist);
  }
}

void MetricsSnapshot::diff(const MetricsSnapshot& earlier) {
  for (Entry& e : entries) {
    const Entry* base = earlier.find(e.name);
    if (base == nullptr) continue;  // delta vs an implicit zero baseline
    SWS_CHECK(base->kind == e.kind, "metric kind mismatch in diff");
    // Gauges report a level, not an accumulation: the window's value is
    // the last one written, i.e. this (later) snapshot's value as-is.
    if (e.kind == MetricKind::kGauge) continue;
    for (std::size_t pe = 0; pe < e.per_pe.size(); ++pe) {
      const std::uint64_t b =
          pe < base->per_pe.size() ? base->per_pe[pe] : 0;
      e.per_pe[pe] -= std::min(e.per_pe[pe], b);
    }
    e.hist.subtract(base->hist);
  }
}

namespace {

bool per_pe_interesting(const MetricsSnapshot::Entry& e) noexcept {
  // A per-PE breakdown is noise when every PE holds the same value or
  // there is only one PE.
  if (e.per_pe.size() <= 1) return false;
  return !std::all_of(e.per_pe.begin(), e.per_pe.end(),
                      [&](std::uint64_t v) { return v == e.per_pe[0]; });
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void MetricsSnapshot::write_text(std::ostream& os) const {
  std::size_t width = 0;
  for (const Entry& e : entries) width = std::max(width, e.name.size());
  for (const Entry& e : entries) {
    os << std::left << std::setw(static_cast<int>(width) + 2) << e.name
       << std::right;
    if (e.kind == MetricKind::kHistogram) {
      os << "count=" << e.hist.count() << " p50=" << e.hist.quantile(0.5)
         << " p95=" << e.hist.quantile(0.95)
         << " p99=" << e.hist.quantile(0.99)
         << " max<=" << e.hist.quantile(1.0);
    } else {
      os << e.total();
      if (per_pe_interesting(e)) {
        os << "  [";
        for (std::size_t pe = 0; pe < e.per_pe.size(); ++pe)
          os << (pe ? " " : "") << e.per_pe[pe];
        os << "]";
      }
    }
    os << "\n";
  }
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\"schema\":\"sws-metrics\",\"npes\":" << npes << ",\"metrics\":[";
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    json_string(os, e.name);
    os << ",\"kind\":\"" << metric_kind_name(e.kind) << '"';
    if (!e.help.empty()) {
      os << ",\"help\":";
      json_string(os, e.help);
    }
    if (e.kind == MetricKind::kHistogram) {
      os << ",\"count\":" << e.hist.count()
         << ",\"p50\":" << e.hist.quantile(0.5)
         << ",\"p95\":" << e.hist.quantile(0.95)
         << ",\"p99\":" << e.hist.quantile(0.99)
         << ",\"max_le\":" << e.hist.quantile(1.0) << ",\"buckets\":[";
      bool bfirst = true;
      for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b) {
        if (e.hist.bucket(b) == 0) continue;
        if (!bfirst) os << ",";
        bfirst = false;
        os << "[" << b << "," << e.hist.bucket(b) << "]";
      }
      os << "]";
    } else {
      os << ",\"total\":" << e.total() << ",\"per_pe\":[";
      for (std::size_t pe = 0; pe < e.per_pe.size(); ++pe)
        os << (pe ? "," : "") << e.per_pe[pe];
      os << "]";
    }
    os << "}";
  }
  os << "\n]}\n";
}

// ----------------------------------------------------------------- registry

MetricsRegistry::MetricsRegistry(int npes) { reset(npes); }

void MetricsRegistry::reset(int npes) {
  SWS_CHECK(npes >= 0, "npes must be non-negative");
  npes_ = npes;
  slabs_.clear();
  slabs_.resize(static_cast<std::size_t>(npes));
  for (auto& s : slabs_) {
    s.scalars.assign(nscalars_, 0);
    s.hists.assign(nhists_, LogHistogram{});
  }
}

void MetricsRegistry::reset_values() {
  for (auto& s : slabs_) {
    std::fill(s.scalars.begin(), s.scalars.end(), 0);
    std::fill(s.hists.begin(), s.hists.end(), LogHistogram{});
  }
}

MetricId MetricsRegistry::register_metric(std::string name, std::string help,
                                          MetricKind kind) {
  SWS_CHECK(!name.empty(), "metric name must be non-empty");
  for (std::uint32_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name != name) continue;
    SWS_CHECK(metrics_[i].kind == kind,
              "metric re-registered with a different kind");
    return MetricId{i};
  }
  Meta m;
  m.name = std::move(name);
  m.help = std::move(help);
  m.kind = kind;
  if (kind == MetricKind::kHistogram) {
    m.slot = nhists_++;
    for (auto& s : slabs_) s.hists.emplace_back();
  } else {
    m.slot = nscalars_++;
    for (auto& s : slabs_) s.scalars.push_back(0);
  }
  metrics_.push_back(std::move(m));
  return MetricId{static_cast<std::uint32_t>(metrics_.size() - 1)};
}

MetricId MetricsRegistry::counter(std::string name, std::string help) {
  return register_metric(std::move(name), std::move(help),
                         MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string name, std::string help) {
  return register_metric(std::move(name), std::move(help), MetricKind::kGauge);
}

MetricId MetricsRegistry::histogram(std::string name, std::string help) {
  return register_metric(std::move(name), std::move(help),
                         MetricKind::kHistogram);
}

MetricId MetricsRegistry::find(const std::string& name) const noexcept {
  for (std::uint32_t i = 0; i < metrics_.size(); ++i)
    if (metrics_[i].name == name) return MetricId{i};
  return MetricId{};
}

void MetricsRegistry::add(MetricId m, int pe, std::uint64_t delta) noexcept {
  if (!m.valid()) return;
  const Meta& meta = metrics_[m.idx];
  slabs_[static_cast<std::size_t>(pe)].scalars[meta.slot] += delta;
}

void MetricsRegistry::set(MetricId m, int pe, std::uint64_t value) noexcept {
  if (!m.valid()) return;
  const Meta& meta = metrics_[m.idx];
  slabs_[static_cast<std::size_t>(pe)].scalars[meta.slot] = value;
}

void MetricsRegistry::observe(MetricId m, int pe,
                              std::uint64_t sample) noexcept {
  if (!m.valid()) return;
  const Meta& meta = metrics_[m.idx];
  slabs_[static_cast<std::size_t>(pe)].hists[meta.slot].add(sample);
}

void MetricsRegistry::set_hist(MetricId m, int pe,
                               const LogHistogram& h) noexcept {
  if (!m.valid()) return;
  const Meta& meta = metrics_[m.idx];
  slabs_[static_cast<std::size_t>(pe)].hists[meta.slot] = h;
}

std::uint64_t MetricsRegistry::value(MetricId m, int pe) const noexcept {
  if (!m.valid()) return 0;
  const Meta& meta = metrics_[m.idx];
  const PeSlab& s = slabs_[static_cast<std::size_t>(pe)];
  return meta.kind == MetricKind::kHistogram ? s.hists[meta.slot].count()
                                             : s.scalars[meta.slot];
}

std::uint64_t MetricsRegistry::total(MetricId m) const noexcept {
  if (!m.valid()) return 0;
  const Meta& meta = metrics_[m.idx];
  std::uint64_t t = 0;
  for (const PeSlab& s : slabs_) {
    if (meta.kind == MetricKind::kHistogram) {
      t += s.hists[meta.slot].count();
    } else if (meta.kind == MetricKind::kGauge) {
      t = std::max(t, s.scalars[meta.slot]);
    } else {
      t += s.scalars[meta.slot];
    }
  }
  return t;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.npes = npes_;
  out.entries.reserve(metrics_.size());
  for (const Meta& m : metrics_) {
    MetricsSnapshot::Entry e;
    e.name = m.name;
    e.help = m.help;
    e.kind = m.kind;
    if (m.kind == MetricKind::kHistogram) {
      for (const PeSlab& s : slabs_) e.hist.merge(s.hists[m.slot]);
    } else {
      e.per_pe.reserve(slabs_.size());
      for (const PeSlab& s : slabs_) e.per_pe.push_back(s.scalars[m.slot]);
    }
    out.entries.push_back(std::move(e));
  }
  return out;
}

void MetricsRegistry::write_text(std::ostream& os) const {
  snapshot().write_text(os);
}

void MetricsRegistry::write_json(std::ostream& os) const {
  snapshot().write_json(os);
}

}  // namespace sws::obs
