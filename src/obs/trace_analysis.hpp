// Offline analysis of Tracer::dump_chrome_json output — the C++ core
// behind tools/sws-analyze (scripts/analyze_trace.py is the pure-python
// fallback for machines without the build tree).
//
// The analyzer reconstructs steal/release/acquire spans and their child
// fabric ops from a trace file, then derives the quantities the paper
// argues about: communication ops per successful steal (Fig 2's 6-vs-3),
// steal-latency quantiles per outcome, and pathology windows (steal
// storms, SDC abort churn). It also implements the protocol self-check CI
// runs on every push: a successful SWS steal must be exactly one remote
// fetch-add plus one task-copy get (two when the ring wrapped) plus one
// non-blocking completion add; a successful SDC steal must show the
// six-op lock / fetch / claim / unlock / copy / notify shape. Both checks
// admit the protocols' legitimate contention ops — SWS one empty-mode
// probe fetch, SDC one extra cswap + probe get per failed lock attempt.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "net/types.hpp"

namespace sws::obs {

/// One fabric op attributed to a span (a kFabricOp complete event).
struct TraceOp {
  std::string op;  ///< net::op_kind_name string ("get", "amo_fetch_add", …)
  int target = -1;
  std::uint64_t bytes = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Blocking = everything that stalls the initiator (non-nbi).
  bool blocking() const noexcept { return op.rfind("nbi_", 0) != 0; }
};

/// A reconstructed begin/end pair plus its child ops.
struct Span {
  std::string kind;  ///< "steal" | "release_span" | "acquire_span"
  std::uint64_t id = 0;
  int pe = -1;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t a_begin = 0;  ///< steal: victim
  std::uint64_t a_end = 0;
  std::uint64_t b_end = 0;  ///< steal: outcome | (ntasks << 8)
  bool closed = false;
  std::vector<TraceOp> ops;

  std::uint64_t duration_ns() const noexcept { return end_ns - begin_ns; }
  // Steal-span decoding (StealOutcome values: 0 success, 1 empty, 2 retry).
  int victim() const noexcept { return static_cast<int>(a_begin); }
  int outcome() const noexcept { return static_cast<int>(b_end & 0xFF); }
  std::uint32_t ntasks() const noexcept {
    return static_cast<std::uint32_t>(b_end >> 8);
  }
};

/// One counter-track sample ("ph":"C") — queue depth, pending nbi, or an
/// injected time-series window value. Values may be negative (delta-mode
/// series re-attribute small amounts between related categories).
struct CounterSample {
  std::string name;
  int pe = -1;
  std::uint64_t ts_ns = 0;
  std::int64_t value = 0;
};

/// Everything parse_chrome_trace recovers from one trace file.
struct RunTrace {
  std::string protocol;  ///< from sws_run_meta; "" when absent
  int npes = 0;
  std::uint32_t slot_bytes = 0;
  std::string topo;  ///< topology spec string ("flat", "*x4", "2x4x48", …)
  bool crash_mode = false;  ///< run had a crash-stop FaultPlan armed
  bool truncated = false;  ///< ring wrapped: orphans at the front are benign
  std::vector<Span> spans;  ///< closed spans in begin-time order
  std::uint64_t orphan_begins = 0;  ///< begin with no matching end
  std::uint64_t orphan_ends = 0;    ///< end with no matching begin
  std::uint64_t orphan_ops = 0;     ///< fabric op outside any open span
  std::uint64_t instants = 0;
  // Crash-recovery instants (crash-mode runs only; docs/resilience.md).
  std::uint64_t deaths_detected = 0;  ///< death_detected events (per observer)
  std::uint64_t reroutes = 0;         ///< rerouted events
  std::uint64_t rerouted_tasks = 0;   ///< tasks re-homed off dead inboxes
  std::uint64_t counters = 0;
  std::vector<CounterSample> counter_samples;  ///< retained "C" rows
  std::uint64_t fabric_ops = 0;  ///< attributed + orphaned
  std::uint64_t duration_ns = 0;  ///< max event end time
};

/// Parse a Chrome trace-event JSON array as written by
/// Tracer::dump_chrome_json. Throws std::runtime_error on malformed
/// input (this is a validator for our own writer, not a general JSON
/// toolkit).
RunTrace parse_chrome_trace(std::istream& is);
RunTrace parse_chrome_trace_file(const std::string& path);

/// Pathology window scan parameters; defaults match sws-analyze's.
struct WindowConfig {
  std::uint64_t window_ns = 0;  ///< 0 = auto (duration / 64, min 1 µs)
  std::uint64_t storm_min_fails = 16;   ///< failed steals to call a storm
  std::uint64_t churn_min_retries = 8;  ///< kRetry results to call churn
};

struct AnalyzeReport {
  std::string protocol;
  int npes = 0;
  bool truncated = false;
  std::uint64_t duration_ns = 0;

  std::uint64_t steal_spans = 0;
  std::uint64_t steals_ok = 0;
  std::uint64_t steals_empty = 0;
  std::uint64_t steals_retry = 0;
  std::uint64_t tasks_stolen = 0;
  /// Steal mix by victim distance, derived from the trace's topology
  /// metadata: index t-1 holds attempts/successes against tier-t victims.
  /// ntiers == 1 on flat traces (everything lands in index 0).
  std::string topo;
  int ntiers = 1;
  std::array<std::uint64_t, net::kMaxTiers> attempts_by_tier{};
  std::array<std::uint64_t, net::kMaxTiers> steals_ok_by_tier{};
  std::uint64_t release_spans = 0;
  std::uint64_t acquire_spans = 0;
  /// Crash-recovery shapes (all zero on crash-free traces).
  std::uint64_t recovery_spans = 0;   ///< lease-paced fencing sweeps
  std::uint64_t tasks_recovered = 0;  ///< fenced claims handed back for re-run
  std::uint64_t deaths_detected = 0;  ///< per-observer death certificates
  std::uint64_t reroutes = 0;
  std::uint64_t rerouted_tasks = 0;
  std::uint64_t orphan_begins = 0;
  std::uint64_t orphan_ends = 0;
  std::uint64_t orphan_ops = 0;

  /// Canonical op-multiset signature ("amo_fetch_add:1 get:1
  /// nbi_amo_add:1") → number of *successful* steals showing it. The
  /// per-protocol op count claim is read straight off this map.
  std::map<std::string, std::uint64_t> signatures;
  double ops_per_success = 0.0;       ///< mean total ops
  double blocking_per_success = 0.0;  ///< mean blocking (initiator-stalling)

  sws::LogHistogram lat_ok_ns;     ///< successful-steal span durations
  sws::LogHistogram lat_empty_ns;  ///< kEmpty attempts
  sws::LogHistogram lat_retry_ns;  ///< kRetry attempts

  std::uint64_t window_ns = 0;
  std::uint64_t storm_windows = 0;  ///< fails >= min and >= 4x successes
  std::uint64_t churn_windows = 0;  ///< retries >= min and >= attempts/2
  std::uint64_t peak_window_fails = 0;

  /// Protocol self-check findings; empty = clean. Populated only when the
  /// trace carries run metadata naming the protocol.
  std::vector<std::string> violations;
};

AnalyzeReport analyze(const RunTrace& rt, const WindowConfig& wc = {});

/// Human-readable report (one metric per line, stable ordering).
void write_report(std::ostream& os, const AnalyzeReport& r);
/// Side-by-side A/B comparison of the headline metrics.
void write_diff(std::ostream& os, const AnalyzeReport& a,
                const AnalyzeReport& b);

// ----------------------------------------------------------- critical path

/// The longest dependency chain ending at the run's last event, walked
/// backwards through the steals that delivered the work: from the PE that
/// finished last, jump at each successful steal to the victim that held
/// the tasks beforehand, back to t=0. Every nanosecond of the walked path
/// is blamed on exactly one category (the four *_ns fields sum to
/// path_ns) — the "where did the makespan go" view scripts/
/// analyze_trace.py mirrors.
struct CriticalPath {
  int end_pe = -1;             ///< PE whose event closes the run
  std::uint64_t path_ns = 0;   ///< walked span (== run duration)
  std::uint64_t steal_hops = 0;
  /// Blame taxonomy over the path:
  std::uint64_t work_ns = 0;   ///< unspanned time: task bodies + park waits
  std::uint64_t search_ns = 0; ///< failed steals + release/acquire/recovery
  std::uint64_t steal_fabric_ns = 0;  ///< fabric occupancy inside hop steals
  std::uint64_t steal_proto_ns = 0;   ///< hop-steal latency beyond the wire
  std::vector<int> hop_pes;    ///< PE chain, end PE first
};

CriticalPath critical_path(const RunTrace& rt);

/// Hot-victim convoy pressure: inbound steal attempts per victim bucketed
/// into fixed windows, victims ranked by their peak windowed pressure.
struct ConvoyVictim {
  int pe = -1;
  std::uint64_t inbound_attempts = 0;       ///< whole-run inbound spans
  std::uint64_t inbound_ok = 0;             ///< ... that lost work
  std::uint64_t peak_window_attempts = 0;   ///< ranking key
  std::uint64_t peak_window_start_ns = 0;
};

struct ConvoyReport {
  std::uint64_t window_ns = 0;
  std::vector<ConvoyVictim> victims;  ///< every victim, hottest first
};

ConvoyReport convoy_report(const RunTrace& rt, const WindowConfig& wc = {});

void write_critical_path(std::ostream& os, const CriticalPath& cp);
void write_convoy(std::ostream& os, const ConvoyReport& cr,
                  std::size_t top = 5);

// ------------------------------------------------------------- time series

/// A parsed "sws-timeseries" JSON document (TimeSeries::write_json).
/// Values are kept exactly as written: per-window deltas for delta-mode
/// series, raw samples for level-mode.
struct TimeSeriesData {
  std::uint64_t interval_ns = 0;
  bool truncated = false;
  std::string protocol;
  int npes = 0;
  std::vector<std::uint64_t> t;  ///< sample times (ns)
  struct Series {
    std::string name;
    bool delta = false;
    std::vector<std::int64_t> v;
  };
  std::vector<Series> series;

  const Series* find(const std::string& name) const noexcept;
};

TimeSeriesData parse_timeseries(std::istream& is);
TimeSeriesData parse_timeseries_file(const std::string& path);

/// The accounting invariant, checked to the nanosecond: in every window
/// the acct.* category deltas must sum exactly to acct.elapsed_ns.
/// Returns violation messages; empty = clean (also when the document
/// carries no acct.* series at all).
std::vector<std::string> check_accounting(const TimeSeriesData& ts);

/// Utilization timeline + phase breakdown of the sampled windows.
void write_timeseries_summary(std::ostream& os, const TimeSeriesData& ts);

}  // namespace sws::obs
