#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "net/topology.hpp"

namespace sws::obs {

namespace {

// --------------------------------------------------------------- mini JSON
//
// Recursive-descent parser for the subset our own writer emits: objects,
// arrays, strings with \" and \\ escapes, numbers, true/false/null. Keys
// and values we don't recognize are parsed and dropped, so the format can
// grow without breaking older analyzers.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* get(const std::string& key) const noexcept {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
  double num_or(const std::string& key, double fb) const noexcept {
    const JsonValue* v = get(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : fb;
  }
  std::string str_or(const std::string& key, std::string fb) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->type == Type::kString ? v->str : fb;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::istream& is) {
    std::ostringstream buf;
    buf << is.rdbuf();
    text_ = buf.str();
  }

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", [] {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }());
      case 'f': return literal("false", [] {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        return v;
      }());
      case 'n': return literal("null", JsonValue{});
      default: return number();
    }
  }

  JsonValue literal(const char* word, JsonValue v) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_)
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.obj.emplace_back(std::move(key.str), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\') fail("unsupported escape");
      }
      v.str.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

/// Trace-format µs (possibly fractional) -> integer ns.
std::uint64_t to_ns(double ts_us) {
  return static_cast<std::uint64_t>(std::llround(ts_us * 1000.0));
}

}  // namespace

// ------------------------------------------------------------------ parse

RunTrace parse_chrome_trace(std::istream& is) {
  JsonParser parser(is);
  const JsonValue root = parser.parse();
  if (root.type != JsonValue::Type::kArray)
    throw std::runtime_error("trace JSON: top-level value is not an array");

  RunTrace rt;
  // Open spans, keyed by span id (globally unique per run by
  // construction: high bits name the PE).
  std::unordered_map<std::uint64_t, Span> open;
  const auto note_time = [&rt](std::uint64_t t) {
    rt.duration_ns = std::max(rt.duration_ns, t);
  };

  for (const JsonValue& ev : root.arr) {
    if (ev.type != JsonValue::Type::kObject)
      throw std::runtime_error("trace JSON: event is not an object");
    const std::string name = ev.str_or("name", "");
    const std::string ph = ev.str_or("ph", "");
    const std::uint64_t ts = to_ns(ev.num_or("ts", 0.0));
    const int pe = static_cast<int>(ev.num_or("tid", -1.0));
    const JsonValue* args = ev.get("args");

    if (name == "sws_run_meta" && args != nullptr) {
      rt.protocol = args->str_or("protocol", "");
      rt.npes = static_cast<int>(args->num_or("npes", 0.0));
      rt.slot_bytes =
          static_cast<std::uint32_t>(args->num_or("slot_bytes", 0.0));
      rt.topo = args->str_or("topo", "");
      rt.crash_mode = args->num_or("crashes", 0.0) != 0.0;
      rt.truncated = args->num_or("truncated", 0.0) != 0.0;
      continue;
    }
    note_time(ts);

    if (ph == "B") {
      Span s;
      s.kind = name;
      s.id = static_cast<std::uint64_t>(args ? args->num_or("span", 0.0) : 0);
      s.pe = pe;
      s.begin_ns = ts;
      s.a_begin = static_cast<std::uint64_t>(args ? args->num_or("a", 0.0) : 0);
      // A begin colliding with an already-open id means the end was lost
      // to ring truncation; the stale one becomes an orphan.
      if (!open.emplace(s.id, std::move(s)).second) ++rt.orphan_begins;
    } else if (ph == "E") {
      const std::uint64_t id =
          static_cast<std::uint64_t>(args ? args->num_or("span", 0.0) : 0);
      const auto it = open.find(id);
      if (it == open.end()) {
        ++rt.orphan_ends;
        continue;
      }
      Span s = std::move(it->second);
      open.erase(it);
      s.end_ns = ts;
      s.a_end = static_cast<std::uint64_t>(args ? args->num_or("a", 0.0) : 0);
      s.b_end = static_cast<std::uint64_t>(args ? args->num_or("b", 0.0) : 0);
      s.closed = true;
      rt.spans.push_back(std::move(s));
    } else if (ph == "X") {
      ++rt.fabric_ops;
      const std::uint64_t dur = to_ns(ev.num_or("dur", 0.0));
      note_time(ts + dur);
      const std::uint64_t id =
          static_cast<std::uint64_t>(args ? args->num_or("span", 0.0) : 0);
      const auto it = open.find(id);
      if (it == open.end()) {
        ++rt.orphan_ops;
        continue;
      }
      TraceOp op;
      op.op = args ? args->str_or("op", "") : "";
      op.target = static_cast<int>(args ? args->num_or("target", -1.0) : -1);
      op.bytes = static_cast<std::uint64_t>(args ? args->num_or("bytes", 0.0)
                                                 : 0);
      op.ts_ns = ts;
      op.dur_ns = dur;
      it->second.ops.push_back(std::move(op));
    } else if (ph == "C") {
      ++rt.counters;
    } else {
      ++rt.instants;
      if (name == "death_detected") {
        ++rt.deaths_detected;
      } else if (name == "rerouted") {
        ++rt.reroutes;
        rt.rerouted_tasks +=
            static_cast<std::uint64_t>(args ? args->num_or("b", 0.0) : 0);
      }
    }
  }

  rt.orphan_begins += open.size();
  std::sort(rt.spans.begin(), rt.spans.end(),
            [](const Span& x, const Span& y) {
              if (x.begin_ns != y.begin_ns) return x.begin_ns < y.begin_ns;
              if (x.pe != y.pe) return x.pe < y.pe;
              return x.id < y.id;
            });
  return rt;
}

RunTrace parse_chrome_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return parse_chrome_trace(f);
}

// ---------------------------------------------------------------- analyze

namespace {

/// Canonical signature of a span's op multiset: names sorted, counted.
std::string op_signature(const Span& s) {
  std::map<std::string, int> counts;
  for (const TraceOp& op : s.ops) ++counts[op.op];
  std::string sig;
  for (const auto& [name, n] : counts) {
    if (!sig.empty()) sig += ' ';
    sig += name + ':' + std::to_string(n);
  }
  return sig.empty() ? "(none)" : sig;
}

int count_op(const Span& s, const char* name) {
  int n = 0;
  for (const TraceOp& op : s.ops) n += op.op == name ? 1 : 0;
  return n;
}

/// The Fig 2 op-shape check: what a successful steal must look like on
/// the wire for each protocol. `wrapped_gets` allows one extra get when
/// the victim's ring wrapped mid-copy.
void check_success_span(const std::string& protocol, const Span& s,
                        bool crash_mode, std::vector<std::string>& out) {
  auto violation = [&](const std::string& what) {
    if (out.size() >= 16) return;  // cap the noise; counts tell the rest
    std::ostringstream msg;
    msg << protocol << " steal span " << s.id << " (pe " << s.pe
        << " -> victim " << s.victim() << ", t=" << s.begin_ns
        << "ns): " << what << " [ops: " << op_signature(s) << "]";
    out.push_back(msg.str());
  };
  const int gets = count_op(s, "get");
  if (protocol == "sws") {
    // One fused discover+claim fetch-add, one coalesced task-copy get (two
    // when the victim ring wrapped), and one passive completion add per
    // claimed block — a bulk claim lights up several completion slots but
    // still pays a single fetch-add and a single (larger) copy. An
    // empty-mode thief may precede the claim with one read-only amo_fetch
    // probe.
    const int probes = count_op(s, "amo_fetch");
    const int nbi_adds = count_op(s, "nbi_amo_add");
    if (count_op(s, "amo_fetch_add") != 1)
      violation("expected exactly 1 remote fetch-add");
    if (probes > 1) violation("expected at most 1 empty-mode probe fetch");
    if (gets < 1 || gets > 2) violation("expected 1 task-copy get (2 if wrapped)");
    if (nbi_adds < 1 || nbi_adds > 32)
      violation("expected 1 nbi completion add per claimed block (1..32)");
    if (s.ops.size() != 1 + static_cast<std::size_t>(gets + probes + nbi_adds))
      violation("unexpected extra ops in SWS steal");
  } else if (protocol == "sdc") {
    // Lock, metadata fetch, tail claim, unlock, task copy, completion
    // notify — the six-op sequence SWS collapses. Under lock contention
    // each failed cswap adds one more cswap plus one metadata probe get
    // before the steal eventually succeeds. With a crash plan armed the
    // thief also publishes one claim-intent put inside the critical
    // section (docs/resilience.md), so crash-mode traces show two puts.
    const int want_puts = crash_mode ? 2 : 1;
    const int cswaps = count_op(s, "amo_cswap");
    if (cswaps < 1) violation("expected at least 1 lock cswap");
    if (count_op(s, "put") != want_puts)
      violation(crash_mode
                    ? "expected claim-intent put + tail-claim put (crash mode)"
                    : "expected exactly 1 tail-claim put");
    if (count_op(s, "amo_set") != 1) violation("expected exactly 1 unlock set");
    if (count_op(s, "nbi_amo_set") != 1)
      violation("expected exactly 1 nbi completion set");
    if (gets < cswaps + 1 || gets > cswaps + 2)
      violation("expected 1 probe get per failed lock attempt + metadata get "
                "+ task-copy get (1 more if wrapped)");
    if (s.ops.size() != 2 + static_cast<std::size_t>(want_puts + cswaps + gets))
      violation("unexpected extra ops in SDC steal");
  }
}

}  // namespace

AnalyzeReport analyze(const RunTrace& rt, const WindowConfig& wc) {
  AnalyzeReport r;
  r.protocol = rt.protocol;
  r.npes = rt.npes;
  r.truncated = rt.truncated;
  r.duration_ns = rt.duration_ns;
  r.orphan_begins = rt.orphan_begins;
  r.orphan_ends = rt.orphan_ends;
  r.orphan_ops = rt.orphan_ops;

  std::uint64_t total_ops = 0;
  std::uint64_t total_blocking = 0;

  r.deaths_detected = rt.deaths_detected;
  r.reroutes = rt.reroutes;
  r.rerouted_tasks = rt.rerouted_tasks;

  // Victim-distance attribution: rebuild the run's Topology from the
  // trace metadata so each steal span lands in its tier bucket. A trace
  // that names its protocol but carries no topo is an incomplete dump —
  // tier attribution would silently be wrong, so refuse loudly instead.
  r.topo = rt.topo;
  net::Topology topo(rt.npes > 0 ? rt.npes : 1);
  if (!rt.protocol.empty() && rt.topo.empty())
    r.violations.push_back(
        "trace meta lacks topo: re-dump with a current writer (victim-tier "
        "attribution would be silently wrong)");
  if (!rt.topo.empty() && rt.npes > 0) {
    try {
      topo = net::Topology(net::TopologySpec::parse(rt.topo), rt.npes);
    } catch (const std::exception& e) {
      r.violations.push_back(std::string("unusable topo metadata \"") +
                             rt.topo + "\": " + e.what());
    }
  }
  r.ntiers = topo.ntiers();

  r.window_ns = wc.window_ns != 0
                    ? wc.window_ns
                    : std::max<std::uint64_t>(rt.duration_ns / 64, 1000);
  // window index -> (fails, oks, retries) for the pathology scan.
  struct Win {
    std::uint64_t fails = 0, oks = 0, retries = 0;
  };
  std::map<std::uint64_t, Win> windows;

  for (const Span& s : rt.spans) {
    if (s.kind == "release_span") {
      ++r.release_spans;
      continue;
    }
    if (s.kind == "acquire_span") {
      ++r.acquire_spans;
      continue;
    }
    if (s.kind == "recovery") {
      // Lease-paced fencing sweep; the end's b arg counts the fenced
      // tasks handed back to the survivor's scheduler for re-execution.
      ++r.recovery_spans;
      r.tasks_recovered += s.b_end;
      continue;
    }
    if (s.kind != "steal") continue;
    ++r.steal_spans;
    net::Tier tier = 1;
    if (s.pe >= 0 && s.pe < topo.npes() && s.victim() >= 0 &&
        s.victim() < topo.npes())
      tier = topo.distance(s.pe, s.victim());
    if (tier >= 1) ++r.attempts_by_tier[static_cast<std::size_t>(tier - 1)];
    Win& w = windows[s.begin_ns / r.window_ns];
    switch (s.outcome()) {
      case 0:
        ++r.steals_ok;
        ++w.oks;
        if (tier >= 1)
          ++r.steals_ok_by_tier[static_cast<std::size_t>(tier - 1)];
        r.tasks_stolen += s.ntasks();
        r.lat_ok_ns.add(s.duration_ns());
        ++r.signatures[op_signature(s)];
        total_ops += s.ops.size();
        for (const TraceOp& op : s.ops) total_blocking += op.blocking() ? 1 : 0;
        if (!rt.protocol.empty() && !rt.truncated)
          check_success_span(rt.protocol, s, rt.crash_mode, r.violations);
        break;
      case 1:
        ++r.steals_empty;
        ++w.fails;
        r.lat_empty_ns.add(s.duration_ns());
        break;
      default:
        ++r.steals_retry;
        ++w.fails;
        ++w.retries;
        r.lat_retry_ns.add(s.duration_ns());
        break;
    }
  }

  if (r.steals_ok > 0) {
    r.ops_per_success =
        static_cast<double>(total_ops) / static_cast<double>(r.steals_ok);
    r.blocking_per_success =
        static_cast<double>(total_blocking) / static_cast<double>(r.steals_ok);
  }

  for (const auto& [idx, w] : windows) {
    (void)idx;
    r.peak_window_fails = std::max(r.peak_window_fails, w.fails);
    // A storm window: failures dominate (thieves hammering empty or busy
    // victims); churn: the SDC lock bounce pattern, retries specifically.
    if (w.fails >= wc.storm_min_fails && w.fails >= 4 * w.oks)
      ++r.storm_windows;
    if (w.retries >= wc.churn_min_retries &&
        2 * w.retries >= w.fails + w.oks + w.retries)
      ++r.churn_windows;
  }

  // A PE that crashes mid-steal never closes its span; those orphans are
  // part of the crash-stop fault model, not a writer bug.
  if (!rt.truncated && !rt.crash_mode &&
      (rt.orphan_begins != 0 || rt.orphan_ends != 0))
    r.violations.push_back(
        "orphaned span begin/end in an untruncated trace (" +
        std::to_string(rt.orphan_begins) + " begins, " +
        std::to_string(rt.orphan_ends) + " ends)");
  return r;
}

// ----------------------------------------------------------------- output

namespace {

void quantile_line(std::ostream& os, const char* label,
                   const sws::LogHistogram& h) {
  os << "  " << std::left << std::setw(26) << label << std::right
     << "n=" << h.count();
  if (h.count() > 0)
    os << "  p50<=" << h.quantile(0.5) << "ns p95<=" << h.quantile(0.95)
       << "ns p99<=" << h.quantile(0.99) << "ns max<" << h.quantile(1.0)
       << "ns";
  os << "\n";
}

void metric_line(std::ostream& os, const char* label, std::uint64_t v) {
  os << "  " << std::left << std::setw(26) << label << std::right << v
     << "\n";
}

}  // namespace

void write_report(std::ostream& os, const AnalyzeReport& r) {
  os << "run: protocol=" << (r.protocol.empty() ? "?" : r.protocol)
     << " npes=" << r.npes << " duration=" << r.duration_ns << "ns"
     << (r.truncated ? " (trace TRUNCATED: ring wrapped)" : "") << "\n";
  os << "steals:\n";
  metric_line(os, "attempts", r.steal_spans);
  metric_line(os, "ok", r.steals_ok);
  metric_line(os, "empty", r.steals_empty);
  metric_line(os, "retry", r.steals_retry);
  metric_line(os, "tasks_stolen", r.tasks_stolen);
  metric_line(os, "releases", r.release_spans);
  metric_line(os, "acquires", r.acquire_spans);
  if (r.ntiers > 1) {
    os << "steal mix by victim tier (topo=" << r.topo << "):\n";
    for (int t = 1; t <= r.ntiers; ++t) {
      const auto i = static_cast<std::size_t>(t - 1);
      os << "  tier " << t << std::left << std::setw(20) << "" << std::right
         << "attempts=" << r.attempts_by_tier[i]
         << " ok=" << r.steals_ok_by_tier[i] << "\n";
    }
  }
  os << "comm per successful steal (Fig 2):\n";
  os << "  " << std::left << std::setw(26) << "ops" << std::right
     << std::fixed << std::setprecision(2) << r.ops_per_success << "\n";
  os << "  " << std::left << std::setw(26) << "blocking ops" << std::right
     << r.blocking_per_success << "\n"
     << std::defaultfloat;
  for (const auto& [sig, n] : r.signatures)
    os << "    " << n << "x  " << sig << "\n";
  os << "latency:\n";
  quantile_line(os, "steal ok", r.lat_ok_ns);
  quantile_line(os, "steal empty", r.lat_empty_ns);
  quantile_line(os, "steal retry", r.lat_retry_ns);
  os << "pathologies (window=" << r.window_ns << "ns):\n";
  metric_line(os, "storm windows", r.storm_windows);
  metric_line(os, "churn windows", r.churn_windows);
  metric_line(os, "peak fails/window", r.peak_window_fails);
  if (r.deaths_detected != 0 || r.recovery_spans != 0 || r.reroutes != 0) {
    os << "recovery summary (crash-stop):\n";
    metric_line(os, "deaths detected", r.deaths_detected);
    metric_line(os, "recovery sweeps", r.recovery_spans);
    metric_line(os, "tasks re-executed", r.tasks_recovered);
    metric_line(os, "reroute events", r.reroutes);
    metric_line(os, "tasks rerouted", r.rerouted_tasks);
  }
  if (r.orphan_begins != 0 || r.orphan_ends != 0 || r.orphan_ops != 0) {
    os << "orphans:\n";
    metric_line(os, "span begins", r.orphan_begins);
    metric_line(os, "span ends", r.orphan_ends);
    metric_line(os, "fabric ops", r.orphan_ops);
  }
  if (!r.violations.empty()) {
    os << "protocol violations (" << r.violations.size() << "):\n";
    for (const std::string& v : r.violations) os << "  ! " << v << "\n";
  }
}

namespace {

void diff_u64(std::ostream& os, const char* label, std::uint64_t a,
              std::uint64_t b) {
  os << "  " << std::left << std::setw(26) << label << std::right
     << std::setw(14) << a << std::setw(14) << b;
  if (a != 0) {
    const double rel = (static_cast<double>(b) - static_cast<double>(a)) /
                       static_cast<double>(a) * 100.0;
    os << "  " << std::showpos << std::fixed << std::setprecision(1) << rel
       << "%" << std::noshowpos << std::defaultfloat;
  }
  os << "\n";
}

void diff_f(std::ostream& os, const char* label, double a, double b) {
  os << "  " << std::left << std::setw(26) << label << std::right
     << std::setw(14) << std::fixed << std::setprecision(2) << a
     << std::setw(14) << b << std::defaultfloat << "\n";
}

}  // namespace

void write_diff(std::ostream& os, const AnalyzeReport& a,
                const AnalyzeReport& b) {
  os << "A/B: A=" << (a.protocol.empty() ? "?" : a.protocol)
     << " B=" << (b.protocol.empty() ? "?" : b.protocol) << "  (B vs A)\n";
  os << "  " << std::left << std::setw(26) << "" << std::right
     << std::setw(14) << "A" << std::setw(14) << "B" << "\n";
  diff_u64(os, "duration_ns", a.duration_ns, b.duration_ns);
  diff_u64(os, "steal attempts", a.steal_spans, b.steal_spans);
  diff_u64(os, "steals ok", a.steals_ok, b.steals_ok);
  diff_u64(os, "steals empty", a.steals_empty, b.steals_empty);
  diff_u64(os, "steals retry", a.steals_retry, b.steals_retry);
  diff_u64(os, "tasks stolen", a.tasks_stolen, b.tasks_stolen);
  diff_f(os, "ops/success", a.ops_per_success, b.ops_per_success);
  diff_f(os, "blocking/success", a.blocking_per_success,
         b.blocking_per_success);
  diff_u64(os, "steal-ok p50_ns", a.lat_ok_ns.quantile(0.5),
           b.lat_ok_ns.quantile(0.5));
  diff_u64(os, "steal-ok p99_ns", a.lat_ok_ns.quantile(0.99),
           b.lat_ok_ns.quantile(0.99));
  diff_u64(os, "storm windows", a.storm_windows, b.storm_windows);
  diff_u64(os, "churn windows", a.churn_windows, b.churn_windows);
  if (a.deaths_detected + b.deaths_detected + a.recovery_spans +
          b.recovery_spans !=
      0) {
    diff_u64(os, "deaths detected", a.deaths_detected, b.deaths_detected);
    diff_u64(os, "tasks re-executed", a.tasks_recovered, b.tasks_recovered);
    diff_u64(os, "tasks rerouted", a.rerouted_tasks, b.rerouted_tasks);
  }
}

}  // namespace sws::obs
