#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "net/topology.hpp"

namespace sws::obs {

namespace {

// --------------------------------------------------------------- mini JSON
//
// Recursive-descent parser for the subset our own writer emits: objects,
// arrays, strings with \" and \\ escapes, numbers, true/false/null. Keys
// and values we don't recognize are parsed and dropped, so the format can
// grow without breaking older analyzers.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* get(const std::string& key) const noexcept {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
  double num_or(const std::string& key, double fb) const noexcept {
    const JsonValue* v = get(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : fb;
  }
  std::string str_or(const std::string& key, std::string fb) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->type == Type::kString ? v->str : fb;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::istream& is) {
    std::ostringstream buf;
    buf << is.rdbuf();
    text_ = buf.str();
  }

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", [] {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }());
      case 'f': return literal("false", [] {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        return v;
      }());
      case 'n': return literal("null", JsonValue{});
      default: return number();
    }
  }

  JsonValue literal(const char* word, JsonValue v) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_)
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.obj.emplace_back(std::move(key.str), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\') fail("unsupported escape");
      }
      v.str.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

/// Trace-format µs (possibly fractional) -> integer ns.
std::uint64_t to_ns(double ts_us) {
  return static_cast<std::uint64_t>(std::llround(ts_us * 1000.0));
}

}  // namespace

// ------------------------------------------------------------------ parse

RunTrace parse_chrome_trace(std::istream& is) {
  JsonParser parser(is);
  const JsonValue root = parser.parse();
  if (root.type != JsonValue::Type::kArray)
    throw std::runtime_error("trace JSON: top-level value is not an array");

  RunTrace rt;
  // Open spans, keyed by span id (globally unique per run by
  // construction: high bits name the PE).
  std::unordered_map<std::uint64_t, Span> open;
  const auto note_time = [&rt](std::uint64_t t) {
    rt.duration_ns = std::max(rt.duration_ns, t);
  };

  for (const JsonValue& ev : root.arr) {
    if (ev.type != JsonValue::Type::kObject)
      throw std::runtime_error("trace JSON: event is not an object");
    const std::string name = ev.str_or("name", "");
    const std::string ph = ev.str_or("ph", "");
    const std::uint64_t ts = to_ns(ev.num_or("ts", 0.0));
    const int pe = static_cast<int>(ev.num_or("tid", -1.0));
    const JsonValue* args = ev.get("args");

    if (name == "sws_run_meta" && args != nullptr) {
      rt.protocol = args->str_or("protocol", "");
      rt.npes = static_cast<int>(args->num_or("npes", 0.0));
      rt.slot_bytes =
          static_cast<std::uint32_t>(args->num_or("slot_bytes", 0.0));
      rt.topo = args->str_or("topo", "");
      rt.crash_mode = args->num_or("crashes", 0.0) != 0.0;
      rt.truncated = args->num_or("truncated", 0.0) != 0.0;
      continue;
    }
    note_time(ts);

    if (ph == "B") {
      Span s;
      s.kind = name;
      s.id = static_cast<std::uint64_t>(args ? args->num_or("span", 0.0) : 0);
      s.pe = pe;
      s.begin_ns = ts;
      s.a_begin = static_cast<std::uint64_t>(args ? args->num_or("a", 0.0) : 0);
      // A begin colliding with an already-open id means the end was lost
      // to ring truncation; the stale one becomes an orphan.
      if (!open.emplace(s.id, std::move(s)).second) ++rt.orphan_begins;
    } else if (ph == "E") {
      const std::uint64_t id =
          static_cast<std::uint64_t>(args ? args->num_or("span", 0.0) : 0);
      const auto it = open.find(id);
      if (it == open.end()) {
        ++rt.orphan_ends;
        continue;
      }
      Span s = std::move(it->second);
      open.erase(it);
      s.end_ns = ts;
      s.a_end = static_cast<std::uint64_t>(args ? args->num_or("a", 0.0) : 0);
      s.b_end = static_cast<std::uint64_t>(args ? args->num_or("b", 0.0) : 0);
      s.closed = true;
      rt.spans.push_back(std::move(s));
    } else if (ph == "X") {
      ++rt.fabric_ops;
      const std::uint64_t dur = to_ns(ev.num_or("dur", 0.0));
      note_time(ts + dur);
      const std::uint64_t id =
          static_cast<std::uint64_t>(args ? args->num_or("span", 0.0) : 0);
      const auto it = open.find(id);
      if (it == open.end()) {
        ++rt.orphan_ops;
        continue;
      }
      TraceOp op;
      op.op = args ? args->str_or("op", "") : "";
      op.target = static_cast<int>(args ? args->num_or("target", -1.0) : -1);
      op.bytes = static_cast<std::uint64_t>(args ? args->num_or("bytes", 0.0)
                                                 : 0);
      op.ts_ns = ts;
      op.dur_ns = dur;
      it->second.ops.push_back(std::move(op));
    } else if (ph == "C") {
      ++rt.counters;
      CounterSample cs;
      cs.name = name;
      cs.pe = pe;
      cs.ts_ns = ts;
      cs.value = static_cast<std::int64_t>(
          std::llround(args ? args->num_or("value", 0.0) : 0.0));
      rt.counter_samples.push_back(std::move(cs));
    } else {
      ++rt.instants;
      if (name == "death_detected") {
        ++rt.deaths_detected;
      } else if (name == "rerouted") {
        ++rt.reroutes;
        rt.rerouted_tasks +=
            static_cast<std::uint64_t>(args ? args->num_or("b", 0.0) : 0);
      }
    }
  }

  rt.orphan_begins += open.size();
  std::sort(rt.spans.begin(), rt.spans.end(),
            [](const Span& x, const Span& y) {
              if (x.begin_ns != y.begin_ns) return x.begin_ns < y.begin_ns;
              if (x.pe != y.pe) return x.pe < y.pe;
              return x.id < y.id;
            });
  return rt;
}

RunTrace parse_chrome_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return parse_chrome_trace(f);
}

// ---------------------------------------------------------------- analyze

namespace {

/// Canonical signature of a span's op multiset: names sorted, counted.
std::string op_signature(const Span& s) {
  std::map<std::string, int> counts;
  for (const TraceOp& op : s.ops) ++counts[op.op];
  std::string sig;
  for (const auto& [name, n] : counts) {
    if (!sig.empty()) sig += ' ';
    sig += name + ':' + std::to_string(n);
  }
  return sig.empty() ? "(none)" : sig;
}

int count_op(const Span& s, const char* name) {
  int n = 0;
  for (const TraceOp& op : s.ops) n += op.op == name ? 1 : 0;
  return n;
}

/// The Fig 2 op-shape check: what a successful steal must look like on
/// the wire for each protocol. `wrapped_gets` allows one extra get when
/// the victim's ring wrapped mid-copy.
void check_success_span(const std::string& protocol, const Span& s,
                        bool crash_mode, std::vector<std::string>& out) {
  auto violation = [&](const std::string& what) {
    if (out.size() >= 16) return;  // cap the noise; counts tell the rest
    std::ostringstream msg;
    msg << protocol << " steal span " << s.id << " (pe " << s.pe
        << " -> victim " << s.victim() << ", t=" << s.begin_ns
        << "ns): " << what << " [ops: " << op_signature(s) << "]";
    out.push_back(msg.str());
  };
  const int gets = count_op(s, "get");
  if (protocol == "sws") {
    // One fused discover+claim fetch-add, one coalesced task-copy get (two
    // when the victim ring wrapped), and one passive completion add per
    // claimed block — a bulk claim lights up several completion slots but
    // still pays a single fetch-add and a single (larger) copy. An
    // empty-mode thief may precede the claim with one read-only amo_fetch
    // probe.
    const int probes = count_op(s, "amo_fetch");
    const int nbi_adds = count_op(s, "nbi_amo_add");
    if (count_op(s, "amo_fetch_add") != 1)
      violation("expected exactly 1 remote fetch-add");
    if (probes > 1) violation("expected at most 1 empty-mode probe fetch");
    if (gets < 1 || gets > 2) violation("expected 1 task-copy get (2 if wrapped)");
    if (nbi_adds < 1 || nbi_adds > 32)
      violation("expected 1 nbi completion add per claimed block (1..32)");
    if (s.ops.size() != 1 + static_cast<std::size_t>(gets + probes + nbi_adds))
      violation("unexpected extra ops in SWS steal");
  } else if (protocol == "sdc") {
    // Lock, metadata fetch, tail claim, unlock, task copy, completion
    // notify — the six-op sequence SWS collapses. Under lock contention
    // each failed cswap adds one more cswap plus one metadata probe get
    // before the steal eventually succeeds. With a crash plan armed the
    // thief also publishes one claim-intent put inside the critical
    // section (docs/resilience.md), so crash-mode traces show two puts.
    const int want_puts = crash_mode ? 2 : 1;
    const int cswaps = count_op(s, "amo_cswap");
    if (cswaps < 1) violation("expected at least 1 lock cswap");
    if (count_op(s, "put") != want_puts)
      violation(crash_mode
                    ? "expected claim-intent put + tail-claim put (crash mode)"
                    : "expected exactly 1 tail-claim put");
    if (count_op(s, "amo_set") != 1) violation("expected exactly 1 unlock set");
    if (count_op(s, "nbi_amo_set") != 1)
      violation("expected exactly 1 nbi completion set");
    if (gets < cswaps + 1 || gets > cswaps + 2)
      violation("expected 1 probe get per failed lock attempt + metadata get "
                "+ task-copy get (1 more if wrapped)");
    if (s.ops.size() != 2 + static_cast<std::size_t>(want_puts + cswaps + gets))
      violation("unexpected extra ops in SDC steal");
  }
}

}  // namespace

AnalyzeReport analyze(const RunTrace& rt, const WindowConfig& wc) {
  AnalyzeReport r;
  r.protocol = rt.protocol;
  r.npes = rt.npes;
  r.truncated = rt.truncated;
  r.duration_ns = rt.duration_ns;
  r.orphan_begins = rt.orphan_begins;
  r.orphan_ends = rt.orphan_ends;
  r.orphan_ops = rt.orphan_ops;

  std::uint64_t total_ops = 0;
  std::uint64_t total_blocking = 0;

  r.deaths_detected = rt.deaths_detected;
  r.reroutes = rt.reroutes;
  r.rerouted_tasks = rt.rerouted_tasks;

  // Victim-distance attribution: rebuild the run's Topology from the
  // trace metadata so each steal span lands in its tier bucket. A trace
  // that names its protocol but carries no topo is an incomplete dump —
  // tier attribution would silently be wrong, so refuse loudly instead.
  r.topo = rt.topo;
  net::Topology topo(rt.npes > 0 ? rt.npes : 1);
  if (!rt.protocol.empty() && rt.topo.empty())
    r.violations.push_back(
        "trace meta lacks topo: re-dump with a current writer (victim-tier "
        "attribution would be silently wrong)");
  if (!rt.topo.empty() && rt.npes > 0) {
    try {
      topo = net::Topology(net::TopologySpec::parse(rt.topo), rt.npes);
    } catch (const std::exception& e) {
      r.violations.push_back(std::string("unusable topo metadata \"") +
                             rt.topo + "\": " + e.what());
    }
  }
  r.ntiers = topo.ntiers();

  r.window_ns = wc.window_ns != 0
                    ? wc.window_ns
                    : std::max<std::uint64_t>(rt.duration_ns / 64, 1000);
  // window index -> (fails, oks, retries) for the pathology scan.
  struct Win {
    std::uint64_t fails = 0, oks = 0, retries = 0;
  };
  std::map<std::uint64_t, Win> windows;

  for (const Span& s : rt.spans) {
    if (s.kind == "release_span") {
      ++r.release_spans;
      continue;
    }
    if (s.kind == "acquire_span") {
      ++r.acquire_spans;
      continue;
    }
    if (s.kind == "recovery") {
      // Lease-paced fencing sweep; the end's b arg counts the fenced
      // tasks handed back to the survivor's scheduler for re-execution.
      ++r.recovery_spans;
      r.tasks_recovered += s.b_end;
      continue;
    }
    if (s.kind != "steal") continue;
    ++r.steal_spans;
    net::Tier tier = 1;
    if (s.pe >= 0 && s.pe < topo.npes() && s.victim() >= 0 &&
        s.victim() < topo.npes())
      tier = topo.distance(s.pe, s.victim());
    if (tier >= 1) ++r.attempts_by_tier[static_cast<std::size_t>(tier - 1)];
    Win& w = windows[s.begin_ns / r.window_ns];
    switch (s.outcome()) {
      case 0:
        ++r.steals_ok;
        ++w.oks;
        if (tier >= 1)
          ++r.steals_ok_by_tier[static_cast<std::size_t>(tier - 1)];
        r.tasks_stolen += s.ntasks();
        r.lat_ok_ns.add(s.duration_ns());
        ++r.signatures[op_signature(s)];
        total_ops += s.ops.size();
        for (const TraceOp& op : s.ops) total_blocking += op.blocking() ? 1 : 0;
        if (!rt.protocol.empty() && !rt.truncated)
          check_success_span(rt.protocol, s, rt.crash_mode, r.violations);
        break;
      case 1:
        ++r.steals_empty;
        ++w.fails;
        r.lat_empty_ns.add(s.duration_ns());
        break;
      default:
        ++r.steals_retry;
        ++w.fails;
        ++w.retries;
        r.lat_retry_ns.add(s.duration_ns());
        break;
    }
  }

  if (r.steals_ok > 0) {
    r.ops_per_success =
        static_cast<double>(total_ops) / static_cast<double>(r.steals_ok);
    r.blocking_per_success =
        static_cast<double>(total_blocking) / static_cast<double>(r.steals_ok);
  }

  for (const auto& [idx, w] : windows) {
    (void)idx;
    r.peak_window_fails = std::max(r.peak_window_fails, w.fails);
    // A storm window: failures dominate (thieves hammering empty or busy
    // victims); churn: the SDC lock bounce pattern, retries specifically.
    if (w.fails >= wc.storm_min_fails && w.fails >= 4 * w.oks)
      ++r.storm_windows;
    if (w.retries >= wc.churn_min_retries &&
        2 * w.retries >= w.fails + w.oks + w.retries)
      ++r.churn_windows;
  }

  // A PE that crashes mid-steal never closes its span; those orphans are
  // part of the crash-stop fault model, not a writer bug.
  if (!rt.truncated && !rt.crash_mode &&
      (rt.orphan_begins != 0 || rt.orphan_ends != 0))
    r.violations.push_back(
        "orphaned span begin/end in an untruncated trace (" +
        std::to_string(rt.orphan_begins) + " begins, " +
        std::to_string(rt.orphan_ends) + " ends)");
  return r;
}

// ----------------------------------------------------------------- output

namespace {

void quantile_line(std::ostream& os, const char* label,
                   const sws::LogHistogram& h) {
  os << "  " << std::left << std::setw(26) << label << std::right
     << "n=" << h.count();
  if (h.count() > 0)
    os << "  p50<=" << h.quantile(0.5) << "ns p95<=" << h.quantile(0.95)
       << "ns p99<=" << h.quantile(0.99) << "ns max<" << h.quantile(1.0)
       << "ns";
  os << "\n";
}

void metric_line(std::ostream& os, const char* label, std::uint64_t v) {
  os << "  " << std::left << std::setw(26) << label << std::right << v
     << "\n";
}

}  // namespace

void write_report(std::ostream& os, const AnalyzeReport& r) {
  os << "run: protocol=" << (r.protocol.empty() ? "?" : r.protocol)
     << " npes=" << r.npes << " duration=" << r.duration_ns << "ns"
     << (r.truncated ? " (trace TRUNCATED: ring wrapped)" : "") << "\n";
  os << "steals:\n";
  metric_line(os, "attempts", r.steal_spans);
  metric_line(os, "ok", r.steals_ok);
  metric_line(os, "empty", r.steals_empty);
  metric_line(os, "retry", r.steals_retry);
  metric_line(os, "tasks_stolen", r.tasks_stolen);
  metric_line(os, "releases", r.release_spans);
  metric_line(os, "acquires", r.acquire_spans);
  if (r.ntiers > 1) {
    os << "steal mix by victim tier (topo=" << r.topo << "):\n";
    for (int t = 1; t <= r.ntiers; ++t) {
      const auto i = static_cast<std::size_t>(t - 1);
      os << "  tier " << t << std::left << std::setw(20) << "" << std::right
         << "attempts=" << r.attempts_by_tier[i]
         << " ok=" << r.steals_ok_by_tier[i] << "\n";
    }
  }
  os << "comm per successful steal (Fig 2):\n";
  os << "  " << std::left << std::setw(26) << "ops" << std::right
     << std::fixed << std::setprecision(2) << r.ops_per_success << "\n";
  os << "  " << std::left << std::setw(26) << "blocking ops" << std::right
     << r.blocking_per_success << "\n"
     << std::defaultfloat;
  for (const auto& [sig, n] : r.signatures)
    os << "    " << n << "x  " << sig << "\n";
  os << "latency:\n";
  quantile_line(os, "steal ok", r.lat_ok_ns);
  quantile_line(os, "steal empty", r.lat_empty_ns);
  quantile_line(os, "steal retry", r.lat_retry_ns);
  os << "pathologies (window=" << r.window_ns << "ns):\n";
  metric_line(os, "storm windows", r.storm_windows);
  metric_line(os, "churn windows", r.churn_windows);
  metric_line(os, "peak fails/window", r.peak_window_fails);
  if (r.deaths_detected != 0 || r.recovery_spans != 0 || r.reroutes != 0) {
    os << "recovery summary (crash-stop):\n";
    metric_line(os, "deaths detected", r.deaths_detected);
    metric_line(os, "recovery sweeps", r.recovery_spans);
    metric_line(os, "tasks re-executed", r.tasks_recovered);
    metric_line(os, "reroute events", r.reroutes);
    metric_line(os, "tasks rerouted", r.rerouted_tasks);
  }
  if (r.orphan_begins != 0 || r.orphan_ends != 0 || r.orphan_ops != 0) {
    os << "orphans:\n";
    metric_line(os, "span begins", r.orphan_begins);
    metric_line(os, "span ends", r.orphan_ends);
    metric_line(os, "fabric ops", r.orphan_ops);
  }
  if (!r.violations.empty()) {
    os << "protocol violations (" << r.violations.size() << "):\n";
    for (const std::string& v : r.violations) os << "  ! " << v << "\n";
  }
}

namespace {

void diff_u64(std::ostream& os, const char* label, std::uint64_t a,
              std::uint64_t b) {
  os << "  " << std::left << std::setw(26) << label << std::right
     << std::setw(14) << a << std::setw(14) << b;
  if (a != 0) {
    const double rel = (static_cast<double>(b) - static_cast<double>(a)) /
                       static_cast<double>(a) * 100.0;
    os << "  " << std::showpos << std::fixed << std::setprecision(1) << rel
       << "%" << std::noshowpos << std::defaultfloat;
  }
  os << "\n";
}

void diff_f(std::ostream& os, const char* label, double a, double b) {
  os << "  " << std::left << std::setw(26) << label << std::right
     << std::setw(14) << std::fixed << std::setprecision(2) << a
     << std::setw(14) << b << std::defaultfloat << "\n";
}

}  // namespace

void write_diff(std::ostream& os, const AnalyzeReport& a,
                const AnalyzeReport& b) {
  os << "A/B: A=" << (a.protocol.empty() ? "?" : a.protocol)
     << " B=" << (b.protocol.empty() ? "?" : b.protocol) << "  (B vs A)\n";
  os << "  " << std::left << std::setw(26) << "" << std::right
     << std::setw(14) << "A" << std::setw(14) << "B" << "\n";
  diff_u64(os, "duration_ns", a.duration_ns, b.duration_ns);
  diff_u64(os, "steal attempts", a.steal_spans, b.steal_spans);
  diff_u64(os, "steals ok", a.steals_ok, b.steals_ok);
  diff_u64(os, "steals empty", a.steals_empty, b.steals_empty);
  diff_u64(os, "steals retry", a.steals_retry, b.steals_retry);
  diff_u64(os, "tasks stolen", a.tasks_stolen, b.tasks_stolen);
  diff_f(os, "ops/success", a.ops_per_success, b.ops_per_success);
  diff_f(os, "blocking/success", a.blocking_per_success,
         b.blocking_per_success);
  diff_u64(os, "steal-ok p50_ns", a.lat_ok_ns.quantile(0.5),
           b.lat_ok_ns.quantile(0.5));
  diff_u64(os, "steal-ok p99_ns", a.lat_ok_ns.quantile(0.99),
           b.lat_ok_ns.quantile(0.99));
  diff_u64(os, "storm windows", a.storm_windows, b.storm_windows);
  diff_u64(os, "churn windows", a.churn_windows, b.churn_windows);
  if (a.deaths_detected + b.deaths_detected + a.recovery_spans +
          b.recovery_spans !=
      0) {
    diff_u64(os, "deaths detected", a.deaths_detected, b.deaths_detected);
    diff_u64(os, "tasks re-executed", a.tasks_recovered, b.tasks_recovered);
    diff_u64(os, "tasks rerouted", a.rerouted_tasks, b.rerouted_tasks);
  }
}

// ----------------------------------------------------------- critical path

namespace {

/// Total length of the union of [lo, hi) intervals (merges overlaps so
/// nothing is double-blamed).
std::uint64_t union_length(std::vector<std::pair<std::uint64_t,
                                                 std::uint64_t>>& iv) {
  if (iv.empty()) return 0;
  std::sort(iv.begin(), iv.end());
  std::uint64_t total = 0;
  std::uint64_t lo = iv.front().first;
  std::uint64_t hi = iv.front().second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > hi) {
      total += hi - lo;
      lo = iv[i].first;
      hi = iv[i].second;
    } else {
      hi = std::max(hi, iv[i].second);
    }
  }
  return total + (hi - lo);
}

/// True for span kinds that count as steal-search overhead (not useful
/// work) when they overlap a critical-path local segment.
bool is_search_kind(const Span& s) {
  if (s.kind == "steal") return s.outcome() != 0;
  return s.kind == "release_span" || s.kind == "acquire_span" ||
         s.kind == "recovery";
}

}  // namespace

CriticalPath critical_path(const RunTrace& rt) {
  CriticalPath cp;
  cp.path_ns = rt.duration_ns;
  if (rt.spans.empty()) return cp;

  // Per-PE indexes: all spans (begin-sorted, inherited from rt.spans) for
  // the blame overlap scan, successful steals (end-sorted) for the walk.
  std::unordered_map<int, std::vector<const Span*>> by_pe;
  std::unordered_map<int, std::vector<const Span*>> ok_steals;
  const Span* last = nullptr;
  for (const Span& s : rt.spans) {
    by_pe[s.pe].push_back(&s);
    if (s.kind == "steal" && s.outcome() == 0) ok_steals[s.pe].push_back(&s);
    if (last == nullptr || s.end_ns > last->end_ns ||
        (s.end_ns == last->end_ns && s.pe < last->pe))
      last = &s;
  }
  for (auto& [pe, v] : ok_steals) {
    (void)pe;
    std::sort(v.begin(), v.end(), [](const Span* x, const Span* y) {
      return x->end_ns < y->end_ns;
    });
  }

  cp.end_pe = last->pe;
  cp.hop_pes.push_back(cp.end_pe);

  // Blame one local segment (lo, hi] on PE `pe`: search-kind span overlap
  // is search time, the remainder is work (task bodies + park waits — the
  // trace does not span those, so they are the unspanned residue).
  const auto blame_local = [&](int pe, std::uint64_t lo, std::uint64_t hi) {
    if (hi <= lo) return;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
    const auto it = by_pe.find(pe);
    if (it != by_pe.end()) {
      for (const Span* s : it->second) {
        if (s->begin_ns >= hi) break;  // begin-sorted: nothing later overlaps
        if (s->end_ns <= lo || !is_search_kind(*s)) continue;
        iv.emplace_back(std::max(lo, s->begin_ns), std::min(hi, s->end_ns));
      }
    }
    const std::uint64_t search = union_length(iv);
    cp.search_ns += search;
    cp.work_ns += (hi - lo) - search;
  };

  int cur_pe = cp.end_pe;
  std::uint64_t t = rt.duration_ns;
  // Walk backwards: the latest successful steal at or before t is the
  // dependency that delivered cur_pe's work; everything after it on cur_pe
  // is local, the span itself is a hop, and the chain continues at the
  // victim. Hop count is bounded by the span count (each hop moves t to an
  // earlier steal begin), but guard anyway against degenerate
  // zero-duration cycles.
  for (std::size_t guard = 0; guard <= rt.spans.size(); ++guard) {
    const Span* hop = nullptr;
    const auto it = ok_steals.find(cur_pe);
    if (it != ok_steals.end()) {
      // Latest success with end_ns <= t (end-sorted vector).
      const auto& v = it->second;
      auto pos = std::upper_bound(
          v.begin(), v.end(), t, [](std::uint64_t tt, const Span* s) {
            return tt < s->end_ns;
          });
      if (pos != v.begin()) hop = *(pos - 1);
    }
    if (hop == nullptr || hop->begin_ns >= t) {
      // Root of the chain: everything back to t=0 is local to this PE.
      blame_local(cur_pe, 0, t);
      break;
    }
    blame_local(cur_pe, hop->end_ns, t);
    // Hop blame: fabric-op occupancy inside the steal span vs protocol
    // residue (serialization, retries between ops, victim-side latency).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
    for (const TraceOp& op : hop->ops) {
      const std::uint64_t lo = std::max(hop->begin_ns, op.ts_ns);
      const std::uint64_t hi =
          std::min(hop->end_ns, op.ts_ns + op.dur_ns);
      if (hi > lo) iv.emplace_back(lo, hi);
    }
    const std::uint64_t fabric = union_length(iv);
    cp.steal_fabric_ns += fabric;
    cp.steal_proto_ns += hop->duration_ns() - fabric;
    ++cp.steal_hops;
    t = hop->begin_ns;
    cur_pe = hop->victim();
    cp.hop_pes.push_back(cur_pe);
  }
  return cp;
}

ConvoyReport convoy_report(const RunTrace& rt, const WindowConfig& wc) {
  ConvoyReport cr;
  cr.window_ns = wc.window_ns != 0
                     ? wc.window_ns
                     : std::max<std::uint64_t>(rt.duration_ns / 64, 1000);
  struct Pressure {
    std::uint64_t attempts = 0, ok = 0;
    std::map<std::uint64_t, std::uint64_t> windows;
  };
  std::map<int, Pressure> per_victim;
  for (const Span& s : rt.spans) {
    if (s.kind != "steal") continue;
    Pressure& p = per_victim[s.victim()];
    ++p.attempts;
    if (s.outcome() == 0) ++p.ok;
    ++p.windows[s.begin_ns / cr.window_ns];
  }
  for (const auto& [pe, p] : per_victim) {
    ConvoyVictim v;
    v.pe = pe;
    v.inbound_attempts = p.attempts;
    v.inbound_ok = p.ok;
    for (const auto& [w, n] : p.windows) {
      if (n > v.peak_window_attempts) {
        v.peak_window_attempts = n;
        v.peak_window_start_ns = w * cr.window_ns;
      }
    }
    cr.victims.push_back(v);
  }
  std::sort(cr.victims.begin(), cr.victims.end(),
            [](const ConvoyVictim& a, const ConvoyVictim& b) {
              if (a.peak_window_attempts != b.peak_window_attempts)
                return a.peak_window_attempts > b.peak_window_attempts;
              if (a.inbound_attempts != b.inbound_attempts)
                return a.inbound_attempts > b.inbound_attempts;
              return a.pe < b.pe;
            });
  return cr;
}

void write_critical_path(std::ostream& os, const CriticalPath& cp) {
  os << "critical path (termination chain, walked backwards):\n";
  metric_line(os, "path_ns", cp.path_ns);
  metric_line(os, "steal hops", cp.steal_hops);
  const auto pct = [&](std::uint64_t v) {
    return cp.path_ns != 0
               ? 100.0 * static_cast<double>(v) /
                     static_cast<double>(cp.path_ns)
               : 0.0;
  };
  const auto blame = [&](const char* label, std::uint64_t v) {
    os << "  " << std::left << std::setw(26) << label << std::right << v
       << "  (" << std::fixed << std::setprecision(1) << pct(v) << "%)"
       << std::defaultfloat << "\n";
  };
  blame("task work + park", cp.work_ns);
  blame("steal search", cp.search_ns);
  blame("hop steal fabric", cp.steal_fabric_ns);
  blame("hop steal protocol", cp.steal_proto_ns);
  os << "  chain (end pe first):";
  const std::size_t shown = std::min<std::size_t>(cp.hop_pes.size(), 16);
  for (std::size_t i = 0; i < shown; ++i) os << " " << cp.hop_pes[i];
  if (cp.hop_pes.size() > shown)
    os << " ... (" << cp.hop_pes.size() - shown << " more)";
  os << "\n";
}

void write_convoy(std::ostream& os, const ConvoyReport& cr, std::size_t top) {
  os << "hot victims (inbound steal pressure, window=" << cr.window_ns
     << "ns):\n";
  if (cr.victims.empty()) {
    os << "  (no steal spans in trace)\n";
    return;
  }
  const std::size_t shown = std::min(top, cr.victims.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const ConvoyVictim& v = cr.victims[i];
    os << "  pe " << std::left << std::setw(6) << v.pe << std::right
       << "inbound=" << v.inbound_attempts << " (ok=" << v.inbound_ok
       << ")  peak=" << v.peak_window_attempts << " attempts @t="
       << v.peak_window_start_ns << "ns\n";
  }
  if (cr.victims.size() > shown)
    os << "  ... " << cr.victims.size() - shown << " more victims\n";
}

// ------------------------------------------------------------- time series

const TimeSeriesData::Series* TimeSeriesData::find(
    const std::string& name) const noexcept {
  for (const Series& s : series)
    if (s.name == name) return &s;
  return nullptr;
}

TimeSeriesData parse_timeseries(std::istream& is) {
  JsonParser parser(is);
  const JsonValue root = parser.parse();
  if (root.type != JsonValue::Type::kObject ||
      root.str_or("schema", "") != "sws-timeseries")
    throw std::runtime_error(
        "timeseries JSON: not an sws-timeseries document");

  TimeSeriesData ts;
  ts.interval_ns =
      static_cast<std::uint64_t>(root.num_or("interval_ns", 0.0));
  ts.truncated = root.num_or("truncated", 0.0) != 0.0;
  ts.protocol = root.str_or("protocol", "");
  ts.npes = static_cast<int>(root.num_or("npes", 0.0));

  const JsonValue* t = root.get("t");
  if (t != nullptr && t->type == JsonValue::Type::kArray)
    for (const JsonValue& v : t->arr)
      ts.t.push_back(static_cast<std::uint64_t>(v.number));

  const JsonValue* series = root.get("series");
  if (series != nullptr && series->type == JsonValue::Type::kArray) {
    for (const JsonValue& sv : series->arr) {
      if (sv.type != JsonValue::Type::kObject) continue;
      TimeSeriesData::Series s;
      s.name = sv.str_or("name", "");
      s.delta = sv.str_or("mode", "delta") == "delta";
      const JsonValue* vals = sv.get("v");
      if (vals != nullptr && vals->type == JsonValue::Type::kArray)
        for (const JsonValue& v : vals->arr)
          s.v.push_back(static_cast<std::int64_t>(std::llround(v.number)));
      if (s.v.size() != ts.t.size())
        throw std::runtime_error("timeseries JSON: series \"" + s.name +
                                 "\" length disagrees with \"t\"");
      ts.series.push_back(std::move(s));
    }
  }
  return ts;
}

TimeSeriesData parse_timeseries_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open timeseries file: " + path);
  return parse_timeseries(f);
}

namespace {

/// The acct.* category series names, mirroring core::pool_phase_name (the
/// analysis layer deliberately does not link against the scheduler).
constexpr const char* kAcctCategories[] = {
    "working",   "probing",    "stealing",         "parked",
    "blocked_nbi", "recovering", "idle_terminating",
};

}  // namespace

std::vector<std::string> check_accounting(const TimeSeriesData& ts) {
  std::vector<std::string> out;
  const TimeSeriesData::Series* elapsed = ts.find("acct.elapsed_ns");
  if (elapsed == nullptr) return out;  // no accounting series: nothing to do

  std::vector<const TimeSeriesData::Series*> cats;
  for (const char* c : kAcctCategories) {
    const auto* s = ts.find(std::string("acct.") + c);
    if (s == nullptr) {
      out.push_back(std::string("accounting series missing: acct.") + c);
      return out;
    }
    cats.push_back(s);
  }
  for (std::size_t i = 0; i < ts.t.size(); ++i) {
    std::int64_t sum = 0;
    for (const auto* s : cats) sum += s->v[i];
    if (sum != elapsed->v[i]) {
      std::ostringstream msg;
      msg << "accounting mismatch at t=" << ts.t[i] << "ns: sum(categories)="
          << sum << " != elapsed=" << elapsed->v[i] << " (delta "
          << sum - elapsed->v[i] << "ns)";
      out.push_back(msg.str());
      if (out.size() >= 16) {
        out.push_back("... further mismatches suppressed");
        break;
      }
    }
  }
  return out;
}

void write_timeseries_summary(std::ostream& os, const TimeSeriesData& ts) {
  os << "time series: interval=" << ts.interval_ns << "ns samples="
     << ts.t.size()
     << (ts.protocol.empty() ? "" : " protocol=" + ts.protocol);
  if (ts.npes > 0) os << " npes=" << ts.npes;
  if (ts.truncated) os << " (TRUNCATED at sample cap)";
  os << "\n";
  if (ts.t.empty()) return;

  const TimeSeriesData::Series* elapsed = ts.find("acct.elapsed_ns");
  if (elapsed != nullptr) {
    // Utilization timeline: per-window fraction of all PEs' elapsed time
    // spent in kWorking, rendered as a compact bar per sampled window.
    const TimeSeriesData::Series* working = ts.find("acct.working");
    if (working != nullptr) {
      static const char kBars[] = " .:-=+*#%@";
      os << "utilization (acct.working / acct.elapsed_ns per window, "
            "' '=0% '@'=100%):\n  [";
      for (std::size_t i = 0; i < ts.t.size(); ++i) {
        double frac = 0.0;
        if (elapsed->v[i] > 0)
          frac = static_cast<double>(working->v[i]) /
                 static_cast<double>(elapsed->v[i]);
        frac = std::min(1.0, std::max(0.0, frac));
        os << kBars[static_cast<std::size_t>(frac * 9.0 + 0.5)];
      }
      os << "]\n";
    }
    // Whole-run phase breakdown (sum of per-window deltas per category).
    std::int64_t total_elapsed = 0;
    for (const std::int64_t v : elapsed->v) total_elapsed += v;
    os << "phase breakdown (all PEs):\n";
    for (const char* c : kAcctCategories) {
      const auto* s = ts.find(std::string("acct.") + c);
      if (s == nullptr) continue;
      std::int64_t total = 0;
      for (const std::int64_t v : s->v) total += v;
      os << "  " << std::left << std::setw(26)
         << (std::string("acct.") + c) << std::right << total;
      if (total_elapsed > 0)
        os << "  (" << std::fixed << std::setprecision(1)
           << 100.0 * static_cast<double>(total) /
                  static_cast<double>(total_elapsed)
           << "%)" << std::defaultfloat;
      os << "\n";
    }
  }
  // Steal / fabric activity over the run, if those series were sampled.
  const auto total_of = [&](const char* name) -> std::int64_t {
    const auto* s = ts.find(name);
    if (s == nullptr) return -1;
    std::int64_t total = 0;
    for (const std::int64_t v : s->v) total += v;
    return total;
  };
  const std::int64_t tasks = total_of("pool.tasks_executed");
  const std::int64_t steals = total_of("pool.steals_ok");
  const std::int64_t attempts = total_of("pool.steal_attempts");
  const std::int64_t remote = total_of("fabric.remote_ops");
  if (tasks >= 0 || steals >= 0 || remote >= 0) {
    os << "activity totals:\n";
    if (tasks >= 0)
      metric_line(os, "tasks executed", static_cast<std::uint64_t>(tasks));
    if (attempts >= 0)
      metric_line(os, "steal attempts",
                  static_cast<std::uint64_t>(attempts));
    if (steals >= 0)
      metric_line(os, "steals ok", static_cast<std::uint64_t>(steals));
    if (remote >= 0)
      metric_line(os, "remote fabric ops",
                  static_cast<std::uint64_t>(remote));
  }
}

}  // namespace sws::obs
