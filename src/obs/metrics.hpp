// Cross-layer metrics registry — the one interface every layer reports
// its counters through (docs/observability.md).
//
// A metric is registered once by name ("fabric.ops.put", "pool.steals_ok")
// and updated per PE: each PE writes its own cache-line-padded slab, so
// hot-path increments never bounce lines between PE threads under the
// real-time backend. Reads (snapshot, exporters) are owner-biased and
// intended for quiescent points — between runs, at teardown, in tests.
//
// Three metric kinds:
//  * counter   — monotone u64; merges by summation
//  * gauge     — last-written u64 (clock, queue depth); merges by max
//  * histogram — LogHistogram of u64 samples; merges bucket-wise
//
// Snapshots decouple reporting from the live registry: take one per run,
// merge across runs/repetitions, diff two to isolate a phase.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace sws::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind k) noexcept;

/// Handle returned by registration; cheap to copy and pass around.
struct MetricId {
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  std::uint32_t idx = kInvalid;
  bool valid() const noexcept { return idx != kInvalid; }
};

/// Point-in-time copy of every registered metric, detached from the
/// registry's per-PE slabs. The unit snapshots merge and diff in.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<std::uint64_t> per_pe;  ///< scalar kinds; empty for histograms
    LogHistogram hist;                  ///< merged across PEs (histograms)
    std::uint64_t total() const noexcept;
  };
  std::vector<Entry> entries;
  int npes = 0;

  const Entry* find(const std::string& name) const noexcept;

  /// Accumulate another run's snapshot into this one: counters and
  /// histograms add, gauges take the maximum. Entries are matched by
  /// name; entries only present in `o` are appended.
  void merge(const MetricsSnapshot& o);

  /// Windowed delta: turn this (later) snapshot into `this - earlier`.
  /// Counters subtract (saturating at 0, so an unrelated or reset
  /// baseline cannot produce wrap-around garbage); histograms subtract
  /// bucket-wise the same way. Gauges are *last-value-wins*: a max-gauge
  /// has no meaningful difference over a window, so the entry keeps this
  /// snapshot's value — the level observed at the window's end. Entries
  /// absent from `earlier` are kept verbatim (delta vs an implicit zero);
  /// entries only present in `earlier` are ignored.
  void diff(const MetricsSnapshot& earlier);

  /// Aligned human-readable table, one metric per line.
  void write_text(std::ostream& os) const;
  /// {"schema":"sws-metrics", ...} — the format scripts/analyze_trace.py
  /// and the CI artifacts consume.
  void write_json(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  explicit MetricsRegistry(int npes);

  /// Drop all values and resize for `npes` PEs; registrations survive.
  void reset(int npes);
  /// Zero every slot (all PEs, all metrics); registrations survive.
  void reset_values();

  int npes() const noexcept { return npes_; }
  std::size_t size() const noexcept { return metrics_.size(); }

  // --- registration (not thread-safe; do it before the PEs run) ---------
  /// Registering an existing name with the same kind returns the prior
  /// id (idempotent); a kind mismatch is a programming error.
  MetricId counter(std::string name, std::string help = {});
  MetricId gauge(std::string name, std::string help = {});
  MetricId histogram(std::string name, std::string help = {});
  MetricId find(const std::string& name) const noexcept;

  // --- per-PE updates (each PE may touch only its own slot) -------------
  void add(MetricId m, int pe, std::uint64_t delta = 1) noexcept;
  void set(MetricId m, int pe, std::uint64_t value) noexcept;
  void observe(MetricId m, int pe, std::uint64_t sample) noexcept;
  /// Replace `pe`'s histogram wholesale — how a layer that already keeps
  /// its own LogHistogram publishes it (idempotent, like set()).
  void set_hist(MetricId m, int pe, const LogHistogram& h) noexcept;

  // --- reads ------------------------------------------------------------
  std::uint64_t value(MetricId m, int pe) const noexcept;
  /// Counters: sum over PEs. Gauges: max over PEs. Histograms: count.
  std::uint64_t total(MetricId m) const noexcept;

  MetricsSnapshot snapshot() const;
  /// write_text/write_json on a fresh snapshot — convenience.
  void write_text(std::ostream& os) const;
  void write_json(std::ostream& os) const;

 private:
  struct Meta {
    std::string name;
    std::string help;
    MetricKind kind;
    std::uint32_t slot;  ///< scalar index or histogram index, per kind
  };
  /// One PE's slab. Scalars and histograms live in per-PE vectors whose
  /// heap blocks are disjoint between PEs; the alignas keeps the vector
  /// headers (size/data pointers, mutated on growth only) off shared
  /// lines too.
  struct alignas(64) PeSlab {
    std::vector<std::uint64_t> scalars;
    std::vector<LogHistogram> hists;
  };

  MetricId register_metric(std::string name, std::string help,
                           MetricKind kind);

  std::vector<Meta> metrics_;
  std::vector<PeSlab> slabs_;
  std::uint32_t nscalars_ = 0;
  std::uint32_t nhists_ = 0;
  int npes_ = 0;
};

}  // namespace sws::obs
