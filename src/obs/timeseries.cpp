#include "obs/timeseries.hpp"

#include <iomanip>
#include <ostream>

#include "common/assert.hpp"

namespace sws::obs {

namespace {

// Chrome trace "ts" is microseconds; emit ns / 1000 with three decimals so
// distinct virtual nanoseconds stay distinct — the same format the tracer
// uses (src/core/trace.cpp), so injected counter rows sort consistently.
void json_ts_us(std::ostream& os, std::uint64_t t) {
  os << t / 1000 << "." << std::setw(3) << std::setfill('0') << t % 1000
     << std::setfill(' ');
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

// Per-window export value of series `s` at row `i`: the signed difference
// for delta mode (re-attribution between related series can make a window
// locally negative), the raw sample for level mode.
std::int64_t export_value(const std::vector<std::uint64_t>& vals,
                          TimeSeries::Mode mode, std::size_t i) {
  if (mode == TimeSeries::Mode::kLevel || i == 0)
    return static_cast<std::int64_t>(vals[i]);
  return static_cast<std::int64_t>(vals[i] - vals[i - 1]);
}

}  // namespace

TimeSeries::TimeSeries(std::uint64_t interval_ns, std::size_t max_samples)
    : interval_ns_(interval_ns), max_samples_(max_samples) {}

void TimeSeries::add_series(std::string name, Mode mode, Source src) {
  SWS_CHECK(times_.empty(), "add_series after the first sample");
  SWS_CHECK(static_cast<bool>(src), "series source must be callable");
  Series s;
  s.name = std::move(name);
  s.mode = mode;
  s.src = std::move(src);
  series_.push_back(std::move(s));
}

void TimeSeries::add_meta(std::string key, std::string raw_json) {
  meta_.emplace_back(std::move(key), std::move(raw_json));
}

void TimeSeries::sample(std::uint64_t t_ns) {
  if (!times_.empty() && t_ns <= times_.back()) return;  // idempotent finalize
  if (times_.size() >= max_samples_) {
    truncated_ = true;
    return;
  }
  times_.push_back(t_ns);
  for (Series& s : series_) s.vals.push_back(s.src());
}

void TimeSeries::clear() {
  times_.clear();
  truncated_ = false;
  for (Series& s : series_) s.vals.clear();
}

std::uint64_t TimeSeries::value(std::size_t s, std::size_t i) const {
  return series_[s].vals[i];
}

const std::string& TimeSeries::series_name(std::size_t s) const {
  return series_[s].name;
}

void TimeSeries::write_json(std::ostream& os) const {
  os << "{\"schema\":\"sws-timeseries\",\"interval_ns\":" << interval_ns_
     << ",\"samples\":" << times_.size()
     << ",\"truncated\":" << (truncated_ ? 1 : 0);
  for (const auto& [key, raw] : meta_) {
    os << ",";
    json_string(os, key);
    os << ":" << raw;
  }
  os << ",\n\"t\":[";
  for (std::size_t i = 0; i < times_.size(); ++i)
    os << (i ? "," : "") << times_[i];
  os << "],\n\"series\":[";
  bool first = true;
  for (const Series& s : series_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    json_string(os, s.name);
    os << ",\"mode\":\""
       << (s.mode == Mode::kDelta ? "delta" : "level") << "\",\"v\":[";
    for (std::size_t i = 0; i < s.vals.size(); ++i)
      os << (i ? "," : "") << export_value(s.vals, s.mode, i);
    os << "]}";
  }
  os << "\n]}\n";
}

void TimeSeries::write_chrome_counters(std::ostream& os) const {
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < times_.size(); ++i) {
      os << ",\n{\"name\":";
      json_string(os, s.name);
      os << ",\"ph\":\"C\",\"ts\":";
      json_ts_us(os, times_[i]);
      os << ",\"pid\":0,\"tid\":0,\"args\":{\"value\":"
         << export_value(s.vals, s.mode, i) << "}}";
    }
  }
}

}  // namespace sws::obs
