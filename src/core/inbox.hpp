// Remote task spawning (paper §3: "a process may spawn tasks onto remote
// queues, although with more overhead due to communication").
//
// Each PE owns a symmetric MPSC inbox ring. A sender reserves a slot with
// a bounded CAS on the reserve cursor, one-sided-puts the serialized task,
// then publishes it by setting the slot's generation tag. The owner drains
// published slots in order during scheduler progress. Per remote spawn:
// 2 AMOs + a get + a put + a set — deliberately heavier than local
// spawning, matching the paper's caveat.
//
// Symmetric layout:
//   +0   reserve   next slot sequence number (senders, CAS)
//   +8   drained   next sequence the owner will consume (owner, set)
//   +16  slots     per slot: [u64 tag][slot_bytes task payload]
// A slot with tag == seq+1 holds the task for sequence `seq`; tag 0 is
// empty. Tags are full sequence numbers, so ring reuse can't ABA.
//
// Crash mode (a FaultPlan with crashes armed): each sender additionally
// keeps a host-side ledger of tasks it pushed, per target, pruned by the
// drained cursor it reads during every push anyway. If the target dies,
// the unpruned suffix is exactly the set of pushed tasks the target may
// never have drained; reroute_dead() hands them back for local
// re-execution. A task the target drained *and ran* just before dying can
// be rerouted too — execution is at-least-once with multiplicity <= 2,
// bounded to this reroute window (docs/resilience.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "core/task.hpp"
#include "pgas/runtime.hpp"

namespace sws::core {

class DeathRegistry;

class TaskInbox {
 public:
  TaskInbox(pgas::Runtime& rt, std::uint32_t capacity,
            std::uint32_t slot_bytes);

  std::uint32_t capacity() const noexcept { return capacity_; }

  /// Collective per-PE reset; barrier before use.
  void reset_pe(pgas::PeContext& ctx);

  /// Deliver `t` to `target`'s inbox. Returns false when the inbox is
  /// full (sender should retry later or fall back to local execution).
  bool remote_push(pgas::PeContext& sender, int target, const Task& t);

  /// Batched push: reserve a run of slots with one CAS, stage every
  /// payload (and every tag but the first) into 1–2 vectorized puts, then
  /// publish the whole run with a single tag AMO — the owner drains in
  /// sequence order, so tagging the first slot releases the run. Pushes as
  /// many of `tasks` as the ring has room for; returns that count (0 when
  /// full or the target is dead).
  std::uint32_t remote_push_many(pgas::PeContext& sender, int target,
                                 std::span<const Task> tasks);

  /// Owner: consume every published task in sequence order.
  /// Returns the number drained.
  std::uint32_t drain(pgas::PeContext& owner,
                      const std::function<void(const Task&)>& sink);

  /// Owner: tasks currently published but not yet drained (approximate —
  /// senders may be mid-publish).
  bool looks_empty(pgas::PeContext& owner) const;

  /// Install the pool's death registry; enables the sender-side ledger
  /// (only consulted when the fabric has crashes armed). Null detaches.
  void attach_recovery(DeathRegistry* registry) { recovery_ = registry; }

  /// Crash mode: move every ledgered task sent to (now known-dead)
  /// `target` and not observed drained into `out`; returns the count.
  /// These were already counted created by this sender — re-spawn them
  /// without recounting.
  std::uint32_t reroute_dead(pgas::PeContext& sender, int target,
                             std::vector<Task>& out);

 private:
  static constexpr std::uint64_t kReserveOff = 0;
  static constexpr std::uint64_t kDrainedOff = 8;
  static constexpr std::uint64_t kSlotsOff = 16;

  std::uint64_t slot_off(std::uint64_t seq) const noexcept {
    return kSlotsOff + (seq % capacity_) * (8 + slot_bytes_);
  }

  /// Host-side send ledger, one row per sender PE (crash mode only):
  /// per-target queues of {seq, task} pushed and not yet seen drained.
  struct alignas(64) SenderLedger {
    std::vector<std::deque<std::pair<std::uint64_t, Task>>> per_target;
  };

  pgas::SymPtr base_;
  std::uint32_t capacity_;
  std::uint32_t slot_bytes_;
  std::vector<SenderLedger> ledgers_;
  DeathRegistry* recovery_ = nullptr;
};

}  // namespace sws::core
