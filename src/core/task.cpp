#include "core/task.hpp"

namespace sws::core {

void Task::serialize(std::byte* slot, std::uint32_t slot_bytes) const {
  SWS_ASSERT_MSG(serialized_bytes() <= slot_bytes,
                 "task does not fit in queue slot");
  std::memcpy(slot, &fn_, sizeof(fn_));
  std::memcpy(slot + sizeof(fn_), &len_, sizeof(len_));
  if (len_ > 0) std::memcpy(slot + kTaskHeaderBytes, buf_.data(), len_);
}

Task Task::deserialize(const std::byte* slot, std::uint32_t slot_bytes) {
  Task t;
  std::memcpy(&t.fn_, slot, sizeof(t.fn_));
  std::memcpy(&t.len_, slot + sizeof(t.fn_), sizeof(t.len_));
  SWS_ASSERT_MSG(t.len_ <= kMaxTaskPayload &&
                     kTaskHeaderBytes + t.len_ <= slot_bytes,
                 "corrupt task slot");
  if (t.len_ > 0) std::memcpy(t.buf_.data(), slot + kTaskHeaderBytes, t.len_);
  return t;
}

}  // namespace sws::core
