// Circular task-slot buffer in symmetric memory.
//
// Both queue implementations (SDC and SWS) store tasks in a ring of
// fixed-size slots allocated on the symmetric heap, addressed by
// *absolute* (monotonically increasing) indices taken mod capacity.
// Absolute indices make interval reasoning trivial: local [split, head),
// shared [tail, split), reclaimed < itail — with wrap handled only at the
// byte-copy boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "core/task.hpp"
#include "pgas/runtime.hpp"

namespace sws::core {

class QueueBuffer {
 public:
  /// Allocates capacity*slot_bytes symmetric bytes. `capacity` must be a
  /// power of two is NOT required; wrap uses modulo.
  QueueBuffer(pgas::SymmetricHeap& heap, std::uint32_t capacity,
              std::uint32_t slot_bytes);

  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint32_t slot_bytes() const noexcept { return slot_bytes_; }
  pgas::SymPtr base() const noexcept { return base_; }

  /// Slot index of an absolute position.
  std::uint32_t wrap(std::uint64_t abs) const noexcept {
    return static_cast<std::uint32_t>(abs % capacity_);
  }

  /// Owner-side slot pointer (PE-local, no communication).
  std::byte* slot_ptr(pgas::PeContext& ctx, std::uint64_t abs) const;

  /// Owner-side store/load of a task at an absolute index.
  void write_local(pgas::PeContext& ctx, std::uint64_t abs,
                   const Task& t) const;
  Task read_local(pgas::PeContext& ctx, std::uint64_t abs) const;

  /// Thief-side: one-sided get of `n` slots starting at slot index
  /// `start_mod` on `victim`, deserialized into `out`. Issues one get, or
  /// two when the block wraps the ring (real RDMA pays the same split).
  void get_remote(pgas::PeContext& thief, int victim, std::uint32_t start_mod,
                  std::uint32_t n, std::vector<Task>& out) const;

 private:
  pgas::SymPtr base_;
  std::uint32_t capacity_;
  std::uint32_t slot_bytes_;
};

}  // namespace sws::core
