// Crash-stop failure detection shared by the scheduler, the queues, and
// the resilient termination detector.
//
// There is no oracle: survivors learn deaths from the fabric's poison
// verdict (net::kDeadFetchValue) on operations they were issuing anyway —
// liveness piggybacks on existing traffic — and from explicit lease-expiry
// probes in wait loops that would otherwise spin forever (an SWS owner
// waiting on a dead thief's completion, an SDC owner spinning on a lock a
// dead thief holds). A probe is one fetch of the target's heartbeat word,
// a symmetric u64 that live PEs keep at zero; reading all-ones is the
// death certificate.
//
// Knowledge is per-observer and monotone: each PE records the deaths *it*
// has witnessed, so views may transiently differ, but a dead PE never
// comes back and every path that could block on it carries a lease, so
// every survivor that needs the fact eventually probes and learns it.
//
// Everything here is gated on Fabric::crashes_planned(): a crash-free run
// never constructs probes, never reads leases, and stays byte-identical
// to pre-crash-subsystem builds.
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.hpp"
#include "pgas/runtime.hpp"

namespace sws::core {

/// Tunables for the lease-based detector.
struct RecoveryConfig {
  /// How long a wait loop may make no observable progress before the
  /// waiter suspects a death and probes. Sized well above the worst-case
  /// completion delay of a healthy peer (outermost-tier nbi delay plus the
  /// fault layer's full retransmit budget), so a lease never breaks on a
  /// slow-but-alive PE under the default fault plans.
  net::Nanos lease_ns = 2'000'000;
  /// Pause between re-probes while waiting out a suspected peer.
  net::Nanos probe_backoff_ns = 5'000;
};

/// Per-observer death knowledge plus the probe protocol (file comment).
/// One instance per TaskPool; reset_pe()/reset() follow the pool's run
/// lifecycle. Flags are atomic only for the real-time backend — under the
/// virtual sequencer all accesses are baton-serialized.
class DeathRegistry {
 public:
  /// Size for `npes` observers and allocate the heartbeat word from `rt`'s
  /// symmetric heap (once per pool lifetime).
  void init(pgas::Runtime& rt, const RecoveryConfig& cfg);

  /// Collective per-run reset: clear this observer's knowledge and zero
  /// its heartbeat word. Call before the setup barrier.
  void reset_pe(pgas::PeContext& ctx);

  const RecoveryConfig& config() const noexcept { return cfg_; }

  /// Has `observer` witnessed `pe`'s death?
  bool known_dead(int observer, int pe) const noexcept {
    return flags(observer, pe).load(std::memory_order_relaxed) != 0;
  }
  /// Number of deaths `observer` has witnessed.
  int known_count(int observer) const noexcept {
    return known_[static_cast<std::size_t>(observer)].n.load(
        std::memory_order_relaxed);
  }
  /// Lowest-ranked PE `observer` believes alive (its termination
  /// coordinator candidate).
  int lowest_live(int observer) const noexcept;

  /// Record a death `observer` witnessed through a poison verdict on its
  /// own traffic (no fabric op). Returns true when this is news.
  bool note_dead(int observer, int pe);

  /// Probe `pe`'s heartbeat word from `ctx`'s PE: one blocking fetch.
  /// Returns true (and records the death) iff `pe` is dead.
  bool probe(pgas::PeContext& ctx, int pe);

  /// Probe every peer not already known dead. Returns the number of new
  /// deaths discovered. Used on lease expiry when the waiter cannot name
  /// a specific suspect (an SWS owner awaiting an unknown thief).
  int probe_all(pgas::PeContext& ctx);

 private:
  std::atomic<std::uint8_t>& flags(int observer, int pe) const noexcept {
    return flags_[static_cast<std::size_t>(observer) *
                      static_cast<std::size_t>(npes_) +
                  static_cast<std::size_t>(pe)];
  }

  struct alignas(64) KnownCount {
    std::atomic<int> n{0};
  };

  RecoveryConfig cfg_{};
  int npes_ = 0;
  pgas::SymPtr heartbeat_{};  ///< one u64 per PE, always 0 while alive
  mutable std::vector<std::atomic<std::uint8_t>> flags_;  ///< npes x npes
  std::vector<KnownCount> known_;
};

}  // namespace sws::core
