// Abstract split task queue: the contract shared by the SDC baseline and
// the SWS structured-atomic implementation.
//
// One queue object serves the whole pool; every method takes the calling
// PE's context and internally routes to that PE's owner- or thief-side
// state. Owner-side calls must come from the owning PE; steal() may be
// called by any PE against any victim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/queue_buffer.hpp"
#include "core/task.hpp"
#include "net/types.hpp"
#include "pgas/runtime.hpp"

namespace sws::core {

class DeathRegistry;

enum class QueueKind { kSdc, kSws };

/// Ring geometry shared by every queue implementation. One definition —
/// PoolConfig and the queue constructors take it verbatim, so there is no
/// duplicated capacity/slot_bytes field left to silently override.
struct QueueConfig {
  std::uint32_t capacity = 8192;  ///< task slots per PE
  std::uint32_t slot_bytes = 64;  ///< bytes per task slot
};

enum class StealOutcome {
  kSuccess,   ///< tasks claimed and copied
  kEmpty,     ///< victim had no stealable work
  kRetry,     ///< victim busy/locked; worth trying again later
  kPeerDead,  ///< victim crashed: remove it from the victim set for good
};

struct StealResult {
  StealOutcome outcome = StealOutcome::kEmpty;
  std::uint32_t ntasks = 0;
  /// Queue's hint for when a retry could succeed (0 = no opinion). The
  /// queue knows *why* the steal failed — locked epoch rotation vs. lock
  /// convoy — so it, not the scheduler, sizes the fast-retry pause.
  net::Nanos retry_after_ns = 0;
  /// Steal-half blocks the claim covered (SWS bulk claims may take several
  /// per AMO; every other path reports 1 per success, 0 otherwise).
  std::uint32_t blocks = 0;
};

/// Per-PE queue-op counters (owner and thief sides), aggregated by the
/// pool into the paper's steal/search statistics.
struct QueueOpStats {
  std::uint64_t releases = 0;
  std::uint64_t acquires = 0;
  std::uint64_t acquire_poll_ns = 0;  ///< time acquire spent waiting on epochs
  std::uint64_t steals_ok = 0;
  std::uint64_t steals_empty = 0;
  std::uint64_t steals_retry = 0;
  std::uint64_t tasks_stolen = 0;     ///< tasks this PE stole from others
  std::uint64_t damping_probes = 0;   ///< SWS empty-mode read-only probes
  std::uint64_t renews = 0;           ///< SWS owner-forced allotment renewals
                                      ///< (asteals wraparound protection)
  std::uint64_t steals_dead = 0;      ///< steal attempts against crashed PEs
  std::uint64_t leases_broken = 0;    ///< dead peers' claims/locks fenced off
  std::uint64_t tasks_recovered = 0;  ///< tasks re-published after a death
  std::uint64_t bulk_claims = 0;      ///< SWS successes claiming > 1 block
  std::uint64_t blocks_claimed = 0;   ///< SWS blocks claimed across successes
  std::uint64_t pressure_releases = 0;  ///< SWS enlarged releases under load
  std::uint64_t full_claims = 0;  ///< SWS claims taking a whole multi-block
                                  ///< allotment (serializes through one owner)

  void merge(const QueueOpStats& o) noexcept {
    releases += o.releases;
    acquires += o.acquires;
    acquire_poll_ns += o.acquire_poll_ns;
    steals_ok += o.steals_ok;
    steals_empty += o.steals_empty;
    steals_retry += o.steals_retry;
    tasks_stolen += o.tasks_stolen;
    damping_probes += o.damping_probes;
    renews += o.renews;
    steals_dead += o.steals_dead;
    leases_broken += o.leases_broken;
    tasks_recovered += o.tasks_recovered;
    bulk_claims += o.bulk_claims;
    blocks_claimed += o.blocks_claimed;
    pressure_releases += o.pressure_releases;
    full_claims += o.full_claims;
  }
};

class TaskQueue {
 public:
  virtual ~TaskQueue() = default;

  virtual QueueKind kind() const noexcept = 0;

  /// Reset all queue state (owner cursors, metadata, stats) for a fresh
  /// run. Collective: call once per PE, then barrier before use.
  virtual void reset_pe(pgas::PeContext& ctx) = 0;

  // --- owner side --------------------------------------------------------
  /// Enqueue at the head of the local portion. Returns false when the ring
  /// is full even after reclaiming completed steals.
  virtual bool push_local(pgas::PeContext& ctx, const Task& t) = 0;

  /// LIFO pop from the head of the local portion.
  virtual bool pop_local(pgas::PeContext& ctx, Task& out) = 0;

  /// Number of tasks currently in the local portion.
  virtual std::uint32_t local_count(pgas::PeContext& ctx) const = 0;

  /// Owner's view: does the shared portion still hold unclaimed tasks?
  virtual bool shared_available(pgas::PeContext& ctx) const = 0;

  /// Move half the local tasks into the shared portion (valid only when
  /// the shared portion is exhausted). Returns true if tasks were exposed.
  virtual bool try_release(pgas::PeContext& ctx) = 0;

  /// Move half the unclaimed shared tasks back to the local portion.
  /// Returns true if tasks were reacquired.
  virtual bool try_acquire(pgas::PeContext& ctx) = 0;

  /// Process asynchronous steal completions; reclaims ring space.
  virtual void progress(pgas::PeContext& ctx) = 0;

  // --- thief side --------------------------------------------------------
  /// Attempt to steal from `victim`; stolen tasks are appended to `out`.
  virtual StealResult steal(pgas::PeContext& thief, int victim,
                            std::vector<Task>& out) = 0;

  // --- crash recovery ----------------------------------------------------
  /// Attach the pool's death registry (crash-mode runs only; see
  /// core/recovery.hpp). Queues record deaths they discover through
  /// poison verdicts and consult the registry before breaking a dead
  /// peer's leases. Null detaches. Install before the PEs run.
  virtual void attach_recovery(DeathRegistry* registry) { (void)registry; }

  /// Drain tasks the owner fenced off from a dead thief's unfinished
  /// claims into `out` (appended); returns the count. The scheduler
  /// re-publishes them for re-execution — at-least-once semantics.
  virtual std::uint32_t take_recovered(pgas::PeContext& ctx,
                                       std::vector<Task>& out) {
    (void)ctx;
    (void)out;
    return 0;
  }

  /// Owner-side recovery sweep, called by the scheduler (at lease cadence,
  /// from an otherwise-idle PE) once it has witnessed at least one death:
  /// break any lock or claim a dead peer still holds on *this* PE's queue
  /// and move the fenced tasks to the recovered set. The blocking wait
  /// loops inside the queues fence on their own; this hook covers stalls
  /// those loops never reach (a dead claim on a live SWS allotment, a dead
  /// SDC lock holder the owner never contends with).
  virtual void fence_dead(pgas::PeContext& ctx) { (void)ctx; }

  // --- introspection -----------------------------------------------------
  virtual const QueueOpStats& op_stats(int pe) const = 0;

  /// Invariant audit hook for the schedule-exploration harness
  /// (src/check/): validate the calling PE's owner-side view of the queue
  /// using local reads only, and return a description of the first
  /// violated invariant ("" = all good). Must be callable between any two
  /// owner-side operations; the default says nothing is wrong.
  virtual std::string audit(pgas::PeContext& ctx) const {
    (void)ctx;
    return {};
  }
};

}  // namespace sws::core
