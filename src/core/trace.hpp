// Lightweight per-PE event tracing for the scheduler.
//
// Each PE records fixed-size events into its own bounded ring (newest
// overwrite oldest); recording is a couple of stores, cheap enough to
// leave on in benchmarks. Dumps merge all PEs in (time, pe, sequence)
// order — the tool we use to inspect steal storms, release/acquire churn,
// and termination behaviour.
//
// Beyond instant events, the tracer records *spans*: begin/end pairs
// correlated by a span id. The scheduler opens one span per steal /
// release / acquire attempt and the fabric attributes every one-sided
// operation issued inside it as a child (kFabricOp complete events), so a
// single steal renders as one bar with its fetch-add / get / completion
// AMO — or SDC's lock / fetch / tail-update / unlock sequence — nested
// under it. Counter events (queue depth, in-flight nbi ops) add numeric
// tracks. dump_chrome_json() emits all of this in the Chrome trace-event
// format Perfetto loads directly (docs/observability.md).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace sws::core {

enum class TraceKind : std::uint8_t {
  kTaskExec = 0,
  kSpawn,
  kSpawnRemote,
  kRelease,
  kAcquire,
  kStealOk,
  kStealEmpty,
  kStealRetry,
  kInboxDrain,
  kTermCheck,
  kTerminated,
  // Spans (phase kBegin/kEnd) and their children (phase kComplete).
  kStealSpan,    ///< begin: a=victim; end: a=victim, b=outcome|(ntasks<<8)
  kReleaseSpan,  ///< end: a = 1 if tasks were exposed
  kAcquireSpan,  ///< end: a = 1 if tasks were reacquired
  kFabricOp,     ///< complete: a=OpKind, b=target|(bytes<<16), dur=charge
  // Counter tracks (phase kCounter, value in a).
  kQueueDepth,   ///< local (unshared) task count
  kPendingNbi,   ///< this PE's not-yet-delivered nbi ops
  // Crash-recovery events (crash-mode runs only; docs/resilience.md).
  kDeathDetected,  ///< instant: a = PE this PE just learned is dead
  kRecoverySpan,   ///< begin; end: a = tasks recovered for re-execution
  kRerouted,       ///< instant: a = dead spawn target, b = tasks rerouted
};

enum class TracePhase : std::uint8_t {
  kInstant = 0,
  kBegin,
  kEnd,
  kComplete,  ///< self-contained duration event (time .. time+dur)
  kCounter,
};

const char* trace_kind_name(TraceKind k) noexcept;

struct TraceEvent {
  net::Nanos time = 0;
  net::Nanos dur = 0;      ///< kComplete only
  std::uint64_t span = 0;  ///< correlates begin/end/children; 0 = none
  std::uint64_t a = 0;     ///< kind-specific (victim, task count, …)
  std::uint64_t b = 0;
  std::uint64_t seq = 0;   ///< per-PE record sequence (merge tie-break)
  std::int32_t pe = 0;
  TraceKind kind = TraceKind::kTaskExec;
  TracePhase phase = TracePhase::kInstant;
};

/// Run-level metadata embedded in the JSON dump so the analyzer knows
/// what it is looking at without side channels.
struct TraceMeta {
  std::string protocol;  ///< "sws" | "sdc" | ""
  int npes = 0;
  std::uint32_t slot_bytes = 0;
  std::string topo;  ///< TopologySpec::to_string ("flat", "2x4", …)
  /// Crash-stop FaultPlan armed: steal shapes include the recovery
  /// machinery's extra ops (e.g. the SDC claim-intent put), and the
  /// analyzer must widen its op-shape checks accordingly.
  bool crashes = false;
};

class Tracer {
 public:
  /// A disabled tracer records nothing and costs one branch per event.
  Tracer() = default;
  Tracer(int npes, std::size_t events_per_pe);

  bool enabled() const noexcept { return !rings_.empty(); }

  void record(int pe, net::Nanos time, TraceKind kind, std::uint64_t a = 0,
              std::uint64_t b = 0) noexcept;
  /// Open / close a span. Begin and end carry the same span id; the pair
  /// brackets every child op the fabric attributes to that id.
  void begin(int pe, net::Nanos time, TraceKind kind, std::uint64_t span,
             std::uint64_t a = 0) noexcept;
  void end(int pe, net::Nanos time, TraceKind kind, std::uint64_t span,
           std::uint64_t a = 0, std::uint64_t b = 0) noexcept;
  /// Self-contained duration event (a fabric op inside a span).
  void complete(int pe, net::Nanos time, net::Nanos dur, TraceKind kind,
                std::uint64_t span, std::uint64_t a = 0,
                std::uint64_t b = 0) noexcept;
  /// Sample of a numeric track (queue depth, pending nbi ops).
  void counter(int pe, net::Nanos time, TraceKind kind,
               std::uint64_t value) noexcept;

  void clear();

  /// All retained events of one PE, oldest first.
  std::vector<TraceEvent> events(int pe) const;
  /// All PEs' retained events merged in (time, pe, sequence) order — a
  /// total order, so dumps are byte-identical across runs that recorded
  /// the same events.
  std::vector<TraceEvent> merged() const;
  /// Human-readable dump of merged(), one event per line.
  void dump(std::ostream& os) const;

  /// Chrome trace-event JSON (load in chrome://tracing or Perfetto):
  /// instants, B/E span pairs, X complete events, and C counter tracks,
  /// one lane per PE. With `meta`, a leading sws_run_meta record carries
  /// protocol/npes/slot_bytes plus a truncation flag — sws-analyze needs
  /// it to validate protocol op signatures.
  void dump_chrome_json(std::ostream& os) const;
  void dump_chrome_json(std::ostream& os, const TraceMeta& meta) const;

  /// Writes additional rows into the open trace-event array, each row
  /// prefixed with ",\n" (obs::TimeSeries::write_chrome_counters follows
  /// this convention). The tracer fixes up the leading comma when the
  /// array is otherwise empty.
  using ExtraRows = std::function<void(std::ostream&)>;
  /// As above, appending caller-supplied rows — counter tracks sampled
  /// outside the ring buffers — before the array closes.
  void dump_chrome_json(std::ostream& os, const TraceMeta& meta,
                        const ExtraRows& extra) const;

  /// Count of retained events of one kind across all PEs (all phases).
  std::uint64_t count(TraceKind kind) const;
  /// Count restricted to one phase (e.g. kStealSpan begins only).
  std::uint64_t count(TraceKind kind, TracePhase phase) const;

  /// True when any PE's ring wrapped (oldest events were overwritten) —
  /// span begin/end pairs may then be truncated at the front.
  bool truncated() const noexcept;

 private:
  struct alignas(64) Ring {
    std::vector<TraceEvent> buf;
    std::size_t next = 0;
    std::uint64_t total = 0;  ///< lifetime events (>= retained)
  };
  void push(int pe, TraceEvent e) noexcept;
  std::vector<Ring> rings_;
};

}  // namespace sws::core
