// Lightweight per-PE event tracing for the scheduler.
//
// Each PE records fixed-size events into its own bounded ring (newest
// overwrite oldest); recording is a couple of stores, cheap enough to
// leave on in benchmarks. Dumps merge all PEs in time order — the tool we
// use to inspect steal storms, release/acquire churn, and termination
// behaviour.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace sws::core {

enum class TraceKind : std::uint8_t {
  kTaskExec = 0,
  kSpawn,
  kSpawnRemote,
  kRelease,
  kAcquire,
  kStealOk,
  kStealEmpty,
  kStealRetry,
  kInboxDrain,
  kTermCheck,
  kTerminated,
};

const char* trace_kind_name(TraceKind k) noexcept;

struct TraceEvent {
  net::Nanos time = 0;
  TraceKind kind = TraceKind::kTaskExec;
  std::int32_t pe = 0;
  std::uint64_t a = 0;  ///< kind-specific (victim, task count, …)
  std::uint64_t b = 0;
};

class Tracer {
 public:
  /// A disabled tracer records nothing and costs one branch per event.
  Tracer() = default;
  Tracer(int npes, std::size_t events_per_pe);

  bool enabled() const noexcept { return !rings_.empty(); }

  void record(int pe, net::Nanos time, TraceKind kind, std::uint64_t a = 0,
              std::uint64_t b = 0) noexcept;

  void clear();

  /// All retained events of one PE, oldest first.
  std::vector<TraceEvent> events(int pe) const;
  /// All PEs' retained events merged in (time, pe) order.
  std::vector<TraceEvent> merged() const;
  /// Human-readable dump of merged(), one event per line.
  void dump(std::ostream& os) const;

  /// Chrome trace-event JSON (load in chrome://tracing or Perfetto):
  /// one instant event per record, one lane per PE.
  void dump_chrome_json(std::ostream& os) const;

  /// Count of retained events of one kind across all PEs.
  std::uint64_t count(TraceKind kind) const;

 private:
  struct alignas(64) Ring {
    std::vector<TraceEvent> buf;
    std::size_t next = 0;
    std::uint64_t total = 0;  ///< lifetime events (>= retained)
  };
  std::vector<Ring> rings_;
};

}  // namespace sws::core
