#include "core/scheduler.hpp"

#include <algorithm>
#include <iomanip>
#include <string>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "net/parallel_time_model.hpp"

namespace sws::core {

// ----------------------------------------------------------------- worker

Worker::Worker(TaskPool& pool, pgas::PeContext& ctx)
    : pool_(pool), ctx_(ctx) {}

void Worker::spawn(const Task& t) {
  pool_.term_->count_created(ctx_, 1);
  ++stats_.tasks_spawned;
  if (pool_.tracer_.enabled())
    pool_.tracer_.record(pe(), ctx_.now(), TraceKind::kSpawn);
  if (pool_.queue_->push_local(ctx_, t)) return;
  // Ring full even after reclaim: run the task inline. Depth-first
  // execution keeps this bounded; it only triggers on under-sized queues.
  SWS_WARN("PE " << ctx_.pe() << ": task ring full, executing inline");
  execute(t);
}

void Worker::spawn_on(int target, const Task& t) {
  if (target == pe() || !pool_.inbox_ ||
      (pool_.recovery_ && pool_.recovery_->known_dead(pe(), target))) {
    // No inbox, self-target, or a target we know is dead: spawn here.
    // Tasks are location-independent, so local execution is always legal.
    spawn(t);
    return;
  }
  pool_.term_->count_created(ctx_, 1);
  ++stats_.tasks_spawned;
  if (pool_.tracer_.enabled())
    pool_.tracer_.record(pe(), ctx_.now(), TraceKind::kSpawnRemote,
                         static_cast<std::uint64_t>(target));
  // Flush the created-delta BEFORE the task escapes to another PE. Once
  // the push lands, the target can execute the task and flush its
  // completion while our +1 still sits in the local delta — the global
  // counter then transiently reads zero with this task's *parent* still
  // running, and a termination check in that window ends the run early.
  // (Local spawns are safe without this: the executing parent's own
  // completion is unflushed until after its spawns, anchoring the counter
  // above zero.)
  pool_.term_->task_boundary(ctx_);
  // Bounded retries against a full inbox, then run it here — the task
  // must execute somewhere, and local execution is always legal under the
  // Scioto model (tasks are location-independent).
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (pool_.inbox_->remote_push(ctx_, target, t)) return;
    if (pool_.recovery_ && pool_.recovery_->known_dead(pe(), target)) {
      // The push failed because the target died (poisoned inbox cursor,
      // noted by remote_push). Run the task here instead.
      execute(t);
      return;
    }
    ctx_.compute(pool_.cfg_.steal.backoff_min_ns);
  }
  SWS_WARN("PE " << pe() << ": inbox of PE " << target
                 << " stayed full; executing task locally");
  execute(t);
}

void Worker::spawn_on_many(int target, std::span<const Task> tasks) {
  if (tasks.empty()) return;
  if (target == pe() || !pool_.inbox_ ||
      (pool_.recovery_ && pool_.recovery_->known_dead(pe(), target))) {
    for (const Task& t : tasks) spawn(t);
    return;
  }
  pool_.term_->count_created(ctx_, tasks.size());
  stats_.tasks_spawned += tasks.size();
  if (pool_.tracer_.enabled())
    pool_.tracer_.record(pe(), ctx_.now(), TraceKind::kSpawnRemote,
                         static_cast<std::uint64_t>(target), tasks.size());
  // Same escape hazard as spawn_on, batched: flush the whole created-delta
  // before any of the tasks can land remotely.
  pool_.term_->task_boundary(ctx_);
  std::size_t done = 0;
  for (int attempt = 0; attempt < 8 && done < tasks.size(); ++attempt) {
    done += pool_.inbox_->remote_push_many(ctx_, target,
                                           tasks.subspan(done));
    if (done == tasks.size()) return;
    if (pool_.recovery_ && pool_.recovery_->known_dead(pe(), target)) break;
    ctx_.compute(pool_.cfg_.steal.backoff_min_ns);
  }
  // Whatever the target could not take runs here — always legal under the
  // Scioto model (tasks are location-independent).
  for (const Task& t : tasks.subspan(done)) execute(t);
}

void Worker::compute(net::Nanos dt) {
  stats_.compute_time_ns += dt;
  ctx_.compute(dt);
}

void Worker::execute(const Task& t) {
  if (pool_.tracer_.enabled())
    pool_.tracer_.record(pe(), ctx_.now(), TraceKind::kTaskExec, t.fn());
  pool_.registry_.fn(t.fn())(*this, t.payload());
  ++stats_.tasks_executed;
  pool_.term_->count_completed(ctx_, 1);
  // Flush policy: never sit on a positive (created-heavy) delta — the
  // counter detector's safety invariant.
  pool_.term_->task_boundary(ctx_);
}

// ------------------------------------------------------------------- pool

TaskPool::TaskPool(pgas::Runtime& rt, TaskRegistry& registry, PoolConfig cfg)
    : rt_(rt),
      registry_(registry),
      cfg_(cfg),
      phase_(static_cast<std::size_t>(rt.npes())),
      last_stats_(static_cast<std::size_t>(rt.npes())) {
  // The bulk-claim knob lives on StealTuning (the user-facing pacing
  // struct) but the queue implements it; mirror so either spelling works,
  // larger wins.
  cfg_.sws.bulk_claim_max =
      std::max(cfg_.sws.bulk_claim_max, cfg_.steal.bulk_claim_max);
  switch (cfg_.kind) {
    case QueueKind::kSws:
      queue_ = std::make_unique<SwsQueue>(rt, cfg_.queue, cfg_.sws);
      break;
    case QueueKind::kSdc:
      queue_ = std::make_unique<SdcQueue>(rt, cfg_.queue, cfg_.sdc);
      break;
  }
  term_ = make_detector(rt, cfg_.termination);
  if (cfg_.remote_spawn)
    inbox_ = std::make_unique<TaskInbox>(rt, cfg_.inbox_capacity,
                                         cfg_.queue.slot_bytes);
  if (rt.fabric().crashes_planned()) {
    // Crash mode: wire every layer to the shared death registry and swap
    // the termination protocol for the crash-tolerant idle-wave consensus
    // (both base detectors hang once a PE dies). None of this exists in a
    // crash-free pool — those runs stay byte-identical to older builds.
    recovery_ = std::make_unique<DeathRegistry>();
    recovery_->init(rt, RecoveryConfig{});
    queue_->attach_recovery(recovery_.get());
    if (inbox_) inbox_->attach_recovery(recovery_.get());
    term_ = std::make_unique<ResilientTermination>(rt, std::move(term_),
                                                   recovery_.get());
  }
  if (cfg_.trace.enable) {
    tracer_ = Tracer(rt.npes(), cfg_.trace.events);
    // Every fabric op issued under a nonzero span becomes a child event
    // of that span. The callback runs on the initiating PE's thread and
    // writes only that PE's trace ring, so it needs no synchronization
    // and cannot perturb the schedule (it never touches a clock).
    rt_.fabric().set_op_observer([this](const net::OpRecord& r) {
      tracer_.complete(
          r.initiator, r.begin, r.dur, TraceKind::kFabricOp, r.span,
          static_cast<std::uint64_t>(r.kind),
          static_cast<std::uint64_t>(static_cast<unsigned>(r.target)) |
              (static_cast<std::uint64_t>(r.bytes) << 16));
    });
  }
  if (cfg_.trace.sample_interval_ns > 0) {
    timeseries_ =
        std::make_unique<obs::TimeSeries>(cfg_.trace.sample_interval_ns);
    setup_timeseries();
    // The hook fires under the sequencer's serialization every time the
    // global floor crosses a boundary; it only *reads* pool/fabric state,
    // so sampled runs stay byte-identical to unsampled ones.
    rt_.time().set_sample_hook(
        [this](net::Nanos boundary) { timeseries_->sample(boundary); },
        cfg_.trace.sample_interval_ns);
  }
}

TaskPool::~TaskPool() {
  if (cfg_.trace.enable) rt_.fabric().set_op_observer(nullptr);
  if (timeseries_) rt_.time().set_sample_hook(nullptr, 0);
}

void TaskPool::setup_timeseries() {
  using Mode = obs::TimeSeries::Mode;
  obs::TimeSeries& ts = *timeseries_;
  const int npes = rt_.npes();
  ts.add_meta("protocol",
              cfg_.kind == QueueKind::kSws ? "\"sws\"" : "\"sdc\"");
  ts.add_meta("npes", std::to_string(npes));

  // Phase accounting: one series per category, each sampling the accrued
  // time plus the open phase's elapsed — so at *every* sample the
  // categories sum exactly to acct.elapsed_ns (sws-analyze --report and
  // tests/test_obs.cpp check the invariant to the nanosecond).
  for (std::size_t c = 0; c < kNumPoolPhases; ++c) {
    ts.add_series(
        std::string("acct.") + pool_phase_name(static_cast<PoolPhase>(c)),
        Mode::kDelta, [this, c, npes] {
          std::uint64_t sum = 0;
          for (int pe = 0; pe < npes; ++pe) {
            const PhaseSlot& ps = phase_[static_cast<std::size_t>(pe)];
            sum += ps.accrued[c];
            if (ps.active && static_cast<std::size_t>(ps.cur) == c)
              sum += rt_.time().now(pe) - ps.mark;
          }
          return sum;
        });
  }
  ts.add_series("acct.elapsed_ns", Mode::kDelta, [this, npes] {
    std::uint64_t sum = 0;
    for (int pe = 0; pe < npes; ++pe) {
      const PhaseSlot& ps = phase_[static_cast<std::size_t>(pe)];
      sum += (ps.active ? rt_.time().now(pe) : ps.end) - ps.base;
    }
    return sum;
  });

  const auto add_pool = [&](const char* name,
                            std::uint64_t WorkerStats::*field) {
    ts.add_series(name, Mode::kDelta, [this, npes, field] {
      std::uint64_t sum = 0;
      for (int pe = 0; pe < npes; ++pe) {
        const PhaseSlot& ps = phase_[static_cast<std::size_t>(pe)];
        const WorkerStats& s =
            ps.live ? *ps.live : last_stats_[static_cast<std::size_t>(pe)];
        sum += s.*field;
      }
      return sum;
    });
  };
  add_pool("pool.tasks_executed", &WorkerStats::tasks_executed);
  add_pool("pool.steals_ok", &WorkerStats::steals_ok);
  add_pool("pool.steal_attempts", &WorkerStats::steal_attempts);

  const auto add_fabric = [&](const char* name,
                              std::uint64_t net::FabricStats::*field) {
    ts.add_series(name, Mode::kDelta, [this, npes, field] {
      std::uint64_t sum = 0;
      for (int pe = 0; pe < npes; ++pe) sum += rt_.fabric().stats(pe).*field;
      return sum;
    });
  };
  add_fabric("fabric.remote_ops", &net::FabricStats::remote_ops);
  add_fabric("fabric.blocking_ns", &net::FabricStats::blocking_ns);
  add_fabric("fabric.occupancy_wait_ns",
             &net::FabricStats::occupancy_wait_ns);

  // Sharded-engine gauges (PR 9) become windowed series when the runtime
  // uses the parallel sequencer; engine_stats() is lock-free and the hook
  // runs inside drive(), the engine's sole executor.
  if (const auto* eng =
          dynamic_cast<const net::ParallelTimeModel*>(&rt_.time())) {
    using EngineStats = net::ParallelTimeModel::EngineStats;
    const auto add_engine = [&](const char* name,
                                std::uint64_t EngineStats::*field) {
      ts.add_series(name, Mode::kDelta,
                    [eng, field] { return eng->engine_stats().*field; });
    };
    add_engine("engine.windows", &EngineStats::windows);
    add_engine("engine.window_pes", &EngineStats::window_pes);
    add_engine("engine.solo_private", &EngineStats::solo_private);
    add_engine("engine.solo_global", &EngineStats::solo_global);
    add_engine("engine.deferred", &EngineStats::deferred);
    add_engine("engine.parks", &EngineStats::parks);
  }
}

void TaskPool::finalize_timeseries() const {
  if (!timeseries_) return;
  // Capture the final partial window at the clocks' max. sample() ignores
  // non-advancing times, so repeated dumps stay idempotent.
  net::Nanos end = 0;
  for (int pe = 0; pe < rt_.npes(); ++pe)
    end = std::max(end, rt_.time().now(pe));
  timeseries_->sample(end);
}

std::uint32_t TaskPool::drain_inbox(Worker& w) {
  if (!inbox_) return 0;
  const std::uint32_t n = inbox_->drain(w.ctx(), [&](const Task& t) {
    // Already counted as created by the sender.
    if (!queue_->push_local(w.ctx(), t)) w.execute(t);
  });
  if (n > 0 && tracer_.enabled())
    tracer_.record(w.pe(), w.ctx().now(), TraceKind::kInboxDrain, n);
  return n;
}

std::uint32_t TaskPool::drain_recovered(Worker& w) {
  std::vector<Task> rec;
  const std::uint32_t n = queue_->take_recovered(w.ctx(), rec);
  if (n == 0) return 0;
  // These were fenced from a dead thief's open claim: counted created when
  // first spawned, never completed. Re-publish without recounting;
  // execution is at-least-once with bounded multiplicity
  // (docs/resilience.md).
  w.stats_.tasks_reexecuted += n;
  for (const Task& t : rec) {
    if (!queue_->push_local(w.ctx(), t)) w.execute(t);
  }
  return n;
}

WorkerStats TaskPool::run_pe(pgas::PeContext& ctx,
                             const std::function<void(Worker&)>& seed) {
  Worker w(*this, ctx);

  // Phase accounting starts before anything can advance this PE's clock:
  // every later nanosecond lands in exactly one PoolPhase bucket. The
  // sampler cannot observe this slot mid-reset — no boundary can be
  // crossed until every PE (including this one) has advanced past it.
  PhaseSlot& ps = phase_[static_cast<std::size_t>(ctx.pe())];
  ps = PhaseSlot{};
  ps.base = ps.mark = ctx.now();
  ps.active = true;
  ps.live = &w.stats_;
  const auto set_phase = [&](PoolPhase p) {
    const net::Nanos pnow = ctx.now();
    ps.accrued[static_cast<std::size_t>(ps.cur)] += pnow - ps.mark;
    ps.mark = pnow;
    ps.cur = p;
  };

  queue_->reset_pe(ctx);
  term_->reset_pe(ctx);
  if (inbox_) inbox_->reset_pe(ctx);
  if (recovery_) recovery_->reset_pe(ctx);
  if (ctx.pe() == 0) {
    tracer_.clear();
    if (timeseries_) timeseries_->clear();
  }
  ctx.barrier();

  seed(w);
  term_->task_boundary(ctx);  // flush seed counts before anyone checks
  ctx.barrier();

  const net::Nanos t_start = ctx.now();
  const net::NetworkModel& netm = rt_.fabric().model();
  std::unique_ptr<VictimSelector> victims;
  if (ctx.npes() > 1)
    victims = make_victim_selector(cfg_.victim, netm.topology(), ctx.pe(),
                                   rt_.config().seed);
  const StealTuning& st = cfg_.steal;
  // Dedicated stream for backoff jitter: draws must not perturb the
  // workload's ctx.rng() sequence, or enabling jitter would change
  // task-level results under virtual time.
  Xoshiro256 backoff_rng(rt_.config().seed ^ 0xB0FF'0FF5'0000'0000ULL,
                         static_cast<std::uint64_t>(ctx.pe()));
  std::vector<Task> loot;
  Task t;

  // Crash-mode state. A plan with no crashes never constructs any of the
  // machinery, so crash-free runs take none of these branches.
  const bool crash_mode = recovery_ != nullptr;
  net::Nanos last_fence = 0;
  std::vector<char> death_traced;   ///< kDeathDetected emitted for PE i
  std::vector<char> inbox_rerouted; ///< ledger drained for dead PE i
  if (crash_mode) {
    death_traced.assign(static_cast<std::size_t>(ctx.npes()), 0);
    inbox_rerouted.assign(static_cast<std::size_t>(ctx.npes()), 0);
  }
  const auto trace_new_deaths = [&]() {
    if (!crash_mode || !tracer_.enabled()) return;
    for (int p = 0; p < ctx.npes(); ++p) {
      if (death_traced[static_cast<std::size_t>(p)] ||
          !recovery_->known_dead(ctx.pe(), p))
        continue;
      death_traced[static_cast<std::size_t>(p)] = 1;
      tracer_.record(ctx.pe(), ctx.now(), TraceKind::kDeathDetected,
                     static_cast<std::uint64_t>(p));
    }
  };

  // Span ids are unique per (PE, run): high bits name the PE, low bits
  // count this PE's spans. Restarting per run is fine — the tracer is
  // cleared above.
  std::uint64_t span_seq = 0;
  const auto next_span = [&]() noexcept {
    return (static_cast<std::uint64_t>(ctx.pe() + 1) << 40) | ++span_seq;
  };

  bool done = false;
  while (!done) {
    set_phase(PoolPhase::kWorking);
    queue_->progress(ctx);
    drain_inbox(w);
    // Owner-side fencing inside queue wait loops can surface recovered
    // tasks at any progress point; fold them back in before working.
    if (crash_mode) drain_recovered(w);

    // Release: shared portion exhausted but local work remains (paper §3).
    if (!queue_->shared_available(ctx) &&
        queue_->local_count(ctx) >= cfg_.release_threshold) {
      if (tracer_.enabled()) {
        const std::uint64_t span = next_span();
        tracer_.begin(ctx.pe(), ctx.now(), TraceKind::kReleaseSpan, span);
        ctx.fabric().set_span(ctx.pe(), span);
        const bool released = queue_->try_release(ctx);
        ctx.fabric().set_span(ctx.pe(), 0);
        tracer_.end(ctx.pe(), ctx.now(), TraceKind::kReleaseSpan, span,
                    released ? 1 : 0);
        if (released)
          tracer_.record(ctx.pe(), ctx.now(), TraceKind::kRelease);
      } else {
        queue_->try_release(ctx);
      }
    }

    if (queue_->pop_local(ctx, t)) {
      w.execute(t);
      if (tracer_.enabled()) {
        tracer_.counter(ctx.pe(), ctx.now(), TraceKind::kQueueDepth,
                        queue_->local_count(ctx));
        tracer_.counter(ctx.pe(), ctx.now(), TraceKind::kPendingNbi,
                        static_cast<std::uint64_t>(
                            ctx.fabric().pending(ctx.pe())));
      }
      continue;
    }
    bool acquired;
    if (tracer_.enabled()) {
      const std::uint64_t span = next_span();
      tracer_.begin(ctx.pe(), ctx.now(), TraceKind::kAcquireSpan, span);
      ctx.fabric().set_span(ctx.pe(), span);
      acquired = queue_->try_acquire(ctx);
      ctx.fabric().set_span(ctx.pe(), 0);
      tracer_.end(ctx.pe(), ctx.now(), TraceKind::kAcquireSpan, span,
                  acquired ? 1 : 0);
      if (acquired)
        tracer_.record(ctx.pe(), ctx.now(), TraceKind::kAcquire);
    } else {
      acquired = queue_->try_acquire(ctx);
    }
    if (acquired) continue;

    // Out of local and own-shared work: search the system. Successful
    // attempts count as steal time, failures as search time (§5.3).
    // kRetry failures get `retry_budget` fast retries paced by the
    // queue's hint; past that (and for empty victims) the pause grows
    // exponentially with jitter, and resets on the next search.
    std::uint32_t fails = 0;
    std::uint32_t fast_retries = 0;
    net::Nanos backoff = st.backoff_min_ns;
    set_phase(PoolPhase::kProbing);
    while (true) {
      // Remotely-spawned tasks may land while we search.
      if (drain_inbox(w) > 0) break;

      if (crash_mode && recovery_->known_count(ctx.pe()) > 0) {
        trace_new_deaths();
        // Lease-paced recovery sweep: break orphaned locks / fence dead
        // claims in the queue, and re-route ledgered inbox pushes whose
        // target died. Paced so a pack of idle searchers doesn't hammer
        // the same dead peer's state every attempt.
        if (ctx.now() - last_fence >= recovery_->config().lease_ns) {
          last_fence = ctx.now();
          set_phase(PoolPhase::kRecovering);
          std::uint64_t span = 0;
          if (tracer_.enabled()) {
            span = next_span();
            tracer_.begin(ctx.pe(), ctx.now(), TraceKind::kRecoverySpan,
                          span);
            ctx.fabric().set_span(ctx.pe(), span);
          }
          queue_->fence_dead(ctx);
          std::uint32_t recovered = drain_recovered(w);
          if (inbox_) {
            for (int p = 0; p < ctx.npes(); ++p) {
              if (inbox_rerouted[static_cast<std::size_t>(p)] ||
                  !recovery_->known_dead(ctx.pe(), p))
                continue;
              inbox_rerouted[static_cast<std::size_t>(p)] = 1;
              loot.clear();
              const std::uint32_t n = inbox_->reroute_dead(ctx, p, loot);
              if (n == 0) continue;
              w.stats_.tasks_rerouted += n;
              recovered += n;
              if (tracer_.enabled())
                tracer_.record(ctx.pe(), ctx.now(), TraceKind::kRerouted,
                               static_cast<std::uint64_t>(p), n);
              // Already counted created at the original spawn_on.
              for (const Task& rr : loot) {
                if (!queue_->push_local(ctx, rr)) w.execute(rr);
              }
            }
          }
          if (tracer_.enabled()) {
            ctx.fabric().set_span(ctx.pe(), 0);
            tracer_.end(ctx.pe(), ctx.now(), TraceKind::kRecoverySpan, span,
                        recovered);
          }
          set_phase(PoolPhase::kProbing);
          if (recovered > 0 || queue_->local_count(ctx) > 0)
            break;  // recovered work to process
        }
      }

      bool fast = false;
      net::Nanos hint = 0;
      int victim = -1;
      if (ctx.npes() > 1) {
        victim = victims->next();
        if (crash_mode && recovery_->known_count(ctx.pe()) > 0) {
          // Dead victims stay inside the selector — its draw sequence must
          // not depend on when deaths were learned — so resample around
          // them, bounded by npes draws.
          int tries = 0;
          while (recovery_->known_dead(ctx.pe(), victim) &&
                 ++tries <= ctx.npes())
            victim = victims->next();
          if (recovery_->known_dead(ctx.pe(), victim)) victim = -1;
        }
      }
      if (victim >= 0) {
        const net::Nanos t0 = ctx.now();
        loot.clear();
        const net::Tier vtier = netm.tier(ctx.pe(), victim);
        std::uint64_t span = 0;
        if (tracer_.enabled()) {
          span = next_span();
          tracer_.begin(ctx.pe(), ctx.now(), TraceKind::kStealSpan, span,
                        static_cast<std::uint64_t>(victim));
          ctx.fabric().set_span(ctx.pe(), span);
        }
        const StealResult res = queue_->steal(ctx, victim, loot);
        if (tracer_.enabled()) {
          ctx.fabric().set_span(ctx.pe(), 0);
          tracer_.end(ctx.pe(), ctx.now(), TraceKind::kStealSpan, span,
                      static_cast<std::uint64_t>(victim),
                      static_cast<std::uint64_t>(res.outcome) |
                          (static_cast<std::uint64_t>(res.ntasks) << 8));
        }
        const net::Nanos dt = ctx.now() - t0;
        ++w.stats_.steal_attempts;
        if (vtier >= 1)
          ++w.stats_.steal_attempts_by_tier[static_cast<std::size_t>(vtier -
                                                                     1)];
        victims->report(victim, res.outcome == StealOutcome::kSuccess);
        if (res.outcome == StealOutcome::kSuccess) {
          w.stats_.steal_time_ns += dt;
          ++w.stats_.steals_ok;
          if (vtier >= 1)
            ++w.stats_.steals_ok_by_tier[static_cast<std::size_t>(vtier - 1)];
          w.stats_.tasks_stolen += res.ntasks;
          w.stats_.bytes_stolen += static_cast<std::uint64_t>(res.ntasks) *
                                   cfg_.queue.slot_bytes;
          if (res.blocks > 0) w.stats_.claim_blocks.add(res.blocks);
          w.stats_.steal_latency.add(dt);
          if (tracer_.enabled())
            tracer_.record(ctx.pe(), ctx.now(), TraceKind::kStealOk,
                           static_cast<std::uint64_t>(victim), res.ntasks);
          // The attempt accrued as kProbing (its outcome was unknown while
          // it ran); it succeeded, so re-attribute its span to kStealing.
          // Closing first guarantees the probing bucket holds >= dt. A
          // window boundary inside the span can make that window's probing
          // delta locally negative — the exports carry signed deltas.
          set_phase(PoolPhase::kProbing);
          ps.accrued[static_cast<std::size_t>(PoolPhase::kProbing)] -= dt;
          ps.accrued[static_cast<std::size_t>(PoolPhase::kStealing)] += dt;
          set_phase(PoolPhase::kWorking);
          for (const Task& stolen : loot) {
            if (!queue_->push_local(ctx, stolen)) w.execute(stolen);
          }
          break;  // back to processing
        }
        w.stats_.search_time_ns += dt;
        hint = res.retry_after_ns;
        fast = res.outcome == StealOutcome::kRetry &&
               fast_retries < st.retry_budget;
        if (tracer_.enabled())
          tracer_.record(ctx.pe(), ctx.now(),
                         res.outcome == StealOutcome::kRetry
                             ? TraceKind::kStealRetry
                             : TraceKind::kStealEmpty,
                         static_cast<std::uint64_t>(victim));
        ++fails;
      } else {
        ++fails;
      }

      if (fails % st.term_check_interval == 0 || ctx.npes() == 1) {
        const net::Nanos t0 = ctx.now();
        set_phase(PoolPhase::kIdleTerm);
        const bool finished = term_->check(ctx);
        w.stats_.term_check_ns += ctx.now() - t0;
        if (tracer_.enabled())
          tracer_.record(ctx.pe(), ctx.now(), TraceKind::kTermCheck,
                         finished ? 1 : 0);
        if (finished) {
          done = true;  // stay in kIdleTerm through teardown
          break;
        }
        set_phase(PoolPhase::kProbing);
      }

      net::Nanos pause;
      if (fast) {
        ++fast_retries;
        pause = hint > 0 ? hint : st.backoff_min_ns;
      } else {
        fast_retries = 0;
        pause = backoff;
        if (st.jitter > 0.0 && pause > 0) {
          // Jitter, then clamp: the scaled pause must stay inside
          // [backoff_min_ns, backoff_max_ns] — jitter decorrelates convoys,
          // it must not grow the pause past the configured cap (or shrink
          // it below the floor). Clamp in double BEFORE the cast: for
          // extreme jitter/mult configurations the scaled value can exceed
          // the integer range, and a double→Nanos cast of such a value is
          // undefined behavior.
          const double f =
              1.0 + st.jitter * (2.0 * backoff_rng.uniform() - 1.0);
          double scaled = static_cast<double>(pause) * f;
          scaled = std::min(scaled, static_cast<double>(st.backoff_max_ns));
          scaled = std::max(scaled, static_cast<double>(st.backoff_min_ns));
          pause = static_cast<net::Nanos>(scaled);
        }
        if (hint > pause) pause = hint;
        // Grow in double and compare before casting — casting first
        // overflows (UB) once backoff_mult compounds the value past the
        // integer range, and only then clamping is too late.
        const double grown =
            static_cast<double>(backoff) * st.backoff_mult;
        backoff = grown >= static_cast<double>(st.backoff_max_ns)
                      ? st.backoff_max_ns
                      : static_cast<net::Nanos>(grown);
      }
      const net::Nanos t0 = ctx.now();
      set_phase(PoolPhase::kParked);
      ctx.compute(pause);
      w.stats_.search_time_ns += ctx.now() - t0;
      set_phase(PoolPhase::kProbing);
    }
  }
  if (tracer_.enabled())
    tracer_.record(ctx.pe(), ctx.now(), TraceKind::kTerminated);

  w.stats_.run_time_ns = ctx.now() - t_start;
  if (crash_mode) {
    // Survivor teardown. A crash scheduled for after termination must not
    // fire during it, and the dead cannot join a barrier — so disarm our
    // own crash, gossip the done flag (a coordinator that died
    // mid-broadcast cannot strand anyone), settle our nbi ops, and drain
    // every effect still inbound to us instead of rendezvousing.
    ctx.fabric().disarm_crash(ctx.pe());
    trace_new_deaths();
    w.stats_.deaths_witnessed =
        static_cast<std::uint64_t>(recovery_->known_count(ctx.pe()));
    term_->on_exit(ctx);
    set_phase(PoolPhase::kBlockedNbi);
    ctx.quiet();
    while (ctx.fabric().pending_to_synced(ctx.pe()) > 0)
      ctx.compute(recovery_->config().probe_backoff_ns);
  } else {
    set_phase(PoolPhase::kBlockedNbi);
    ctx.quiet();  // complete our in-flight completion notifications
    set_phase(PoolPhase::kIdleTerm);
    ctx.barrier();
  }
  // After everyone's quiet (+ the barrier, crash-free), no nbi op of ours
  // may remain — a leak here would carry a stale completion into the next
  // run.
  SWS_ASSERT_MSG(ctx.fabric().pending(ctx.pe()) == 0,
                 "nbi ops still pending after pool teardown quiet");

  // Freeze the accounting: close the open phase, publish the taxonomy into
  // the stats, then retire the live pointer so late samples (other PEs
  // still tearing down) read the just-copied last_stats_ instead.
  set_phase(ps.cur);
  ps.end = ps.mark;
  ps.active = false;
  w.stats_.phase_ns = ps.accrued;
  w.stats_.accounted_ns = ps.end - ps.base;
  last_stats_[static_cast<std::size_t>(ctx.pe())] = w.stats_;
  ps.live = nullptr;
  return w.stats_;
}

void TaskPool::dump_trace_json(std::ostream& os) const {
  TraceMeta meta;
  meta.protocol = cfg_.kind == QueueKind::kSws ? "sws" : "sdc";
  meta.npes = rt_.npes();
  meta.slot_bytes = cfg_.queue.slot_bytes;
  meta.topo = rt_.fabric().model().topology().spec().to_string();
  meta.crashes = rt_.fabric().crashes_planned();
  finalize_timeseries();
  const auto* eng =
      dynamic_cast<const net::ParallelTimeModel*>(&rt_.time());
  tracer_.dump_chrome_json(os, meta, [&](std::ostream& xs) {
    // Sampled series become Perfetto counter tracks alongside the events.
    if (timeseries_) timeseries_->write_chrome_counters(xs);
    if (eng == nullptr) return;
    // Parallel-engine gauges as single-point counter tracks at the run's
    // end, so traced runs carry them even without windowed sampling.
    net::Nanos tend = 0;
    for (int pe = 0; pe < rt_.npes(); ++pe)
      tend = std::max(tend, rt_.time().now(pe));
    const auto es = eng->engine_stats();
    const auto row = [&](const char* name, std::uint64_t v) {
      xs << ",\n{\"name\":\"" << name << "\",\"ph\":\"C\",\"ts\":"
         << tend / 1000 << "." << std::setw(3) << std::setfill('0')
         << tend % 1000 << std::setfill(' ')
         << ",\"pid\":0,\"tid\":0,\"args\":{\"value\":" << v << "}}";
    };
    row("engine.windows", es.windows);
    row("engine.window_pes", es.window_pes);
    row("engine.solo_private", es.solo_private);
    row("engine.solo_global", es.solo_global);
    row("engine.cap_lookahead", es.cap_lookahead);
    row("engine.cap_global", es.cap_global);
    row("engine.cap_deadline", es.cap_deadline);
    row("engine.cap_target", es.cap_target);
    row("engine.deferred", es.deferred);
    row("engine.license_skips", es.license_skips);
    row("engine.parks", es.parks);
  });
}

void TaskPool::dump_timeseries_json(std::ostream& os) const {
  if (!timeseries_) {
    os << "{\"schema\":\"sws-timeseries\",\"interval_ns\":0,\"samples\":0,"
          "\"truncated\":0,\"t\":[],\"series\":[]}\n";
    return;
  }
  finalize_timeseries();
  timeseries_->write_json(os);
}

void TaskPool::publish_metrics(obs::MetricsRegistry& reg) const {
  const int npes = static_cast<int>(last_stats_.size());
  auto set_worker = [&](const char* name, const char* help, auto&& field) {
    const auto id = reg.counter(name, help);
    for (int pe = 0; pe < npes; ++pe)
      reg.set(id, pe, field(last_stats_[static_cast<std::size_t>(pe)]));
  };
  set_worker("pool.tasks_executed", "tasks run to completion",
             [](const WorkerStats& s) { return s.tasks_executed; });
  set_worker("pool.tasks_spawned", "children + seeds added",
             [](const WorkerStats& s) { return s.tasks_spawned; });
  set_worker("pool.tasks_stolen", "tasks pulled from victims",
             [](const WorkerStats& s) { return s.tasks_stolen; });
  set_worker("pool.bytes_stolen", "payload bytes moved by successful steals",
             [](const WorkerStats& s) { return s.bytes_stolen; });
  set_worker("pool.steals_ok", "successful steal operations",
             [](const WorkerStats& s) { return s.steals_ok; });
  set_worker("pool.steal_attempts", "successful + failed steals",
             [](const WorkerStats& s) { return s.steal_attempts; });
  for (net::Tier t = 1; t <= rt_.fabric().model().ntiers(); ++t) {
    const std::string suffix = ".t" + std::to_string(t);
    const auto attempts =
        reg.counter("pool.steal_attempts_by_tier" + suffix,
                    "steal attempts against victims at this tier distance");
    const auto ok = reg.counter("pool.steals_ok_by_tier" + suffix,
                                "successful steals at this tier distance");
    for (int pe = 0; pe < npes; ++pe) {
      const WorkerStats& s = last_stats_[static_cast<std::size_t>(pe)];
      reg.set(attempts, pe,
              s.steal_attempts_by_tier[static_cast<std::size_t>(t - 1)]);
      reg.set(ok, pe, s.steals_ok_by_tier[static_cast<std::size_t>(t - 1)]);
    }
  }
  set_worker("pool.steal_time_ns", "time in successful steals",
             [](const WorkerStats& s) { return s.steal_time_ns; });
  set_worker("pool.search_time_ns", "failed attempts + backoff",
             [](const WorkerStats& s) { return s.search_time_ns; });
  set_worker("pool.term_check_ns", "time in termination detection",
             [](const WorkerStats& s) { return s.term_check_ns; });
  set_worker("pool.compute_time_ns", "charged task compute",
             [](const WorkerStats& s) { return s.compute_time_ns; });
  // Exhaustive phase taxonomy: per PE the categories sum exactly to
  // pool.phase.accounted_ns (docs/observability.md).
  for (std::size_t c = 0; c < kNumPoolPhases; ++c) {
    const auto id = reg.counter(
        std::string("pool.phase.") +
            pool_phase_name(static_cast<PoolPhase>(c)) + "_ns",
        "time attributed to this phase (taxonomy sums to accounted_ns)");
    for (int pe = 0; pe < npes; ++pe)
      reg.set(id, pe, last_stats_[static_cast<std::size_t>(pe)].phase_ns[c]);
  }
  set_worker("pool.phase.accounted_ns",
             "elapsed span the phase taxonomy covers",
             [](const WorkerStats& s) { return s.accounted_ns; });
  const auto run_time =
      reg.gauge("pool.run_time_ns", "per-PE whole-run time (max = Fig 8 y)");
  for (int pe = 0; pe < npes; ++pe)
    reg.set(run_time, pe, last_stats_[static_cast<std::size_t>(pe)].run_time_ns);
  const auto lat = reg.histogram("pool.steal_latency_ns",
                                 "per-successful-steal latency");
  for (int pe = 0; pe < npes; ++pe)
    reg.set_hist(lat, pe,
                 last_stats_[static_cast<std::size_t>(pe)].steal_latency);
  const auto cblocks = reg.histogram("pool.claim_blocks",
                                     "blocks per successful steal claim");
  for (int pe = 0; pe < npes; ++pe)
    reg.set_hist(cblocks, pe,
                 last_stats_[static_cast<std::size_t>(pe)].claim_blocks);

  auto set_queue = [&](const char* name, const char* help, auto&& field) {
    const auto id = reg.counter(name, help);
    for (int pe = 0; pe < npes; ++pe)
      reg.set(id, pe, field(queue_->op_stats(pe)));
  };
  set_queue("queue.releases", "local→shared transfers",
            [](const QueueOpStats& s) { return s.releases; });
  set_queue("queue.acquires", "shared→local transfers",
            [](const QueueOpStats& s) { return s.acquires; });
  set_queue("queue.acquire_poll_ns", "acquire time waiting on epochs",
            [](const QueueOpStats& s) { return s.acquire_poll_ns; });
  set_queue("queue.steals_empty", "steals finding no work",
            [](const QueueOpStats& s) { return s.steals_empty; });
  set_queue("queue.steals_retry", "steals bouncing off busy victims",
            [](const QueueOpStats& s) { return s.steals_retry; });
  set_queue("queue.damping_probes", "SWS empty-mode read-only probes",
            [](const QueueOpStats& s) { return s.damping_probes; });
  set_queue("queue.renews", "SWS owner-forced allotment renewals",
            [](const QueueOpStats& s) { return s.renews; });
  set_queue("queue.bulk_claims", "SWS successes claiming more than one block",
            [](const QueueOpStats& s) { return s.bulk_claims; });
  set_queue("queue.blocks_claimed", "SWS blocks claimed across successes",
            [](const QueueOpStats& s) { return s.blocks_claimed; });
  set_queue("queue.pressure_releases", "SWS enlarged releases under pressure",
            [](const QueueOpStats& s) { return s.pressure_releases; });

  // Crash-recovery series exist only for crash-mode pools, keeping
  // crash-free metric dumps identical to older builds.
  if (recovery_) {
    set_worker("pool.reexec_tasks", "tasks fenced from dead claims, re-run",
               [](const WorkerStats& s) { return s.tasks_reexecuted; });
    set_worker("pool.rerouted_tasks", "inbox pushes re-routed from dead PEs",
               [](const WorkerStats& s) { return s.tasks_rerouted; });
    set_worker("runtime.recoveries", "deaths this PE witnessed and recovered around",
               [](const WorkerStats& s) { return s.deaths_witnessed; });
    set_queue("queue.steals_dead", "steal attempts answered by a dead PE",
              [](const QueueOpStats& s) { return s.steals_dead; });
    set_queue("queue.leases_broken", "dead peers' leases/locks broken",
              [](const QueueOpStats& s) { return s.leases_broken; });
    set_queue("queue.tasks_recovered", "tasks fenced off dead thieves' claims",
              [](const QueueOpStats& s) { return s.tasks_recovered; });
  }
}

PoolRunReport TaskPool::report() const { return aggregate_reports(last_stats_); }

const WorkerStats& TaskPool::worker_stats(int pe) const {
  SWS_ASSERT(pe >= 0 && pe < static_cast<int>(last_stats_.size()));
  return last_stats_[static_cast<std::size_t>(pe)];
}

}  // namespace sws::core
