#include "core/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace sws::core {

const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kTaskExec: return "task_exec";
    case TraceKind::kSpawn: return "spawn";
    case TraceKind::kSpawnRemote: return "spawn_remote";
    case TraceKind::kRelease: return "release";
    case TraceKind::kAcquire: return "acquire";
    case TraceKind::kStealOk: return "steal_ok";
    case TraceKind::kStealEmpty: return "steal_empty";
    case TraceKind::kStealRetry: return "steal_retry";
    case TraceKind::kInboxDrain: return "inbox_drain";
    case TraceKind::kTermCheck: return "term_check";
    case TraceKind::kTerminated: return "terminated";
    case TraceKind::kStealSpan: return "steal";
    case TraceKind::kReleaseSpan: return "release_span";
    case TraceKind::kAcquireSpan: return "acquire_span";
    case TraceKind::kFabricOp: return "fabric_op";
    case TraceKind::kQueueDepth: return "queue_depth";
    case TraceKind::kPendingNbi: return "pending_nbi";
    case TraceKind::kDeathDetected: return "death_detected";
    case TraceKind::kRecoverySpan: return "recovery";
    case TraceKind::kRerouted: return "rerouted";
  }
  return "?";
}

Tracer::Tracer(int npes, std::size_t events_per_pe) {
  SWS_CHECK(npes > 0 && events_per_pe > 0, "bad tracer dimensions");
  rings_.resize(static_cast<std::size_t>(npes));
  for (auto& r : rings_) r.buf.resize(events_per_pe);
}

void Tracer::push(int pe, TraceEvent e) noexcept {
  Ring& r = rings_[static_cast<std::size_t>(pe)];
  e.pe = pe;
  e.seq = r.total;
  r.buf[r.next] = e;
  r.next = (r.next + 1) % r.buf.size();
  ++r.total;
}

void Tracer::record(int pe, net::Nanos time, TraceKind kind, std::uint64_t a,
                    std::uint64_t b) noexcept {
  if (rings_.empty()) return;
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.a = a;
  e.b = b;
  push(pe, e);
}

void Tracer::begin(int pe, net::Nanos time, TraceKind kind, std::uint64_t span,
                   std::uint64_t a) noexcept {
  if (rings_.empty()) return;
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.phase = TracePhase::kBegin;
  e.span = span;
  e.a = a;
  push(pe, e);
}

void Tracer::end(int pe, net::Nanos time, TraceKind kind, std::uint64_t span,
                 std::uint64_t a, std::uint64_t b) noexcept {
  if (rings_.empty()) return;
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.phase = TracePhase::kEnd;
  e.span = span;
  e.a = a;
  e.b = b;
  push(pe, e);
}

void Tracer::complete(int pe, net::Nanos time, net::Nanos dur, TraceKind kind,
                      std::uint64_t span, std::uint64_t a,
                      std::uint64_t b) noexcept {
  if (rings_.empty()) return;
  TraceEvent e;
  e.time = time;
  e.dur = dur;
  e.kind = kind;
  e.phase = TracePhase::kComplete;
  e.span = span;
  e.a = a;
  e.b = b;
  push(pe, e);
}

void Tracer::counter(int pe, net::Nanos time, TraceKind kind,
                     std::uint64_t value) noexcept {
  if (rings_.empty()) return;
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.phase = TracePhase::kCounter;
  e.a = value;
  push(pe, e);
}

void Tracer::clear() {
  for (auto& r : rings_) {
    r.next = 0;
    r.total = 0;
    std::fill(r.buf.begin(), r.buf.end(), TraceEvent{});
  }
}

std::vector<TraceEvent> Tracer::events(int pe) const {
  std::vector<TraceEvent> out;
  if (rings_.empty()) return out;
  const Ring& r = rings_[static_cast<std::size_t>(pe)];
  const std::size_t retained = std::min<std::uint64_t>(r.total, r.buf.size());
  out.reserve(retained);
  // Oldest retained event sits at `next` once the ring has wrapped.
  const std::size_t start = r.total > r.buf.size() ? r.next : 0;
  for (std::size_t i = 0; i < retained; ++i)
    out.push_back(r.buf[(start + i) % r.buf.size()]);
  return out;
}

std::vector<TraceEvent> Tracer::merged() const {
  std::vector<TraceEvent> out;
  for (int pe = 0; pe < static_cast<int>(rings_.size()); ++pe) {
    const auto evs = events(pe);
    out.insert(out.end(), evs.begin(), evs.end());
  }
  // (time, pe, seq) is a total order over the recorded events — no two
  // events of one PE share a seq — so the merge does not depend on input
  // order or sort stability, and dumps are deterministic across runs.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.time != y.time) return x.time < y.time;
              if (x.pe != y.pe) return x.pe < y.pe;
              return x.seq < y.seq;
            });
  return out;
}

bool Tracer::truncated() const noexcept {
  for (const Ring& r : rings_)
    if (r.total > r.buf.size()) return true;
  return false;
}

void Tracer::dump(std::ostream& os) const {
  for (const TraceEvent& e : merged()) {
    os << e.time << "ns pe" << e.pe << " " << trace_kind_name(e.kind);
    switch (e.phase) {
      case TracePhase::kBegin: os << " begin span=" << e.span; break;
      case TracePhase::kEnd: os << " end span=" << e.span; break;
      case TracePhase::kComplete:
        os << " dur=" << e.dur << " span=" << e.span;
        break;
      case TracePhase::kCounter: os << " value=" << e.a; break;
      case TracePhase::kInstant: break;
    }
    if (e.phase != TracePhase::kCounter && (e.a || e.b))
      os << " a=" << e.a << " b=" << e.b;
    os << "\n";
  }
}

namespace {

/// Nanoseconds -> trace-format microseconds with exact .001 resolution.
void json_ts(std::ostream& os, net::Nanos t) {
  os << t / 1000 << "." << std::setw(3) << std::setfill('0') << t % 1000
     << std::setfill(' ');
}

void json_common(std::ostream& os, const TraceEvent& e, const char* ph) {
  os << "{\"name\":\"" << trace_kind_name(e.kind) << "\",\"ph\":\"" << ph
     << "\",\"ts\":";
  json_ts(os, e.time);
  os << ",\"pid\":0,\"tid\":" << e.pe;
}

void json_event(std::ostream& os, const TraceEvent& e) {
  switch (e.phase) {
    case TracePhase::kBegin:
      json_common(os, e, "B");
      os << ",\"args\":{\"span\":" << e.span << ",\"a\":" << e.a << "}}";
      break;
    case TracePhase::kEnd:
      json_common(os, e, "E");
      os << ",\"args\":{\"span\":" << e.span << ",\"a\":" << e.a
         << ",\"b\":" << e.b << "}}";
      break;
    case TracePhase::kComplete:
      json_common(os, e, "X");
      os << ",\"dur\":";
      json_ts(os, e.dur);
      if (e.kind == TraceKind::kFabricOp) {
        const auto kind = static_cast<net::OpKind>(e.a);
        os << ",\"args\":{\"span\":" << e.span << ",\"op\":\""
           << net::op_kind_name(kind) << "\",\"target\":" << (e.b & 0xFFFF)
           << ",\"bytes\":" << (e.b >> 16) << "}}";
      } else {
        os << ",\"args\":{\"span\":" << e.span << ",\"a\":" << e.a
           << ",\"b\":" << e.b << "}}";
      }
      break;
    case TracePhase::kCounter:
      json_common(os, e, "C");
      os << ",\"args\":{\"value\":" << e.a << "}}";
      break;
    case TracePhase::kInstant:
      json_common(os, e, "i");
      os << ",\"s\":\"t\",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b
         << "}}";
      break;
  }
}

}  // namespace

void Tracer::dump_chrome_json(std::ostream& os) const {
  dump_chrome_json(os, TraceMeta{});
}

void Tracer::dump_chrome_json(std::ostream& os, const TraceMeta& meta) const {
  dump_chrome_json(os, meta, ExtraRows{});
}

void Tracer::dump_chrome_json(std::ostream& os, const TraceMeta& meta,
                              const ExtraRows& extra) const {
  os << "[";
  bool first = true;
  if (!meta.protocol.empty() || meta.npes > 0) {
    first = false;
    os << "\n{\"name\":\"sws_run_meta\",\"ph\":\"i\",\"s\":\"g\",\"ts\":0,"
       << "\"pid\":0,\"tid\":0,\"args\":{\"protocol\":\"" << meta.protocol
       << "\",\"npes\":" << meta.npes
       << ",\"slot_bytes\":" << meta.slot_bytes
       << ",\"topo\":\"" << (meta.topo.empty() ? "flat" : meta.topo) << "\""
       << ",\"crashes\":" << (meta.crashes ? 1 : 0)
       << ",\"truncated\":" << (truncated() ? 1 : 0) << "}}";
  }
  for (const TraceEvent& e : merged()) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    json_event(os, e);
  }
  if (extra) {
    std::ostringstream rows;
    extra(rows);
    std::string s = rows.str();
    if (!s.empty()) {
      if (first) s.erase(0, 1);  // no prior row: drop the leading comma
      os << s;
    }
  }
  os << "\n]\n";
}

std::uint64_t Tracer::count(TraceKind kind) const {
  std::uint64_t n = 0;
  for (int pe = 0; pe < static_cast<int>(rings_.size()); ++pe)
    for (const TraceEvent& e : events(pe))
      if (e.kind == kind) ++n;
  return n;
}

std::uint64_t Tracer::count(TraceKind kind, TracePhase phase) const {
  std::uint64_t n = 0;
  for (int pe = 0; pe < static_cast<int>(rings_.size()); ++pe)
    for (const TraceEvent& e : events(pe))
      if (e.kind == kind && e.phase == phase) ++n;
  return n;
}

}  // namespace sws::core
