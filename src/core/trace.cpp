#include "core/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/assert.hpp"

namespace sws::core {

const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kTaskExec: return "task_exec";
    case TraceKind::kSpawn: return "spawn";
    case TraceKind::kSpawnRemote: return "spawn_remote";
    case TraceKind::kRelease: return "release";
    case TraceKind::kAcquire: return "acquire";
    case TraceKind::kStealOk: return "steal_ok";
    case TraceKind::kStealEmpty: return "steal_empty";
    case TraceKind::kStealRetry: return "steal_retry";
    case TraceKind::kInboxDrain: return "inbox_drain";
    case TraceKind::kTermCheck: return "term_check";
    case TraceKind::kTerminated: return "terminated";
  }
  return "?";
}

Tracer::Tracer(int npes, std::size_t events_per_pe) {
  SWS_CHECK(npes > 0 && events_per_pe > 0, "bad tracer dimensions");
  rings_.resize(static_cast<std::size_t>(npes));
  for (auto& r : rings_) r.buf.resize(events_per_pe);
}

void Tracer::record(int pe, net::Nanos time, TraceKind kind, std::uint64_t a,
                    std::uint64_t b) noexcept {
  if (rings_.empty()) return;
  Ring& r = rings_[static_cast<std::size_t>(pe)];
  r.buf[r.next] = TraceEvent{time, kind, pe, a, b};
  r.next = (r.next + 1) % r.buf.size();
  ++r.total;
}

void Tracer::clear() {
  for (auto& r : rings_) {
    r.next = 0;
    r.total = 0;
    std::fill(r.buf.begin(), r.buf.end(), TraceEvent{});
  }
}

std::vector<TraceEvent> Tracer::events(int pe) const {
  std::vector<TraceEvent> out;
  if (rings_.empty()) return out;
  const Ring& r = rings_[static_cast<std::size_t>(pe)];
  const std::size_t retained = std::min<std::uint64_t>(r.total, r.buf.size());
  out.reserve(retained);
  // Oldest retained event sits at `next` once the ring has wrapped.
  const std::size_t start = r.total > r.buf.size() ? r.next : 0;
  for (std::size_t i = 0; i < retained; ++i)
    out.push_back(r.buf[(start + i) % r.buf.size()]);
  return out;
}

std::vector<TraceEvent> Tracer::merged() const {
  std::vector<TraceEvent> out;
  for (int pe = 0; pe < static_cast<int>(rings_.size()); ++pe) {
    const auto evs = events(pe);
    out.insert(out.end(), evs.begin(), evs.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.time != y.time ? x.time < y.time : x.pe < y.pe;
                   });
  return out;
}

void Tracer::dump(std::ostream& os) const {
  for (const TraceEvent& e : merged()) {
    os << e.time << "ns pe" << e.pe << " " << trace_kind_name(e.kind);
    if (e.a || e.b) os << " a=" << e.a << " b=" << e.b;
    os << "\n";
  }
}

void Tracer::dump_chrome_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const TraceEvent& e : merged()) {
    if (!first) os << ",";
    first = false;
    // Timestamps are microseconds in the trace-event format.
    os << "\n{\"name\":\"" << trace_kind_name(e.kind) << "\",\"ph\":\"i\","
       << "\"s\":\"t\",\"ts\":" << static_cast<double>(e.time) / 1e3
       << ",\"pid\":0,\"tid\":" << e.pe << ",\"args\":{\"a\":" << e.a
       << ",\"b\":" << e.b << "}}";
  }
  os << "\n]\n";
}

std::uint64_t Tracer::count(TraceKind kind) const {
  std::uint64_t n = 0;
  for (int pe = 0; pe < static_cast<int>(rings_.size()); ++pe)
    for (const TraceEvent& e : events(pe))
      if (e.kind == kind) ++n;
  return n;
}

}  // namespace sws::core
