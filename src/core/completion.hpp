// Completion arrays and epochs (paper §4.1–4.2, Table 1, Figure 5).
//
// A thief that has finished copying its stolen block writes the block's
// task count into completion[epoch][block_index] on the victim with a
// non-blocking atomic — the third (passive) communication of an SWS steal.
// Slot values are the shared-task state machine of Table 1:
//   0        — block Claimed (steal in progress) or never claimed
//   nonzero  — block Finished (value = tasks copied)
// Available/Invalid are positional (inside/outside the live allotment).
//
// The owner reclaims ring space by scanning the *prefix* of finished
// blocks from the oldest epoch's tail ("all completion arrays are
// traversed to account for the longest sequence of fully completed
// steals").
#pragma once

#include <cstdint>

#include "core/stealval.hpp"
#include "pgas/runtime.hpp"

namespace sws::core {

class CompletionSpace {
 public:
  /// Upper bound on blocks per allotment: a 19-bit allotment halves to
  /// nothing in at most 19 + 1 steps; 32 leaves headroom.
  static constexpr std::uint32_t kSlotsPerEpoch = 32;

  explicit CompletionSpace(pgas::SymmetricHeap& heap);

  /// Symmetric location of completion[epoch][idx].
  pgas::SymPtr slot(std::uint32_t epoch, std::uint32_t idx) const;

  /// Thief side: mark block `idx` of `epoch` finished on `victim` with a
  /// fire-and-forget atomic (the value is the task count, always != 0).
  void notify_finished(pgas::PeContext& thief, int victim, std::uint32_t epoch,
                       std::uint32_t idx, std::uint32_t ntasks) const;

  /// Owner side: value of a slot (plain local atomic read — the paper's
  /// "inspected with a local atomic operation").
  std::uint64_t read(pgas::PeContext& owner, std::uint32_t epoch,
                     std::uint32_t idx) const;

  /// Owner side: number of consecutive finished blocks in [0, upto).
  std::uint32_t finished_prefix(pgas::PeContext& owner, std::uint32_t epoch,
                                std::uint32_t upto) const;

  /// Owner side: total finished blocks in [0, upto) (order-independent).
  std::uint32_t finished_count(pgas::PeContext& owner, std::uint32_t epoch,
                               std::uint32_t upto) const;

  /// Owner side: zero an epoch's slots before reuse (acquire re-init).
  void clear_epoch(pgas::PeContext& owner, std::uint32_t epoch) const;

  /// Owner side, crash recovery only: locally mark a block finished in
  /// place of a thief that died before its notify_finished could land.
  /// The owner re-publishes the block's tasks itself (SwsQueue fence), so
  /// the reclaim prefix must be allowed to complete.
  void force_finished(pgas::PeContext& owner, std::uint32_t epoch,
                      std::uint32_t idx, std::uint32_t ntasks) const;

 private:
  pgas::SymPtr base_;
};

/// Bookkeeping for one allotment whose steals may still be in flight.
/// Created when the owner retires an allotment (release/acquire); disposed
/// once every claimed block has signalled completion and its ring space
/// has been reclaimed.
struct AllotmentRecord {
  std::uint32_t epoch = 0;
  std::uint64_t base_abs = 0;       ///< absolute ring index of first task
  std::uint32_t itasks = 0;         ///< allotment size at release
  std::uint32_t claimed_blocks = 0; ///< blocks actually claimed by thieves

  /// Absolute index one past the last claimed task — the reclaim target.
  std::uint64_t claimed_end_abs() const noexcept {
    return base_abs + steal_block_offset(itasks, claimed_blocks);
  }
};

}  // namespace sws::core
