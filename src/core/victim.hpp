// Victim-selection policies for steal attempts.
//
// The paper (and Cilk's theory) uses uniform random selection; the other
// policies exist for ablations against it. All locality-aware policies
// consume the runtime's shared net::Topology — there is no separate
// node-size knob to keep in sync with the network model.
//
//  * kRandom      — uniform over all other PEs (the paper's default).
//  * kRoundRobin  — deterministic cycle, for tests and worst-case scans.
//  * kTiered      — near-first with escalation, after distbdd-spin17's
//                   wstealer (VERYNEAR → ... → VERYFAR): steal from the
//                   closest tier that has peers; after `escalate_after`
//                   consecutive failures widen to the next tier; any
//                   success snaps back to the closest tier.
//  * kDistanceWeighted — every steal samples a tier with probability
//                   proportional to tier_bias[t] * peers(t), then a
//                   uniform peer within it; a soft version of kTiered
//                   that never fixates on a starved near tier.
//
// Policy catalog and guidance: docs/topology.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace sws::core {

enum class VictimPolicy { kRandom, kRoundRobin, kTiered, kDistanceWeighted };

const char* victim_policy_name(VictimPolicy p) noexcept;
/// Inverse of victim_policy_name ("random" | "round_robin" | "tiered" |
/// "distance_weighted"); throws std::invalid_argument on unknown names.
VictimPolicy parse_victim_policy(const std::string& name);

struct VictimConfig {
  VictimPolicy policy = VictimPolicy::kRandom;
  /// kDistanceWeighted: relative per-tier weight, tier_bias[t-1] for tier
  /// t. Empty = geometric default (each tier outward is 4x less likely
  /// per peer than the one inside it).
  std::vector<double> tier_bias;
  /// kTiered: consecutive failed steals at the current tier before
  /// escalating to the next one.
  int escalate_after = 2;
};

/// Pluggable selection policy. The scheduler asks next() for a victim
/// before every steal and reports the outcome back; stateless policies
/// ignore report().
class VictimSelector {
 public:
  virtual ~VictimSelector() = default;

  /// Next victim to try; never returns the selector's own PE. Requires
  /// at least one other PE in the topology.
  virtual int next() = 0;

  /// Outcome feedback for the victim most recently returned by next()
  /// (kTiered escalation consumes this; default ignores it).
  virtual void report(int victim, bool success) {
    (void)victim;
    (void)success;
  }

  virtual VictimPolicy policy() const noexcept = 0;
};

/// Build a selector for PE `self`. kRandom draws from the stream
/// Xoshiro256(seed, self | 1<<32) — pinned, because flat-topology
/// determinism A/B compares schedules byte-for-byte across versions.
std::unique_ptr<VictimSelector> make_victim_selector(
    const VictimConfig& cfg, const net::Topology& topo, int self,
    std::uint64_t seed);

}  // namespace sws::core
