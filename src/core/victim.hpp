// Victim-selection policies for steal attempts.
//
// The paper (and Cilk's theory) uses uniform random selection. Round-robin
// is a deterministic alternative for tests/ablations, and kHierarchical is
// the locality-aware strategy of the SLAW/HotSLAW line the paper cites
// (§2.2): on a two-level fabric, prefer victims on the initiator's own
// node with probability `local_bias` and fall back to a uniform global
// pick otherwise.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace sws::core {

enum class VictimPolicy { kRandom, kRoundRobin, kHierarchical };

struct VictimConfig {
  VictimPolicy policy = VictimPolicy::kRandom;
  /// Node size for kHierarchical (0 = flat; the policy degrades to
  /// kRandom). Should match NetworkParams::pes_per_node.
  int pes_per_node = 0;
  /// Probability of trying an intra-node victim first (kHierarchical).
  double local_bias = 0.75;
};

class VictimSelector {
 public:
  VictimSelector(VictimPolicy policy, int self, int npes,
                 std::uint64_t seed) noexcept
      : VictimSelector(VictimConfig{policy, 0, 0.75}, self, npes, seed) {}

  VictimSelector(const VictimConfig& cfg, int self, int npes,
                 std::uint64_t seed) noexcept;

  /// Next victim to try; never returns `self`. npes must be >= 2.
  int next() noexcept;

  VictimPolicy policy() const noexcept { return cfg_.policy; }

 private:
  int random_other() noexcept;
  int random_on_node() noexcept;  ///< -1 when alone on the node

  VictimConfig cfg_;
  int self_;
  int npes_;
  int node_begin_ = 0;  ///< [node_begin_, node_end_) = my node's PEs
  int node_end_ = 0;
  int cursor_;
  Xoshiro256 rng_;
};

}  // namespace sws::core
