#include "core/sws_queue.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/recovery.hpp"

namespace sws::core {

namespace {

/// Validate before any symmetric allocation so bad parameters fail with a
/// clear error instead of heap exhaustion.
QueueConfig validated(QueueConfig q) {
  SWS_CHECK(q.capacity <= kMaxITasks,
            "capacity exceeds the stealval itasks field");
  return q;
}

SwsConfig validated(SwsConfig c) {
  SWS_CHECK(c.bulk_claim_max >= 1 && c.bulk_claim_max <= kMaxBulkClaim,
            "bulk_claim_max must be in [1, kMaxBulkClaim]");
  return c;
}

/// Steal-pressure threshold cap: an allotment counts as hot when thieves'
/// observed asteals delta covers every one of its blocks (they consumed it
/// whole), capped at this many for large allotments. The owner retires an
/// allotment the moment it drains, so the delta can never run far past the
/// block count — an absolute threshold above it would be unreachable for
/// the small allotments steal storms actually produce. A hot retirement
/// makes the next release expose 3/4 of the local portion instead of half.
constexpr std::uint32_t kHighPressure = 8;

}  // namespace

SwsQueue::SwsQueue(pgas::Runtime& rt, const QueueConfig& queue, SwsConfig cfg)
    : qcfg_(validated(queue)),
      cfg_(validated(cfg)),
      stealval_(rt.heap().alloc(sizeof(std::uint64_t), 8)),
      completion_(rt.heap()),
      buffer_(rt.heap(), qcfg_.capacity, qcfg_.slot_bytes),
      owners_(static_cast<std::size_t>(rt.npes())),
      thieves_(static_cast<std::size_t>(rt.npes())) {
  for (auto& t : thieves_) {
    t.empty_mode.assign(static_cast<std::size_t>(rt.npes()), 0);
    t.seen_blocks.assign(static_cast<std::size_t>(rt.npes()), 0);
  }
}

void SwsQueue::reset_pe(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  o = OwnerState{};
  auto& t = thieves_[static_cast<std::size_t>(ctx.pe())];
  std::fill(t.empty_mode.begin(), t.empty_mode.end(), std::uint8_t{0});
  std::fill(t.seen_blocks.begin(), t.seen_blocks.end(), std::uint8_t{0});
  t.claim_size = 1;
  // Valid-but-empty stealval: thieves decode itasks == 0 and give up
  // without claiming anything.
  std::memset(ctx.local(stealval_), 0, sizeof(std::uint64_t));
  for (std::uint32_t e = 0; e < kNumEpochs; ++e)
    completion_.clear_epoch(ctx, e);
}

// ------------------------------------------------------------ owner side

bool SwsQueue::push_local(pgas::PeContext& ctx, const Task& t) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  if (o.head_abs - o.reclaim_abs >= buffer_.capacity()) {
    progress(ctx);
    if (o.head_abs - o.reclaim_abs >= buffer_.capacity()) return false;
  }
  buffer_.write_local(ctx, o.head_abs, t);
  ++o.head_abs;
  return true;
}

bool SwsQueue::pop_local(pgas::PeContext& ctx, Task& out) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  if (o.head_abs == o.split_abs) return false;
  --o.head_abs;
  out = buffer_.read_local(ctx, o.head_abs);
  return true;
}

std::uint32_t SwsQueue::local_count(pgas::PeContext& ctx) const {
  const auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  return static_cast<std::uint32_t>(o.head_abs - o.split_abs);
}

StealVal SwsQueue::owner_stealval(pgas::PeContext& ctx) const {
  return StealVal::decode(ctx.local_load(stealval_));
}

bool SwsQueue::shared_available(pgas::PeContext& ctx) const {
  // Unclaimed tasks remain while the claimed prefix hasn't consumed the
  // whole allotment. Local atomic read — no communication.
  const StealVal sv = owner_stealval(ctx);
  if (sv.itasks == 0) return false;
  const std::uint32_t nblocks = steal_block_count(sv.itasks);
  const std::uint32_t claimed = std::min(sv.asteals, nblocks);
  return steal_block_offset(sv.itasks, claimed) < sv.itasks;
}

std::uint32_t SwsQueue::retire_allotment(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];

  // Disable stealing: thieves that hit the sentinel see a locked epoch and
  // abort; their stray asteals increments die with the sentinel.
  const std::uint64_t old_word = ctx.fabric().amo_swap(
      ctx.pe(), ctx.pe(), stealval_.off, locked_sentinel());
  const StealVal old = StealVal::decode(old_word);
  SWS_ASSERT_MSG(!old.locked(), "queue was already locked by its owner");
  SWS_ASSERT(old.epoch == o.epoch && old.itasks == o.itasks);

  const std::uint32_t nblocks = steal_block_count(o.itasks);
  const std::uint32_t claimed = std::min(old.asteals, nblocks);
  if (claimed > 0) {
    o.outstanding.push_back(
        AllotmentRecord{o.epoch, o.alloc_base_abs, o.itasks, claimed});
  }

  const std::uint32_t next_epoch =
      cfg_.epochs ? (o.epoch + 1) % kNumEpochs : o.epoch;
  // Wait until the completion array we are about to reuse is free. With
  // epochs on, that is only the *other* epoch's outstanding record; with
  // epochs off we must drain everything — the §4.1 behaviour the epochs
  // optimization removes.
  auto must_wait = [&]() {
    for (const auto& rec : o.outstanding) {
      if (!cfg_.epochs) return true;  // any outstanding record blocks us
      if (rec.epoch == next_epoch) return true;
    }
    return false;
  };
  const bool crash_mode =
      ctx.fabric().crashes_planned() && recovery_ != nullptr;
  net::Nanos lease_start = crash_mode ? ctx.now() : 0;
  while (true) {
    progress(ctx);
    if (!must_wait()) break;
    if (crash_mode &&
        ctx.now() - lease_start >= recovery_->config().lease_ns) {
      // A healthy thief turns a claim into a completion in microseconds
      // even through the fault layer's full retransmit budget; a claim
      // still open after a whole lease means its thief is suspect. Probe,
      // and if a death is confirmed, drain every effect still in flight
      // toward us (a live thief's notify may be the thing we're missing)
      // before fencing what remains.
      recovery_->probe_all(ctx);
      if (recovery_->known_count(ctx.pe()) > 0) {
        while (ctx.fabric().pending_to_synced(ctx.pe()) > 0) {
          ctx.compute(cfg_.epoch_poll_ns);
          o.stats.acquire_poll_ns += cfg_.epoch_poll_ns;
        }
        progress(ctx);  // absorb completions that just landed
        if (must_wait()) fence_dead_claims(ctx);
      }
      lease_start = ctx.now();
      continue;
    }
    ctx.compute(cfg_.epoch_poll_ns);
    o.stats.acquire_poll_ns += cfg_.epoch_poll_ns;
  }

  // Under duplication faults, a finished prefix proves the *originals*
  // landed but a duplicate completion AMO may still be in flight — and a
  // fetch-add replayed into a recycled epoch would corrupt a fresh slot.
  // Both copies of a duplicated op enter the fabric's pending set at
  // issue time, so pending_to(us)==0 certifies no stray copy remains.
  if (ctx.fabric().fault_duplicates_possible()) {
    while (ctx.fabric().pending_to_synced(ctx.pe()) > 0) {
      ctx.compute(cfg_.epoch_poll_ns);
      o.stats.acquire_poll_ns += cfg_.epoch_poll_ns;
    }
  }

  completion_.clear_epoch(ctx, next_epoch);
  o.epoch = next_epoch;
  return claimed;
}

void SwsQueue::publish(pgas::PeContext& ctx, std::uint32_t itasks) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  o.itasks = itasks;
  o.asteals_seen = 0;  // fresh allotment: pressure deltas restart at zero
  const StealVal sv{0, o.epoch, itasks, buffer_.wrap(o.alloc_base_abs)};
  // Atomic store re-enables stealing in one local AMO.
  ctx.fabric().amo_set(ctx.pe(), ctx.pe(), stealval_.off, sv.encode());
}

bool SwsQueue::try_release(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  // Release requires the shared portion exhausted and spare local work.
  if (shared_available(ctx)) return false;
  const auto nlocal = static_cast<std::uint32_t>(o.head_abs - o.split_abs);
  if (nlocal < 2) return false;

  const std::uint32_t retired_claims = retire_allotment(ctx);
  // Expose the oldest half of the local portion as the new allotment — or,
  // in bulk mode under observed steal pressure, three quarters: hot victims
  // feed bigger allotments so bulk claims have whole multi-block spans to
  // amortize over.
  std::uint32_t expose = nlocal / 2;
  // Hot iff thieves claimed the whole retiring allotment (asteals delta or
  // the retire swap's authoritative claim count covers its block count,
  // floored at 1 so an initial empty allotment never counts, capped at
  // kHighPressure for large ones).
  const std::uint32_t hot_at = std::min(
      kHighPressure, std::max<std::uint32_t>(steal_block_count(o.itasks), 1));
  if (cfg_.bulk_claim_max > 1 &&
      std::max(o.pressure, retired_claims) >= hot_at) {
    expose = (3 * nlocal) / 4;
    ++o.stats.pressure_releases;
  }
  o.pressure = 0;
  expose = std::min(expose, kMaxITasks);
  o.alloc_base_abs = o.split_abs;
  o.split_abs += expose;
  publish(ctx, expose);
  ++o.stats.releases;
  return true;
}

bool SwsQueue::try_acquire(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  if (o.head_abs != o.split_abs) return false;  // local work remains
  if (!shared_available(ctx)) return false;

  // The swap inside retire_allotment is authoritative: thieves may have
  // claimed more blocks since our shared_available peek.
  const std::uint32_t claimed = retire_allotment(ctx);
  const std::uint64_t claim_end =
      o.alloc_base_abs + steal_block_offset(o.itasks, claimed);
  const auto unclaimed =
      static_cast<std::uint32_t>(o.alloc_base_abs + o.itasks - claim_end);

  bool took = false;
  if (unclaimed > 0) {
    // Pull the upper half back into the local portion; the lower half
    // becomes the new (smaller) allotment.
    const std::uint32_t take = (unclaimed + 1) / 2;
    o.split_abs -= take;
    took = true;
    ++o.stats.acquires;
  }
  o.alloc_base_abs = claim_end;
  publish(ctx, static_cast<std::uint32_t>(o.split_abs - claim_end));
  return took;
}

void SwsQueue::progress(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  // Wraparound protection (owner half): once the asteals counter runs hot
  // — a probe storm against a long-lived allotment — retire it and
  // republish the unclaimed remainder, which resets asteals to 0 long
  // before any thief can wrap the 24-bit field and double-claim a block.
  // retire_allotment() re-enters progress() from its wait loop with the
  // locked sentinel already in place, so the !locked() gate makes the
  // renewal non-recursive.
  {
    const StealVal sv = owner_stealval(ctx);
    // Steal-pressure sampling (bulk mode): the same local read the renew
    // check needs also yields the per-epoch asteals delta — the owner's
    // only signal for how hard thieves are hitting this allotment.
    if (cfg_.bulk_claim_max > 1 && !sv.locked()) {
      if (sv.asteals > o.asteals_seen) o.pressure += sv.asteals - o.asteals_seen;
      o.asteals_seen = sv.asteals;
    }
    if (!sv.locked() && sv.asteals >= kAStealsRenewAt) {
      const std::uint32_t claimed = retire_allotment(ctx);
      const std::uint64_t claim_end =
          o.alloc_base_abs + steal_block_offset(o.itasks, claimed);
      o.alloc_base_abs = claim_end;
      publish(ctx, static_cast<std::uint32_t>(o.split_abs - claim_end));
      ++o.stats.renews;
    }
  }
  // Retired allotments reclaim in order; within one, only the finished
  // *prefix* of blocks frees space (paper §4.2).
  while (!o.outstanding.empty()) {
    const AllotmentRecord& rec = o.outstanding.front();
    const std::uint32_t prefix =
        completion_.finished_prefix(ctx, rec.epoch, rec.claimed_blocks);
    o.reclaim_abs = std::max(
        o.reclaim_abs, rec.base_abs + steal_block_offset(rec.itasks, prefix));
    if (prefix < rec.claimed_blocks) return;  // oldest epoch still pending
    o.outstanding.pop_front();
  }
  // All retired allotments drained: the live allotment's finished prefix
  // is also reclaimable.
  if (o.itasks > 0) {
    const std::uint32_t nblocks = steal_block_count(o.itasks);
    const std::uint32_t prefix = completion_.finished_prefix(
        ctx, o.epoch, std::min(nblocks, CompletionSpace::kSlotsPerEpoch));
    o.reclaim_abs =
        std::max(o.reclaim_abs,
                 o.alloc_base_abs + steal_block_offset(o.itasks, prefix));
  } else {
    o.reclaim_abs = std::max(o.reclaim_abs, o.alloc_base_abs);
  }
}

std::uint32_t SwsQueue::fence_dead_claims(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  std::uint32_t fenced = 0;
  // Every record here was retired before this wait began, so each of its
  // claims is at least one full lease old; with pending-to-us drained, an
  // unfinished slot can only belong to a thief that died between its
  // fetch-add claim and its completion notify. The ring data under the
  // claim is intact — reclaim never advanced past it (that is exactly the
  // stall being broken) — so the owner takes custody of the tasks and
  // finishes the slot itself. The dead thief may have copied the block
  // before dying without ever running it; re-publication makes execution
  // at-least-once, deduplicated at completion accounting (docs/resilience.md).
  for (const auto& rec : o.outstanding) {
    for (std::uint32_t b = 0; b < rec.claimed_blocks; ++b) {
      if (completion_.read(ctx, rec.epoch, b) != 0) continue;
      const StealBlock blk = steal_block(rec.itasks, b);
      for (std::uint32_t i = 0; i < blk.size; ++i)
        o.recovered.push_back(
            buffer_.read_local(ctx, rec.base_abs + blk.offset + i));
      completion_.force_finished(ctx, rec.epoch, b, blk.size);
      ++fenced;
      ++o.stats.leases_broken;
      o.stats.tasks_recovered += blk.size;
    }
  }
  return fenced;
}

void SwsQueue::fence_dead(pgas::PeContext& ctx) {
  if (recovery_ == nullptr || !ctx.fabric().crashes_planned()) return;
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  progress(ctx);
  const StealVal sv = owner_stealval(ctx);
  const bool live_claims = sv.itasks > 0 && sv.asteals > 0;
  if (o.outstanding.empty() && !live_claims) return;

  // Claims on the live allotment only become fenceable records once the
  // allotment is retired; republish the unclaimed remainder (renew-style)
  // so thieves keep their access to it.
  if (live_claims) {
    const std::uint32_t claimed = retire_allotment(ctx);
    const std::uint64_t claim_end =
        o.alloc_base_abs + steal_block_offset(o.itasks, claimed);
    o.alloc_base_abs = claim_end;
    publish(ctx, static_cast<std::uint32_t>(o.split_abs - claim_end));
  }
  if (o.outstanding.empty()) return;

  // Age every remaining claim past the lease before fencing: a live thief
  // that claimed just before the retire above turns its claim into a
  // completion in far less than one lease, so whatever is still open
  // afterwards — with all in-flight effects toward us drained — belongs
  // to a dead thief.
  const net::Nanos until = ctx.now() + recovery_->config().lease_ns;
  while (ctx.now() < until) {
    ctx.compute(cfg_.epoch_poll_ns);
    o.stats.acquire_poll_ns += cfg_.epoch_poll_ns;
  }
  while (ctx.fabric().pending_to_synced(ctx.pe()) > 0)
    ctx.compute(cfg_.epoch_poll_ns);
  progress(ctx);
  if (!o.outstanding.empty()) fence_dead_claims(ctx);
  progress(ctx);
}

std::uint32_t SwsQueue::take_recovered(pgas::PeContext& ctx,
                                       std::vector<Task>& out) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  if (o.recovered.empty()) return 0;
  const auto n = static_cast<std::uint32_t>(o.recovered.size());
  out.insert(out.end(), o.recovered.begin(), o.recovered.end());
  o.recovered.clear();
  return n;
}

// ------------------------------------------------------------ thief side

bool SwsQueue::has_work(const StealVal& sv) noexcept {
  if (sv.locked() || sv.itasks == 0) return false;
  // A saturated counter means "wait for the owner to renew", never "work
  // available" — claiming near the wrap point risks block aliasing.
  if (sv.asteals >= kAStealsSoftCap) return false;
  return sv.asteals < steal_block_count(sv.itasks);
}

StealResult SwsQueue::steal(pgas::PeContext& thief, int victim,
                            std::vector<Task>& out) {
  SWS_ASSERT(victim != thief.pe());
  auto& st = owners_[static_cast<std::size_t>(thief.pe())].stats;
  auto& fab = thief.fabric();
  auto& tstate = thieves_[static_cast<std::size_t>(thief.pe())];
  auto& mode = tstate.empty_mode[static_cast<std::size_t>(victim)];

  // Bulk claims: in bulk mode the thief's adaptive claim size decides
  // how many blocks this one fetch-add tries to take. Success doubles it
  // (capped at bulk_claim_max); it halves on signals that a victim
  // genuinely can't feed a bulk claim — an empty read-only probe (the
  // victim has nothing published), a soft-cap refusal, a dead victim.
  // Two *transient* outcomes deliberately leave it alone: losing the
  // claim race to peers (fetch-add landed past the last block) and
  // catching the owner's locked rotation sentinel. Under a steal storm
  // both happen constantly between wins, and shrinking on either pins
  // every claim at one block exactly when bulk claims pay off most.
  // Overshoot past the last block only burns dead asteals units, which
  // the soft-cap/renewal guards bound.
  std::uint8_t* csize =
      cfg_.bulk_claim_max > 1 ? &tstate.claim_size : nullptr;
  std::uint32_t want =
      csize != nullptr
          ? std::min<std::uint32_t>(*csize, cfg_.bulk_claim_max)
          : 1;
  // Observed-allotment cap: never ask for more than half the victim's
  // last-seen block count. A warmed-up thief (claim_size at max) hitting
  // a small owner would otherwise swallow the whole allotment with every
  // AMO, funneling all other thieves through that owner's renewal cadence
  // — the single-victim-storm pathology (bench/ablation_bulk). Half
  // leaves the remainder claimable concurrently; unknown victims (0)
  // fall back to the pure adaptive size.
  if (csize != nullptr) {
    const std::uint8_t seen =
        tstate.seen_blocks[static_cast<std::size_t>(victim)];
    if (seen > 0)
      want = std::min<std::uint32_t>(
          want, std::max<std::uint32_t>(std::uint32_t{seen} / 2, 1));
  }
  // Refresh the per-victim observation from any decoded live allotment.
  auto note_allotment = [&](const StealVal& v) {
    if (csize != nullptr && !v.locked() && v.itasks > 0)
      tstate.seen_blocks[static_cast<std::size_t>(victim)] =
          static_cast<std::uint8_t>(
              std::min<std::uint32_t>(steal_block_count(v.itasks), 255));
  };
  auto grow_claim = [&] {
    if (csize != nullptr)
      *csize = static_cast<std::uint8_t>(
          std::min<std::uint32_t>(want * 2, cfg_.bulk_claim_max));
  };
  auto shrink_claim = [&] {
    if (csize != nullptr)
      *csize = static_cast<std::uint8_t>(std::max<std::uint32_t>(want / 2, 1));
  };

  // The poison word decodes to a *locked* stealval (the 2-bit epoch field
  // reads as the sentinel), so without the raw-word checks below a dead
  // victim would look permanently busy and the thief would retry forever.
  // kPeerDead instead evicts the victim from the steal set for good.
  auto dead_victim = [&]() -> StealResult {
    if (recovery_ != nullptr) recovery_->note_dead(thief.pe(), victim);
    shrink_claim();
    ++st.steals_dead;
    return {StealOutcome::kPeerDead, 0};
  };

  if (mode != 0) {
    // Empty-mode (§4.3): read-only probe so exhausted targets don't have
    // their asteals counter inflated toward overflow. With damping off,
    // mode is only ever set by the saturation guard below — the probe is
    // then mandatory wraparound protection, not an optimization.
    ++st.damping_probes;
    const std::uint64_t probe_word =
        fab.amo_fetch(thief.pe(), victim, stealval_.off);
    if (probe_word == net::kDeadFetchValue) return dead_victim();
    const StealVal probe = StealVal::decode(probe_word);
    note_allotment(probe);
    if (!has_work(probe)) {
      shrink_claim();  // the victim provably has nothing published
      ++st.steals_empty;
      return {StealOutcome::kEmpty, 0};
    }
    mode = 0;  // back to full-mode; fall through and claim for real
  }

  // (1) The single-communication discover+claim: fetch-add the packed
  // asteals field. In bulk mode the addend is `want` units, claiming the
  // next `want` contiguous blocks at once; the returned prior value is our
  // claim ticket either way.
  const std::uint64_t word =
      fab.amo_fetch_add(thief.pe(), victim, stealval_.off,
                        AStealsField::unit() * want);
  if (word == net::kDeadFetchValue) return dead_victim();
  const StealVal sv = StealVal::decode(word);
  note_allotment(sv);

  if (sv.locked()) {
    ++st.steals_retry;
    // The owner rotates epochs on its poll cadence; retrying sooner than
    // that only re-reads the sentinel.
    return {StealOutcome::kRetry, 0, cfg_.epoch_poll_ns};
  }
  if (sv.asteals + want > kAStealsSoftCap) {
    // Wraparound protection (thief half): a claim whose last unit would
    // land at/past the cap could alias an already-claimed block once the
    // counter wraps mod 2^24 — with bulk increments, checking the fetched
    // prior alone is not enough. Refuse the claim and go probe-first until
    // the owner's progress() renews the allotment (asteals back to 0).
    mode = 1;
    shrink_claim();
    ++st.steals_retry;
    return {StealOutcome::kRetry, 0, cfg_.epoch_poll_ns};
  }
  const std::uint32_t nblocks = steal_block_count(sv.itasks);
  if (sv.itasks == 0 || sv.asteals >= nblocks) {
    if (cfg_.damping && sv.asteals >= nblocks + cfg_.damping_slack) mode = 1;
    ++st.steals_empty;
    return {StealOutcome::kEmpty, 0};
  }

  // Our claim is fully determined by (itasks, asteals, want): blocks
  // [asteals, min(asteals + want, nblocks)) — volume by repeated halving,
  // displacement by the claimed prefix (§4.1). A claim that runs past the
  // last block keeps what exists; the overshot units are dead indices no
  // other thief can receive (their fetched priors are larger still).
  const std::uint32_t b0 = sv.asteals;
  const std::uint32_t k = std::min(b0 + want, nblocks) - b0;
  const std::uint32_t first_off = steal_block_offset(sv.itasks, b0);
  const std::uint32_t ntasks = steal_block_offset(sv.itasks, b0 + k) - first_off;
  SWS_ASSERT(k > 0 && ntasks > 0);
  const std::uint32_t start_mod =
      (sv.tail + first_off) % buffer_.capacity();

  // (2) copy the claimed blocks — contiguous in the ring, so even a
  // multi-block claim is one coalesced get (two when it wraps).
  const std::size_t out_base = out.size();
  buffer_.get_remote(thief, victim, start_mod, ntasks, out);
  if (fab.crashes_planned() && !fab.alive(victim)) {
    // The victim died between our claim and the copy: the get returned
    // filler, not tasks (the blocking op's local NIC error status, not an
    // oracle). Drop the garbage. The claim itself dies with the victim —
    // no completion is owed to anyone.
    out.resize(out_base);
    return dead_victim();
  }

  // (3) passive completion notification, one non-blocking AMO per claimed
  // block — the owner's finished-prefix reclaim is per block, so a bulk
  // claim must light up each of its slots.
  for (std::uint32_t b = 0; b < k; ++b)
    completion_.notify_finished(thief, victim, sv.epoch, b0 + b,
                                steal_block_size(sv.itasks, b0 + b));

  grow_claim();
  ++st.steals_ok;
  st.tasks_stolen += ntasks;
  st.blocks_claimed += k;
  if (k > 1) ++st.bulk_claims;
  // A claim that took every block of a multi-block allotment: the exact
  // shape the observed-allotment cap exists to suppress (the storm regime
  // of bench/ablation_bulk asserts it stays rare).
  if (k == nblocks && nblocks > 1) ++st.full_claims;
  return {StealOutcome::kSuccess, ntasks, 0, k};
}

const QueueOpStats& SwsQueue::op_stats(int pe) const {
  return owners_[static_cast<std::size_t>(pe)].stats;
}

std::string SwsQueue::audit(pgas::PeContext& ctx) const {
  const auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  auto bad = [&](const char* what, std::uint64_t a, std::uint64_t b) {
    return std::string("sws audit: ") + what + " (" + std::to_string(a) +
           " vs " + std::to_string(b) + ")";
  };

  // Ring geometry: reclaim <= live allotment base <= split <= head, the
  // allotment is exactly [alloc_base, split), and the whole occupied span
  // fits in the ring.
  if (o.reclaim_abs > o.split_abs)
    return bad("reclaim past split", o.reclaim_abs, o.split_abs);
  if (o.alloc_base_abs > o.split_abs)
    return bad("alloc_base past split", o.alloc_base_abs, o.split_abs);
  if (o.split_abs > o.head_abs)
    return bad("split past head", o.split_abs, o.head_abs);
  if (o.alloc_base_abs + o.itasks != o.split_abs)
    return bad("allotment size inconsistent with split",
               o.alloc_base_abs + o.itasks, o.split_abs);
  if (o.head_abs - o.reclaim_abs > buffer_.capacity())
    return bad("occupied span exceeds capacity", o.head_abs - o.reclaim_abs,
               buffer_.capacity());

  // Outstanding retired allotments: well-formed records, disjoint and in
  // retirement order, all strictly before the live allotment. The reclaim
  // cursor may sit *inside* the oldest record (it tracks that record's
  // finished prefix) but never past its claimed end.
  std::uint64_t prev_end = 0;
  bool oldest = true;
  for (const auto& rec : o.outstanding) {
    if (rec.epoch >= kNumEpochs)
      return bad("outstanding record epoch out of range", rec.epoch,
                 kNumEpochs);
    if (rec.claimed_blocks == 0 ||
        rec.claimed_blocks > CompletionSpace::kSlotsPerEpoch)
      return bad("outstanding claimed_blocks out of range",
                 rec.claimed_blocks, CompletionSpace::kSlotsPerEpoch);
    if (rec.claimed_end_abs() > o.alloc_base_abs)
      return bad("outstanding record overlaps live allotment", rec.base_abs,
                 o.alloc_base_abs);
    if (rec.base_abs < prev_end)
      return bad("outstanding records overlap", rec.base_abs, prev_end);
    prev_end = rec.claimed_end_abs();
    if (oldest) {
      if (o.reclaim_abs > rec.claimed_end_abs())
        return bad("reclaim past the oldest outstanding record",
                   o.reclaim_abs, rec.claimed_end_abs());
      oldest = false;
    }
  }

  // Published stealval vs. owner mirror. Between any two owner-side
  // operations the word must be unlocked (every op that swaps in the
  // sentinel republishes before returning) and must agree with the
  // owner's private cursors.
  const StealVal sv = owner_stealval(ctx);
  if (sv.locked())
    return bad("stealval locked between owner operations", sv.epoch,
               kNumEpochs);
  if (sv.epoch != o.epoch)
    return bad("stealval epoch mismatch", sv.epoch, o.epoch);
  if (sv.itasks != o.itasks)
    return bad("stealval itasks mismatch", sv.itasks, o.itasks);
  if (sv.tail != buffer_.wrap(o.alloc_base_abs))
    return bad("stealval tail mismatch", sv.tail,
               buffer_.wrap(o.alloc_base_abs));
  return {};
}

}  // namespace sws::core
