// Task function registry.
//
// Tasks carry a function *id*; the id → function mapping must be identical
// on every PE (SPMD registration order), mirroring how Scioto/SWS register
// task handlers before processing starts. The registry is immutable once
// the pool runs, so lookups are lock-free.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/task.hpp"

namespace sws::core {

class Worker;  // defined in scheduler.hpp

/// A task body: receives the executing worker (for spawning subtasks and
/// charging compute time) and its payload bytes.
using TaskFn = std::function<void(Worker&, std::span<const std::byte>)>;

class TaskRegistry {
 public:
  /// Register a handler under a unique name; returns its id.
  /// Registration must happen before the pool runs.
  TaskFnId register_fn(std::string name, TaskFn fn);

  const TaskFn& fn(TaskFnId id) const;
  TaskFnId id_of(const std::string& name) const;
  std::size_t size() const noexcept { return fns_.size(); }

 private:
  std::vector<TaskFn> fns_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, TaskFnId> by_name_;
};

}  // namespace sws::core
