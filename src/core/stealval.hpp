// The SWS `stealval`: the paper's central idea (§4, Figures 3–4).
//
// All queue metadata a thief needs to both *discover* and *claim* work is
// packed into one 64-bit word so that a single remote fetch-add performs
// both steps at once:
//
//      63           40 39 38    37         19 18          0
//     +---------------+-----+----------------+-------------+
//     |  asteals (24) |epoch|  itasks (19)   |  tail (19)  |
//     +---------------+-----+----------------+-------------+
//
//  * asteals — number of steal attempts against the current allotment.
//    Thieves add AStealsField::unit() (1 << 40); the fetched prior value
//    tells them exactly which steal-half block is theirs.
//  * epoch — completion-epoch index (§4.2). Values >= kNumEpochs mean the
//    owner has the queue disabled (acquire/release in progress); thieves
//    abort. This subsumes the Figure-3 valid bit.
//  * itasks — size of the allotment the owner released to the shared
//    portion; with asteals it determines every block size and offset.
//  * tail — queue-slot index (mod capacity) of the allotment's first task.
//
// Owner-only fields (epoch/itasks/tail) are the low 40 bits; thief
// increments touch only the high 24, so concurrent fetch-adds can never
// corrupt owner data — the structural property the paper's title is about.
#pragma once

#include <cstdint>

#include "common/bitfield.hpp"

namespace sws::core {

using AStealsField = Field<40, 24>;
using EpochField = Field<38, 2>;
using ITasksField = Field<19, 19>;
using TailField = Field<0, 19>;

/// Live completion epochs (paper: "the use of two completion epochs was
/// sufficient to avoid polling").
inline constexpr std::uint32_t kNumEpochs = 2;
/// Epoch value that marks the queue disabled ("anything greater than
/// MAX_EPOCHS signifies that the queue is locked", §4.2).
inline constexpr std::uint32_t kLockedEpoch = 3;
/// Largest allotment representable.
inline constexpr std::uint32_t kMaxITasks =
    static_cast<std::uint32_t>(ITasksField::kMax);
/// Largest queue capacity addressable by the tail field.
inline constexpr std::uint32_t kMaxQueueCapacity =
    static_cast<std::uint32_t>(TailField::kMax) + 1;

// The asteals field is 24 bits wide and every full-mode steal attempt —
// successful or not — advances it (by the attempt's claim size, 1..
// kMaxBulkClaim units). A long-lived allotment under a probe storm could
// therefore wrap the counter mod 2^24, at which point a late thief's
// fetched prior value aliases an already-claimed block index and the same
// tasks get copied twice (task multiplicity). Two complementary guards
// keep the counter far from the wrap point:
//
//  * kAStealsSoftCap — thief side: a claim whose fetched prior plus its
//    own size would land at/past this refuses to claim and falls back to
//    read-only probes, so thieves stop feeding the counter. Each thief
//    overshoots the cap by at most one claim (<= kMaxBulkClaim units, not
//    +1 — the bulk-claim guard), leaving > 2^23 of headroom before wrap
//    even with every PE overshooting at once.
//  * kAStealsRenewAt — owner side: progress() retires and republishes the
//    allotment once it observes asteals at/above this, resetting the
//    counter to zero. Orders of magnitude below the soft cap, so in a
//    live system the owner renews long before any thief hits the cap.
inline constexpr std::uint32_t kAStealsSoftCap = 1u << 20;
inline constexpr std::uint32_t kAStealsRenewAt = 1u << 16;
/// Upper bound on blocks one bulk fetch-add may claim. 32 matches the
/// completion-array depth (CompletionSpace::kSlotsPerEpoch): no allotment
/// has more blocks, so a single claim can never need more.
inline constexpr std::uint32_t kMaxBulkClaim = 32;
static_assert(kAStealsRenewAt < kAStealsSoftCap);
static_assert(kAStealsSoftCap < (AStealsField::kMax + 1) / 2,
              "soft cap must leave wraparound headroom for thief overshoot");
// Worst-case post-cap overshoot: one in-flight bulk claim per thief.
// Budget for 2^16 thieves — far beyond any supported configuration —
// and even that sum stays well inside the headroom the soft cap leaves
// before the 24-bit counter wraps.
static_assert(kAStealsSoftCap + (std::uint64_t{1} << 16) * kMaxBulkClaim <
                  (AStealsField::kMax + 1) / 2,
              "bulk overshoot must not reach the asteals wrap point");

struct StealVal {
  std::uint32_t asteals = 0;
  std::uint32_t epoch = 0;
  std::uint32_t itasks = 0;
  std::uint32_t tail = 0;

  static StealVal decode(std::uint64_t word) noexcept {
    return StealVal{
        static_cast<std::uint32_t>(AStealsField::get(word)),
        static_cast<std::uint32_t>(EpochField::get(word)),
        static_cast<std::uint32_t>(ITasksField::get(word)),
        static_cast<std::uint32_t>(TailField::get(word)),
    };
  }

  std::uint64_t encode() const noexcept {
    // checked_set: an out-of-range field here would otherwise be silently
    // truncated into a *neighboring* field's bits — e.g. itasks >
    // kMaxITasks corrupting the epoch, which thieves then misread.
    std::uint64_t w = 0;
    w = AStealsField::checked_set(w, asteals);
    w = EpochField::checked_set(w, epoch);
    w = ITasksField::checked_set(w, itasks);
    w = TailField::checked_set(w, tail);
    return w;
  }

  bool locked() const noexcept { return epoch >= kNumEpochs; }

  friend bool operator==(const StealVal& a, const StealVal& b) noexcept {
    return a.asteals == b.asteals && a.epoch == b.epoch &&
           a.itasks == b.itasks && a.tail == b.tail;
  }
};

/// The sentinel the owner swaps in to disable stealing. itasks = 0 keeps
/// even a thief that ignores the epoch from computing a block.
inline constexpr std::uint64_t locked_sentinel() noexcept {
  std::uint64_t w = 0;
  w = EpochField::set(w, kLockedEpoch);
  return w;
}

// ----------------------------------------------------------------------
// Steal-half block sequence. An allotment of `itasks` is consumed in
// halving blocks: block i takes max(1, remaining/2). For itasks = 150 the
// sequence is {75,37,19,9,5,2,1,1,1} — the paper's §4 worked example.

/// Number of blocks (i.e. the number of successful steals an allotment
/// supports). 0 for an empty allotment.
std::uint32_t steal_block_count(std::uint32_t itasks) noexcept;

/// Size of block `idx` (idx < steal_block_count(itasks)).
std::uint32_t steal_block_size(std::uint32_t itasks, std::uint32_t idx) noexcept;

/// Tasks preceding block `idx` — the displacement from the allotment tail
/// ("skipping previously claimed work", §4.1). Valid for
/// idx <= steal_block_count(itasks); at idx == count it returns itasks.
std::uint32_t steal_block_offset(std::uint32_t itasks,
                                 std::uint32_t idx) noexcept;

/// Convenience: size and offset together (one walk of the sequence).
struct StealBlock {
  std::uint32_t offset = 0;  ///< tasks before this block
  std::uint32_t size = 0;    ///< 0 when idx is past the last block
};
StealBlock steal_block(std::uint32_t itasks, std::uint32_t idx) noexcept;

}  // namespace sws::core
