#include "core/task_registry.hpp"

#include "common/assert.hpp"

namespace sws::core {

TaskFnId TaskRegistry::register_fn(std::string name, TaskFn fn) {
  SWS_CHECK(!by_name_.count(name), "duplicate task function name");
  SWS_CHECK(static_cast<bool>(fn), "null task function");
  const auto id = static_cast<TaskFnId>(fns_.size());
  fns_.push_back(std::move(fn));
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

const TaskFn& TaskRegistry::fn(TaskFnId id) const {
  SWS_ASSERT_MSG(id < fns_.size(), "unknown task function id");
  return fns_[id];
}

TaskFnId TaskRegistry::id_of(const std::string& name) const {
  const auto it = by_name_.find(name);
  SWS_CHECK(it != by_name_.end(), "unknown task function name: " + name);
  return it->second;
}

}  // namespace sws::core
