#include "core/termination.hpp"

#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "core/recovery.hpp"

namespace sws::core {

// -------------------------------------------------------------- counter

CounterTermination::CounterTermination(pgas::Runtime& rt)
    : counter_(rt.heap().alloc(sizeof(std::uint64_t), 8)),
      local_(static_cast<std::size_t>(rt.npes())) {}

void CounterTermination::reset_pe(pgas::PeContext& ctx) {
  local_[static_cast<std::size_t>(ctx.pe())] = PerPe{};
  if (ctx.pe() == 0)
    std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(ctx.local(counter_)))
        .store(0, std::memory_order_seq_cst);
}

void CounterTermination::flush(pgas::PeContext& ctx) {
  auto& me = local_[static_cast<std::size_t>(ctx.pe())];
  if (me.unflushed == 0) return;
  // Two's-complement add applies signed deltas to the u64 counter.
  ctx.fabric().amo_fetch_add(ctx.pe(), /*target=*/0, counter_.off,
                             static_cast<std::uint64_t>(me.unflushed));
  me.unflushed = 0;
}

void CounterTermination::count_created(pgas::PeContext& ctx,
                                       std::uint64_t n) {
  local_[static_cast<std::size_t>(ctx.pe())].unflushed +=
      static_cast<std::int64_t>(n);
}

void CounterTermination::count_completed(pgas::PeContext& ctx,
                                         std::uint64_t n) {
  local_[static_cast<std::size_t>(ctx.pe())].unflushed -=
      static_cast<std::int64_t>(n);
}

void CounterTermination::task_boundary(pgas::PeContext& ctx) {
  // The safety invariant: never sit on a positive delta. Negative deltas
  // only make the global counter an over-estimate, so they may batch until
  // the next idle check.
  if (local_[static_cast<std::size_t>(ctx.pe())].unflushed > 0) flush(ctx);
}

bool CounterTermination::check(pgas::PeContext& ctx) {
  flush(ctx);
  return ctx.fetch(/*target=*/0, counter_) == 0;
}

// ---------------------------------------------------------------- token

TokenTermination::TokenTermination(pgas::Runtime& rt)
    : space_(rt.heap().alloc(kBytes, 8)),
      local_(static_cast<std::size_t>(rt.npes())) {}

void TokenTermination::reset_pe(pgas::PeContext& ctx) {
  local_[static_cast<std::size_t>(ctx.pe())] = PerPe{};
  std::memset(ctx.local(space_), 0, kBytes);
}

void TokenTermination::count_created(pgas::PeContext& ctx, std::uint64_t n) {
  local_[static_cast<std::size_t>(ctx.pe())].created += n;
}

void TokenTermination::count_completed(pgas::PeContext& ctx,
                                       std::uint64_t n) {
  local_[static_cast<std::size_t>(ctx.pe())].executed += n;
}

void TokenTermination::task_boundary(pgas::PeContext& ctx) { (void)ctx; }

void TokenTermination::forward_token(pgas::PeContext& ctx,
                                     std::uint64_t created,
                                     std::uint64_t executed,
                                     std::uint64_t wave) {
  const int next = (ctx.pe() + 1) % ctx.npes();
  const std::uint64_t payload[3] = {created, executed, wave};
  ctx.fabric().put_words(ctx.pe(), next, space_.off + kCreatedOff, payload, 3);
  // Data first, then the valid flag — blocking ops complete in order, so
  // the receiver can never observe a half-written token.
  ctx.fabric().amo_set(ctx.pe(), next, space_.off + kValidOff, 1);
}

bool TokenTermination::check(pgas::PeContext& ctx) {
  auto& me = local_[static_cast<std::size_t>(ctx.pe())];

  if (ctx.npes() == 1) return me.created == me.executed;
  if (ctx.local_load(space_.plus(kFlagOff)) != 0) return true;

  const bool token_here = ctx.local_load(space_.plus(kValidOff)) != 0;

  if (ctx.pe() != 0) {
    if (!token_here) return false;
    const std::uint64_t c = ctx.local_load(space_.plus(kCreatedOff));
    const std::uint64_t e = ctx.local_load(space_.plus(kExecutedOff));
    const std::uint64_t w = ctx.local_load(space_.plus(kWaveOff));
    ctx.fabric().amo_set(ctx.pe(), ctx.pe(), space_.off + kValidOff, 0);
    forward_token(ctx, c + me.created, e + me.executed, w);
    return false;
  }

  // PE 0: wave initiator and terminator.
  if (!me.initiated) {
    me.initiated = true;
    forward_token(ctx, me.created, me.executed, /*wave=*/1);
    return false;
  }
  if (!token_here) return false;

  const std::uint64_t c = ctx.local_load(space_.plus(kCreatedOff));
  const std::uint64_t e = ctx.local_load(space_.plus(kExecutedOff));
  const std::uint64_t w = ctx.local_load(space_.plus(kWaveOff));
  ctx.fabric().amo_set(ctx.pe(), ctx.pe(), space_.off + kValidOff, 0);

  // Four-counter criterion (conservative form): two consecutive waves with
  // identical, balanced monotonic sums ⇒ no task was created or executed
  // between them and none is outstanding.
  if (me.prev_valid && c == e && c == me.prev_c && e == me.prev_e) {
    for (int pe = 1; pe < ctx.npes(); ++pe)
      ctx.fabric().amo_set(ctx.pe(), pe, space_.off + kFlagOff, 1);
    return true;
  }
  me.prev_c = c;
  me.prev_e = e;
  me.prev_valid = true;
  forward_token(ctx, me.created, me.executed, w + 1);
  return false;
}

// ------------------------------------------------------------- resilient

ResilientTermination::ResilientTermination(
    pgas::Runtime& rt, std::unique_ptr<TerminationDetector> inner,
    DeathRegistry* registry)
    : npes_(rt.npes()),
      slots_(rt.heap().alloc(
          sizeof(std::uint64_t) * static_cast<std::size_t>(rt.npes()), 64)),
      done_(rt.heap().alloc(sizeof(std::uint64_t), 8)),
      inner_(std::move(inner)),
      registry_(registry),
      local_(static_cast<std::size_t>(rt.npes())) {
  SWS_ASSERT(inner_ != nullptr && registry_ != nullptr);
}

ResilientTermination::~ResilientTermination() = default;

TerminationKind ResilientTermination::kind() const noexcept {
  return inner_->kind();
}

void ResilientTermination::reset_pe(pgas::PeContext& ctx) {
  auto& me = local_[static_cast<std::size_t>(ctx.pe())];
  me = PerPe{};
  me.prev_seqs.assign(static_cast<std::size_t>(npes_), 0);
  ctx.heap().zero(ctx.pe(), slots_,
                  sizeof(std::uint64_t) * static_cast<std::size_t>(npes_));
  ctx.heap().zero(ctx.pe(), done_, sizeof(std::uint64_t));
  // The inner detector is inert while we're installed, but its symmetric
  // state must still reset so kind()-based tests and a later crash-free
  // run see a clean detector.
  inner_->reset_pe(ctx);
}

// Counting is local-only: the wave protocol needs exact local totals, and
// forwarding to the inner detector would send real traffic at a PE (the
// counter home, the ring successor) that may already be dead.
void ResilientTermination::count_created(pgas::PeContext& ctx,
                                         std::uint64_t n) {
  (void)ctx;
  local_[static_cast<std::size_t>(ctx.pe())].created += n;
}

void ResilientTermination::count_completed(pgas::PeContext& ctx,
                                           std::uint64_t n) {
  (void)ctx;
  local_[static_cast<std::size_t>(ctx.pe())].executed += n;
}

void ResilientTermination::task_boundary(pgas::PeContext& ctx) { (void)ctx; }

bool ResilientTermination::check(pgas::PeContext& ctx) {
  auto& me = local_[static_cast<std::size_t>(ctx.pe())];
  if (ctx.local_load(done_) != 0) return true;

  const int coord = registry_->lowest_live(ctx.pe());
  if (coord != ctx.pe()) {
    // Reporter. Settle our in-flight nbi ops first so "idle" is a stable
    // claim (an unflushed completion notification could still wake a
    // peer), then publish. amo_swap rather than amo_set: the returned
    // prior word is poison iff the coordinator is dead, which is how
    // coordinator failover propagates without any extra probe.
    ctx.quiet();
    ++me.seq;
    const std::uint64_t old = ctx.fabric().amo_swap(
        ctx.pe(), coord,
        slots_.off + static_cast<std::uint64_t>(ctx.pe()) * 8,
        encode_report(me.created + me.executed, me.seq));
    if (old == net::kDeadFetchValue) registry_->note_dead(ctx.pe(), coord);
    return false;
  }
  return coordinator_check(ctx);
}

bool ResilientTermination::coordinator_check(pgas::PeContext& ctx) {
  auto& me = local_[static_cast<std::size_t>(ctx.pe())];

  // A reporter that dies silently leaves a stale slot that would stall
  // waves forever; lease-paced probing is the only way to learn about it.
  if (ctx.now() - me.last_probe >= registry_->config().lease_ns) {
    registry_->probe_all(ctx);
    me.last_probe = ctx.now();
  }
  const int known = registry_->known_count(ctx.pe());
  if (known != me.prev_known) {
    me.prev_known = known;
    me.have_prev = false;  // membership changed: restart the double wave
  }

  ctx.quiet();
  std::uint64_t sum = me.created + me.executed;  // own totals, own idleness
  bool fresh = true;
  std::vector<std::uint16_t> seqs(static_cast<std::size_t>(npes_), 0);
  for (int r = 0; r < npes_; ++r) {
    if (r == ctx.pe() || registry_->known_dead(ctx.pe(), r)) continue;
    const std::uint64_t v =
        ctx.local_load(slots_.plus(static_cast<std::uint64_t>(r) * 8));
    if ((v & 0b11) != 0b11) {
      me.have_prev = false;  // r never reported / not idle: no wave yet
      return false;
    }
    const auto s = static_cast<std::uint16_t>((v >> 2) & 0xFFFF);
    seqs[static_cast<std::size_t>(r)] = s;
    if (me.have_prev && s == me.prev_seqs[static_cast<std::size_t>(r)])
      fresh = false;
    sum += v >> 18;
  }

  if (me.have_prev && fresh && sum == me.prev_sum) {
    // Two consecutive all-idle waves, every report renewed in between,
    // activity sum unmoved: nothing was created or executed anywhere and
    // every survivor was empty at both ends. Quiesced — broadcast.
    for (int r = 0; r < npes_; ++r) {
      if (r == ctx.pe() || registry_->known_dead(ctx.pe(), r)) continue;
      ctx.fabric().amo_set(ctx.pe(), r, done_.off, 1);
    }
    ctx.fabric().amo_set(ctx.pe(), ctx.pe(), done_.off, 1);
    return true;
  }
  me.prev_sum = sum;
  me.prev_seqs = std::move(seqs);
  me.have_prev = true;
  return false;
}

void ResilientTermination::on_exit(pgas::PeContext& ctx) {
  // Gossip on exit: if the coordinator died partway through its done
  // broadcast, whoever did get the flag re-spreads it, so no survivor can
  // be stranded waiting on a dead coordinator's half-finished broadcast.
  if (ctx.local_load(done_) == 0) return;
  for (int r = 0; r < npes_; ++r) {
    if (r == ctx.pe() || registry_->known_dead(ctx.pe(), r)) continue;
    ctx.fabric().amo_set(ctx.pe(), r, done_.off, 1);
  }
}

std::unique_ptr<TerminationDetector> make_detector(pgas::Runtime& rt,
                                                   TerminationKind kind) {
  switch (kind) {
    case TerminationKind::kCounter:
      return std::make_unique<CounterTermination>(rt);
    case TerminationKind::kToken:
      return std::make_unique<TokenTermination>(rt);
  }
  SWS_UNREACHABLE();
}

}  // namespace sws::core
