#include "core/termination.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace sws::core {

// -------------------------------------------------------------- counter

CounterTermination::CounterTermination(pgas::Runtime& rt)
    : counter_(rt.heap().alloc(sizeof(std::uint64_t), 8)),
      local_(static_cast<std::size_t>(rt.npes())) {}

void CounterTermination::reset_pe(pgas::PeContext& ctx) {
  local_[static_cast<std::size_t>(ctx.pe())] = PerPe{};
  if (ctx.pe() == 0)
    std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(ctx.local(counter_)))
        .store(0, std::memory_order_seq_cst);
}

void CounterTermination::flush(pgas::PeContext& ctx) {
  auto& me = local_[static_cast<std::size_t>(ctx.pe())];
  if (me.unflushed == 0) return;
  // Two's-complement add applies signed deltas to the u64 counter.
  ctx.fabric().amo_fetch_add(ctx.pe(), /*target=*/0, counter_.off,
                             static_cast<std::uint64_t>(me.unflushed));
  me.unflushed = 0;
}

void CounterTermination::count_created(pgas::PeContext& ctx,
                                       std::uint64_t n) {
  local_[static_cast<std::size_t>(ctx.pe())].unflushed +=
      static_cast<std::int64_t>(n);
}

void CounterTermination::count_completed(pgas::PeContext& ctx,
                                         std::uint64_t n) {
  local_[static_cast<std::size_t>(ctx.pe())].unflushed -=
      static_cast<std::int64_t>(n);
}

void CounterTermination::task_boundary(pgas::PeContext& ctx) {
  // The safety invariant: never sit on a positive delta. Negative deltas
  // only make the global counter an over-estimate, so they may batch until
  // the next idle check.
  if (local_[static_cast<std::size_t>(ctx.pe())].unflushed > 0) flush(ctx);
}

bool CounterTermination::check(pgas::PeContext& ctx) {
  flush(ctx);
  return ctx.fetch(/*target=*/0, counter_) == 0;
}

// ---------------------------------------------------------------- token

TokenTermination::TokenTermination(pgas::Runtime& rt)
    : space_(rt.heap().alloc(kBytes, 8)),
      local_(static_cast<std::size_t>(rt.npes())) {}

void TokenTermination::reset_pe(pgas::PeContext& ctx) {
  local_[static_cast<std::size_t>(ctx.pe())] = PerPe{};
  std::memset(ctx.local(space_), 0, kBytes);
}

void TokenTermination::count_created(pgas::PeContext& ctx, std::uint64_t n) {
  local_[static_cast<std::size_t>(ctx.pe())].created += n;
}

void TokenTermination::count_completed(pgas::PeContext& ctx,
                                       std::uint64_t n) {
  local_[static_cast<std::size_t>(ctx.pe())].executed += n;
}

void TokenTermination::task_boundary(pgas::PeContext& ctx) { (void)ctx; }

void TokenTermination::forward_token(pgas::PeContext& ctx,
                                     std::uint64_t created,
                                     std::uint64_t executed,
                                     std::uint64_t wave) {
  const int next = (ctx.pe() + 1) % ctx.npes();
  const std::uint64_t payload[3] = {created, executed, wave};
  ctx.fabric().put_words(ctx.pe(), next, space_.off + kCreatedOff, payload, 3);
  // Data first, then the valid flag — blocking ops complete in order, so
  // the receiver can never observe a half-written token.
  ctx.fabric().amo_set(ctx.pe(), next, space_.off + kValidOff, 1);
}

bool TokenTermination::check(pgas::PeContext& ctx) {
  auto& me = local_[static_cast<std::size_t>(ctx.pe())];

  if (ctx.npes() == 1) return me.created == me.executed;
  if (ctx.local_load(space_.plus(kFlagOff)) != 0) return true;

  const bool token_here = ctx.local_load(space_.plus(kValidOff)) != 0;

  if (ctx.pe() != 0) {
    if (!token_here) return false;
    const std::uint64_t c = ctx.local_load(space_.plus(kCreatedOff));
    const std::uint64_t e = ctx.local_load(space_.plus(kExecutedOff));
    const std::uint64_t w = ctx.local_load(space_.plus(kWaveOff));
    ctx.fabric().amo_set(ctx.pe(), ctx.pe(), space_.off + kValidOff, 0);
    forward_token(ctx, c + me.created, e + me.executed, w);
    return false;
  }

  // PE 0: wave initiator and terminator.
  if (!me.initiated) {
    me.initiated = true;
    forward_token(ctx, me.created, me.executed, /*wave=*/1);
    return false;
  }
  if (!token_here) return false;

  const std::uint64_t c = ctx.local_load(space_.plus(kCreatedOff));
  const std::uint64_t e = ctx.local_load(space_.plus(kExecutedOff));
  const std::uint64_t w = ctx.local_load(space_.plus(kWaveOff));
  ctx.fabric().amo_set(ctx.pe(), ctx.pe(), space_.off + kValidOff, 0);

  // Four-counter criterion (conservative form): two consecutive waves with
  // identical, balanced monotonic sums ⇒ no task was created or executed
  // between them and none is outstanding.
  if (me.prev_valid && c == e && c == me.prev_c && e == me.prev_e) {
    for (int pe = 1; pe < ctx.npes(); ++pe)
      ctx.fabric().amo_set(ctx.pe(), pe, space_.off + kFlagOff, 1);
    return true;
  }
  me.prev_c = c;
  me.prev_e = e;
  me.prev_valid = true;
  forward_token(ctx, me.created, me.executed, w + 1);
  return false;
}

std::unique_ptr<TerminationDetector> make_detector(pgas::Runtime& rt,
                                                   TerminationKind kind) {
  switch (kind) {
    case TerminationKind::kCounter:
      return std::make_unique<CounterTermination>(rt);
    case TerminationKind::kToken:
      return std::make_unique<TokenTermination>(rt);
  }
  SWS_UNREACHABLE();
}

}  // namespace sws::core
