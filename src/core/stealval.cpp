#include "core/stealval.hpp"

namespace sws::core {

std::uint32_t steal_block_count(std::uint32_t itasks) noexcept {
  std::uint32_t remaining = itasks;
  std::uint32_t count = 0;
  while (remaining > 0) {
    const std::uint32_t take = remaining > 1 ? remaining / 2 : 1;
    remaining -= take;
    ++count;
  }
  return count;
}

StealBlock steal_block(std::uint32_t itasks, std::uint32_t idx) noexcept {
  std::uint32_t remaining = itasks;
  std::uint32_t offset = 0;
  for (std::uint32_t i = 0;; ++i) {
    if (remaining == 0) return StealBlock{offset, 0};  // past the last block
    const std::uint32_t take = remaining > 1 ? remaining / 2 : 1;
    if (i == idx) return StealBlock{offset, take};
    offset += take;
    remaining -= take;
  }
}

std::uint32_t steal_block_size(std::uint32_t itasks,
                               std::uint32_t idx) noexcept {
  return steal_block(itasks, idx).size;
}

std::uint32_t steal_block_offset(std::uint32_t itasks,
                                 std::uint32_t idx) noexcept {
  return steal_block(itasks, idx).offset;
}

}  // namespace sws::core
