// Per-PE and aggregated task-pool statistics — the quantities the paper's
// evaluation plots: steal time (successful steals), search time (failed
// attempts while hunting for work), task counts, and load-balance data.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "net/types.hpp"

namespace sws::core {

/// Exhaustive per-PE time taxonomy: every nanosecond of a PE's run is
/// attributed to exactly one category, and the categories sum *exactly* to
/// the PE's elapsed virtual time (tests/test_obs.cpp enforces it). The
/// scheduler transitions between categories at phase boundaries; the
/// windowed sampler reads the live accounting mid-run.
enum class PoolPhase : std::uint8_t {
  kWorking = 0,   ///< executing tasks, local queue ops, inbox drains, setup
  kProbing,       ///< steal attempts that end empty-handed (search)
  kStealing,      ///< steal attempts that land work (transfer included)
  kParked,        ///< inter-attempt backoff pauses
  kBlockedNbi,    ///< waiting for outstanding non-blocking ops to complete
  kRecovering,    ///< crash-recovery sweeps of dead PEs' queues
  kIdleTerm,      ///< termination detection + final teardown barrier
  kCount_,
};

inline constexpr std::size_t kNumPoolPhases =
    static_cast<std::size_t>(PoolPhase::kCount_);

const char* pool_phase_name(PoolPhase p) noexcept;

struct WorkerStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_spawned = 0;   ///< children + seeds added by this PE
  std::uint64_t tasks_stolen = 0;    ///< tasks this PE pulled from victims
  std::uint64_t bytes_stolen = 0;    ///< payload bytes those tasks carried
  std::uint64_t steals_ok = 0;
  std::uint64_t steal_attempts = 0;  ///< successful + failed
  /// Steal traffic by victim tier distance (index t-1 = tier t): the
  /// per-tier op mix the locality ablation compares across policies.
  std::array<std::uint64_t, net::kMaxTiers> steal_attempts_by_tier{};
  std::array<std::uint64_t, net::kMaxTiers> steals_ok_by_tier{};
  net::Nanos steal_time_ns = 0;      ///< time in successful steal operations
  net::Nanos search_time_ns = 0;     ///< failed attempts + inter-attempt backoff
  net::Nanos term_check_ns = 0;      ///< time in termination detection
  net::Nanos compute_time_ns = 0;    ///< task bodies (charged compute)
  net::Nanos run_time_ns = 0;        ///< this PE's whole-run time
  /// Exhaustive phase taxonomy (see PoolPhase): indexed by category, sums
  /// exactly to the elapsed time between run_pe entry and teardown
  /// (`accounted_ns`). Unlike steal/search_time_ns above — which measure
  /// only the op spans the paper plots — this covers *every* nanosecond.
  std::array<net::Nanos, kNumPoolPhases> phase_ns{};
  net::Nanos accounted_ns = 0;       ///< total span the taxonomy covers
  // Crash-recovery accounting (zero in crash-free runs).
  std::uint64_t tasks_reexecuted = 0;  ///< fenced from dead claims, re-run
  std::uint64_t tasks_rerouted = 0;    ///< inbox pushes redirected from dead
  std::uint64_t deaths_witnessed = 0;  ///< kDeathDetected events on this PE
  /// Per-successful-steal latency distribution (ns, log2 buckets) — the
  /// tail view behind the Fig 6/7e/8e means.
  LogHistogram steal_latency;
  /// Blocks per successful steal claim (SWS bulk mode; all-1s at
  /// bulk_claim_max = 1) — the mean-claim-size view the bulk ablation plots.
  LogHistogram claim_blocks;

  void merge(const WorkerStats& o) noexcept {
    tasks_executed += o.tasks_executed;
    tasks_spawned += o.tasks_spawned;
    tasks_stolen += o.tasks_stolen;
    bytes_stolen += o.bytes_stolen;
    steals_ok += o.steals_ok;
    steal_attempts += o.steal_attempts;
    for (std::size_t i = 0; i < steal_attempts_by_tier.size(); ++i) {
      steal_attempts_by_tier[i] += o.steal_attempts_by_tier[i];
      steals_ok_by_tier[i] += o.steals_ok_by_tier[i];
    }
    steal_time_ns += o.steal_time_ns;
    search_time_ns += o.search_time_ns;
    term_check_ns += o.term_check_ns;
    compute_time_ns += o.compute_time_ns;
    run_time_ns = run_time_ns > o.run_time_ns ? run_time_ns : o.run_time_ns;
    for (std::size_t i = 0; i < phase_ns.size(); ++i)
      phase_ns[i] += o.phase_ns[i];
    accounted_ns += o.accounted_ns;
    tasks_reexecuted += o.tasks_reexecuted;
    tasks_rerouted += o.tasks_rerouted;
    deaths_witnessed += o.deaths_witnessed;
    steal_latency.merge(o.steal_latency);
    claim_blocks.merge(o.claim_blocks);
  }
};

/// Pool-level aggregation with per-PE distribution summaries.
struct PoolRunReport {
  WorkerStats total;             ///< sums (run_time = max across PEs)
  Summary per_pe_executed;       ///< load balance across PEs
  Summary per_pe_steal_ms;
  Summary per_pe_search_ms;
  int npes = 0;

  /// Approximate steal-latency quantile in nanoseconds (q in [0,1]).
  std::uint64_t steal_latency_ns(double q) const {
    return total.steal_latency.quantile(q);
  }

  std::string to_string() const;
};

PoolRunReport aggregate_reports(const std::vector<WorkerStats>& per_pe);

}  // namespace sws::core
