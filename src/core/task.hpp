// Portable task descriptors (paper §2.1).
//
// A task names a registered function plus an inline payload of POD state.
// Descriptors serialize into fixed-size queue slots:
//   [u32 fn_id][u32 payload_len][payload bytes ...]
// so they can be moved between PEs with plain one-sided copies. The slot
// size is a queue-configuration knob — the paper benchmarks 24-byte and
// 192-byte tasks (Fig 6) and 32/48-byte application tasks (Table 2).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "common/assert.hpp"

namespace sws::core {

using TaskFnId = std::uint32_t;

inline constexpr std::uint32_t kTaskHeaderBytes = 8;
inline constexpr std::uint32_t kMaxTaskPayload = 248;

class Task {
 public:
  Task() = default;

  Task(TaskFnId fn, const void* payload, std::uint32_t payload_len)
      : fn_(fn), len_(payload_len) {
    SWS_CHECK(payload_len <= kMaxTaskPayload, "task payload too large");
    if (payload_len > 0) std::memcpy(buf_.data(), payload, payload_len);
  }

  /// Build a task whose payload is a trivially-copyable value.
  template <typename T>
  static Task of(TaskFnId fn, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "task payloads must be trivially copyable");
    static_assert(sizeof(T) <= kMaxTaskPayload, "payload type too large");
    return Task(fn, &value, sizeof(T));
  }

  TaskFnId fn() const noexcept { return fn_; }
  std::uint32_t payload_len() const noexcept { return len_; }
  std::span<const std::byte> payload() const noexcept {
    return {buf_.data(), len_};
  }

  /// Reinterpret the payload as a trivially-copyable value.
  template <typename T>
  T payload_as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    SWS_ASSERT_MSG(sizeof(T) == len_, "payload size mismatch");
    T out;
    std::memcpy(&out, buf_.data(), sizeof(T));
    return out;
  }

  /// Serialized footprint of this task.
  std::uint32_t serialized_bytes() const noexcept {
    return kTaskHeaderBytes + len_;
  }

  /// Write into a queue slot of `slot_bytes` (must fit).
  void serialize(std::byte* slot, std::uint32_t slot_bytes) const;

  /// Read back from a queue slot.
  static Task deserialize(const std::byte* slot, std::uint32_t slot_bytes);

 private:
  TaskFnId fn_ = 0;
  std::uint32_t len_ = 0;
  std::array<std::byte, kMaxTaskPayload> buf_{};
};

}  // namespace sws::core
