// Distributed termination detection (paper §2.1: "this mode of operation
// requires distributed termination detection").
//
// Two detectors, selectable per pool:
//
//  * CounterTermination (default) — a single outstanding-task counter on
//    PE 0. Each worker applies the net delta (children spawned − tasks
//    completed) with batched remote fetch-adds under the invariant that a
//    worker's *unflushed* delta is never positive: positive deltas flush
//    immediately, negative deltas may batch. Then
//        global_counter = outstanding − Σ unflushed_i  with unflushed_i ≤ 0
//    so global_counter == 0 implies outstanding == 0 — a single remote
//    read suffices and can never report termination early.
//
//  * TokenTermination — Mattern's four-counter / two-wave scheme over a
//    ring: a token gathers every PE's (created, executed) totals; two
//    consecutive waves observing the same quiescent sums prove
//    termination. Message-free between waves; kept as the conservative
//    alternative and as a cross-check in tests.
#pragma once

#include <cstdint>
#include <memory>

#include "pgas/runtime.hpp"

namespace sws::core {

enum class TerminationKind { kCounter, kToken };

class TerminationDetector {
 public:
  virtual ~TerminationDetector() = default;

  virtual TerminationKind kind() const noexcept = 0;

  /// Collective per-PE reset; barrier before use.
  virtual void reset_pe(pgas::PeContext& ctx) = 0;

  /// Account `n` tasks entering the pool from this PE (seeds or spawns).
  virtual void count_created(pgas::PeContext& ctx, std::uint64_t n) = 0;
  /// Account `n` tasks fully executed by this PE.
  virtual void count_completed(pgas::PeContext& ctx, std::uint64_t n) = 0;

  /// Hook at every task boundary — flush policy lives here.
  virtual void task_boundary(pgas::PeContext& ctx) = 0;

  /// Idle-time poll: true once global termination is certain.
  virtual bool check(pgas::PeContext& ctx) = 0;
};

class CounterTermination final : public TerminationDetector {
 public:
  explicit CounterTermination(pgas::Runtime& rt);

  TerminationKind kind() const noexcept override {
    return TerminationKind::kCounter;
  }
  void reset_pe(pgas::PeContext& ctx) override;
  void count_created(pgas::PeContext& ctx, std::uint64_t n) override;
  void count_completed(pgas::PeContext& ctx, std::uint64_t n) override;
  void task_boundary(pgas::PeContext& ctx) override;
  bool check(pgas::PeContext& ctx) override;

 private:
  void flush(pgas::PeContext& ctx);

  struct alignas(64) PerPe {
    std::int64_t unflushed = 0;
  };
  pgas::SymPtr counter_;  ///< lives on PE 0
  std::vector<PerPe> local_;
};

class TokenTermination final : public TerminationDetector {
 public:
  explicit TokenTermination(pgas::Runtime& rt);

  TerminationKind kind() const noexcept override {
    return TerminationKind::kToken;
  }
  void reset_pe(pgas::PeContext& ctx) override;
  void count_created(pgas::PeContext& ctx, std::uint64_t n) override;
  void count_completed(pgas::PeContext& ctx, std::uint64_t n) override;
  void task_boundary(pgas::PeContext& ctx) override;
  bool check(pgas::PeContext& ctx) override;

 private:
  // Symmetric layout per PE: {token_valid, token_created, token_executed,
  // token_wave, term_flag} — the token is "present" at a PE when its
  // token_valid word is nonzero.
  static constexpr std::uint64_t kValidOff = 0;
  static constexpr std::uint64_t kCreatedOff = 8;
  static constexpr std::uint64_t kExecutedOff = 16;
  static constexpr std::uint64_t kWaveOff = 24;
  static constexpr std::uint64_t kFlagOff = 32;
  static constexpr std::size_t kBytes = 40;

  void forward_token(pgas::PeContext& ctx, std::uint64_t created,
                     std::uint64_t executed, std::uint64_t wave);

  struct alignas(64) PerPe {
    std::uint64_t created = 0;   ///< exact local totals (no remote flushes)
    std::uint64_t executed = 0;
    std::uint64_t prev_c = 0;    ///< PE0: sums seen by the previous wave
    std::uint64_t prev_e = 0;
    bool prev_valid = false;
    bool initiated = false;      ///< PE0: a wave is in flight
  };
  pgas::SymPtr space_;
  std::vector<PerPe> local_;
};

/// Factory.
std::unique_ptr<TerminationDetector> make_detector(pgas::Runtime& rt,
                                                   TerminationKind kind);

}  // namespace sws::core
