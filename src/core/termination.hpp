// Distributed termination detection (paper §2.1: "this mode of operation
// requires distributed termination detection").
//
// Two detectors, selectable per pool:
//
//  * CounterTermination (default) — a single outstanding-task counter on
//    PE 0. Each worker applies the net delta (children spawned − tasks
//    completed) with batched remote fetch-adds under the invariant that a
//    worker's *unflushed* delta is never positive: positive deltas flush
//    immediately, negative deltas may batch. Then
//        global_counter = outstanding − Σ unflushed_i  with unflushed_i ≤ 0
//    so global_counter == 0 implies outstanding == 0 — a single remote
//    read suffices and can never report termination early.
//
//  * TokenTermination — Mattern's four-counter / two-wave scheme over a
//    ring: a token gathers every PE's (created, executed) totals; two
//    consecutive waves observing the same quiescent sums prove
//    termination. Message-free between waves; kept as the conservative
//    alternative and as a cross-check in tests.
// A third, crash-tolerant detector wraps either of the above when a crash
// plan is armed: ResilientTermination (bottom of this file) replaces the
// counter/token protocol with an idle-wave consensus over the surviving
// set, because both base detectors hang once a PE dies (a dead PE's
// unflushed deltas keep the global counter nonzero forever; a token
// forwarded to a dead PE vanishes). See docs/resilience.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pgas/runtime.hpp"

namespace sws::core {

class DeathRegistry;

enum class TerminationKind { kCounter, kToken };

class TerminationDetector {
 public:
  virtual ~TerminationDetector() = default;

  virtual TerminationKind kind() const noexcept = 0;

  /// Collective per-PE reset; barrier before use.
  virtual void reset_pe(pgas::PeContext& ctx) = 0;

  /// Account `n` tasks entering the pool from this PE (seeds or spawns).
  virtual void count_created(pgas::PeContext& ctx, std::uint64_t n) = 0;
  /// Account `n` tasks fully executed by this PE.
  virtual void count_completed(pgas::PeContext& ctx, std::uint64_t n) = 0;

  /// Hook at every task boundary — flush policy lives here.
  virtual void task_boundary(pgas::PeContext& ctx) = 0;

  /// Idle-time poll: true once global termination is certain.
  virtual bool check(pgas::PeContext& ctx) = 0;

  /// Called once by the scheduler as this PE leaves its processing loop.
  /// Default: nothing. ResilientTermination gossips the done flag here so
  /// a coordinator that dies mid-broadcast cannot strand survivors.
  virtual void on_exit(pgas::PeContext& ctx) { (void)ctx; }
};

class CounterTermination final : public TerminationDetector {
 public:
  explicit CounterTermination(pgas::Runtime& rt);

  TerminationKind kind() const noexcept override {
    return TerminationKind::kCounter;
  }
  void reset_pe(pgas::PeContext& ctx) override;
  void count_created(pgas::PeContext& ctx, std::uint64_t n) override;
  void count_completed(pgas::PeContext& ctx, std::uint64_t n) override;
  void task_boundary(pgas::PeContext& ctx) override;
  bool check(pgas::PeContext& ctx) override;

 private:
  void flush(pgas::PeContext& ctx);

  struct alignas(64) PerPe {
    std::int64_t unflushed = 0;
  };
  pgas::SymPtr counter_;  ///< lives on PE 0
  std::vector<PerPe> local_;
};

class TokenTermination final : public TerminationDetector {
 public:
  explicit TokenTermination(pgas::Runtime& rt);

  TerminationKind kind() const noexcept override {
    return TerminationKind::kToken;
  }
  void reset_pe(pgas::PeContext& ctx) override;
  void count_created(pgas::PeContext& ctx, std::uint64_t n) override;
  void count_completed(pgas::PeContext& ctx, std::uint64_t n) override;
  void task_boundary(pgas::PeContext& ctx) override;
  bool check(pgas::PeContext& ctx) override;

 private:
  // Symmetric layout per PE: {token_valid, token_created, token_executed,
  // token_wave, term_flag} — the token is "present" at a PE when its
  // token_valid word is nonzero.
  static constexpr std::uint64_t kValidOff = 0;
  static constexpr std::uint64_t kCreatedOff = 8;
  static constexpr std::uint64_t kExecutedOff = 16;
  static constexpr std::uint64_t kWaveOff = 24;
  static constexpr std::uint64_t kFlagOff = 32;
  static constexpr std::size_t kBytes = 40;

  void forward_token(pgas::PeContext& ctx, std::uint64_t created,
                     std::uint64_t executed, std::uint64_t wave);

  struct alignas(64) PerPe {
    std::uint64_t created = 0;   ///< exact local totals (no remote flushes)
    std::uint64_t executed = 0;
    std::uint64_t prev_c = 0;    ///< PE0: sums seen by the previous wave
    std::uint64_t prev_e = 0;
    bool prev_valid = false;
    bool initiated = false;      ///< PE0: a wave is in flight
  };
  pgas::SymPtr space_;
  std::vector<PerPe> local_;
};

/// Crash-tolerant idle-wave consensus, installed by the pool only when the
/// runtime's fault plan schedules crashes (never constructed otherwise —
/// crash-free runs keep the wrapped detector's exact traffic).
///
/// Protocol: every idle PE publishes a report into the coordinator's slot
/// for it — coordinator = lowest PE the reporter believes alive — packed
/// as {activity:46 | seq:16 | idle:1 | valid:1}, where activity is the
/// PE's created+executed total. The top bit is effectively never set, so a
/// report can never equal the fabric's poison word; a reporter whose
/// report *returns* poison just learned its coordinator died and retargets
/// the successor on the next check. The coordinator declares termination
/// after two consecutive waves in which every believed-alive survivor
/// reported idle with an advanced seq and the activity sum did not move —
/// no task was created or executed anywhere in between, and every queue,
/// inbox, and recovery set was empty at both ends — then broadcasts a done
/// flag to the survivors. Reports ride on existing idle polls; a silently
/// dead reporter is discovered by the coordinator's lease-paced probe_all.
class ResilientTermination final : public TerminationDetector {
 public:
  ResilientTermination(pgas::Runtime& rt,
                       std::unique_ptr<TerminationDetector> inner,
                       DeathRegistry* registry);
  ~ResilientTermination() override;

  /// Reports the wrapped detector's kind: the wrapper is a fault-model
  /// substitution, not a separately configurable protocol.
  TerminationKind kind() const noexcept override;
  void reset_pe(pgas::PeContext& ctx) override;
  void count_created(pgas::PeContext& ctx, std::uint64_t n) override;
  void count_completed(pgas::PeContext& ctx, std::uint64_t n) override;
  void task_boundary(pgas::PeContext& ctx) override;
  bool check(pgas::PeContext& ctx) override;
  void on_exit(pgas::PeContext& ctx) override;

 private:
  static constexpr std::uint64_t encode_report(std::uint64_t activity,
                                               std::uint64_t seq) {
    return (activity << 18) | ((seq & 0xFFFF) << 2) | 0b11;
  }

  bool coordinator_check(pgas::PeContext& ctx);

  struct alignas(64) PerPe {
    std::uint64_t created = 0;
    std::uint64_t executed = 0;
    std::uint64_t seq = 0;          ///< report generation (reporter side)
    // Coordinator wave state.
    bool have_prev = false;
    std::uint64_t prev_sum = 0;
    std::vector<std::uint16_t> prev_seqs;
    int prev_known = -1;            ///< death count behind the last wave
    net::Nanos last_probe = 0;
  };

  int npes_;
  pgas::SymPtr slots_;  ///< npes report words (slot r = report from PE r)
  pgas::SymPtr done_;   ///< one word; nonzero once termination is declared
  std::unique_ptr<TerminationDetector> inner_;
  DeathRegistry* registry_;
  std::vector<PerPe> local_;
};

/// Factory.
std::unique_ptr<TerminationDetector> make_detector(pgas::Runtime& rt,
                                                   TerminationKind kind);

}  // namespace sws::core
