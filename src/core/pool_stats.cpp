#include "core/pool_stats.hpp"

#include <sstream>

namespace sws::core {

const char* pool_phase_name(PoolPhase p) noexcept {
  switch (p) {
    case PoolPhase::kWorking: return "working";
    case PoolPhase::kProbing: return "probing";
    case PoolPhase::kStealing: return "stealing";
    case PoolPhase::kParked: return "parked";
    case PoolPhase::kBlockedNbi: return "blocked_nbi";
    case PoolPhase::kRecovering: return "recovering";
    case PoolPhase::kIdleTerm: return "idle_terminating";
    case PoolPhase::kCount_: break;
  }
  return "?";
}

PoolRunReport aggregate_reports(const std::vector<WorkerStats>& per_pe) {
  PoolRunReport r;
  r.npes = static_cast<int>(per_pe.size());
  for (const auto& w : per_pe) {
    r.total.merge(w);
    r.per_pe_executed.add(static_cast<double>(w.tasks_executed));
    r.per_pe_steal_ms.add(static_cast<double>(w.steal_time_ns) / 1e6);
    r.per_pe_search_ms.add(static_cast<double>(w.search_time_ns) / 1e6);
  }
  return r;
}

std::string PoolRunReport::to_string() const {
  std::ostringstream os;
  os << "pool run: npes=" << npes << " tasks=" << total.tasks_executed
     << " steals=" << total.steals_ok << "/" << total.steal_attempts
     << " runtime=" << static_cast<double>(total.run_time_ns) / 1e6 << "ms"
     << " steal=" << static_cast<double>(total.steal_time_ns) / 1e6 << "ms"
     << " search=" << static_cast<double>(total.search_time_ns) / 1e6 << "ms"
     << " balance(mean/max tasks per PE)=" << per_pe_executed.mean() << "/"
     << per_pe_executed.max();
  return os.str();
}

}  // namespace sws::core
