#include "core/recovery.hpp"

#include "common/assert.hpp"
#include "net/fabric.hpp"

namespace sws::core {

void DeathRegistry::init(pgas::Runtime& rt, const RecoveryConfig& cfg) {
  cfg_ = cfg;
  npes_ = rt.npes();
  const std::size_t n = static_cast<std::size_t>(npes_);
  flags_ = std::vector<std::atomic<std::uint8_t>>(n * n);
  for (auto& f : flags_) f.store(0, std::memory_order_relaxed);
  known_ = std::vector<KnownCount>(n);
  if (heartbeat_.is_null()) heartbeat_ = rt.heap().alloc(sizeof(std::uint64_t));
}

void DeathRegistry::reset_pe(pgas::PeContext& ctx) {
  const int me = ctx.pe();
  for (int pe = 0; pe < npes_; ++pe)
    flags(me, pe).store(0, std::memory_order_relaxed);
  known_[static_cast<std::size_t>(me)].n.store(0, std::memory_order_relaxed);
  ctx.heap().zero(me, heartbeat_, sizeof(std::uint64_t));
}

int DeathRegistry::lowest_live(int observer) const noexcept {
  for (int pe = 0; pe < npes_; ++pe)
    if (!known_dead(observer, pe)) return pe;
  return -1;  // unreachable: the observer itself is alive
}

bool DeathRegistry::note_dead(int observer, int pe) {
  SWS_ASSERT(pe >= 0 && pe < npes_ && observer != pe);
  if (flags(observer, pe).exchange(1, std::memory_order_relaxed) != 0)
    return false;
  known_[static_cast<std::size_t>(observer)].n.fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

bool DeathRegistry::probe(pgas::PeContext& ctx, int pe) {
  if (known_dead(ctx.pe(), pe)) return true;
  // Live PEs keep their heartbeat word at zero; only a crashed target
  // makes a fetch return the poison value.
  if (ctx.fetch(pe, heartbeat_) != net::kDeadFetchValue) return false;
  note_dead(ctx.pe(), pe);
  return true;
}

int DeathRegistry::probe_all(pgas::PeContext& ctx) {
  int news = 0;
  for (int pe = 0; pe < npes_; ++pe) {
    if (pe == ctx.pe() || known_dead(ctx.pe(), pe)) continue;
    if (probe(ctx, pe)) ++news;
  }
  return news;
}

}  // namespace sws::core
