#include "core/inbox.hpp"

#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "core/recovery.hpp"

namespace sws::core {

TaskInbox::TaskInbox(pgas::Runtime& rt, std::uint32_t capacity,
                     std::uint32_t slot_bytes)
    : base_(rt.heap().alloc(
          kSlotsOff + static_cast<std::size_t>(capacity) * (8 + slot_bytes),
          64)),
      capacity_(capacity),
      slot_bytes_(slot_bytes),
      ledgers_(static_cast<std::size_t>(rt.npes())) {
  SWS_CHECK(capacity > 0, "inbox capacity must be positive");
  SWS_CHECK(slot_bytes >= kTaskHeaderBytes, "inbox slot too small");
  SWS_CHECK(slot_bytes % 8 == 0, "inbox slot size must be 8-byte aligned");
}

void TaskInbox::reset_pe(pgas::PeContext& ctx) {
  std::memset(ctx.local(base_), 0,
              kSlotsOff +
                  static_cast<std::size_t>(capacity_) * (8 + slot_bytes_));
  auto& ledger = ledgers_[static_cast<std::size_t>(ctx.pe())];
  ledger.per_target.assign(static_cast<std::size_t>(ctx.npes()), {});
}

bool TaskInbox::remote_push(pgas::PeContext& sender, int target,
                            const Task& t) {
  auto& fab = sender.fabric();
  // Bounded reservation: CAS the reserve cursor only while the ring has
  // room. The drained cursor read may be stale, which can only make us
  // refuse — never overrun.
  const bool crash_mode = fab.crashes_planned() && recovery_ != nullptr;
  std::uint64_t seq;
  std::uint64_t drained;
  for (;;) {
    const std::uint64_t reserve =
        fab.amo_fetch(sender.pe(), target, base_.off + kReserveOff);
    drained = fab.amo_fetch(sender.pe(), target, base_.off + kDrainedOff);
    if (crash_mode && (reserve == net::kDeadFetchValue ||
                       drained == net::kDeadFetchValue)) {
      // Poisoned cursor: the target died. Record the death and let the
      // caller run the task locally.
      recovery_->note_dead(sender.pe(), target);
      return false;
    }
    if (reserve - drained >= capacity_) return false;  // full
    if (fab.amo_compare_swap(sender.pe(), target, base_.off + kReserveOff,
                             reserve, reserve + 1) == reserve) {
      seq = reserve;
      break;
    }
    // Lost the race to another sender; re-check occupancy and retry.
  }

  // Stage the payload, then publish with the generation tag. Blocking ops
  // complete in order, so the owner can never see a tagged-but-torn slot.
  std::vector<std::byte> staged(slot_bytes_);
  t.serialize(staged.data(), slot_bytes_);
  sender.put(target, base_, slot_off(seq) + 8, staged.data(), slot_bytes_);
  fab.amo_set(sender.pe(), target, base_.off + slot_off(seq), seq + 1);

  if (crash_mode) {
    // Ledger the push and prune everything the drained cursor we just read
    // proves consumed. The cursor predates our own push, so our entry can
    // never be pruned by its own read.
    auto& row = ledgers_[static_cast<std::size_t>(sender.pe())]
                    .per_target[static_cast<std::size_t>(target)];
    while (!row.empty() && row.front().first < drained) row.pop_front();
    row.emplace_back(seq, t);
  }
  return true;
}

std::uint32_t TaskInbox::remote_push_many(pgas::PeContext& sender, int target,
                                          std::span<const Task> tasks) {
  if (tasks.empty()) return 0;
  if (tasks.size() == 1)
    return remote_push(sender, target, tasks[0]) ? 1 : 0;
  auto& fab = sender.fabric();
  const bool crash_mode = fab.crashes_planned() && recovery_ != nullptr;

  // Reserve a run of slots with one CAS: same bounded reservation as the
  // single push, except the cursor advances by however many of `tasks`
  // the (possibly stale — only ever pessimistic) room estimate covers.
  std::uint64_t seq;
  std::uint64_t drained;
  std::uint64_t n;
  for (;;) {
    const std::uint64_t reserve =
        fab.amo_fetch(sender.pe(), target, base_.off + kReserveOff);
    drained = fab.amo_fetch(sender.pe(), target, base_.off + kDrainedOff);
    if (crash_mode && (reserve == net::kDeadFetchValue ||
                       drained == net::kDeadFetchValue)) {
      recovery_->note_dead(sender.pe(), target);
      return 0;
    }
    const std::uint64_t used = reserve - drained;
    if (used >= capacity_) return 0;  // full
    n = std::min<std::uint64_t>(tasks.size(), capacity_ - used);
    if (fab.amo_compare_swap(sender.pe(), target, base_.off + kReserveOff,
                             reserve, reserve + n) == reserve) {
      seq = reserve;
      break;
    }
    // Lost the race to another sender; re-check occupancy and retry.
  }

  // Stage [tag|payload] for slots seq..seq+n-1 and ship each contiguous
  // ring segment as one put (two when the run wraps). Every tag rides
  // inside the put EXCEPT the first slot's, staged as 0: the owner drains
  // strictly in sequence order, so nothing in the run is visible until the
  // closing AMO publishes that first tag — one completion tag for the
  // whole batch. Blocking ops complete in order, so the puts land first.
  const std::uint64_t stride = 8 + slot_bytes_;
  std::vector<std::byte> staged;
  std::uint64_t i = 0;
  while (i < n) {
    const std::uint64_t first = seq + i;
    const std::uint64_t pos = first % capacity_;
    const std::uint64_t run = std::min(n - i, capacity_ - pos);
    staged.assign(static_cast<std::size_t>(run * stride), std::byte{0});
    for (std::uint64_t j = 0; j < run; ++j) {
      std::byte* slot = staged.data() + j * stride;
      const std::uint64_t tag = first + j + 1;
      std::memcpy(slot, &tag, sizeof(tag));
      tasks[static_cast<std::size_t>(i + j)].serialize(slot + 8, slot_bytes_);
    }
    // The run's first slot is the one the owner's drain loop may already
    // be polling: keep its tag word out of the put (start at the payload)
    // so the only write that ever publishes it is the closing AMO.
    const std::uint64_t skip = first == seq ? 8 : 0;
    sender.put(target, base_, slot_off(first) + skip, staged.data() + skip,
               static_cast<std::size_t>(run * stride - skip));
    i += run;
  }
  fab.amo_set(sender.pe(), target, base_.off + slot_off(seq), seq + 1);

  if (crash_mode) {
    auto& row = ledgers_[static_cast<std::size_t>(sender.pe())]
                    .per_target[static_cast<std::size_t>(target)];
    while (!row.empty() && row.front().first < drained) row.pop_front();
    for (std::uint64_t j = 0; j < n; ++j)
      row.emplace_back(seq + j, tasks[static_cast<std::size_t>(j)]);
  }
  return static_cast<std::uint32_t>(n);
}

std::uint32_t TaskInbox::reroute_dead(pgas::PeContext& sender, int target,
                                      std::vector<Task>& out) {
  auto& row = ledgers_[static_cast<std::size_t>(sender.pe())]
                  .per_target[static_cast<std::size_t>(target)];
  std::uint32_t n = 0;
  for (auto& [seq, task] : row) {
    (void)seq;
    out.push_back(task);
    ++n;
  }
  row.clear();
  return n;
}

std::uint32_t TaskInbox::drain(pgas::PeContext& owner,
                               const std::function<void(const Task&)>& sink) {
  const std::uint64_t drained_ptr = base_.off + kDrainedOff;
  std::uint64_t drained = owner.local_load(pgas::SymPtr{drained_ptr});
  std::uint32_t n = 0;
  for (;;) {
    const std::uint64_t tag_off = slot_off(drained);
    const std::uint64_t tag = owner.local_load(base_.plus(tag_off));
    if (tag != drained + 1) break;  // next-in-order task not published yet
    const Task t = Task::deserialize(owner.local(base_, tag_off + 8),
                                     slot_bytes_);
    // Clear the tag before advancing so the slot is reusable one full
    // ring later.
    std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(owner.local(base_, tag_off)))
        .store(0, std::memory_order_seq_cst);
    ++drained;
    std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(owner.local(pgas::SymPtr{drained_ptr})))
        .store(drained, std::memory_order_seq_cst);
    sink(t);
    ++n;
  }
  return n;
}

bool TaskInbox::looks_empty(pgas::PeContext& owner) const {
  const std::uint64_t reserve =
      owner.local_load(base_.plus(kReserveOff));
  const std::uint64_t drained =
      owner.local_load(base_.plus(kDrainedOff));
  return reserve == drained;
}

}  // namespace sws::core
