#include "core/queue_buffer.hpp"

#include "common/assert.hpp"
#include "core/stealval.hpp"

namespace sws::core {

namespace {

/// Validate before allocating so bad parameters fail with a clear error
/// instead of a heap exhaustion.
std::size_t validated_bytes(std::uint32_t capacity, std::uint32_t slot_bytes) {
  SWS_CHECK(capacity > 0, "queue capacity must be positive");
  SWS_CHECK(capacity <= kMaxQueueCapacity,
            "queue capacity exceeds stealval tail field");
  SWS_CHECK(slot_bytes >= kTaskHeaderBytes, "slot too small for task header");
  return static_cast<std::size_t>(capacity) * slot_bytes;
}

}  // namespace

QueueBuffer::QueueBuffer(pgas::SymmetricHeap& heap, std::uint32_t capacity,
                         std::uint32_t slot_bytes)
    : base_(heap.alloc(validated_bytes(capacity, slot_bytes), 64)),
      capacity_(capacity),
      slot_bytes_(slot_bytes) {}

std::byte* QueueBuffer::slot_ptr(pgas::PeContext& ctx,
                                 std::uint64_t abs) const {
  return ctx.local(base_, static_cast<std::uint64_t>(wrap(abs)) * slot_bytes_);
}

void QueueBuffer::write_local(pgas::PeContext& ctx, std::uint64_t abs,
                              const Task& t) const {
  t.serialize(slot_ptr(ctx, abs), slot_bytes_);
}

Task QueueBuffer::read_local(pgas::PeContext& ctx, std::uint64_t abs) const {
  return Task::deserialize(slot_ptr(ctx, abs), slot_bytes_);
}

void QueueBuffer::get_remote(pgas::PeContext& thief, int victim,
                             std::uint32_t start_mod, std::uint32_t n,
                             std::vector<Task>& out) const {
  SWS_ASSERT(n <= capacity_);
  SWS_ASSERT(start_mod < capacity_);
  std::vector<std::byte> raw(static_cast<std::size_t>(n) * slot_bytes_);

  const std::uint32_t first = std::min(n, capacity_ - start_mod);
  thief.get(victim, base_,
            static_cast<std::uint64_t>(start_mod) * slot_bytes_, raw.data(),
            static_cast<std::size_t>(first) * slot_bytes_);
  if (first < n) {
    // Wrapped steal (paper §4: "otherwise we perform a wrapped steal").
    thief.get(victim, base_, 0,
              raw.data() + static_cast<std::size_t>(first) * slot_bytes_,
              static_cast<std::size_t>(n - first) * slot_bytes_);
  }

  out.reserve(out.size() + n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back(Task::deserialize(
        raw.data() + static_cast<std::size_t>(i) * slot_bytes_, slot_bytes_));
}

}  // namespace sws::core
