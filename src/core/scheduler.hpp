// The task-pool scheduler (paper §2.1): per-PE LIFO processing over a
// split queue, release/acquire split management, random-victim steal-half
// work stealing, and distributed termination detection.
//
// Usage (SPMD):
//   TaskRegistry reg;                       // register task functions
//   TaskPool pool(runtime, reg, cfg);       // allocates symmetric state
//   runtime.run([&](PeContext& ctx) {
//     pool.run_pe(ctx, [&](Worker& w) {     // seed on whichever PEs
//       if (w.pe() == 0) w.spawn(Task::of(fn, Args{...}));
//     });
//   });
//   PoolRunReport r = pool.report();
//
// The pool may be re-run; all queue/termination state resets per run.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <span>

#include "core/inbox.hpp"
#include "core/pool_stats.hpp"
#include "core/queue.hpp"
#include "core/recovery.hpp"
#include "core/sdc_queue.hpp"
#include "core/sws_queue.hpp"
#include "core/task_registry.hpp"
#include "core/termination.hpp"
#include "core/trace.hpp"
#include "core/victim.hpp"
#include "obs/timeseries.hpp"

namespace sws::core {

/// Steal-search pacing. Failed searches back off exponentially with
/// jitter (decorrelates thief convoys under faulty or contended fabrics);
/// kRetry outcomes get a budget of fast retries first, paced by the
/// queue's own StealResult::retry_after_ns hint.
struct StealTuning {
  net::Nanos backoff_min_ns = 1000;   ///< first (and post-success) pause
  net::Nanos backoff_max_ns = 64'000; ///< exponential growth cap
  double backoff_mult = 2.0;          ///< growth factor per failed round
  /// Uniform jitter fraction: pause is scaled by 1 ± jitter.
  double jitter = 0.25;
  /// Fast kRetry attempts (hint-paced) before exponential backoff kicks in.
  std::uint32_t retry_budget = 4;
  /// Failed steal attempts between termination-detector polls.
  std::uint32_t term_check_interval = 4;
  /// SWS bulk claims: most steal-half blocks one steal AMO may take
  /// (1..kMaxBulkClaim; 1 = legacy single-block protocol, bit-identical
  /// schedules). Mirrored into SwsConfig::bulk_claim_max by the pool; the
  /// larger of the two wins. Ignored by the SDC baseline.
  std::uint32_t bulk_claim_max = 1;
};

/// Scheduler event tracing (off by default — recording is cheap but
/// reading the clock per event is not free).
struct TraceConfig {
  bool enable = false;
  std::size_t events = 4096;  ///< per-PE trace ring size
  /// Windowed time-series sampling interval (virtual ns; 0 = off). When
  /// set, the pool installs a net::SampleHook on the runtime's time model
  /// and snapshots cumulative pool/fabric/accounting state every interval.
  /// Sampling is observation-only: sampled runs stay byte-identical to
  /// unsampled ones (tests/test_determinism_ab.cpp). Independent of
  /// `enable` — a run can sample without event tracing; with both on, the
  /// trace dump gains one Perfetto counter track per sampled series.
  net::Nanos sample_interval_ns = 0;
};

struct PoolConfig {
  QueueKind kind = QueueKind::kSws;
  QueueConfig queue{};              ///< ring geometry, shared by both kinds
  SwsConfig sws{};                  ///< SWS protocol knobs
  SdcConfig sdc{};                  ///< SDC protocol knobs
  TerminationKind termination = TerminationKind::kCounter;
  /// Victim-selection policy. Locality-aware policies read the machine
  /// shape from the runtime's NetworkParams::topology — the single
  /// source of truth; there is no separate node-size field to agree with.
  VictimConfig victim{};
  StealTuning steal{};
  /// Minimum local tasks before release considers exposing work.
  std::uint32_t release_threshold = 2;
  /// Enable Worker::spawn_on (remote task spawning via symmetric inboxes).
  bool remote_spawn = true;
  std::uint32_t inbox_capacity = 1024;
  TraceConfig trace{};
};

class TaskPool;

/// Per-PE execution handle; task bodies receive it to spawn subtasks and
/// charge compute time.
class Worker {
 public:
  Worker(TaskPool& pool, pgas::PeContext& ctx);

  int pe() const noexcept { return ctx_.pe(); }
  int npes() const noexcept { return ctx_.npes(); }
  pgas::PeContext& ctx() noexcept { return ctx_; }
  Xoshiro256& rng() noexcept { return ctx_.rng(); }

  /// Add a task to this PE's queue (counts toward termination detection).
  /// Falls back to inline execution if the ring is full.
  void spawn(const Task& t);

  /// Spawn onto another PE's queue via its symmetric inbox (paper §3:
  /// possible "although with more overhead due to communication").
  /// Requires PoolConfig::remote_spawn; falls back to local execution if
  /// the target inbox stays full.
  void spawn_on(int target, const Task& t);

  /// Batched spawn_on: reserve a run of inbox slots with one CAS, ship all
  /// payloads in one vectorized put, publish with a single completion tag.
  /// Same fallback semantics as spawn_on, applied to whatever remainder
  /// the target could not accept.
  void spawn_on_many(int target, std::span<const Task> tasks);

  /// Charge task computation time (virtual in DES mode).
  void compute(net::Nanos dt);

  const WorkerStats& stats() const noexcept { return stats_; }

 private:
  friend class TaskPool;
  void execute(const Task& t);

  TaskPool& pool_;
  pgas::PeContext& ctx_;
  WorkerStats stats_;
};

class TaskPool {
 public:
  /// Allocates all symmetric state; construct before Runtime::run. With
  /// tracing enabled the pool also installs itself as the fabric's op
  /// observer, so every fabric op issued inside a steal/release/acquire
  /// span lands in the trace as a child event.
  TaskPool(pgas::Runtime& rt, TaskRegistry& registry, PoolConfig cfg);
  ~TaskPool();

  /// SPMD entry point: call once per PE inside Runtime::run. `seed` runs
  /// after the collective reset (spawn initial tasks from any PE); the
  /// processing loop then runs to global termination.
  WorkerStats run_pe(pgas::PeContext& ctx,
                     const std::function<void(Worker&)>& seed);

  /// Aggregated statistics of the last completed run.
  PoolRunReport report() const;
  const WorkerStats& worker_stats(int pe) const;

  TaskQueue& queue() noexcept { return *queue_; }
  TaskRegistry& registry() noexcept { return registry_; }
  TerminationDetector& detector() noexcept { return *term_; }
  /// Replace the termination detector (e.g. the checking harness wrapping
  /// the real detector with a ground-truth cross-check). Must not be
  /// called between run_pe entry and exit.
  void set_detector(std::unique_ptr<TerminationDetector> d) {
    term_ = std::move(d);
  }
  const PoolConfig& config() const noexcept { return cfg_; }
  /// Disabled (records nothing) unless PoolConfig::trace is set.
  Tracer& tracer() noexcept { return tracer_; }
  /// Chrome trace-event JSON of the last run, stamped with run metadata
  /// (protocol, npes, slot_bytes) so sws-analyze can validate protocol op
  /// signatures without side channels. With sampling enabled the dump also
  /// carries one counter track per sampled series; traced parallel-engine
  /// runs additionally get end-of-run engine.* gauge tracks.
  void dump_trace_json(std::ostream& os) const;
  /// Null unless TraceConfig::sample_interval_ns > 0.
  obs::TimeSeries* timeseries() noexcept { return timeseries_.get(); }
  /// Compact "sws-timeseries" JSON of the sampled windows (final partial
  /// window included). Requires sampling; no-ops (empty object) otherwise.
  void dump_timeseries_json(std::ostream& os) const;
  /// Publish the last run's per-PE worker and queue statistics into `reg`
  /// under the pool.* / queue.* namespaces (docs/observability.md).
  /// Overwrites previously published values.
  void publish_metrics(obs::MetricsRegistry& reg) const;
  /// Null when remote_spawn is disabled.
  TaskInbox* inbox() noexcept { return inbox_.get(); }
  /// Null unless the runtime's fault plan schedules crashes. When present,
  /// the pool runs in crash mode: queue/inbox recovery hooks are attached
  /// and the termination detector is wrapped in ResilientTermination.
  DeathRegistry* recovery() noexcept { return recovery_.get(); }

 private:
  friend class Worker;

  /// Live per-PE phase accounting (PoolPhase taxonomy). Owner-written by
  /// the PE's thread at phase boundaries; the sampling hook reads it while
  /// every PE thread is parked (the sequencer's serialization orders the
  /// accesses), so no atomics are needed.
  struct alignas(64) PhaseSlot {
    std::array<net::Nanos, kNumPoolPhases> accrued{};
    net::Nanos base = 0;  ///< run_pe entry time
    net::Nanos mark = 0;  ///< start of the open phase
    net::Nanos end = 0;   ///< teardown time (valid once !active)
    PoolPhase cur = PoolPhase::kWorking;
    bool active = false;
    /// The owner's live WorkerStats (stack of run_pe) while running; null
    /// between runs — samplers fall back to last_stats_.
    const WorkerStats* live = nullptr;
  };

  /// Register the sampled series on timeseries_ (ctor helper).
  void setup_timeseries();
  /// Capture the final partial window at the clocks' max (idempotent).
  void finalize_timeseries() const;

  /// Drain the inbox into the local queue; returns tasks moved.
  std::uint32_t drain_inbox(Worker& w);
  /// Crash mode: pull tasks the queue fenced off dead thieves' claims and
  /// re-publish them locally (already counted created — no recount).
  std::uint32_t drain_recovered(Worker& w);

  pgas::Runtime& rt_;
  TaskRegistry& registry_;
  PoolConfig cfg_;
  std::unique_ptr<TaskQueue> queue_;
  std::unique_ptr<TerminationDetector> term_;
  std::unique_ptr<TaskInbox> inbox_;
  std::unique_ptr<DeathRegistry> recovery_;  ///< crash-mode runs only
  Tracer tracer_;
  std::unique_ptr<obs::TimeSeries> timeseries_;  ///< sampling runs only
  std::vector<PhaseSlot> phase_;
  std::vector<WorkerStats> last_stats_;
};

}  // namespace sws::core
