#include "core/victim.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace sws::core {

VictimSelector::VictimSelector(const VictimConfig& cfg, int self, int npes,
                               std::uint64_t seed) noexcept
    : cfg_(cfg),
      self_(self),
      npes_(npes),
      cursor_((self + 1) % npes),
      rng_(seed, static_cast<std::uint64_t>(self) | (std::uint64_t{1} << 32)) {
  if (cfg_.pes_per_node > 0) {
    node_begin_ = (self / cfg_.pes_per_node) * cfg_.pes_per_node;
    node_end_ = std::min(node_begin_ + cfg_.pes_per_node, npes);
  } else {
    node_begin_ = 0;
    node_end_ = npes;
  }
}

int VictimSelector::random_other() noexcept {
  const auto r =
      static_cast<int>(rng_.below(static_cast<std::uint64_t>(npes_ - 1)));
  return r >= self_ ? r + 1 : r;
}

int VictimSelector::random_on_node() noexcept {
  const int node_size = node_end_ - node_begin_;
  if (node_size < 2) return -1;  // nobody else here
  const auto r = static_cast<int>(
      rng_.below(static_cast<std::uint64_t>(node_size - 1)));
  const int pick = node_begin_ + r;
  return pick >= self_ ? pick + 1 : pick;
}

int VictimSelector::next() noexcept {
  SWS_ASSERT(npes_ >= 2);
  switch (cfg_.policy) {
    case VictimPolicy::kRandom:
      return random_other();
    case VictimPolicy::kRoundRobin: {
      const int v = cursor_;
      cursor_ = (cursor_ + 1) % npes_;
      if (cursor_ == self_) cursor_ = (cursor_ + 1) % npes_;
      return v;
    }
    case VictimPolicy::kHierarchical: {
      if (rng_.uniform() < cfg_.local_bias) {
        const int v = random_on_node();
        if (v >= 0) return v;
      }
      return random_other();
    }
  }
  SWS_UNREACHABLE();
}

}  // namespace sws::core
