#include "core/victim.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace sws::core {

const char* victim_policy_name(VictimPolicy p) noexcept {
  switch (p) {
    case VictimPolicy::kRandom: return "random";
    case VictimPolicy::kRoundRobin: return "round_robin";
    case VictimPolicy::kTiered: return "tiered";
    case VictimPolicy::kDistanceWeighted: return "distance_weighted";
  }
  return "?";
}

VictimPolicy parse_victim_policy(const std::string& name) {
  if (name == "random") return VictimPolicy::kRandom;
  if (name == "round_robin") return VictimPolicy::kRoundRobin;
  if (name == "tiered") return VictimPolicy::kTiered;
  if (name == "distance_weighted") return VictimPolicy::kDistanceWeighted;
  throw std::invalid_argument("unknown victim policy '" + name + "'");
}

namespace {

// Victim-stream seeding shared by every randomized policy. The (seed,
// self | 1<<32) stream is the historical kRandom stream; changing it
// would break flat-topology byte-identity (tests/test_determinism_ab).
Xoshiro256 victim_stream(int self, std::uint64_t seed) noexcept {
  return Xoshiro256(seed,
                    static_cast<std::uint64_t>(self) | (std::uint64_t{1} << 32));
}

class RandomSelector final : public VictimSelector {
 public:
  RandomSelector(int self, int npes, std::uint64_t seed) noexcept
      : self_(self), npes_(npes), rng_(victim_stream(self, seed)) {}

  int next() override {
    SWS_ASSERT(npes_ >= 2);
    const auto r =
        static_cast<int>(rng_.below(static_cast<std::uint64_t>(npes_ - 1)));
    return r >= self_ ? r + 1 : r;
  }

  VictimPolicy policy() const noexcept override {
    return VictimPolicy::kRandom;
  }

 private:
  int self_;
  int npes_;
  Xoshiro256 rng_;
};

class RoundRobinSelector final : public VictimSelector {
 public:
  RoundRobinSelector(int self, int npes) noexcept
      : self_(self), npes_(npes), cursor_((self + 1) % npes) {}

  int next() override {
    SWS_ASSERT(npes_ >= 2);
    const int v = cursor_;
    cursor_ = (cursor_ + 1) % npes_;
    if (cursor_ == self_) cursor_ = (cursor_ + 1) % npes_;
    return v;
  }

  VictimPolicy policy() const noexcept override {
    return VictimPolicy::kRoundRobin;
  }

 private:
  int self_;
  int npes_;
  int cursor_;
};

/// wstealer-style near-first stealing: stay at the closest populated
/// tier, widen one tier per `escalate_after` consecutive failures, snap
/// back on success.
class TieredSelector final : public VictimSelector {
 public:
  TieredSelector(const VictimConfig& cfg, const net::Topology& topo, int self,
                 std::uint64_t seed) noexcept
      : topo_(topo),
        self_(self),
        escalate_after_(cfg.escalate_after < 1 ? 1 : cfg.escalate_after),
        rng_(victim_stream(self, seed)) {
    tier_ = nearest_tier();
  }

  int next() override {
    const int n = topo_.peer_count(self_, tier_);
    SWS_ASSERT(n >= 1);
    const auto k =
        static_cast<int>(rng_.below(static_cast<std::uint64_t>(n)));
    return topo_.peer(self_, tier_, k);
  }

  void report(int victim, bool success) override {
    (void)victim;
    if (success) {
      fails_ = 0;
      tier_ = nearest_tier();
      return;
    }
    if (++fails_ < escalate_after_) return;
    fails_ = 0;
    for (net::Tier t = tier_ + 1; t <= topo_.ntiers(); ++t) {
      if (topo_.peer_count(self_, t) > 0) {
        tier_ = t;
        return;
      }
    }
    // Already at the widest populated tier: start over from the nearest.
    tier_ = nearest_tier();
  }

  VictimPolicy policy() const noexcept override {
    return VictimPolicy::kTiered;
  }

 private:
  net::Tier nearest_tier() const noexcept {
    for (net::Tier t = 1; t <= topo_.ntiers(); ++t)
      if (topo_.peer_count(self_, t) > 0) return t;
    SWS_ASSERT(false && "no stealable peer in topology");
    return 1;
  }

  const net::Topology& topo_;
  int self_;
  int escalate_after_;
  net::Tier tier_ = 1;
  int fails_ = 0;
  Xoshiro256 rng_;
};

/// Distance-weighted sampling: tier t is picked with probability
/// proportional to bias[t] * peer_count(t), then a uniform peer inside
/// it. bias defaults to 4x decay per tier outward.
class DistanceWeightedSelector final : public VictimSelector {
 public:
  DistanceWeightedSelector(const VictimConfig& cfg, const net::Topology& topo,
                           int self, std::uint64_t seed)
      : topo_(topo), self_(self), rng_(victim_stream(self, seed)) {
    const int nt = topo.ntiers();
    weights_.resize(static_cast<std::size_t>(nt));
    total_ = 0.0;
    for (net::Tier t = 1; t <= nt; ++t) {
      double bias;
      if (!cfg.tier_bias.empty()) {
        const std::size_t i = static_cast<std::size_t>(t - 1);
        bias = i < cfg.tier_bias.size() ? cfg.tier_bias[i]
                                        : cfg.tier_bias.back();
      } else {
        bias = 1.0;
        for (net::Tier u = t; u < nt; ++u) bias *= 4.0;
      }
      SWS_CHECK(bias >= 0.0, "tier_bias entries must be non-negative");
      const double w = bias * topo.peer_count(self, t);
      weights_[static_cast<std::size_t>(t - 1)] = w;
      total_ += w;
    }
    SWS_CHECK(total_ > 0.0,
              "distance-weighted victim selection needs a stealable peer "
              "with nonzero bias");
  }

  int next() override {
    double u = rng_.uniform() * total_;
    net::Tier t = 1;
    for (; t < topo_.ntiers(); ++t) {
      const double w = weights_[static_cast<std::size_t>(t - 1)];
      if (u < w) break;
      u -= w;
    }
    // Land on the outermost tier with weight if rounding pushed us past
    // the end.
    while (topo_.peer_count(self_, t) == 0) --t;
    const int n = topo_.peer_count(self_, t);
    const auto k =
        static_cast<int>(rng_.below(static_cast<std::uint64_t>(n)));
    return topo_.peer(self_, t, k);
  }

  VictimPolicy policy() const noexcept override {
    return VictimPolicy::kDistanceWeighted;
  }

 private:
  const net::Topology& topo_;
  int self_;
  std::vector<double> weights_;
  double total_ = 0.0;
  Xoshiro256 rng_;
};

}  // namespace

std::unique_ptr<VictimSelector> make_victim_selector(
    const VictimConfig& cfg, const net::Topology& topo, int self,
    std::uint64_t seed) {
  SWS_CHECK(topo.npes() >= 2, "victim selection needs at least two PEs");
  SWS_CHECK(self >= 0 && self < topo.npes(), "self PE out of range");
  switch (cfg.policy) {
    case VictimPolicy::kRandom:
      return std::make_unique<RandomSelector>(self, topo.npes(), seed);
    case VictimPolicy::kRoundRobin:
      return std::make_unique<RoundRobinSelector>(self, topo.npes());
    case VictimPolicy::kTiered:
      return std::make_unique<TieredSelector>(cfg, topo, self, seed);
    case VictimPolicy::kDistanceWeighted:
      return std::make_unique<DistanceWeightedSelector>(cfg, topo, self, seed);
  }
  SWS_UNREACHABLE();
}

}  // namespace sws::core
