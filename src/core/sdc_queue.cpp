#include "core/sdc_queue.hpp"

#include <atomic>
#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/recovery.hpp"

namespace sws::core {

SdcQueue::SdcQueue(pgas::Runtime& rt, const QueueConfig& queue, SdcConfig cfg)
    : qcfg_(queue),
      cfg_(cfg),
      meta_(rt.heap().alloc(
          kRingOff + sizeof(std::uint64_t) * cfg.completion_ring * 2, 64)),
      buffer_(rt.heap(), queue.capacity, queue.slot_bytes),
      owners_(static_cast<std::size_t>(rt.npes())) {
  SWS_CHECK(cfg.completion_ring > 0, "completion ring must be non-empty");
  SWS_CHECK(queue.capacity <= kCountMask,
            "capacity exceeds the completion-record count field");
  if (rt.config().net.faults.crashes_enabled())
    SWS_CHECK(rt.npes() <= 256,
              "crash recovery packs the thief PE into 8 intent-record bits");
}

void SdcQueue::reset_pe(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  o = OwnerState{};
  std::memset(ctx.local(meta_), 0,
              kRingOff + sizeof(std::uint64_t) * cfg_.completion_ring * 2);
}

std::uint64_t SdcQueue::owner_tail(pgas::PeContext& ctx) const {
  return ctx.local_load(meta_.plus(kTailOff));
}

// ------------------------------------------------------------ owner side

bool SdcQueue::push_local(pgas::PeContext& ctx, const Task& t) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  if (o.head_abs - o.reclaim_abs >= buffer_.capacity()) {
    progress(ctx);
    if (o.head_abs - o.reclaim_abs >= buffer_.capacity()) return false;
  }
  buffer_.write_local(ctx, o.head_abs, t);
  ++o.head_abs;
  return true;
}

bool SdcQueue::pop_local(pgas::PeContext& ctx, Task& out) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  if (o.head_abs == o.split_cache) return false;
  --o.head_abs;
  out = buffer_.read_local(ctx, o.head_abs);
  return true;
}

std::uint32_t SdcQueue::local_count(pgas::PeContext& ctx) const {
  const auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  return static_cast<std::uint32_t>(o.head_abs - o.split_cache);
}

bool SdcQueue::shared_available(pgas::PeContext& ctx) const {
  const auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  // Thieves advance the tail; read it atomically.
  return owner_tail(ctx) < o.split_cache;
}

bool SdcQueue::try_release(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  // Release is legal without locking only because it happens when the
  // shared portion is empty (paper §3.1): a racing thief sees an empty
  // queue and aborts.
  if (owner_tail(ctx) != o.split_cache) return false;
  const auto nlocal = static_cast<std::uint32_t>(o.head_abs - o.split_cache);
  if (nlocal < 2) return false;
  const std::uint32_t expose = nlocal / 2;
  o.split_cache += expose;
  // Single atomic update of the split point — no lock required.
  ctx.fabric().amo_set(ctx.pe(), ctx.pe(), meta_.off + kSplitOff,
                       o.split_cache);
  ++o.stats.releases;
  return true;
}

void SdcQueue::lock_own(pgas::PeContext& ctx) {
  // Owner competes for its own spinlock against thieves.
  const auto want = static_cast<std::uint64_t>(ctx.pe()) + 1;
  const bool crash_mode =
      ctx.fabric().crashes_planned() && recovery_ != nullptr;
  net::Nanos lease_start = crash_mode ? ctx.now() : 0;
  while (ctx.fabric().amo_compare_swap(ctx.pe(), ctx.pe(),
                                       meta_.off + kLockOff, 0, want) != 0) {
    if (crash_mode &&
        ctx.now() - lease_start >= recovery_->config().lease_ns) {
      // A live thief holds the lock for microseconds; spinning a whole
      // lease means the holder is suspect. Probe it and break the lock if
      // it is dead, otherwise keep waiting.
      break_dead_lock(ctx);
      lease_start = ctx.now();
      continue;
    }
    ctx.compute(cfg_.lock_backoff_ns);
  }
}

void SdcQueue::unlock(pgas::PeContext& ctx, int target) {
  ctx.fabric().amo_set(ctx.pe(), target, meta_.off + kLockOff, 0);
}

bool SdcQueue::try_acquire(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  if (o.head_abs != o.split_cache) return false;  // local work remains
  if (!shared_available(ctx)) return false;

  // The split index is read by thieves mid-steal, so moving it backwards
  // requires the queue lock (paper §3.1).
  lock_own(ctx);
  const std::uint64_t tail = owner_tail(ctx);
  const std::uint64_t avail = o.split_cache - tail;
  bool took = false;
  if (avail > 0) {
    const std::uint64_t take = (avail + 1) / 2;
    o.split_cache -= take;
    ctx.fabric().amo_set(ctx.pe(), ctx.pe(), meta_.off + kSplitOff,
                         o.split_cache);
    took = true;
    ++o.stats.acquires;
  }
  unlock(ctx, ctx.pe());
  return took;
}

void SdcQueue::progress(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  drain_completions(ctx);
  if (!ctx.fabric().crashes_planned() || recovery_ == nullptr) return;

  // Crash mode: watch for the two stalls only a death can cause.
  const net::Nanos now = ctx.now();
  const net::Nanos lease = recovery_->config().lease_ns;

  // (a) Reclaim wedged on an open claim. A live claimant completes in
  // microseconds, so a head claim open for a lease — or a claim backlog
  // deep enough to threaten completion-ring wraparound — triggers
  // reconciliation, which probes the claimant and fences it iff dead.
  const std::uint64_t cur_seq = ctx.local_load(meta_.plus(kSeqOff));
  if (o.reclaim_seq < cur_seq) {
    if (o.stall_seq != o.reclaim_seq) {
      o.stall_seq = o.reclaim_seq;
      o.stall_since = now;
    } else if (now - o.stall_since >= lease ||
               cur_seq - o.reclaim_seq > cfg_.completion_ring / 2) {
      if (reconcile_dead_claims(ctx) > 0) drain_completions(ctx);
      o.stall_seq = o.reclaim_seq;
      o.stall_since = ctx.now();
    }
  }

  // (b) Our lock held by the same peer for a whole lease (a dead holder
  // would otherwise freeze stealing from this queue forever — the owner
  // itself only contends in try_acquire).
  const std::uint64_t holder = ctx.local_load(meta_.plus(kLockOff));
  if (holder == 0 || holder == static_cast<std::uint64_t>(ctx.pe()) + 1) {
    o.lock_holder = 0;
  } else if (holder != o.lock_holder) {
    o.lock_holder = holder;
    o.lock_since = now;
  } else if (now - o.lock_since >= lease) {
    break_dead_lock(ctx);
    o.lock_holder = 0;
  }
}

void SdcQueue::drain_completions(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  // Drain the deferred-copy ring in claim order; each finished slot frees
  // its block of ring space. Records are sequence-tagged, so reclaim is
  // monotone even when the fabric duplicates or delays completion AMOs.
  for (;;) {
    const std::uint64_t slot_off =
        kRingOff + (o.reclaim_seq % cfg_.completion_ring) * 8;
    auto slot = std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(ctx.local(meta_.plus(slot_off))));
    const std::uint64_t v = slot.load(std::memory_order_seq_cst);
    if (v == 0) break;
    const std::uint64_t tag = v >> kCountBits;
    if (tag == o.reclaim_seq + 1) {
      o.reclaim_abs += v & kCountMask;
      slot.store(0, std::memory_order_seq_cst);
      ++o.reclaim_seq;
      continue;
    }
    // A duplicated delivery from an earlier lap of the ring landed after
    // its slot was already consumed: its tag is behind the cursor.
    // Discard it — the space was reclaimed when the original arrived.
    SWS_ASSERT_MSG(tag <= o.reclaim_seq,
                   "completion ring overrun: record tagged from the future");
    slot.store(0, std::memory_order_seq_cst);
  }
}

bool SdcQueue::break_dead_lock(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  const std::uint64_t holder = ctx.local_load(meta_.plus(kLockOff));
  if (holder == 0 || holder == static_cast<std::uint64_t>(ctx.pe()) + 1)
    return false;
  const int pe = static_cast<int>(holder - 1);
  if (!recovery_->known_dead(ctx.pe(), pe) && !recovery_->probe(ctx, pe))
    return false;
  // Only the holder could release the word and it is dead, and thieves
  // only CAS 0 -> want, so this CAS races nothing: it either frees the
  // lock or the word already changed (impossible once the holder died,
  // but a failed CAS is still just "nothing broken").
  if (ctx.fabric().amo_compare_swap(ctx.pe(), ctx.pe(), meta_.off + kLockOff,
                                    holder, 0) != holder)
    return false;
  ++o.stats.leases_broken;
  return true;
}

std::uint32_t SdcQueue::reconcile_dead_claims(pgas::PeContext& ctx) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  // Freeze the metadata (no new claims), then let every effect already in
  // flight toward us land: a live claimant's completion may be the very
  // record we are about to misread as missing. Claims from peers that
  // died are not in flight — the fabric dropped them at crash time.
  lock_own(ctx);
  while (ctx.fabric().pending_to_synced(ctx.pe()) > 0)
    ctx.compute(cfg_.lock_backoff_ns);
  drain_completions(ctx);

  std::uint32_t fenced = 0;
  const std::uint64_t cur_seq = ctx.local_load(meta_.plus(kSeqOff));
  while (o.reclaim_seq < cur_seq) {
    const std::uint64_t s = o.reclaim_seq;
    // drain_completions stopped here, so claim s is open. Intent precedes
    // the claim inside the critical section, so a consumed sequence always
    // has its record.
    const std::uint64_t iv = ctx.local_load(meta_.plus(intent_off(s)));
    SWS_ASSERT_MSG((iv >> 32) == s + 1,
                   "sdc recovery: claimed sequence without an intent record");
    const int thief = static_cast<int>((iv >> kCountBits) & 0xFF);
    const auto take = iv & kCountMask;
    if (!recovery_->known_dead(ctx.pe(), thief) &&
        !recovery_->probe(ctx, thief))
      break;  // live claimant mid-copy: its completion will arrive
    // Claim s covers [reclaim_abs, reclaim_abs + take): claims advance the
    // tail contiguously in sequence order and everything before s is
    // reclaimed. The dead thief never finished its copy, so the owner
    // still holds the authoritative bytes — take custody and re-publish.
    for (std::uint64_t i = 0; i < take; ++i)
      o.recovered.push_back(buffer_.read_local(ctx, o.reclaim_abs + i));
    o.reclaim_abs += take;
    ++o.reclaim_seq;
    ++fenced;
    ++o.stats.leases_broken;
    o.stats.tasks_recovered += take;
    drain_completions(ctx);  // live completions behind the wedge
  }
  unlock(ctx, ctx.pe());
  return fenced;
}

void SdcQueue::fence_dead(pgas::PeContext& ctx) {
  if (recovery_ == nullptr || !ctx.fabric().crashes_planned()) return;
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  break_dead_lock(ctx);
  drain_completions(ctx);
  if (o.reclaim_seq < ctx.local_load(meta_.plus(kSeqOff)))
    reconcile_dead_claims(ctx);
}

std::uint32_t SdcQueue::take_recovered(pgas::PeContext& ctx,
                                       std::vector<Task>& out) {
  auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  if (o.recovered.empty()) return 0;
  const auto n = static_cast<std::uint32_t>(o.recovered.size());
  out.insert(out.end(), o.recovered.begin(), o.recovered.end());
  o.recovered.clear();
  return n;
}

// ------------------------------------------------------------ thief side

StealResult SdcQueue::steal(pgas::PeContext& thief, int victim,
                            std::vector<Task>& out) {
  SWS_ASSERT(victim != thief.pe());
  auto& st = owners_[static_cast<std::size_t>(thief.pe())].stats;
  auto& fab = thief.fabric();
  const auto want = static_cast<std::uint64_t>(thief.pe()) + 1;

  // The poison word is nonzero, so a CAS against a dead victim's lock
  // reads as "held forever"; without the raw-word checks the thief would
  // bounce between kRetry and kEmpty for the rest of the run.
  auto dead_victim = [&]() -> StealResult {
    if (recovery_ != nullptr) recovery_->note_dead(thief.pe(), victim);
    ++st.steals_dead;
    return {StealOutcome::kPeerDead, 0};
  };

  // (1) acquire the remote queue lock, aborting early if the queue drains
  // while we wait (the "aborting steals" in SDC).
  std::uint32_t attempts = 0;
  for (;;) {
    const std::uint64_t lockword = fab.amo_compare_swap(
        thief.pe(), victim, meta_.off + kLockOff, 0, want);
    if (lockword == 0) break;
    if (lockword == net::kDeadFetchValue) return dead_victim();
    std::uint64_t meta[3];  // split, tail, seq
    fab.get_words(thief.pe(), victim, meta_.off + kSplitOff, meta, 3);
    if (meta[0] == net::kDeadFetchValue) return dead_victim();
    if (meta[1] >= meta[0]) {
      ++st.steals_empty;
      return {StealOutcome::kEmpty, 0};
    }
    if (++attempts >= cfg_.max_lock_attempts) {
      ++st.steals_retry;
      // Lock convoy: the holder needs roughly one backoff to drain.
      return {StealOutcome::kRetry, 0, cfg_.lock_backoff_ns};
    }
    thief.compute(cfg_.lock_backoff_ns);
  }

  // (2) fetch the metadata to size the steal.
  std::uint64_t meta[3];  // split, tail, seq
  fab.get_words(thief.pe(), victim, meta_.off + kSplitOff, meta, 3);
  if (meta[0] == net::kDeadFetchValue) return dead_victim();
  const std::uint64_t split = meta[0];
  const std::uint64_t tail = meta[1];
  const std::uint64_t seq = meta[2];
  const std::uint64_t avail = split > tail ? split - tail : 0;
  if (avail == 0) {
    unlock(thief, victim);
    ++st.steals_empty;
    return {StealOutcome::kEmpty, 0};
  }

  // Steal half of the available work (work-stealing's sweet spot, §2).
  const auto take =
      static_cast<std::uint32_t>(avail > 1 ? avail / 2 : 1);

  // Crash mode only: record claim intent *before* the claim is visible,
  // so if we die with the claim published the owner can reconstruct what
  // we held (see encode_intent). Blocking put inside the critical section.
  if (fab.crashes_planned()) {
    const std::uint64_t iv = encode_intent(seq, thief.pe(), take);
    fab.put_words(thief.pe(), victim, meta_.off + intent_off(seq), &iv, 1);
  }

  // (3) claim: advance the tail and the steal sequence in one put.
  const std::uint64_t claim[2] = {tail + take, seq + 1};
  fab.put_words(thief.pe(), victim, meta_.off + kTailOff, claim, 2);

  // (4) release the lock — the copy proceeds outside the critical section.
  unlock(thief, victim);

  // (5) copy the stolen block (deferred copy).
  const std::size_t out_base = out.size();
  buffer_.get_remote(thief, victim, buffer_.wrap(tail), take, out);
  if (fab.crashes_planned() && !fab.alive(victim)) {
    // The victim died under the copy: the get returned filler (the
    // blocking op's local NIC error status, not an oracle). Drop it; the
    // claim dies with the victim's queue.
    out.resize(out_base);
    return dead_victim();
  }

  // (6) passive completion notification; the owner reclaims ring space on
  // its next progress() pass. The record carries its claim sequence and is
  // written with an idempotent set, so duplicated delivery is harmless.
  fab.nbi_amo_set(thief.pe(), victim,
                  meta_.off + kRingOff + (seq % cfg_.completion_ring) * 8,
                  encode_completion(seq, take));

  ++st.steals_ok;
  st.tasks_stolen += take;
  return {StealOutcome::kSuccess, take};
}

const QueueOpStats& SdcQueue::op_stats(int pe) const {
  return owners_[static_cast<std::size_t>(pe)].stats;
}

std::string SdcQueue::audit(pgas::PeContext& ctx) const {
  const auto& o = owners_[static_cast<std::size_t>(ctx.pe())];
  auto bad = [&](const char* what, std::uint64_t a, std::uint64_t b) {
    return std::string("sdc audit: ") + what + " (" + std::to_string(a) +
           " vs " + std::to_string(b) + ")";
  };

  // Cursor order: reclaim <= tail <= split <= head. Completions can only
  // lag claims, and thieves only advance the tail up to the split.
  const std::uint64_t tail = owner_tail(ctx);
  const std::uint64_t split = ctx.local_load(meta_.plus(kSplitOff));
  if (o.reclaim_abs > tail)
    return bad("reclaim past tail", o.reclaim_abs, tail);
  if (tail > o.split_cache)
    return bad("tail past split", tail, o.split_cache);
  if (split != o.split_cache)
    return bad("split mirror out of sync", split, o.split_cache);
  if (o.split_cache > o.head_abs)
    return bad("split past head", o.split_cache, o.head_abs);
  if (o.head_abs - o.reclaim_abs > buffer_.capacity())
    return bad("occupied span exceeds capacity", o.head_abs - o.reclaim_abs,
               buffer_.capacity());

  // The spinlock only ever holds 0 (free) or thief_pe + 1.
  const std::uint64_t lock = ctx.local_load(meta_.plus(kLockOff));
  if (lock > static_cast<std::uint64_t>(ctx.fabric().npes()))
    return bad("lock word corrupt", lock,
               static_cast<std::uint64_t>(ctx.fabric().npes()));
  return {};
}

}  // namespace sws::core
