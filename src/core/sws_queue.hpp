// SWS: the structured-atomic work-stealing queue (paper §4).
//
// Thief side — a steal is three communications, two blocking:
//   (1) atomic fetch-add of AStealsField::unit() on the victim's stealval
//       — discovers AND claims a steal-half block in one round trip;
//   (2) one-sided get of the claimed block;
//   (3) non-blocking atomic completion notification
//       (completion[epoch][block]).
//
// Owner side — release/acquire retire the live allotment by atomically
// swapping the stealval to a locked sentinel, rotating to the next
// completion epoch (§4.2), and publishing a fresh
// {asteals=0, epoch, itasks, tail}. Ring space under claimed blocks is
// reclaimed by progress() as completion notifications arrive — in block
// order, per the longest-finished-prefix rule.
//
// Geometry (absolute indices): reclaim <= retired-claimed regions <=
// live allotment [alloc_base, split) <= local portion [split, head).
#pragma once

#include <deque>

#include "core/completion.hpp"
#include "core/queue.hpp"
#include "core/stealval.hpp"

namespace sws::core {

/// Protocol knobs only — ring geometry comes from QueueConfig.
struct SwsConfig {
  /// Completion epochs (§4.2). When false, allotment resets wait for every
  /// outstanding steal to finish first — the paper's initial
  /// implementation, kept for the ablation study.
  bool epochs = true;
  /// Steal damping (§4.3): thieves that find a target empty past the
  /// threshold fall back to read-only probes until work reappears.
  bool damping = true;
  /// Extra failed attempts past exhaustion before a target enters
  /// empty-mode.
  std::uint32_t damping_slack = 8;
  /// Owner poll interval while waiting for an epoch's steals to finish.
  net::Nanos epoch_poll_ns = 400;
  /// Bulk claims: the most steal-half blocks one thief fetch-add may claim
  /// (1..kMaxBulkClaim). 1 = legacy single-block protocol, bit-identical
  /// schedules. Above 1, thieves grow their per-victim claim size on
  /// successful steals and shrink it when the victim provably can't feed
  /// a bulk claim (empty probe, soft-cap refusal, dead victim), and the
  /// owner releases larger allotments when it observes steal pressure.
  std::uint32_t bulk_claim_max = 1;
};

class SwsQueue final : public TaskQueue {
 public:
  explicit SwsQueue(pgas::Runtime& rt, const QueueConfig& queue,
                    SwsConfig cfg = {});

  QueueKind kind() const noexcept override { return QueueKind::kSws; }
  void reset_pe(pgas::PeContext& ctx) override;

  bool push_local(pgas::PeContext& ctx, const Task& t) override;
  bool pop_local(pgas::PeContext& ctx, Task& out) override;
  std::uint32_t local_count(pgas::PeContext& ctx) const override;
  bool shared_available(pgas::PeContext& ctx) const override;
  bool try_release(pgas::PeContext& ctx) override;
  bool try_acquire(pgas::PeContext& ctx) override;
  void progress(pgas::PeContext& ctx) override;

  StealResult steal(pgas::PeContext& thief, int victim,
                    std::vector<Task>& out) override;

  void attach_recovery(DeathRegistry* registry) override {
    recovery_ = registry;
  }
  std::uint32_t take_recovered(pgas::PeContext& ctx,
                               std::vector<Task>& out) override;
  void fence_dead(pgas::PeContext& ctx) override;

  const QueueOpStats& op_stats(int pe) const override;
  std::string audit(pgas::PeContext& ctx) const override;
  const SwsConfig& config() const noexcept { return cfg_; }
  const QueueConfig& queue_config() const noexcept { return qcfg_; }

  /// Owner's decoded view of its own stealval (for tests/diagnostics).
  StealVal owner_stealval(pgas::PeContext& ctx) const;

  /// Symmetric location of the stealval word (tests/diagnostics).
  pgas::SymPtr stealval_ptr() const noexcept { return stealval_; }

 private:
  struct alignas(64) OwnerState {
    std::uint64_t head_abs = 0;
    std::uint64_t split_abs = 0;       ///< local portion starts here
    std::uint64_t alloc_base_abs = 0;  ///< live allotment's first task
    std::uint32_t itasks = 0;          ///< live allotment size
    std::uint32_t epoch = 0;
    std::uint64_t reclaim_abs = 0;
    std::deque<AllotmentRecord> outstanding;
    /// Tasks fenced off from dead thieves' unfinished claims, awaiting
    /// re-publication by the scheduler (crash-mode runs only).
    std::vector<Task> recovered;
    /// Steal-pressure tracking (bulk mode only): last asteals value sampled
    /// from the live allotment, and attempts accumulated since the last
    /// release — high pressure makes the next release expose more.
    std::uint32_t asteals_seen = 0;
    std::uint32_t pressure = 0;
    QueueOpStats stats;
  };
  /// Thief-side damping state, one row per thief (padded against false
  /// sharing), one entry per potential victim.
  struct alignas(64) ThiefState {
    std::vector<std::uint8_t> empty_mode;  // 1 = probe-first
    /// Last observed allotment block count per victim (bulk mode; 0 =
    /// never observed, saturated at 255). Every decoded stealval with a
    /// live allotment refreshes it. Caps the adaptive claim at half the
    /// victim's allotment, so a warmed-up thief can't keep swallowing a
    /// small owner's whole allotment and serialize every other thief
    /// behind that owner's renewal cadence.
    std::vector<std::uint8_t> seen_blocks;
    /// Adaptive bulk claim size (bulk mode only): doubles on a successful
    /// steal, halves on an empty probe / soft-cap refusal / dead victim.
    /// One value per thief, not per victim: the demand it tracks — "this
    /// thief keeps coming back for more" — follows the thief to whichever
    /// victim it tries next, and per-victim values would never warm up
    /// when selection scatters attempts across many victims.
    std::uint8_t claim_size = 1;
  };

  /// True when the decoded value offers an unclaimed block.
  static bool has_work(const StealVal& sv) noexcept;

  /// Retire the live allotment: swap in the locked sentinel, record the
  /// outstanding claims, rotate/clear the next epoch. Returns the number
  /// of blocks that were claimed from the retired allotment.
  std::uint32_t retire_allotment(pgas::PeContext& ctx);
  /// Publish a fresh allotment (must follow retire_allotment).
  void publish(pgas::PeContext& ctx, std::uint32_t itasks);

  /// Crash recovery, owner side: for every unfinished claim in the retired
  /// records, copy the block's tasks into OwnerState::recovered and
  /// force-finish its completion slot so reclaim can proceed. Only valid
  /// once the owner has witnessed a death, drained pending traffic to
  /// itself, and waited out the detection lease (see retire_allotment).
  /// Returns the number of claims fenced.
  std::uint32_t fence_dead_claims(pgas::PeContext& ctx);

  QueueConfig qcfg_;
  SwsConfig cfg_;
  pgas::SymPtr stealval_;
  CompletionSpace completion_;
  QueueBuffer buffer_;
  std::vector<OwnerState> owners_;
  std::vector<ThiefState> thieves_;
  DeathRegistry* recovery_ = nullptr;  ///< crash-mode runs only
};

}  // namespace sws::core
