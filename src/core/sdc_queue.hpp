// Baseline: Scioto's "Split queue, Deferred Copy, aborting steals" (SDC)
// task queue (paper §3), ported to one-sided operations.
//
// Symmetric metadata layout (per PE):
//   +0   lock       spinlock word: 0 free, else thief_pe + 1
//   +8   split_abs  boundary between shared [tail,split) and local [split,head)
//   +16  tail_abs   oldest unclaimed shared task (thieves advance, under lock)
//   +24  steal_seq  number of claims so far (indexes the completion ring)
//   +32  ring[R]    deferred-copy completion ring: slot = stolen task count
//   +32+8R intent[R] claim-intent ring, written only when a crash plan is
//                    armed (crash recovery; see encode_intent below)
//
// A steal is the paper's six communications:
//   (1) lock CAS  (2) metadata get  (3) tail+seq put  (4) unlock
//   (5) task-block get  (6) non-blocking completion update
// with early abort while the lock is contended and the metadata shows an
// empty shared portion.
//
// All indices are absolute (monotonic); ring positions are index mod
// capacity. The owner's head/split cursors live in host memory (only the
// owner touches them — split is mirrored symmetrically for thieves).
#pragma once

#include <memory>

#include "core/queue.hpp"

namespace sws::core {

/// Protocol knobs only — ring geometry comes from QueueConfig.
struct SdcConfig {
  /// CAS attempts against a held lock before giving up with kRetry.
  std::uint32_t max_lock_attempts = 4;
  /// Thief backoff between lock attempts.
  net::Nanos lock_backoff_ns = 400;
  /// Completion-ring slots; bounds claimed-but-uncopied steals in flight.
  std::uint32_t completion_ring = 1024;
};

class SdcQueue final : public TaskQueue {
 public:
  explicit SdcQueue(pgas::Runtime& rt, const QueueConfig& queue,
                    SdcConfig cfg = {});

  QueueKind kind() const noexcept override { return QueueKind::kSdc; }
  void reset_pe(pgas::PeContext& ctx) override;

  bool push_local(pgas::PeContext& ctx, const Task& t) override;
  bool pop_local(pgas::PeContext& ctx, Task& out) override;
  std::uint32_t local_count(pgas::PeContext& ctx) const override;
  bool shared_available(pgas::PeContext& ctx) const override;
  bool try_release(pgas::PeContext& ctx) override;
  bool try_acquire(pgas::PeContext& ctx) override;
  void progress(pgas::PeContext& ctx) override;

  StealResult steal(pgas::PeContext& thief, int victim,
                    std::vector<Task>& out) override;

  void attach_recovery(DeathRegistry* registry) override {
    recovery_ = registry;
  }
  std::uint32_t take_recovered(pgas::PeContext& ctx,
                               std::vector<Task>& out) override;
  void fence_dead(pgas::PeContext& ctx) override;

  const QueueOpStats& op_stats(int pe) const override;
  std::string audit(pgas::PeContext& ctx) const override;
  const SdcConfig& config() const noexcept { return cfg_; }
  const QueueConfig& queue_config() const noexcept { return qcfg_; }

  /// Symmetric offset of the queue spinlock (tests/diagnostics).
  std::uint64_t lock_offset_for_test() const noexcept {
    return meta_.off + kLockOff;
  }

 private:
  struct alignas(64) OwnerState {
    std::uint64_t head_abs = 0;
    std::uint64_t split_cache = 0;   ///< owner-authoritative copy of split
    std::uint64_t reclaim_abs = 0;   ///< ring space below this is free
    std::uint64_t reclaim_seq = 0;   ///< next completion-ring slot to drain
    /// Tasks fenced off from dead thieves' open claims, awaiting
    /// re-publication by the scheduler (crash-mode runs only).
    std::vector<Task> recovered;
    // Crash-mode stall tracking (see progress()): which reclaim_seq we
    // have been stuck on and since when, and who has held the lock since
    // when. All local, only read when a crash plan is armed.
    std::uint64_t stall_seq = 0;
    net::Nanos stall_since = 0;
    std::uint64_t lock_holder = 0;
    net::Nanos lock_since = 0;
    QueueOpStats stats;
  };

  // Metadata word offsets within meta_.
  static constexpr std::uint64_t kLockOff = 0;
  static constexpr std::uint64_t kSplitOff = 8;
  static constexpr std::uint64_t kTailOff = 16;
  static constexpr std::uint64_t kSeqOff = 24;
  static constexpr std::uint64_t kRingOff = 32;

  // Completion-ring records are tagged with their claim sequence so a
  // duplicated (or very late) delivery is recognizable instead of being
  // double-counted: value = (seq + 1) << kCountBits | task_count. The
  // record is written with an *idempotent* nbi set — delivering it twice
  // stores the same bits — and the owner consumes a slot only when its
  // tag matches the next expected sequence.
  static constexpr std::uint32_t kCountBits = 24;
  static constexpr std::uint64_t kCountMask = (1ull << kCountBits) - 1;
  static constexpr std::uint64_t encode_completion(std::uint64_t seq,
                                                   std::uint64_t take) {
    return ((seq + 1) << kCountBits) | take;
  }

  // Claim-intent ring (crash-mode only): before a thief's tail/seq claim
  // becomes visible it records {seq, thief, take} in intent[seq % R] with a
  // blocking put inside the critical section. Intent-before-claim means
  // every *consumed* sequence number provably has an intent record, so the
  // owner can reconstruct exactly which surviving range of the ring a dead
  // thief claimed and re-publish it. Crash-free runs never write the ring.
  //   value = (seq + 1) << 32 | thief_pe << kCountBits | take
  static constexpr std::uint64_t encode_intent(std::uint64_t seq, int thief,
                                               std::uint64_t take) {
    return ((seq + 1) << 32) |
           (static_cast<std::uint64_t>(thief) << kCountBits) | take;
  }
  std::uint64_t intent_off(std::uint64_t seq) const noexcept {
    return kRingOff + sizeof(std::uint64_t) * cfg_.completion_ring +
           (seq % cfg_.completion_ring) * 8;
  }

  std::uint64_t owner_tail(pgas::PeContext& ctx) const;
  void lock_own(pgas::PeContext& ctx);
  void unlock(pgas::PeContext& ctx, int target);
  /// Consume in-order completion records (the body of progress()).
  void drain_completions(pgas::PeContext& ctx);
  /// Crash mode, owner side: if a confirmed-dead peer holds our lock,
  /// CAS it free. Returns true when a lock was broken.
  bool break_dead_lock(pgas::PeContext& ctx);
  /// Crash mode, owner side: under our own lock, walk open claims in
  /// sequence order, probe each claimant, and fence confirmed-dead ones —
  /// their ring span moves to OwnerState::recovered and reclaim advances.
  /// Stops at the first live claimant (reclaim is in-order).
  std::uint32_t reconcile_dead_claims(pgas::PeContext& ctx);

  QueueConfig qcfg_;
  SdcConfig cfg_;
  pgas::SymPtr meta_;
  QueueBuffer buffer_;
  std::vector<OwnerState> owners_;
  DeathRegistry* recovery_ = nullptr;  ///< crash-mode runs only
};

}  // namespace sws::core
