#include "core/completion.hpp"

#include <atomic>
#include <cstring>

#include "common/assert.hpp"

namespace sws::core {

CompletionSpace::CompletionSpace(pgas::SymmetricHeap& heap)
    : base_(heap.alloc(sizeof(std::uint64_t) * kNumEpochs * kSlotsPerEpoch,
                       64)) {}

pgas::SymPtr CompletionSpace::slot(std::uint32_t epoch,
                                   std::uint32_t idx) const {
  SWS_ASSERT(epoch < kNumEpochs);
  SWS_ASSERT(idx < kSlotsPerEpoch);
  return base_.plus(
      (static_cast<std::uint64_t>(epoch) * kSlotsPerEpoch + idx) * 8);
}

void CompletionSpace::notify_finished(pgas::PeContext& thief, int victim,
                                      std::uint32_t epoch, std::uint32_t idx,
                                      std::uint32_t ntasks) const {
  SWS_ASSERT(ntasks > 0);
  // Slots start at zero each epoch, so add == set here; add matches the
  // paper's "atomically updates a shared array ... with the number of
  // tasks stolen". Owners read the slot only as a finished *flag*
  // (nonzero), so a duplicated delivery of this AMO within the same epoch
  // cannot corrupt reclaim accounting; cross-epoch replay is fenced by
  // the owner's pending_to() wait before epoch reuse.
  thief.nbi_add(victim, slot(epoch, idx), ntasks);
}

std::uint64_t CompletionSpace::read(pgas::PeContext& owner,
                                    std::uint32_t epoch,
                                    std::uint32_t idx) const {
  return owner.local_load(slot(epoch, idx));
}

std::uint32_t CompletionSpace::finished_prefix(pgas::PeContext& owner,
                                               std::uint32_t epoch,
                                               std::uint32_t upto) const {
  SWS_ASSERT(upto <= kSlotsPerEpoch);
  std::uint32_t n = 0;
  while (n < upto && read(owner, epoch, n) != 0) ++n;
  return n;
}

std::uint32_t CompletionSpace::finished_count(pgas::PeContext& owner,
                                              std::uint32_t epoch,
                                              std::uint32_t upto) const {
  SWS_ASSERT(upto <= kSlotsPerEpoch);
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < upto; ++i)
    if (read(owner, epoch, i) != 0) ++n;
  return n;
}

void CompletionSpace::force_finished(pgas::PeContext& owner,
                                     std::uint32_t epoch, std::uint32_t idx,
                                     std::uint32_t ntasks) const {
  SWS_ASSERT(ntasks > 0);
  // Owner-local store, mirroring read()'s local atomic. Safe against a
  // late duplicate of the dead thief's notify: the fabric dropped every
  // in-flight effect at mark_dead and suppresses all future ones, and the
  // caller drains pending_to() before fencing, so nothing else can touch
  // this slot again within the epoch.
  std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(
                                     owner.local(slot(epoch, idx))))
      .store(ntasks, std::memory_order_seq_cst);
}

void CompletionSpace::clear_epoch(pgas::PeContext& owner,
                                  std::uint32_t epoch) const {
  SWS_ASSERT(epoch < kNumEpochs);
  std::memset(owner.local(slot(epoch, 0)), 0,
              sizeof(std::uint64_t) * kSlotsPerEpoch);
}

}  // namespace sws::core
