// Bouncing Producer-Consumer benchmark (paper §5.2.1).
//
// One producer task spawns n consumer tasks plus one child producer, down
// to a configured depth. The producer is spawned *first*, so it sits
// nearest the queue tail — the first task to be stolen — and therefore
// "bounces" between PEs, stressing work discovery and dispersal.
//
// Task durations are charged to the virtual clock, so the paper's 5 ms
// consumers cost nothing in wall time under the DES backend.
#pragma once

#include <cstdint>

#include "core/scheduler.hpp"

namespace sws::workloads {

struct BpcParams {
  std::uint32_t consumers_per_producer = 64;  ///< paper: 8192
  std::uint32_t depth = 50;                   ///< paper: 500
  net::Nanos consumer_ns = 5'000'000;         ///< paper: 5 ms
  net::Nanos producer_ns = 1'000'000;         ///< paper: 1 ms

  /// Tasks the run will execute: producers (depth+1) + depth*n consumers.
  std::uint64_t expected_tasks() const noexcept {
    return std::uint64_t{depth} * consumers_per_producer + depth + 1;
  }
  /// Total charged compute — the ideal-runtime numerator for the
  /// parallel-efficiency figure (7c).
  net::Nanos total_compute_ns() const noexcept {
    return std::uint64_t{depth} * consumers_per_producer * consumer_ns +
           (std::uint64_t{depth} + 1) * producer_ns;
  }
};

/// Registers the BPC task functions on construction; reusable across runs.
class BpcBenchmark {
 public:
  BpcBenchmark(core::TaskRegistry& registry, BpcParams params);

  const BpcParams& params() const noexcept { return params_; }

  /// Seed the pool: PE 0 spawns the root producer.
  void seed(core::Worker& w) const;

 private:
  struct Payload {
    std::uint32_t remaining_depth;
  };

  BpcParams params_;
  core::TaskFnId producer_fn_ = 0;
  core::TaskFnId consumer_fn_ = 0;
};

}  // namespace sws::workloads
