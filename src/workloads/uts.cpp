#include "workloads/uts.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/assert.hpp"

namespace sws::workloads {
namespace {

/// Uniform value in [0,1) from the leading digest bytes (UTS convention:
/// the digest *is* the random stream).
double digest_uniform(const Sha1Digest& d) noexcept {
  return static_cast<double>(digest_to_u32(d)) * 0x1.0p-32;
}

}  // namespace

std::uint32_t uts_num_children(const Sha1Digest& digest, std::uint32_t depth,
                               const UtsParams& p) noexcept {
  switch (p.shape) {
    case UtsParams::Shape::kGeometric: {
      if (depth >= p.gen_mx) return 0;
      // Depth-dependent expected branching factor per the configured shape
      // function; children drawn from a geometric distribution via inverse
      // transform on the digest value.
      const double frac =
          static_cast<double>(depth) / static_cast<double>(p.gen_mx);
      double b_d = static_cast<double>(p.b0);
      switch (p.geo_shape) {
        case UtsParams::GeoShape::kLinear:
          b_d *= 1.0 - frac;
          break;
        case UtsParams::GeoShape::kExpDec:
          b_d *= (1.0 - frac) * (1.0 - frac) * (1.0 - frac);
          break;
        case UtsParams::GeoShape::kCyclic:
          // Branchy bands alternating with thin bands down the tree.
          b_d *= 0.5 * (1.0 + std::cos(3.141592653589793 * frac * 4.0));
          break;
        case UtsParams::GeoShape::kFixed:
          break;
      }
      if (b_d <= 0.0) return 0;
      const double prob = 1.0 / (1.0 + b_d);
      const double u = digest_uniform(digest);
      const double m = std::floor(std::log(1.0 - u) / std::log(1.0 - prob));
      if (m <= 0.0) return 0;
      return static_cast<std::uint32_t>(
          std::min<double>(m, p.max_children));
    }
    case UtsParams::Shape::kBinomial: {
      if (depth == 0) return p.b0;
      return digest_uniform(digest) < p.bin_q
                 ? std::min(p.bin_m, p.max_children)
                 : 0;
    }
  }
  return 0;
}

Sha1Digest uts_root_digest(const UtsParams& p) noexcept {
  std::uint8_t seed_be[4] = {
      static_cast<std::uint8_t>(p.root_seed >> 24),
      static_cast<std::uint8_t>(p.root_seed >> 16),
      static_cast<std::uint8_t>(p.root_seed >> 8),
      static_cast<std::uint8_t>(p.root_seed),
  };
  return Sha1::hash(seed_be, sizeof(seed_be));
}

UtsTreeInfo uts_sequential_count(const UtsParams& p) {
  struct Frame {
    Sha1Digest digest;
    std::uint32_t depth;
  };
  UtsTreeInfo info;
  std::vector<Frame> stack;
  stack.push_back({uts_root_digest(p), 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    ++info.nodes;
    info.max_depth = std::max(info.max_depth, f.depth);
    const std::uint32_t k = uts_num_children(f.digest, f.depth, p);
    if (k == 0) {
      ++info.leaves;
      continue;
    }
    for (std::uint32_t i = 0; i < k; ++i)
      stack.push_back({uts_child_digest(f.digest, i), f.depth + 1});
  }
  return info;
}

UtsBenchmark::UtsBenchmark(core::TaskRegistry& registry, UtsParams params)
    : params_(params) {
  node_fn_ = registry.register_fn(
      "uts.node",
      [this, p = params_](core::Worker& w, std::span<const std::byte> bytes) {
        Payload in;
        SWS_ASSERT(bytes.size() == sizeof(in));
        std::memcpy(&in, bytes.data(), sizeof(in));
        Sha1Digest digest;
        std::memcpy(digest.data(), in.digest, sizeof(in.digest));

        w.compute(p.node_compute_ns);
        const std::uint32_t k = uts_num_children(digest, in.depth, p);
        for (std::uint32_t i = 0; i < k; ++i) {
          Payload child;
          const Sha1Digest cd = uts_child_digest(digest, i);
          std::memcpy(child.digest, cd.data(), cd.size());
          child.depth = in.depth + 1;
          w.spawn(core::Task::of(node_fn_, child));
        }
      });
}

void UtsBenchmark::seed(core::Worker& w) const {
  if (w.pe() != 0) return;
  Payload root{};
  const Sha1Digest rd = uts_root_digest(params_);
  std::memcpy(root.digest, rd.data(), rd.size());
  root.depth = 0;
  w.spawn(core::Task::of(node_fn_, root));
}

}  // namespace sws::workloads
