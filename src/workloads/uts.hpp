// Unbalanced Tree Search (paper §5.2.2).
//
// The tree is implicit and deterministic: each node is a 20-byte SHA-1
// digest; child i's digest is SHA-1(parent_digest || i). A node's child
// count is derived from its digest, so subtree sizes vary wildly — the
// classic stress test for dynamic load balancing.
//
// Two standard tree families:
//  * Geometric — branching factor with a linearly decreasing expectation
//    b(d) = b0 · (1 − d/gen_mx), cut off at depth gen_mx.
//  * Binomial — the root has b0 children; every other node has m children
//    with probability q (q·m < 1 keeps the tree finite a.s.).
//
// The paper searches a 270-billion-node tree on 2112 cores; we use the
// same generator with smaller parameters (DESIGN.md §2).
#pragma once

#include <cstdint>

#include "core/scheduler.hpp"
#include "sha1/sha1.hpp"

namespace sws::workloads {

struct UtsParams {
  enum class Shape { kGeometric, kBinomial };
  /// Geometric-tree branching-factor shape functions, following the UTS
  /// benchmark's geoshape options: how the expected branching factor
  /// b(d) evolves with depth d (all cut off at gen_mx).
  enum class GeoShape {
    kLinear,   ///< b(d) = b0 * (1 - d/gen_mx)      (UTS "LINEAR", default)
    kExpDec,   ///< b(d) = b0 * (1 - d/gen_mx)^3    (UTS "EXPDEC")
    kCyclic,   ///< b(d) = b0 * |sin-profile|        (UTS "CYCLIC")
    kFixed,    ///< b(d) = b0 for every d < gen_mx   (UTS "FIXED")
  };

  Shape shape = Shape::kGeometric;
  GeoShape geo_shape = GeoShape::kLinear;
  std::uint32_t b0 = 4;        ///< root/expected branching factor
  std::uint32_t gen_mx = 10;   ///< geometric depth cutoff
  double bin_q = 0.2;          ///< binomial: P(child block)
  std::uint32_t bin_m = 4;     ///< binomial: children per block
  std::uint32_t root_seed = 19;
  net::Nanos node_compute_ns = 110;  ///< paper avg task time ≈ 0.11 µs
  /// Safety cap on a single node's children (the queue is finite).
  std::uint32_t max_children = 4096;
};

/// Number of children of a node, given its digest and depth — shared by
/// the parallel tasks and the sequential reference traversal.
std::uint32_t uts_num_children(const Sha1Digest& digest, std::uint32_t depth,
                               const UtsParams& p) noexcept;

/// Root digest for a parameter set.
Sha1Digest uts_root_digest(const UtsParams& p) noexcept;

/// Host-side sequential traversal; returns {nodes, max_depth}. The ground
/// truth the parallel searches must match.
struct UtsTreeInfo {
  std::uint64_t nodes = 0;
  std::uint32_t max_depth = 0;
  std::uint64_t leaves = 0;
};
UtsTreeInfo uts_sequential_count(const UtsParams& p);

class UtsBenchmark {
 public:
  UtsBenchmark(core::TaskRegistry& registry, UtsParams params);

  const UtsParams& params() const noexcept { return params_; }

  /// Seed: PE 0 spawns the root node task.
  void seed(core::Worker& w) const;

 private:
  struct Payload {
    std::uint8_t digest[20];
    std::uint32_t depth;
  };

  UtsParams params_;
  core::TaskFnId node_fn_ = 0;
};

}  // namespace sws::workloads
