#include "workloads/bpc.hpp"

namespace sws::workloads {

BpcBenchmark::BpcBenchmark(core::TaskRegistry& registry, BpcParams params)
    : params_(params) {
  consumer_fn_ = registry.register_fn(
      "bpc.consumer", [p = params_](core::Worker& w, std::span<const std::byte>) {
        w.compute(p.consumer_ns);
      });
  producer_fn_ = registry.register_fn(
      "bpc.producer",
      [this, p = params_](core::Worker& w, std::span<const std::byte> bytes) {
        Payload in;
        SWS_ASSERT(bytes.size() == sizeof(in));
        std::memcpy(&in, bytes.data(), sizeof(in));
        w.compute(p.producer_ns);
        if (in.remaining_depth == 0) return;
        // Child producer first: it lands nearest the tail of the batch and
        // is therefore the first task a thief will take — the "bounce".
        w.spawn(core::Task::of(producer_fn_,
                               Payload{in.remaining_depth - 1}));
        for (std::uint32_t i = 0; i < p.consumers_per_producer; ++i)
          w.spawn(core::Task(consumer_fn_, nullptr, 0));
      });
}

void BpcBenchmark::seed(core::Worker& w) const {
  if (w.pe() != 0) return;
  w.spawn(core::Task::of(producer_fn_, Payload{params_.depth}));
}

}  // namespace sws::workloads
