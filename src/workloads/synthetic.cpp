#include "workloads/synthetic.hpp"

namespace sws::workloads {

FixedWork::FixedWork(core::TaskRegistry& registry, FixedWorkParams params)
    : params_(params) {
  fn_ = registry.register_fn(
      "synthetic.fixed",
      [p = params_](core::Worker& w, std::span<const std::byte>) {
        w.compute(p.task_ns);
      });
}

void FixedWork::seed(core::Worker& w) const {
  if (params_.seed_on_root_only) {
    if (w.pe() != 0) return;
    for (std::uint64_t i = 0; i < params_.tasks; ++i)
      w.spawn(core::Task(fn_, nullptr, 0));
    return;
  }
  // Block distribution: PE i seeds tasks [i*chunk, ...).
  const std::uint64_t base = params_.tasks / static_cast<std::uint64_t>(w.npes());
  const std::uint64_t extra =
      params_.tasks % static_cast<std::uint64_t>(w.npes());
  const std::uint64_t mine =
      base + (static_cast<std::uint64_t>(w.pe()) < extra ? 1 : 0);
  for (std::uint64_t i = 0; i < mine; ++i)
    w.spawn(core::Task(fn_, nullptr, 0));
}

SparseEndgame::SparseEndgame(core::TaskRegistry& registry,
                             SparseEndgameParams params)
    : params_(params) {
  fn_ = registry.register_fn(
      "synthetic.sparse",
      [p = params_](core::Worker& w, std::span<const std::byte>) {
        w.compute(p.task_ns);
      });
}

void SparseEndgame::seed(core::Worker& w) const {
  if (static_cast<std::uint32_t>(w.pe()) >= params_.busy_pes) return;
  for (std::uint64_t i = 0; i < params_.tasks_per_busy; ++i)
    w.spawn(core::Task(fn_, nullptr, 0));
}

}  // namespace sws::workloads
