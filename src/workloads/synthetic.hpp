// Synthetic workloads for microbenchmarks and ablations:
//
//  * FixedWork — N independent tasks of fixed duration, seeded on one PE
//    or block-distributed. Used for Fig 6 steal-time curves and the steal
//    microbenchmark, where the interesting quantity is the steal itself.
//  * SparseEndgame — a few long tasks among many idle PEs: almost every
//    steal attempt fails, which is exactly the regime steal damping
//    (paper §4.3) targets.
#pragma once

#include <cstdint>

#include "core/scheduler.hpp"

namespace sws::workloads {

struct FixedWorkParams {
  std::uint64_t tasks = 1024;
  net::Nanos task_ns = 1000;
  bool seed_on_root_only = true;  ///< false = block-distribute the seeds
};

class FixedWork {
 public:
  FixedWork(core::TaskRegistry& registry, FixedWorkParams params);

  const FixedWorkParams& params() const noexcept { return params_; }
  core::TaskFnId fn() const noexcept { return fn_; }

  void seed(core::Worker& w) const;

  net::Nanos total_compute_ns() const noexcept {
    return params_.tasks * params_.task_ns;
  }

 private:
  FixedWorkParams params_;
  core::TaskFnId fn_ = 0;
};

struct SparseEndgameParams {
  std::uint32_t busy_pes = 1;       ///< PEs that get any work at all
  std::uint64_t tasks_per_busy = 64;
  net::Nanos task_ns = 200'000;     ///< long tasks → long idle stretches
};

class SparseEndgame {
 public:
  SparseEndgame(core::TaskRegistry& registry, SparseEndgameParams params);

  const SparseEndgameParams& params() const noexcept { return params_; }
  void seed(core::Worker& w) const;

 private:
  SparseEndgameParams params_;
  core::TaskFnId fn_ = 0;
};

}  // namespace sws::workloads
