// Umbrella header for the SWS library.
//
// Pulls in the full public API: the PGAS runtime, the task pool with both
// queue implementations (SDC baseline and SWS structured-atomic), and the
// benchmark workloads.
#pragma once

#include "core/pool_stats.hpp"
#include "core/scheduler.hpp"
#include "core/sdc_queue.hpp"
#include "core/stealval.hpp"
#include "core/sws_queue.hpp"
#include "core/task.hpp"
#include "core/task_registry.hpp"
#include "pgas/runtime.hpp"
#include "workloads/bpc.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/uts.hpp"
