#include "pgas/shmem.hpp"

#include "common/assert.hpp"

namespace sws::pgas::shmem {
namespace {

thread_local PeContext* t_ctx = nullptr;

}  // namespace

Scope::Scope(PeContext& context) {
  SWS_CHECK(t_ctx == nullptr, "shmem::Scope already bound on this thread");
  t_ctx = &context;
}

Scope::~Scope() { t_ctx = nullptr; }

PeContext& ctx() {
  SWS_ASSERT_MSG(t_ctx != nullptr,
                 "shmem call outside a shmem::Scope-bound thread");
  return *t_ctx;
}

int my_pe() { return ctx().pe(); }
int n_pes() { return ctx().npes(); }

void putmem(SymPtr dest, const void* source, std::size_t nelems, int pe) {
  ctx().put(pe, dest, 0, source, nelems);
}

void getmem(void* dest, SymPtr source, std::size_t nelems, int pe) {
  ctx().get(pe, source, 0, dest, nelems);
}

void putmem_nbi(SymPtr dest, const void* source, std::size_t nelems, int pe) {
  ctx().nbi_put(pe, dest, 0, source, nelems);
}

std::uint64_t atomic_fetch_add(SymPtr target, std::uint64_t value, int pe) {
  return ctx().fetch_add(pe, target, value);
}

std::uint64_t atomic_compare_swap(SymPtr target, std::uint64_t cond,
                                  std::uint64_t value, int pe) {
  return ctx().compare_swap(pe, target, cond, value);
}

std::uint64_t atomic_swap(SymPtr target, std::uint64_t value, int pe) {
  return ctx().swap(pe, target, value);
}

std::uint64_t atomic_fetch(SymPtr target, int pe) {
  return ctx().fetch(pe, target);
}

void atomic_set(SymPtr target, std::uint64_t value, int pe) {
  ctx().set(pe, target, value);
}

void atomic_add_nbi(SymPtr target, std::uint64_t value, int pe) {
  ctx().nbi_add(pe, target, value);
}

void ulong_p(SymPtr dest, std::uint64_t value, int pe) {
  ctx().put(pe, dest, 0, &value, sizeof(value));
}

std::uint64_t ulong_g(SymPtr source, int pe) {
  std::uint64_t v = 0;
  ctx().get(pe, source, 0, &v, sizeof(v));
  return v;
}

void quiet() { ctx().quiet(); }
void barrier_all() { ctx().barrier(); }
std::uint64_t sum_reduce(std::uint64_t value) { return ctx().sum_u64(value); }
std::uint64_t max_reduce(std::uint64_t value) { return ctx().max_u64(value); }
std::uint64_t broadcast(std::uint64_t value, int root) {
  return ctx().bcast_u64(value, root);
}

}  // namespace sws::pgas::shmem
