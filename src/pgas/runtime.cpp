#include "pgas/runtime.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "net/parallel_time_model.hpp"

namespace sws::pgas {

Runtime::Runtime(RuntimeConfig cfg) : cfg_(cfg) {
  SWS_CHECK(cfg_.npes > 0, "npes must be positive");
  // The parallel engine serves plain virtual-time runs; the reference
  // oracle stays serial by definition, and crash plans poll liveness
  // across PEs in ways only the serial total order licenses.
  const bool parallel = cfg_.mode == TimeMode::kVirtual &&
                        cfg_.engine_threads > 1 && !cfg_.sequencer_reference &&
                        cfg_.net.faults.crashes.empty();
  if (parallel) {
    time_ = std::make_unique<net::ParallelTimeModel>(
        cfg_.npes, cfg_.engine_threads, cfg_.net.min_remote_latency());
  } else if (cfg_.mode == TimeMode::kVirtual) {
    auto vt = std::make_unique<net::VirtualTimeModel>(cfg_.npes);
    vt->set_reference_mode(cfg_.sequencer_reference);
    time_ = std::move(vt);
  } else {
    time_ = std::make_unique<net::RealTimeModel>(cfg_.npes);
  }

  // Reject conflicting topology / link-table specs up front: every layer
  // (cost model, victim selection, fault presets) reads the same
  // NetworkParams::topology, so a bad spec must not get as far as a run.
  cfg_.net.validate(cfg_.npes);
  fabric_ = std::make_unique<net::Fabric>(
      *time_, net::NetworkModel(cfg_.net, cfg_.npes), cfg_.npes);
  heap_ = std::make_unique<SymmetricHeap>(cfg_.npes, cfg_.heap_bytes);
  for (int pe = 0; pe < cfg_.npes; ++pe)
    fabric_->register_arena(pe, heap_->arena_base(pe), heap_->size());

  // Control space for collectives, allocated once up front.
  coll_.barrier_flags =
      heap_->alloc(sizeof(std::uint64_t) * CollectiveSpace::kMaxRounds, 64);
  coll_.reduce_slots = heap_->alloc(
      sizeof(std::uint64_t) * static_cast<std::size_t>(cfg_.npes), 64);
  coll_.reduce_result = heap_->alloc(sizeof(std::uint64_t), 8);
  coll_.bcast_slot = heap_->alloc(sizeof(std::uint64_t), 8);

  metrics_.reset(cfg_.npes);
}

Runtime::~Runtime() = default;

void Runtime::run(const std::function<void(PeContext&)>& body) {
  time_->reset(cfg_.npes);
  fabric_->new_run();

  // Collective flags are generation counters that restart at 1 each run;
  // clear the persistent symmetric space so stale generations can't
  // satisfy the first barrier early.
  for (int pe = 0; pe < cfg_.npes; ++pe) {
    heap_->zero(pe, coll_.barrier_flags,
                sizeof(std::uint64_t) * CollectiveSpace::kMaxRounds);
    heap_->zero(pe, coll_.reduce_slots,
                sizeof(std::uint64_t) * static_cast<std::size_t>(cfg_.npes));
    heap_->zero(pe, coll_.reduce_result, sizeof(std::uint64_t));
    heap_->zero(pe, coll_.bcast_slot, sizeof(std::uint64_t));
  }

  std::mutex err_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg_.npes));
  for (int pe = 0; pe < cfg_.npes; ++pe) {
    threads.emplace_back([this, pe, &body, &err_mu, &first_error] {
      time_->pe_begin(pe);
      try {
        PeContext ctx(*this, pe);
        body(ctx);
      } catch (const net::PeKilled&) {
        // A planned crash-stop (FaultPlan::crashes): this PE's execution
        // simply ends here. Not an error — survivors keep running and the
        // run completes over the surviving set.
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // Always release the baton, even on error, or the sequencer stalls.
      time_->pe_end(pe);
    });
  }
  for (auto& t : threads) t.join();

  net::Nanos max_t = 0;
  for (int pe = 0; pe < cfg_.npes; ++pe)
    max_t = std::max(max_t, time_->now(pe));
  last_duration_ = max_t;

  if (cfg_.metrics) {
    fabric_->publish_metrics(metrics_);
    const auto clock = metrics_.gauge("runtime.pe_clock_ns",
                                      "per-PE clock at end of run");
    for (int pe = 0; pe < cfg_.npes; ++pe)
      metrics_.set(clock, pe, static_cast<std::uint64_t>(time_->now(pe)));
    metrics_.set(metrics_.gauge("runtime.last_run_duration_ns",
                                "max PE clock of the last run"),
                 0, static_cast<std::uint64_t>(max_t));
    metrics_.add(metrics_.counter("runtime.runs", "completed run() calls"),
                 0);
    if (fabric_->crashes_planned())
      metrics_.set(metrics_.gauge("runtime.deaths",
                                  "PEs dead at end of the last run"),
                   0, static_cast<std::uint64_t>(fabric_->num_dead()));
    if (const auto* pt =
            dynamic_cast<const net::ParallelTimeModel*>(time_.get())) {
      const auto es = pt->engine_stats();
      const auto g = [&](const char* name, const char* help,
                         std::uint64_t v) {
        metrics_.set(metrics_.gauge(name, help), 0, v);
      };
      g("engine.windows", "concurrent multi-PE window releases", es.windows);
      g("engine.window_pes", "PEs woken across all windows", es.window_pes);
      g("engine.solo_private", "solo private frontier releases",
        es.solo_private);
      g("engine.solo_global", "serialized global ops/syncs", es.solo_global);
      g("engine.cap_lookahead", "window edges set by the lookahead",
        es.cap_lookahead);
      g("engine.cap_global", "window edges set by an opaque-footprint gate",
        es.cap_global);
      g("engine.cap_deadline", "window edges set by an nbi deadline",
        es.cap_deadline);
      g("engine.cap_target", "window PEs horizon-capped by a targeted gate",
        es.cap_target);
      g("engine.deferred", "window candidates deferred to the solo path",
        es.deferred);
      g("engine.license_skips", "global parks elided by the solo license",
        es.license_skips);
      g("engine.parks", "total PE park events", es.parks);
      const auto sr = metrics_.gauge("engine.shard_releases",
                                     "releases granted per shard (slot = "
                                     "shard index)");
      for (int s = 0; s < pt->nshards(); ++s)
        metrics_.set(sr, s, pt->shard_releases(s));
    }
  }

  if (first_error) std::rethrow_exception(first_error);
}

// ---------------------------------------------------------------- context

PeContext::PeContext(Runtime& rt, int pe)
    : rt_(rt), pe_(pe), rng_(rt.config().seed, static_cast<std::uint64_t>(pe)) {}

int PeContext::npes() const noexcept { return rt_.npes(); }
net::Fabric& PeContext::fabric() noexcept { return rt_.fabric(); }
SymmetricHeap& PeContext::heap() noexcept { return rt_.heap(); }

net::Nanos PeContext::now() const { return rt_.time().now(pe_); }

void PeContext::compute(net::Nanos dt) {
  rt_.time().advance(pe_, dt);
  // A computing PE dies at the end of the slice that crosses its planned
  // crash time (no-op unless the plan schedules crashes).
  rt_.fabric().poll_crash(pe_);
}

std::byte* PeContext::local(SymPtr p, std::uint64_t delta) {
  return rt_.heap().local(pe_, p, delta);
}

std::uint64_t PeContext::local_load(SymPtr p) const {
  const std::byte* b = rt_.heap().local(pe_, p);
  return std::atomic_ref<const std::uint64_t>(
             *reinterpret_cast<const std::uint64_t*>(b))
      .load(std::memory_order_seq_cst);
}

}  // namespace sws::pgas
