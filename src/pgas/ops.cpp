// PeContext one-sided operation sugar: SymPtr-based wrappers over the
// fabric, always issued with this PE as the initiator.
#include "pgas/runtime.hpp"

namespace sws::pgas {

void PeContext::put(int target, SymPtr p, std::uint64_t delta,
                    const void* src, std::size_t n) {
  fabric().put(pe_, target, p.off + delta, src, n);
}

void PeContext::get(int target, SymPtr p, std::uint64_t delta, void* dst,
                    std::size_t n) {
  fabric().get(pe_, target, p.off + delta, dst, n);
}

std::uint64_t PeContext::fetch_add(int target, SymPtr p, std::uint64_t value) {
  return fabric().amo_fetch_add(pe_, target, p.off, value);
}

std::uint64_t PeContext::compare_swap(int target, SymPtr p,
                                      std::uint64_t expected,
                                      std::uint64_t desired) {
  return fabric().amo_compare_swap(pe_, target, p.off, expected, desired);
}

std::uint64_t PeContext::swap(int target, SymPtr p, std::uint64_t value) {
  return fabric().amo_swap(pe_, target, p.off, value);
}

std::uint64_t PeContext::fetch(int target, SymPtr p) {
  return fabric().amo_fetch(pe_, target, p.off);
}

void PeContext::set(int target, SymPtr p, std::uint64_t value) {
  fabric().amo_set(pe_, target, p.off, value);
}

void PeContext::nbi_put(int target, SymPtr p, std::uint64_t delta,
                        const void* src, std::size_t n) {
  fabric().nbi_put(pe_, target, p.off + delta, src, n);
}

void PeContext::nbi_add(int target, SymPtr p, std::uint64_t value) {
  fabric().nbi_amo_add(pe_, target, p.off, value);
}

void PeContext::nbi_set(int target, SymPtr p, std::uint64_t value) {
  fabric().nbi_amo_set(pe_, target, p.off, value);
}

void PeContext::quiet() { fabric().quiet(pe_); }

}  // namespace sws::pgas
