// The PGAS runtime: spawns one thread per PE over the selected time
// backend, wires the symmetric heap into the fabric, and hands each PE a
// PeContext — the per-PE handle through which all communication flows
// (the moral equivalent of the OpenSHMEM API surface).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "pgas/symmetric_heap.hpp"

namespace sws::pgas {

enum class TimeMode { kVirtual, kReal };

struct RuntimeConfig {
  int npes = 4;
  std::size_t heap_bytes = std::size_t{4} << 20;  ///< per-PE arena size
  net::NetworkParams net{};
  TimeMode mode = TimeMode::kVirtual;
  std::uint64_t seed = 42;  ///< base seed for per-PE RNG streams
  /// Virtual mode only: run the sequencer in its legacy linear-scan
  /// strategy (no ready heap, no run-to-horizon batching). Schedules are
  /// identical; exists for A/B determinism tests and benchmarks.
  bool sequencer_reference = false;
  /// Virtual mode only: engine parallelism. 1 (default) = the serial
  /// baton-passing sequencer. >1 = the sharded ParallelTimeModel with
  /// this many shard lock groups, releasing *windows* of PEs that run
  /// concurrently below a conservative lookahead horizon. Schedules stay
  /// byte-identical across every value (tests/test_determinism_ab.cpp);
  /// only wall-clock changes. Ignored (serial) under sequencer_reference
  /// or when a crash plan is armed — crash-stop visibility polling
  /// assumes the serial total order.
  int engine_threads = 1;
  /// Publish runtime/fabric accounting into the metrics registry at the
  /// end of every run() (docs/observability.md). Off the hot path either
  /// way — publishing happens once, after the PE threads join.
  bool metrics = false;
};

class Runtime;

/// Per-PE handle; passed by reference to the SPMD body and to task code.
/// Not thread-safe across PEs by design: each PE thread owns exactly one.
class PeContext {
 public:
  PeContext(Runtime& rt, int pe);

  int pe() const noexcept { return pe_; }
  int npes() const noexcept;
  Runtime& runtime() noexcept { return rt_; }
  net::Fabric& fabric() noexcept;
  SymmetricHeap& heap() noexcept;

  /// Current time on this PE's clock (virtual ns in DES mode).
  net::Nanos now() const;
  /// Charge `dt` of task computation to this PE (the DES analogue of
  /// "this task runs for 5 ms").
  void compute(net::Nanos dt);
  /// Deterministic per-(seed, PE) random stream.
  Xoshiro256& rng() noexcept { return rng_; }

  // --- one-sided operations against symmetric objects -------------------
  void put(int target, SymPtr p, std::uint64_t delta, const void* src,
           std::size_t n);
  void get(int target, SymPtr p, std::uint64_t delta, void* dst,
           std::size_t n);
  std::uint64_t fetch_add(int target, SymPtr p, std::uint64_t value);
  std::uint64_t compare_swap(int target, SymPtr p, std::uint64_t expected,
                             std::uint64_t desired);
  std::uint64_t swap(int target, SymPtr p, std::uint64_t value);
  std::uint64_t fetch(int target, SymPtr p);
  void set(int target, SymPtr p, std::uint64_t value);
  void nbi_put(int target, SymPtr p, std::uint64_t delta, const void* src,
               std::size_t n);
  void nbi_add(int target, SymPtr p, std::uint64_t value);
  /// Non-blocking idempotent store (survives duplicated delivery).
  void nbi_set(int target, SymPtr p, std::uint64_t value);
  /// Complete all of this PE's outstanding non-blocking ops.
  void quiet();

  /// Pointer into this PE's own arena (owner-side direct access).
  std::byte* local(SymPtr p, std::uint64_t delta = 0);
  /// Owner-side atomic view of a local 64-bit symmetric word. Direct
  /// (uncharged) access — used for cheap local polling; mutation should go
  /// through the fabric so accounting stays honest.
  std::uint64_t local_load(SymPtr p) const;

  // --- collectives -------------------------------------------------------
  /// Dissemination barrier across all PEs (log2(P) rounds of puts).
  void barrier();
  /// All-reduce sum of a 64-bit value (centralized at PE 0).
  std::uint64_t sum_u64(std::uint64_t value);
  /// All-reduce max.
  std::uint64_t max_u64(std::uint64_t value);
  /// Broadcast from `root` to everyone.
  std::uint64_t bcast_u64(std::uint64_t value, int root);

 private:
  Runtime& rt_;
  int pe_;
  Xoshiro256 rng_;
  std::uint64_t barrier_gen_ = 0;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int npes() const noexcept { return cfg_.npes; }
  const RuntimeConfig& config() const noexcept { return cfg_; }
  SymmetricHeap& heap() noexcept { return *heap_; }
  net::Fabric& fabric() noexcept { return *fabric_; }
  net::TimeModel& time() noexcept { return *time_; }

  /// Execute `body(ctx)` on every PE (SPMD); returns when all PEs finish.
  /// Clocks restart at 0 each call; heap contents persist across calls.
  /// The first exception thrown by any PE is rethrown here after join.
  void run(const std::function<void(PeContext&)>& body);

  /// Longest per-PE virtual runtime of the last run() — the paper's
  /// whole-program time ("maximum runtime of any process", §5.3).
  net::Nanos last_run_duration() const noexcept { return last_duration_; }

  /// Cross-layer metrics registry (docs/observability.md). Always
  /// constructed; the runtime itself only publishes into it after run()
  /// when config().metrics is set, but other layers (scheduler, bench
  /// harness) may register and update metrics regardless.
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  // --- internal symmetric control space used by collectives --------------
  struct CollectiveSpace {
    SymPtr barrier_flags;  ///< kMaxRounds u64 generation flags per PE
    SymPtr reduce_slots;   ///< npes u64 contribution slots (used on root)
    SymPtr reduce_result;  ///< 1 u64
    SymPtr bcast_slot;     ///< 1 u64
    static constexpr int kMaxRounds = 16;  // supports up to 65536 PEs
  };
  const CollectiveSpace& coll() const noexcept { return coll_; }

 private:
  RuntimeConfig cfg_;
  std::unique_ptr<net::TimeModel> time_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<SymmetricHeap> heap_;
  CollectiveSpace coll_{};
  obs::MetricsRegistry metrics_;
  net::Nanos last_duration_ = 0;
};

}  // namespace sws::pgas
