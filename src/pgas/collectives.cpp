// Collectives built from one-sided operations, in the style PGAS runtimes
// actually use: a dissemination barrier (log2 P rounds of 8-byte puts with
// generation-number flags) and centralized reductions/broadcast for the
// low-frequency setup/teardown paths.
#include "common/assert.hpp"
#include "pgas/runtime.hpp"

namespace sws::pgas {
namespace {

/// Poll interval while waiting on a flag; every wait advances the PE's
/// clock so the virtual sequencer always makes progress.
constexpr net::Nanos kPollNs = 200;

int dissemination_rounds(int npes) {
  int rounds = 0;
  for (int span = 1; span < npes; span <<= 1) ++rounds;
  return rounds;
}

}  // namespace

void PeContext::barrier() {
  const int p = npes();
  if (p == 1) return;
  const auto& coll = rt_.coll();
  const std::uint64_t gen = ++barrier_gen_;
  const int rounds = dissemination_rounds(p);
  SWS_ASSERT(rounds <= Runtime::CollectiveSpace::kMaxRounds);

  for (int r = 0; r < rounds; ++r) {
    const int partner = (pe_ + (1 << r)) % p;
    const SymPtr flag = coll.barrier_flags.plus(static_cast<std::uint64_t>(r) * 8);
    fabric().amo_set(pe_, partner, flag.off, gen);
    // Wait for our own round-r flag to reach this generation. Flags are
    // monotonic, so a fast partner being a generation ahead is harmless.
    while (local_load(flag) < gen) compute(kPollNs);
  }
}

std::uint64_t PeContext::sum_u64(std::uint64_t value) {
  const auto& coll = rt_.coll();
  const SymPtr slot =
      coll.reduce_slots.plus(static_cast<std::uint64_t>(pe_) * 8);
  fabric().amo_set(pe_, /*target=*/0, slot.off, value);
  barrier();
  if (pe_ == 0) {
    std::uint64_t total = 0;
    for (int i = 0; i < npes(); ++i)
      total += local_load(coll.reduce_slots.plus(static_cast<std::uint64_t>(i) * 8));
    fabric().amo_set(pe_, 0, coll.reduce_result.off, total);
  }
  barrier();
  return fetch(/*target=*/0, coll.reduce_result);
}

std::uint64_t PeContext::max_u64(std::uint64_t value) {
  const auto& coll = rt_.coll();
  const SymPtr slot =
      coll.reduce_slots.plus(static_cast<std::uint64_t>(pe_) * 8);
  fabric().amo_set(pe_, /*target=*/0, slot.off, value);
  barrier();
  if (pe_ == 0) {
    std::uint64_t best = 0;
    for (int i = 0; i < npes(); ++i)
      best = std::max(best, local_load(coll.reduce_slots.plus(
                                static_cast<std::uint64_t>(i) * 8)));
    fabric().amo_set(pe_, 0, coll.reduce_result.off, best);
  }
  barrier();
  return fetch(/*target=*/0, coll.reduce_result);
}

std::uint64_t PeContext::bcast_u64(std::uint64_t value, int root) {
  SWS_ASSERT(root >= 0 && root < npes());
  const auto& coll = rt_.coll();
  if (pe_ == root) fabric().amo_set(pe_, root, coll.bcast_slot.off, value);
  barrier();
  const std::uint64_t out =
      pe_ == root ? value : fetch(root, coll.bcast_slot);
  barrier();  // nobody re-publishes before every PE has read this round
  return out;
}

}  // namespace pgas
