// OpenSHMEM-style veneer.
//
// The paper's runtime is written against OpenSHMEM (§1, §5: Sandia
// OpenSHMEM over UCX). This header exposes the familiar subset of that
// API as free functions over a thread-bound PeContext, so code ported
// from real SHMEM programs reads naturally:
//
//   rt.run([&](pgas::PeContext& ctx) {
//     shmem::Scope scope(ctx);                 // bind this thread
//     if (shmem::my_pe() == 0)
//       shmem::ulong_p(flag, 1, 1);            // put to PE 1
//     shmem::barrier_all();
//     ...
//   });
//
// Only the operations the SWS/SDC protocols use are provided; this is a
// compatibility surface, not a full OpenSHMEM implementation.
#pragma once

#include <cstdint>

#include "pgas/runtime.hpp"

namespace sws::pgas::shmem {

/// Binds `ctx` to the calling thread for the lifetime of the scope.
/// Nesting is rejected — one PE per thread, as in SHMEM.
class Scope {
 public:
  explicit Scope(PeContext& ctx);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

/// The calling thread's bound context; aborts if none.
PeContext& ctx();

int my_pe();
int n_pes();

// --- data movement (names follow shmem_putmem/getmem) -------------------
void putmem(SymPtr dest, const void* source, std::size_t nelems, int pe);
void getmem(void* dest, SymPtr source, std::size_t nelems, int pe);
void putmem_nbi(SymPtr dest, const void* source, std::size_t nelems, int pe);

// --- 64-bit atomics (shmem_uint64_atomic_*) ------------------------------
std::uint64_t atomic_fetch_add(SymPtr target, std::uint64_t value, int pe);
std::uint64_t atomic_compare_swap(SymPtr target, std::uint64_t cond,
                                  std::uint64_t value, int pe);
std::uint64_t atomic_swap(SymPtr target, std::uint64_t value, int pe);
std::uint64_t atomic_fetch(SymPtr target, int pe);
void atomic_set(SymPtr target, std::uint64_t value, int pe);
void atomic_add_nbi(SymPtr target, std::uint64_t value, int pe);

/// 8-byte scalar put (shmem_uint64_p).
void ulong_p(SymPtr dest, std::uint64_t value, int pe);
/// 8-byte scalar get (shmem_uint64_g).
std::uint64_t ulong_g(SymPtr source, int pe);

// --- ordering & collectives ----------------------------------------------
void quiet();
void barrier_all();
std::uint64_t sum_reduce(std::uint64_t value);
std::uint64_t max_reduce(std::uint64_t value);
std::uint64_t broadcast(std::uint64_t value, int root);

}  // namespace sws::pgas::shmem
