#include "pgas/symmetric_heap.hpp"

#include <cstring>
#include <new>

#include "common/assert.hpp"

namespace sws::pgas {

// --------------------------------------------------------- OffsetAllocator

OffsetAllocator::OffsetAllocator(std::uint64_t size)
    : size_(size), free_bytes_(size) {
  if (size > 0) free_.emplace(0, size);
}

std::uint64_t OffsetAllocator::alloc(std::uint64_t bytes,
                                     std::uint64_t align) {
  SWS_CHECK(bytes > 0, "zero-byte allocation");
  SWS_CHECK(align > 0 && (align & (align - 1)) == 0,
            "alignment must be a power of two");
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const std::uint64_t start = it->first;
    const std::uint64_t len = it->second;
    const std::uint64_t aligned = (start + align - 1) & ~(align - 1);
    const std::uint64_t pad = aligned - start;
    if (len < pad + bytes) continue;

    // Carve [aligned, aligned+bytes) out of this block. The padding
    // prefix stays free; so does any suffix.
    const std::uint64_t suffix = len - pad - bytes;
    free_.erase(it);
    if (pad > 0) free_.emplace(start, pad);
    if (suffix > 0) free_.emplace(aligned + bytes, suffix);
    live_.emplace(aligned, bytes);
    free_bytes_ -= bytes;
    return aligned;
  }
  return SymPtr::kNull;
}

void OffsetAllocator::free(std::uint64_t offset) {
  const auto it = live_.find(offset);
  SWS_CHECK(it != live_.end(), "free of unknown offset");
  std::uint64_t start = offset;
  std::uint64_t len = it->second;
  live_.erase(it);
  free_bytes_ += len;

  // Coalesce with the following free block, if adjacent.
  auto next = free_.lower_bound(start);
  if (next != free_.end() && next->first == start + len) {
    len += next->second;
    next = free_.erase(next);
  }
  // Coalesce with the preceding free block, if adjacent.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == start) {
      start = prev->first;
      len += prev->second;
      free_.erase(prev);
    }
  }
  free_.emplace(start, len);
}

// ----------------------------------------------------------- SymmetricHeap

SymmetricHeap::SymmetricHeap(int npes, std::size_t bytes_per_pe)
    : bytes_(bytes_per_pe), allocator_(bytes_per_pe) {
  SWS_CHECK(npes > 0, "need at least one PE");
  SWS_CHECK(bytes_per_pe >= 64, "arena too small");
  arenas_.resize(static_cast<std::size_t>(npes));
  for (auto& a : arenas_) a.assign(bytes_per_pe, std::byte{0});
}

SymPtr SymmetricHeap::alloc(std::size_t bytes, std::size_t align) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t off = allocator_.alloc(bytes, align);
  if (off == SymPtr::kNull) throw std::bad_alloc();
  return SymPtr{off};
}

void SymmetricHeap::free(SymPtr p) {
  SWS_CHECK(!p.is_null(), "free of null SymPtr");
  std::lock_guard<std::mutex> lk(mu_);
  allocator_.free(p.off);
}

std::uint64_t SymmetricHeap::bytes_free() const {
  std::lock_guard<std::mutex> lk(mu_);
  return allocator_.bytes_free();
}

std::byte* SymmetricHeap::local(int pe, SymPtr p, std::uint64_t delta) const {
  SWS_ASSERT(pe >= 0 && pe < npes());
  SWS_ASSERT(!p.is_null());
  SWS_ASSERT(p.off + delta <= bytes_);
  // const_cast-free: arenas_ is mutable storage; this accessor is
  // logically non-const but marked const for caller convenience.
  auto& arena = const_cast<std::vector<std::byte>&>(
      arenas_[static_cast<std::size_t>(pe)]);
  return arena.data() + p.off + delta;
}

std::byte* SymmetricHeap::arena_base(int pe) const {
  SWS_ASSERT(pe >= 0 && pe < npes());
  auto& arena = const_cast<std::vector<std::byte>&>(
      arenas_[static_cast<std::size_t>(pe)]);
  return arena.data();
}

void SymmetricHeap::zero(int pe, SymPtr p, std::size_t bytes) const {
  std::memset(local(pe, p), 0, bytes);
}

}  // namespace sws::pgas
