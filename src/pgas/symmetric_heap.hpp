// Symmetric heap: the PGAS memory substrate.
//
// Every PE owns an arena of identical size; an allocation returns a
// *symmetric pointer* (an offset valid in every PE's arena), exactly like
// shmem_malloc on OpenSHMEM's symmetric heap. Allocation metadata lives
// only on the allocating side (a first-fit free list with coalescing over
// the shared offset space), because the layout is identical everywhere.
//
// Allocation is expected during setup (before or between Runtime::run
// calls); it is mutex-protected so collective allocation from PE code
// also works.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace sws::pgas {

/// Strongly-typed offset into every PE's arena. Value-semantic; kNull when
/// default-constructed.
struct SymPtr {
  static constexpr std::uint64_t kNull = ~std::uint64_t{0};
  std::uint64_t off = kNull;

  bool is_null() const noexcept { return off == kNull; }
  /// Byte displacement — symmetric pointer arithmetic.
  SymPtr plus(std::uint64_t delta) const noexcept { return SymPtr{off + delta}; }
  friend bool operator==(SymPtr a, SymPtr b) noexcept { return a.off == b.off; }
};

/// First-fit free-list allocator over the abstract range [0, size).
/// Separated from the heap so it can be unit-tested in isolation.
class OffsetAllocator {
 public:
  explicit OffsetAllocator(std::uint64_t size);

  /// Returns the offset of a block of `bytes` aligned to `align`, or
  /// SymPtr::kNull if the space is exhausted/fragmented.
  std::uint64_t alloc(std::uint64_t bytes, std::uint64_t align);
  /// Return a block previously handed out by alloc(). Coalesces neighbors.
  void free(std::uint64_t offset);

  std::uint64_t bytes_free() const noexcept { return free_bytes_; }
  std::uint64_t size() const noexcept { return size_; }
  std::size_t live_allocations() const noexcept { return live_.size(); }

 private:
  std::uint64_t size_;
  std::uint64_t free_bytes_;
  std::map<std::uint64_t, std::uint64_t> free_;  // offset -> length
  std::map<std::uint64_t, std::uint64_t> live_;  // offset -> length
};

class SymmetricHeap {
 public:
  SymmetricHeap(int npes, std::size_t bytes_per_pe);

  int npes() const noexcept { return static_cast<int>(arenas_.size()); }
  std::size_t size() const noexcept { return bytes_; }

  /// Collective-style allocation: one call reserves the same offset range
  /// in every PE's arena. Thread-safe. Throws std::bad_alloc on exhaustion.
  SymPtr alloc(std::size_t bytes, std::size_t align = 8);
  void free(SymPtr p);

  std::uint64_t bytes_free() const;

  /// The address of `p` (+delta bytes) within PE `pe`'s arena.
  std::byte* local(int pe, SymPtr p, std::uint64_t delta = 0) const;

  /// Base pointer of a PE's arena — used to register with the fabric.
  std::byte* arena_base(int pe) const;

  /// Zero-fill an allocation on one PE (owner-side initialization).
  void zero(int pe, SymPtr p, std::size_t bytes) const;

 private:
  std::size_t bytes_;
  std::vector<std::vector<std::byte>> arenas_;
  mutable std::mutex mu_;
  OffsetAllocator allocator_;
};

}  // namespace sws::pgas
