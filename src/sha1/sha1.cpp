#include "sha1/sha1.hpp"

#include <cstring>

namespace sws {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

void Sha1::reset() noexcept {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha1::process_block(const std::uint8_t block[64]) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i)
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    process_block(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Sha1Digest Sha1::finish() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i)
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - i * 8));
  // Bypass total_len_ bookkeeping for the length field itself: feed it
  // through update (it only fills the final block, already aligned).
  update(len_be, 8);

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Sha1Digest Sha1::hash(const void* data, std::size_t len) noexcept {
  Sha1 h;
  h.update(data, len);
  return h.finish();
}

std::string to_hex(const Sha1Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

Sha1Digest uts_child_digest(const Sha1Digest& parent,
                            std::uint32_t child_index) noexcept {
  std::uint8_t buf[24];
  std::memcpy(buf, parent.data(), parent.size());
  buf[20] = static_cast<std::uint8_t>(child_index >> 24);
  buf[21] = static_cast<std::uint8_t>(child_index >> 16);
  buf[22] = static_cast<std::uint8_t>(child_index >> 8);
  buf[23] = static_cast<std::uint8_t>(child_index);
  return Sha1::hash(buf, sizeof(buf));
}

std::uint32_t digest_to_u32(const Sha1Digest& d) noexcept {
  return (static_cast<std::uint32_t>(d[0]) << 24) |
         (static_cast<std::uint32_t>(d[1]) << 16) |
         (static_cast<std::uint32_t>(d[2]) << 8) |
         static_cast<std::uint32_t>(d[3]);
}

}  // namespace sws
