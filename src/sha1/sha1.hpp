// SHA-1 implemented from scratch (FIPS 180-1).
//
// The Unbalanced Tree Search benchmark derives a deterministic but
// unpredictable random stream by hashing (parent digest || child index);
// node descriptors are 20-byte digests (paper §5.2.2). This module provides
// exactly that: incremental hashing plus the UTS-style child-derivation
// helper. SHA-1 is used here as a PRF, not for security.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sws {

using Sha1Digest = std::array<std::uint8_t, 20>;

class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(const void* data, std::size_t len) noexcept;
  /// Finalize and return the digest. The object must be reset() before
  /// further use.
  Sha1Digest finish() noexcept;

  /// One-shot convenience.
  static Sha1Digest hash(const void* data, std::size_t len) noexcept;
  static Sha1Digest hash(const std::string& s) noexcept {
    return hash(s.data(), s.size());
  }

 private:
  void process_block(const std::uint8_t block[64]) noexcept;

  std::uint32_t h_[5];
  std::uint64_t total_len_;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
};

/// Render a digest as 40 lowercase hex characters.
std::string to_hex(const Sha1Digest& d);

/// UTS child derivation: digest of (parent digest || big-endian child index),
/// exactly the composition the UTS benchmark uses to walk the tree.
Sha1Digest uts_child_digest(const Sha1Digest& parent,
                            std::uint32_t child_index) noexcept;

/// Interpret the leading 4 bytes of a digest as a big-endian u32 — the
/// "random value" UTS extracts from a node to decide its branching.
std::uint32_t digest_to_u32(const Sha1Digest& d) noexcept;

}  // namespace sws
