// The simulated RDMA fabric: executes one-sided operations against
// registered per-PE memory arenas, charges time through the TimeModel,
// and accounts traffic per PE.
//
// Semantics (DESIGN.md §5):
//  * Blocking ops stall the initiator for the modeled cost, then apply
//    their memory effect. Under the virtual sequencer this serializes all
//    effects in virtual-clock order, so protocol races resolve
//    deterministically.
//  * Non-blocking ops (nbi_*) charge only an issue overhead; their memory
//    effect is queued and delivered when time passes `now +
//    delivery_delay` — i.e. completions genuinely arrive late, which is
//    what the paper's completion epochs (§4.2) exist to absorb. The
//    virtual backend delivers via the sequencer hook; the real-time
//    backend via a fabric progress thread.
//  * quiet(pe) blocks until all of pe's outstanding nbi ops delivered
//    (the OpenSHMEM shmem_quiet contract).
//
// Pending-op storage (docs/performance.md): a queued nbi effect is a
// tagged union, not a std::function. AMOs and puts up to 64 B live
// entirely inside the queue entry; larger put payloads borrow a slab
// buffer from a free-listed pool that is recycled across deliveries and
// runs, so the steady-state nbi path performs no heap allocation.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/network_model.hpp"
#include "net/time_model.hpp"
#include "net/types.hpp"

namespace sws::obs {
class MetricsRegistry;
}

namespace sws::net {

/// Thrown on the crashing PE's own thread at the first operation boundary
/// at/after its planned crash time (FaultPlan::crashes). Deliberately not
/// a std::exception: nothing may "handle" a crash — the runtime treats it
/// as the planned end of that PE's execution, and the scheduler only
/// intercepts it to finalize host-side statistics before re-throwing.
struct PeKilled {
  int pe = -1;
  Nanos at_ns = 0;  ///< virtual time at which the PE observed its death
};

/// Value every fetch-class operation returns when its target PE is dead.
/// All-ones is "poison" in both protocols: an SWS stealval decodes to an
/// over-soft-cap asteals count (thief refuses), an SDC lock word reads as
/// held-by-nobody-valid, and metadata reads fail range checks — so a
/// survivor that races a death fails safe and can use the value itself as
/// the death signal (core::DeathRegistry::probe).
inline constexpr std::uint64_t kDeadFetchValue = ~std::uint64_t{0};

/// Label of the operation a PE most recently issued — written before the
/// op's time charge, so while a PE is parked inside the sequencer its
/// label names the op whose memory effect it will apply on resume. The
/// schedule-exploration harness reads these to render human-readable
/// event traces. Only meaningful under the virtual backend, where the
/// baton serializes writer and reader.
struct OpLabel {
  OpKind kind = OpKind::kCount_;  ///< kCount_ = no op issued yet
  int target = -1;
  std::uint64_t offset = 0;
  /// Observability span the op was issued under (0 = none): the steal /
  /// release / acquire lifecycle id the scheduler set via set_span(), so
  /// a trace can show every fabric op as a child of the protocol
  /// operation that issued it.
  std::uint64_t span = 0;
};

/// One issued fabric operation, as seen by an op observer: identity,
/// enclosing span, and the initiator-side charge window [begin, begin +
/// dur). For non-blocking ops the window covers the issue overhead only;
/// delivery happens later (Fabric semantics above).
struct OpRecord {
  int initiator = -1;
  int target = -1;
  OpKind kind = OpKind::kCount_;
  std::uint64_t offset = 0;
  std::uint64_t span = 0;
  std::size_t bytes = 0;
  Nanos begin = 0;
  Nanos dur = 0;
};

/// Called for every op issued under a nonzero span, from the initiating
/// PE's thread, after the cost is computed and before the clock advances.
/// Must only observe (record into a per-PE trace ring) — it runs on the
/// hot path and must not touch the fabric or the clock.
using OpObserver = std::function<void(const OpRecord&)>;

/// Memory effect of a queued non-blocking op, stored without per-op heap
/// allocation: a tagged union whose put payload is inline up to
/// kInlineBytes and otherwise lives in a recycled slab (see Fabric).
struct PendingEffect {
  enum class Kind : std::uint8_t { kNone, kAmoAdd, kAmoSet, kPut };
  static constexpr std::size_t kInlineBytes = 64;

  Kind kind = Kind::kNone;
  bool in_slab = false;       ///< kPut only: payload in Fabric::slabs_[slab]
  std::uint32_t slab = 0;     ///< slab index when in_slab
  std::uint32_t len = 0;      ///< kPut payload length in bytes
  void* dst = nullptr;        ///< translated target address
  std::uint64_t value = 0;    ///< AMO operand
  std::array<std::byte, kInlineBytes> inline_buf;  ///< kPut inline payload
};

/// Allocation accounting for the pending-effect pool. `slab_grabs -
/// slab_allocs` is the number of large-put payloads served by recycling;
/// at steady state slab_allocs stops growing (tests/test_fabric.cpp).
struct EffectPoolStats {
  std::uint64_t inline_effects = 0;  ///< AMOs + puts <= kInlineBytes
  std::uint64_t slab_grabs = 0;      ///< large-put payloads enqueued
  std::uint64_t slab_allocs = 0;     ///< grabs that created a fresh slab
};

class Fabric {
 public:
  Fabric(TimeModel& time, NetworkModel model, int npes);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Drop all pending ops and stats; size the fabric for `npes` PEs.
  /// Arenas must be re-registered afterwards.
  void reset(int npes);

  /// Per-run reset: clocks restart at 0, so drop the NIC busy horizons
  /// and any stray pending non-blocking ops. Arenas and stats survive.
  void new_run();

  /// Expose PE `pe`'s symmetric arena to one-sided access.
  void register_arena(int pe, std::byte* base, std::size_t size);

  int npes() const noexcept { return static_cast<int>(arenas_.size()); }
  TimeModel& time() noexcept { return time_; }
  const NetworkModel& model() const noexcept { return model_; }

  // --- blocking one-sided data movement --------------------------------
  void put(int initiator, int target, std::uint64_t offset, const void* src,
           std::size_t n);
  void get(int initiator, int target, std::uint64_t offset, void* dst,
           std::size_t n);

  /// Word-granular variants for metadata that other PEs mutate
  /// concurrently: charged as a single put/get of 8*nwords bytes, applied
  /// as per-word atomics so no torn values are observable under the
  /// real-time backend.
  void put_words(int initiator, int target, std::uint64_t offset,
                 const std::uint64_t* src, std::size_t nwords);
  void get_words(int initiator, int target, std::uint64_t offset,
                 std::uint64_t* dst, std::size_t nwords);

  // --- blocking 64-bit atomics (OpenSHMEM AMO set) ---------------------
  std::uint64_t amo_fetch_add(int initiator, int target, std::uint64_t offset,
                              std::uint64_t value);
  std::uint64_t amo_compare_swap(int initiator, int target,
                                 std::uint64_t offset, std::uint64_t expected,
                                 std::uint64_t desired);
  std::uint64_t amo_swap(int initiator, int target, std::uint64_t offset,
                         std::uint64_t value);
  std::uint64_t amo_fetch(int initiator, int target, std::uint64_t offset);
  void amo_set(int initiator, int target, std::uint64_t offset,
               std::uint64_t value);

  // --- non-blocking ops -------------------------------------------------
  void nbi_put(int initiator, int target, std::uint64_t offset,
               const void* src, std::size_t n);
  void nbi_amo_add(int initiator, int target, std::uint64_t offset,
                   std::uint64_t value);
  /// Non-blocking atomic store: idempotent, so duplicated delivery is
  /// harmless — what tagged completion records (SDC ring) are built on.
  void nbi_amo_set(int initiator, int target, std::uint64_t offset,
                   std::uint64_t value);

  /// Block until all nbi ops issued by `pe` have been delivered.
  void quiet(int pe);

  /// Count of `pe`'s not-yet-delivered nbi ops.
  int pending(int pe) const;
  /// Count of not-yet-delivered nbi ops *targeting* `pe` (any initiator).
  /// Lets owners prove a completion region can no longer change under
  /// them before reusing it (SWS epoch recycle under duplication).
  int pending_to(int pe) const;
  /// pending_to() for wait loops inside a run: under the parallel engine
  /// the read is first serialized at the global frontier (other
  /// initiators' enqueues mutate the counter at their lex positions), so
  /// the observed count is the serial schedule's. Serial engines read
  /// directly — same cost, same value.
  int pending_to_synced(int pe);

  // --- crash-stop failures ----------------------------------------------
  /// Any CrashEvents in the plan? Constant over the fabric's lifetime;
  /// consumers gate every resilience code path on it so crash-free runs
  /// stay byte-identical to pre-crash-subsystem builds.
  bool crashes_planned() const noexcept { return crashes_armed_; }
  /// Is `pe` still alive? Ground truth — survivors should learn deaths
  /// through poison verdicts / DeathRegistry probes, not by polling this;
  /// it exists for the fabric's own op handling, assertions, and tests.
  bool alive(int pe) const noexcept {
    return !dead_[static_cast<std::size_t>(pe)].load(
        std::memory_order_relaxed);
  }
  int num_dead() const noexcept {
    return ndead_.load(std::memory_order_relaxed);
  }
  /// Crash check for non-op wait points (PeContext::compute, quiet polls):
  /// throws PeKilled iff `pe`'s planned crash time has passed. Every
  /// fabric op checks implicitly via charge().
  void poll_crash(int pe) {
    if (crashes_armed_) maybe_crash(pe);
  }
  /// Disarm `pe`'s planned crash (idempotent). The scheduler calls this
  /// when a PE leaves its scheduling loop: crashes model failures during
  /// work, not during teardown, where a death would be indistinguishable
  /// from a clean exit anyway.
  void disarm_crash(int pe) {
    if (crashes_armed_)
      crash_at_[static_cast<std::size_t>(pe)] = kNoPendingDeadline;
  }
  /// Mark `pe` dead: drop every pending nbi effect it initiated or that
  /// targets it (reconciling the pending counters and slab refcounts).
  /// Called by the dying PE itself just before PeKilled is thrown; public
  /// for tests that stage deaths directly.
  void mark_dead(int pe);

  // --- fault injection --------------------------------------------------
  bool faults_enabled() const noexcept { return faults_ != nullptr; }
  bool fault_duplicates_possible() const noexcept {
    return faults_ != nullptr && faults_->plan().duplicates_possible();
  }
  const FaultInjector* fault_injector() const noexcept {
    return faults_.get();
  }
  FaultStats fault_stats() const {
    return faults_ ? faults_->total_stats() : FaultStats{};
  }

  /// Most recent operation issued by `pe` (see OpLabel).
  const OpLabel& last_op(int pe) const;

  // --- observability ----------------------------------------------------
  /// Set `pe`'s current span id; every op `pe` issues until the next
  /// set_span carries it (OpLabel::span) and is reported to the op
  /// observer. 0 clears the span. Per-PE state — each PE sets its own.
  void set_span(int pe, std::uint64_t span) noexcept;
  std::uint64_t current_span(int pe) const noexcept;
  /// Install (or clear, with nullptr) the op observer. Not thread-safe
  /// against in-flight ops: install before the PEs run.
  void set_op_observer(OpObserver cb) { observer_ = std::move(cb); }

  /// Publish this fabric's accounting (per-PE op counts and bytes, the
  /// effect pool, fault totals) into `reg` under the fabric.* namespace
  /// (docs/observability.md). Overwrites previously published values.
  void publish_metrics(obs::MetricsRegistry& reg) const;

  /// Monotonic allocation counters of the pending-effect pool (survive
  /// reset/new_run so tests can difference across rounds).
  EffectPoolStats effect_pool_stats() const;

  // --- accounting -------------------------------------------------------
  const FabricStats& stats(int pe) const;
  FabricStats total_stats() const;
  void reset_stats();

 private:
  struct Arena {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };
  struct PendingOp {
    Nanos deadline;
    std::uint64_t seq;  // tie-break for determinism
    int initiator;
    int target;
    PendingEffect effect;
    bool operator>(const PendingOp& o) const noexcept {
      return deadline != o.deadline ? deadline > o.deadline : seq > o.seq;
    }
  };
  /// Pool entry for large put payloads. `refs` counts queued ops sharing
  /// the buffer (a fault-injected duplicate shares its original's slab);
  /// the last delivery returns it to the free list. The byte vector keeps
  /// its capacity across reuse, so a recycled grab of a same-or-smaller
  /// payload allocates nothing.
  struct Slab {
    static constexpr std::uint32_t kNone = ~std::uint32_t{0};
    std::vector<std::byte> data;
    int refs = 0;
    std::uint32_t next_free = kNone;
  };
  struct alignas(64) PaddedStats {
    FabricStats s;
  };
  struct alignas(64) PaddedLabel {
    OpLabel l;
    std::uint64_t span = 0;  ///< current span; note_op copies it into l
  };

  std::byte* translate(int target, std::uint64_t offset, std::size_t n) const;
  std::uint64_t* translate_u64(int target, std::uint64_t offset) const;
  /// Throw PeKilled if `pe`'s clock has reached its planned crash time.
  /// Out-of-line slow path; callers pre-check crashes_armed_.
  void maybe_crash(int pe);
  /// (Re-)load crash_at_ from the plan's CrashEvents.
  void arm_crashes();
  /// Post-charge check on every op path: true when the op's target is dead
  /// and the effect must be suppressed (the charge already happened —
  /// talking to a dead NIC costs the same as talking to a live one).
  bool effect_suppressed(int initiator, int target) {
    if (!crashes_armed_) return false;
    if (alive(target)) return false;
    ++stats_[static_cast<std::size_t>(initiator)].s.dead_target_ops;
    return true;
  }
  /// Conflict footprint a gate declares to the parallel engine via
  /// TimeModel::global_begin(pe, target): the PE whose observable state
  /// the op touches when resuming from an in-gate park (blocking ops
  /// apply their effect on `declared` after charging; nbi enqueues touch
  /// only gated-shared pending state and declare kNoConflictTarget). With
  /// fault or crash injection armed, op paths also touch shared injector
  /// and death state, so the footprint degrades to kOpaqueTarget — the
  /// fully conservative cap-every-window legacy rule.
  int gate_footprint(int declared) const noexcept {
    return (faults_ || crashes_armed_) ? TimeModel::kOpaqueTarget : declared;
  }
  /// Charge a blocking op: stats + advance; returns nothing, effect is the
  /// caller's next statement.
  void charge(int initiator, int target, OpKind kind, std::size_t bytes);
  /// Record `initiator`'s in-flight op label (call before charge()).
  void note_op(int initiator, int target, OpKind kind, std::uint64_t offset);
  /// Queue `effect` for delivery after the modeled nbi delay (plus any
  /// fault verdict), then clamp the initiator's sequencer horizon to the
  /// deadline. When `slab_src` is non-null the payload is copied into a
  /// pooled slab under pend_mu_ (effect.len bytes); inline payloads are
  /// already inside `effect`.
  void enqueue_nbi(int initiator, int target, OpKind kind, std::size_t bytes,
                   PendingEffect effect, const void* slab_src);
  /// Acquire a slab holding [src, src+n) with `refs` queued references;
  /// caller holds pend_mu_.
  std::uint32_t grab_slab_locked(const void* src, std::size_t n, int refs);
  void apply_effect_locked(const PendingEffect& e);
  /// Pop + apply one delivered op; caller holds pend_mu_.
  void apply_top_locked();
  /// Apply every pending effect with deadline <= now; returns the earliest
  /// deadline still pending (kNoPendingDeadline if none) — the sequencer
  /// caps run-to-horizon batching with it.
  Nanos deliver_until(Nanos now);

  /// Cached time_.concurrent_windows(): true under the parallel engine.
  /// Every globally ordered action (cross-PE blocking op, any nbi enqueue,
  /// pending_to_synced) brackets itself with global_begin/end (or
  /// global_sync) when set; the serial engines skip the virtual calls
  /// entirely.
  bool concurrent_ = false;

  TimeModel& time_;
  NetworkModel model_;
  std::vector<Arena> arenas_;
  /// Per-target NIC busy horizon (virtual mode only; baton-serialized).
  std::vector<Nanos> busy_until_;
  mutable std::vector<PaddedStats> stats_;
  std::vector<PaddedLabel> labels_;
  OpObserver observer_;

  mutable std::mutex pend_mu_;
  std::priority_queue<PendingOp, std::vector<PendingOp>, std::greater<>>
      pending_;
  std::vector<std::atomic<int>> pending_per_pe_;
  std::vector<std::atomic<int>> pending_per_target_;
  std::uint64_t next_seq_ = 0;
  std::vector<Slab> slabs_;                    ///< guarded by pend_mu_
  std::uint32_t slab_free_ = Slab::kNone;      ///< free-list head
  EffectPoolStats pool_stats_;                 ///< guarded by pend_mu_

  /// Present iff model_.params().faults.enabled(); a null injector means
  /// every fault hook short-circuits to the pre-fault fast path.
  std::unique_ptr<FaultInjector> faults_;

  // Crash-stop state. crashes_armed_ is constant after construction and
  // gates every check, so un-planned runs pay one predicted-not-taken
  // branch per op and nothing else. crash_at_ is written only by the
  // owning PE (disarm) or under reset/new_run; dead_ flags are atomic for
  // the real-time backend and cross-thread test reads.
  bool crashes_armed_ = false;
  std::vector<Nanos> crash_at_;
  std::vector<std::atomic<bool>> dead_;
  std::atomic<int> ndead_{0};

  // Real-time backend: a progress thread applies queued nbi effects once
  // their wall-clock deadline passes, so completion notifications arrive
  // late under true concurrency as well. (The virtual backend delivers
  // through the sequencer hook instead.)
  void delivery_loop();
  std::thread delivery_thread_;
  std::condition_variable pend_cv_;
  bool stopping_ = false;
};

}  // namespace sws::net
