// The simulated RDMA fabric: executes one-sided operations against
// registered per-PE memory arenas, charges time through the TimeModel,
// and accounts traffic per PE.
//
// Semantics (DESIGN.md §5):
//  * Blocking ops stall the initiator for the modeled cost, then apply
//    their memory effect. Under the virtual sequencer this serializes all
//    effects in virtual-clock order, so protocol races resolve
//    deterministically.
//  * Non-blocking ops (nbi_*) charge only an issue overhead; their memory
//    effect is queued and delivered when time passes `now +
//    delivery_delay` — i.e. completions genuinely arrive late, which is
//    what the paper's completion epochs (§4.2) exist to absorb. The
//    virtual backend delivers via the sequencer hook; the real-time
//    backend via a fabric progress thread.
//  * quiet(pe) blocks until all of pe's outstanding nbi ops delivered
//    (the OpenSHMEM shmem_quiet contract).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/network_model.hpp"
#include "net/time_model.hpp"
#include "net/types.hpp"

namespace sws::net {

/// Label of the operation a PE most recently issued — written before the
/// op's time charge, so while a PE is parked inside the sequencer its
/// label names the op whose memory effect it will apply on resume. The
/// schedule-exploration harness reads these to render human-readable
/// event traces. Only meaningful under the virtual backend, where the
/// baton serializes writer and reader.
struct OpLabel {
  OpKind kind = OpKind::kCount_;  ///< kCount_ = no op issued yet
  int target = -1;
  std::uint64_t offset = 0;
};

class Fabric {
 public:
  Fabric(TimeModel& time, NetworkModel model, int npes);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Drop all pending ops and stats; size the fabric for `npes` PEs.
  /// Arenas must be re-registered afterwards.
  void reset(int npes);

  /// Per-run reset: clocks restart at 0, so drop the NIC busy horizons
  /// and any stray pending non-blocking ops. Arenas and stats survive.
  void new_run();

  /// Expose PE `pe`'s symmetric arena to one-sided access.
  void register_arena(int pe, std::byte* base, std::size_t size);

  int npes() const noexcept { return static_cast<int>(arenas_.size()); }
  TimeModel& time() noexcept { return time_; }
  const NetworkModel& model() const noexcept { return model_; }

  // --- blocking one-sided data movement --------------------------------
  void put(int initiator, int target, std::uint64_t offset, const void* src,
           std::size_t n);
  void get(int initiator, int target, std::uint64_t offset, void* dst,
           std::size_t n);

  /// Word-granular variants for metadata that other PEs mutate
  /// concurrently: charged as a single put/get of 8*nwords bytes, applied
  /// as per-word atomics so no torn values are observable under the
  /// real-time backend.
  void put_words(int initiator, int target, std::uint64_t offset,
                 const std::uint64_t* src, std::size_t nwords);
  void get_words(int initiator, int target, std::uint64_t offset,
                 std::uint64_t* dst, std::size_t nwords);

  // --- blocking 64-bit atomics (OpenSHMEM AMO set) ---------------------
  std::uint64_t amo_fetch_add(int initiator, int target, std::uint64_t offset,
                              std::uint64_t value);
  std::uint64_t amo_compare_swap(int initiator, int target,
                                 std::uint64_t offset, std::uint64_t expected,
                                 std::uint64_t desired);
  std::uint64_t amo_swap(int initiator, int target, std::uint64_t offset,
                         std::uint64_t value);
  std::uint64_t amo_fetch(int initiator, int target, std::uint64_t offset);
  void amo_set(int initiator, int target, std::uint64_t offset,
               std::uint64_t value);

  // --- non-blocking ops -------------------------------------------------
  void nbi_put(int initiator, int target, std::uint64_t offset,
               const void* src, std::size_t n);
  void nbi_amo_add(int initiator, int target, std::uint64_t offset,
                   std::uint64_t value);
  /// Non-blocking atomic store: idempotent, so duplicated delivery is
  /// harmless — what tagged completion records (SDC ring) are built on.
  void nbi_amo_set(int initiator, int target, std::uint64_t offset,
                   std::uint64_t value);

  /// Block until all nbi ops issued by `pe` have been delivered.
  void quiet(int pe);

  /// Count of `pe`'s not-yet-delivered nbi ops.
  int pending(int pe) const;
  /// Count of not-yet-delivered nbi ops *targeting* `pe` (any initiator).
  /// Lets owners prove a completion region can no longer change under
  /// them before reusing it (SWS epoch recycle under duplication).
  int pending_to(int pe) const;

  // --- fault injection --------------------------------------------------
  bool faults_enabled() const noexcept { return faults_ != nullptr; }
  bool fault_duplicates_possible() const noexcept {
    return faults_ != nullptr && faults_->plan().duplicates_possible();
  }
  const FaultInjector* fault_injector() const noexcept {
    return faults_.get();
  }
  FaultStats fault_stats() const {
    return faults_ ? faults_->total_stats() : FaultStats{};
  }

  /// Most recent operation issued by `pe` (see OpLabel).
  const OpLabel& last_op(int pe) const;

  // --- accounting -------------------------------------------------------
  const FabricStats& stats(int pe) const;
  FabricStats total_stats() const;
  void reset_stats();

 private:
  struct Arena {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };
  struct PendingOp {
    Nanos deadline;
    std::uint64_t seq;  // tie-break for determinism
    int initiator;
    int target;
    std::function<void()> effect;
    bool operator>(const PendingOp& o) const noexcept {
      return deadline != o.deadline ? deadline > o.deadline : seq > o.seq;
    }
  };
  struct alignas(64) PaddedStats {
    FabricStats s;
  };
  struct alignas(64) PaddedLabel {
    OpLabel l;
  };

  std::byte* translate(int target, std::uint64_t offset, std::size_t n) const;
  std::uint64_t* translate_u64(int target, std::uint64_t offset) const;
  /// Charge a blocking op: stats + advance; returns nothing, effect is the
  /// caller's next statement.
  void charge(int initiator, int target, OpKind kind, std::size_t bytes);
  /// Record `initiator`'s in-flight op label (call before charge()).
  void note_op(int initiator, int target, OpKind kind, std::uint64_t offset);
  void enqueue_nbi(int initiator, int target, OpKind kind, std::size_t bytes,
                   std::function<void()> effect);
  /// Pop + apply one delivered op; caller holds pend_mu_.
  void apply_top_locked();
  void deliver_until(Nanos now);

  TimeModel& time_;
  NetworkModel model_;
  std::vector<Arena> arenas_;
  /// Per-target NIC busy horizon (virtual mode only; baton-serialized).
  std::vector<Nanos> busy_until_;
  mutable std::vector<PaddedStats> stats_;
  std::vector<PaddedLabel> labels_;

  mutable std::mutex pend_mu_;
  std::priority_queue<PendingOp, std::vector<PendingOp>, std::greater<>>
      pending_;
  std::vector<std::atomic<int>> pending_per_pe_;
  std::vector<std::atomic<int>> pending_per_target_;
  std::uint64_t next_seq_ = 0;

  /// Present iff model_.params().faults.enabled(); a null injector means
  /// every fault hook short-circuits to the pre-fault fast path.
  std::unique_ptr<FaultInjector> faults_;

  // Real-time backend: a progress thread applies queued nbi effects once
  // their wall-clock deadline passes, so completion notifications arrive
  // late under true concurrency as well. (The virtual backend delivers
  // through the sequencer hook instead.)
  void delivery_loop();
  std::thread delivery_thread_;
  std::condition_variable pend_cv_;
  bool stopping_ = false;
};

}  // namespace sws::net
