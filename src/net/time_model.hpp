// Time backends for the simulated PGAS platform.
//
// The paper evaluates on a 44-node InfiniBand cluster. We reproduce its
// experiments on one host by running each PE as a thread against one of
// two interchangeable clocks:
//
//  * VirtualTimeModel — a discrete-event sequencer. Exactly one PE thread
//    runs at a time; the runnable PE is always the one with the minimum
//    (virtual clock, PE id). Communication latencies and task compute
//    times are charged by advance(), so a 5 ms task costs nothing in wall
//    time and results are bit-deterministic. All paper figures use this.
//  * RealTimeModel — PE threads run concurrently and advance() injects
//    real delays (spin for short, sleep for long). Used by stress tests
//    that want genuinely preemptive interleavings, and by live examples.
//
// Both expose the same interface, so the whole runtime above this layer
// is written once.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/types.hpp"

namespace sws::net {

/// Callback invoked by the virtual sequencer whenever global time reaches
/// a new floor `now`; the fabric uses it to deliver pending non-blocking
/// operations whose deadline has passed. Runs under the sequencer lock —
/// it must only touch fabric/pending state, never call back into the
/// time model.
using DeliveryHook = std::function<void(Nanos now)>;

/// Consulted by the virtual sequencer whenever more than one PE is
/// runnable at the minimum virtual time — i.e. whenever the discrete-event
/// queue holds a genuine ordering choice. `caller` is the PE that just
/// advanced (or finished), `ready` the tied PEs in ascending id order, and
/// `now` their common virtual time. Must return one element of `ready`.
/// Runs under the sequencer lock: it must not call back into the time
/// model or issue fabric operations. The schedule-exploration harness
/// (src/check/) installs one to enumerate interleavings; when unset, ties
/// break by lowest id — the legacy deterministic order.
using ReadyArbiter =
    std::function<int(int caller, const std::vector<int>& ready, Nanos now)>;

class TimeModel {
 public:
  virtual ~TimeModel() = default;

  /// Re-initialize for a fresh run with `npes` participants. Must not be
  /// called while PE threads are active.
  virtual void reset(int npes) = 0;

  /// Called by each PE thread when it starts/finishes executing.
  virtual void pe_begin(int pe) = 0;
  virtual void pe_end(int pe) = 0;

  /// Advance PE `pe`'s clock by `dt`, blocking the caller accordingly.
  virtual void advance(int pe, Nanos dt) = 0;

  /// Current clock of PE `pe`.
  virtual Nanos now(int pe) const = 0;

  virtual void set_delivery_hook(DeliveryHook hook) = 0;

  virtual bool is_virtual() const noexcept = 0;
  virtual int npes() const noexcept = 0;
};

/// Deterministic discrete-event sequencer (see file comment).
class VirtualTimeModel final : public TimeModel {
 public:
  explicit VirtualTimeModel(int npes = 0);
  ~VirtualTimeModel() override;

  void reset(int npes) override;
  void pe_begin(int pe) override;
  void pe_end(int pe) override;
  void advance(int pe, Nanos dt) override;
  Nanos now(int pe) const override;
  void set_delivery_hook(DeliveryHook hook) override;
  bool is_virtual() const noexcept override { return true; }
  int npes() const noexcept override { return static_cast<int>(slots_.size()); }

  /// Install (or clear, with nullptr) the ready-set arbiter. Survives
  /// reset() — it is sequencer configuration, like the delivery hook.
  /// Must not be called while PE threads are active.
  void set_ready_arbiter(ReadyArbiter arb);

 private:
  struct PeSlot {
    Nanos vtime = 0;
    bool finished = false;
    std::condition_variable cv;
  };

  /// Pick the next runnable PE: minimum vtime, ties resolved by the
  /// arbiter when one is installed (else by id); -1 if none left.
  /// `caller` is the PE whose advance/finish triggered the pick.
  int pick_next_locked(int caller);
  /// Hand the baton to `next` (may equal current active) and fire the
  /// delivery hook for the new time floor.
  void activate_locked(int next);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<PeSlot>> slots_;
  int active_ = -1;
  DeliveryHook hook_;
  ReadyArbiter arbiter_;
  std::vector<int> ready_scratch_;  ///< reused per pick; guarded by mu_
};

/// Wall-clock backend with injected delays.
class RealTimeModel final : public TimeModel {
 public:
  /// Delays below `spin_threshold` busy-wait (accuracy); longer ones sleep
  /// (the host has few cores; spinning starves other PE threads).
  explicit RealTimeModel(int npes = 0, Nanos spin_threshold = 100'000);

  void reset(int npes) override;
  void pe_begin(int pe) override {(void)pe;}
  void pe_end(int pe) override {(void)pe;}
  void advance(int pe, Nanos dt) override;
  Nanos now(int pe) const override;
  void set_delivery_hook(DeliveryHook hook) override;
  bool is_virtual() const noexcept override { return false; }
  int npes() const noexcept override { return npes_; }

 private:
  std::chrono::steady_clock::time_point epoch_;
  Nanos spin_threshold_;
  int npes_ = 0;
};

}  // namespace sws::net
