// Time backends for the simulated PGAS platform.
//
// The paper evaluates on a 44-node InfiniBand cluster. We reproduce its
// experiments on one host by running each PE as a thread against one of
// two interchangeable clocks:
//
//  * VirtualTimeModel — a discrete-event sequencer. Exactly one PE thread
//    runs at a time; the runnable PE is always the one with the minimum
//    (virtual clock, PE id). Communication latencies and task compute
//    times are charged by advance(), so a 5 ms task costs nothing in wall
//    time and results are bit-deterministic. All paper figures use this.
//  * RealTimeModel — PE threads run concurrently and advance() injects
//    real delays (spin for short, sleep for long). Used by stress tests
//    that want genuinely preemptive interleavings, and by live examples.
//
// Both expose the same interface, so the whole runtime above this layer
// is written once.
//
// Sequencer hot path (docs/performance.md): the ready set lives in an
// indexed (vtime, pe) min-heap, and the baton holder caches a *horizon* —
// the minimum of every other PE's clock and the earliest pending nbi
// deadline. advance() calls that keep the clock strictly below the
// horizon touch no lock, fire no hook, and wake no thread; only crossing
// the horizon enters the sequencer. Anything that could schedule an event
// below the holder's horizon must shrink it via clamp_horizon() (the
// fabric does this on every nbi enqueue), and the delivery hook reports
// the earliest still-pending deadline so the sequencer can cap horizons
// with it. Installing a ReadyArbiter disables horizon batching entirely:
// the schedule explorer must observe every potential tie.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/ready_heap.hpp"
#include "net/types.hpp"

namespace sws::net {

/// Sentinel "no pending deadline" for DeliveryHook results: later than any
/// representable virtual time.
inline constexpr Nanos kNoPendingDeadline = ~Nanos{0};

/// Callback invoked by the virtual sequencer whenever global time reaches
/// a new floor `now`; the fabric uses it to deliver pending non-blocking
/// operations whose deadline has passed. Returns the earliest deadline
/// still pending after the sweep (kNoPendingDeadline if none) — the
/// sequencer caps run-to-horizon batching with it so no delivery is ever
/// skipped over. Runs under the sequencer lock — it must only touch
/// fabric/pending state, never call back into the time model.
using DeliveryHook = std::function<Nanos(Nanos now)>;

/// Consulted by the virtual sequencer whenever more than one PE is
/// runnable at the minimum virtual time — i.e. whenever the discrete-event
/// queue holds a genuine ordering choice. `caller` is the PE that just
/// advanced (or finished), `ready` the tied PEs in ascending id order, and
/// `now` their common virtual time. Must return one element of `ready`.
/// Runs under the sequencer lock: it must not call back into the time
/// model or issue fabric operations. The schedule-exploration harness
/// (src/check/) installs one to enumerate interleavings; when unset, ties
/// break by lowest id — the legacy deterministic order.
using ReadyArbiter =
    std::function<int(int caller, const std::vector<int>& ready, Nanos now)>;

/// Observation-only callback fired by the virtual sequencers each time the
/// global time floor crosses a sampling boundary (`boundary` = k*interval
/// for k = 1, 2, ...; boundaries are never skipped, so a long batch fires
/// one call per crossed boundary, in order). Runs under the sequencer's
/// serialization — exactly one thread executes it, with every PE thread
/// parked — so it may read clocks, metrics slabs, and scheduler state
/// lock-free. It must never advance clocks, issue fabric operations, or
/// call back into the time model: sampling is observation-only, and the
/// determinism A/B suite enforces that sampled runs are byte-identical to
/// unsampled ones. Real-time backends ignore it.
using SampleHook = std::function<void(Nanos boundary)>;

class TimeModel {
 public:
  virtual ~TimeModel() = default;

  /// Re-initialize for a fresh run with `npes` participants. Must not be
  /// called while PE threads are active.
  virtual void reset(int npes) = 0;

  /// Called by each PE thread when it starts/finishes executing.
  virtual void pe_begin(int pe) = 0;
  virtual void pe_end(int pe) = 0;

  /// Advance PE `pe`'s clock by `dt`, blocking the caller accordingly.
  virtual void advance(int pe, Nanos dt) = 0;

  /// Current clock of PE `pe`.
  virtual Nanos now(int pe) const = 0;

  /// Inform the sequencer that an event (e.g. an nbi delivery deadline)
  /// was scheduled at virtual time `deadline` by the running PE `pe`.
  /// Virtual backend: shrinks pe's batching horizon so the deadline is
  /// not skipped over; may only be called by the baton holder. Real
  /// backend: no-op (deliveries are driven by a progress thread).
  virtual void clamp_horizon(int pe, Nanos deadline) {
    (void)pe;
    (void)deadline;
  }

  virtual void set_delivery_hook(DeliveryHook hook) = 0;

  /// Install (or clear, with nullptr / interval 0) the windowed sampling
  /// hook. Virtual backends fire it at every multiple of `interval_ns`
  /// the global floor crosses, capping run-to-horizon batches (but never
  /// schedules) at the next boundary so samples land on time. Real
  /// backend: no-op. Must not be called while PE threads are active.
  virtual void set_sample_hook(SampleHook hook, Nanos interval_ns) {
    (void)hook;
    (void)interval_ns;
  }

  virtual bool is_virtual() const noexcept = 0;
  virtual int npes() const noexcept = 0;

  // --- concurrent-window extensions (ParallelTimeModel) ------------------
  //
  // The sharded sequencer releases *windows* of PEs that run concurrently
  // below a conservative lookahead horizon. Actions that touch another
  // PE's state (or globally ordered fabric state like the nbi sequence
  // counter) must first be serialized at the global (vtime, pe) frontier.
  // The serial backends run one PE at a time, so these default to no-ops.

  /// Conflict footprint sentinels for global_begin(pe, target):
  ///  * kOpaqueTarget — unknown footprint: while this gate's PE is parked,
  ///    no other PE may run past its clock (fully conservative; the
  ///    fabric uses it when fault/crash injection adds shared state).
  ///  * kNoConflictTarget — the gate only touches state shared with other
  ///    gated actions (nbi pending queue, sequence counter): parked, it
  ///    never needs to cap a concurrent window (deliveries are fenced
  ///    separately by the pending-deadline cap).
  static constexpr int kOpaqueTarget = -1;
  static constexpr int kNoConflictTarget = -2;

  /// `pe` is about to perform a globally ordered action (cross-PE blocking
  /// op or nbi enqueue). Parks until `pe` is the unique global frontier;
  /// on return the op's charge + effect run in exact serial lex order.
  virtual void global_begin(int pe) { (void)pe; }
  /// As above, with the action's conflict footprint: `target` is the PE
  /// whose observable state the action touches when it resumes from parks
  /// *inside* the gate (a blocking op applies its effect after charging),
  /// or one of the sentinels. The sharded engine uses it to cap concurrent
  /// windows per target instead of globally; serial backends ignore it.
  virtual void global_begin(int pe, int target) {
    (void)target;
    global_begin(pe);
  }
  /// The globally ordered action completed; `pe` may continue privately.
  virtual void global_end(int pe) { (void)pe; }
  /// Serialize a read of globally mutated state (e.g. the per-target nbi
  /// pending counter) without marking `pe` as inside an op: parks until
  /// every lex-earlier global action has applied.
  virtual void global_sync(int pe) { (void)pe; }
  /// True when windows of PE threads may run concurrently — callers use it
  /// to gate global_begin/end/sync so the serial hot path stays untouched.
  virtual bool concurrent_windows() const noexcept { return false; }
};

/// Deterministic discrete-event sequencer (see file comment).
class VirtualTimeModel final : public TimeModel {
 public:
  explicit VirtualTimeModel(int npes = 0);
  ~VirtualTimeModel() override;

  void reset(int npes) override;
  void pe_begin(int pe) override;
  void pe_end(int pe) override;
  void advance(int pe, Nanos dt) override;

  /// Lock-free: reads the PE's published clock mirror. Exact when called
  /// by `pe` itself (every advance publishes before returning) or by any
  /// thread ordered after the writer (joined threads, the sequencer's
  /// baton hand-off). A concurrent reader on another thread may observe a
  /// slightly stale — but monotonic — value; there is no torn read.
  Nanos now(int pe) const override;

  void clamp_horizon(int pe, Nanos deadline) override;
  void set_delivery_hook(DeliveryHook hook) override;
  void set_sample_hook(SampleHook hook, Nanos interval_ns) override;
  bool is_virtual() const noexcept override { return true; }
  int npes() const noexcept override { return static_cast<int>(slots_.size()); }

  /// Install (or clear, with nullptr) the ready-set arbiter. Survives
  /// reset() — it is sequencer configuration, like the delivery hook.
  /// Must not be called while PE threads are active. While installed,
  /// run-to-horizon batching is disabled so every advance() is a
  /// potential branch point for the explorer.
  void set_ready_arbiter(ReadyArbiter arb);

  /// Test/bench-only strategy switch: revert to the pre-heap linear ready
  /// scan with no run-to-horizon batching (every advance takes the lock
  /// and fires the delivery hook — the legacy implementation). Schedules
  /// are identical either way; this exists so the determinism A/B test
  /// and bench/sim_engine can compare both inside one binary. Must not be
  /// toggled while PE threads are active.
  void set_reference_mode(bool on);
  bool reference_mode() const noexcept { return reference_; }

 private:
  struct PeSlot {
    /// Authoritative clock, written only by the baton-holding thread (or
    /// under mu_ during reset). Atomic so now() can read it lock-free.
    std::atomic<Nanos> vtime{0};
    /// Fast-path cap: advance() stays lock-free while the resulting clock
    /// is *strictly* below this. Written under mu_ when the baton is
    /// handed over, then owned by the holder (clamp_horizon) until the
    /// next hand-off; the cv round-trip orders the accesses.
    Nanos horizon = 0;
    bool finished = false;
    std::condition_variable cv;
  };

  /// Pick the next runnable PE: minimum vtime, ties resolved by the
  /// arbiter when one is installed (else by id); -1 if none left.
  /// `caller` is the PE whose advance/finish triggered the pick.
  int pick_next_locked(int caller);
  /// Hand the baton to `next` (may equal current active): fire the
  /// delivery hook for the new time floor, refresh `next`'s horizon,
  /// and wake it.
  void activate_locked(int next);
  /// Fire the hook at `pe`'s clock and compute its fresh horizon:
  /// min(second-lowest ready clock, earliest pending delivery deadline);
  /// 0 (batching off) in reference/arbiter mode.
  Nanos horizon_locked(int pe);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<PeSlot>> slots_;
  ReadyHeap heap_;           ///< ready PEs keyed by (vtime, pe); guarded by mu_
  std::atomic<int> active_{-1};  ///< written under mu_; read lock-free by asserts
  DeliveryHook hook_;
  ReadyArbiter arbiter_;
  SampleHook sample_hook_;
  Nanos sample_interval_ = 0;  ///< 0 = sampling off
  Nanos next_sample_ = 0;      ///< next unfired boundary; guarded by mu_
  bool reference_ = false;
  std::vector<int> ready_scratch_;  ///< reused per pick; guarded by mu_
};

/// Wall-clock backend with injected delays.
class RealTimeModel final : public TimeModel {
 public:
  /// Delays below `spin_threshold` busy-wait (accuracy); longer ones sleep
  /// (the host has few cores; spinning starves other PE threads).
  explicit RealTimeModel(int npes = 0, Nanos spin_threshold = 100'000);

  void reset(int npes) override;
  void pe_begin(int pe) override {(void)pe;}
  void pe_end(int pe) override {(void)pe;}
  void advance(int pe, Nanos dt) override;
  Nanos now(int pe) const override;
  void set_delivery_hook(DeliveryHook hook) override;
  bool is_virtual() const noexcept override { return false; }
  int npes() const noexcept override { return npes_; }

 private:
  std::chrono::steady_clock::time_point epoch_;
  Nanos spin_threshold_;
  int npes_ = 0;
};

}  // namespace sws::net
